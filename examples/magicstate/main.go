// Magicstate injects the T-magic state |A⟩ = T·H|0⟩ into a Surface Code
// 17 logical qubit (the thesis' cited route to a universal logical gate
// set, Chapter 6 / Horsman et al. [14]), then protects it with QEC
// windows while physical errors strike, and finally reads out its Bloch
// vector to confirm the non-Clifford payload survived.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

func main() {
	qx := layers.NewQxCore(rand.New(rand.NewSource(9))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	l := surface.NewNinjaStarLayer(qx, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := l.CreateQubits(1); err != nil {
		log.Fatal(err)
	}

	// Inject |A⟩ = T H |0⟩: Bloch vector (1/√2, 1/√2, 0).
	if err := l.InjectState(0, func(q int) *circuit.Circuit {
		return circuit.New().Add(gates.H, q).Add(gates.T, q)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("injected the T-magic state into the ninja star")

	// Adversity: sprinkle single physical errors between QEC windows.
	star := l.Star(0)
	errors := []struct {
		g *gates.Gate
		d int
	}{{gates.X, 1}, {gates.Z, 5}, {gates.Y, 7}}
	for i, e := range errors {
		if _, err := qpdo.Run(qx, circuit.New().Add(e.g, star.Data[e.d])); err != nil {
			log.Fatal(err)
		}
		for w := 0; w < 2; w++ {
			if _, err := l.RunWindow(0); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("round %d: injected physical %s on D%d, ran 2 QEC windows\n", i+1, e.g, e.d)
	}

	// Read the logical Bloch vector directly from the state vector.
	phys := func(rel int) int { return star.Data[rel] }
	xl := pauli.XString(phys(2), phys(4), phys(6))
	zl := pauli.ZString(phys(0), phys(4), phys(8))
	yl := pauli.NewPauliString(map[int]pauli.Pauli{
		phys(0): pauli.Z, phys(2): pauli.X, phys(4): pauli.Y,
		phys(6): pauli.X, phys(8): pauli.Z,
	})
	v := qx.Vector()
	gx, gy, gz := v.ExpectPauli(xl), v.ExpectPauli(yl), v.ExpectPauli(zl)
	want := math.Sqrt2 / 2
	fmt.Printf("\nlogical Bloch vector: (%+.4f, %+.4f, %+.4f)\n", gx, gy, gz)
	fmt.Printf("magic state target:   (%+.4f, %+.4f, %+.4f)\n", want, want, 0.0)
	if math.Abs(gx-want) > 1e-9 || math.Abs(gy-want) > 1e-9 || math.Abs(gz) > 1e-9 {
		log.Fatal("the magic state was damaged")
	}
	fmt.Println("the non-Clifford state survived three corrected physical errors intact")
}
