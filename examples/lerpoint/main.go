// Lerpoint computes one logical-error-rate point with and without a
// Pauli frame — the unit of the thesis' central experiment (§5.3) — and
// prints the LERs, the gates/slots the frame saved, and the verdict.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	const per = 2e-3
	cfg := experiments.LERConfig{
		PER:              per,
		MaxLogicalErrors: 25,
		Seed:             12345,
	}

	without, err := experiments.RunLER(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.WithPauliFrame = true
	cfg.Seed += 1
	with, err := experiments.RunLER(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("physical error rate: %g\n\n", per)
	fmt.Printf("%-22s %-14s %-14s\n", "", "without PF", "with PF")
	fmt.Printf("%-22s %-14d %-14d\n", "windows", without.Windows, with.Windows)
	fmt.Printf("%-22s %-14d %-14d\n", "logical errors", without.LogicalErrors, with.LogicalErrors)
	fmt.Printf("%-22s %-14.3e %-14.3e\n", "LER", without.LER, with.LER)
	fmt.Printf("%-22s %-14d %-14d\n", "correction gates", without.CorrectionGates, with.CorrectionGates)
	fmt.Printf("%-22s %-14.3f %-14.3f\n", "gates saved (%)",
		100*without.GatesSavedFrac(), 100*with.GatesSavedFrac())
	fmt.Printf("%-22s %-14.3f %-14.3f\n", "slots saved (%)",
		100*without.SlotsSavedFrac(), 100*with.SlotsSavedFrac())

	ratio := without.LER / with.LER
	fmt.Printf("\nLER ratio (no PF / PF): %.2f\n", ratio)
	fmt.Println("the frame saves gates and time slots, yet the LER is statistically unchanged —")
	fmt.Println("the thesis' central (negative) result. Its real benefit is relaxed decoder timing.")
}
