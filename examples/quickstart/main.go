// Quickstart: assemble a QPDO control stack with a Pauli frame layer,
// run a small circuit, and observe that Pauli gates never reach the
// simulator while measurement results still come out right.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
)

func main() {
	// Bottom-up: a state-vector core, a counter (to see what reaches the
	// simulator), and a Pauli frame layer on top.
	qx := layers.NewQxCore(rand.New(rand.NewSource(1))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	counter := layers.NewCounterLayer(qx)
	pf := layers.NewPauliFrameLayer(counter)
	if err := pf.CreateQubits(2); err != nil {
		log.Fatal(err)
	}

	// A Bell pair with a deliberate Pauli X thrown in: the frame absorbs
	// the X and corrects the measurement result classically.
	c := circuit.New().
		Add(gates.Prep, 0).Add(gates.Prep, 1).
		Add(gates.H, 0).
		Add(gates.CNOT, 0, 1).
		Add(gates.X, 0) // tracked, never executed
	slot := c.AppendSlot()
	c.AddToSlot(slot, gates.Measure, 0)
	c.AddToSlot(slot, gates.Measure, 1)

	res, err := qpdo.Run(pf, c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured q0=%d q1=%d (anti-correlated thanks to the tracked X)\n",
		res.Last(0), res.Last(1))
	fmt.Printf("operations that reached the simulator: %d (the X was absorbed)\n",
		counter.Stats.Ops)
	fmt.Printf("Pauli gates absorbed by the frame: %d\n", pf.PFU.Stats.PauliAbsorbed)
	fmt.Print(pf.PFU.Frame)
}
