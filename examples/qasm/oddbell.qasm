# Odd Bell state (thesis Fig 5.6): (|01> + |10>)/sqrt(2).
# Run: go run ./cmd/qpdo -core qx -pf -shots 20 examples/qasm/oddbell.qasm
qubits 2
prep_z q0
prep_z q1
h q0
cnot q0,q1
x q0
{ measure q0 | measure q1 }
