# A Clifford+T circuit: the Pauli frame flushes its records before each
# T gate (thesis Table 3.1, non-Clifford flow).
# Run: go run ./cmd/qpdo -core qx -pf -state examples/qasm/cliffordt.qasm
qubits 3
prep_z q0
prep_z q1
prep_z q2
h q0
x q1
cnot q0,q1
t q1
z q2
s q2
cnot q1,q2
tdag q2
h q2
