# Five-qubit GHZ state; all measurements agree.
# Run: go run ./cmd/qpdo -core chp -shots 10 examples/qasm/ghz5.qasm
qubits 5
prep_z q0
prep_z q1
prep_z q2
prep_z q3
prep_z q4
h q0
cnot q0,q1
cnot q1,q2
cnot q2,q3
cnot q3,q4
{ measure q0 | measure q1 | measure q2 | measure q3 | measure q4 }
