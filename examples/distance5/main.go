// Distance5 runs a distance-5 rotated surface code — the thesis' future-
// work direction — under depolarizing noise: renders the lattice, keeps
// |1⟩_L alive through QEC windows with the matching decoder, and shows
// the syndrome picture when errors strike.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surfaced"
)

func main() {
	chp := layers.NewChpCore(rand.New(rand.NewSource(5)))                //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	errl := layers.NewErrorLayer(chp, 5e-4, rand.New(rand.NewSource(6))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	plane, err := surfaced.NewPlane(errl, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plane.Layout.Render(nil))

	// Noiseless |1⟩_L preparation.
	if err := qpdo.WithBypass(errl, plane.InitOne); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprepared |1⟩_L; running 30 noisy QEC windows (4 ESM rounds each)...")

	corrections := 0
	for w := 0; w < 30; w++ {
		st, err := plane.RunWindow()
		if err != nil {
			log.Fatal(err)
		}
		corrections += st.CorrectionGates
	}
	fmt.Printf("corrections applied: %d\n", corrections)

	// Show one noisy syndrome round, then the clean picture in bypass.
	round, err := plane.RunESMRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncurrent syndrome picture ('!' marks flagged checks):")
	fmt.Print(plane.Layout.Render(&round))

	var out int
	if err := qpdo.WithBypass(errl, func() error {
		var err error
		out, err = plane.MeasureLogical()
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlogical readout after 120 noisy ESM rounds: %d (want 1)\n", out)
	if out != 1 {
		log.Fatal("logical state lost")
	}
	fmt.Println("the distance-5 code preserved the state")
}
