// Ninjastar keeps a Surface Code 17 logical qubit alive under
// depolarizing noise: initialize |0>_L, run QEC windows while errors
// rain down, and measure at the end — the logical value survives error
// rates that would scramble a bare qubit.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

func main() {
	const (
		per     = 1e-3
		windows = 25
		shots   = 20
	)
	survived := 0
	totalCorrections := 0
	for shot := 0; shot < shots; shot++ {
		chp := layers.NewChpCore(rand.New(rand.NewSource(int64(100 + shot))))             //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
		errl := layers.NewErrorLayer(chp, per, rand.New(rand.NewSource(int64(200+shot)))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
		star := surface.NewNinjaStarLayer(errl, surface.Config{Ancilla: surface.AncillaDedicated})
		if err := star.CreateQubits(1); err != nil {
			log.Fatal(err)
		}

		// Prepare |1>_L noiselessly so a survival check is non-trivial.
		if err := qpdo.WithBypass(star, func() error {
			_, err := qpdo.Run(star, circuit.New().Add(gates.Prep, 0).Add(gates.X, 0))
			return err
		}); err != nil {
			log.Fatal(err)
		}

		// QEC windows under noise.
		for w := 0; w < windows; w++ {
			stats, err := star.RunWindow(0)
			if err != nil {
				log.Fatal(err)
			}
			totalCorrections += stats.CorrectionGates
		}

		// Noiseless readout.
		var out int
		if err := qpdo.WithBypass(star, func() error {
			res, err := qpdo.Run(star, circuit.New().Add(gates.Measure, 0))
			if err != nil {
				return err
			}
			out = res.Last(0)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		if out == 1 {
			survived++
		}
	}
	fmt.Printf("physical error rate:        %g per operation\n", per)
	fmt.Printf("windows per shot:           %d (%d ESM rounds, ~%d noisy operations)\n",
		windows, windows*2, windows*2*48)
	fmt.Printf("corrections applied:        %d across %d shots\n", totalCorrections, shots)
	fmt.Printf("logical |1>_L survived:     %d/%d shots\n", survived, shots)
	fmt.Println("a bare qubit idling through the same schedule would decohere almost surely")
}
