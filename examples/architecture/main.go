// Architecture drives the functional quantum-control-unit model of
// thesis §3.5 with an assembled QISA program: instructions are decoded,
// virtual addresses translated through the Q symbol table, operations
// routed through the Pauli arbiter, QEC cycles generated, syndromes
// decoded — and every correction ends up in the Pauli frame instead of
// the waveform stream.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/layers"
	"repro/internal/surface"
)

const program = `
# establish the SC17 plane
reset 0
reset 1
reset 2
reset 3
reset 4
reset 5
reset 6
reset 7
reset 8
qec
qec
qec
qec
# a logical X on the plane: the chain X2 X4 X6 (thesis Fig 2.4a) —
# all three absorbed by the Pauli frame
gate x 2
gate x 4
gate x 6
qec
qec
# transversal readout of the Z_L chain qubits
measure 0
measure 4
measure 8
`

func main() {
	chip := layers.NewChpCore(rand.New(rand.NewSource(7))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	if err := chip.CreateQubits(surface.NumQubits); err != nil {
		log.Fatal(err)
	}
	qcu, err := arch.NewQCU(chip)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := arch.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := qcu.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instructions executed:   %d\n", len(prog))
	fmt.Printf("QEC cycles generated:    %d\n", rep.ESMRounds)
	fmt.Printf("QED corrections issued:  %d (all absorbed by the PFU)\n", rep.Corrections)
	fmt.Printf("measurements:            %v\n", rep.Measurements)
	parity := 0
	for _, m := range rep.Measurements {
		parity ^= m
	}
	fmt.Printf("Z_L chain parity:        %d (the logical X chain flipped D4)\n", parity)

	st := qcu.PFU().Stats
	fmt.Printf("\nPauli arbiter statistics (thesis Fig 3.12 flows):\n")
	fmt.Printf("  Pauli gates absorbed:  %d\n", st.PauliAbsorbed)
	fmt.Printf("  Clifford gates mapped: %d\n", st.CliffordMapped)
	fmt.Printf("  results inverted:      %d\n", st.MeasurementsFlipped)
	fmt.Printf("waveform operations emitted to the PEL: %d\n", len(qcu.PEL().Trace))
	for _, e := range qcu.PEL().Trace {
		if e.Gate == "x" || e.Gate == "y" || e.Gate == "z" {
			fmt.Println("  unexpected Pauli waveform:", e)
		}
	}
	fmt.Println("no Pauli waveforms in the trace: corrections and X_L lived in classical logic")
}
