// Teleport moves an arbitrary qubit state across a Bell pair. The
// protocol's conditional corrections are always Pauli gates — exactly
// what a Pauli frame absorbs — so with a frame in the stack the
// teleportation completes without a single corrective pulse reaching the
// hardware (thesis §3.3: correction gates handled in classical logic).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/statevec"
)

func main() {
	// The payload: an arbitrary non-stabilizer state R_Z(0.9)·H|0⟩.
	payload := func(s qpdo.Core, q int) error {
		c := circuit.New().Add(gates.H, q).Add(gates.RZ(0.9), q)
		_, err := qpdo.Run(s, c)
		return err
	}

	// Reference copy of the payload on a single qubit.
	refCore := layers.NewQxCore(rand.New(rand.NewSource(1))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	if err := refCore.CreateQubits(1); err != nil {
		log.Fatal(err)
	}
	if err := payload(refCore, 0); err != nil {
		log.Fatal(err)
	}

	// Teleportation stack: Pauli frame over a counter over the simulator.
	qx := layers.NewQxCore(rand.New(rand.NewSource(2))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	counter := layers.NewCounterLayer(qx)
	pf := layers.NewPauliFrameLayer(counter)
	if err := pf.CreateQubits(3); err != nil {
		log.Fatal(err)
	}
	if err := payload(pf, 0); err != nil {
		log.Fatal(err)
	}

	// Bell pair between qubits 1 and 2, then the Bell measurement.
	bell := circuit.New().
		Add(gates.H, 1).Add(gates.CNOT, 1, 2).
		Add(gates.CNOT, 0, 1).Add(gates.H, 0).
		Add(gates.Measure, 0).Add(gates.Measure, 1)
	res, err := qpdo.Run(pf, bell)
	if err != nil {
		log.Fatal(err)
	}
	m0, m1 := res.Last(0), res.Last(1)

	// Conditional Pauli corrections — absorbed by the frame.
	fix := circuit.New()
	if m1 == 1 {
		fix.Add(gates.X, 2)
	}
	if m0 == 1 {
		fix.Add(gates.Z, 2)
	}
	if fix.NumSlots() > 0 {
		if _, err := qpdo.Run(pf, fix); err != nil {
			log.Fatal(err)
		}
	}
	pulsesBeforeFlush := counter.Stats.ByClass[gates.ClassPauli]

	// Flush only to compare states; a real pipeline would keep tracking.
	if err := pf.Flush(); err != nil {
		log.Fatal(err)
	}
	got, err := qx.Vector().ExtractSubsystem([]int{2})
	if err != nil {
		log.Fatal(err)
	}
	ok, phase := statevec.EqualUpToGlobalPhase(got, refCore.Vector(), 1e-9)

	fmt.Printf("Bell measurement: m0=%d m1=%d → corrections: %d Pauli gate(s)\n",
		m0, m1, fix.NumOps())
	fmt.Printf("teleported state matches payload: %v (global phase %.3f%+.3fi)\n",
		ok, real(phase), imag(phase))
	fmt.Printf("corrective pulses that reached the simulator before the flush: %d\n",
		pulsesBeforeFlush)
	fmt.Printf("Pauli gates absorbed by the frame: %d\n", pf.PFU.Stats.PauliAbsorbed)
	if !ok {
		log.Fatal("teleportation failed")
	}
}
