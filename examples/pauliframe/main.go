// Pauliframe walks through the illustrated Pauli-frame example of thesis
// §3.4 (Figs 3.4–3.9) on a real ninja star: initialization resets the
// records, detected errors are absorbed, a double detection cancels a
// pending record, the logical Hadamard maps X records to Z records, and
// the final transversal measurement is corrected through the frame.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

func main() {
	qx := layers.NewQxCore(rand.New(rand.NewSource(3))) //qa:allow seed-flow fixed demo seed keeps the printed output reproducible
	pf := layers.NewPauliFrameLayer(qx)
	star := surface.NewNinjaStarLayer(pf, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := star.CreateQubits(1); err != nil {
		log.Fatal(err)
	}
	data := star.Star(0).Data

	show := func(caption string) {
		fmt.Println(caption)
		for i, d := range data {
			fmt.Printf("  D%d: %-2s", i, pf.PFU.Frame.Record(d))
			if i%3 == 2 {
				fmt.Println()
			}
		}
		fmt.Println()
	}

	// Fig 3.5: initialization. The initialization sign-fix corrections
	// are themselves absorbed by the frame; flush them so the walkthrough
	// starts from the clean all-I frame of the thesis figure.
	if _, err := qpdo.Run(star, circuit.New().Add(gates.Prep, 0)); err != nil {
		log.Fatal(err)
	}
	if err := pf.Flush(); err != nil {
		log.Fatal(err)
	}
	show("after initialization to |0>_L (Fig 3.5): all records I")

	// Fig 3.6: QEC detects an X error on D2 and a Z error on D4; the
	// correction gates are issued but the frame absorbs them.
	absorb := func(caption string, ops ...circuit.Operation) {
		c := circuit.New().AddParallel(ops...)
		if err := pf.Add(c); err != nil {
			log.Fatal(err)
		}
		if _, err := pf.Execute(); err != nil {
			log.Fatal(err)
		}
		show(caption)
	}
	absorb("after absorbing corrections X(D2), Z(D4) (Fig 3.6)",
		circuit.NewOp(gates.X, data[2]), circuit.NewOp(gates.Z, data[4]))

	// Fig 3.7: a combined XZ detection on D4. The pending Z cancels
	// against the Z component (up to global phase) and only X remains.
	absorb("after a combined XZ detection on D4 (Fig 3.7): the Z parts cancel, X remains",
		circuit.NewOp(gates.Y, data[4]))

	// Fig 3.8: the logical Hadamard maps records while being executed —
	// the two X entries become Z entries.
	if _, err := qpdo.Run(star, circuit.New().Add(gates.H, 0)); err != nil {
		log.Fatal(err)
	}
	show("after logical Hadamard (Fig 3.8): the two X records became Z records")

	// Fig 3.9: transversal measurement — Z and I records do not flip any
	// result, so the outcomes pass through unmodified.
	res, err := qpdo.Run(star, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical measurement result (Fig 3.9): %d (random: the state is H_L|0>_L = |+>_L)\n", res.Last(0))
	fmt.Printf("data measurements flipped by the frame: %d (Z records never flip)\n",
		pf.PFU.Stats.MeasurementsFlipped)
}
