// Package gates defines the quantum gate set used throughout the
// reproduction: the Pauli gates, the Clifford generators and their common
// products, the non-Clifford T gates and Toffoli, plus the initialization
// and measurement pseudo-operations. Each gate carries its unitary matrix
// (for the state-vector back-end) and its classification (thesis §2.3.3),
// which is what the Pauli arbiter dispatches on (thesis Table 3.1).
package gates

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Class partitions operations the way the Pauli arbiter needs
// (thesis Table 3.1).
type Class int

const (
	// ClassPauli marks gates in the Pauli group: tracked by the frame,
	// never forwarded to the physical execution layer.
	ClassPauli Class = iota
	// ClassClifford marks Clifford gates outside the Pauli group: they map
	// the records and are also executed physically.
	ClassClifford
	// ClassNonClifford marks gates outside the Clifford group: they force
	// a flush of the records of their operands.
	ClassNonClifford
	// ClassReset marks initialization to |0⟩.
	ClassReset
	// ClassMeasure marks computational-basis measurement.
	ClassMeasure
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassPauli:
		return "pauli"
	case ClassClifford:
		return "clifford"
	case ClassNonClifford:
		return "non-clifford"
	case ClassReset:
		return "reset"
	case ClassMeasure:
		return "measure"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Name identifies a gate.
type Name string

// The gate vocabulary. PrepZ and MeasZ are the initialization and
// measurement pseudo-operations of the shared Core interface.
const (
	GateI    Name = "i"
	GateX    Name = "x"
	GateY    Name = "y"
	GateZ    Name = "z"
	GateH    Name = "h"
	GateS    Name = "s"
	GateSdg  Name = "sdg"
	GateT    Name = "t"
	GateTdg  Name = "tdg"
	GateCNOT Name = "cnot"
	GateCZ   Name = "cz"
	GateSWAP Name = "swap"
	GateTOF  Name = "toffoli"
	PrepZ    Name = "prepz"
	MeasZ    Name = "measure"
)

// Gate describes one member of the gate set.
type Gate struct {
	Name  Name
	Arity int
	Class Class
	// Matrix is the unitary in row-major order over the computational
	// basis of Arity qubits (nil for pseudo-operations).
	Matrix []complex128
}

var registry = map[Name]*Gate{}

func register(g *Gate) *Gate {
	registry[g.Name] = g
	return g
}

var (
	isq = complex(1/math.Sqrt2, 0)
	e4  = cmplx.Exp(complex(0, math.Pi/4))
)

// The registered gates.
var (
	I = register(&Gate{GateI, 1, ClassPauli, []complex128{1, 0, 0, 1}})
	X = register(&Gate{GateX, 1, ClassPauli, []complex128{0, 1, 1, 0}})
	Y = register(&Gate{GateY, 1, ClassPauli, []complex128{0, -1i, 1i, 0}})
	Z = register(&Gate{GateZ, 1, ClassPauli, []complex128{1, 0, 0, -1}})
	H = register(&Gate{GateH, 1, ClassClifford, []complex128{isq, isq, isq, -isq}})
	S = register(&Gate{GateS, 1, ClassClifford, []complex128{1, 0, 0, 1i}})
	// Sdg is the inverse phase gate S†.
	Sdg = register(&Gate{GateSdg, 1, ClassClifford, []complex128{1, 0, 0, -1i}})
	T   = register(&Gate{GateT, 1, ClassNonClifford, []complex128{1, 0, 0, e4}})
	// Tdg is the inverse T†.
	Tdg  = register(&Gate{GateTdg, 1, ClassNonClifford, []complex128{1, 0, 0, cmplx.Conj(e4)}})
	CNOT = register(&Gate{GateCNOT, 2, ClassClifford, []complex128{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
		0, 0, 1, 0,
	}})
	CZ = register(&Gate{GateCZ, 2, ClassClifford, []complex128{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, -1,
	}})
	SWAP = register(&Gate{GateSWAP, 2, ClassClifford, []complex128{
		1, 0, 0, 0,
		0, 0, 1, 0,
		0, 1, 0, 0,
		0, 0, 0, 1,
	}})
	Toffoli = register(&Gate{GateTOF, 3, ClassNonClifford, toffoliMatrix()})
	Prep    = register(&Gate{PrepZ, 1, ClassReset, nil})
	Measure = register(&Gate{MeasZ, 1, ClassMeasure, nil})
)

func toffoliMatrix() []complex128 {
	m := make([]complex128, 64)
	for i := 0; i < 8; i++ {
		j := i
		if i == 6 {
			j = 7
		} else if i == 7 {
			j = 6
		}
		m[i*8+j] = 1
	}
	return m
}

// RZ returns the Z-axis rotation R_Z(θ) of thesis Eq. 2.5:
// diag(1, e^{iθ}). S and T are RZ(π/2) and RZ(π/4). The returned gate is
// not registered and is conservatively classified non-Clifford, so the
// Pauli frame flushes pending records before it — correct for every θ
// (for the Clifford angles it merely costs an early flush).
func RZ(theta float64) *Gate {
	return &Gate{
		Name:   Name(fmt.Sprintf("rz(%.6g)", theta)),
		Arity:  1,
		Class:  ClassNonClifford,
		Matrix: []complex128{1, 0, 0, cmplx.Exp(complex(0, theta))},
	}
}

// Lookup returns the gate registered under the name.
func Lookup(n Name) (*Gate, bool) {
	g, ok := registry[n]
	return g, ok
}

// MustLookup returns the gate or panics; for static tables.
func MustLookup(n Name) *Gate {
	g, ok := registry[n]
	if !ok {
		panic(fmt.Sprintf("gates: unknown gate %q", n))
	}
	return g
}

// All returns every registered gate, including pseudo-operations.
func All() []*Gate {
	out := make([]*Gate, 0, len(registry))
	for _, g := range registry {
		out = append(out, g)
	}
	return out
}

// Unitaries returns every registered gate that has a matrix.
func Unitaries() []*Gate {
	var out []*Gate
	for _, g := range All() {
		if g.Matrix != nil {
			out = append(out, g)
		}
	}
	return out
}

// IsUnitary verifies U·U† = I within tolerance; used by tests to guard
// the hand-written matrices.
func (g *Gate) IsUnitary(tol float64) bool {
	if g.Matrix == nil {
		return false
	}
	n := 1 << g.Arity
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var sum complex128
			for k := 0; k < n; k++ {
				sum += g.Matrix[r*n+k] * cmplx.Conj(g.Matrix[c*n+k])
			}
			want := complex(0, 0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(sum-want) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the gate name.
func (g *Gate) String() string { return string(g.Name) }
