package gates

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestAllUnitariesAreUnitary(t *testing.T) {
	for _, g := range Unitaries() {
		if !g.IsUnitary(1e-12) {
			t.Errorf("gate %s matrix is not unitary", g)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, n := range []Name{GateI, GateX, GateY, GateZ, GateH, GateS, GateSdg,
		GateT, GateTdg, GateCNOT, GateCZ, GateSWAP, GateTOF, PrepZ, MeasZ} {
		if _, ok := Lookup(n); !ok {
			t.Errorf("gate %q not registered", n)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unexpected gate registered under 'nope'")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown gate")
		}
	}()
	MustLookup("nope")
}

func TestClassification(t *testing.T) {
	// Thesis §2.3.3: Pauli ⊂ Clifford ⊂ U(2^n); T and Toffoli are the
	// canonical non-Clifford examples.
	want := map[Name]Class{
		GateI: ClassPauli, GateX: ClassPauli, GateY: ClassPauli, GateZ: ClassPauli,
		GateH: ClassClifford, GateS: ClassClifford, GateSdg: ClassClifford,
		GateCNOT: ClassClifford, GateCZ: ClassClifford, GateSWAP: ClassClifford,
		GateT: ClassNonClifford, GateTdg: ClassNonClifford, GateTOF: ClassNonClifford,
		PrepZ: ClassReset, MeasZ: ClassMeasure,
	}
	for n, c := range want {
		if g := MustLookup(n); g.Class != c {
			t.Errorf("gate %s classified %v, want %v", n, g.Class, c)
		}
	}
}

func TestArity(t *testing.T) {
	want := map[Name]int{
		GateX: 1, GateH: 1, GateT: 1, GateCNOT: 2, GateCZ: 2, GateSWAP: 2, GateTOF: 3,
	}
	for n, a := range want {
		if g := MustLookup(n); g.Arity != a {
			t.Errorf("gate %s arity %d, want %d", n, g.Arity, a)
		}
	}
}

// mat2 multiplies two single-qubit matrices.
func mat2(a, b []complex128) []complex128 {
	m := make([]complex128, 4)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			m[r*2+c] = a[r*2]*b[c] + a[r*2+1]*b[2+c]
		}
	}
	return m
}

func matEq(a, b []complex128, tol float64) bool {
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// matEqUpToPhase reports a = e^{iφ} b for some φ.
func matEqUpToPhase(a, b []complex128, tol float64) bool {
	var phase complex128
	for i := range a {
		if cmplx.Abs(b[i]) > tol {
			phase = a[i] / b[i]
			break
		}
	}
	if phase == 0 {
		return matEq(a, b, tol)
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-phase*b[i]) > tol {
			return false
		}
	}
	return true
}

// TestGateIdentities checks the algebraic identities of thesis §2.3.2:
// XX = YY = ZZ = HH = I, XZ = −ZX, Y = iXZ, HX = ZH, HZ = XH, S·S = Z,
// T·T = S.
func TestGateIdentities(t *testing.T) {
	id := I.Matrix
	for _, g := range []*Gate{X, Y, Z, H} {
		if !matEq(mat2(g.Matrix, g.Matrix), id, 1e-12) {
			t.Errorf("%s·%s != I", g, g)
		}
	}
	xz := mat2(X.Matrix, Z.Matrix)
	zx := mat2(Z.Matrix, X.Matrix)
	for i := range xz {
		if cmplx.Abs(xz[i]+zx[i]) > 1e-12 {
			t.Fatal("XZ != -ZX")
		}
	}
	iXZ := make([]complex128, 4)
	for i, v := range xz {
		iXZ[i] = 1i * v
	}
	if !matEq(iXZ, Y.Matrix, 1e-12) {
		t.Error("Y != iXZ")
	}
	if !matEq(mat2(H.Matrix, X.Matrix), mat2(Z.Matrix, H.Matrix), 1e-12) {
		t.Error("HX != ZH")
	}
	if !matEq(mat2(H.Matrix, Z.Matrix), mat2(X.Matrix, H.Matrix), 1e-12) {
		t.Error("HZ != XH")
	}
	if !matEq(mat2(S.Matrix, S.Matrix), Z.Matrix, 1e-12) {
		t.Error("S·S != Z")
	}
	if !matEq(mat2(T.Matrix, T.Matrix), S.Matrix, 1e-12) {
		t.Error("T·T != S")
	}
	if !matEq(mat2(S.Matrix, Sdg.Matrix), id, 1e-12) {
		t.Error("S·S† != I")
	}
	if !matEq(mat2(T.Matrix, Tdg.Matrix), id, 1e-12) {
		t.Error("T·T† != I")
	}
}

// TestCliffordConjugationOfPaulis verifies the normalizer property
// (thesis Eq. 2.16): conjugating any Pauli by H or S yields a Pauli up to
// phase.
func TestCliffordConjugationOfPaulis(t *testing.T) {
	paulis := []*Gate{I, X, Y, Z}
	cliffords := []*Gate{H, S, Sdg}
	dag := func(m []complex128) []complex128 {
		d := make([]complex128, 4)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				d[c*2+r] = cmplx.Conj(m[r*2+c])
			}
		}
		return d
	}
	for _, c := range cliffords {
		for _, p := range paulis {
			conj := mat2(mat2(c.Matrix, p.Matrix), dag(c.Matrix))
			found := false
			for _, q := range paulis {
				if matEqUpToPhase(conj, q.Matrix, 1e-12) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s %s %s† is not a Pauli", c, p, c)
			}
		}
	}
}

// TestTIsNotClifford verifies T X T† is not proportional to any Pauli.
func TestTIsNotClifford(t *testing.T) {
	dag := func(m []complex128) []complex128 {
		d := make([]complex128, 4)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				d[c*2+r] = cmplx.Conj(m[r*2+c])
			}
		}
		return d
	}
	conj := mat2(mat2(T.Matrix, X.Matrix), dag(T.Matrix))
	for _, q := range []*Gate{I, X, Y, Z} {
		if matEqUpToPhase(conj, q.Matrix, 1e-9) {
			t.Fatalf("T X T† should not be proportional to %s", q)
		}
	}
}

// TestRZFamily verifies thesis Eq. 2.5-2.6: RZ(π) = Z, RZ(π/2) = S,
// RZ(π/4) = T (exactly, no phase freedom in this convention), rotations
// compose additively, and every RZ is unitary.
func TestRZFamily(t *testing.T) {
	if g := RZ(math.Pi); !matEq(g.Matrix, Z.Matrix, 1e-12) {
		t.Error("RZ(π) != Z")
	}
	if g := RZ(math.Pi / 2); !matEq(g.Matrix, S.Matrix, 1e-12) {
		t.Error("RZ(π/2) != S")
	}
	if g := RZ(math.Pi / 4); !matEq(g.Matrix, T.Matrix, 1e-12) {
		t.Error("RZ(π/4) != T")
	}
	a, b := 0.3, 1.1
	if !matEq(mat2(RZ(a).Matrix, RZ(b).Matrix), RZ(a+b).Matrix, 1e-12) {
		t.Error("RZ(a)·RZ(b) != RZ(a+b)")
	}
	for _, th := range []float64{0, 0.1, 1, 2.5, -0.7} {
		if !RZ(th).IsUnitary(1e-12) {
			t.Errorf("RZ(%v) not unitary", th)
		}
	}
	if RZ(0.3).Class != ClassNonClifford {
		t.Error("generic RZ must be non-Clifford for the frame")
	}
}

func TestToffoliMatrixPermutation(t *testing.T) {
	m := Toffoli.Matrix
	// |110⟩ ↔ |111⟩ swap, all other basis states fixed.
	for i := 0; i < 8; i++ {
		want := i
		if i == 6 {
			want = 7
		} else if i == 7 {
			want = 6
		}
		for j := 0; j < 8; j++ {
			expect := complex(0, 0)
			if j == want {
				expect = 1
			}
			if m[i*8+j] != expect {
				t.Fatalf("Toffoli[%d][%d] = %v, want %v", i, j, m[i*8+j], expect)
			}
		}
	}
}
