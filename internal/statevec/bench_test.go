package statevec

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/gates"
)

// benchState builds an n-qubit state warmed into a dense superposition
// so every kernel touches genuinely nonzero amplitudes.
func benchState(n, workers int) *State {
	s := New(n, rand.New(rand.NewSource(1)))
	s.SetWorkers(workers)
	for q := 0; q < n; q++ {
		s.ApplyGate(gates.H, q)
	}
	s.ApplyGate(gates.T, 0)
	return s
}

// BenchmarkStatevecSingleQubit measures the strided butterfly kernel
// (H, the only dense registered single-qubit gate) on 2^20 amplitudes.
// Must stay 0 allocs/op (see TestKernelPathsAllocFree).
func BenchmarkStatevecSingleQubit(b *testing.B) {
	s := benchState(20, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.H, 10)
	}
}

// BenchmarkStatevecDiagonal measures the phase-only kernel (T): each
// touched amplitude is read and written once, no gather.
func BenchmarkStatevecDiagonal(b *testing.B) {
	s := benchState(20, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.T, 10)
	}
}

// BenchmarkStatevecPermutation measures the conditional pair-swap
// kernel (CNOT).
func BenchmarkStatevecPermutation(b *testing.B) {
	s := benchState(20, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.CNOT, 3, 15)
	}
}

// BenchmarkStatevecMeasure measures the fused measure path: the blocked
// ProbOne reduction plus the single projection/renormalization pass.
// The H re-opens the superposition so every iteration measures a
// genuinely random qubit state.
func BenchmarkStatevecMeasure(b *testing.B) {
	s := benchState(20, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(gates.H, 10)
		s.Measure(10)
	}
}

// benchCircuit draws the seeded 20-qubit random Clifford+T circuit of
// the kernel-vs-generic comparison: the acceptance workload.
func benchCircuit(n, ngates int, seed int64) []struct {
	g  *gates.Gate
	qs []int
} {
	pool := append(gates.Unitaries(), gates.RZ(0.377))
	sort.Slice(pool, func(i, j int) bool { return pool[i].Name < pool[j].Name })
	rng := rand.New(rand.NewSource(seed))
	ops := make([]struct {
		g  *gates.Gate
		qs []int
	}, ngates)
	for i := range ops {
		for {
			g := pool[rng.Intn(len(pool))]
			if g.Arity > n {
				continue
			}
			ops[i].g = g
			ops[i].qs = rng.Perm(n)[:g.Arity]
			break
		}
	}
	return ops
}

// BenchmarkStatevecRandomCircuit runs one seeded 50-gate slice of a
// 20-qubit random Clifford+T circuit per op, comparing the generic
// ApplyMatrix oracle, the serial kernels, and the sharded kernels.
// The kernels/generic ns/op ratio is the headline speedup recorded in
// BENCH_statevec.json (acceptance: ≥ 5×).
func BenchmarkStatevecRandomCircuit(b *testing.B) {
	const n, ngates, seed = 20, 50, 2017
	ops := benchCircuit(n, ngates, seed)
	b.Run("generic", func(b *testing.B) {
		s := benchState(n, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range ops {
				s.ApplyMatrix(op.g.Matrix, op.qs...)
			}
		}
	})
	b.Run("kernels", func(b *testing.B) {
		s := benchState(n, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range ops {
				s.ApplyGate(op.g, op.qs...)
			}
		}
	})
	b.Run("kernels-parallel", func(b *testing.B) {
		s := benchState(n, runtime.GOMAXPROCS(0))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range ops {
				s.ApplyGate(op.g, op.qs...)
			}
		}
	})
}
