// Specialized state-vector kernels. Every gate that the circuits of the
// thesis actually use dispatches here instead of the generic
// ApplyMatrix gather/scatter loop (kept as the differential-test
// oracle): single-qubit gates run as a strided butterfly over direct
// pair indices, diagonal gates touch only the amplitudes they can
// change, and X/Y/CNOT/SWAP/Toffoli are pure amplitude permutations.
//
// Indexing convention: a kernel over "pair space" enumerates p in
// [0, 2^(n-1)) and expands p to the basis index i0 with the target bit
// cleared by inserting a zero bit at the target position; i1 = i0|mask
// is its partner. Two- and three-qubit kernels do the same with two or
// three bit insertions (masks sorted ascending). The expansion is a
// handful of shifts, so no kernel ever scans the full 2^n index space
// skipping blocks the way the generic path does.
//
// Bit-exactness contract: each kernel performs the same complex
// multiplications and additions, in the same order, as the generic
// ApplyMatrix loop with its structural-zero skipping. The differential
// tests in kernels_test.go hold the two paths to exact (0-ulp)
// equality, so any new kernel must preserve this discipline.
package statevec

import "math/bits"

// Kernel opcodes for runShard/reduceShard dispatch.
const (
	opUnary   = iota // arbitrary 2×2 matrix, butterfly over pair space
	opPhase          // diag(1, phase) over pair space
	opPhase2         // controlled phase on |11⟩ over quarter space
	opX              // pair swap
	opY              // pair swap with ±i phases
	opCNOT           // conditional pair swap over quarter space
	opSWAP           // |01⟩↔|10⟩ swap over quarter space
	opToffoli        // doubly conditional swap over eighth space
	opProject        // fused measurement projection + renormalization

	redProbOne // Σ |a|² over the target-bit-set half, pair space
	redNorm    // Σ |a|² over the full index space
	redExpect  // ⟨ψ|P|ψ⟩ accumulation over the full index space
)

// kernelOp carries the operands of one kernel invocation. It is passed
// by value so the serial path keeps it on the stack (zero allocations)
// while the parallel path copies it into each shard's closure.
type kernelOp struct {
	code               int
	m00, m01, m10, m11 complex128 // opUnary matrix entries
	phase              complex128 // opPhase/opPhase2 factor, opProject renorm
	s1, s2, s3         uint       // target bit masks sorted ascending
	aMask, bMask       uint       // semantic masks: control(s)/x-mask, target/z-mask
	outcome            int        // opProject branch
}

// runShard executes the mutating kernel k over the iteration-space
// shard [lo, hi). Shards of one invocation write disjoint amplitude
// indices, so any sharding is race-free and bit-deterministic.
//
//qa:hotpath
func runShard(amp []complex128, k kernelOp, lo, hi int) {
	switch k.code {
	case opUnary:
		kernUnary(amp, k.m00, k.m01, k.m10, k.m11, k.s1, lo, hi)
	case opPhase:
		kernPhase(amp, k.phase, k.s1, lo, hi)
	case opPhase2:
		kernPhase2(amp, k.phase, k.s1, k.s2, lo, hi)
	case opX:
		kernX(amp, k.s1, lo, hi)
	case opY:
		kernY(amp, k.s1, lo, hi)
	case opCNOT:
		kernCNOT(amp, k.s1, k.s2, k.aMask, k.bMask, lo, hi)
	case opSWAP:
		kernSWAP(amp, k.s1, k.s2, lo, hi)
	case opToffoli:
		kernToffoli(amp, k.s1, k.s2, k.s3, k.aMask, k.bMask, lo, hi)
	case opProject:
		kernProject(amp, k.s1, k.phase, k.outcome, lo, hi)
	default:
		panic("statevec: unknown mutating kernel code")
	}
}

// reduceShard folds the read-only reduction kernel k over one shard and
// returns the partial sum. Float reductions return complex(x, 0).
//
//qa:hotpath
func reduceShard(amp []complex128, k kernelOp, lo, hi int) complex128 {
	switch k.code {
	case redProbOne:
		return kernProbOne(amp, k.s1, lo, hi)
	case redNorm:
		return kernNorm(amp, lo, hi)
	case redExpect:
		return kernExpect(amp, k.aMask, k.bMask, lo, hi)
	}
	panic("statevec: unknown reduction kernel code")
}

// kernUnary is the strided butterfly for an arbitrary single-qubit gate
// (m00 m01; m10 m11). Structural zeros of the matrix are skipped to
// mirror the generic oracle's accumulation exactly.
//
//qa:hotpath
func kernUnary(amp []complex128, m00, m01, m10, m11 complex128, mask uint, lo, hi int) {
	low := mask - 1
	for p := uint(lo); p < uint(hi); p++ {
		i0 := (p&^low)<<1 | p&low
		i1 := i0 | mask
		a0, a1 := amp[i0], amp[i1]
		var t0, t1 complex128
		//qa:allow float-eq
		if m00 != 0 {
			t0 += m00 * a0
		}
		//qa:allow float-eq
		if m01 != 0 {
			t0 += m01 * a1
		}
		//qa:allow float-eq
		if m10 != 0 {
			t1 += m10 * a0
		}
		//qa:allow float-eq
		if m11 != 0 {
			t1 += m11 * a1
		}
		amp[i0], amp[i1] = t0, t1
	}
}

// kernPhase applies diag(1, phase): only amplitudes with the target bit
// set are touched, once each, with no gather.
//
//qa:hotpath
func kernPhase(amp []complex128, phase complex128, mask uint, lo, hi int) {
	low := mask - 1
	for p := uint(lo); p < uint(hi); p++ {
		i := (p&^low)<<1 | p&low | mask
		amp[i] *= phase
	}
}

// kernPhase2 multiplies the |11⟩ quarter of a two-qubit subspace by
// phase (CZ with phase = −1). m1 < m2 are the sorted target masks.
//
//qa:hotpath
func kernPhase2(amp []complex128, phase complex128, m1, m2 uint, lo, hi int) {
	low1, low2 := m1-1, m2-1
	for p := uint(lo); p < uint(hi); p++ {
		b := (p&^low1)<<1 | p&low1
		b = (b&^low2)<<1 | b&low2
		amp[b|m1|m2] *= phase
	}
}

// kernX swaps each amplitude pair: the X gate is a pure permutation.
//
//qa:hotpath
func kernX(amp []complex128, mask uint, lo, hi int) {
	low := mask - 1
	for p := uint(lo); p < uint(hi); p++ {
		i0 := (p&^low)<<1 | p&low
		i1 := i0 | mask
		amp[i0], amp[i1] = amp[i1], amp[i0]
	}
}

// kernY swaps each pair with the Y phases: |0⟩ ← −i·a1, |1⟩ ← i·a0,
// matching the single nonzero entry per row of the Y matrix.
//
//qa:hotpath
func kernY(amp []complex128, mask uint, lo, hi int) {
	low := mask - 1
	for p := uint(lo); p < uint(hi); p++ {
		i0 := (p&^low)<<1 | p&low
		i1 := i0 | mask
		a0 := amp[i0]
		amp[i0] = -1i * amp[i1]
		amp[i1] = 1i * a0
	}
}

// kernCNOT swaps the target pair inside the control-set half: for every
// base with both bits clear, amp[base|c|t] ↔ amp[base|c]. m1 < m2 are
// the sorted masks; cm/tm the control and target masks.
//
//qa:hotpath
func kernCNOT(amp []complex128, m1, m2, cm, tm uint, lo, hi int) {
	low1, low2 := m1-1, m2-1
	for p := uint(lo); p < uint(hi); p++ {
		b := (p&^low1)<<1 | p&low1
		b = (b&^low2)<<1 | b&low2
		i := b | cm
		j := i | tm
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// kernSWAP exchanges the |01⟩ and |10⟩ amplitudes of every two-qubit
// block: for each base with both bits clear, amp[base|m1] ↔ amp[base|m2].
//
//qa:hotpath
func kernSWAP(amp []complex128, m1, m2 uint, lo, hi int) {
	low1, low2 := m1-1, m2-1
	for p := uint(lo); p < uint(hi); p++ {
		b := (p&^low1)<<1 | p&low1
		b = (b&^low2)<<1 | b&low2
		i := b | m1
		j := b | m2
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// kernToffoli swaps the target pair where both controls are set.
// m1 < m2 < m3 are the sorted masks; ccm = ctrl1|ctrl2, tm the target.
//
//qa:hotpath
func kernToffoli(amp []complex128, m1, m2, m3, ccm, tm uint, lo, hi int) {
	low1, low2, low3 := m1-1, m2-1, m3-1
	for p := uint(lo); p < uint(hi); p++ {
		b := (p&^low1)<<1 | p&low1
		b = (b&^low2)<<1 | b&low2
		b = (b&^low3)<<1 | b&low3
		i := b | ccm
		j := i | tm
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// kernProject is the fused measurement projection: in one pass over the
// pairs it zeroes the branch that was not observed and renormalizes the
// kept branch by norm = 1/√p.
//
//qa:hotpath
func kernProject(amp []complex128, mask uint, norm complex128, outcome, lo, hi int) {
	low := mask - 1
	if outcome == 1 {
		for p := uint(lo); p < uint(hi); p++ {
			i0 := (p&^low)<<1 | p&low
			amp[i0] = 0
			amp[i0|mask] *= norm
		}
		return
	}
	for p := uint(lo); p < uint(hi); p++ {
		i0 := (p&^low)<<1 | p&low
		amp[i0] *= norm
		amp[i0|mask] = 0
	}
}

// kernProbOne sums |a|² over the target-bit-set partner of every pair
// in [lo, hi), reading only half the array (no bit-test scan).
//
//qa:hotpath
func kernProbOne(amp []complex128, mask uint, lo, hi int) complex128 {
	low := mask - 1
	pr := 0.0
	for p := uint(lo); p < uint(hi); p++ {
		a := amp[(p&^low)<<1|p&low|mask]
		pr += real(a)*real(a) + imag(a)*imag(a)
	}
	return complex(pr, 0)
}

// kernNorm sums |a|² over the index-space shard [lo, hi).
//
//qa:hotpath
func kernNorm(amp []complex128, lo, hi int) complex128 {
	n := 0.0
	for i := lo; i < hi; i++ {
		a := amp[i]
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return complex(n, 0)
}

// kernExpect accumulates conj(a[i⊕x])·(±1)^{|i∧z|}·a[i] over the shard:
// the Pauli-string expectation body of ExpectPauli. The ±i factors of Y
// operators and the sign of the string are applied once by the caller.
//
//qa:hotpath
func kernExpect(amp []complex128, xMask, zMask uint, lo, hi int) complex128 {
	var acc complex128
	for i := lo; i < hi; i++ {
		a := amp[i]
		// Deliberate exact compare: skipping exactly-zero amplitudes is a
		// pure optimization, near-zeros still contribute.
		//qa:allow float-eq
		if a == 0 {
			continue
		}
		j := uint(i) ^ xMask
		c := amp[j]
		// conj(c)·(±1)·a, with the sign from the Z components.
		if bits.OnesCount(uint(i)&zMask)&1 == 1 {
			acc += complex(real(c), -imag(c)) * -a
		} else {
			acc += complex(real(c), -imag(c)) * a
		}
	}
	return acc
}
