package statevec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/pauli"
)

func TestExpectPauliBasics(t *testing.T) {
	s := newState(2)
	// ⟨00|Z0|00⟩ = 1, ⟨00|X0|00⟩ = 0.
	if got := s.ExpectPauli(pauli.ZString(0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("⟨Z0⟩ on |00⟩ = %v", got)
	}
	if got := s.ExpectPauli(pauli.XString(0)); math.Abs(got) > 1e-12 {
		t.Errorf("⟨X0⟩ on |00⟩ = %v", got)
	}
	s.ApplyGate(gates.X, 0)
	if got := s.ExpectPauli(pauli.ZString(0)); math.Abs(got+1) > 1e-12 {
		t.Errorf("⟨Z0⟩ on |01⟩ = %v", got)
	}
	if got := s.ExpectPauli(pauli.ZString(0).Negated()); math.Abs(got-1) > 1e-12 {
		t.Errorf("⟨-Z0⟩ on |01⟩ = %v", got)
	}
}

func TestExpectPauliPlusAndY(t *testing.T) {
	s := newState(1)
	s.ApplyGate(gates.H, 0)
	if got := s.ExpectPauli(pauli.XString(0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("⟨X⟩ on |+⟩ = %v", got)
	}
	s.ApplyGate(gates.S, 0) // |+i⟩
	y := pauli.NewPauliString(map[int]pauli.Pauli{0: pauli.Y})
	if got := s.ExpectPauli(y); math.Abs(got-1) > 1e-12 {
		t.Errorf("⟨Y⟩ on |+i⟩ = %v", got)
	}
	if got := s.ExpectPauli(pauli.XString(0)); math.Abs(got) > 1e-12 {
		t.Errorf("⟨X⟩ on |+i⟩ = %v", got)
	}
}

func TestExpectPauliBellStabilizers(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.H, 0)
	s.ApplyGate(gates.CNOT, 0, 1)
	for _, ps := range []pauli.PauliString{pauli.XString(0, 1), pauli.ZString(0, 1)} {
		if got := s.ExpectPauli(ps); math.Abs(got-1) > 1e-12 {
			t.Errorf("⟨%v⟩ on Bell = %v", ps, got)
		}
	}
	yy := pauli.NewPauliString(map[int]pauli.Pauli{0: pauli.Y, 1: pauli.Y})
	if got := s.ExpectPauli(yy); math.Abs(got+1) > 1e-12 {
		t.Errorf("⟨YY⟩ on Bell = %v, want −1", got)
	}
	if got := s.ExpectPauli(pauli.ZString(0)); math.Abs(got) > 1e-12 {
		t.Errorf("⟨Z0⟩ on Bell = %v, want 0", got)
	}
}

func TestExpectPauliMatchesProbability(t *testing.T) {
	// ⟨Z_q⟩ = 1 − 2·P(1) on arbitrary states.
	rng := rand.New(rand.NewSource(9))
	s := New(3, rng)
	for i := 0; i < 12; i++ {
		s.ApplyGate(gates.H, rng.Intn(3))
		s.ApplyGate(gates.T, rng.Intn(3))
		s.ApplyGate(gates.CNOT, 0, 1+rng.Intn(2))
	}
	for q := 0; q < 3; q++ {
		want := 1 - 2*s.ProbOne(q)
		if got := s.ExpectPauli(pauli.ZString(q)); math.Abs(got-want) > 1e-9 {
			t.Errorf("⟨Z%d⟩ = %v, want %v", q, got, want)
		}
	}
}
