package statevec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gates"
	"repro/internal/pauli"
)

// diffPool is every registered unitary plus an unregistered RZ, so the
// differential circuits exercise each specialized kernel, the diagonal
// fallback, and the generic multi-qubit oracle path (Toffoli). The pool
// is sorted by name: gates.Unitaries() walks the registry map, and the
// seeded circuits must not depend on map iteration order.
func diffPool() []*gates.Gate {
	pool := append(gates.Unitaries(), gates.RZ(0.7310), gates.RZ(-1.234))
	sort.Slice(pool, func(i, j int) bool { return pool[i].Name < pool[j].Name })
	return pool
}

// randomOp draws a gate and a distinct operand list for an n-qubit register.
func randomOp(pool []*gates.Gate, n int, rng *rand.Rand) (*gates.Gate, []int) {
	for {
		g := pool[rng.Intn(len(pool))]
		if g.Arity > n {
			continue
		}
		qs := rng.Perm(n)[:g.Arity]
		return g, qs
	}
}

// TestKernelsMatchGenericOracle drives the specialized kernels and the
// retained generic ApplyMatrix oracle through identical seeded random
// circuits with interleaved measurements and requires exact (0-ulp)
// agreement of every amplitude and every outcome. Qubit counts cross
// the parallel shard threshold and the reduction block boundary
// (parMinSpan = 2^13 iterations, reduceBlock = 2^12), so the sharded
// parallel path is compared against the serial oracle too.
func TestKernelsMatchGenericOracle(t *testing.T) {
	pool := diffPool()
	for _, tc := range []struct {
		n, gates, workers int
	}{
		{1, 60, 1},
		{2, 120, 1},
		{3, 200, 2},
		{5, 300, 3},
		{13, 150, 4}, // pair space exactly one reduction block
		{14, 150, 4}, // crosses shard and block boundaries
	} {
		seed := int64(1000 + tc.n)
		spec := New(tc.n, rand.New(rand.NewSource(seed)))
		spec.SetWorkers(tc.workers)
		oracle := New(tc.n, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed * 7))
		for i := 0; i < tc.gates; i++ {
			g, qs := randomOp(pool, tc.n, rng)
			spec.ApplyGate(g, qs...)
			oracle.ApplyMatrix(g.Matrix, qs...)
			if i%23 == 22 {
				q := rng.Intn(tc.n)
				ms, mo := spec.Measure(q), oracle.Measure(q)
				if ms != mo {
					t.Fatalf("n=%d gate %d: outcome diverged (kernel %d, oracle %d)", tc.n, i, ms, mo)
				}
			}
			if i%37 == 36 || i == tc.gates-1 {
				sa, oa := spec.Amplitudes(), oracle.Amplitudes()
				for j := range sa {
					if sa[j] != oa[j] {
						t.Fatalf("n=%d after gate %d (%s %v): amp[%d] kernel %v, oracle %v",
							tc.n, i, g, qs, j, sa[j], oa[j])
					}
				}
			}
		}
	}
}

// TestWorkerCountDeterminism asserts bit-equality of amplitudes,
// measurement outcomes, and every reduction between Workers=1 and
// Workers=N runs of the same seeded circuit, on a register big enough
// that the N-worker run really shards (2^14 amplitudes).
func TestWorkerCountDeterminism(t *testing.T) {
	const n, ngates, seed = 14, 200, 99
	pool := diffPool()
	type trace struct {
		amps     []complex128
		outcomes []int
		probs    []float64
		norms    []float64
	}
	runWith := func(workers int) trace {
		s := New(n, rand.New(rand.NewSource(seed)))
		s.SetWorkers(workers)
		rng := rand.New(rand.NewSource(seed * 3))
		var tr trace
		for i := 0; i < ngates; i++ {
			g, qs := randomOp(pool, n, rng)
			s.ApplyGate(g, qs...)
			if i%17 == 16 {
				q := rng.Intn(n)
				tr.probs = append(tr.probs, s.ProbOne(q))
				tr.outcomes = append(tr.outcomes, s.Measure(q))
				tr.norms = append(tr.norms, s.Norm())
			}
		}
		tr.amps = s.Amplitudes()
		return tr
	}
	ref := runWith(1)
	for _, w := range []int{2, 3, 5, 8} {
		got := runWith(w)
		for i := range ref.probs {
			if got.probs[i] != ref.probs[i] {
				t.Fatalf("workers=%d: ProbOne #%d = %v, workers=1 gave %v", w, i, got.probs[i], ref.probs[i])
			}
			if got.outcomes[i] != ref.outcomes[i] {
				t.Fatalf("workers=%d: outcome #%d diverged", w, i)
			}
			if got.norms[i] != ref.norms[i] {
				t.Fatalf("workers=%d: Norm #%d = %v, workers=1 gave %v", w, i, got.norms[i], ref.norms[i])
			}
		}
		for j := range ref.amps {
			if got.amps[j] != ref.amps[j] {
				t.Fatalf("workers=%d: amp[%d] = %v, workers=1 gave %v", w, j, got.amps[j], ref.amps[j])
			}
		}
	}
}

// TestExpectPauliWorkerDeterminism covers the remaining float reduction:
// the Pauli-string expectation must be bit-identical across worker counts.
func TestExpectPauliWorkerDeterminism(t *testing.T) {
	const n, seed = 14, 4242
	pool := diffPool()
	build := func(workers int) *State {
		s := New(n, rand.New(rand.NewSource(seed)))
		s.SetWorkers(workers)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 120; i++ {
			g, qs := randomOp(pool, n, rng)
			s.ApplyGate(g, qs...)
		}
		return s
	}
	ref := build(1)
	par := build(7)
	for q := 0; q < n; q += 3 {
		for _, ps := range []pauli.PauliString{
			pauli.ZString(q),
			pauli.XString(q),
			pauli.NewPauliString(map[int]pauli.Pauli{q: pauli.Y, (q + 1) % n: pauli.Z}),
		} {
			if got, want := par.ExpectPauli(ps), ref.ExpectPauli(ps); got != want {
				t.Fatalf("⟨%s⟩ workers=7 gives %v, workers=1 gives %v", ps, got, want)
			}
		}
	}
}

// TestKernelPathsAllocFree pins the 0 allocs/op claim of the serial
// kernel paths: single-qubit, diagonal, permutation, and the fused
// ProbOne/Measure path must not allocate after construction.
func TestKernelPathsAllocFree(t *testing.T) {
	s := New(12, rand.New(rand.NewSource(5)))
	rz := gates.RZ(0.3)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"H", func() { s.ApplyGate(gates.H, 4) }},
		{"T", func() { s.ApplyGate(gates.T, 3) }},
		{"RZ", func() { s.ApplyGate(rz, 2) }},
		{"X", func() { s.ApplyGate(gates.X, 5) }},
		{"Y", func() { s.ApplyGate(gates.Y, 6) }},
		{"CNOT", func() { s.ApplyGate(gates.CNOT, 1, 9) }},
		{"CZ", func() { s.ApplyGate(gates.CZ, 2, 7) }},
		{"SWAP", func() { s.ApplyGate(gates.SWAP, 0, 11) }},
		{"Toffoli", func() { s.ApplyGate(gates.Toffoli, 1, 2, 3) }},
		{"ProbOne", func() { _ = s.ProbOne(4) }},
		{"Norm", func() { _ = s.Norm() }},
		{"Measure", func() { _ = s.Measure(8) }},
	} {
		if allocs := testing.AllocsPerRun(50, tc.f); allocs != 0 {
			t.Errorf("%s: %g allocs/op on the serial kernel path, want 0", tc.name, allocs)
		}
	}
}

// TestFromAmplitudesRequiresNormalization checks the new strictness:
// unnormalized vectors panic with a clear message, near-normalized
// vectors (within tolerance) are accepted.
func TestFromAmplitudesRequiresNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("unnormalized", func() {
		FromAmplitudes([]complex128{0.5, 0.5}, rng)
	})
	mustPanic("zero vector", func() {
		FromAmplitudes(make([]complex128, 4), rng)
	})
	w := complex(1/math.Sqrt2, 0)
	s := FromAmplitudes([]complex128{w, 0, 0, w}, rng)
	if s.NumQubits() != 2 {
		t.Fatalf("NumQubits = %d", s.NumQubits())
	}
	// Within tolerance: |amp|² = 1 + 3e-7.
	FromAmplitudes([]complex128{0, complex(math.Sqrt(1+3e-7), 0)}, rng)
}

// TestMeasureClampsProbability feeds Measure a state whose ProbOne
// exceeds 1 by accumulated-style float error (legal within the
// FromAmplitudes tolerance). The clamp must force the draw threshold to
// 1 (outcome 1, since rand.Float64 < 1 always) and renormalize with
// p = 1, leaving the amplitude untouched instead of shrinking it.
func TestMeasureClampsProbability(t *testing.T) {
	const excess = 3e-7
	mag := math.Sqrt(1 + excess)
	s := FromAmplitudes([]complex128{0, complex(mag, 0)}, rand.New(rand.NewSource(11)))
	if p := s.ProbOne(0); p <= 1 {
		t.Fatalf("test setup: ProbOne = %v, want > 1", p)
	}
	if got := s.Measure(0); got != 1 {
		t.Fatalf("Measure = %d, want 1", got)
	}
	// With the clamp, the renormalization factor is 1/√1: the amplitude
	// must still be exactly mag, not mag/√(1+excess).
	if a := s.Amplitudes()[1]; real(a) != mag || imag(a) != 0 {
		t.Fatalf("clamped projection changed the amplitude: %v, want %v", a, mag)
	}
}
