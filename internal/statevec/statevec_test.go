package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gates"
)

func newState(n int) *State { return New(n, rand.New(rand.NewSource(42))) }

func TestInitialState(t *testing.T) {
	s := newState(3)
	if s.amp[0] != 1 {
		t.Fatal("initial amplitude of |000> should be 1")
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatal("initial norm != 1")
	}
}

func TestXFlipsBit(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.X, 0)
	if cmplx.Abs(s.amp[1]-1) > 1e-12 {
		t.Fatalf("X q0 should give |01>: %v", s.Support(1e-9))
	}
	s.ApplyGate(gates.X, 1)
	if cmplx.Abs(s.amp[3]-1) > 1e-12 {
		t.Fatalf("X q1 should give |11>: %v", s.Support(1e-9))
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := newState(1)
	s.ApplyGate(gates.H, 0)
	w := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.amp[0]-w) > 1e-12 || cmplx.Abs(s.amp[1]-w) > 1e-12 {
		t.Fatalf("H|0> wrong: %v", s.Amplitudes())
	}
	s.ApplyGate(gates.H, 0)
	if cmplx.Abs(s.amp[0]-1) > 1e-12 {
		t.Fatal("HH|0> != |0>")
	}
}

func TestBellState(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.H, 0)
	s.ApplyGate(gates.CNOT, 0, 1)
	w := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.amp[0]-w) > 1e-12 || cmplx.Abs(s.amp[3]-w) > 1e-12 ||
		cmplx.Abs(s.amp[1]) > 1e-12 || cmplx.Abs(s.amp[2]) > 1e-12 {
		t.Fatalf("Bell state wrong: %v", s.Amplitudes())
	}
	// Measuring both qubits must agree.
	for trial := 0; trial < 20; trial++ {
		b := newState(2)
		b.ApplyGate(gates.H, 0)
		b.ApplyGate(gates.CNOT, 0, 1)
		m0 := b.Measure(0)
		m1 := b.Measure(1)
		if m0 != m1 {
			t.Fatalf("Bell measurement disagreement: %d vs %d", m0, m1)
		}
	}
}

func TestCNOTDirection(t *testing.T) {
	// Control is the first operand: X on control flips target, not vice versa.
	s := newState(2)
	s.ApplyGate(gates.X, 0) // control q0 = 1
	s.ApplyGate(gates.CNOT, 0, 1)
	if cmplx.Abs(s.amp[3]-1) > 1e-12 {
		t.Fatalf("CNOT with control=1 should flip target: %v", s.Support(1e-9))
	}
	s2 := newState(2)
	s2.ApplyGate(gates.X, 1) // target q1 = 1, control 0
	s2.ApplyGate(gates.CNOT, 0, 1)
	if cmplx.Abs(s2.amp[2]-1) > 1e-12 {
		t.Fatalf("CNOT with control=0 should not act: %v", s2.Support(1e-9))
	}
}

func TestCZPhase(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.X, 0)
	s.ApplyGate(gates.X, 1)
	s.ApplyGate(gates.CZ, 0, 1)
	if cmplx.Abs(s.amp[3]+1) > 1e-12 {
		t.Fatalf("CZ|11> should be -|11>: %v", s.Amplitudes())
	}
}

func TestSWAP(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.X, 0)
	s.ApplyGate(gates.SWAP, 0, 1)
	if cmplx.Abs(s.amp[2]-1) > 1e-12 {
		t.Fatalf("SWAP failed: %v", s.Support(1e-9))
	}
}

func TestToffoli(t *testing.T) {
	// Only |11x> flips the target.
	for c1 := 0; c1 < 2; c1++ {
		for c2 := 0; c2 < 2; c2++ {
			s := newState(3)
			if c1 == 1 {
				s.ApplyGate(gates.X, 0)
			}
			if c2 == 1 {
				s.ApplyGate(gates.X, 1)
			}
			s.ApplyGate(gates.Toffoli, 0, 1, 2)
			wantTarget := 0
			if c1 == 1 && c2 == 1 {
				wantTarget = 1
			}
			want := uint(c1) | uint(c2)<<1 | uint(wantTarget)<<2
			sup := s.Support(1e-9)
			if len(sup) != 1 || sup[0].Basis != want {
				t.Fatalf("Toffoli(%d,%d): support %v, want basis %d", c1, c2, sup, want)
			}
		}
	}
}

func TestMeasurementStatistics(t *testing.T) {
	ones := 0
	const n = 4000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		s := New(1, rng)
		s.ApplyGate(gates.H, 0)
		ones += s.Measure(0)
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("H|0> measurement bias: %f", frac)
	}
}

func TestMeasureCollapses(t *testing.T) {
	s := newState(1)
	s.ApplyGate(gates.H, 0)
	m := s.Measure(0)
	if got := s.Measure(0); got != m {
		t.Fatal("repeated measurement changed outcome")
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatal("collapsed state not normalized")
	}
}

func TestReset(t *testing.T) {
	s := newState(2)
	s.ApplyGate(gates.X, 1)
	s.ApplyGate(gates.H, 0)
	s.Reset(0)
	s.Reset(1)
	if cmplx.Abs(s.amp[0]-1) > 1e-12 {
		t.Fatalf("reset failed: %v", s.Support(1e-9))
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	a := newState(2)
	a.ApplyGate(gates.H, 0)
	a.ApplyGate(gates.CNOT, 0, 1)
	b := a.Clone()
	// Multiply b by a global phase e^{iπ/3}.
	phase := cmplx.Exp(complex(0, math.Pi/3))
	for i := range b.amp {
		b.amp[i] *= phase
	}
	ok, got := EqualUpToGlobalPhase(a, b, 1e-9)
	if !ok {
		t.Fatal("states should be equal up to phase")
	}
	if cmplx.Abs(got-cmplx.Conj(phase)) > 1e-9 {
		t.Fatalf("recovered phase %v", got)
	}
	// A genuinely different state must not compare equal.
	c := newState(2)
	c.ApplyGate(gates.H, 0)
	if ok, _ := EqualUpToGlobalPhase(a, c, 1e-9); ok {
		t.Fatal("different states compared equal")
	}
}

func TestSupportString(t *testing.T) {
	s := newState(3)
	s.ApplyGate(gates.X, 1)
	got := s.SupportString(1e-9)
	if !strings.Contains(got, "|010>") {
		t.Fatalf("SupportString = %q", got)
	}
	if !strings.HasPrefix(got, "(1+0j)") {
		t.Fatalf("amplitude rendering: %q", got)
	}
}

func TestExtractSubsystem(t *testing.T) {
	// Entangle qubits 0 and 2, set qubit 1 to |1⟩; extracting {0,2} works.
	s := newState(3)
	s.ApplyGate(gates.H, 0)
	s.ApplyGate(gates.CNOT, 0, 2)
	s.ApplyGate(gates.X, 1)
	sub, err := s.ExtractSubsystem([]int{0, 2})
	if err != nil {
		t.Fatalf("ExtractSubsystem: %v", err)
	}
	w := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(sub.amp[0]-w) > 1e-12 || cmplx.Abs(sub.amp[3]-w) > 1e-12 {
		t.Fatalf("subsystem wrong: %v", sub.Amplitudes())
	}
	// Extracting {0,1} must fail: qubit 2 is entangled with qubit 0.
	if _, err := s.ExtractSubsystem([]int{0, 1}); err == nil {
		t.Fatal("expected entanglement error")
	}
}

func TestApplyMatrixValidation(t *testing.T) {
	s := newState(2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("repeated qubit", func() { s.ApplyGate(gates.CNOT, 0, 0) })
	mustPanic("bad matrix size", func() { s.ApplyMatrix([]complex128{1, 0, 0, 1}, 0, 1) })
	mustPanic("qubit out of range", func() { s.ApplyGate(gates.X, 5) })
	mustPanic("arity mismatch", func() { s.ApplyGate(gates.CNOT, 0) })
}

// Property: any sequence of Clifford+T gates preserves the norm.
func TestGatesPreserveNormProperty(t *testing.T) {
	pool := []*gates.Gate{gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T, gates.CNOT, gates.CZ, gates.SWAP}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(4, rng)
		for i := 0; i < 30; i++ {
			g := pool[rng.Intn(len(pool))]
			q1 := rng.Intn(4)
			if g.Arity == 1 {
				s.ApplyGate(g, q1)
			} else {
				q2 := (q1 + 1 + rng.Intn(3)) % 4
				s.ApplyGate(g, q1, q2)
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: H on random states is self-inverse.
func TestHSelfInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(3, rng)
		for i := 0; i < 10; i++ {
			s.ApplyGate(gates.T, rng.Intn(3))
			s.ApplyGate(gates.H, rng.Intn(3))
		}
		before := s.Clone()
		s.ApplyGate(gates.H, 1)
		s.ApplyGate(gates.H, 1)
		ok, _ := EqualUpToGlobalPhase(before, s, 1e-9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
