// Package statevec implements a universal state-vector quantum simulator,
// the in-process substitute for the QX Simulator back-end of the thesis
// (§4.1.1). It stores the full 2^n vector of complex amplitudes, applies
// gates by matrix-vector multiplication, and performs projective
// computational-basis measurements. Qubit 0 is the least significant bit
// of a basis index, matching the thesis listings where the rightmost bit
// of |000000110⟩ is data qubit 0.
package statevec

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/gates"
	"repro/internal/pauli"
)

// State is a pure quantum state of n qubits.
type State struct {
	n   int
	amp []complex128
	rng *rand.Rand
}

// New creates the all-zeros state |0...0⟩ of n qubits. The supplied RNG
// drives measurement outcomes; pass a seeded source for reproducibility.
func New(n int, rng *rand.Rand) *State {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<n), rng: rng}
	s.amp[0] = 1
	return s
}

// FromAmplitudes builds a state from an explicit amplitude vector whose
// length must be a power of two. The vector is used directly (not copied).
func FromAmplitudes(amp []complex128, rng *rand.Rand) *State {
	n := 0
	for 1<<n < len(amp) {
		n++
	}
	if 1<<n != len(amp) || n < 1 {
		panic(fmt.Sprintf("statevec: amplitude vector length %d is not a power of two", len(amp)))
	}
	return &State{n: n, amp: amp, rng: rng}
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Amplitudes returns a copy of the amplitude vector.
func (s *State) Amplitudes() []complex128 {
	return append([]complex128(nil), s.amp...)
}

// checkQubits validates qubit indices.
func (s *State) checkQubits(qs []int) {
	for _, q := range qs {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
		}
	}
}

// ApplyGate applies a registered unitary gate. For multi-qubit gates the
// first listed qubit is the most significant bit of the gate matrix basis
// (control first for CNOT/CZ, the two controls first for Toffoli).
func (s *State) ApplyGate(g *gates.Gate, qubits ...int) {
	if g.Matrix == nil {
		panic(fmt.Sprintf("statevec: gate %s has no matrix", g))
	}
	if len(qubits) != g.Arity {
		panic(fmt.Sprintf("statevec: gate %s wants %d qubits, got %d", g, g.Arity, len(qubits)))
	}
	s.ApplyMatrix(g.Matrix, qubits...)
}

// ApplyMatrix applies an arbitrary 2^k × 2^k unitary to the listed qubits.
func (s *State) ApplyMatrix(m []complex128, qubits ...int) {
	s.checkQubits(qubits)
	k := len(qubits)
	dim := 1 << k
	if len(m) != dim*dim {
		panic(fmt.Sprintf("statevec: matrix size %d does not match %d qubits", len(m), k))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if qubits[i] == qubits[j] {
				panic("statevec: repeated qubit in gate operand list")
			}
		}
	}
	// Masks for the target bits; qubits[0] is the most significant local bit.
	masks := make([]uint, k)
	for i, q := range qubits {
		masks[k-1-i] = 1 << uint(q) // local bit i (LSB-first) ↔ qubits[k-1-i]
	}
	allMask := uint(0)
	for _, mk := range masks {
		allMask |= mk
	}
	scratch := make([]complex128, dim)
	total := uint(1) << uint(s.n)
	for base := uint(0); base < total; base++ {
		if base&allMask != 0 {
			continue
		}
		// Gather the 2^k amplitudes of this block.
		for loc := 0; loc < dim; loc++ {
			idx := base
			for b := 0; b < k; b++ {
				if loc&(1<<uint(b)) != 0 {
					idx |= masks[b]
				}
			}
			scratch[loc] = s.amp[idx]
		}
		// Multiply and scatter.
		for row := 0; row < dim; row++ {
			var sum complex128
			for col := 0; col < dim; col++ {
				// Deliberate exact compare: skipping structural zeros of
				// the gate matrix, not a rounded-value comparison.
				//qa:allow float-eq
				if m[row*dim+col] != 0 {
					sum += m[row*dim+col] * scratch[col]
				}
			}
			idx := base
			for b := 0; b < k; b++ {
				if row&(1<<uint(b)) != 0 {
					idx |= masks[b]
				}
			}
			s.amp[idx] = sum
		}
	}
}

// ProbOne returns the probability of measuring qubit q as 1.
func (s *State) ProbOne(q int) float64 {
	s.checkQubits([]int{q})
	mask := uint(1) << uint(q)
	p := 0.0
	for i, a := range s.amp {
		if uint(i)&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Measure performs a projective computational-basis measurement of qubit
// q, collapsing the state, and returns 0 or 1.
func (s *State) Measure(q int) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if s.rng.Float64() < p1 {
		outcome = 1
	}
	s.project(q, outcome, p1)
	return outcome
}

// project collapses qubit q to the given outcome and renormalizes.
func (s *State) project(q, outcome int, p1 float64) {
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		panic("statevec: projecting onto zero-probability outcome")
	}
	norm := complex(1/math.Sqrt(p), 0)
	mask := uint(1) << uint(q)
	for i := range s.amp {
		bit := 0
		if uint(i)&mask != 0 {
			bit = 1
		}
		if bit == outcome {
			s.amp[i] *= norm
		} else {
			s.amp[i] = 0
		}
	}
}

// Reset forces qubit q to |0⟩ by measuring and flipping when necessary.
func (s *State) Reset(q int) {
	if s.Measure(q) == 1 {
		s.ApplyGate(gates.X, q)
	}
}

// Norm returns the 2-norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	n := 0.0
	for _, a := range s.amp {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(n)
}

// EqualUpToGlobalPhase reports whether two states are equal up to a
// global phase factor, within tolerance, and returns the phase.
func EqualUpToGlobalPhase(a, b *State, tol float64) (bool, complex128) {
	if a.n != b.n {
		return false, 0
	}
	// Find the largest amplitude of b to define the phase.
	best, bestMag := -1, tol
	for i, v := range b.amp {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = i, m
		}
	}
	if best < 0 {
		return false, 0
	}
	phase := a.amp[best] / b.amp[best]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false, 0
	}
	for i := range a.amp {
		if cmplx.Abs(a.amp[i]-phase*b.amp[i]) > tol {
			return false, 0
		}
	}
	return true, phase
}

// SupportEntry is one nonzero component of the state.
type SupportEntry struct {
	Basis uint
	Amp   complex128
}

// Support lists the nonzero basis components sorted by basis index.
func (s *State) Support(tol float64) []SupportEntry {
	var out []SupportEntry
	for i, a := range s.amp {
		if cmplx.Abs(a) > tol {
			out = append(out, SupportEntry{Basis: uint(i), Amp: a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Basis < out[j].Basis })
	return out
}

// SupportString renders the support in the thesis listing style, e.g.
// "(0.25+0j) |000000110>". Qubit 0 is the rightmost bit.
func (s *State) SupportString(tol float64) string {
	var b strings.Builder
	for _, e := range s.Support(tol) {
		fmt.Fprintf(&b, "(%s) |%s>\n", fmtComplex(e.Amp), basisString(e.Basis, s.n))
	}
	return b.String()
}

func basisString(v uint, n int) string {
	bs := make([]byte, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(n-1-i)) != 0 {
			bs[i] = '1'
		} else {
			bs[i] = '0'
		}
	}
	return string(bs)
}

func fmtComplex(c complex128) string {
	re, im := real(c), imag(c)
	round := func(f float64) float64 { return math.Round(f*1e6) / 1e6 }
	return fmt.Sprintf("%g%+gj", round(re), round(im))
}

// ExtractSubsystem returns the state of the listed qubits under the
// assumption that every other qubit is in a definite computational-basis
// state (true right after those qubits were measured or reset). It errors
// when the complement is not in a product basis state.
func (s *State) ExtractSubsystem(keep []int) (*State, error) {
	s.checkQubits(keep)
	inKeep := map[int]bool{}
	for _, q := range keep {
		inKeep[q] = true
	}
	var restMask uint
	for q := 0; q < s.n; q++ {
		if !inKeep[q] {
			restMask |= 1 << uint(q)
		}
	}
	const tol = 1e-9
	restVal := uint(0)
	found := false
	for i, a := range s.amp {
		if cmplx.Abs(a) <= tol {
			continue
		}
		rv := uint(i) & restMask
		if !found {
			restVal, found = rv, true
		} else if rv != restVal {
			return nil, fmt.Errorf("statevec: complement qubits are entangled with the subsystem")
		}
	}
	if !found {
		return nil, fmt.Errorf("statevec: zero state")
	}
	out := New(len(keep), s.rng)
	out.amp[0] = 0
	for i, a := range s.amp {
		if uint(i)&restMask != restVal {
			continue
		}
		var sub uint
		for bi, q := range keep {
			if uint(i)&(1<<uint(q)) != 0 {
				sub |= 1 << uint(bi)
			}
		}
		out.amp[sub] = a
	}
	return out, nil
}

// Clone deep-copies the state (sharing the RNG).
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...), rng: s.rng}
}

// ExpectPauli returns the real expectation value ⟨ψ|P|ψ⟩ of a Pauli
// string, the state-vector counterpart of the stabilizer simulator's
// deterministic stabilizer query (used to cross-check the two back-ends).
func (s *State) ExpectPauli(ps pauli.PauliString) float64 {
	var xMask, zMask, yMask uint
	// Order-free: per-qubit OR into disjoint mask bits, plus the
	// bounds-check panic guard.
	//qa:allow determinism
	for q, p := range ps.Ops {
		s.checkQubits([]int{q})
		if p.HasX() {
			xMask |= 1 << uint(q)
		}
		if p.HasZ() {
			zMask |= 1 << uint(q)
		}
		if p == pauli.Y {
			yMask |= 1 << uint(q)
		}
	}
	// P|i⟩ = phase(i) |i ⊕ xMask⟩ with phase from Z components and the
	// i factors of Y = iXZ acting on the pre-flip bits.
	yCount := bits.OnesCount(yMask)
	var acc complex128
	for i, a := range s.amp {
		// Deliberate exact compare: skipping exactly-zero amplitudes is a
		// pure optimization, near-zeros still contribute.
		//qa:allow float-eq
		if a == 0 {
			continue
		}
		j := uint(i) ^ xMask
		// Z components give (−1)^{bits of i & zMask}; each Y contributes
		// an extra i times (−1)^{bit set} folded below.
		sign := bits.OnesCount(uint(i)&zMask) & 1
		phase := complex(1, 0)
		if sign == 1 {
			phase = -1
		}
		// Global i^yCount, and each Y on a set bit flips... fold via the
		// standard Y action: Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩. The Z-mask term
		// above already accounts for (−1)^{bit}; multiply by i per Y.
		acc += cmplx.Conj(s.amp[j]) * phase * a
	}
	switch yCount % 4 {
	case 1:
		acc *= 1i
	case 2:
		acc *= -1
	case 3:
		acc *= -1i
	}
	if ps.Negative {
		acc = -acc
	}
	return real(acc)
}
