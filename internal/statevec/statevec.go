// Package statevec implements a universal state-vector quantum simulator,
// the in-process substitute for the QX Simulator back-end of the thesis
// (§4.1.1). It stores the full 2^n vector of complex amplitudes, applies
// gates through specialized kernels (kernels.go, dispatch.go) with the
// generic matrix-vector path retained as the differential-test oracle,
// and performs projective computational-basis measurements. Qubit 0 is
// the least significant bit of a basis index, matching the thesis
// listings where the rightmost bit of |000000110⟩ is data qubit 0.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"strings"
)

// normTol bounds how far |amp|² may drift from 1 in FromAmplitudes.
const normTol = 1e-6

// State is a pure quantum state of n qubits.
type State struct {
	n   int
	amp []complex128
	rng *rand.Rand
	// workers is the resolved kernel shard count (≥ 1, default 1).
	workers int
	// red holds per-block partial sums for the deterministic reductions
	// (one slot per fixed reduction block, see dispatch.go).
	red []complex128
}

// New creates the all-zeros state |0...0⟩ of n qubits. The supplied RNG
// drives measurement outcomes; pass a seeded source for reproducibility.
func New(n int, rng *rand.Rand) *State {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<n), rng: rng, workers: 1}
	s.red = make([]complex128, numReduceBlocks(len(s.amp)))
	s.amp[0] = 1
	return s
}

// FromAmplitudes builds a state from an explicit amplitude vector whose
// length must be a power of two and whose 2-norm must be 1 within
// tolerance (matching the strictness of New, which only ever produces
// normalized states). The vector is used directly (not copied).
func FromAmplitudes(amp []complex128, rng *rand.Rand) *State {
	n := 0
	for 1<<n < len(amp) {
		n++
	}
	if 1<<n != len(amp) || n < 1 {
		panic(fmt.Sprintf("statevec: amplitude vector length %d is not a power of two", len(amp)))
	}
	n2 := 0.0
	for _, a := range amp {
		n2 += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(n2-1) > normTol {
		panic(fmt.Sprintf("statevec: amplitude vector is not normalized (|amp|² = %g)", n2))
	}
	s := &State{n: n, amp: amp, rng: rng, workers: 1}
	s.red = make([]complex128, numReduceBlocks(len(amp)))
	return s
}

// numReduceBlocks sizes the partial-sum scratch for an amplitude count.
func numReduceBlocks(m int) int {
	nb := (m + reduceBlock - 1) >> reduceBlockShift
	if nb < 1 {
		nb = 1
	}
	return nb
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Amplitudes returns a copy of the amplitude vector.
func (s *State) Amplitudes() []complex128 {
	return append([]complex128(nil), s.amp...)
}

// checkQubits validates qubit indices.
func (s *State) checkQubits(qs []int) {
	for _, q := range qs {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
		}
	}
}

// ApplyMatrix applies an arbitrary 2^k × 2^k unitary to the listed
// qubits through the generic gather/scatter loop. This is the reference
// path: ApplyGate dispatches to the specialized kernels instead, and the
// differential tests drive both through identical circuits requiring
// exact agreement (the chp.Reference pattern).
func (s *State) ApplyMatrix(m []complex128, qubits ...int) {
	s.checkQubits(qubits)
	k := len(qubits)
	dim := 1 << k
	if len(m) != dim*dim {
		panic(fmt.Sprintf("statevec: matrix size %d does not match %d qubits", len(m), k))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if qubits[i] == qubits[j] {
				panic("statevec: repeated qubit in gate operand list")
			}
		}
	}
	// Masks for the target bits; qubits[0] is the most significant local bit.
	masks := make([]uint, k)
	for i, q := range qubits {
		masks[k-1-i] = 1 << uint(q) // local bit i (LSB-first) ↔ qubits[k-1-i]
	}
	allMask := uint(0)
	for _, mk := range masks {
		allMask |= mk
	}
	scratch := make([]complex128, dim)
	total := uint(1) << uint(s.n)
	for base := uint(0); base < total; base++ {
		if base&allMask != 0 {
			continue
		}
		// Gather the 2^k amplitudes of this block.
		for loc := 0; loc < dim; loc++ {
			idx := base
			for b := 0; b < k; b++ {
				if loc&(1<<uint(b)) != 0 {
					idx |= masks[b]
				}
			}
			scratch[loc] = s.amp[idx]
		}
		// Multiply and scatter.
		for row := 0; row < dim; row++ {
			var sum complex128
			for col := 0; col < dim; col++ {
				// Deliberate exact compare: skipping structural zeros of
				// the gate matrix, not a rounded-value comparison.
				//qa:allow float-eq
				if m[row*dim+col] != 0 {
					sum += m[row*dim+col] * scratch[col]
				}
			}
			idx := base
			for b := 0; b < k; b++ {
				if row&(1<<uint(b)) != 0 {
					idx |= masks[b]
				}
			}
			s.amp[idx] = sum
		}
	}
}

// EqualUpToGlobalPhase reports whether two states are equal up to a
// global phase factor, within tolerance, and returns the phase.
func EqualUpToGlobalPhase(a, b *State, tol float64) (bool, complex128) {
	if a.n != b.n {
		return false, 0
	}
	// Find the largest amplitude of b to define the phase.
	best, bestMag := -1, tol
	for i, v := range b.amp {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = i, m
		}
	}
	if best < 0 {
		return false, 0
	}
	phase := a.amp[best] / b.amp[best]
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false, 0
	}
	for i := range a.amp {
		if cmplx.Abs(a.amp[i]-phase*b.amp[i]) > tol {
			return false, 0
		}
	}
	return true, phase
}

// SupportEntry is one nonzero component of the state.
type SupportEntry struct {
	Basis uint
	Amp   complex128
}

// Support lists the nonzero basis components sorted by basis index.
func (s *State) Support(tol float64) []SupportEntry {
	var out []SupportEntry
	for i, a := range s.amp {
		if cmplx.Abs(a) > tol {
			out = append(out, SupportEntry{Basis: uint(i), Amp: a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Basis < out[j].Basis })
	return out
}

// SupportString renders the support in the thesis listing style, e.g.
// "(0.25+0j) |000000110>". Qubit 0 is the rightmost bit.
func (s *State) SupportString(tol float64) string {
	var b strings.Builder
	for _, e := range s.Support(tol) {
		fmt.Fprintf(&b, "(%s) |%s>\n", fmtComplex(e.Amp), basisString(e.Basis, s.n))
	}
	return b.String()
}

func basisString(v uint, n int) string {
	bs := make([]byte, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(n-1-i)) != 0 {
			bs[i] = '1'
		} else {
			bs[i] = '0'
		}
	}
	return string(bs)
}

func fmtComplex(c complex128) string {
	re, im := real(c), imag(c)
	round := func(f float64) float64 { return math.Round(f*1e6) / 1e6 }
	return fmt.Sprintf("%g%+gj", round(re), round(im))
}

// ExtractSubsystem returns the state of the listed qubits under the
// assumption that every other qubit is in a definite computational-basis
// state (true right after those qubits were measured or reset). It errors
// when the complement is not in a product basis state.
func (s *State) ExtractSubsystem(keep []int) (*State, error) {
	s.checkQubits(keep)
	inKeep := map[int]bool{}
	for _, q := range keep {
		inKeep[q] = true
	}
	var restMask uint
	for q := 0; q < s.n; q++ {
		if !inKeep[q] {
			restMask |= 1 << uint(q)
		}
	}
	const tol = 1e-9
	restVal := uint(0)
	found := false
	for i, a := range s.amp {
		if cmplx.Abs(a) <= tol {
			continue
		}
		rv := uint(i) & restMask
		if !found {
			restVal, found = rv, true
		} else if rv != restVal {
			return nil, fmt.Errorf("statevec: complement qubits are entangled with the subsystem")
		}
	}
	if !found {
		return nil, fmt.Errorf("statevec: zero state")
	}
	out := New(len(keep), s.rng)
	out.workers = s.workers
	out.amp[0] = 0
	for i, a := range s.amp {
		if uint(i)&restMask != restVal {
			continue
		}
		var sub uint
		for bi, q := range keep {
			if uint(i)&(1<<uint(q)) != 0 {
				sub |= 1 << uint(bi)
			}
		}
		out.amp[sub] = a
	}
	return out, nil
}

// Clone deep-copies the state (sharing the RNG, keeping the worker
// setting, with a private reduction scratch).
func (s *State) Clone() *State {
	return &State{
		n:       s.n,
		amp:     append([]complex128(nil), s.amp...),
		rng:     s.rng,
		workers: s.workers,
		red:     make([]complex128, numReduceBlocks(len(s.amp))),
	}
}
