// Measurement and reduction paths. ProbOne, Norm and ExpectPauli fold
// per-block partial sums on the fixed grid of dispatch.go, so their
// float results are bit-identical for any worker count; Measure fuses
// the probability reduction with a single clamped projection +
// renormalization pass over the amplitude pairs.
package statevec

import (
	"math"
	"math/bits"

	"repro/internal/gates"
	"repro/internal/pauli"
)

// ProbOne returns the probability of measuring qubit q as 1. Only the
// bit-set half of the amplitude array is read (direct pair indexing, no
// full-index bit-test scan).
func (s *State) ProbOne(q int) float64 {
	s.checkQubits([]int{q})
	mask := uint(1) << uint(q)
	return real(s.reduce(len(s.amp)>>1, kernelOp{code: redProbOne, s1: mask}))
}

// Measure performs a projective computational-basis measurement of qubit
// q, collapsing the state, and returns 0 or 1. The branch probability is
// clamped to [0,1] before the RNG draw and the renormalization, so
// accumulated float error in ProbOne can never produce a negative
// complement probability or a >1 draw threshold.
func (s *State) Measure(q int) int {
	p1 := s.ProbOne(q)
	if p1 < 0 {
		p1 = 0
	} else if p1 > 1 {
		p1 = 1
	}
	outcome := 0
	if s.rng.Float64() < p1 {
		outcome = 1
	}
	s.project(q, outcome, p1)
	return outcome
}

// project collapses qubit q to the given outcome and renormalizes, in
// one fused pass over the amplitude pairs. p1 must already be clamped
// to [0,1]; the complement is clamped here for direct callers.
func (s *State) project(q, outcome int, p1 float64) {
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		panic("statevec: projecting onto zero-probability outcome")
	}
	if p > 1 {
		p = 1
	}
	norm := complex(1/math.Sqrt(p), 0)
	mask := uint(1) << uint(q)
	s.run(len(s.amp)>>1, kernelOp{code: opProject, s1: mask, phase: norm, outcome: outcome})
}

// Reset forces qubit q to |0⟩ by measuring and flipping when necessary.
func (s *State) Reset(q int) {
	if s.Measure(q) == 1 {
		s.ApplyGate(gates.X, q)
	}
}

// Norm returns the 2-norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	return math.Sqrt(real(s.reduce(len(s.amp), kernelOp{code: redNorm})))
}

// ExpectPauli returns the real expectation value ⟨ψ|P|ψ⟩ of a Pauli
// string, the state-vector counterpart of the stabilizer simulator's
// deterministic stabilizer query (used to cross-check the two back-ends).
func (s *State) ExpectPauli(ps pauli.PauliString) float64 {
	var xMask, zMask, yMask uint
	// Order-free: per-qubit OR into disjoint mask bits, plus the
	// bounds-check panic guard.
	//qa:allow determinism
	for q, p := range ps.Ops {
		s.checkQubits([]int{q})
		if p.HasX() {
			xMask |= 1 << uint(q)
		}
		if p.HasZ() {
			zMask |= 1 << uint(q)
		}
		if p == pauli.Y {
			yMask |= 1 << uint(q)
		}
	}
	// P|i⟩ = phase(i) |i ⊕ xMask⟩ with phase from Z components; each Y
	// contributes a global factor i (Y = iXZ), applied once below.
	acc := s.reduce(len(s.amp), kernelOp{code: redExpect, aMask: xMask, bMask: zMask})
	switch bits.OnesCount(yMask) % 4 {
	case 1:
		acc *= 1i
	case 2:
		acc *= -1
	case 3:
		acc *= -1i
	}
	if ps.Negative {
		acc = -acc
	}
	return real(acc)
}
