// Kernel dispatch and deterministic multi-goroutine execution. ApplyGate
// keys off the registered gates.Gate vocabulary and routes every gate to
// its specialized kernel (kernels.go); anything without a kernel falls
// back to the generic ApplyMatrix oracle. The Workers option shards each
// kernel invocation over fixed contiguous index ranges; mutating kernels
// write disjoint indices and reductions fold fixed-size block partials
// in ascending block order, so every result is bit-identical for any
// worker count (the same discipline as internal/experiments/parallel.go).
package statevec

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/gates"
)

const (
	// reduceBlockShift fixes the reduction block grid: partial sums are
	// computed per 2^reduceBlockShift-element block of the iteration
	// space and folded in ascending block order. The grid depends only
	// on the state size, never on the worker count.
	reduceBlockShift = 12
	reduceBlock      = 1 << reduceBlockShift
	// parMinSpan is the smallest iteration span worth forking goroutines
	// for; below it every kernel runs on the calling goroutine.
	parMinSpan = 1 << 13
)

// SetWorkers sets how many goroutines kernels may shard over; w <= 0
// selects GOMAXPROCS. Results are bit-identical for any setting. The
// default is 1 (fully serial).
func (s *State) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s.workers = w
}

// Workers returns the resolved worker count.
func (s *State) Workers() int { return s.workers }

// spanWorkers decides how many goroutines to use for an n-element
// iteration space, keeping at least one reduction block per worker.
func (s *State) spanWorkers(n int) int {
	w := s.workers
	if w <= 1 || n < parMinSpan {
		return 1
	}
	if max := n >> reduceBlockShift; w > max {
		w = max
	}
	return w
}

// run executes the mutating kernel k over [0, n), sharded into one
// contiguous range per worker. Every index is written by exactly one
// shard, so the result does not depend on the split.
func (s *State) run(n int, k kernelOp) {
	w := s.spanWorkers(n)
	if w == 1 {
		runShard(s.amp, k, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		// k is passed as an argument, not captured: a captured parameter
		// would be moved to the heap and cost an allocation even on the
		// serial path above.
		go func(k kernelOp, lo, hi int) {
			defer wg.Done()
			runShard(s.amp, k, lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
}

// reduce folds the reduction kernel k over [0, n) on the fixed block
// grid: each block's partial sum is computed independently (possibly on
// different goroutines) and the partials are combined in ascending
// block order, making the float result bit-identical for any worker
// count, including the serial path.
func (s *State) reduce(n int, k kernelOp) complex128 {
	nb := (n + reduceBlock - 1) >> reduceBlockShift
	if nb < 1 {
		nb = 1
	}
	w := s.spanWorkers(n)
	if w == 1 {
		var total complex128
		for b := 0; b < nb; b++ {
			lo := b << reduceBlockShift
			hi := lo + reduceBlock
			if hi > n {
				hi = n
			}
			total += reduceShard(s.amp, k, lo, hi)
		}
		return total
	}
	red := s.red[:nb]
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		blo, bhi := i*nb/w, (i+1)*nb/w
		go func(k kernelOp, blo, bhi int) {
			defer wg.Done()
			for b := blo; b < bhi; b++ {
				lo := b << reduceBlockShift
				hi := lo + reduceBlock
				if hi > n {
					hi = n
				}
				red[b] = reduceShard(s.amp, k, lo, hi)
			}
		}(k, blo, bhi)
	}
	wg.Wait()
	var total complex128
	for b := 0; b < nb; b++ {
		total += red[b]
	}
	return total
}

// ApplyGate applies a registered unitary gate through its specialized
// kernel. For multi-qubit gates the first listed qubit is the most
// significant bit of the gate matrix basis (control first for CNOT/CZ,
// the two controls first for Toffoli). Gates without a kernel — and any
// caller going through ApplyMatrix directly — take the generic path,
// which the differential tests hold to exact agreement with the kernels.
func (s *State) ApplyGate(g *gates.Gate, qubits ...int) {
	if g.Matrix == nil {
		panic(fmt.Sprintf("statevec: gate %s has no matrix", g))
	}
	if len(qubits) != g.Arity {
		panic(fmt.Sprintf("statevec: gate %s wants %d qubits, got %d", g, g.Arity, len(qubits)))
	}
	s.checkQubits(qubits)
	for i := 0; i < len(qubits); i++ {
		for j := i + 1; j < len(qubits); j++ {
			if qubits[i] == qubits[j] {
				panic("statevec: repeated qubit in gate operand list")
			}
		}
	}
	pairs := len(s.amp) >> 1
	switch g.Name {
	case gates.GateI:
		// Identity: nothing to do beyond operand validation.
	case gates.GateX:
		s.run(pairs, kernelOp{code: opX, s1: 1 << uint(qubits[0])})
	case gates.GateY:
		s.run(pairs, kernelOp{code: opY, s1: 1 << uint(qubits[0])})
	case gates.GateZ, gates.GateS, gates.GateSdg, gates.GateT, gates.GateTdg:
		// All registered single-qubit diagonals are diag(1, phase); the
		// phase comes from the registered matrix so the kernel and the
		// oracle agree exactly.
		s.run(pairs, kernelOp{code: opPhase, s1: 1 << uint(qubits[0]), phase: g.Matrix[3]})
	case gates.GateH:
		m := g.Matrix
		s.run(pairs, kernelOp{code: opUnary, s1: 1 << uint(qubits[0]),
			m00: m[0], m01: m[1], m10: m[2], m11: m[3]})
	case gates.GateCNOT:
		cm, tm := uint(1)<<uint(qubits[0]), uint(1)<<uint(qubits[1])
		m1, m2 := sort2(cm, tm)
		s.run(pairs>>1, kernelOp{code: opCNOT, s1: m1, s2: m2, aMask: cm, bMask: tm})
	case gates.GateCZ:
		m1, m2 := sort2(uint(1)<<uint(qubits[0]), uint(1)<<uint(qubits[1]))
		s.run(pairs>>1, kernelOp{code: opPhase2, s1: m1, s2: m2, phase: g.Matrix[15]})
	case gates.GateSWAP:
		m1, m2 := sort2(uint(1)<<uint(qubits[0]), uint(1)<<uint(qubits[1]))
		s.run(pairs>>1, kernelOp{code: opSWAP, s1: m1, s2: m2})
	case gates.GateTOF:
		c1, c2 := uint(1)<<uint(qubits[0]), uint(1)<<uint(qubits[1])
		tm := uint(1) << uint(qubits[2])
		m1, m2, m3 := sort3(c1, c2, tm)
		s.run(pairs>>2, kernelOp{code: opToffoli, s1: m1, s2: m2, s3: m3,
			aMask: c1 | c2, bMask: tm})
	case gates.PrepZ, gates.MeasZ:
		// Unreachable: pseudo-operations have no matrix.
		panic(fmt.Sprintf("statevec: gate %s has no unitary action", g))
	default:
		s.applyFallback(g, qubits)
	}
}

// applyFallback handles unregistered gates: RZ-style diagonals and
// arbitrary single-qubit matrices still get kernels; anything larger
// goes through the generic oracle path.
func (s *State) applyFallback(g *gates.Gate, qubits []int) {
	m := g.Matrix
	if g.Arity == 1 {
		pairs := len(s.amp) >> 1
		// Deliberate exact compares: recognizing the structural shape
		// diag(1, phase) of RZ(θ), not comparing rounded values.
		//qa:allow float-eq
		if m[0] == 1 && m[1] == 0 && m[2] == 0 {
			s.run(pairs, kernelOp{code: opPhase, s1: 1 << uint(qubits[0]), phase: m[3]})
			return
		}
		s.run(pairs, kernelOp{code: opUnary, s1: 1 << uint(qubits[0]),
			m00: m[0], m01: m[1], m10: m[2], m11: m[3]})
		return
	}
	s.ApplyMatrix(m, qubits...)
}

// sort2 orders two bit masks ascending.
func sort2(a, b uint) (uint, uint) {
	if a > b {
		return b, a
	}
	return a, b
}

// sort3 orders three bit masks ascending.
func sort3(a, b, c uint) (uint, uint, uint) {
	a, b = sort2(a, b)
	b, c = sort2(b, c)
	a, b = sort2(a, b)
	return a, b, c
}
