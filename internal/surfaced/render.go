package surfaced

import (
	"fmt"
	"strings"
)

// Render draws the lattice as ASCII art: data qubits as D<n>, check
// ancillas as X/Z at their plaquette positions, with flagged checks from
// an optional syndrome round marked with '!'. Useful for debugging
// decoders and for documentation.
func (l *Layout) Render(round *Round) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distance-%d rotated surface code (%d data, %d checks)\n",
		l.D, l.NumData(), l.NumAncilla())
	flaggedX := map[[2]int]bool{}
	flaggedZ := map[[2]int]bool{}
	if round != nil {
		for i, ck := range l.XChecks {
			if i < len(round.X) && round.X[i] {
				flaggedX[[2]int{ck.Row, ck.Col}] = true
			}
		}
		for i, ck := range l.ZChecks {
			if i < len(round.Z) && round.Z[i] {
				flaggedZ[[2]int{ck.Row, ck.Col}] = true
			}
		}
	}
	checkAt := map[[2]int]byte{}
	for _, ck := range l.XChecks {
		checkAt[[2]int{ck.Row, ck.Col}] = 'X'
	}
	for _, ck := range l.ZChecks {
		checkAt[[2]int{ck.Row, ck.Col}] = 'Z'
	}
	// Interleave plaquette rows (checks) and data rows.
	for pr := 0; pr <= l.D; pr++ {
		// Check row pr.
		line := "  "
		for pc := 0; pc <= l.D; pc++ {
			cell := "    "
			if t, ok := checkAt[[2]int{pr, pc}]; ok {
				mark := " "
				if flaggedX[[2]int{pr, pc}] || flaggedZ[[2]int{pr, pc}] {
					mark = "!"
				}
				cell = fmt.Sprintf(" %c%s ", t, mark)
			}
			line += cell
		}
		if strings.TrimSpace(line) != "" {
			b.WriteString(strings.TrimRight(line, " "))
			b.WriteByte('\n')
		}
		// Data row pr (between plaquette rows pr and pr+1).
		if pr < l.D {
			line := ""
			for c := 0; c < l.D; c++ {
				line += fmt.Sprintf("D%-3d", pr*l.D+c)
			}
			b.WriteString(strings.TrimRight(line, " "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
