package surfaced

import (
	"math/rand"
	"testing"

	"repro/internal/layers"
)

func TestLogicalMeasurement(t *testing.T) {
	for _, d := range []int{3, 5} {
		ch := layers.NewChpCore(rand.New(rand.NewSource(int64(d))))
		p, err := NewPlane(ch, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.InitZero(); err != nil {
			t.Fatal(err)
		}
		out, err := p.MeasureLogical()
		if err != nil {
			t.Fatal(err)
		}
		if out != 0 {
			t.Errorf("d=%d: |0⟩_L measured %d", d, out)
		}

		// |1⟩_L.
		p2, err := NewPlane(layers.NewChpCore(rand.New(rand.NewSource(int64(d+10)))), d)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2.InitOne(); err != nil {
			t.Fatal(err)
		}
		out, err = p2.MeasureLogical()
		if err != nil {
			t.Fatal(err)
		}
		if out != 1 {
			t.Errorf("d=%d: |1⟩_L measured %d", d, out)
		}
	}
}

func TestLogicalZIsStabilizerOnZeroL(t *testing.T) {
	// Z_L acts trivially on |0⟩_L: measurement still 0.
	ch := layers.NewChpCore(rand.New(rand.NewSource(20)))
	p, err := NewPlane(ch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InitZero(); err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyLogicalZ(); err != nil {
		t.Fatal(err)
	}
	out, err := p.MeasureLogical()
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Errorf("Z_L|0⟩_L measured %d", out)
	}
}

func TestReadoutErrorRepair(t *testing.T) {
	// Up to (d−1)/2 X errors immediately before the transversal
	// measurement must be repaired classically by the matching decoder.
	for _, d := range []int{3, 5} {
		limit := (d - 1) / 2
		for q := 0; q < d*d; q++ {
			ch := layers.NewChpCore(rand.New(rand.NewSource(int64(30 + q))))
			p, err := NewPlane(ch, d)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.InitOne(); err != nil {
				t.Fatal(err)
			}
			// Inject up to `limit` X errors on distinct qubits.
			for k := 0; k < limit; k++ {
				ch.Tableau().X(p.Data((q + k*7) % (d * d)))
			}
			out, err := p.MeasureLogical()
			if err != nil {
				t.Fatal(err)
			}
			if out != 1 {
				t.Errorf("d=%d: %d pre-measurement X error(s) at D%d corrupted the readout", d, limit, q)
			}
		}
	}
}
