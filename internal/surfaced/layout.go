// Package surfaced generalizes the Surface Code 17 of package surface to
// arbitrary odd distance d — the thesis' future-work direction ("repeat
// these experiments using a larger distance surface code", Chapter 6).
// It builds the rotated planar layout (d² data qubits, d²−1 stabilizer
// checks), the conflict-free two-pattern ESM schedule, and a
// matching-based decoder over the check graph (LUTs do not scale past
// d = 3; the thesis names minimum-weight matching / Blossom as the
// standard alternative [24, 25]).
//
// The d = 3 instance reproduces the exact SC17 stabilizers of thesis
// Table 2.1, which the tests pin.
package surfaced

import "fmt"

// Check is one stabilizer check of the lattice.
type Check struct {
	// Row/Col are the plaquette coordinates (0..d in both axes).
	Row, Col int
	// XType is true for X stabilizers, false for Z.
	XType bool
	// Support lists the data-qubit indices (row-major r*d+c), ascending.
	Support []int
	// positions[i] is the data qubit at schedule position i of the
	// interaction pattern (NW, NE, SW, SE order; −1 when absent).
	nw, ne, sw, se int
}

// Layout is the static geometry of a distance-d rotated surface code.
type Layout struct {
	// D is the code distance (odd, ≥ 3).
	D int
	// XChecks and ZChecks list the stabilizers.
	XChecks, ZChecks []Check
}

// NumData returns d².
func (l *Layout) NumData() int { return l.D * l.D }

// NumAncilla returns d²−1 (one ancilla per check).
func (l *Layout) NumAncilla() int { return l.D*l.D - 1 }

// NewLayout constructs the rotated lattice for an odd distance.
//
// Plaquette (pr, pc) for pr, pc ∈ 0..d covers the up-to-four data qubits
// (pr−1, pc−1), (pr−1, pc), (pr, pc−1), (pr, pc); it is X-type when
// pr+pc is even. Interior plaquettes are all kept; top/bottom boundary
// rows keep only X-type, left/right boundary columns only Z-type —
// exactly the SC17 pattern of thesis Fig 2.1 at d = 3.
func NewLayout(d int) (*Layout, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("surfaced: distance must be odd and ≥ 3, got %d", d)
	}
	l := &Layout{D: d}
	data := func(r, c int) int {
		if r < 0 || r >= d || c < 0 || c >= d {
			return -1
		}
		return r*d + c
	}
	for pr := 0; pr <= d; pr++ {
		for pc := 0; pc <= d; pc++ {
			xType := (pr+pc)%2 == 0
			interior := pr >= 1 && pr <= d-1 && pc >= 1 && pc <= d-1
			topBottom := (pr == 0 || pr == d) && pc >= 1 && pc <= d-1
			leftRight := (pc == 0 || pc == d) && pr >= 1 && pr <= d-1
			switch {
			case interior:
			case topBottom && xType:
			case leftRight && !xType:
			default:
				continue
			}
			ck := Check{
				Row: pr, Col: pc, XType: xType,
				nw: data(pr-1, pc-1), ne: data(pr-1, pc),
				sw: data(pr, pc-1), se: data(pr, pc),
			}
			for _, q := range []int{ck.nw, ck.ne, ck.sw, ck.se} {
				if q >= 0 {
					ck.Support = append(ck.Support, q)
				}
			}
			sortInts(ck.Support)
			if xType {
				l.XChecks = append(l.XChecks, ck)
			} else {
				l.ZChecks = append(l.ZChecks, ck)
			}
		}
	}
	return l, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// schedule returns the data qubit touched at each of the four CNOT time
// steps: X checks run the S pattern (NE, NW, SE, SW; thesis Fig 2.2), Z
// checks the Z pattern (NE, SE, NW, SW; Fig 2.3). The alternating
// patterns keep the interleaved schedule conflict-free at every distance
// and make ancilla hook errors benign.
func (c *Check) schedule() [4]int {
	if c.XType {
		return [4]int{c.ne, c.nw, c.se, c.sw}
	}
	return [4]int{c.ne, c.se, c.nw, c.sw}
}

// LogicalZ returns the data qubits of the logical Z operator: the top
// row, which crosses between the two Z boundaries.
func (l *Layout) LogicalZ() []int {
	out := make([]int, l.D)
	for c := 0; c < l.D; c++ {
		out[c] = c
	}
	return out
}

// LogicalX returns the data qubits of the logical X operator: the left
// column.
func (l *Layout) LogicalX() []int {
	out := make([]int, l.D)
	for r := 0; r < l.D; r++ {
		out[r] = r * l.D
	}
	return out
}
