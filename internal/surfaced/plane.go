package surfaced

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// Plane is one distance-d logical qubit running on a QPDO stack: the
// generalization of the ninja-star layer's QEC machinery (ESM rounds,
// agreement-rule windows, corrections) with the matching decoder in
// place of the d = 3 look-up table. The plane supports the idling-qubit
// experiment of thesis §5.3 — initialization, windows, diagnostics — at
// any odd distance.
type Plane struct {
	Layout *Layout
	stack  qpdo.Core
	// data[i] and anc maps are the physical placements.
	data []int
	ancX []int
	ancZ []int
	// graphs per error type: gX decodes Z errors (flagged X checks),
	// gZ decodes X errors (flagged Z checks).
	gX, gZ *CheckGraph
	// RoundsPerWindow is the number of ESM rounds per QEC window,
	// d−1 by default (thesis Eq. 5.7: tsrounds = (d−1)·tsESM).
	RoundsPerWindow int
	// prevX/prevZ hold the previous round for the agreement rule; the
	// carry mirrors decoder.WindowDecoder's semantics.
	carryX, carryZ []bool
	haveCarry      bool
}

// NewPlane allocates the physical qubits on the stack (data first, then
// X ancillas, then Z ancillas) and prepares the decoder graphs.
func NewPlane(stack qpdo.Core, d int) (*Plane, error) {
	lay, err := NewLayout(d)
	if err != nil {
		return nil, err
	}
	base := stack.NumQubits()
	if err := stack.CreateQubits(lay.NumData() + lay.NumAncilla()); err != nil {
		return nil, err
	}
	p := &Plane{Layout: lay, stack: stack}
	for i := 0; i < lay.NumData(); i++ {
		p.data = append(p.data, base+i)
	}
	next := base + lay.NumData()
	for range lay.XChecks {
		p.ancX = append(p.ancX, next)
		next++
	}
	for range lay.ZChecks {
		p.ancZ = append(p.ancZ, next)
		next++
	}
	p.gX = NewCheckGraph(lay.XChecks, lay.NumData())
	p.gZ = NewCheckGraph(lay.ZChecks, lay.NumData())
	p.carryX = make([]bool, len(lay.XChecks))
	p.carryZ = make([]bool, len(lay.ZChecks))
	p.RoundsPerWindow = d - 1
	return p, nil
}

// Data returns the physical index of data qubit i.
func (p *Plane) Data(i int) int { return p.data[i] }

// ESMCircuit builds the parallel syndrome-measurement round: reset
// slots, the four interleaved CNOT steps with the two-pattern schedule,
// the Hadamard sandwich on X ancillas, and the measurement slot
// (the Table 5.8 structure generalized; 8 time slots at every distance).
func (p *Plane) ESMCircuit() *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, a := range p.ancX {
		c.AddToSlot(slot, gates.Prep, a)
	}
	slot = c.AppendSlot()
	for _, a := range p.ancZ {
		c.AddToSlot(slot, gates.Prep, a)
	}
	for i := range p.ancX {
		c.AddToSlot(slot, gates.H, p.ancX[i])
	}
	for step := 0; step < 4; step++ {
		slot = c.AppendSlot()
		for i, ck := range p.Layout.XChecks {
			if d := ck.schedule()[step]; d >= 0 {
				c.AddToSlot(slot, gates.CNOT, p.ancX[i], p.data[d])
			}
		}
		for i, ck := range p.Layout.ZChecks {
			if d := ck.schedule()[step]; d >= 0 {
				c.AddToSlot(slot, gates.CNOT, p.data[d], p.ancZ[i])
			}
		}
	}
	slot = c.AppendSlot()
	for _, a := range p.ancX {
		c.AddToSlot(slot, gates.H, a)
	}
	slot = c.AppendSlot()
	for _, a := range p.ancX {
		c.AddToSlot(slot, gates.Measure, a)
	}
	for _, a := range p.ancZ {
		c.AddToSlot(slot, gates.Measure, a)
	}
	return c
}

// Round holds one ESM round's syndromes (true = −1 outcome).
type Round struct {
	X, Z []bool
}

// Clean reports an all-trivial syndrome.
func (r Round) Clean() bool {
	for _, b := range r.X {
		if b {
			return false
		}
	}
	for _, b := range r.Z {
		if b {
			return false
		}
	}
	return true
}

// RunESMRound executes one round and parses the syndromes.
func (p *Plane) RunESMRound() (Round, error) {
	if err := p.stack.Add(p.ESMCircuit()); err != nil {
		return Round{}, err
	}
	res, err := p.stack.Execute()
	if err != nil {
		return Round{}, err
	}
	want := len(p.ancX) + len(p.ancZ)
	if len(res.Measurements) < want {
		return Round{}, fmt.Errorf("surfaced: ESM produced %d measurements, want %d",
			len(res.Measurements), want)
	}
	ms := res.Measurements[len(res.Measurements)-want:]
	r := Round{X: make([]bool, len(p.ancX)), Z: make([]bool, len(p.ancZ))}
	for i := range p.ancX {
		r.X[i] = ms[i].Value == 1
	}
	for i := range p.ancZ {
		r.Z[i] = ms[len(p.ancX)+i].Value == 1
	}
	return r, nil
}

// InitZero prepares |0⟩_L: transversal reset, one ESM round, and exact
// sign fixes from the matching decoder (run it under bypass mode for a
// noiseless start, as the LER experiment does).
func (p *Plane) InitZero() error {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range p.data {
		c.AddToSlot(slot, gates.Prep, q)
	}
	if err := p.run(c); err != nil {
		return err
	}
	r, err := p.RunESMRound()
	if err != nil {
		return err
	}
	// Z corrections fix flagged X checks; X corrections fix flagged Z
	// checks (only X checks can be non-trivial after a |0…0⟩ reset).
	zCorr := p.gX.Match(flagged(r.X))
	xCorr := p.gZ.Match(flagged(r.Z))
	if err := p.applyCorrections(xCorr, zCorr); err != nil {
		return err
	}
	p.haveCarry = false
	for i := range p.carryX {
		p.carryX[i] = false
	}
	for i := range p.carryZ {
		p.carryZ[i] = false
	}
	return nil
}

func flagged(bits []bool) []int {
	var out []int
	for i, b := range bits {
		if b {
			out = append(out, i)
		}
	}
	return out
}

func eqBits(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WindowStats reports one QEC window.
type WindowStats struct {
	CorrectionGates int
	CorrectionSlots int
}

// RunWindow executes one window: RoundsPerWindow (= d−1) ESM rounds, the
// agreement rule per stabilizer type on the final two rounds (decode only
// when they agree; the carried round promotes errors confirmed across the
// window boundary), matching decode, and one correction slot.
func (p *Plane) RunWindow() (WindowStats, error) {
	rounds := p.RoundsPerWindow
	if rounds < 2 {
		rounds = 2
	}
	var r1, r2 Round
	for i := 0; i < rounds; i++ {
		r, err := p.RunESMRound()
		if err != nil {
			return WindowStats{}, err
		}
		r1, r2 = r2, r
	}
	decide := func(carry, a, b []bool) []int {
		if eqBits(a, b) {
			return flagged(a)
		}
		if p.haveCarry && eqBits(carry, a) {
			return flagged(a)
		}
		return nil
	}
	zCorr := p.gX.Match(decide(p.carryX, r1.X, r2.X))
	xCorr := p.gZ.Match(decide(p.carryZ, r1.Z, r2.Z))
	// Carry the newest round, compensated for the corrections we are
	// about to apply (each correction flips the syndromes of the checks
	// containing it).
	copy(p.carryX, r2.X)
	copy(p.carryZ, r2.Z)
	for _, q := range zCorr {
		for i, ck := range p.Layout.XChecks {
			if contains(ck.Support, q) {
				p.carryX[i] = !p.carryX[i]
			}
		}
	}
	for _, q := range xCorr {
		for i, ck := range p.Layout.ZChecks {
			if contains(ck.Support, q) {
				p.carryZ[i] = !p.carryZ[i]
			}
		}
	}
	p.haveCarry = true

	var st WindowStats
	if len(xCorr)+len(zCorr) > 0 {
		st.CorrectionSlots = 1
		c := p.correctionCircuit(xCorr, zCorr)
		st.CorrectionGates = c.NumOps()
		if err := p.run(c); err != nil {
			return st, err
		}
	}
	return st, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (p *Plane) correctionCircuit(xCorr, zCorr []int) *circuit.Circuit {
	kinds := map[int]*gates.Gate{}
	for _, q := range zCorr {
		kinds[q] = gates.Z
	}
	for _, q := range xCorr {
		if kinds[q] == gates.Z {
			kinds[q] = gates.Y
		} else {
			kinds[q] = gates.X
		}
	}
	c := circuit.New()
	slot := c.AppendSlot()
	for i := 0; i < p.Layout.NumData(); i++ {
		if g, ok := kinds[i]; ok {
			c.AddToSlot(slot, g, p.data[i])
		}
	}
	return c
}

func (p *Plane) applyCorrections(xCorr, zCorr []int) error {
	if len(xCorr)+len(zCorr) == 0 {
		return nil
	}
	return p.run(p.correctionCircuit(xCorr, zCorr))
}

func (p *Plane) run(c *circuit.Circuit) error {
	if err := p.stack.Add(c); err != nil {
		return err
	}
	_, err := p.stack.Execute()
	return err
}

// ProbeZL measures the logical Z chain with an ancilla (the Fig 5.10a
// diagnostic generalized); returns 0 for +1. Run under bypass mode.
func (p *Plane) ProbeZL() (int, error) {
	anc := p.ancX[0]
	c := circuit.New()
	c.Add(gates.Prep, anc)
	for _, d := range p.Layout.LogicalZ() {
		c.Add(gates.CNOT, p.data[d], anc)
	}
	c.Add(gates.Measure, anc)
	if err := p.stack.Add(c); err != nil {
		return 0, err
	}
	res, err := p.stack.Execute()
	if err != nil {
		return 0, err
	}
	return res.Measurements[len(res.Measurements)-1].Value, nil
}
