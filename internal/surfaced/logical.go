package surfaced

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// ApplyLogicalX executes the logical X chain (left column) on the plane.
func (p *Plane) ApplyLogicalX() error {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, d := range p.Layout.LogicalX() {
		c.AddToSlot(slot, gates.X, p.data[d])
	}
	return p.run(c)
}

// ApplyLogicalZ executes the logical Z chain (top row).
func (p *Plane) ApplyLogicalZ() error {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, d := range p.Layout.LogicalZ() {
		c.AddToSlot(slot, gates.Z, p.data[d])
	}
	return p.run(c)
}

// MeasureLogical performs the transversal d²-qubit logical measurement:
// every data qubit is measured in Z, the Z-check parities of the
// reported bit string are decoded through the matching graph to repair
// readout errors classically (the generalization of thesis §2.6.1
// step 2-3), and the parity of the corrected string along the logical
// representatives yields the outcome.
func (p *Plane) MeasureLogical() (int, error) {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range p.data {
		c.AddToSlot(slot, gates.Measure, q)
	}
	if err := p.stack.Add(c); err != nil {
		return 0, err
	}
	res, err := p.stack.Execute()
	if err != nil {
		return 0, err
	}
	n := p.Layout.NumData()
	if len(res.Measurements) < n {
		return 0, fmt.Errorf("surfaced: logical measurement returned %d results", len(res.Measurements))
	}
	ms := res.Measurements[len(res.Measurements)-n:]
	vals := make([]int, n)
	for _, m := range ms {
		rel := -1
		for i, phys := range p.data {
			if phys == m.Qubit {
				rel = i
				break
			}
		}
		if rel < 0 {
			return 0, fmt.Errorf("surfaced: unexpected measurement of qubit %d", m.Qubit)
		}
		vals[rel] = m.Value
	}
	// Classical repair: any codeword satisfies every Z check, so
	// non-trivial readout parities flag flipped bits; the matching
	// decoder names a minimal set of bits to flip back.
	var fl []int
	for i, ck := range p.Layout.ZChecks {
		parity := 0
		for _, d := range ck.Support {
			parity ^= vals[d]
		}
		if parity == 1 {
			fl = append(fl, i)
		}
	}
	for _, d := range p.gZ.Match(fl) {
		vals[d] ^= 1
	}
	// The corrected string is a codeword; its class is the parity along
	// any logical-Z representative.
	out := 0
	for _, d := range p.Layout.LogicalZ() {
		out ^= vals[d]
	}
	return out, nil
}

// InitOne prepares |1⟩_L: InitZero followed by the logical X chain.
func (p *Plane) InitOne() error {
	if err := p.InitZero(); err != nil {
		return err
	}
	return p.ApplyLogicalX()
}
