package surfaced

import (
	"math"
	"sort"
)

// CheckGraph is the decoding graph of one stabilizer type: nodes are the
// checks plus a virtual boundary node; every data qubit is an edge
// between the (at most two) checks of that type containing it, or
// between a check and the boundary when only one contains it. A single
// data error flips exactly the checks at its edge's endpoints, so error
// chains are paths and decoding is minimum-weight matching of the
// flagged checks (thesis §2.6.1; Edmonds [24, 25]).
type CheckGraph struct {
	numChecks int
	// adj[node] lists (neighbor, dataQubit) edges; node numChecks is the
	// boundary.
	adj [][]edge
	// dist[a][b] and via[a][b] hold all-pairs BFS shortest paths
	// (unit-weight edges); via is the first edge on the path.
	dist [][]int
	next [][]edge
}

type edge struct {
	to   int
	data int
}

// Boundary is the virtual node index.
func (g *CheckGraph) Boundary() int { return g.numChecks }

// NewCheckGraph builds the graph for a set of same-type checks over
// nData data qubits.
func NewCheckGraph(checks []Check, nData int) *CheckGraph {
	g := &CheckGraph{numChecks: len(checks)}
	n := len(checks) + 1
	g.adj = make([][]edge, n)
	owners := make([][]int, nData)
	for ci, ck := range checks {
		for _, q := range ck.Support {
			owners[q] = append(owners[q], ci)
		}
	}
	addEdge := func(a, b, q int) {
		g.adj[a] = append(g.adj[a], edge{to: b, data: q})
		g.adj[b] = append(g.adj[b], edge{to: a, data: q})
	}
	for q, own := range owners {
		switch len(own) {
		case 1:
			addEdge(own[0], g.Boundary(), q)
		case 2:
			addEdge(own[0], own[1], q)
		}
	}
	// All-pairs BFS.
	g.dist = make([][]int, n)
	g.next = make([][]edge, n)
	for s := 0; s < n; s++ {
		g.dist[s] = make([]int, n)
		g.next[s] = make([]edge, n)
		for i := range g.dist[s] {
			g.dist[s][i] = math.MaxInt32
			g.next[s][i] = edge{to: -1, data: -1}
		}
		g.dist[s][s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				if g.dist[s][e.to] > g.dist[s][u]+1 {
					g.dist[s][e.to] = g.dist[s][u] + 1
					// Record the first step from s toward e.to by
					// back-tracking: next hop from e.to toward s is u
					// via e; we store per-target the edge into the
					// target, then reconstruct backwards.
					g.next[s][e.to] = edge{to: u, data: e.data}
					queue = append(queue, e.to)
				}
			}
		}
	}
	return g
}

// Path returns the data qubits along one shortest path between two
// nodes.
func (g *CheckGraph) Path(a, b int) []int {
	if g.dist[a][b] >= math.MaxInt32 {
		return nil
	}
	var out []int
	cur := b
	for cur != a {
		e := g.next[a][cur]
		out = append(out, e.data)
		cur = e.to
	}
	return out
}

// Dist returns the BFS distance between two nodes.
func (g *CheckGraph) Dist(a, b int) int { return g.dist[a][b] }

// Match performs minimum-weight matching of the flagged checks, where
// every flagged check pairs either with another flagged check or with
// the boundary (which can absorb any number). Exact search is used up to
// ten flagged checks; beyond that a greedy nearest-pair heuristic keeps
// decoding O(k²) (the thesis' rule-based decoder has the same spirit:
// cheap classical logic rather than optimal inference).
//
// The returned slice holds the data qubits of all correction chains
// (duplicates cancelled modulo 2).
func (g *CheckGraph) Match(flagged []int) []int {
	counts := map[int]int{}
	addPath := func(a, b int) {
		for _, q := range g.Path(a, b) {
			counts[q]++
		}
	}
	if len(flagged) <= 10 {
		pairs := g.exactMatch(flagged)
		for _, p := range pairs {
			addPath(p[0], p[1])
		}
	} else {
		g.greedyMatch(flagged, addPath)
	}
	var out []int
	for q, n := range counts {
		if n%2 == 1 {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// exactMatch searches all pairings recursively with memoization on the
// bitmask of unmatched flagged checks.
func (g *CheckGraph) exactMatch(flagged []int) [][2]int {
	k := len(flagged)
	if k == 0 {
		return nil
	}
	memo := make(map[uint]int)
	choice := make(map[uint][2]int)
	b := g.Boundary()
	var solve func(mask uint) int
	solve = func(mask uint) int {
		if mask == 0 {
			return 0
		}
		if v, ok := memo[mask]; ok {
			return v
		}
		// Lowest set bit pairs with boundary or another flagged check.
		first := 0
		for mask&(1<<uint(first)) == 0 {
			first++
		}
		rest := mask &^ (1 << uint(first))
		best := g.Dist(flagged[first], b) + solve(rest)
		bestPair := [2]int{flagged[first], b}
		for j := first + 1; j < k; j++ {
			if rest&(1<<uint(j)) == 0 {
				continue
			}
			cost := g.Dist(flagged[first], flagged[j]) + solve(rest&^(1<<uint(j)))
			if cost < best {
				best = cost
				bestPair = [2]int{flagged[first], flagged[j]}
			}
		}
		memo[mask] = best
		choice[mask] = bestPair
		return best
	}
	full := uint(1)<<uint(k) - 1
	solve(full)
	// Reconstruct.
	var out [][2]int
	mask := full
	for mask != 0 {
		p := choice[mask]
		out = append(out, p)
		first := 0
		for mask&(1<<uint(first)) == 0 {
			first++
		}
		mask &^= 1 << uint(first)
		if p[1] != g.Boundary() {
			for j := range flagged {
				if flagged[j] == p[1] && mask&(1<<uint(j)) != 0 {
					mask &^= 1 << uint(j)
					break
				}
			}
		}
	}
	return out
}

// greedyMatch repeatedly pairs the closest two unmatched checks (or a
// check with the boundary when that is closer).
func (g *CheckGraph) greedyMatch(flagged []int, addPath func(a, b int)) {
	alive := append([]int(nil), flagged...)
	b := g.Boundary()
	for len(alive) > 0 {
		bi, bj, best := 0, -1, g.Dist(alive[0], b)
		for i := 0; i < len(alive); i++ {
			if d := g.Dist(alive[i], b); d < best {
				bi, bj, best = i, -1, d
			}
			for j := i + 1; j < len(alive); j++ {
				if d := g.Dist(alive[i], alive[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		if bj < 0 {
			addPath(alive[bi], b)
			alive = append(alive[:bi], alive[bi+1:]...)
			continue
		}
		addPath(alive[bi], alive[bj])
		// Remove the larger index first.
		alive = append(alive[:bj], alive[bj+1:]...)
		alive = append(alive[:bi], alive[bi+1:]...)
	}
}
