package surfaced

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/surface"
)

func TestLayoutCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		l, err := NewLayout(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(l.XChecks) + len(l.ZChecks); got != d*d-1 {
			t.Errorf("d=%d: %d checks, want %d", d, got, d*d-1)
		}
		if len(l.XChecks) != len(l.ZChecks) {
			t.Errorf("d=%d: %d X vs %d Z checks", d, len(l.XChecks), len(l.ZChecks))
		}
		// Every data qubit is covered by at least one check of each type.
		for _, checks := range [][]Check{l.XChecks, l.ZChecks} {
			cover := make([]int, l.NumData())
			for _, ck := range checks {
				for _, q := range ck.Support {
					cover[q]++
				}
			}
			for q, n := range cover {
				if n < 1 || n > 2 {
					t.Errorf("d=%d: data %d covered by %d checks of one type", d, q, n)
				}
			}
		}
	}
	if _, err := NewLayout(4); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := NewLayout(1); err == nil {
		t.Error("distance 1 accepted")
	}
}

// TestD3MatchesSC17 pins the d=3 instance to the exact stabilizers of
// thesis Table 2.1 (as implemented in package surface).
func TestD3MatchesSC17(t *testing.T) {
	l, err := NewLayout(3)
	if err != nil {
		t.Fatal(err)
	}
	wantX := surface.XSupports(surface.RotNormal)
	wantZ := surface.ZSupports(surface.RotNormal)
	asSet := func(checks []Check) map[string]bool {
		m := map[string]bool{}
		for _, ck := range checks {
			m[key(ck.Support)] = true
		}
		return m
	}
	gotX, gotZ := asSet(l.XChecks), asSet(l.ZChecks)
	for _, sup := range wantX {
		if !gotX[key(sup)] {
			t.Errorf("X stabilizer %v missing at d=3", sup)
		}
	}
	for _, sup := range wantZ {
		if !gotZ[key(sup)] {
			t.Errorf("Z stabilizer %v missing at d=3", sup)
		}
	}
}

func key(sup []int) string {
	out := ""
	for _, q := range sup {
		out += string(rune('a' + q))
	}
	return out
}

func TestStabilizersCommute(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		l, _ := NewLayout(d)
		for _, x := range l.XChecks {
			xs := pauli.XString(x.Support...)
			for _, z := range l.ZChecks {
				if !xs.Commutes(pauli.ZString(z.Support...)) {
					t.Errorf("d=%d: X%v and Z%v anti-commute", d, x.Support, z.Support)
				}
			}
		}
		// Logical operators commute with all stabilizers and anti-commute
		// with each other.
		xl := pauli.XString(l.LogicalX()...)
		zl := pauli.ZString(l.LogicalZ()...)
		for _, z := range l.ZChecks {
			if !xl.Commutes(pauli.ZString(z.Support...)) {
				t.Errorf("d=%d: X_L anti-commutes with Z%v", d, z.Support)
			}
		}
		for _, x := range l.XChecks {
			if !zl.Commutes(pauli.XString(x.Support...)) {
				t.Errorf("d=%d: Z_L anti-commutes with X%v", d, x.Support)
			}
		}
		if xl.Commutes(zl) {
			t.Errorf("d=%d: X_L and Z_L should anti-commute", d)
		}
		if len(l.LogicalX()) != d || len(l.LogicalZ()) != d {
			t.Errorf("d=%d: logical weights %d/%d", d, len(l.LogicalX()), len(l.LogicalZ()))
		}
	}
}

func TestESMScheduleConflictFree(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		ch := layers.NewChpCore(rand.New(rand.NewSource(1)))
		p, err := NewPlane(ch, d)
		if err != nil {
			t.Fatal(err)
		}
		c := p.ESMCircuit()
		if err := c.Validate(); err != nil {
			t.Errorf("d=%d: ESM schedule conflict: %v", d, err)
		}
		if c.NumSlots() != 8 {
			t.Errorf("d=%d: ESM has %d slots, want 8", d, c.NumSlots())
		}
	}
}

func TestCheckGraphPaths(t *testing.T) {
	l, _ := NewLayout(3)
	g := NewCheckGraph(l.ZChecks, l.NumData())
	// A single X error on any data qubit flags checks whose matching
	// must reproduce a correction with the same syndrome.
	for q := 0; q < l.NumData(); q++ {
		var fl []int
		for i, ck := range l.ZChecks {
			if contains(ck.Support, q) {
				fl = append(fl, i)
			}
		}
		corr := g.Match(fl)
		// The correction must produce exactly the same flagged set.
		got := map[int]bool{}
		for _, cq := range corr {
			for i, ck := range l.ZChecks {
				if contains(ck.Support, cq) {
					got[i] = !got[i]
				}
			}
		}
		for _, i := range fl {
			if !got[i] {
				t.Errorf("correction %v for error on D%d does not flip check %d", corr, q, i)
			}
			delete(got, i)
		}
		for i, v := range got {
			if v {
				t.Errorf("correction %v for D%d flips extra check %d", corr, q, i)
			}
		}
	}
	// Empty syndrome: no correction.
	if corr := g.Match(nil); len(corr) != 0 {
		t.Errorf("empty syndrome gave corrections %v", corr)
	}
}

func TestMatchingMinimality(t *testing.T) {
	// At d=5, a single error's correction must have weight ≤ 2 (it is
	// distance ≤ 2 from reproducing the 1-2 flagged checks).
	l, _ := NewLayout(5)
	g := NewCheckGraph(l.ZChecks, l.NumData())
	for q := 0; q < l.NumData(); q++ {
		var fl []int
		for i, ck := range l.ZChecks {
			if contains(ck.Support, q) {
				fl = append(fl, i)
			}
		}
		corr := g.Match(fl)
		if len(corr) > 2 {
			t.Errorf("single error on D%d decoded to weight-%d correction %v", q, len(corr), corr)
		}
	}
}

func TestInitAndIdle(t *testing.T) {
	for _, d := range []int{3, 5} {
		ch := layers.NewChpCore(rand.New(rand.NewSource(int64(10 + d))))
		p, err := NewPlane(ch, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.InitZero(); err != nil {
			t.Fatal(err)
		}
		// All stabilizers +1 and Z_L = +1.
		r, err := p.RunESMRound()
		if err != nil {
			t.Fatal(err)
		}
		if !r.Clean() {
			t.Fatalf("d=%d: dirty syndrome after init: %+v", d, r)
		}
		toPhys := func(rel []int) []int {
			out := make([]int, len(rel))
			for i, q := range rel {
				out[i] = p.Data(q)
			}
			return out
		}
		v, det := ch.Tableau().ExpectPauli(pauli.ZString(toPhys(p.Layout.LogicalZ())...))
		if !det || v != 1 {
			t.Fatalf("d=%d: Z_L after init = %d det=%v", d, v, det)
		}
		// Idle windows issue no corrections.
		for w := 0; w < 3; w++ {
			st, err := p.RunWindow()
			if err != nil {
				t.Fatal(err)
			}
			if st.CorrectionGates != 0 {
				t.Errorf("d=%d window %d: %d corrections on clean state", d, w, st.CorrectionGates)
			}
		}
		if out, err := p.ProbeZL(); err != nil || out != 0 {
			t.Errorf("d=%d: Z_L probe = %d err=%v", d, out, err)
		}
	}
}

func TestWindowsCorrectInjectedErrors(t *testing.T) {
	for _, d := range []int{3, 5} {
		for q := 0; q < d*d; q++ {
			ch := layers.NewChpCore(rand.New(rand.NewSource(int64(100 + q))))
			p, err := NewPlane(ch, d)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.InitZero(); err != nil {
				t.Fatal(err)
			}
			ch.Tableau().X(p.Data(q))
			ch.Tableau().Z(p.Data((q + 1) % (d * d)))
			for w := 0; w < 3; w++ {
				if _, err := p.RunWindow(); err != nil {
					t.Fatal(err)
				}
			}
			r, err := p.RunESMRound()
			if err != nil {
				t.Fatal(err)
			}
			if !r.Clean() {
				t.Errorf("d=%d: residual syndrome after correcting X(D%d),Z(D%d)", d, q, (q+1)%(d*d))
			}
			if out, _ := p.ProbeZL(); out != 0 {
				t.Errorf("d=%d: logical flip from single X(D%d) + Z", d, q)
			}
		}
	}
}

// TestD5ToleratesWeight2XChains: at d=5 every adjacent weight-2 X error
// chain must be corrected without a logical flip (at d=3 some weight-2
// chains are at half distance and may legitimately decode to a logical).
func TestD5ToleratesWeight2XChains(t *testing.T) {
	const d = 5
	for q := 0; q < d*d; q++ {
		for _, dq := range []int{1, d} {
			q2 := q + dq
			if q2 >= d*d || (dq == 1 && q%d == d-1) {
				continue
			}
			ch := layers.NewChpCore(rand.New(rand.NewSource(int64(200 + q))))
			p, err := NewPlane(ch, d)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.InitZero(); err != nil {
				t.Fatal(err)
			}
			ch.Tableau().X(p.Data(q))
			ch.Tableau().X(p.Data(q2))
			for w := 0; w < 4; w++ {
				if _, err := p.RunWindow(); err != nil {
					t.Fatal(err)
				}
			}
			r, err := p.RunESMRound()
			if err != nil {
				t.Fatal(err)
			}
			if !r.Clean() {
				t.Errorf("residual syndrome for X chain D%d,D%d", q, q2)
			}
			if out, _ := p.ProbeZL(); out != 0 {
				t.Errorf("logical flip from weight-2 X chain D%d,D%d at d=5", q, q2)
			}
		}
	}
}

func TestRender(t *testing.T) {
	l, _ := NewLayout(3)
	plain := l.Render(nil)
	if !strings.Contains(plain, "D0") || !strings.Contains(plain, "D8") {
		t.Errorf("render missing data qubits:\n%s", plain)
	}
	if strings.Count(plain, "X")+strings.Count(plain, "Z") < 8 {
		t.Errorf("render missing checks:\n%s", plain)
	}
	if strings.Contains(plain, "!") {
		t.Error("clean render should have no flags")
	}
	// Flag one check of each type.
	r := Round{X: make([]bool, len(l.XChecks)), Z: make([]bool, len(l.ZChecks))}
	r.X[0] = true
	r.Z[1] = true
	flagged := l.Render(&r)
	if strings.Count(flagged, "!") != 2 {
		t.Errorf("want 2 flags:\n%s", flagged)
	}
}

func TestGreedyMatchLargeSyndrome(t *testing.T) {
	// Force the greedy path with >10 flagged checks at d=7.
	l, _ := NewLayout(7)
	g := NewCheckGraph(l.ZChecks, l.NumData())
	var fl []int
	for i := 0; i < len(l.ZChecks) && len(fl) < 12; i += 2 {
		fl = append(fl, i)
	}
	corr := g.Match(fl)
	// The correction must exactly cancel the flagged set.
	got := map[int]int{}
	for _, cq := range corr {
		for i, ck := range l.ZChecks {
			if contains(ck.Support, cq) {
				got[i]++
			}
		}
	}
	want := map[int]bool{}
	for _, i := range fl {
		want[i] = true
	}
	for i := range l.ZChecks {
		parity := got[i]%2 == 1
		if parity != want[i] {
			t.Fatalf("greedy correction does not reproduce the syndrome at check %d", i)
		}
	}
}
