package sweepstore

import (
	"testing"

	"repro/internal/experiments"
)

// The store path is not a simulation hot path, but it sits on every
// shard of every service sweep: allocation creep here multiplies by the
// shard count. The CI bench smoke runs these with -benchmem so the
// per-op footprint shows in the logs next to the kernel benches.

func benchShardConfig(i int) experiments.ShardConfig {
	return experiments.ShardConfig{
		Engine: "stack", PER: 3e-3, ErrorType: "x",
		MaxLogicalErrors: 4, MaxWindows: 3000,
		Seed: experiments.ShardSeed(2017, 0, i), Shots: 1,
	}
}

func benchRuns() []experiments.LERResult {
	return []experiments.LERResult{{
		Windows: 152, LogicalErrors: 4, LER: 4.0 / 152.0,
		CorrectionGates: 7, CorrectionSlots: 3, OpsIssued: 1000,
		SlotsIssued: 200, OpsExecuted: 996, SlotsExecuted: 198, InjectedErrors: 11,
	}}
}

// BenchmarkSweepStoreShardKey measures content-address hashing alone
// (canonical JSON + SHA-256).
func BenchmarkSweepStoreShardKey(b *testing.B) {
	sc := benchShardConfig(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShardKey(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepStoreRoundTrip measures one full cache cycle: hash the
// shard config, persist the runs, and read them back through the
// integrity checks — the per-shard overhead a cached sweep pays.
func BenchmarkSweepStoreRoundTrip(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	runs := benchRuns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := benchShardConfig(i)
		key, err := ShardKey(sc)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.PutShard(key, sc.Seed, runs); err != nil {
			b.Fatal(err)
		}
		if _, ok := st.GetShard(key, 1, sc.Seed); !ok {
			b.Fatal("miss after put")
		}
	}
}

// BenchmarkSweepStoreHit measures the read side alone: the cost of
// serving one shard from cache (the steady state of a resumed or
// resubmitted sweep).
func BenchmarkSweepStoreHit(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	sc := benchShardConfig(0)
	key, err := ShardKey(sc)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PutShard(key, sc.Seed, benchRuns()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.GetShard(key, 1, sc.Seed); !ok {
			b.Fatal("miss")
		}
	}
}
