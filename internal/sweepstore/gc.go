// Store garbage collection: a fleet-shared shard cache must not grow
// without limit, so the store tracks the byte footprint of its shards/
// tree and can evict least-recently-accessed shards down to a bound.
//
// Only shard files are evictable. The spec and result checkpoints under
// jobs/ are pins: they are what makes a job resumable by ID, they are
// tiny next to the shard payloads, and a GC that dropped them would
// turn a bounded cache into a lossy job table. Evicting a shard is
// always safe — the pipeline treats a missing shard as a cache miss and
// recomputes it bit-identically, so GC trades wall-clock for disk,
// never correctness.
//
// Eviction order is deterministic: ascending (access time, key). Access
// time is the file mtime — GetShard bumps it on every hit while a size
// bound is armed, so mtime order is LRU order — and the content-address
// key breaks ties, so a fixed access sequence always evicts the same
// shards.
package sweepstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCResult reports one garbage-collection pass.
type GCResult struct {
	// Evicted is the number of shard files removed.
	Evicted int
	// ReclaimedBytes is the payload size removed.
	ReclaimedBytes int64
	// RemainingBytes is the shard footprint after the pass.
	RemainingBytes int64
}

// SetMaxBytes arms automatic garbage collection: after any PutShard
// that pushes the shard footprint over limit, the store evicts
// least-recently-accessed shards until it fits again, and GetShard hits
// bump their shard's access time so hot shards survive. limit <= 0
// disarms the bound (the default).
func (s *Store) SetMaxBytes(limit int64) {
	s.maxBytes.Store(limit)
}

// MaxBytes returns the armed size bound (0 when unlimited).
func (s *Store) MaxBytes() int64 { return s.maxBytes.Load() }

// touch bumps a shard file's access time, best-effort: a failed bump
// only ages the shard's LRU position, it cannot corrupt results. The
// wall-clock read is cache bookkeeping — which shard to evict first —
// and never flows into simulation state or results.
func (s *Store) touch(path string) {
	//qa:allow determinism LRU access-time bookkeeping, never flows into results
	now := time.Now()
	//qa:allow errcheck best-effort access-time bump, a miss only ages the LRU slot
	os.Chtimes(path, now, now)
}

// shardEntry is one evictable file in the GC scan.
type shardEntry struct {
	key   string
	path  string
	size  int64
	atime time.Time
}

// GC evicts least-recently-accessed shards until the shard footprint is
// at or below maxBytes (spec/result checkpoints under jobs/ are pins
// and never touched). The eviction order is ascending (access time,
// key), so a fixed access history always evicts the same shards; a
// subsequent sweep over the store recomputes exactly the evicted shards
// and folds to bit-identical results. Safe to call concurrently with
// reads and writes: an evicted shard being read degrades to a cache
// miss.
func (s *Store) GC(maxBytes int64) (GCResult, error) {
	if maxBytes < 0 {
		return GCResult{}, fmt.Errorf("sweepstore: negative GC bound %d", maxBytes)
	}
	s.gcMu.Lock()
	defer s.gcMu.Unlock()

	entries, total, err := s.scanShards()
	if err != nil {
		return GCResult{}, err
	}
	// Resync the running counter to the scan: it can drift if an external
	// process shared the store directory.
	s.size.Store(total)

	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].atime.Equal(entries[j].atime) {
			return entries[i].atime.Before(entries[j].atime)
		}
		return entries[i].key < entries[j].key
	})

	res := GCResult{RemainingBytes: total}
	for _, e := range entries {
		if res.RemainingBytes <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.noteGC(res)
			return res, fmt.Errorf("sweepstore: evict shard %s: %w", e.key, err)
		}
		res.Evicted++
		res.ReclaimedBytes += e.size
		res.RemainingBytes -= e.size
	}
	s.size.Add(-res.ReclaimedBytes)
	s.noteGC(res)
	return res, nil
}

// noteGC folds one pass into the monotonic counters.
func (s *Store) noteGC(res GCResult) {
	s.gcRuns.Add(1)
	s.gcEvicted.Add(int64(res.Evicted))
	s.gcReclaimed.Add(res.ReclaimedBytes)
}

// scanShards walks the shards/ tree collecting every shard file with
// its size and access time.
func (s *Store) scanShards() ([]shardEntry, int64, error) {
	var entries []shardEntry
	var total int64
	root := filepath.Join(s.root, "shards")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A file evicted or renamed mid-walk is not an error.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		entries = append(entries, shardEntry{
			key:   strings.TrimSuffix(d.Name(), ".json"),
			path:  path,
			size:  fi.Size(),
			atime: fi.ModTime(),
		})
		total += fi.Size()
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("sweepstore: scan shards: %w", err)
	}
	return entries, total, nil
}

// scanShardBytes sums the shards/ tree (the Open-time size counter
// initialization).
func (s *Store) scanShardBytes() (int64, error) {
	_, total, err := s.scanShards()
	return total, err
}
