// Package sweepstore content-addresses sweep results on disk. Work
// units are keyed by the hash of their complete input description
// (experiments.ShardConfig — config plus ShardSeed), so identical
// sub-sweeps are served from cache instead of recomputed, whatever sweep
// they were first computed for. Whole sweeps are checkpointed under
// their spec hash (spec.json at submit, result.json at completion), and
// because every finished shard is persisted as it completes, a crashed
// or cancelled sweep resumes by rerunning the pipeline: cached shards
// are served from disk and only the missing ones are recomputed, folding
// to results bit-identical with an uninterrupted run.
//
// Layout under the store root:
//
//	VERSION                     the config-hash version of the writer
//	shards/<k[:2]>/<k>.json     one file per shard key k (content address)
//	jobs/<h>/spec.json          the submitted spec of sweep hash h
//	jobs/<h>/result.json        the folded PointResults of sweep hash h
//
// All writes are atomic (temp file + rename in the same directory), so a
// crash mid-write never leaves a truncated file behind a valid key.
package sweepstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
)

// Version names the config-hash scheme. It is folded into every key and
// stamped on the store root, and the sweep service refuses specs from
// clients with a different version: any change to simulation semantics,
// RNG draw order, or the spec/shard encodings must bump it, so a stale
// cache can never be served as current results.
//
// v2: the sparse engine joined the engine vocabulary and Spec gained the
// adaptive-sampling fields (adapt_rel_width / adapt_min_samples /
// adapt_batch). The fields are omitempty, so a non-adaptive spec's JSON
// is byte-identical to v1 — the version bump is what guarantees pre-PR-7
// caches are never served as current results.
//
// v3: the frame engines moved to fused error-run programs with
// geometric gap sampling (a different RNG draw order than the per-site
// Bernoulli sweep v2 cached), and Spec/ShardConfig gained the wide-lane
// fields (lanes / seeds). Both field sets are omitempty, so a width-1
// spec's JSON is byte-identical to v2 — the version bump alone keeps
// v2-era frame results from being served as current ones.
const Version = "pf-sweep-v3"

// keyOf content-addresses one value: SHA-256 over the version, a kind
// tag, and the canonical JSON encoding. Go's encoding/json is canonical
// for our structs: field order is declaration order and float64 values
// round-trip exactly.
func keyOf(kind string, v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("sweepstore: encode %s key: %w", kind, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", Version, kind)
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// SpecKey returns the content address of a whole sweep (its job ID).
// The spec is normalized first, so equivalent specs hash identically.
func SpecKey(spec experiments.Spec) (string, error) {
	return keyOf("spec", spec.Normalized())
}

// ShardKey returns the content address of one shard's results.
func ShardKey(sc experiments.ShardConfig) (string, error) {
	return keyOf("shard", sc)
}

// Stats are the store's monotonic operation counters, plus the current
// shard-payload footprint.
type Stats struct {
	// ShardHits / ShardMisses count GetShard outcomes (a corrupt or
	// mismatched file counts as a miss).
	ShardHits   int64
	ShardMisses int64
	// ShardWrites counts persisted shards.
	ShardWrites int64
	// ShardBytes is the current byte footprint of the shards/ tree
	// (spec/result checkpoints under jobs/ are pins, not counted).
	ShardBytes int64
	// GCRuns / GCEvicted / GCReclaimedBytes count garbage-collection
	// passes, evicted shard files, and bytes reclaimed (see Store.GC).
	GCRuns           int64
	GCEvicted        int64
	GCReclaimedBytes int64
}

// Store is an on-disk content-addressed sweep cache. All methods are
// safe for concurrent use: distinct keys touch distinct files and writes
// are atomic renames.
type Store struct {
	root string

	hits, misses, writes atomic.Int64

	// size tracks the shards/ byte footprint (scanned at Open, updated
	// by PutShard and GC). maxBytes > 0 arms automatic GC after writes
	// and access-time bumps on hits (see gc.go).
	size     atomic.Int64
	maxBytes atomic.Int64
	gcMu     sync.Mutex

	gcRuns, gcEvicted, gcReclaimed atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir. A root written
// by a different config-hash version is rejected rather than silently
// mixed with the current one.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("sweepstore: empty store directory")
	}
	for _, sub := range []string{"", "shards", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("sweepstore: %w", err)
		}
	}
	vpath := filepath.Join(dir, "VERSION")
	if prev, err := os.ReadFile(vpath); err == nil {
		if got := strings.TrimSpace(string(prev)); got != Version {
			return nil, fmt.Errorf("sweepstore: store %s was written with config-hash version %q, this binary uses %q (use a fresh store directory)", dir, got, Version)
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		if err := writeAtomic(vpath, []byte(Version+"\n")); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("sweepstore: %w", err)
	}
	s := &Store{root: dir}
	size, err := s.scanShardBytes()
	if err != nil {
		return nil, err
	}
	s.size.Store(size)
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		ShardHits:        s.hits.Load(),
		ShardMisses:      s.misses.Load(),
		ShardWrites:      s.writes.Load(),
		ShardBytes:       s.size.Load(),
		GCRuns:           s.gcRuns.Load(),
		GCEvicted:        s.gcEvicted.Load(),
		GCReclaimedBytes: s.gcReclaimed.Load(),
	}
}

// shardFile is the on-disk shard payload. Seed and Shots replicate the
// keyed ShardConfig fields so a hit can be cross-checked against what
// the caller expects — a defense-in-depth guard against a corrupted or
// hand-edited store.
type shardFile struct {
	Seed  int64                   `json:"seed"`
	Shots int                     `json:"shots"`
	Runs  []experiments.LERResult `json:"runs"`
}

func (s *Store) shardPath(key string) string {
	return filepath.Join(s.root, "shards", key[:2], key+".json")
}

// GetShard returns the cached runs under key, verifying the payload
// against the expected seed and shot count. Any mismatch, decode error,
// or absence is a miss — the pipeline then recomputes the shard, so a
// damaged cache degrades to extra work, never to wrong results.
func (s *Store) GetShard(key string, wantShots int, wantSeed int64) ([]experiments.LERResult, bool) {
	blob, err := os.ReadFile(s.shardPath(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var sf shardFile
	if err := json.Unmarshal(blob, &sf); err != nil ||
		sf.Seed != wantSeed || sf.Shots != wantShots || len(sf.Runs) != wantShots {
		s.misses.Add(1)
		return nil, false
	}
	// Recompute the derived ratio from the stored integers: the counts
	// are the ground truth and the division is exact to replay, so the
	// round trip is bit-identical by construction.
	experiments.NormalizeLERRuns(sf.Runs)
	s.hits.Add(1)
	if s.maxBytes.Load() > 0 {
		s.touch(s.shardPath(key))
	}
	return sf.Runs, true
}

// PutShard persists one computed shard under key. When a size bound is
// armed (SetMaxBytes) and the write pushes the shard footprint over it,
// a GC pass runs before returning.
func (s *Store) PutShard(key string, seed int64, runs []experiments.LERResult) error {
	blob, err := json.Marshal(shardFile{Seed: seed, Shots: len(runs), Runs: runs})
	if err != nil {
		return fmt.Errorf("sweepstore: encode shard: %w", err)
	}
	path := s.shardPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	// An overwrite replaces the old payload, so only the delta counts.
	var prev int64
	if fi, err := os.Stat(path); err == nil {
		prev = fi.Size()
	}
	if err := writeAtomic(path, blob); err != nil {
		return err
	}
	s.writes.Add(1)
	s.size.Add(int64(len(blob)) - prev)
	if limit := s.maxBytes.Load(); limit > 0 && s.size.Load() > limit {
		if _, err := s.GC(limit); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) jobPath(hash, name string) string {
	return filepath.Join(s.root, "jobs", hash, name)
}

// PutSpec checkpoints a submitted spec under its hash, making the job
// resumable by ID after a crash or restart.
func (s *Store) PutSpec(hash string, spec experiments.Spec) error {
	blob, err := json.Marshal(spec.Normalized())
	if err != nil {
		return fmt.Errorf("sweepstore: encode spec: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(s.jobPath(hash, "spec.json")), 0o755); err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	return writeAtomic(s.jobPath(hash, "spec.json"), blob)
}

// GetSpec loads the spec checkpointed under hash.
func (s *Store) GetSpec(hash string) (experiments.Spec, bool, error) {
	blob, err := os.ReadFile(s.jobPath(hash, "spec.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return experiments.Spec{}, false, nil
	}
	if err != nil {
		return experiments.Spec{}, false, fmt.Errorf("sweepstore: %w", err)
	}
	var spec experiments.Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return experiments.Spec{}, false, fmt.Errorf("sweepstore: decode spec %s: %w", hash, err)
	}
	return spec, true, nil
}

// PutResult stores the folded results of a completed sweep.
func (s *Store) PutResult(hash string, pts []experiments.PointResult) error {
	blob, err := json.Marshal(pts)
	if err != nil {
		return fmt.Errorf("sweepstore: encode result: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(s.jobPath(hash, "result.json")), 0o755); err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	return writeAtomic(s.jobPath(hash, "result.json"), blob)
}

// GetResult loads the stored results of sweep hash, if complete.
func (s *Store) GetResult(hash string) ([]experiments.PointResult, bool, error) {
	blob, err := os.ReadFile(s.jobPath(hash, "result.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweepstore: %w", err)
	}
	var pts []experiments.PointResult
	if err := json.Unmarshal(blob, &pts); err != nil {
		return nil, false, fmt.Errorf("sweepstore: decode result %s: %w", hash, err)
	}
	return pts, true, nil
}

// writeAtomic writes data to path via a temp file and rename, so readers
// never observe a partial file.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("sweepstore: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		//qa:allow errcheck best-effort temp cleanup, the write error is returned
		tmp.Close()
		//qa:allow errcheck best-effort temp cleanup, the write error is returned
		os.Remove(name)
		return fmt.Errorf("sweepstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		//qa:allow errcheck best-effort temp cleanup, the close error is returned
		os.Remove(name)
		return fmt.Errorf("sweepstore: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		//qa:allow errcheck best-effort temp cleanup, the rename error is returned
		os.Remove(name)
		return fmt.Errorf("sweepstore: %w", err)
	}
	return nil
}
