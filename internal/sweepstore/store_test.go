package sweepstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

func testSpec() experiments.Spec {
	return experiments.Spec{
		Engine:           "stack",
		PERs:             []float64{3e-3, 8e-3},
		Samples:          2,
		ErrorType:        "x",
		WithPauliFrame:   true,
		MaxLogicalErrors: 4,
		MaxWindows:       3000,
		BaseSeed:         424242,
	}
}

// TestShardKeyDistinct flips every field of a ShardConfig in turn and
// requires a distinct key each time: distinct shard computations must
// never collide in the cache.
func TestShardKeyDistinct(t *testing.T) {
	base := experiments.ShardConfig{
		Engine: "stack", PER: 3e-3, ErrorType: "x", WithPauliFrame: false,
		MaxLogicalErrors: 4, MaxWindows: 3000, Seed: 17, Shots: 1, RefSeed: 0,
	}
	variants := []func(*experiments.ShardConfig){
		func(c *experiments.ShardConfig) { c.Engine = "framesim" },
		func(c *experiments.ShardConfig) { c.PER = 3.0000001e-3 },
		func(c *experiments.ShardConfig) { c.ErrorType = "z" },
		func(c *experiments.ShardConfig) { c.WithPauliFrame = true },
		func(c *experiments.ShardConfig) { c.MaxLogicalErrors = 5 },
		func(c *experiments.ShardConfig) { c.MaxWindows = 3001 },
		func(c *experiments.ShardConfig) { c.Seed = 18 },
		func(c *experiments.ShardConfig) { c.Shots = 2 },
		func(c *experiments.ShardConfig) { c.RefSeed = 1 },
	}
	seen := map[string]int{}
	baseKey, err := ShardKey(base)
	if err != nil {
		t.Fatal(err)
	}
	seen[baseKey] = -1
	for i, mutate := range variants {
		c := base
		mutate(&c)
		k, err := ShardKey(c)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d: key %s", i, prev, k)
		}
		seen[k] = i
	}
	// Equal configs must always hit the same key.
	again, err := ShardKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if again != baseKey {
		t.Errorf("ShardKey unstable: %s then %s", baseKey, again)
	}
}

// TestSpecKeyNormalization: a spec with defaulted fields and its
// explicitly normalized twin are the same computation, so they must
// share a key — and any material field change must break it.
func TestSpecKeyNormalization(t *testing.T) {
	implicit := experiments.Spec{PERs: []float64{1e-3}, Samples: 3, BaseSeed: 1}
	explicit := experiments.Spec{
		Engine: "stack", PERs: []float64{1e-3}, Samples: 3, ErrorType: "x",
		MaxLogicalErrors: 50, MaxWindows: 2_000_000, BaseSeed: 1,
	}
	k1, err := SpecKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := SpecKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("normalized twins hash differently: %s vs %s", k1, k2)
	}
	changed := explicit
	changed.BaseSeed = 2
	k3, err := SpecKey(changed)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different base seeds produced the same spec key")
	}
}

func TestShardRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs := []experiments.LERResult{
		{Windows: 152, LogicalErrors: 4, LER: 4.0 / 152.0, CorrectionGates: 7,
			CorrectionSlots: 3, OpsIssued: 1000, SlotsIssued: 200, OpsExecuted: 996,
			SlotsExecuted: 198, InjectedErrors: 11},
		{Windows: 0, LogicalErrors: 0},
	}
	key, err := ShardKey(experiments.ShardConfig{Engine: "stack", PER: 1e-3, Seed: 5, Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.GetShard(key, 2, 5); ok {
		t.Fatal("hit before put")
	}
	if err := st.PutShard(key, 5, runs); err != nil {
		t.Fatal(err)
	}
	got, ok := st.GetShard(key, 2, 5)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(got, runs) {
		t.Fatalf("round trip diverged:\nput: %+v\ngot: %+v", runs, got)
	}
	// Seed / shot-count mismatches and corruption all degrade to misses.
	if _, ok := st.GetShard(key, 2, 6); ok {
		t.Error("hit with wrong seed")
	}
	if _, ok := st.GetShard(key, 1, 5); ok {
		t.Error("hit with wrong shot count")
	}
	if err := os.WriteFile(st.shardPath(key), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.GetShard(key, 2, 5); ok {
		t.Error("hit on corrupt payload")
	}
	stats := st.Stats()
	if stats.ShardWrites != 1 || stats.ShardHits != 1 || stats.ShardMisses != 4 {
		t.Errorf("stats = %+v, want writes 1, hits 1, misses 4", stats)
	}
}

func TestSpecAndResultRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	hash, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.GetSpec(hash); err != nil || ok {
		t.Fatalf("GetSpec before put: ok=%v err=%v", ok, err)
	}
	if err := st.PutSpec(hash, spec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.GetSpec(hash)
	if err != nil || !ok {
		t.Fatalf("GetSpec after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, spec.Normalized()) {
		t.Fatalf("spec round trip diverged: %+v vs %+v", got, spec.Normalized())
	}

	pts := []experiments.PointResult{{PER: 3e-3, LERs: []float64{0.25, 1.0 / 3.0},
		WindowCounts: []float64{4, 3}, GatesSaved: []float64{0, 0.125}, SlotsSaved: []float64{0, 0}}}
	if _, ok, err := st.GetResult(hash); err != nil || ok {
		t.Fatalf("GetResult before put: ok=%v err=%v", ok, err)
	}
	if err := st.PutResult(hash, pts); err != nil {
		t.Fatal(err)
	}
	rpts, ok, err := st.GetResult(hash)
	if err != nil || !ok {
		t.Fatalf("GetResult after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(rpts, pts) {
		t.Fatalf("result round trip diverged:\nput: %+v\ngot: %+v", pts, rpts)
	}
}

// TestOpenRejectsForeignVersion: a store stamped by a different
// config-hash version must be refused, not silently reused.
func TestOpenRejectsForeignVersion(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("pf-sweep-v0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a store written by another version")
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}

// TestRunCachedHitsAndResume is the crash-safety contract end to end:
// a sweep cancelled mid-flight leaves its finished shards checkpointed,
// and the resumed run serves them from cache, computes only the rest,
// and folds to results bit-identical with an uninterrupted Workers=1
// run.
func TestRunCachedHitsAndResume(t *testing.T) {
	cfg, err := testSpec().SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	want, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := experiments.SpecOf(cfg).NumShards()

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// First attempt: cancel the context after the second computed shard.
	// Workers=1 keeps the interruption point deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var computed atomic.Int64
	_, err = RunCached(ctx, st, cfg, func(_ experiments.Shard, cached bool) {
		if cached {
			t.Error("cache hit on an empty store")
		}
		if computed.Add(1) == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if got := computed.Load(); got != 2 {
		t.Fatalf("interrupted run computed %d shards, want 2", got)
	}

	// Resume on a fresh runner (same store), this time in parallel: the
	// two checkpointed shards are cache hits, the rest are computed, and
	// the fold matches the uninterrupted serial run bit for bit.
	resumeCfg := cfg
	resumeCfg.Workers = 4
	var hits, misses atomic.Int64
	var mu sync.Mutex
	seen := map[int]bool{}
	got, err := RunCached(context.Background(), st, resumeCfg, func(sh experiments.Shard, cached bool) {
		if cached {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		mu.Lock()
		seen[sh.Index] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep diverged from uninterrupted Workers=1 run:\nresumed: %+v\nfresh:   %+v", got, want)
	}
	if hits.Load() != 2 || int(hits.Load()+misses.Load()) != total {
		t.Errorf("resume: hits=%d misses=%d, want 2 hits and %d total", hits.Load(), misses.Load(), total)
	}
	if len(seen) != total {
		t.Errorf("resume touched %d distinct shards, want %d", len(seen), total)
	}

	// Third run: everything is cached now — a 100% cache hit, still
	// bit-identical.
	var rehits, remiss atomic.Int64
	again, err := RunCached(context.Background(), st, resumeCfg, func(_ experiments.Shard, cached bool) {
		if cached {
			rehits.Add(1)
		} else {
			remiss.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("fully cached sweep diverged from computed results")
	}
	if int(rehits.Load()) != total || remiss.Load() != 0 {
		t.Errorf("full-cache run: hits=%d misses=%d, want %d/0", rehits.Load(), remiss.Load(), total)
	}
}

// TestRunCachedFrameSim runs the cache round trip on the bit-sliced
// engine, whose shards are 64-shot words with a RefSeed-dependent key.
func TestRunCachedFrameSim(t *testing.T) {
	cfg := experiments.SweepConfig{
		Engine:           experiments.EngineFrameSim,
		PERs:             []float64{5e-3},
		Samples:          70, // two words: one full, one partial
		MaxLogicalErrors: 3,
		MaxWindows:       2000,
		BaseSeed:         99,
		Workers:          2,
	}
	want, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunCached(context.Background(), st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatal("cached framesim sweep diverged from RunSweep")
	}
	var hits, misses atomic.Int64
	second, err := RunCached(context.Background(), st, cfg, func(_ experiments.Shard, cached bool) {
		if cached {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatal("second framesim sweep diverged")
	}
	if hits.Load() != 2 || misses.Load() != 0 {
		t.Errorf("framesim rerun: hits=%d misses=%d, want 2/0", hits.Load(), misses.Load())
	}
	// A different BaseSeed recompiles the reference run: its shards must
	// not be served from the old cache.
	other := cfg
	other.BaseSeed = 100
	var otherHits atomic.Int64
	if _, err := RunCached(context.Background(), st, other, func(_ experiments.Shard, cached bool) {
		if cached {
			otherHits.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if otherHits.Load() != 0 {
		t.Error("framesim sweep with different BaseSeed hit the old cache")
	}
}

// TestAdaptiveSpecNeverCollidesWithV1 is the PR-7 cache-migration
// contract. The adaptive-sampling fields are omitempty, so a
// non-adaptive spec's canonical JSON is byte-identical to what a
// pre-PR-7 binary hashed — only the Version bump separates the caches.
// This test pins all three layers: (1) an adaptive spec hashes away from
// its non-adaptive twin, (2) the v2 key of a non-adaptive spec differs
// from the key a v1-versioned scheme would have produced, and (3) Open
// refuses a store directory stamped with the v1 version outright.
func TestAdaptiveSpecNeverCollidesWithV1(t *testing.T) {
	if Version == "pf-sweep-v1" {
		t.Fatal("Version was not bumped for the adaptive-sampling spec extension")
	}
	plain := testSpec()
	adaptive := plain
	adaptive.AdaptRelWidth = 0.1
	kPlain, err := SpecKey(plain)
	if err != nil {
		t.Fatal(err)
	}
	kAdaptive, err := SpecKey(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if kAdaptive == kPlain {
		t.Error("adaptive spec shares a key with its non-adaptive twin")
	}
	// Normalized defaults (min samples, batch) must be part of the hash:
	// changing the stop granularity changes which shards run.
	batched := adaptive
	batched.AdaptBatch = 512
	kBatched, err := SpecKey(batched)
	if err != nil {
		t.Fatal(err)
	}
	if kBatched == kAdaptive {
		t.Error("changing adapt_batch did not change the spec key")
	}
	// A disabled-but-dirty adaptive block normalizes to the plain spec:
	// same computation, same key.
	off := plain
	off.AdaptRelWidth = 0
	off.AdaptMinSamples = 99
	off.AdaptBatch = 7
	kOff, err := SpecKey(off)
	if err != nil {
		t.Fatal(err)
	}
	if kOff != kPlain {
		t.Error("disabled adaptive fields leaked into the spec key")
	}

	// (3) A pre-PR-7 store directory is refused at Open time, so a v1
	// cache can never serve a v2 spec even if a key collided.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("pf-sweep-v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a pf-sweep-v1 store")
	}
}

// keyWithVersion reproduces keyOf under an arbitrary version string, for
// cross-version collision tests.
func keyWithVersion(t *testing.T, version, kind string, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", version, kind)
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

// TestWideLanesNeverCollideWithV2 is the PR-8 cache-migration contract.
// The fused-run frame engines draw their RNG in a different order than
// the per-site sweep v2 cached, and the lanes/seeds fields are omitempty,
// so a width-1 spec or single-word shard encodes byte-identically to its
// v2 twin — only the version bump separates the caches. This test pins
// every layer: (1) the version actually moved off v2, (2) current keys
// differ from the keys a v2-versioned scheme produces for the same
// values, (3) a wide spec hashes away from its width-1 twin while a
// Lanes=1 spec normalizes onto it, (4) multi-word shard configs hash
// away from their first word alone, and (5) Open refuses a v2 store.
func TestWideLanesNeverCollideWithV2(t *testing.T) {
	if Version == "pf-sweep-v2" {
		t.Fatal("Version was not bumped for the fused-run/wide-lane engines")
	}
	frame := testSpec()
	frame.Engine = "framesim"
	kFrame, err := SpecKey(frame)
	if err != nil {
		t.Fatal(err)
	}
	if v2 := keyWithVersion(t, "pf-sweep-v2", "spec", frame.Normalized()); v2 == kFrame {
		t.Error("v3 spec key collides with its v2 key")
	}
	sc := experiments.ShardConfig{
		Engine: "framesim", PER: 3e-3, ErrorType: "x",
		MaxLogicalErrors: 4, MaxWindows: 3000, Seed: 17, Shots: 64, RefSeed: 424242,
	}
	kShard, err := ShardKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	if v2 := keyWithVersion(t, "pf-sweep-v2", "shard", sc); v2 == kShard {
		t.Error("v3 shard key collides with its v2 key")
	}

	wide := frame
	wide.Lanes = 4
	kWide, err := SpecKey(wide)
	if err != nil {
		t.Fatal(err)
	}
	if kWide == kFrame {
		t.Error("Lanes=4 spec shares a key with its width-1 twin")
	}
	one := frame
	one.Lanes = 1
	kOne, err := SpecKey(one)
	if err != nil {
		t.Fatal(err)
	}
	if kOne != kFrame {
		t.Error("Lanes=1 did not normalize onto the width-1 spec key")
	}

	multi := sc
	multi.Shots = 128
	multi.Seeds = []int64{17, 23}
	kMulti, err := ShardKey(multi)
	if err != nil {
		t.Fatal(err)
	}
	firstOnly := sc
	firstOnly.Shots = 128
	kFirst, err := ShardKey(firstOnly)
	if err != nil {
		t.Fatal(err)
	}
	if kMulti == kFirst {
		t.Error("multi-word shard key ignores the word seed list")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("pf-sweep-v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a pf-sweep-v2 store")
	}
}
