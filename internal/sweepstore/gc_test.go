package sweepstore

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiments"
)

// fakeShard writes a synthetic shard with a chosen access time and
// returns its key and on-disk size. The keys sort by their numeric
// suffix only by accident; tests that need a tie-break order set equal
// atimes explicitly.
func fakeShard(t *testing.T, st *Store, i int, atime time.Time) (string, int64) {
	t.Helper()
	key, err := ShardKey(experiments.ShardConfig{
		Engine: "stack", PER: 1e-3, ErrorType: "x",
		MaxLogicalErrors: 1, MaxWindows: 10, Seed: int64(1000 + i), Shots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := []experiments.LERResult{{Windows: 10, LogicalErrors: i}}
	if err := st.PutShard(key, int64(1000+i), runs); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(st.shardPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(st.shardPath(key), atime, atime); err != nil {
		t.Fatal(err)
	}
	return key, fi.Size()
}

func shardOnDisk(st *Store, key string) bool {
	_, err := os.Stat(st.shardPath(key))
	return err == nil
}

// TestGCPinsSurvive: a GC to zero evicts every shard but never the
// spec/result checkpoints under jobs/ — a bounded cache must not become
// a lossy job table.
func TestGCPinsSurvive(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	id, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSpec(id, spec); err != nil {
		t.Fatal(err)
	}
	pts := []experiments.PointResult{{PER: 1e-3, LERs: []float64{0.1}, WindowCounts: []float64{10}}}
	if err := st.PutResult(id, pts); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	keys := make([]string, 4)
	for i := range keys {
		keys[i], _ = fakeShard(t, st, i, base.Add(time.Duration(i)*time.Minute))
	}

	res, err := st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != len(keys) || res.RemainingBytes != 0 {
		t.Fatalf("GC(0) = %+v, want all %d shards evicted", res, len(keys))
	}
	for _, k := range keys {
		if shardOnDisk(st, k) {
			t.Errorf("shard %s survived GC(0)", k)
		}
	}
	if _, ok, err := st.GetSpec(id); err != nil || !ok {
		t.Fatalf("spec pin evicted: ok=%v err=%v", ok, err)
	}
	gotPts, ok, err := st.GetResult(id)
	if err != nil || !ok {
		t.Fatalf("result pin evicted: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(gotPts, pts) {
		t.Fatal("result pin corrupted by GC")
	}
	if st.Stats().ShardBytes != 0 {
		t.Errorf("ShardBytes %d after full GC, want 0", st.Stats().ShardBytes)
	}
}

// TestGCDeterministicLRU: under a fixed access sequence the eviction
// set is exactly the least-recently-accessed prefix, and equal access
// times break ties by key ascending — the same inputs always evict the
// same shards.
func TestGCDeterministicLRU(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var keys []string
	var sizes []int64
	for i := 0; i < 5; i++ {
		k, sz := fakeShard(t, st, i, base.Add(time.Duration(i)*time.Hour))
		keys = append(keys, k)
		sizes = append(sizes, sz)
	}
	var total int64
	for _, sz := range sizes {
		total += sz
	}

	// Evict until the two oldest are gone: bound = total - sizes[0] - sizes[1].
	res, err := st.GC(total - sizes[0] - sizes[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 || res.ReclaimedBytes != sizes[0]+sizes[1] {
		t.Fatalf("GC = %+v, want 2 oldest evicted (%d bytes)", res, sizes[0]+sizes[1])
	}
	for i, k := range keys {
		if got := shardOnDisk(st, k); got != (i >= 2) {
			t.Errorf("shard %d (atime rank %d): on disk %v, want %v", i, i, got, i >= 2)
		}
	}

	// Tie-break: two shards sharing an access time evict in key order.
	st2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tie := base.Add(10 * time.Hour)
	kA, szA := fakeShard(t, st2, 0, tie)
	kB, _ := fakeShard(t, st2, 1, tie)
	lo, hi := kA, kB
	if kB < kA {
		lo, hi = kB, kA
	}
	_ = szA
	fiLo, err := os.Stat(st2.shardPath(lo))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := st2.GC(st2.Stats().ShardBytes - fiLo.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Evicted != 1 {
		t.Fatalf("tie GC evicted %d, want 1", res2.Evicted)
	}
	if shardOnDisk(st2, lo) || !shardOnDisk(st2, hi) {
		t.Errorf("tie-break evicted wrong shard: lo(%s) on disk %v, hi(%s) on disk %v",
			lo, shardOnDisk(st2, lo), hi, shardOnDisk(st2, hi))
	}
}

// TestGCHitBumpsLRU: with a size bound armed, a GetShard hit moves the
// shard to the young end of the LRU order, so hot shards survive the
// next pass.
func TestGCHitBumpsLRU(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetMaxBytes(1 << 40) // arm the bound (huge: no auto-GC interference)
	base := time.Now().Add(-24 * time.Hour)
	k0, sz0 := fakeShard(t, st, 0, base)
	k1, _ := fakeShard(t, st, 1, base.Add(time.Hour))

	// Hit the older shard: its access time jumps to now, making k1 the
	// eviction candidate.
	if _, ok := st.GetShard(k0, 1, 1000); !ok {
		t.Fatal("warm shard missed")
	}
	res, err := st.GC(sz0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 || !shardOnDisk(st, k0) || shardOnDisk(st, k1) {
		t.Fatalf("LRU bump ignored: evicted=%d k0 on disk %v, k1 on disk %v",
			res.Evicted, shardOnDisk(st, k0), shardOnDisk(st, k1))
	}
}

// TestGCResumeRecomputesOnlyEvicted: after a GC pass evicts part of a
// finished sweep, rerunning it recomputes exactly the evicted shards
// and folds to the identical result.
func TestGCResumeRecomputesOnlyEvicted(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep e2e skipped in -short mode")
	}
	spec := testSpec()
	cfg, err := spec.SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached(context.Background(), st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := spec.NumShards()

	// Age shard i by its index so eviction order is the shard order, then
	// evict roughly half.
	base := time.Now().Add(-time.Duration(n+1) * time.Hour)
	var paths []string
	for i := 0; i < n; i++ {
		key, err := ShardKey(spec.ShardConfig(spec.Shard(i)))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, st.shardPath(key))
		at := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(paths[i], at, at); err != nil {
			t.Fatal(err)
		}
	}
	var keep int64
	evict := n / 2
	for i := evict; i < n; i++ {
		fi, err := os.Stat(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		keep += fi.Size()
	}
	res, err := st.GC(keep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != evict {
		t.Fatalf("GC evicted %d shards, want %d", res.Evicted, evict)
	}

	var computed, cached int
	got, err := RunCached(context.Background(), st, cfg, func(_ experiments.Shard, hit bool) {
		if hit {
			cached++
		} else {
			computed++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed != evict || cached != n-evict {
		t.Errorf("resume computed %d / cached %d, want %d / %d", computed, cached, evict, n-evict)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-GC resume diverged from the original sweep")
	}
}

// TestAutoGCEnforcesBound: with SetMaxBytes armed, writes keep the
// shard footprint at or below the bound without any explicit GC call.
func TestAutoGCEnforcesBound(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, one := fakeShard(t, st, 0, time.Now())
	limit := 3 * one // roughly three shards' worth
	st.SetMaxBytes(limit)
	base := time.Now().Add(-time.Hour)
	for i := 1; i < 10; i++ {
		k, _ := fakeShard(t, st, i, base.Add(time.Duration(i)*time.Minute))
		_ = k
		if got := st.Stats().ShardBytes; got > limit+one {
			// One write may overshoot by a shard before its GC lands, never
			// more.
			t.Fatalf("write %d: footprint %d exceeds bound %d", i, got, limit)
		}
	}
	stats := st.Stats()
	if stats.ShardBytes > limit {
		t.Errorf("final footprint %d exceeds bound %d", stats.ShardBytes, limit)
	}
	if stats.GCRuns == 0 || stats.GCEvicted == 0 {
		t.Errorf("auto-GC never ran: %+v", stats)
	}
	if got := stats.GCReclaimedBytes; got <= 0 {
		t.Errorf("reclaimed %d bytes, want > 0", got)
	}

	// A reopened store rescans to the post-GC footprint.
	st2, err := Open(st.Root())
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().ShardBytes; got != stats.ShardBytes {
		t.Errorf("reopened footprint %d, want %d", got, stats.ShardBytes)
	}
}

// TestGCRejectsNegativeBound: the explicit API mirrors the flag
// validation.
func TestGCRejectsNegativeBound(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GC(-1); err == nil {
		t.Fatal("GC(-1) accepted")
	}
}
