package sweepstore

import (
	"context"

	"repro/internal/experiments"
)

// RunCached executes a sweep through the experiments pipeline with the
// store as shard cache and checkpoint: every shard is first looked up by
// its content address, and every computed shard is persisted as soon as
// it finishes — so a cancelled or crashed sweep resumes from the store
// and folds to results bit-identical with an uninterrupted run.
//
// note, when non-nil, observes each shard as it resolves (cached
// reports whether it was served from the store); it is called
// concurrently from worker goroutines. The local CLIs (-store) and the
// sweep service share this exact path.
func RunCached(ctx context.Context, st *Store, cfg experiments.SweepConfig, note func(sh experiments.Shard, cached bool)) ([]experiments.PointResult, error) {
	spec := experiments.SpecOf(cfg).Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Precompute the content address of every shard once; keys are pure
	// functions of the spec.
	keys := make([]string, spec.NumShards())
	for i := range keys {
		k, err := ShardKey(spec.ShardConfig(spec.Shard(i)))
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return experiments.RunSpec(ctx, spec, experiments.RunOptions{
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		Lookup: func(sh experiments.Shard) ([]experiments.LERResult, bool) {
			runs, ok := st.GetShard(keys[sh.Index], sh.Count, sh.Seed)
			if ok && note != nil {
				note(sh, true)
			}
			return runs, ok
		},
		Persist: func(sh experiments.Shard, runs []experiments.LERResult) error {
			if note != nil {
				note(sh, false)
			}
			return st.PutShard(keys[sh.Index], sh.Seed, runs)
		},
	})
}
