package timing

import (
	"testing"
	"testing/quick"
)

func TestSC17Schedules(t *testing.T) {
	// Thesis Fig 3.3 with a decoder as fast as one ESM round (8 slots).
	p := SC17(8)
	if got := WindowLatencyWithoutFrame(p); got != 16+8+1 {
		t.Errorf("serial window = %d, want 25", got)
	}
	if got := WindowLatencyWithFrame(p); got != 16 {
		t.Errorf("pipelined window = %d, want 16", got)
	}
	if got := SavedSlots(p); got != 9 {
		t.Errorf("saved slots = %d, want 9", got)
	}
	if s := Speedup(p); s < 1.5 || s > 1.6 {
		t.Errorf("speedup = %v, want 25/16", s)
	}
}

func TestZeroLatencyDecoder(t *testing.T) {
	// Even an instantaneous decoder saves the correction slot.
	p := SC17(0)
	if got := SavedSlots(p); got != 1 {
		t.Errorf("saved slots with ideal decoder = %d, want 1", got)
	}
}

func TestSlowDecoderStallsPipelineToo(t *testing.T) {
	// A decoder slower than a full window stalls even the pipelined
	// schedule, but by less than the serial one.
	p := SC17(40)
	with := WindowLatencyWithFrame(p)
	without := WindowLatencyWithoutFrame(p)
	if with != 40 {
		t.Errorf("pipelined window with slow decoder = %d, want 40", with)
	}
	if without != 16+40+1 {
		t.Errorf("serial window with slow decoder = %d, want 57", without)
	}
}

func TestDecoderDeadlines(t *testing.T) {
	p := SC17(8)
	if DecoderDeadlineWithoutFrame(p) != 0 {
		t.Error("serial schedule tolerates no decode latency without stalling")
	}
	if got := DecoderDeadlineWithFrame(p); got != 16 {
		t.Errorf("relaxed deadline = %d, want 16 (one full window)", got)
	}
}

func TestLogicalOpsPerKSlot(t *testing.T) {
	without, with := LogicalOpsPerKSlot(SC17(8))
	if without != 40 || with != 62 {
		t.Errorf("logical ops per 1000 slots = %d/%d, want 40/62", without, with)
	}
}

// Property: the frame never makes the schedule worse, and the saving is
// bounded by decode latency + correction slots.
func TestFrameNeverHurtsProperty(t *testing.T) {
	f := func(esm, rounds, decode uint8) bool {
		p := Params{
			TsESM:           int(esm%16) + 1,
			RoundsPerWindow: int(rounds%6) + 1,
			DecodeLatency:   int(decode % 64),
			CorrectionSlots: 1,
		}
		saved := SavedSlots(p)
		return saved >= 1 && saved <= p.DecodeLatency+p.CorrectionSlots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
