// Package timing models the QEC scheduling benefit of a Pauli frame
// (thesis §3.3, Fig 3.3): without a frame, every window must wait for
// the decoder to finish and then spend a time slot applying corrections
// before the next ESM round may start; with a frame, decoding proceeds
// concurrently with the next ESM rounds and corrections cost nothing.
// This is the paper's positive claim — the LER is unchanged (Chapter 5),
// but the wall-clock schedule tightens and the decoder deadline relaxes.
//
// All durations are in abstract time-slot units (one physical operation
// per slot, thesis Fig 4.4).
package timing

// Params describes one QEC configuration.
type Params struct {
	// TsESM is the number of time slots per ESM round (8 for SC17,
	// thesis Table 5.8).
	TsESM int
	// RoundsPerWindow is the number of ESM rounds per window (d−1).
	RoundsPerWindow int
	// DecodeLatency is the decoder's running time in slots after the
	// last syndrome of a window arrives.
	DecodeLatency int
	// CorrectionSlots is the cost of physically applying corrections
	// (1 slot; 0 when a Pauli frame absorbs them).
	CorrectionSlots int
}

// SC17 returns the thesis parameters for a distance-3 window.
func SC17(decodeLatency int) Params {
	return Params{TsESM: 8, RoundsPerWindow: 2, DecodeLatency: decodeLatency, CorrectionSlots: 1}
}

// WindowLatencyWithoutFrame is the serial schedule of thesis Fig 3.3a:
// ESM rounds, then stall until decoding completes, then the correction
// slot. The next window cannot start earlier because the corrections
// must be physical before further syndromes are interpreted.
func WindowLatencyWithoutFrame(p Params) int {
	return p.RoundsPerWindow*p.TsESM + p.DecodeLatency + p.CorrectionSlots
}

// WindowLatencyWithFrame is the pipelined schedule of thesis Fig 3.3b:
// the window occupies only its ESM rounds; decoding of window w runs
// while window w+1 is already measuring, and corrections are classical
// bookkeeping. The decoder only has to finish before its result is
// needed — one full window later — so the schedule stalls only when
// decoding takes longer than a whole window.
func WindowLatencyWithFrame(p Params) int {
	esm := p.RoundsPerWindow * p.TsESM
	if p.DecodeLatency > esm {
		return p.DecodeLatency
	}
	return esm
}

// SavedSlots is the per-window schedule improvement from the frame.
func SavedSlots(p Params) int {
	return WindowLatencyWithoutFrame(p) - WindowLatencyWithFrame(p)
}

// DecoderDeadlineWithoutFrame is the decode latency budget that keeps
// the serial schedule from stalling at all: the decoder must finish
// before the corrections are due, i.e. immediately (any latency extends
// the window).
func DecoderDeadlineWithoutFrame(Params) int { return 0 }

// DecoderDeadlineWithFrame is the relaxed budget: a full window of ESM
// time (thesis §3.3: "the new schedule also loosens the timing
// constraint on the decoding process").
func DecoderDeadlineWithFrame(p Params) int {
	return p.RoundsPerWindow * p.TsESM
}

// Speedup is the throughput ratio of the two schedules (windows per unit
// time with frame / without frame).
func Speedup(p Params) float64 {
	return float64(WindowLatencyWithoutFrame(p)) / float64(WindowLatencyWithFrame(p))
}

// LogicalOpsPerKSlot returns how many windows (each permitting one
// logical operation, thesis Fig 2.6) fit into 1000 slots under each
// schedule.
func LogicalOpsPerKSlot(p Params) (without, with int) {
	return 1000 / WindowLatencyWithoutFrame(p), 1000 / WindowLatencyWithFrame(p)
}
