package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !approx(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if c := CV(xs); !approx(c, math.Sqrt(32.0/7)/5, 1e-12) {
		t.Errorf("CV = %v", c)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestRegIncBetaReference(t *testing.T) {
	// Reference values: I_x(a,b) with known closed forms.
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.25, 0.5, 0.75} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !approx(got, want, 1e-12) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Boundaries.
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := RegIncBeta(2.5, 4.5, 0.3) + RegIncBeta(4.5, 2.5, 0.7); !approx(got, 1, 1e-12) {
		t.Errorf("symmetry violated: %v", got)
	}
}

func TestTCDFReference(t *testing.T) {
	// df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/π.
	for _, tt := range []float64{-3, -1, 0, 0.5, 2} {
		want := 0.5 + math.Atan(tt)/math.Pi
		if got := TCDF(tt, 1); !approx(got, want, 1e-10) {
			t.Errorf("TCDF(%v,1) = %v, want %v", tt, got, want)
		}
	}
	// Large df approaches the normal distribution: TCDF(1.96, 1e6) ≈ 0.975.
	if got := TCDF(1.96, 1e6); !approx(got, 0.975, 1e-3) {
		t.Errorf("TCDF(1.96, 1e6) = %v", got)
	}
	// Known value: P(T ≤ 2.228) = 0.975 for df = 10.
	if got := TCDF(2.228, 10); !approx(got, 0.975, 5e-4) {
		t.Errorf("TCDF(2.228,10) = %v", got)
	}
}

func TestTTestIndependent(t *testing.T) {
	// Classic textbook example: clearly different means.
	a := []float64{30.02, 29.99, 30.11, 29.97, 30.01, 29.99}
	b := []float64{29.89, 29.93, 29.72, 29.98, 30.02, 29.98}
	res, err := TTestIndependent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.T, 1.959, 5e-3) {
		t.Errorf("t = %v, want ≈1.959", res.T)
	}
	if res.DF != 10 {
		t.Errorf("df = %v", res.DF)
	}
	if !approx(res.P, 0.0785, 2e-3) {
		t.Errorf("p = %v, want ≈0.078", res.P)
	}
	// Identical samples: p = 1.
	res, err = TTestIndependent([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || !approx(res.P, 1, 1e-9) {
		t.Errorf("identical samples: p = %v err=%v", res.P, err)
	}
	if _, err := TTestIndependent([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected ErrTooFewSamples")
	}
}

func TestTTestWelch(t *testing.T) {
	// Equal variances: Welch agrees with the pooled test closely.
	a := []float64{30.02, 29.99, 30.11, 29.97, 30.01, 29.99}
	b := []float64{29.89, 29.93, 29.72, 29.98, 30.02, 29.98}
	w, err := TTestWelch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := TTestIndependent(a, b)
	if !approx(w.T, p.T, 1e-9) {
		t.Errorf("equal-n Welch t %v vs pooled %v", w.T, p.T)
	}
	if w.DF >= p.DF+1e-9 || w.DF < 5 {
		t.Errorf("Welch df = %v (pooled %v)", w.DF, p.DF)
	}
	// Known reference: Welch on these samples gives df ≈ 7.03, p ≈ 0.091.
	if !approx(w.DF, 7.03, 0.05) {
		t.Errorf("Welch df = %v, want ≈7.03", w.DF)
	}
	if !approx(w.P, 0.0907, 3e-3) {
		t.Errorf("Welch p = %v, want ≈0.091", w.P)
	}
	// Degenerate inputs.
	if _, err := TTestWelch([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected ErrTooFewSamples")
	}
	res, err := TTestWelch([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil || res.P != 1 {
		t.Errorf("constant samples: p=%v err=%v", res.P, err)
	}
}

func TestTTestPaired(t *testing.T) {
	// Paired data with a constant shift of 1: t = inf-ish? No — zero
	// variance of differences gives p = 1 by our convention only when
	// the mean difference is also captured... use varying differences.
	a := []float64{5.1, 4.9, 6.0, 5.5, 5.2}
	b := []float64{4.8, 4.9, 5.5, 5.1, 5.0}
	res, err := TTestPaired(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 4 {
		t.Errorf("df = %v", res.DF)
	}
	if res.T <= 0 {
		t.Errorf("t = %v, want positive (a > b)", res.T)
	}
	if res.P <= 0 || res.P >= 1 {
		t.Errorf("p = %v out of range", res.P)
	}
	if _, err := TTestPaired([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	// Zero-difference pairs: no evidence, p = 1.
	res, err = TTestPaired([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil || res.P != 1 {
		t.Errorf("identical pairs: p = %v err=%v", res.P, err)
	}
}

// TestTTestNullDistribution: under the null hypothesis p-values should be
// roughly uniform — in particular, around 5% of tests land below 0.05
// and the mean p is near 0.5 (the thesis uses this to argue
// no-significance in Figs 5.21-5.24).
func TestTTestNullDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	below := 0
	sum := 0.0
	for i := 0; i < trials; i++ {
		a := make([]float64, 10)
		b := make([]float64, 10)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		res, err := TTestIndependent(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.P
		if res.P < 0.05 {
			below++
		}
	}
	frac := float64(below) / trials
	if frac > 0.10 {
		t.Errorf("false-positive rate %v too high", frac)
	}
	if mean := sum / trials; mean < 0.4 || mean > 0.6 {
		t.Errorf("mean p under null = %v, want ≈0.5", mean)
	}
}

func TestTTestDetectsRealDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for j := range a {
		a[j] = rng.NormFloat64()
		b[j] = rng.NormFloat64() + 2
	}
	res, _ := TTestIndependent(a, b)
	if res.P > 1e-6 {
		t.Errorf("2-sigma shift not detected: p = %v", res.P)
	}
	pres, _ := TTestPaired(a, b)
	if pres.P > 1e-6 {
		t.Errorf("paired test missed shift: p = %v", pres.P)
	}
}

func TestPseudoThreshold(t *testing.T) {
	// y = 2x² crosses y = x at x = 0.5.
	xs := []float64{0.1, 0.3, 0.4, 0.6, 0.8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * x * x
	}
	got := PseudoThreshold(xs, ys)
	if !approx(got, 0.5, 0.05) {
		t.Errorf("crossing = %v, want ≈0.5", got)
	}
	// No crossing.
	if !math.IsNaN(PseudoThreshold([]float64{1, 2}, []float64{10, 20})) {
		t.Error("expected NaN when no crossing")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{1, 1, 2, 3, 3, 3})
	if h[1] != 2 || h[2] != 1 || h[3] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0.5); !approx(q, 3, 1e-12) {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("max = %v", q)
	}
	if q := Quantile(xs, 0.25); !approx(q, 2, 1e-12) {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

// Property: TCDF is monotone in t and maps into [0,1].
func TestTCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		t1 := math.Mod(math.Abs(a), 10)
		t2 := t1 + math.Mod(math.Abs(b), 5) + 1e-6
		df := 7.0
		c1, c2 := TCDF(t1, df), TCDF(t2, df)
		return c1 <= c2 && c1 >= 0 && c2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
