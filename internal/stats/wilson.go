package stats

import "math"

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: `successes` hits out of `trials` Bernoulli trials
// at normal quantile z (z = 1.96 for 95%). Unlike the Wald
// (normal-approximation) interval it never collapses to zero width at
// p̂ ∈ {0, 1} and keeps honest coverage in the rare-event regime the
// low-PER sweeps live in, which is what makes it usable as an early-stop
// criterion: the interval is well-defined from the very first batch.
//
// The endpoints are clamped to [0, 1]; with 0 successes lo is exactly 0
// and with successes == trials hi is exactly 1. Degenerate inputs
// (trials <= 0, successes outside [0, trials], z <= 0 or non-finite)
// return (NaN, NaN).
func WilsonInterval(successes, trials int64, z float64) (lo, hi float64) {
	if trials <= 0 || successes < 0 || successes > trials ||
		z <= 0 || math.IsInf(z, 0) || math.IsNaN(z) {
		return math.NaN(), math.NaN()
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	hw := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-hw, center+hw
	if successes == 0 || lo < 0 {
		lo = 0
	}
	if successes == trials || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth returns half the width of the Wilson interval — the
// "± error bar" analogue used by the sweep tables and the adaptive
// stopping rule. NaN for degenerate inputs.
func WilsonHalfWidth(successes, trials int64, z float64) float64 {
	lo, hi := WilsonInterval(successes, trials, z)
	return (hi - lo) / 2
}
