// Package stats implements the statistical toolkit used by the thesis
// evaluation (§5.3.2): descriptive statistics (mean, standard deviation,
// coefficient of variation), Student's t-tests in both the independent
// (pooled two-sample) and paired forms with two-sided p-values, and the
// pseudo-threshold crossing estimate. The t-distribution CDF is computed
// through the regularized incomplete beta function.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation σ/μ (thesis Eq. 5.4).
func CV(xs []float64) float64 { return StdDev(xs) / Mean(xs) }

// lgamma drops the sign returned by math.Lgamma.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// by the continued-fraction expansion (Numerical Recipes 6.4).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T ≤ t) for Student's t-distribution with df degrees of
// freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TwoSidedP converts a t statistic into a two-sided p-value.
func TwoSidedP(t, df float64) float64 {
	p := 2 * TCDF(-math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return p
}

// TTestResult carries a test statistic and its p-value.
type TTestResult struct {
	T  float64
	DF float64
	P  float64
}

// ErrTooFewSamples is returned when a test needs more data.
var ErrTooFewSamples = errors.New("stats: too few samples")

// TTestIndependent performs the pooled-variance two-sample t-test (the
// thesis' "independent t-test").
func TTestIndependent(a, b []float64) (TTestResult, error) {
	n1, n2 := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	v1, v2 := Variance(a), Variance(b)
	df := n1 + n2 - 2
	sp := math.Sqrt(((n1-1)*v1 + (n2-1)*v2) / df)
	denom := sp * math.Sqrt(1/n1+1/n2)
	// Deliberate exact compare: guarding division by an exactly-zero
	// pooled error (identical constant samples), not a tolerance test.
	//qa:allow float-eq
	if denom == 0 {
		// Identical constant samples: no evidence of difference.
		return TTestResult{T: 0, DF: df, P: 1}, nil
	}
	t := (Mean(a) - Mean(b)) / denom
	return TTestResult{T: t, DF: df, P: TwoSidedP(t, df)}, nil
}

// TTestWelch performs Welch's unequal-variance two-sample t-test with
// the Welch–Satterthwaite degrees of freedom; preferable to the pooled
// test when the two configurations have different run-length variances.
func TTestWelch(a, b []float64) (TTestResult, error) {
	n1, n2 := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	v1, v2 := Variance(a), Variance(b)
	se2 := v1/n1 + v2/n2
	// Deliberate exact compare: division-by-zero guard, as in TTest.
	//qa:allow float-eq
	if se2 == 0 {
		return TTestResult{T: 0, DF: n1 + n2 - 2, P: 1}, nil
	}
	t := (Mean(a) - Mean(b)) / math.Sqrt(se2)
	df := se2 * se2 / ((v1*v1)/(n1*n1*(n1-1)) + (v2*v2)/(n2*n2*(n2-1)))
	return TTestResult{T: t, DF: df, P: TwoSidedP(t, df)}, nil
}

// TTestPaired performs the paired t-test on matched samples.
func TTestPaired(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: paired samples must have equal length")
	}
	if len(a) < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	sd := StdDev(d)
	df := float64(len(a) - 1)
	// Deliberate exact compare: division-by-zero guard, as in TTest.
	//qa:allow float-eq
	if sd == 0 {
		return TTestResult{T: 0, DF: df, P: 1}, nil
	}
	t := Mean(d) / (sd / math.Sqrt(float64(len(a))))
	return TTestResult{T: t, DF: df, P: TwoSidedP(t, df)}, nil
}

// PseudoThreshold estimates the x where the piecewise-linear
// interpolation of (x, y) crosses the line y = x (thesis §2.5.1). The xs
// must be ascending. Returns NaN when no crossing exists.
func PseudoThreshold(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	for i := 1; i < len(xs); i++ {
		d0 := ys[i-1] - xs[i-1]
		d1 := ys[i] - xs[i]
		// Deliberate exact compare: an exact touch of y = x is the
		// crossing itself; near-misses interpolate below.
		//qa:allow float-eq
		if d0 == 0 {
			return xs[i-1]
		}
		if d0*d1 < 0 {
			// Linear interpolation of the difference to zero.
			t := d0 / (d0 - d1)
			return xs[i-1] + t*(xs[i]-xs[i-1])
		}
	}
	// Deliberate exact compare: endpoint touch of y = x, as above.
	//qa:allow float-eq
	if ys[len(ys)-1] == xs[len(xs)-1] {
		return xs[len(xs)-1]
	}
	return math.NaN()
}

// Histogram counts occurrences of each value.
func Histogram(values []int) map[int]int {
	h := map[int]int{}
	for _, v := range values {
		h[v]++
	}
	return h
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation of
// the sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
