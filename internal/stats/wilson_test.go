package stats

import (
	"math"
	"testing"
)

func TestWilsonInterval(t *testing.T) {
	const z95 = 1.959963984540054
	for _, tc := range []struct {
		name      string
		successes int64
		trials    int64
		z         float64
		lo, hi    float64
		tol       float64
	}{
		// Reference value: 5/10 at 95% → [0.2366, 0.7634]
		// (standard worked example for the Wilson score interval).
		{"half", 5, 10, z95, 0.236592, 0.763408, 1e-5},
		// 0 hits: lo must be exactly 0, hi = z²/(n+z²).
		{"zero-hits", 0, 20, z95, 0, z95 * z95 / (20 + z95*z95), 1e-12},
		// All hits: mirror image of zero-hits.
		{"all-hits", 20, 20, z95, 20 / (20 + z95*z95), 1, 1e-12},
		// n=1 single failure: interval still spans most of [0,1].
		{"n1-miss", 0, 1, z95, 0, z95 * z95 / (1 + z95*z95), 1e-12},
		{"n1-hit", 1, 1, z95, 1 / (1 + z95*z95), 1, 1e-12},
		// Rare event at scale: 3/100000 stays near p̂ and strictly > 0.
		{"rare", 3, 100000, z95, 1.020276e-5, 8.820805e-5, 5e-11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := WilsonInterval(tc.successes, tc.trials, tc.z)
			if !approx(lo, tc.lo, tc.tol) || !approx(hi, tc.hi, tc.tol) {
				t.Errorf("WilsonInterval(%d, %d, %v) = [%.6g, %.6g], want [%.6g, %.6g]",
					tc.successes, tc.trials, tc.z, lo, hi, tc.lo, tc.hi)
			}
			if lo < 0 || hi > 1 || lo > hi {
				t.Errorf("interval [%v, %v] not a valid sub-interval of [0,1]", lo, hi)
			}
			p := float64(tc.successes) / float64(tc.trials)
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Errorf("point estimate %v outside interval [%v, %v]", p, lo, hi)
			}
			if hw := WilsonHalfWidth(tc.successes, tc.trials, tc.z); !approx(hw, (hi-lo)/2, 1e-15) {
				t.Errorf("WilsonHalfWidth = %v, want %v", hw, (hi-lo)/2)
			}
		})
	}
}

func TestWilsonIntervalDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name      string
		successes int64
		trials    int64
		z         float64
	}{
		{"zero-trials", 0, 0, 1.96},
		{"negative-trials", 1, -5, 1.96},
		{"negative-successes", -1, 10, 1.96},
		{"overflow-successes", 11, 10, 1.96},
		{"zero-z", 5, 10, 0},
		{"negative-z", 5, 10, -1},
		{"nan-z", 5, 10, math.NaN()},
		{"inf-z", 5, 10, math.Inf(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := WilsonInterval(tc.successes, tc.trials, tc.z)
			if !math.IsNaN(lo) || !math.IsNaN(hi) {
				t.Errorf("WilsonInterval(%d, %d, %v) = [%v, %v], want NaN pair",
					tc.successes, tc.trials, tc.z, lo, hi)
			}
		})
	}
}

// TestWilsonShrinks checks monotone narrowing: multiplying both counts by
// k > 1 must strictly shrink the interval.
func TestWilsonShrinks(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int64{10, 100, 1000, 10000} {
		hw := WilsonHalfWidth(n/10, n, 1.96)
		if hw >= prev {
			t.Errorf("half-width did not shrink at n=%d: %v >= %v", n, hw, prev)
		}
		prev = hw
	}
}
