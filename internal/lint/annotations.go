package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //qa: annotation grammar. Annotations are directive comments (no
// space between // and qa:) with two forms:
//
//	//qa:hotpath
//	    In the doc comment of a function: the function is a hot kernel;
//	    the hotpath check forbids allocation sources inside it.
//
//	//qa:allow <check> [rationale …]
//	    On a line of its own or trailing a statement: suppress <check>
//	    findings on that line and the line directly below (so the
//	    annotation can sit above the flagged statement). Everything
//	    after the check name is free-text rationale — why the drop or
//	    exception is deliberate; write one for every errcheck and
//	    concurrency allow.
//
// Anything else after //qa: is a parse error, reported as a finding of
// the "qa" pseudo-check so a typo cannot silently disable enforcement.

// AnnotationPrefix introduces a qalint directive comment.
const AnnotationPrefix = "//qa:"

// hotpathDirective marks a function as an allocation-free hot kernel.
const hotpathDirective = "hotpath"

// allowDirective suppresses one check on the annotated line.
const allowDirective = "allow"

// Notes holds the parsed //qa: annotations of one package.
type Notes struct {
	// allow maps filename → line → set of check names allowed there.
	allow map[string]map[int]map[string]bool
	// hotpath records the positions of //qa:hotpath directives by file
	// and line; a function owns the directive when it appears in its doc
	// comment group.
	hotpath map[string]map[int]bool
	// Errs are annotation parse errors, reported by Run as findings.
	Errs []Diagnostic
}

// ParseNotes extracts the //qa: annotations from the files of a package.
// knownChecks validates the argument of allow directives.
func ParseNotes(fset *token.FileSet, files []*ast.File, knownChecks []string) *Notes {
	n := &Notes{
		allow:   map[string]map[int]map[string]bool{},
		hotpath: map[string]map[int]bool{},
	}
	known := map[string]bool{}
	for _, c := range knownChecks {
		known[c] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AnnotationPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, AnnotationPrefix)
				fields := strings.Fields(body)
				switch {
				case len(fields) == 1 && fields[0] == hotpathDirective:
					file := n.hotpath[pos.Filename]
					if file == nil {
						file = map[int]bool{}
						n.hotpath[pos.Filename] = file
					}
					file[pos.Line] = true
				case len(fields) >= 2 && fields[0] == allowDirective:
					if !known[fields[1]] {
						n.errorf(pos, "unknown check %q in %s directive", fields[1], AnnotationPrefix+allowDirective)
						continue
					}
					file := n.allow[pos.Filename]
					if file == nil {
						file = map[int]map[string]bool{}
						n.allow[pos.Filename] = file
					}
					line := file[pos.Line]
					if line == nil {
						line = map[string]bool{}
						file[pos.Line] = line
					}
					line[fields[1]] = true
				default:
					n.errorf(pos, "malformed annotation %q: want %shotpath or %sallow <check> [rationale]",
						c.Text, AnnotationPrefix, AnnotationPrefix)
				}
			}
		}
	}
	return n
}

func (n *Notes) errorf(pos token.Position, format string, args ...interface{}) {
	n.Errs = append(n.Errs, Diagnostic{
		Pos:     pos,
		Check:   "qa",
		Message: fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //qa:allow annotation for check covers the
// position: the annotation's own line (trailing comment) or the line
// above the finding.
func (n *Notes) Allowed(check string, pos token.Position) bool {
	file := n.allow[pos.Filename]
	if file == nil {
		return false
	}
	return file[pos.Line][check] || file[pos.Line-1][check]
}

// Hotpath reports whether the function declaration carries a
// //qa:hotpath directive in its doc comment group.
func (n *Notes) Hotpath(fset *token.FileSet, fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		pos := fset.Position(c.Pos())
		if n.hotpath[pos.Filename][pos.Line] && strings.HasPrefix(c.Text, AnnotationPrefix+hotpathDirective) {
			return true
		}
	}
	return false
}
