package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// The call-graph layer makes the analyzer interprocedural: it indexes
// every function declaration of the loaded module by its *types.Func
// object, resolves static call edges (package-level functions and
// methods on concrete receiver types) via go/types, and computes a
// bottom-up "may-allocate" lattice over that graph. Dynamic edges —
// calls through func values or interface methods — cannot be resolved
// statically and are treated conservatively as may-allocate; the one
// exemption is a local variable bound exactly once to a func literal in
// the same function, whose body is visible and analyzed in place.
//
// The interprocedural hotpath check (hotpath.go) queries the lattice at
// every call site inside a //qa:hotpath function: a callee that is not
// provably allocation-free is a finding, with the reason chain ("calls
// f: calls g: make allocates at …") attached so a three-deep allocation
// is diagnosable from the kernel's call site.

// Program is the module-wide view built by Run before the per-package
// checks execute: every loaded package plus the cross-package function
// index and the memoized may-allocate results.
type Program struct {
	Pkgs []*Package

	// decls maps a function object to its declaration site.
	decls map[*types.Func]*declSite

	// alloc memoizes the lattice: the reason the function may allocate,
	// or the empty string when it is provably allocation-free.
	alloc map[*types.Func]*allocResult

	// cfg supplies the external allocation-free allowlist.
	cfg *Config
}

type declSite struct {
	pkg *Package
	fn  *ast.FuncDecl
}

type allocResult struct {
	mayAlloc bool
	reason   string
	// visiting marks an in-progress computation; cycles resolve
	// optimistically (a recursive function is judged by its own body and
	// its non-cyclic callees, which is a sound fixpoint for this
	// monotone property: re-running the scan with the final values could
	// only re-derive them).
	visiting bool
}

// NewProgram indexes the packages' function declarations.
func NewProgram(cfg *Config, pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		decls: map[*types.Func]*declSite{},
		alloc: map[*types.Func]*allocResult{},
		cfg:   cfg,
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.decls[obj] = &declSite{pkg: pkg, fn: fn}
			}
		}
	}
	return prog
}

// StaticCallee resolves the target of a call expression to a function
// object when the edge is static: a package-level function, a method
// called on a concrete (non-interface) receiver, or a qualified
// stdlib/module identifier. Dynamic targets — func values, interface
// methods — return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations appear as index expressions: f[T](…).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method (or method-value call): static only through a
			// concrete receiver; an interface receiver dispatches
			// dynamically.
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(recvType(fn)) {
				return nil
			}
			return origin(fn)
		}
		// Qualified identifier pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// origin maps an instantiated generic function back to its declaration
// object, where the body lives.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// Decl returns the module-internal declaration of fn, or nil for
// external (stdlib) functions.
func (prog *Program) Decl(fn *types.Func) (*Package, *ast.FuncDecl) {
	if site, ok := prog.decls[fn]; ok {
		return site.pkg, site.fn
	}
	return nil, nil
}

// allocFreeExternal reports whether an external (no source in the
// module) function is on the known-allocation-free allowlist. The
// default list is deliberately tiny: math and math/bits are pure
// word-arithmetic packages with no allocating API.
func (prog *Program) allocFreeExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false // error.Error and other universe methods: dynamic anyway
	}
	allow := prog.cfg.HotAllowPackages
	if allow == nil {
		allow = defaultHotAllowPackages
	}
	for _, p := range allow {
		if pkg.Path() == p {
			return true
		}
	}
	allowFuncs := prog.cfg.HotAllowFuncs
	if allowFuncs == nil {
		allowFuncs = defaultHotAllowFuncs
	}
	name := fnName(fn)
	for _, f := range allowFuncs {
		if name == f {
			return true
		}
	}
	return false
}

// defaultHotAllowPackages is the stdlib allowlist for the
// interprocedural hotpath lattice.
var defaultHotAllowPackages = []string{"math", "math/bits"}

// defaultHotAllowFuncs lists individual external functions trusted as
// allocation-free. math/rand cannot be allowlisted wholesale —
// rand.New and rand.NewSource allocate — but the draw methods on an
// existing *rand.Rand are pure arithmetic over the source state
// (Uint64/Int63 read the generator, Intn/Int63n reduce a draw,
// ExpFloat64/NormFloat64 walk constant ziggurat tables).
var defaultHotAllowFuncs = []string{
	"(*math/rand.Rand).Uint64",
	"(*math/rand.Rand).Int63",
	"(*math/rand.Rand).Int63n",
	"(*math/rand.Rand).Intn",
	"(*math/rand.Rand).Int31n",
	"(*math/rand.Rand).Float64",
	"(*math/rand.Rand).ExpFloat64",
	"(*math/rand.Rand).NormFloat64",
}

// MayAllocate reports whether fn can allocate on some path, with a
// human-readable reason chain for the first allocation site found.
// Allocation-free means: the body contains none of the constructs the
// hotpath check forbids (append/make/new, composite literals, string
// concatenation and string<->[]byte conversions, non-constant interface
// conversions, capturing closures, go/defer), every static callee is
// itself allocation-free, and no unresolvable dynamic call remains.
// Lines annotated //qa:allow hotpath inside the body are trusted
// (deliberate cold paths) and skipped.
func (prog *Program) MayAllocate(fn *types.Func) (bool, string) {
	if res, ok := prog.alloc[fn]; ok {
		if res.visiting {
			return false, "" // optimistic on cycles; see allocResult
		}
		return res.mayAlloc, res.reason
	}
	site, ok := prog.decls[fn]
	if !ok {
		if prog.allocFreeExternal(fn) {
			prog.alloc[fn] = &allocResult{}
			return false, ""
		}
		reason := fmt.Sprintf("external function %s is not on the allocation-free allowlist", fnName(fn))
		prog.alloc[fn] = &allocResult{mayAlloc: true, reason: reason}
		return true, reason
	}
	if site.fn.Body == nil {
		reason := fmt.Sprintf("%s has no Go body (assembly or linkname)", fnName(fn))
		prog.alloc[fn] = &allocResult{mayAlloc: true, reason: reason}
		return true, reason
	}
	res := &allocResult{visiting: true}
	prog.alloc[fn] = res
	res.mayAlloc, res.reason = prog.scanBody(site)
	res.visiting = false
	return res.mayAlloc, res.reason
}

// scanBody looks for the first allocation site in one function body,
// recursing into static callees through the memoized lattice.
func (prog *Program) scanBody(site *declSite) (bool, string) {
	pkg := site.pkg
	pos := func(n ast.Node) string {
		p := pkg.Fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	allowed := func(n ast.Node) bool {
		return pkg.Notes.Allowed(CheckHotpath, pkg.Fset.Position(n.Pos()))
	}
	var reason string
	ast.Inspect(site.fn.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if allowed(n) {
				return true
			}
			reason = prog.scanCall(pkg, site.fn, n, pos)
		case *ast.CompositeLit:
			if !allowed(n) {
				reason = fmt.Sprintf("composite literal at %s", pos(n))
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringType(pkg.Info.TypeOf(n.X)) && !isConstInfo(pkg.Info, n) && !allowed(n) {
				reason = fmt.Sprintf("string concatenation at %s", pos(n))
			}
		case *ast.AssignStmt:
			reason = scanAssignAlloc(pkg, n, pos, allowed)
		case *ast.FuncLit:
			if capturesVariables(pkg.Info, site.fn, n) && !allowed(n) {
				reason = fmt.Sprintf("capturing closure at %s", pos(n))
			}
		case *ast.GoStmt:
			if !allowed(n) {
				reason = fmt.Sprintf("go statement at %s", pos(n))
			}
		case *ast.DeferStmt:
			if !allowed(n) {
				reason = fmt.Sprintf("defer statement at %s", pos(n))
			}
		}
		return reason == ""
	})
	if reason != "" {
		return true, fmt.Sprintf("%s: %s", fnName(pkg.Info.Defs[site.fn.Name].(*types.Func)), reason)
	}
	return false, ""
}

// scanCall classifies one call inside a scanned body: allocating
// builtins, allocating conversions, static callees through the lattice,
// and conservative dynamic calls. Empty string means provably fine.
func (prog *Program) scanCall(pkg *Package, enclosing *ast.FuncDecl, call *ast.CallExpr, pos func(ast.Node) string) string {
	info := pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				return fmt.Sprintf("%s at %s", b.Name(), pos(call))
			}
			return "" // len, cap, panic(const), copy, …
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return convAllocReason(info, tv.Type, call, pos)
	}
	if callee := StaticCallee(info, call); callee != nil {
		if may, why := prog.MayAllocate(callee); may {
			return fmt.Sprintf("calls %s (%s)", fnName(callee), why)
		}
		return ""
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return "" // directly-invoked literal: its body is scanned in place
	}
	if localFuncLitBinding(info, enclosing, call.Fun) != nil {
		return "" // f := func(){…}; f() — the literal's body is scanned in place
	}
	return fmt.Sprintf("dynamic call (func value or interface method) at %s", pos(call))
}

// convAllocReason reports conversions that allocate: to an interface
// from a non-constant concrete value, and between string and byte/rune
// slices.
func convAllocReason(info *types.Info, target types.Type, call *ast.CallExpr, pos func(ast.Node) string) string {
	if len(call.Args) != 1 {
		return ""
	}
	arg := call.Args[0]
	if isConstInfo(info, arg) {
		return ""
	}
	if types.IsInterface(target) {
		return fmt.Sprintf("conversion to interface %s at %s", target.String(), pos(call))
	}
	src := info.TypeOf(arg)
	if stringBytesConversion(target, src) {
		return fmt.Sprintf("conversion between string and byte/rune slice at %s", pos(call))
	}
	return ""
}

// stringBytesConversion reports string <-> []byte/[]rune pairs, which
// copy their operand into a fresh allocation.
func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStringType(src))
}

func isByteRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// scanAssignAlloc mirrors checkHotAssign for the lattice scanner:
// string += and interface-boxing assignments.
func scanAssignAlloc(pkg *Package, s *ast.AssignStmt, pos func(ast.Node) string, allowed func(ast.Node) bool) string {
	info := pkg.Info
	if s.Tok.String() == "+=" && len(s.Lhs) == 1 && isStringType(info.TypeOf(s.Lhs[0])) && !allowed(s) {
		return fmt.Sprintf("string concatenation at %s", pos(s))
	}
	if s.Tok.String() != "=" {
		return ""
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		lt, rt := info.TypeOf(lhs), info.TypeOf(s.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isConstInfo(info, s.Rhs[i]) && !allowed(s.Rhs[i]) {
			return fmt.Sprintf("interface-boxing assignment at %s", pos(s.Rhs[i]))
		}
	}
	return ""
}

// capturesVariables reports whether a func literal captures any
// variable of its enclosing function (a capturing literal allocates its
// environment; capture-free literals are static code).
func capturesVariables(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() > enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captures = true
		}
		return !captures
	})
	return captures
}

// localFuncLitBinding resolves fun to the single func literal bound to
// a local variable of the enclosing function, or nil. A variable
// assigned exactly once, from a literal, is a static indirection: the
// call target is visible in place. Any reassignment or non-literal
// source makes the target dynamic.
func localFuncLitBinding(info *types.Info, enclosing *ast.FuncDecl, fun ast.Expr) *ast.FuncLit {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || enclosing == nil || enclosing.Body == nil {
		return nil
	}
	if v.Pos() < enclosing.Pos() || v.Pos() > enclosing.End() {
		return nil // not a local of this function
	}
	var lit *ast.FuncLit
	bindings := 0
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[lid]
			if obj == nil {
				obj = info.Uses[lid]
			}
			if obj != v {
				continue
			}
			bindings++
			if i < len(as.Rhs) {
				if l, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok && bindings == 1 {
					lit = l
				}
			}
		}
		return true
	})
	if bindings == 1 {
		return lit
	}
	return nil
}

// fnName renders a function object as pkgpath.Name or (recv).Name.
func fnName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", sig.Recv().Type().String(), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// isConstInfo is isConstExpr without a Pass (for use from the
// program-wide scanner).
func isConstInfo(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
