package lint

import (
	"go/ast"
	"go/types"
)

// The errcheck check forbids silently discarded error returns in
// non-test code. The sweep service made errors load-bearing: a dropped
// write error in sweepstore corrupts the content-addressed cache, a
// dropped encode error in sweepserve truncates a result a client will
// trust, and a dropped close error in a CLI loses the very data the
// run computed. Three discard shapes are flagged:
//
//   - a call used as a statement (also under go/defer) whose results
//     include an error;
//   - an error result assigned to the blank identifier (_ = f(),
//     v, _ := f());
//
// A small allowlist covers APIs where dropping is the documented
// convention: fmt printing to stdout (Print/Printf/Println), fmt.Fprint*
// to os.Stdout/os.Stderr/io.Discard or to the never-failing in-memory
// writers (*bytes.Buffer, *strings.Builder), methods on those writers,
// and hash.Hash writers — h.Write and fmt.Fprint* to a hash.Hash are
// defined to never return an error.
//
// A deliberate drop is annotated //qa:allow errcheck <rationale> on the
// line — best-effort cleanup paths, io to an already-doomed connection.
const CheckErrcheck = "errcheck"

var _ = register(&Check{
	Name: CheckErrcheck,
	Doc:  "discarded error returns in non-test code; annotate deliberate drops with //qa:allow errcheck <why>",
	Run:  runErrcheck,
})

func runErrcheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(p, call, "")
				}
			case *ast.GoStmt:
				checkDroppedCall(p, n.Call, "go ")
			case *ast.DeferStmt:
				checkDroppedCall(p, n.Call, "defer ")
			case *ast.AssignStmt:
				checkBlankError(p, n)
			}
			return true
		})
	}
}

// checkDroppedCall flags a call statement whose result tuple contains
// an error that nobody can ever observe.
func checkDroppedCall(p *Pass, call *ast.CallExpr, prefix string) {
	if !returnsError(p, call) || errcheckAllowlisted(p, call) {
		return
	}
	p.Reportf(CheckErrcheck, call.Pos(),
		"%s%s discards its error result: handle it or annotate a deliberate drop with %sallow errcheck <why>",
		prefix, calleeDesc(p, call), AnnotationPrefix)
}

// checkBlankError flags error results assigned to the blank identifier.
func checkBlankError(p *Pass, as *ast.AssignStmt) {
	// Single call on the RHS: a, _ := f() — match blanks against the
	// call's result tuple positions.
	if len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || errcheckAllowlisted(p, call) {
			return
		}
		res := callResults(p, call)
		if res == nil {
			return
		}
		for i, lhs := range as.Lhs {
			if i >= res.Len() {
				break
			}
			if isBlankIdent(lhs) && isErrorType(res.At(i).Type()) {
				p.Reportf(CheckErrcheck, lhs.Pos(),
					"error result of %s assigned to _: handle it or annotate a deliberate drop with %sallow errcheck <why>",
					calleeDesc(p, call), AnnotationPrefix)
			}
		}
		return
	}
	// Parallel assignment: _ = f() among others.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlankIdent(lhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || !returnsError(p, call) || errcheckAllowlisted(p, call) {
			continue
		}
		p.Reportf(CheckErrcheck, lhs.Pos(),
			"error result of %s assigned to _: handle it or annotate a deliberate drop with %sallow errcheck <why>",
			calleeDesc(p, call), AnnotationPrefix)
	}
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callResults returns the result tuple of a call, nil for conversions
// and builtins.
func callResults(p *Pass, call *ast.CallExpr) *types.Tuple {
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	sigT := p.TypeOf(call.Fun)
	if sigT == nil {
		return nil
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

func returnsError(p *Pass, call *ast.CallExpr) bool {
	res := callResults(p, call)
	if res == nil {
		return false
	}
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// errcheckAllowlisted reports callees where dropping the error is the
// documented convention.
func errcheckAllowlisted(p *Pass, call *ast.CallExpr) bool {
	info := p.Pkg.Info
	// Package-level fmt printers.
	if callee := StaticCallee(info, call); callee != nil && callee.Pkg() != nil {
		pkg, name := callee.Pkg().Path(), callee.Name()
		if pkg == "fmt" {
			switch name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && neverFailingWriter(p, call.Args[0])
			}
		}
	}
	// Methods on never-failing in-memory writers, and hash.Hash.Write.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			recv := s.Recv()
			if isNeverFailingWriterType(recv) {
				return true
			}
			if sel.Sel.Name == "Write" && isNamedType(recv, "hash", "Hash") {
				return true
			}
		}
	}
	return false
}

// neverFailingWriter recognizes os.Stdout/os.Stderr/io.Discard and
// expressions whose static type is a never-failing in-memory writer.
func neverFailingWriter(p *Pass, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if pkgName, name := selectorPackage(p, sel); pkgName != nil {
			switch pkgName.Imported().Path() {
			case "os":
				if name == "Stdout" || name == "Stderr" {
					return true
				}
			case "io":
				if name == "Discard" {
					return true
				}
			}
		}
	}
	t := p.TypeOf(w)
	return isNeverFailingWriterType(t) || isNamedType(t, "hash", "Hash")
}

// isNeverFailingWriterType matches *bytes.Buffer and *strings.Builder
// (their Write methods are documented to always return a nil error).
func isNeverFailingWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedType(t, "bytes", "Buffer") || isNamedType(t, "strings", "Builder")
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeDesc renders the called function for the diagnostic message.
func calleeDesc(p *Pass, call *ast.CallExpr) string {
	if callee := StaticCallee(p.Pkg.Info, call); callee != nil {
		return fnName(callee)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
