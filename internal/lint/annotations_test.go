package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const annotSrc = `package a

//qa:hotpath
func Hot() {}

// Cold has prose but no directive.
func Cold() {}

func Body() {
	x := 1
	//qa:allow determinism
	_ = x
	_ = x //qa:allow float-eq
	_ = x
}

//qa:frobnicate
//qa:allow nosuchcheck
//qa:allow
var V int
`

// srcLine returns the 1-based line of the first occurrence of needle;
// an exact needle (no substring match) when whole is set.
func srcLine(t *testing.T, needle string, whole bool) int {
	t.Helper()
	for i, l := range strings.Split(annotSrc, "\n") {
		if whole && strings.TrimSpace(l) == needle || !whole && strings.Contains(l, needle) {
			return i + 1
		}
	}
	t.Fatalf("needle %q not in annotSrc", needle)
	return 0
}

func parseAnnotSrc(t *testing.T) (*token.FileSet, *ast.File, *Notes) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", annotSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f, ParseNotes(fset, []*ast.File{f}, []string{CheckDeterminism, CheckFloatEq})
}

func TestParseNotesHotpath(t *testing.T) {
	fset, f, notes := parseAnnotSrc(t)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		got := notes.Hotpath(fset, fn)
		want := fn.Name.Name == "Hot"
		if got != want {
			t.Errorf("Hotpath(%s) = %v, want %v", fn.Name.Name, got, want)
		}
	}
}

func TestParseNotesAllow(t *testing.T) {
	_, _, notes := parseAnnotSrc(t)
	own := srcLine(t, "//qa:allow determinism", false)
	at := func(line int) token.Position { return token.Position{Filename: "a.go", Line: line} }

	if !notes.Allowed(CheckDeterminism, at(own)) {
		t.Error("annotation does not cover its own line")
	}
	if !notes.Allowed(CheckDeterminism, at(own+1)) {
		t.Error("annotation does not cover the line below")
	}
	if notes.Allowed(CheckDeterminism, at(own+2)) {
		t.Error("annotation leaks two lines below")
	}
	if notes.Allowed(CheckFloatEq, at(own)) {
		t.Error("annotation suppresses a different check")
	}

	trailing := srcLine(t, "//qa:allow float-eq", false)
	if !notes.Allowed(CheckFloatEq, at(trailing)) {
		t.Error("trailing annotation does not cover its statement")
	}
}

// FuzzParseAnnotations feeds arbitrary directive bodies through the
// //qa: grammar: the parser must never panic, and every comment that
// starts with the prefix must either land in a directive table or be
// reported as a malformed-annotation finding — a typo can never
// silently disable enforcement.
func FuzzParseAnnotations(f *testing.F) {
	for _, seed := range []string{
		"hotpath",
		"hotpath trailing prose",
		"allow",
		"allow determinism",
		"allow determinism documented rationale here",
		"allow nosuchcheck",
		"allow float-eq \t mixed\twhitespace",
		"frobnicate",
		"",
		" ",
		"allow determinism nbsp",
		"ALLOW determinism",
		"allow determinism; drop table",
	} {
		f.Add(seed)
	}
	known := []string{CheckDeterminism, CheckFloatEq}
	isKnown := map[string]bool{CheckDeterminism: true, CheckFloatEq: true}
	f.Fuzz(func(t *testing.T, body string) {
		if strings.ContainsAny(body, "\n\r") {
			t.Skip("newlines end a line comment before the parser sees the rest")
		}
		src := "package a\n\n" + AnnotationPrefix + body + "\nvar V int\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip("body breaks the surrounding file, not the grammar")
		}
		notes := ParseNotes(fset, []*ast.File{file}, known)

		// Recover what the parser actually saw: comment mangling (e.g. a
		// \x00 truncating the text) means the directive may differ from
		// the input body.
		var comment string
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, AnnotationPrefix) {
					comment = strings.TrimPrefix(c.Text, AnnotationPrefix)
				}
			}
		}
		if comment == "" && len(file.Comments) == 0 {
			t.Skip("comment did not survive parsing")
		}
		fields := strings.Fields(comment)
		wellFormed := (len(fields) == 1 && fields[0] == hotpathDirective) ||
			(len(fields) >= 2 && fields[0] == allowDirective && isKnown[fields[1]])
		if wellFormed && len(notes.Errs) != 0 {
			t.Errorf("well-formed directive %q reported errors: %v", comment, notes.Errs)
		}
		if !wellFormed && len(notes.Errs) == 0 {
			t.Errorf("malformed directive %q produced no finding", comment)
		}
		for _, e := range notes.Errs {
			if e.Check != "qa" || e.Message == "" {
				t.Errorf("parse error must carry the qa pseudo-check and a message, got %+v", e)
			}
		}
	})
}

func TestParseNotesMalformed(t *testing.T) {
	_, _, notes := parseAnnotSrc(t)
	if len(notes.Errs) != 3 {
		t.Fatalf("got %d annotation errors, want 3: %v", len(notes.Errs), notes.Errs)
	}
	wantLines := []int{
		srcLine(t, "//qa:frobnicate", false),
		srcLine(t, "//qa:allow nosuchcheck", false),
		srcLine(t, "//qa:allow", true),
	}
	for i, e := range notes.Errs {
		if e.Check != "qa" {
			t.Errorf("Errs[%d].Check = %q, want qa", i, e.Check)
		}
		if e.Pos.Line != wantLines[i] {
			t.Errorf("Errs[%d] at line %d, want %d", i, e.Pos.Line, wantLines[i])
		}
	}
}
