package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Machine-readable output and the baseline mechanism. cmd/qalint -json
// renders one JSONDiagnostic per line (JSON Lines, trivially consumed
// by jq or a CI annotator), and -baseline <file> replays a previous
// -json capture as a suppression list so a new check can land strictly
// on a codebase with known findings: baselined findings are filtered,
// anything new still fails the build.
//
// Baseline matching is deliberately line-insensitive — entries match on
// (check, file, message), as a multiset — so unrelated edits that shift
// line numbers do not resurrect suppressed findings. The repo itself
// carries no baseline (every finding is fixed or annotated); the
// mechanism exists for downstream forks and for staging future checks.

// JSONDiagnostic is the machine-readable form of one finding. File is
// module-root-relative with forward slashes, so captures are portable
// across checkouts.
type JSONDiagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// ToJSON converts a diagnostic, relativizing the filename to root when
// possible.
func ToJSON(d Diagnostic, root string) JSONDiagnostic {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return JSONDiagnostic{
		Check:   d.Check,
		File:    filepath.ToSlash(file),
		Line:    d.Pos.Line,
		Col:     d.Pos.Column,
		Message: d.Message,
	}
}

// WriteJSON renders findings as JSON Lines.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(ToJSON(d, root)); err != nil {
			return err
		}
	}
	return nil
}

// Baseline is a multiset of known findings keyed by (check, file,
// message).
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	check, file, message string
}

// LoadBaseline reads a baseline file: JSON Lines as produced by -json
// (blank lines and #-comment lines are skipped).
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//qa:allow errcheck file is opened read-only, close cannot lose data
	defer f.Close()
	b := &Baseline{counts: map[baselineKey]int{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var d JSONDiagnostic
		if err := json.Unmarshal([]byte(text), &d); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %w", path, line, err)
		}
		if d.Check == "" || d.File == "" {
			return nil, fmt.Errorf("baseline %s:%d: entry needs at least check and file", path, line)
		}
		b.counts[baselineKey{d.Check, d.File, d.Message}]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Filter removes findings covered by the baseline, consuming one entry
// per match, and returns the remainder (the findings that must still
// fail the run).
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	if b == nil {
		return diags
	}
	left := map[baselineKey]int{}
	for k, n := range b.counts {
		left[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		j := ToJSON(d, root)
		k := baselineKey{j.Check, j.File, j.Message}
		if left[k] > 0 {
			left[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
