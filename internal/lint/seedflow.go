package lint

import (
	"go/ast"
	"go/types"
)

// The seed-flow check guards where RNG seeds come from. Every number
// the paper reports is a function of the experiment's base seed: shard
// seeds are derived with ShardSeed, simulator layers are seeded from
// cfg.Seed, and the sweep store keys results by the canonical config —
// so a seed that is a hard-coded literal (silently pinning "random"
// runs to one stream) or wall-clock-derived (silently unpinning them)
// breaks reproducibility in ways no test notices.
//
// For each seeding call site (math/rand.NewSource and the module's
// ShardSeed by default; Config.SeedFuncs overrides), the check taints
// the seed argument backwards intra-procedurally:
//
//   - a compile-time constant, or a local variable whose every
//     assignment is constant-derived, is flagged: seeds must flow from
//     configuration (Spec/Config fields, parameters, flags), not
//     literals;
//   - an expression that reaches time.Now/Since/Until — directly or
//     through a local — is flagged as wall-clock seeding;
//   - anything else (parameters, struct fields, calls, dereferences,
//     channel receives) is accepted: the value is the caller's or the
//     configuration's choice.
//
// Test files are exempt (the loader never parses them); the check runs
// inside Config.SimPackages. A deliberate fixed seed is annotated
// //qa:allow seed-flow with a rationale.
const CheckSeedFlow = "seed-flow"

var _ = register(&Check{
	Name: CheckSeedFlow,
	Doc:  "RNG seeds in simulation code must flow from configuration, not literals or wall clock",
	Run:  runSeedFlow,
})

// SeedFunc names one seeding call site: the package path and function
// name, and which argument is the seed.
type SeedFunc struct {
	Pkg  string
	Name string
	Arg  int
}

// DefaultSeedFuncs covers the module's seeding surfaces: the math/rand
// source constructor and the SplitMix64 shard-seed deriver.
func DefaultSeedFuncs() []SeedFunc {
	return []SeedFunc{
		{Pkg: "math/rand", Name: "NewSource", Arg: 0},
		{Pkg: "repro/internal/experiments", Name: "ShardSeed", Arg: 0},
	}
}

func runSeedFlow(p *Pass) {
	if !hasPrefix(p.Pkg.Path, p.Cfg.SimPackages) {
		return
	}
	seedFuncs := p.Cfg.SeedFuncs
	if seedFuncs == nil {
		seedFuncs = DefaultSeedFuncs()
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSeedFlowFunc(p, fn, seedFuncs)
		}
	}
}

func checkSeedFlowFunc(p *Pass, fn *ast.FuncDecl, seedFuncs []SeedFunc) {
	var taint *taintScope // built lazily: most functions seed nothing
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg := seedArg(p, call, seedFuncs)
		if arg == nil {
			return true
		}
		if taint == nil {
			taint = newTaintScope(p, fn)
		}
		switch taint.classify(arg) {
		case taintConst:
			p.Reportf(CheckSeedFlow, arg.Pos(),
				"seed is constant-derived: seeds must flow from configuration (Spec/Config fields, ShardSeed, flags), or mark a deliberate fixed seed with %sallow seed-flow", AnnotationPrefix)
		case taintClock:
			p.Reportf(CheckSeedFlow, arg.Pos(),
				"seed is wall-clock-derived (time.Now): results must be a function of the experiment seed only")
		}
		return true
	})
}

// seedArg returns the seed argument expression when call targets a
// configured seeding function, else nil.
func seedArg(p *Pass, call *ast.CallExpr, seedFuncs []SeedFunc) ast.Expr {
	callee := StaticCallee(p.Pkg.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	for _, sf := range seedFuncs {
		if callee.Pkg().Path() == sf.Pkg && callee.Name() == sf.Name && sf.Arg < len(call.Args) {
			return call.Args[sf.Arg]
		}
	}
	return nil
}

// taintScope classifies expressions of one function body.
type taintScope struct {
	p *Pass
	// assigns collects every assignment RHS per local variable.
	assigns map[*types.Var][]ast.Expr
	// visiting breaks cycles through mutually-assigned locals.
	visiting map[*types.Var]bool
}

type taintClass int

const (
	taintOK    taintClass = iota // config/parameter/call-derived
	taintConst                   // provably constant-derived
	taintClock                   // reaches time.Now/Since/Until
)

func newTaintScope(p *Pass, fn *ast.FuncDecl) *taintScope {
	t := &taintScope{p: p, assigns: map[*types.Var][]ast.Expr{}, visiting: map[*types.Var]bool{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Tuple assignments from one call (a, b := f()) are call-derived:
		// leave those vars unrecorded, which classifies them taintOK.
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := t.p.Pkg.Info.Defs[id]
			if obj == nil {
				obj = t.p.Pkg.Info.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok {
				t.assigns[v] = append(t.assigns[v], as.Rhs[i])
			}
		}
		return true
	})
	return t
}

// classify computes the taint class of one expression: taintClock
// dominates (any wall-clock leaf poisons the seed), then taintConst
// when every leaf is constant-derived, else taintOK.
func (t *taintScope) classify(e ast.Expr) taintClass {
	if isWallClockExpr(t.p, e) {
		return taintClock
	}
	if tv, ok := t.p.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return taintConst
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.classify(e.X)
	case *ast.UnaryExpr:
		return t.classify(e.X)
	case *ast.BinaryExpr:
		return combineTaint(t.classify(e.X), t.classify(e.Y))
	case *ast.CallExpr:
		// A conversion propagates its operand's class; a real call mixes
		// in the callee's logic, but a wall-clock argument still poisons
		// the result (time.Now().UnixNano() arrives here as a method
		// call on a wall-clock receiver).
		if tv, ok := t.p.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.classify(e.Args[0])
		}
		for _, arg := range e.Args {
			if t.classify(arg) == taintClock {
				return taintClock
			}
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && t.classify(sel.X) == taintClock {
			return taintClock
		}
		return taintOK
	case *ast.SelectorExpr:
		// Field access or method value: taint follows the receiver only
		// for wall-clock (cfg.Seed is the canonical OK case).
		if t.classify(e.X) == taintClock {
			return taintClock
		}
		return taintOK
	case *ast.Ident:
		return t.classifyVar(e)
	}
	return taintOK
}

func combineTaint(a, b taintClass) taintClass {
	if a == taintClock || b == taintClock {
		return taintClock
	}
	if a == taintConst && b == taintConst {
		return taintConst
	}
	return taintOK
}

// classifyVar resolves an identifier: constants were handled by the
// constant-value fast path, so this is about local variables — a local
// whose every recorded assignment is constant-derived stays taintConst,
// one fed by the wall clock is taintClock, and a variable with no
// recorded assignment (parameter, closure capture, package-level var)
// is the caller's choice: taintOK.
func (t *taintScope) classifyVar(id *ast.Ident) taintClass {
	v, ok := t.p.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return taintOK
	}
	rhss, ok := t.assigns[v]
	if !ok || t.visiting[v] {
		return taintOK
	}
	t.visiting[v] = true
	defer delete(t.visiting, v)
	class := taintConst
	for _, rhs := range rhss {
		c := t.classify(rhs)
		if c == taintClock {
			return taintClock
		}
		if c != taintConst {
			class = taintOK
		}
	}
	return class
}

// isWallClockExpr reports direct calls to time.Now/Since/Until.
func isWallClockExpr(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkgName, sel := selectorPackage(p, call.Fun)
	if pkgName == nil || pkgName.Imported().Path() != "time" {
		return false
	}
	return sel == "Now" || sel == "Since" || sel == "Until"
}
