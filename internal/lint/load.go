package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages from source with
// no toolchain dependency beyond the standard library: module-internal
// imports are resolved from the loader's own cache (packages are checked
// in dependency order) and standard-library imports through go/importer
// (compiler export data when available, falling back to type-checking
// the stdlib from GOROOT source).
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	parsed  map[string]*parsedPkg
	typed   map[string]*Package
	loading map[string]bool
	stdGC   types.Importer
	stdSrc  types.Importer
	known   []string // check names for annotation validation
}

type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		parsed:     map[string]*parsedPkg{},
		typed:      map[string]*Package{},
		loading:    map[string]bool{},
		stdGC:      importer.ForCompiler(fset, "gc", nil),
		stdSrc:     importer.ForCompiler(fset, "source", nil),
		known:      names,
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// LoadAll discovers, parses and type-checks every package of the module
// (skipping testdata and hidden directories, and _test.go files — test
// files are exempt from the invariants by design). The returned packages
// are sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	if err := l.discover(); err != nil {
		return nil, err
	}
	var paths []string
	for p := range l.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// discover walks the module tree and parses every candidate package.
func (l *Loader) discover() error {
	return filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.parseDir(path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			l.parsed[importPath] = pkg
		}
		return nil
	})
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds no buildable Go files.
func (l *Loader) parseDir(dir, importPath string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{path: importPath, dir: dir, files: files}, nil
}

// load type-checks one parsed package, loading its module-internal
// dependencies first.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.typed[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	src, ok := l.parsed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not found in module %s", path, l.ModulePath)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// Resolve the imports before type-checking so the importer below can
	// serve them from the cache.
	for _, f := range src.files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if l.internal(p) {
				if _, err := l.load(p); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, src.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Fset:  l.Fset,
		Files: src.files,
		Types: tpkg,
		Info:  info,
		Notes: ParseNotes(l.Fset, src.files, l.known),
	}
	l.typed[path] = pkg
	return pkg, nil
}

func (l *Loader) internal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// loaderImporter adapts the loader to types.Importer: module-internal
// packages from the cache, the standard library via export data with a
// from-source fallback.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.internal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.stdGC.Import(path); err == nil {
		return pkg, nil
	}
	return l.stdSrc.Import(path)
}

// LoadFixture parses and type-checks a single directory as a standalone
// package under the given import path — the golden-test entry point for
// the testdata fixture packages (which import only the standard
// library).
func LoadFixture(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	std := importer.ForCompiler(fset, "gc", nil)
	stdSrc := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{Importer: fixtureImporter{std, stdSrc}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", dir, err)
	}
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Notes: ParseNotes(fset, files, names),
	}, nil
}

type fixtureImporter struct{ gc, src types.Importer }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, err := fi.gc.Import(path); err == nil {
		return pkg, nil
	}
	return fi.src.Import(path)
}
