package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func diag(check, file string, line, col int, msg string) Diagnostic {
	return Diagnostic{
		Check:   check,
		Pos:     token.Position{Filename: file, Line: line, Column: col},
		Message: msg,
	}
}

// TestWriteJSONRoundTrip pins the -json contract: one object per line,
// each decodable by encoding/json back into an identical JSONDiagnostic,
// with filenames relativized to the module root as forward-slash paths.
func TestWriteJSONRoundTrip(t *testing.T) {
	root := filepath.FromSlash("/mod")
	diags := []Diagnostic{
		diag(CheckHotpath, filepath.FromSlash("/mod/internal/a/a.go"), 10, 3, "make in hot kernel"),
		diag(CheckErrcheck, filepath.FromSlash("/mod/cmd/x/main.go"), 7, 1, `dropped error in "quoted" context`),
		diag(CheckSeedFlow, filepath.FromSlash("/elsewhere/b.go"), 1, 1, "outside the module stays absolute"),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags, root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(diags) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	var got []JSONDiagnostic
	for i, l := range lines {
		var d JSONDiagnostic
		if err := json.Unmarshal(l, &d); err != nil {
			t.Fatalf("line %d does not round-trip: %v\n%s", i+1, err, l)
		}
		got = append(got, d)
	}
	want := []JSONDiagnostic{
		{Check: CheckHotpath, File: "internal/a/a.go", Line: 10, Col: 3, Message: "make in hot kernel"},
		{Check: CheckErrcheck, File: "cmd/x/main.go", Line: 7, Col: 1, Message: `dropped error in "quoted" context`},
		{Check: CheckSeedFlow, File: filepath.ToSlash(filepath.FromSlash("/elsewhere/b.go")), Line: 1, Col: 1, Message: "outside the module stays absolute"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestBaselineFilter pins the suppression semantics: matching is
// line-insensitive (check, file, message), each entry is consumed once,
// and unmatched findings survive.
func TestBaselineFilter(t *testing.T) {
	root := filepath.FromSlash("/mod")
	old := []Diagnostic{
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 10, 1, "dropped"),
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 20, 1, "dropped"),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, old, root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	path := filepath.Join(t.TempDir(), "base.jsonl")
	content := append([]byte("# comment line\n\n"), buf.Bytes()...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	now := []Diagnostic{
		// Same finding, shifted line: still suppressed.
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 13, 1, "dropped"),
		// Second copy consumes the second entry.
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 25, 1, "dropped"),
		// Third copy exceeds the multiset: must survive.
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 30, 1, "dropped"),
		// Different message: must survive.
		diag(CheckErrcheck, filepath.FromSlash("/mod/p/p.go"), 10, 1, "other"),
	}
	rest := b.Filter(now, root)
	if len(rest) != 2 {
		t.Fatalf("Filter kept %d findings, want 2: %v", len(rest), rest)
	}
	if rest[0].Pos.Line != 30 || rest[1].Message != "other" {
		t.Errorf("Filter kept the wrong findings: %v", rest)
	}
}

// TestLoadBaselineRejectsGarbage pins the error paths: non-JSON lines
// and entries without identifying fields are loader errors, not silent
// no-ops.
func TestLoadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"notjson.jsonl": "{half a line\n",
		"empty.jsonl":   `{"line": 3}` + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBaseline(path); err == nil {
			t.Errorf("%s: LoadBaseline accepted invalid input", name)
		}
	}
}
