package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarks extracts the fixture expectations: a comment containing
// "want: check1 check2" expects exactly those checks to fire on its
// line. Returns file:line → sorted check names.
func wantMarks(pkg *Package) map[string][]string {
	out := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want:")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				out[key] = append(out[key], strings.Fields(c.Text[idx+len("want:"):])...)
			}
		}
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// TestFixtures runs every check over its golden fixture package and
// compares the findings line by line against the want: marks — the
// seeded violations must fire, the clean twins must stay silent.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
	}{
		// Each case scopes Enabled to the check under test so fixture
		// packages stay independent as the check set grows.
		{"determinism", &Config{Enabled: []string{CheckDeterminism}, SimPackages: []string{"fixture/"}, ClockPackages: []string{"fixture/"}}},
		{"exhaustive", &Config{Enabled: []string{CheckExhaustive}, EnumPackages: []string{"fixture/exhaustive"}}},
		{"hotpath", &Config{Enabled: []string{CheckHotpath}}},
		{"floateq", &Config{Enabled: []string{CheckFloatEq}}},
		{"seedflow", &Config{
			Enabled:     []string{CheckSeedFlow},
			SimPackages: []string{"fixture/"},
			SeedFuncs:   append(DefaultSeedFuncs(), SeedFunc{Pkg: "fixture/seedflow", Name: "Mix", Arg: 0}),
		}},
		{"errcheck", &Config{Enabled: []string{CheckErrcheck}}},
		{"concurrency", &Config{Enabled: []string{CheckConcurrency}, SimPackages: []string{"fixture/"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := LoadFixture(filepath.Join("testdata", tc.name), "fixture/"+tc.name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			want := wantMarks(pkg)
			got := map[string][]string{}
			for _, d := range Run(tc.cfg, []*Package{pkg}) {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				if !contains(got[key], d.Check) {
					got[key] = append(got[key], d.Check)
				}
			}
			for _, names := range got {
				sort.Strings(names)
			}
			for key, names := range want {
				if gotNames := strings.Join(got[key], " "); gotNames != strings.Join(names, " ") {
					t.Errorf("%s: want checks [%s], got [%s]", key, strings.Join(names, " "), gotNames)
				}
			}
			for key, names := range got {
				if _, ok := want[key]; !ok {
					t.Errorf("%s: unexpected findings [%s]", key, strings.Join(names, " "))
				}
			}
		})
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestChecksRegistry pins the check vocabulary the annotations and the
// -checks flag validate against.
func TestChecksRegistry(t *testing.T) {
	var names []string
	for _, c := range Checks() {
		if c.Doc == "" {
			t.Errorf("check %s has no doc", c.Name)
		}
		names = append(names, c.Name)
	}
	want := []string{CheckDeterminism, CheckExhaustive, CheckFloatEq, CheckHotpath, CheckSeedFlow, CheckErrcheck, CheckConcurrency}
	sort.Strings(want)
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("registered checks = %v, want %v", names, want)
	}
}

// TestRepoIsClean is the self-test behind the CI gate: the analyzer must
// report nothing over this repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(Default(), pkgs) {
		t.Errorf("unexpected finding: %s", d)
	}
}
