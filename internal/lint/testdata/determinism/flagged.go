// Package determinism seeds violations of the determinism check: every
// line carrying an expectation marker must be flagged, and clean.go must
// stay quiet. The golden test loads this directory with SimPackages and
// ClockPackages covering the fixture/ prefix.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

// PrintAll leaks map iteration order straight into output.
func PrintAll(m map[string]int) {
	for k, v := range m { // want: determinism
		fmt.Println(k, v)
	}
}

// SumFloats accumulates floats in map order: per-step rounding makes the
// total order-dependent.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want: determinism
		sum += v
	}
	return sum
}

// FirstPositive returns whichever positive value the iteration happens
// to visit first.
func FirstPositive(m map[string]int) int {
	for _, v := range m { // want: determinism
		if v > 0 {
			return v
		}
	}
	return 0
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(6) // want: determinism
}

// WallClock reads the wall clock inside the simulation scope.
func WallClock() int64 {
	return time.Now().UnixNano() // want: determinism
}
