package determinism

import (
	"math/rand"
	"sort"
)

// SortedKeys collects and sorts before anything order-sensitive happens.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CountPositive accumulates into an integer: int addition commutes.
func CountPositive(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Parity toggles a bool: an even/odd count commutes.
func Parity(m map[string]bool) bool {
	odd := false
	for _, v := range m {
		if v {
			odd = !odd
		}
	}
	return odd
}

// HasNegative early-returns a constant: whichever element triggers it,
// the caller sees the same value.
func HasNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// Invert writes map elements and deletes — both order-free.
func Invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
		delete(m, k)
	}
	return out
}

// SeededRand builds an explicitly seeded source: the constructors are
// whitelisted.
func SeededRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
