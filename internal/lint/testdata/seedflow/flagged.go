// Package seedflow seeds violations of the seed-flow check: RNG seeds
// derived from literals or the wall clock instead of configuration.
// clean.go holds the config-derived twins. The golden test loads this
// directory with SimPackages covering the fixture/ prefix and Mix
// registered as a module seed function.
package seedflow

import (
	"math/rand"
	"time"
)

// Mix stands in for the module's SplitMix64 shard-seed deriver; the
// golden test registers it as a seed function (argument 0).
func Mix(base int64, i int) int64 {
	return base*0x9E3779B9 + int64(i)
}

// LiteralSeed hard-codes the seed at the constructor.
func LiteralSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want: seed-flow
}

// ConstExprSeed derives the seed from constants only.
func ConstExprSeed() *rand.Rand {
	return rand.New(rand.NewSource(int64(7 * 13))) // want: seed-flow
}

// LocalConstSeed launders the literal through a local variable.
func LocalConstSeed() *rand.Rand {
	seed := int64(7)
	return rand.New(rand.NewSource(seed)) // want: seed-flow
}

// ChainedConstSeed launders it through two locals and arithmetic.
func ChainedConstSeed() *rand.Rand {
	base := int64(3)
	seed := base + 4
	return rand.New(rand.NewSource(seed)) // want: seed-flow
}

// WallClockSeed seeds from time.Now directly.
func WallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want: seed-flow
}

// WallClockVarSeed seeds from a wall-clock-derived local.
func WallClockVarSeed() *rand.Rand {
	now := time.Now().UnixNano()
	return rand.New(rand.NewSource(now)) // want: seed-flow
}

// LiteralShardBase feeds a constant base into the shard-seed deriver.
func LiteralShardBase(i int) int64 {
	return Mix(1234, i) // want: seed-flow
}
