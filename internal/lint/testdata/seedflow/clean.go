package seedflow

import "math/rand"

// Spec mirrors the experiment configs: the seed is a field the caller
// (CLI flag, sweep spec) chose.
type Spec struct {
	Seed int64
}

// FromField seeds from configuration.
func FromField(s Spec) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed))
}

// FromParam seeds from a parameter: the caller decides.
func FromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derived mixes configuration with a shard index — still config-rooted.
func Derived(s Spec, i int) *rand.Rand {
	seed := s.Seed + int64(i)
	return rand.New(rand.NewSource(seed))
}

// FromCall re-seeds from a draw of a config-seeded stream (the layered
// simulator stacks do exactly this).
func FromCall(s Spec) *rand.Rand {
	rng := rand.New(rand.NewSource(s.Seed))
	return rand.New(rand.NewSource(rng.Int63()))
}

// ShardBase feeds configuration into the shard-seed deriver.
func ShardBase(s Spec, i int) int64 {
	return Mix(s.Seed, i)
}

// DeliberateFixed is annotated: a pinned golden-stream seed.
func DeliberateFixed() *rand.Rand {
	//qa:allow seed-flow pinned stream for the golden regression fixture
	return rand.New(rand.NewSource(99))
}
