package errcheck

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

// Propagated hands the error to the caller.
func Propagated() error {
	return mayFail()
}

// Handled checks it on the spot.
func Handled() bool {
	if err := mayFail(); err != nil {
		return false
	}
	return true
}

// Captured assigns both results to real variables.
func Captured() (int, error) {
	v, err := pair()
	return v, err
}

// StdoutPrinting is the documented-drop convention: fmt printing to
// stdout/stderr.
func StdoutPrinting() {
	fmt.Println("x")
	fmt.Printf("y %d\n", 1)
	fmt.Print("z")
	fmt.Fprintf(os.Stderr, "w")
	fmt.Fprintln(os.Stdout, "v")
}

// NeverFailingWriters never return a non-nil error by contract.
func NeverFailingWriters() string {
	var buf bytes.Buffer
	var sb strings.Builder
	buf.WriteString("a")
	buf.WriteByte('b')
	sb.WriteString("c")
	fmt.Fprintf(&buf, "d")
	fmt.Fprintf(&sb, "e")
	h := sha256.New()
	h.Write([]byte("f"))
	return sb.String() + buf.String()
}

// NoError calls something with no error result at all.
func NoError() int {
	return len("x")
}

// Deliberate documents a best-effort drop with a rationale.
func Deliberate() {
	//qa:allow errcheck best-effort flush on shutdown, nothing to do on failure
	mayFail()
}
