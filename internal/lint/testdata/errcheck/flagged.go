// Package errcheck seeds violations of the errcheck check: error
// returns silently discarded in statement calls, go/defer, and blank
// assignments. clean.go holds the handled twins.
package errcheck

import (
	"fmt"
	"io"
	"os"
)

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

type closer struct{}

func (closer) Close() error { return nil }

// DropStmt discards the error of a statement call.
func DropStmt() {
	mayFail() // want: errcheck
}

// DropBlank discards it explicitly via the blank identifier.
func DropBlank() {
	_ = mayFail() // want: errcheck
}

// DropPair keeps the value and blanks the error.
func DropPair() int {
	v, _ := pair() // want: errcheck
	return v
}

// DropParallel blanks the error in a parallel assignment.
func DropParallel() int {
	v := 0
	v, _ = pair() // want: errcheck
	return v
}

// DropDefer defers a close and never sees its error.
func DropDefer(c closer) {
	defer c.Close() // want: errcheck
}

// DropGo launches a call whose error nobody can observe.
func DropGo() {
	go mayFail() // want: errcheck
}

// DropFprintf writes to an arbitrary writer — errors matter there.
func DropFprintf(w io.Writer) {
	fmt.Fprintf(w, "x") // want: errcheck
}

// DropFile writes to a file, where the error is load-bearing.
func DropFile(f *os.File) {
	f.Sync() // want: errcheck
}
