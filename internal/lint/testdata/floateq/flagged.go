// Package floateq seeds violations of the float-eq check; clean.go
// holds the tolerated forms.
package floateq

// Equal compares floats exactly.
func Equal(a, b float64) bool {
	return a == b // want: float-eq
}

// NotZero compares a variable against a constant: still exact.
func NotZero(x float64) bool {
	return x != 0 // want: float-eq
}

// ComplexEqual compares complex values exactly.
func ComplexEqual(a, b complex128) bool {
	return a == b // want: float-eq
}
