package floateq

import "math"

// bothConst folds exactly at compile time.
const bothConst = 1.5 == 1.5

// Near compares with a tolerance.
func Near(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Ints compare exactly by nature.
func Ints(a, b int) bool {
	return a == b
}

// IsNaN uses the deliberate IEEE x != x idiom, annotated.
func IsNaN(x float64) bool {
	//qa:allow float-eq
	return x != x
}
