// Package exhaustive seeds violations of the exhaustive check. The
// golden test loads this directory with EnumPackages naming the fixture
// itself, so Kind below is an enforced enum.
package exhaustive

// Kind is an enforced enum: switches over it must cover every constant
// or terminate in their default.
type Kind int

// The Kind constants.
const (
	KindA Kind = iota
	KindB
	KindC
)

// MissingNoDefault omits KindC and has no default.
func MissingNoDefault(k Kind) string {
	switch k { // want: exhaustive
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

// SilentDefault omits KindC and its default falls through quietly.
func SilentDefault(k Kind) int {
	n := 0
	switch k { // want: exhaustive
	case KindA:
		n = 1
	default:
		n = 2
	}
	return n
}
