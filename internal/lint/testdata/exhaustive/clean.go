package exhaustive

import "errors"

// KindDefault aliases KindA: covering any alias of a value covers them
// all.
const KindDefault = KindA

// Full covers every constant (KindA via its alias).
func Full(k Kind) string {
	switch k {
	case KindDefault, KindB:
		return "ab"
	case KindC:
		return "c"
	}
	return ""
}

// PanicDefault is partial but its default is loud.
func PanicDefault(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		panic("unhandled kind")
	}
}

// ErrDefault is partial but returns an error from its default.
func ErrDefault(k Kind) (string, error) {
	switch k {
	case KindA:
		return "a", nil
	default:
		return "", errors.New("unhandled kind")
	}
}

// Allowed is deliberately partial and annotated.
func Allowed(k Kind) string {
	//qa:allow exhaustive
	switch k {
	case KindA:
		return "a"
	}
	return ""
}

// NonEnum switches over a plain int: not an enforced enum, exempt.
func NonEnum(n int) int {
	switch n {
	case 0:
		return 1
	}
	return 0
}
