// Interprocedural fixtures: the hotpath check resolves calls through
// the module call graph, so an allocating helper is flagged at the hot
// call site even two calls deep.
package hotpath

import (
	"math"
	"math/bits"
)

// leafAlloc allocates at the bottom of the chain.
func leafAlloc(n int) []int {
	return make([]int, n)
}

// midAlloc forwards to the allocating leaf.
func midAlloc(n int) []int {
	return leafAlloc(n)
}

// HotTransitive reaches an allocation two calls down.
//
//qa:hotpath
func HotTransitive(n int) []int {
	return midAlloc(n) // want: hotpath
}

func cleanLeaf(x int) int { return x * 3 }

func cleanMid(x int) int { return cleanLeaf(x) + 1 }

// HotTransitiveClean calls a provably allocation-free chain.
//
//qa:hotpath
func HotTransitiveClean(x int) int {
	return cleanMid(x)
}

// HotStdlibAllowlist calls the pure word-arithmetic stdlib packages.
//
//qa:hotpath
func HotStdlibAllowlist(x uint64, f float64) float64 {
	return float64(bits.OnesCount64(x)) * math.Sqrt(f)
}

// HotDynamic calls through a func value: unresolvable, conservatively
// may-allocate.
//
//qa:hotpath
func HotDynamic(f func() int) int {
	return f() // want: hotpath
}

type counter struct {
	n    int
	data []int
}

func (c *counter) bump() { c.n++ }

func (c *counter) grow() {
	c.data = append(c.data, c.n)
}

// HotMethodClean calls an allocation-free method on a concrete
// receiver.
//
//qa:hotpath
func HotMethodClean(c *counter) {
	c.bump()
}

// HotMethodAlloc calls an allocating method on a concrete receiver.
//
//qa:hotpath
func HotMethodAlloc(c *counter) {
	c.grow() // want: hotpath
}

// coldInit has a deliberate cold path, trusted via the annotation — so
// its callers stay provably clean.
func coldInit(c *counter) {
	if c.data == nil {
		//qa:allow hotpath
		c.data = make([]int, 0, 8)
	}
	c.n = 0
}

// HotAllowedCallee calls a helper whose only allocation is an annotated
// cold path.
//
//qa:hotpath
func HotAllowedCallee(c *counter) {
	coldInit(c)
}

// HotAllowedCallSite exempts one known-cold call site.
//
//qa:hotpath
func HotAllowedCallSite(n int) []int {
	//qa:allow hotpath
	return midAlloc(n)
}
