package hotpath

// NotHot has no directive: allocation is fine here.
func NotHot(s []int) []int {
	return append(s, 1)
}

// HotSum is pure arithmetic.
//
//qa:hotpath
func HotSum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// HotGuard panics with a constant: static data, the required loud
// failure path.
//
//qa:hotpath
func HotGuard(q, n int) {
	if q < 0 || q >= n {
		panic("index out of range")
	}
}

// HotColdPath exempts a deliberate cold branch.
//
//qa:hotpath
func HotColdPath(s []int, grow bool) []int {
	if grow {
		//qa:allow hotpath
		s = append(s, 0)
	}
	return s
}

// HotStaticClosure uses a capture-free literal: static, no environment.
//
//qa:hotpath
func HotStaticClosure(n int) int {
	double := func(x int) int { return x * 2 }
	return double(n)
}
