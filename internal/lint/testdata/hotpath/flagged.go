// Package hotpath seeds violations of the hotpath check inside
// //qa:hotpath functions; clean.go holds the allocation-free twins.
package hotpath

import "fmt"

type point struct{ x, y int }

// HotAppend grows a slice.
//
//qa:hotpath
func HotAppend(s []int) []int {
	return append(s, 1) // want: hotpath
}

// HotMake builds a map per call.
//
//qa:hotpath
func HotMake() map[int]int {
	return make(map[int]int) // want: hotpath
}

// HotNew heap-allocates.
//
//qa:hotpath
func HotNew() *int {
	return new(int) // want: hotpath
}

// HotComposite builds a composite literal.
//
//qa:hotpath
func HotComposite(x, y int) point {
	return point{x, y} // want: hotpath
}

// HotBox converts explicitly to an interface.
//
//qa:hotpath
func HotBox(n int) interface{} {
	return interface{}(n) // want: hotpath
}

// HotPrint boxes its argument into fmt's variadic interface parameter.
//
//qa:hotpath
func HotPrint(n int) {
	fmt.Println(n) // want: hotpath
}

// HotConcat concatenates strings.
//
//qa:hotpath
func HotConcat(a, b string) string {
	return a + b // want: hotpath
}

// HotCapture builds a closure over n.
//
//qa:hotpath
func HotCapture(n int) int {
	f := func() int { return n } // want: hotpath
	return f()
}

// HotDefer defers.
//
//qa:hotpath
func HotDefer() {
	defer func() {}() // want: hotpath
}
