// Package concurrency seeds violations of the concurrency check:
// goroutines and worker-pool closures that couple results to map
// iteration order or goroutine scheduling. clean.go holds the
// order-free twins. The golden test loads this directory with
// SimPackages covering the fixture/ prefix.
package concurrency

import "sync"

func work(k int, out chan<- int) { out <- k }

func sink(int) {}

// GoInMapRange launches goroutines in randomized map order.
func GoInMapRange(m map[int]int, out chan<- int) {
	for k := range m {
		go work(k, out) // want: concurrency
	}
}

// GoClosureInMapRange does the same with a closure.
func GoClosureInMapRange(m map[int]int, out chan<- int) {
	for _, v := range m {
		v := v
		go func() { out <- v }() // want: concurrency
	}
}

// PoolCaptureMapVar hands a worker pool a closure capturing the range
// value of a map iteration.
func PoolCaptureMapVar(m map[string]int, submit func(func())) {
	for _, v := range m {
		submit(func() { sink(v) }) // want: concurrency
	}
}

// SharedAccumulate writes a captured accumulator from goroutines: the
// float sum depends on scheduling.
func SharedAccumulate(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum += xs[i] // want: concurrency
		}(i)
	}
	wg.Wait()
	return sum
}

// SharedFlag rebinds a captured variable from a goroutine.
func SharedFlag(jobs []func() bool) bool {
	ok := true
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() bool) {
			defer wg.Done()
			if !job() {
				ok = false // want: concurrency
			}
		}(job)
	}
	wg.Wait()
	return ok
}
