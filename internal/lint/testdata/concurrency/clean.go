package concurrency

import (
	"sort"
	"sync"
	"sync/atomic"
)

// SortedLaunch fixes the order before fanning out: the goroutines see a
// deterministic sequence.
func SortedLaunch(m map[int]int, out chan<- int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		go work(k, out)
	}
}

// IndexSlots writes disjoint index-addressed slots — the sanctioned
// worker-pool pattern.
func IndexSlots(xs []float64) []float64 {
	res := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = 2 * xs[i]
		}(i)
	}
	wg.Wait()
	return res
}

// AtomicCursor mutates shared state through atomics (method calls, not
// direct writes) exactly like the module's shard pool.
func AtomicCursor(n int, job func(int)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// LocalState declares everything it writes inside the closure.
func LocalState(out chan<- int) {
	go func() {
		n := 0
		for i := 0; i < 10; i++ {
			n += i
		}
		out <- n
	}()
}

// SyncCallback hands a closure capturing slice-range state to a
// synchronous iterator — slices iterate in a fixed order.
func SyncCallback(xs []int, each func(func())) {
	for _, x := range xs {
		each(func() { sink(x) })
	}
}

// Deliberate documents an order-free launch over a map: the goroutines
// only count, and integer addition through an atomic commutes.
func Deliberate(m map[int]int, total *atomic.Int64) {
	for _, v := range m {
		//qa:allow concurrency order-free: atomic integer accumulation commutes
		go func(v int) { total.Add(int64(v)) }(v)
	}
}
