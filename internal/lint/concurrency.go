package lint

import (
	"go/ast"
	"go/types"
)

// The concurrency check is the static half of the Workers=1 == Workers=N
// bit-identity contract (internal/experiments/parallel_test.go asserts
// the dynamic half). The worker pools keep sweeps deterministic by
// construction — jobs are indexed by an atomic cursor and write to
// disjoint index-addressed slots — and this check flags the three shapes
// that smuggle scheduling or map order back into results, inside
// Config.SimPackages:
//
//  1. a go statement inside a range over a map: the launch order (and
//     with it any shared-state interleaving) inherits Go's randomized
//     iteration order;
//  2. a closure launched by go, or handed to a worker pool (any
//     func-typed call argument), that captures the key/value variables
//     of an enclosing range over a map: the captured state depends on
//     the randomized order;
//  3. a go-launched closure that writes a captured variable directly
//     (x = …, x += …, x++ where x is declared outside the closure):
//     the final value depends on goroutine scheduling. Index-addressed
//     writes to disjoint slots (out[i] = r) are the sanctioned pattern
//     and stay legal.
//
// A loop proven safe by construction is annotated //qa:allow
// concurrency with a rationale.
const CheckConcurrency = "concurrency"

var _ = register(&Check{
	Name: CheckConcurrency,
	Doc:  "goroutines and worker-pool closures coupling results to map order or scheduling in sim code",
	Run:  runConcurrency,
})

func runConcurrency(p *Pass) {
	if !hasPrefix(p.Pkg.Path, p.Cfg.SimPackages) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &concWalker{p: p, fn: fn}
			w.walk(fn.Body)
		}
	}
}

// concWalker tracks the stack of enclosing range-over-map statements
// while walking one function body.
type concWalker struct {
	p  *Pass
	fn *ast.FuncDecl
	// mapVars are the key/value variables of the enclosing map ranges.
	mapVars []map[*types.Var]bool
	// inMapRange counts enclosing range-over-map bodies.
	inMapRange int
}

func (w *concWalker) walk(n ast.Node) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.RangeStmt:
		if w.isMapRange(n) {
			w.mapVars = append(w.mapVars, w.rangeVars(n))
			w.inMapRange++
			ast.Inspect(n.Body, w.visit)
			w.inMapRange--
			w.mapVars = w.mapVars[:len(w.mapVars)-1]
			return
		}
		ast.Inspect(n.Body, w.visit)
	default:
		ast.Inspect(n, w.visit)
	}
}

// visit dispatches one node, recursing manually through range
// statements so the map-range stack stays accurate.
func (w *concWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Re-enter through walk to push/pop the stack; visit the range
		// header expressions here (they cannot contain go statements of
		// interest beyond what Inspect covers).
		w.walk(n)
		return false
	case *ast.GoStmt:
		w.checkGo(n)
	case *ast.CallExpr:
		w.checkPoolSubmission(n)
	}
	return true
}

func (w *concWalker) isMapRange(rng *ast.RangeStmt) bool {
	t := w.p.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rangeVars collects the key/value variable objects of one range.
func (w *concWalker) rangeVars(rng *ast.RangeStmt) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = w.p.Pkg.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			vars[v] = true
		}
	}
	return vars
}

// checkGo handles rules 1 and 3 at a go statement.
func (w *concWalker) checkGo(g *ast.GoStmt) {
	if w.inMapRange > 0 {
		w.p.Reportf(CheckConcurrency, g.Pos(),
			"goroutine launched inside range over map: launch order inherits the randomized iteration order (iterate sorted keys, or annotate a provably order-free launch with %sallow concurrency)",
			AnnotationPrefix)
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	w.checkCapturedWrites(lit)
}

// checkCapturedWrites implements rule 3: direct writes inside a
// go-launched closure to variables declared outside it.
func (w *concWalker) checkCapturedWrites(lit *ast.FuncLit) {
	info := w.p.Pkg.Info
	reported := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		default:
			return true
		}
		for _, tgt := range targets {
			id, ok := tgt.(*ast.Ident)
			if !ok {
				continue // out[i] = r and *p = v are the sanctioned shapes
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || reported[v] {
				continue // := declarations resolve through Defs, not Uses
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				continue // closure-local
			}
			reported[v] = true
			w.p.Reportf(CheckConcurrency, id.Pos(),
				"goroutine writes captured variable %q: the final value depends on scheduling (use index-addressed slots or a channel, or annotate %sallow concurrency)",
				v.Name(), AnnotationPrefix)
		}
		return true
	})
}

// checkPoolSubmission implements rule 2: func literals passed as
// func-typed arguments (worker-pool submissions) that capture
// range-over-map state.
func (w *concWalker) checkPoolSubmission(call *ast.CallExpr) {
	if len(w.mapVars) == 0 {
		return
	}
	sigT := w.p.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Signature); !ok {
			continue
		}
		if v := w.capturedMapVar(lit); v != nil {
			w.p.Reportf(CheckConcurrency, lit.Pos(),
				"closure passed to %s captures range-over-map variable %q: submission order and captured state inherit the randomized iteration order",
				calleeDesc(w.p, call), v.Name())
		}
	}
}

// capturedMapVar returns a key/value variable of an enclosing map range
// that the literal captures, or nil.
func (w *concWalker) capturedMapVar(lit *ast.FuncLit) *types.Var {
	info := w.p.Pkg.Info
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for _, scope := range w.mapVars {
			if scope[v] {
				found = v
				return false
			}
		}
		return true
	})
	return found
}
