// Package lint is the repo's custom static-analysis framework (qalint).
// It machine-checks the invariants the headline claims rest on — claims
// that are otherwise only guarded dynamically by tests and -benchmem
// numbers:
//
//   - determinism: sharded Monte-Carlo sweeps are bit-identical for any
//     worker count (PR 1). Unordered map iteration that feeds simulation
//     state or output, and global math/rand or time.Now seeding, would
//     silently break that.
//   - exhaustive: the gate-kind and Pauli enum switches dispatching the
//     thesis Tables 3.2–3.5 conjugation kernels must cover every declared
//     constant or terminate loudly, so adding a gate cannot fall through.
//   - hotpath: functions annotated //qa:hotpath (the CHP column-major
//     gate kernels and the framesim word-parallel propagate/decode loops)
//     must stay allocation-free, statically pinning the 0 allocs/op
//     benchmark claims.
//   - floateq: probability and LER code must not compare floats with
//     == / != (use tolerances), except where //qa:allow float-eq marks a
//     deliberate exact comparison.
//
// The framework is pure stdlib (go/ast, go/parser, go/types), matching
// the repo's no-dependency rule. cmd/qalint is the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:column.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/chp")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Notes carries the parsed //qa: annotations of every file.
	Notes *Notes
}

// Pass is the per-package context handed to a check's Run function.
// Prog is the module-wide view (call graph, cross-package function
// index) shared by every pass of one Run.
type Pass struct {
	Cfg  *Config
	Pkg  *Package
	Prog *Program
	diag *[]Diagnostic
}

// Reportf records a finding at pos unless a //qa:allow annotation for
// the check covers that line.
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.Notes.Allowed(check, position) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Pos:     position,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the static type of an expression.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Check is one registered analysis.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// registry holds the built-in checks in registration order.
var registry []*Check

func register(c *Check) *Check {
	registry = append(registry, c)
	return c
}

// Checks returns the registered checks sorted by name.
func Checks() []*Check {
	out := append([]*Check(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Config scopes the checks. The zero value plus Default() matches the
// repo's layout; tests override the scopes to point at fixtures.
type Config struct {
	// Enabled selects checks by name; empty means all registered checks.
	Enabled []string
	// SimPackages are import-path prefixes where the determinism check's
	// map-iteration rule applies (simulation state and result
	// aggregation live here).
	SimPackages []string
	// ClockPackages are import-path prefixes where time.Now is forbidden
	// (the simulation core; CLI drivers may time wall-clock progress).
	ClockPackages []string
	// EnumPackages are import paths whose named constant sets the
	// exhaustive check enforces switch coverage for.
	EnumPackages []string
	// HotAllowPackages are external (stdlib) package paths the
	// interprocedural hotpath lattice trusts as allocation-free; nil
	// means the default {"math", "math/bits"}.
	HotAllowPackages []string
	// HotAllowFuncs are individual external functions the lattice
	// trusts as allocation-free, named as fnName renders them (e.g.
	// "(*math/rand.Rand).Uint64"); nil means defaultHotAllowFuncs.
	// Use this for packages whose constructors allocate but whose draw
	// methods do not — whole-package trust would be wrong there.
	HotAllowFuncs []string
	// SeedFuncs are the RNG-seeding call sites the seed-flow check
	// taints; nil means DefaultSeedFuncs().
	SeedFuncs []SeedFunc
}

// Default returns the repo configuration: every check, determinism over
// the whole module, clock discipline and enum enforcement over the
// simulation internals.
func Default() *Config {
	return &Config{
		SimPackages:   []string{"repro/"},
		ClockPackages: []string{"repro/internal/"},
		EnumPackages:  []string{"repro/internal/gates", "repro/internal/pauli"},
	}
}

func (c *Config) enabled(name string) bool {
	if len(c.Enabled) == 0 {
		return true
	}
	for _, n := range c.Enabled {
		if n == name {
			return true
		}
	}
	return false
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Run executes every enabled check over the packages and returns the
// findings sorted by position.
func Run(cfg *Config, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	prog := NewProgram(cfg, pkgs)
	for _, pkg := range pkgs {
		// Annotation parse errors are findings: a typo in a //qa:
		// directive must not silently disable enforcement.
		diags = append(diags, pkg.Notes.Errs...)
		for _, chk := range Checks() {
			if !cfg.enabled(chk.Name) {
				continue
			}
			chk.Run(&Pass{Cfg: cfg, Pkg: pkg, Prog: prog, diag: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags
}
