package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The exhaustive check enforces switch coverage over the enum constant
// sets that drive the Pauli-frame machinery: the gate vocabulary and
// classification in internal/gates and the Pauli operators in
// internal/pauli (Config.EnumPackages). Those switches dispatch into
// the thesis Tables 3.2–3.5 conjugation kernels; a new gate constant
// that silently falls through an old switch would corrupt frames
// without any test necessarily noticing.
//
// A switch over an enforced enum type must either
//
//   - list every declared constant of the type in its cases, or
//   - carry a terminating default: one whose body panics or returns
//     (an error-returning guard is as loud as a panic — nothing falls
//     through silently).
//
// Deliberate partial switches are annotated //qa:allow exhaustive.
const CheckExhaustive = "exhaustive"

var _ = register(&Check{
	Name: CheckExhaustive,
	Doc:  "switches over gate/Pauli enum constants must cover every constant or terminate in default",
	Run:  runExhaustive,
})

func runExhaustive(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(p, sw)
			return true
		})
	}
}

func checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	t := p.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !enumPackage(p.Cfg, obj.Pkg().Path()) {
		return
	}
	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && terminates(defaultClause.Body) {
		return
	}
	enum := obj.Name()
	if defaultClause == nil {
		p.Reportf(CheckExhaustive, sw.Switch,
			"switch over %s.%s misses %s and has no default: cover every constant or add a panicking default",
			obj.Pkg().Name(), enum, nameList(missing))
		return
	}
	p.Reportf(CheckExhaustive, sw.Switch,
		"switch over %s.%s misses %s and its default falls through silently: panic or return from the default",
		obj.Pkg().Name(), enum, nameList(missing))
}

func enumPackage(cfg *Config, path string) bool {
	for _, p := range cfg.EnumPackages {
		if p == path {
			return true
		}
	}
	return false
}

type enumMember struct {
	name string
	val  string // exact constant value, for duplicate-aliasing dedup
}

// enumMembers collects the package-level constants declared with the
// named type, deduplicated by value (aliases like a Default constant
// count as covered when any alias is listed) and sorted by declaration
// name for stable messages.
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	scope := pkg.Scope()
	byVal := map[string]string{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if prev, ok := byVal[v]; !ok || name < prev {
			byVal[v] = name
		}
	}
	out := make([]enumMember, 0, len(byVal))
	for v, name := range byVal {
		out = append(out, enumMember{name: name, val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// terminates reports whether a default body is loud: it panics or
// returns somewhere along it (a guard), rather than falling through.
func terminates(body []ast.Stmt) bool {
	for _, s := range body {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			case *ast.FuncLit:
				return false // a nested function's returns don't count
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func nameList(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return fmt.Sprintf("{%s}", strings.Join(names, ", "))
}
