package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The floateq check flags == and != between floating-point operands.
// The probability and LER pipeline (channel parameters, Eq. 5.1 rates,
// t-test statistics, pseudo-threshold interpolation) must compare with
// tolerances: exact float equality silently turns into "never equal"
// after any rounding step, and "accidentally equal" at reconstructed
// values — both have bitten LER aggregation code in the wild.
//
// Comparisons where both operands are compile-time constants are fine
// (the compiler folds them exactly). Deliberate exact comparisons —
// sentinel values, checking a stored copy is unchanged, IEEE edge-case
// handling like x != x — are annotated //qa:allow float-eq on the line.
const CheckFloatEq = "float-eq"

var _ = register(&Check{
	Name: CheckFloatEq,
	Doc:  "==/!= on floating-point operands; compare with a tolerance or annotate //qa:allow float-eq",
	Run:  runFloatEq,
})

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if isConstExpr(p, be.X) && isConstExpr(p, be.Y) {
				return true
			}
			p.Reportf(CheckFloatEq, be.OpPos,
				"floating-point %s comparison: use a tolerance, or mark a deliberate exact comparison with %sallow float-eq",
				be.Op, AnnotationPrefix)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
