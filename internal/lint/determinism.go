package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The determinism check guards the bit-identical-sweeps contract
// (internal/experiments: ShardSeed sharding must give the same results
// for any worker count, and CLI output must be byte-identical run to
// run). It flags the two static hazards that break it:
//
//  1. Range iteration over a map whose body is order-sensitive — any
//     statement other than order-insensitive accumulation (appending to
//     a slice for later sorting, integer/bool accumulation, writes into
//     other maps, deletes) leaks Go's randomized map order into
//     simulation state or output. Sort the keys first, or annotate a
//     provably order-free loop with //qa:allow determinism.
//  2. Global randomness and wall-clock seeding: package-level math/rand
//     functions (rand.Intn, rand.Seed, …— everything except the
//     rand.New/rand.NewSource constructors) and, inside the simulation
//     core, time.Now. Both make results depend on process state rather
//     than the experiment's seed.
//
// Test files are exempt (the loader never parses them); the map rule
// applies inside Config.SimPackages, the clock rule inside
// Config.ClockPackages, and the global-rand rule everywhere.
const CheckDeterminism = "determinism"

var _ = register(&Check{
	Name: CheckDeterminism,
	Doc:  "order-dependent map iteration, global math/rand, and time.Now in simulation code",
	Run:  runDeterminism,
})

func runDeterminism(p *Pass) {
	simScope := hasPrefix(p.Pkg.Path, p.Cfg.SimPackages)
	clockScope := hasPrefix(p.Pkg.Path, p.Cfg.ClockPackages)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if simScope {
					checkMapRange(p, n)
				}
			case *ast.CallExpr:
				checkGlobalRand(p, n)
				if clockScope {
					checkClock(p, n)
				}
			}
			return true
		})
	}
}

// checkMapRange flags order-sensitive bodies of map iterations.
func checkMapRange(p *Pass, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pos := firstOrderSensitive(p, rng.Body, uniformReturns(rng.Body)); pos.IsValid() {
		p.Reportf(CheckDeterminism, rng.For,
			"map iteration order is randomized: this body is order-sensitive (sort the keys first, or annotate a provably order-free loop with %sallow determinism)",
			AnnotationPrefix)
	}
}

// uniformReturns reports whether every return statement inside the
// loop body returns the same tuple of compile-time constants (or there
// are no returns at all). An early `return false` exists-style guard is
// order-free: whichever element triggers it, the caller sees the same
// value. Distinct return values are not: the first match in iteration
// order would win.
func uniformReturns(body *ast.BlockStmt) bool {
	uniform := true
	var first []string
	ast.Inspect(body, func(n ast.Node) bool {
		if !uniform {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested function's returns leave the loop alone
		case *ast.ReturnStmt:
			vals := make([]string, 0, len(n.Results))
			for _, r := range n.Results {
				lit, ok := r.(*ast.BasicLit)
				id, okID := r.(*ast.Ident)
				switch {
				case ok:
					vals = append(vals, lit.Value)
				case okID && (id.Name == "true" || id.Name == "false" || id.Name == "nil"):
					vals = append(vals, id.Name)
				default:
					uniform = false
					return false
				}
			}
			if first == nil {
				first = append(vals, "") // non-nil sentinel even for bare returns
			} else if len(first) != len(vals)+1 {
				uniform = false
			} else {
				for i, v := range vals {
					if first[i] != v {
						uniform = false
					}
				}
			}
		}
		return uniform
	})
	return uniform
}

// firstOrderSensitive returns the position of the first statement whose
// effect can depend on iteration order, or token.NoPos when the whole
// body is order-insensitive accumulation. returnsOK marks bodies whose
// return statements were proven uniform by uniformReturns.
func firstOrderSensitive(p *Pass, body *ast.BlockStmt, returnsOK bool) token.Pos {
	var walk func(stmts []ast.Stmt) token.Pos
	walk = func(stmts []ast.Stmt) token.Pos {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.BlockStmt:
				if pos := walk(s.List); pos.IsValid() {
					return pos
				}
			case *ast.IfStmt:
				if s.Init != nil {
					if pos := walk([]ast.Stmt{s.Init}); pos.IsValid() {
						return pos
					}
				}
				if pos := walk(s.Body.List); pos.IsValid() {
					return pos
				}
				if s.Else != nil {
					if pos := walk([]ast.Stmt{s.Else}); pos.IsValid() {
						return pos
					}
				}
			case *ast.ForStmt:
				// A nested loop is as order-free as its body (collection
				// idioms often gather nested values before sorting).
				if pos := walk(s.Body.List); pos.IsValid() {
					return pos
				}
			case *ast.RangeStmt:
				if pos := walk(s.Body.List); pos.IsValid() {
					return pos
				}
			case *ast.BranchStmt:
				// continue/break keep the loop order-free; goto does not.
				if s.Tok == token.GOTO {
					return s.Pos()
				}
			case *ast.EmptyStmt, *ast.DeclStmt:
				// Local declarations introduce per-iteration state.
			case *ast.IncDecStmt:
				if !orderFreeAccumulator(p, s.X) {
					return s.Pos()
				}
			case *ast.AssignStmt:
				if pos := assignOrderSensitive(p, s); pos.IsValid() {
					return pos
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "delete") {
					continue
				}
				return s.Pos()
			case *ast.ReturnStmt:
				if returnsOK {
					continue
				}
				return s.Pos()
			default:
				// Returns, nested loops, sends, calls for effect, defers:
				// assume order-sensitive.
				return s.Pos()
			}
		}
		return token.NoPos
	}
	return walk(body.List)
}

// assignOrderSensitive vets one assignment inside a map-range body.
// Order-insensitive forms: s = append(s, …) slice collection, writes
// into map elements, := declarations of locals, and commutative
// accumulation (+=, |=, &=, ^=, ++ on integers; = of a constant).
func assignOrderSensitive(p *Pass, s *ast.AssignStmt) token.Pos {
	switch s.Tok {
	case token.DEFINE:
		return token.NoPos
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if isMapIndex(p, lhs) {
				continue
			}
			// Plain rebinding is only order-free when every RHS is a
			// constant (flags, sentinels), the self-append idiom, or the
			// parity toggle x = !x (an even/odd count commutes).
			if i < len(s.Rhs) {
				if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") && sameRef(lhs, call.Args[0]) {
					continue
				}
				if not, ok := s.Rhs[i].(*ast.UnaryExpr); ok && not.Op == token.NOT && sameRef(lhs, not.X) {
					continue
				}
				if tv, ok := p.Pkg.Info.Types[s.Rhs[i]]; ok && tv.Value != nil {
					continue
				}
			}
			return s.Pos()
		}
		return token.NoPos
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		for _, lhs := range s.Lhs {
			if !orderFreeAccumulator(p, lhs) {
				return s.Pos()
			}
		}
		return token.NoPos
	default:
		// -=, /=, %=, shifts: not commutative-associative in general.
		return s.Pos()
	}
}

// orderFreeAccumulator reports whether accumulating into the expression
// commutes across iteration orders: integer or boolean scalars (and
// map elements of such type). Floating-point accumulation is rounded
// per step, so its result depends on order — exactly the hazard that
// would unshard ShardSeed-split sweeps.
func orderFreeAccumulator(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func isMapIndex(p *Pass, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// sameRef reports whether two expressions are the same identifier or
// selector chain (textually, for the append self-assignment idiom).
func sameRef(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && a.Name == bi.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameRef(a.X, bs.X)
	}
	return false
}

func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == name
}

// randConstructors are the math/rand package-level functions that build
// seeded sources rather than drawing from the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// checkGlobalRand flags calls to math/rand package-level functions that
// draw from (or reseed) the process-global source.
func checkGlobalRand(p *Pass, call *ast.CallExpr) {
	pkgName, sel := selectorPackage(p, call.Fun)
	if pkgName == nil {
		return
	}
	path := pkgName.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if randConstructors[sel] {
		return
	}
	p.Reportf(CheckDeterminism, call.Pos(),
		"call to global rand.%s: draw from an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))) so runs are reproducible", sel)
}

// checkClock flags time.Now in the simulation core.
func checkClock(p *Pass, call *ast.CallExpr) {
	pkgName, sel := selectorPackage(p, call.Fun)
	if pkgName == nil || pkgName.Imported().Path() != "time" || sel != "Now" {
		return
	}
	p.Reportf(CheckDeterminism, call.Pos(),
		"time.Now in simulation code: results must be a function of the experiment seed only")
}

// selectorPackage resolves fun as pkg.Sel and returns the package name
// object and selected identifier; nil when fun is not a package
// selector.
func selectorPackage(p *Pass, fun ast.Expr) (*types.PkgName, string) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	pkgName, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, ""
	}
	return pkgName, sel.Sel.Name
}
