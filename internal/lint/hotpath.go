package lint

import (
	"go/ast"
	"go/types"
)

// The hotpath check statically pins the 0 allocs/op claims of the CHP
// column-major gate kernels and the framesim word-parallel
// propagate/decode loops (BENCH_chp.json, BENCH_framesim.json). Inside
// a function whose doc comment carries //qa:hotpath it forbids every
// construct that can allocate per call:
//
//   - append, make and new
//   - composite literals (slice, map and struct literals)
//   - conversions of non-constant values to interface types, explicit
//     or implicit at call arguments and assignments (fmt helpers are
//     the classic offender)
//   - string concatenation (+ / += on strings)
//   - closures capturing variables (a capturing func literal allocates
//     its environment; capture-free literals are static and allowed)
//
// panic with a constant argument stays allowed: the conversion is
// materialized by the compiler as static data and the call is the loud
// failure path the kernels are required to keep.
//
// The check is interprocedural (PR 9): every call inside a hot function
// is resolved through the module call graph (callgraph.go) and the
// callee must be provably allocation-free — its own body clean under
// the same rules, transitively through its static callees. External
// callees are trusted only on the allocation-free stdlib allowlist
// (math, math/bits); calls through func values or interface methods
// cannot be resolved and are conservatively treated as may-allocate,
// except a local variable bound exactly once to a func literal in the
// same function (the body is visible and scanned in place).
//
// A deliberate exception (e.g. a cold sub-path inside a hot function)
// is annotated //qa:allow hotpath on the offending line.
const CheckHotpath = "hotpath"

var _ = register(&Check{
	Name: CheckHotpath,
	Doc:  "//qa:hotpath functions must be allocation-free: no append/make/new, composite literals, interface conversions, string concat, or capturing closures",
	Run:  runHotpath,
})

func runHotpath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !p.Pkg.Notes.Hotpath(p.Pkg.Fset, fn) {
				continue
			}
			checkHotFunc(p, fn)
		}
	}
}

func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, name, fn, n)
		case *ast.CompositeLit:
			p.Reportf(CheckHotpath, n.Pos(),
				"%s is //qa:hotpath: composite literal may allocate", name)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringType(p.TypeOf(n.X)) && !isConstExpr(p, n) {
				p.Reportf(CheckHotpath, n.Pos(),
					"%s is //qa:hotpath: string concatenation allocates", name)
			}
		case *ast.AssignStmt:
			checkHotAssign(p, name, n)
		case *ast.FuncLit:
			reportCaptures(p, name, fn, n)
			// Keep walking inside: the closure body runs on the hot path
			// too when invoked from it.
		case *ast.GoStmt, *ast.DeferStmt:
			p.Reportf(CheckHotpath, n.Pos(),
				"%s is //qa:hotpath: go/defer statements allocate and schedule", name)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, allocating conversions,
// implicit interface conversions at call arguments, transitive
// allocations in static callees, and unresolvable dynamic calls.
func checkHotCall(p *Pass, name string, enclosing *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				p.Reportf(CheckHotpath, call.Pos(),
					"%s is //qa:hotpath: %s allocates", name, b.Name())
			}
			return // other builtins (len, cap, panic(const), …) are fine
		}
	}
	// Explicit conversion T(x): interface boxing and string<->[]byte.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 || isConstExpr(p, call.Args[0]) {
			return
		}
		if types.IsInterface(tv.Type) {
			p.Reportf(CheckHotpath, call.Pos(),
				"%s is //qa:hotpath: conversion to interface %s allocates", name, tv.Type.String())
		} else if stringBytesConversion(tv.Type, p.TypeOf(call.Args[0])) {
			p.Reportf(CheckHotpath, call.Pos(),
				"%s is //qa:hotpath: conversion between string and byte/rune slice allocates", name)
		}
		return
	}
	// Interprocedural edge: the callee must be provably allocation-free
	// through the module call graph.
	checkHotCallee(p, name, enclosing, call)
	// Implicit conversions of arguments to interface parameters.
	sigT := p.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isConstExpr(p, arg) {
			continue
		}
		p.Reportf(CheckHotpath, arg.Pos(),
			"%s is //qa:hotpath: argument converts %s to interface %s (allocates)", name, at.String(), pt.String())
	}
}

// checkHotCallee resolves the call target through the call graph and
// reports callees that are not provably allocation-free: static callees
// whose may-allocate lattice value is true (with the transitive reason
// chain) and dynamic calls that cannot be resolved at all.
func checkHotCallee(p *Pass, name string, enclosing *ast.FuncDecl, call *ast.CallExpr) {
	if p.Prog == nil {
		return
	}
	if callee := StaticCallee(p.Pkg.Info, call); callee != nil {
		if may, why := p.Prog.MayAllocate(callee); may {
			p.Reportf(CheckHotpath, call.Pos(),
				"%s is //qa:hotpath: calls %s, which is not provably allocation-free: %s", name, fnName(callee), why)
		}
		return
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return // directly-invoked literal: body walked by this very pass
	}
	if localFuncLitBinding(p.Pkg.Info, enclosing, call.Fun) != nil {
		return // f := func(){…}; f(): static indirection, body walked
	}
	p.Reportf(CheckHotpath, call.Pos(),
		"%s is //qa:hotpath: dynamic call (func value or interface method) is not provably allocation-free", name)
}

// checkHotAssign flags string += and assignments that box a concrete
// value into an interface-typed location.
func checkHotAssign(p *Pass, name string, s *ast.AssignStmt) {
	if s.Tok.String() == "+=" && len(s.Lhs) == 1 && isStringType(p.TypeOf(s.Lhs[0])) {
		p.Reportf(CheckHotpath, s.Pos(),
			"%s is //qa:hotpath: string concatenation allocates", name)
		return
	}
	if s.Tok.String() != "=" {
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		lt, rt := p.TypeOf(lhs), p.TypeOf(s.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isConstExpr(p, s.Rhs[i]) {
			p.Reportf(CheckHotpath, s.Rhs[i].Pos(),
				"%s is //qa:hotpath: assignment converts %s to interface (allocates)", name, rt.String())
		}
	}
}

// reportCaptures flags the variables a func literal captures from the
// enclosing hot function.
func reportCaptures(p *Pass, name string, enclosing *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal, and not package-level.
		if v.Pos() > enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			p.Reportf(CheckHotpath, lit.Pos(),
				"%s is //qa:hotpath: closure captures %s (allocates its environment)", name, v.Name())
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression has a compile-time
// constant value (constant-to-interface conversions are materialized as
// static data, not heap allocations).
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
