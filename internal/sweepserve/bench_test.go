package sweepserve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

// The dispatch path is not where shards get computed — it is where they
// get routed. These benches measure that routing overhead end to end
// (JSON batch round-trips over loopback HTTP, key cross-checks, store
// writes, fold) against the same sweep run through the in-process
// cached pipeline, so the wire tax per shard is a number, not a vibe.

func benchSpec() experiments.Spec {
	return experiments.Spec{
		Engine:           "stack",
		PERs:             []float64{2e-3, 5e-3},
		Samples:          4,
		ErrorType:        "x",
		WithPauliFrame:   true,
		MaxLogicalErrors: 2,
		MaxWindows:       200,
		BaseSeed:         99,
	}
}

func benchDispatcher(b *testing.B, peers []string, batch int) *Dispatcher {
	b.Helper()
	d, err := NewDispatcher(DispatchOptions{
		Peers: peers, BatchSize: batch, InFlight: 2, Retries: 1,
		Timeout: time.Minute, Backoff: time.Millisecond, LocalWorkers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDispatchRemote runs the full distributed path: coordinator
// store, one loopback worker, four-shard batches. Each iteration uses a
// fresh store so every shard travels.
func BenchmarkDispatchRemote(b *testing.B) {
	spec := benchSpec()
	peers := startBenchWorkers(b, 1)
	d := benchDispatcher(b, peers, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := sweepstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := d.Run(context.Background(), st, spec, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchLocalPipeline is the same sweep through the
// in-process cached pipeline — the baseline the remote path is
// measured against.
func BenchmarkDispatchLocalPipeline(b *testing.B) {
	spec := benchSpec()
	cfg, err := spec.SweepConfig()
	if err != nil {
		b.Fatal(err)
	}
	cfg.Workers = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := sweepstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sweepstore.RunCached(context.Background(), st, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchWarmCache measures the dispatcher's cache-resolve
// path: every shard is a store hit, nothing travels. This bounds the
// coordinator-side overhead of re-running a finished sweep distributed.
func BenchmarkDispatchWarmCache(b *testing.B) {
	spec := benchSpec()
	peers := startBenchWorkers(b, 1)
	d := benchDispatcher(b, peers, 4)
	st, err := sweepstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Run(context.Background(), st, spec, nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(context.Background(), st, spec, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// startBenchWorkers is startWorkers for benchmarks (no testing.T).
func startBenchWorkers(b *testing.B, n int) []string {
	b.Helper()
	urls := make([]string, n)
	for i := range urls {
		ws := httptest.NewServer(NewWorker(WorkerOptions{Workers: 2}))
		b.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	return urls
}
