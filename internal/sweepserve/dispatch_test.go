package sweepserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

// partitionSpec is a sweep with enough shards (15) to partition in
// interesting ways while staying fast to compute.
func partitionSpec() experiments.Spec {
	return experiments.Spec{
		Engine:           "stack",
		PERs:             []float64{2e-3, 5e-3, 1e-2},
		Samples:          5,
		ErrorType:        "x",
		WithPauliFrame:   true,
		MaxLogicalErrors: 3,
		MaxWindows:       400,
		BaseSeed:         7,
	}
}

// serialReference computes the sweep the canonical way: one local
// worker, no cache, no network.
func serialReference(t *testing.T, spec experiments.Spec) ([]experiments.PointResult, []byte) {
	t.Helper()
	cfg, err := spec.SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	pts, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	return pts, blob
}

// failFirstN wraps a worker handler so its first n /v1/shards requests
// fail with a 500 mid-fleet — the retried-worker leg of the partition
// property.
type failFirstN struct {
	inner http.Handler
	n     atomic.Int64
}

func (f *failFirstN) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shards" && f.n.Add(-1) >= 0 {
		http.Error(w, "injected mid-batch failure", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// startWorkers brings up n loopback workers; index 0 optionally fails
// its first failFirst batch requests before recovering.
func startWorkers(t *testing.T, n int, failFirst int64) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		var h http.Handler = NewWorker(WorkerOptions{Workers: 2})
		if i == 0 && failFirst > 0 {
			f := &failFirstN{inner: h}
			f.n.Store(failFirst)
			h = f
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	return urls
}

func newDispatcher(t *testing.T, opt DispatchOptions) *Dispatcher {
	t.Helper()
	if opt.Timeout == 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.Backoff == 0 {
		opt.Backoff = time.Millisecond
	}
	d, err := NewDispatcher(opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDispatchPartitionProperty is the distribution contract as a
// property: for any worker count, batch size, and failure interleaving
// (one worker failing its first requests and being retried), the
// dispatched sweep folds byte-identically to the serial local run.
func TestDispatchPartitionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	spec := partitionSpec()
	want, wantBlob := serialReference(t, spec)

	cases := []struct {
		name      string
		workers   int
		batch     int
		inflight  int
		failFirst int64
	}{
		{name: "1worker_batch1", workers: 1, batch: 1, inflight: 1},
		{name: "1worker_batch4", workers: 1, batch: 4, inflight: 2},
		{name: "2workers_batch3", workers: 2, batch: 3, inflight: 2},
		{name: "3workers_batch5", workers: 3, batch: 5, inflight: 1},
		{name: "2workers_batch7_flaky", workers: 2, batch: 7, inflight: 2, failFirst: 2},
		{name: "3workers_batch1_flaky", workers: 3, batch: 1, inflight: 3, failFirst: 3},
		{name: "batch_larger_than_sweep", workers: 2, batch: 64, inflight: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			peers := startWorkers(t, tc.workers, tc.failFirst)
			d := newDispatcher(t, DispatchOptions{
				Peers: peers, BatchSize: tc.batch, InFlight: tc.inflight, Retries: 3,
			})
			st, err := sweepstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			var points []int
			pts, err := d.Run(context.Background(), st, spec,
				func(p int, _ float64) { points = append(points, p) }, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pts, want) {
				t.Fatalf("dispatched fold diverged from serial run:\ndispatched: %+v\nserial:     %+v", pts, want)
			}
			blob, err := json.Marshal(pts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, wantBlob) {
				t.Fatal("dispatched result bytes differ from serial run")
			}
			wantPoints := []int{0, 1, 2}
			if !reflect.DeepEqual(points, wantPoints) {
				t.Fatalf("progress points %v, want %v (ascending)", points, wantPoints)
			}
			ds := d.Stats()
			if tc.failFirst > 0 && ds.Retries == 0 && ds.PeerFailures == 0 {
				t.Error("flaky worker case recorded neither retries nor failovers")
			}
			if got := ds.RemoteShards + ds.LocalShards; got != int64(spec.NumShards()) {
				t.Errorf("computed shards %d, want %d", got, spec.NumShards())
			}
		})
	}
}

// TestDispatchAllPeersDeadFallsBackLocal: with every peer unreachable,
// the local fallback computes the whole sweep — identical bytes, every
// shard counted local.
func TestDispatchAllPeersDeadFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	spec := partitionSpec()
	want, _ := serialReference(t, spec)

	// Real listeners, closed before dispatch: connection refused.
	dead := make([]string, 2)
	for i := range dead {
		ws := httptest.NewServer(http.NotFoundHandler())
		dead[i] = ws.URL
		ws.Close()
	}
	d := newDispatcher(t, DispatchOptions{
		Peers: dead, BatchSize: 4, InFlight: 2, Retries: 1, Timeout: 5 * time.Second,
	})
	st, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := d.Run(context.Background(), st, spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatal("local-fallback fold diverged from serial run")
	}
	ds := d.Stats()
	if ds.LocalShards != int64(spec.NumShards()) || ds.RemoteShards != 0 {
		t.Errorf("local=%d remote=%d, want %d/0", ds.LocalShards, ds.RemoteShards, spec.NumShards())
	}
	if ds.PeerFailures != 2 {
		t.Errorf("peer failures %d, want 2", ds.PeerFailures)
	}
}

// TestDispatchServesFromCache: shards already in the coordinator store
// never travel — a fully warm cache completes with every peer dead and
// nothing computed.
func TestDispatchServesFromCache(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	spec := partitionSpec()
	want, _ := serialReference(t, spec)
	st, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache through the local pipeline.
	cfg, err := spec.SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweepstore.RunCached(context.Background(), st, cfg, nil); err != nil {
		t.Fatal(err)
	}

	ws := httptest.NewServer(http.NotFoundHandler())
	ws.Close() // dead on arrival: any dispatch attempt would fail over
	d := newDispatcher(t, DispatchOptions{Peers: []string{ws.URL}, BatchSize: 4, InFlight: 1, Retries: 0})
	cached := 0
	pts, err := d.Run(context.Background(), st, spec, nil,
		func(_ experiments.Shard, hit bool) {
			if hit {
				cached++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatal("cache-served fold diverged from serial run")
	}
	if cached != spec.NumShards() {
		t.Errorf("cached %d shards, want all %d", cached, spec.NumShards())
	}
	if ds := d.Stats(); ds.RemoteShards != 0 || ds.LocalShards != 0 {
		t.Errorf("warm cache still computed: remote=%d local=%d", ds.RemoteShards, ds.LocalShards)
	}
}

// TestDispatchRejectsAdaptive: adaptive sweeps are sequential by
// construction and must not be fanned out.
func TestDispatchRejectsAdaptive(t *testing.T) {
	d := newDispatcher(t, DispatchOptions{Peers: []string{"http://127.0.0.1:1"}, BatchSize: 1, InFlight: 1})
	st, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := partitionSpec()
	spec.AdaptRelWidth = 0.1
	if _, err := d.Run(context.Background(), st, spec, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("adaptive spec dispatched: err=%v", err)
	}
}

// TestDispatchOptionsValidate enumerates the rejected configurations.
func TestDispatchOptionsValidate(t *testing.T) {
	good := DispatchOptions{Peers: []string{"http://a:1", "http://b:1"}}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*DispatchOptions)
		wantSub string
	}{
		{"no_peers", func(o *DispatchOptions) { o.Peers = nil }, "no worker peers"},
		{"empty_peer", func(o *DispatchOptions) { o.Peers = []string{"http://a:1", " "} }, "empty"},
		{"duplicate_peer", func(o *DispatchOptions) { o.Peers = []string{"http://a:1", "http://a:1"} }, "duplicate"},
		{"zero_batch", func(o *DispatchOptions) { o.BatchSize = -1 }, "batch size"},
		{"zero_inflight", func(o *DispatchOptions) { o.InFlight = -2 }, "in-flight"},
		{"negative_retries", func(o *DispatchOptions) { o.Retries = -1 }, "retries"},
		{"negative_timeout", func(o *DispatchOptions) { o.Timeout = -time.Second }, "timeout"},
		{"negative_backoff", func(o *DispatchOptions) { o.Backoff = -time.Second }, "backoff"},
		{"negative_workers", func(o *DispatchOptions) { o.LocalWorkers = -1 }, "local workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := good
			tc.mutate(&o)
			err := o.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

// TestParsePeers covers the -peers normalization and rejections.
func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("127.0.0.1:8081, http://127.0.0.1:8082/ ,https://w3.example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:8081", "http://127.0.0.1:8082", "https://w3.example"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	for _, bad := range []string{
		"",
		"a:1,,b:1",
		"127.0.0.1:8081,127.0.0.1:8081",
		"127.0.0.1:8081,http://127.0.0.1:8081", // duplicate after normalization
		"ftp://x:1",
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestWorkerRejects: malformed shard batches are 400s, and the worker
// reports itself on /healthz.
func TestWorkerRejects(t *testing.T) {
	ws := httptest.NewServer(NewWorker(WorkerOptions{}))
	defer ws.Close()

	resp, err := http.Get(ws.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["role"] != "worker" || health["version"] != sweepstore.Version {
		t.Fatalf("worker healthz: %+v", health)
	}

	post := func(body string) int {
		resp, err := http.Post(ws.URL+"/v1/shards", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	specJSON, err := json.Marshal(partitionSpec())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body string
	}{
		{"stale_version", fmt.Sprintf(`{"version":"pf-sweep-v0","spec":%s,"indices":[0]}`, specJSON)},
		{"bad_spec", fmt.Sprintf(`{"version":%q,"spec":{"engine":"warp","pers":[0.1]},"indices":[0]}`, sweepstore.Version)},
		{"empty_batch", fmt.Sprintf(`{"version":%q,"spec":%s,"indices":[]}`, sweepstore.Version, specJSON)},
		{"index_out_of_range", fmt.Sprintf(`{"version":%q,"spec":%s,"indices":[99]}`, sweepstore.Version, specJSON)},
		{"negative_index", fmt.Sprintf(`{"version":%q,"spec":%s,"indices":[-1]}`, sweepstore.Version, specJSON)},
		{"unknown_field", fmt.Sprintf(`{"version":%q,"spec":%s,"indices":[0],"bogus":1}`, sweepstore.Version, specJSON)},
		{"garbage", `{`},
	}
	for _, tc := range cases {
		if code := post(tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
}

// TestWorkerStoreCache: a worker with its own store serves repeated
// batches from cache, and the second response is byte-identical.
func TestWorkerStoreCache(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	st, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerOptions{Store: st, Workers: 2})
	ws := httptest.NewServer(w)
	defer ws.Close()

	spec := partitionSpec()
	body, err := json.Marshal(ShardBatchRequest{Version: sweepstore.Version, Spec: spec, Indices: []int{0, 3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	fetch := func() []byte {
		resp, err := http.Post(ws.URL+"/v1/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards: status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := fetch()
	second := fetch()
	if !bytes.Equal(first, second) {
		t.Fatal("cached batch response differs from computed one")
	}
	if got := w.cached.Load(); got != 3 {
		t.Errorf("cached counter %d, want 3", got)
	}
	if got := w.computed.Load(); got != 3 {
		t.Errorf("computed counter %d, want 3", got)
	}
}

// TestRunShardBatchComposesToRunSpec: any partition of the shard index
// space, computed batch by batch, reassembles into exactly the serial
// sweep (the pure-function contract RunShardBatch exports).
func TestRunShardBatchComposesToRunSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	spec := partitionSpec()
	want, _ := serialReference(t, spec)
	n := spec.NumShards()

	for _, batch := range []int{1, 4, n} {
		runs := make([][]experiments.LERResult, n)
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			indices := make([]int, 0, hi-lo)
			// Reverse order within the batch: index order must not matter.
			for i := hi - 1; i >= lo; i-- {
				indices = append(indices, i)
			}
			got, err := experiments.RunShardBatch(context.Background(), spec, indices, experiments.RunOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for k, i := range indices {
				runs[i] = got[k]
			}
		}
		pts := experiments.FoldShards(spec, runs)
		if !reflect.DeepEqual(pts, want) {
			t.Fatalf("batch=%d: composed fold diverged from serial sweep", batch)
		}
	}
}

// TestServerDistributedEndToEnd drives the whole distributed stack
// through HTTP: a coordinator with two loopback workers (one flaky)
// completes a submitted sweep with result bytes identical to a
// single-machine single-worker server over a fresh store.
func TestServerDistributedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e skipped in -short mode")
	}
	spec := partitionSpec()

	// Reference: an ordinary local server, one worker.
	_, ref := newTestServer(t, t.TempDir(), 1)
	refID := submit(t, ref.URL, spec).ID
	waitDone(t, ref.URL, refID)
	_, wantRaw := getResult(t, ref.URL, refID)

	// Distributed: coordinator + two workers, the first failing its
	// first batch request before recovering.
	peers := startWorkers(t, 2, 1)
	st, err := sweepstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := newDispatcher(t, DispatchOptions{Peers: peers, BatchSize: 2, InFlight: 2, Retries: 2})
	srv, err := New(Options{Store: st, Workers: 1, Dispatch: d})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	id := submit(t, ts.URL, spec).ID
	if id != refID {
		t.Fatalf("distributed job ID %s, reference %s", id, refID)
	}
	final := waitDone(t, ts.URL, id)
	if final.Shards.Computed != spec.NumShards() {
		t.Errorf("computed %d shards, want %d", final.Shards.Computed, spec.NumShards())
	}
	_, raw := getResult(t, ts.URL, id)
	if !bytes.Equal(raw, wantRaw) {
		t.Fatal("distributed result bytes differ from single-machine run")
	}

	// The dispatch counters surface on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"sweepd_dispatch_peers 2",
		"sweepd_dispatch_batches_total",
		"sweepd_dispatch_shards_remote",
		"sweepd_store_bytes",
		"sweepd_store_gc_runs 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
