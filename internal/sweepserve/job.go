package sweepserve

import (
	"context"
	"sync"

	"repro/internal/experiments"
)

// Job states. A job not in memory but checkpointed in the store reports
// stateStored until it is resumed.
const (
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
	stateStored  = "stored"
)

// SSE event names. Point events carry PointEvent payloads; the terminal
// done/failed events carry the final StatusResponse.
const (
	eventPoint  = "point"
	eventDone   = "done"
	eventFailed = "failed"
)

// PointEvent is the SSE payload of one completed sweep point. Points
// are announced strictly in ascending order — the pipeline's in-order
// Progress collector serializes them — so a subscriber can render a
// monotone progress bar whatever the worker interleaving was.
type PointEvent struct {
	Point int     `json:"point"`
	PER   float64 `json:"per"`
}

type sseEvent struct {
	Name string
	Data any
}

// job tracks one submitted sweep through the pipeline.
type job struct {
	id    string
	spec  experiments.Spec
	total int

	cancel context.CancelFunc

	mu         sync.Mutex
	state      string
	computed   int
	cached     int
	pointsDone int
	result     []experiments.PointResult
	errMsg     string
	log        []sseEvent // replay buffer for late subscribers
	subs       []chan sseEvent
}

func newJob(id string, spec experiments.Spec) *job {
	return &job{
		id:    id,
		spec:  spec,
		total: spec.NumShards(),
		state: stateRunning,
	}
}

func (j *job) running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateRunning
}

// stop cancels the job's pipeline context, if it is still running.
func (j *job) stop() {
	if j.cancel != nil {
		j.cancel()
	}
}

// noteShard records one resolved shard (called concurrently from the
// pipeline's worker goroutines).
func (j *job) noteShard(cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cached {
		j.cached++
	} else {
		j.computed++
	}
}

// pointDone records and broadcasts one completed point (called from the
// pipeline's progress collector goroutine, in ascending point order).
func (j *job) pointDone(point int, per float64) {
	j.mu.Lock()
	j.pointsDone++
	j.emitLocked(sseEvent{Name: eventPoint, Data: PointEvent{Point: point, PER: per}})
	j.mu.Unlock()
}

// finish marks the job done and broadcasts the terminal event.
func (j *job) finish(pts []experiments.PointResult) {
	j.mu.Lock()
	j.state = stateDone
	j.result = pts
	j.emitLocked(sseEvent{Name: eventDone, Data: j.snapshotLocked()})
	j.mu.Unlock()
}

// fail marks the job failed. A cancelled context counts as a failure
// too: the client sees "context canceled" and may resume later.
func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = err.Error()
	j.emitLocked(sseEvent{Name: eventFailed, Data: j.snapshotLocked()})
	j.mu.Unlock()
}

// emitLocked appends to the replay log and fans out to subscribers.
// Each subscriber channel is buffered for the job's full event budget
// (every point once plus one terminal event), so sends never block.
func (j *job) emitLocked(ev sseEvent) {
	j.log = append(j.log, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
}

// eventCap is the largest number of events a job can emit: one per
// point plus one terminal event.
func (j *job) eventCap() int { return len(j.spec.PERs) + 1 }

// subscribe registers an SSE subscriber and replays the event log into
// its buffered channel before any live event can interleave.
func (j *job) subscribe() chan sseEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan sseEvent, j.eventCap())
	for _, ev := range j.log {
		ch <- ev
	}
	j.subs = append(j.subs, ch)
	return ch
}

// unsubscribe removes a subscriber registered by subscribe.
func (j *job) unsubscribe(ch chan sseEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// results returns the folded sweep results (valid once done).
func (j *job) results() []experiments.PointResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *job) snapshot() StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() StatusResponse {
	return StatusResponse{
		ID:         j.id,
		State:      j.state,
		Points:     len(j.spec.PERs),
		PointsDone: j.pointsDone,
		Shards:     ShardCounts{Total: j.total, Computed: j.computed, Cached: j.cached},
		HasResult:  j.state == stateDone,
		Error:      j.errMsg,
	}
}
