// The worker half of the distributed sweep fan-out: a Worker is a
// small HTTP service that accepts batches of shard indices for a spec,
// computes exactly those shards with the local engine stack
// (experiments.RunShardBatch — same engines, same seeds, same bits as
// the coordinator would use), and returns the runs tagged with each
// shard's content address. Results are a pure function of the shard
// configuration, so where a shard was computed is unobservable in the
// folded sweep.
//
// Routes:
//
//	GET  /healthz     liveness + config-hash version + role
//	GET  /metrics     plain-text counters
//	POST /v1/shards   compute {"version": ..., "spec": {...}, "indices": [...]}
//
// A worker may carry its own sweepstore as a local shard cache: the
// shard keys are network-portable content addresses, so a shard a
// worker computed for one coordinator is a cache hit for any other.
package sweepserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Store, when non-nil, is the worker's local shard cache. Optional:
	// a storeless worker recomputes every shard it is handed.
	Store *sweepstore.Store
	// Workers bounds the per-batch compute pool. Zero means GOMAXPROCS.
	Workers int
}

// Worker is the remote shard-compute service. It implements
// http.Handler.
type Worker struct {
	store   *sweepstore.Store
	workers int
	mux     *http.ServeMux

	batches  atomic.Int64
	computed atomic.Int64
	cached   atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64
}

// NewWorker builds a Worker.
func NewWorker(opt WorkerOptions) *Worker {
	w := &Worker{
		store:   opt.Store,
		workers: opt.Workers,
		mux:     http.NewServeMux(),
	}
	w.mux.HandleFunc("GET /healthz", w.handleHealthz)
	w.mux.HandleFunc("GET /metrics", w.handleMetrics)
	w.mux.HandleFunc("POST /v1/shards", w.handleShards)
	return w
}

// ServeHTTP dispatches to the route table.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// ShardBatchRequest is the POST /v1/shards wire format. Version must
// match the worker's sweepstore.Version — shard results computed under
// one config-hash scheme must never satisfy a coordinator speaking
// another.
type ShardBatchRequest struct {
	Version string           `json:"version"`
	Spec    experiments.Spec `json:"spec"`
	Indices []int            `json:"indices"`
}

// ShardResult is one computed shard: its index in the spec's shard
// enumeration, its content address under the worker's config-hash
// version (the coordinator cross-checks it against its own key — a
// mismatch means the two sides disagree about what was computed), and
// the per-run results.
type ShardResult struct {
	Index int                     `json:"index"`
	Key   string                  `json:"key"`
	Runs  []experiments.LERResult `json:"runs"`
}

// ShardBatchResponse is the POST /v1/shards response: one ShardResult
// per requested index, in request order.
type ShardBatchResponse struct {
	Shards []ShardResult `json:"shards"`
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]string{
		"status":  "ok",
		"role":    "worker",
		"version": sweepstore.Version,
	})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "sweepworker_batches_total %d\n", w.batches.Load())
	fmt.Fprintf(&buf, "sweepworker_shards_computed %d\n", w.computed.Load())
	fmt.Fprintf(&buf, "sweepworker_shards_cached %d\n", w.cached.Load())
	fmt.Fprintf(&buf, "sweepworker_rejects_total %d\n", w.rejected.Load())
	fmt.Fprintf(&buf, "sweepworker_failures_total %d\n", w.failed.Load())
	if w.store != nil {
		writeStoreMetrics(&buf, "sweepworker", w.store)
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//qa:allow errcheck client disconnect mid-response is unactionable
	rw.Write(buf.Bytes())
}

// handleShards computes one shard batch. Validation failures are 400s
// (the coordinator gives up on the batch immediately rather than
// retrying a request that cannot succeed); compute and store errors are
// 500s (retryable — the coordinator retries, fails the worker over, or
// falls back to local compute).
func (w *Worker) handleShards(rw http.ResponseWriter, r *http.Request) {
	w.batches.Add(1)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ShardBatchRequest
	if err := dec.Decode(&req); err != nil {
		w.rejected.Add(1)
		writeError(rw, http.StatusBadRequest, "decode shard batch: %v", err)
		return
	}
	if req.Version != sweepstore.Version {
		w.rejected.Add(1)
		writeError(rw, http.StatusBadRequest,
			"config-hash version mismatch: coordinator %q, worker %q — a shard computed under one version must not satisfy the other",
			req.Version, sweepstore.Version)
		return
	}
	spec := req.Spec.Normalized()
	if err := spec.Validate(); err != nil {
		w.rejected.Add(1)
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Indices) == 0 {
		w.rejected.Add(1)
		writeError(rw, http.StatusBadRequest, "empty shard batch")
		return
	}
	n := spec.NumShards()
	keys := make([]string, len(req.Indices))
	for k, i := range req.Indices {
		if i < 0 || i >= n {
			w.rejected.Add(1)
			writeError(rw, http.StatusBadRequest, "shard index %d out of range [0,%d)", i, n)
			return
		}
		key, err := sweepstore.ShardKey(spec.ShardConfig(spec.Shard(i)))
		if err != nil {
			w.failed.Add(1)
			writeError(rw, http.StatusInternalServerError, "%v", err)
			return
		}
		keys[k] = key
	}

	opt := experiments.RunOptions{Workers: w.workers}
	if w.store != nil {
		// The batch positions of one request are disjoint, so the worker
		// goroutines index keys without locking. Position lookup walks the
		// (small) batch linearly; batches are tens of shards, not millions.
		pos := func(index int) int {
			for k, i := range req.Indices {
				if i == index {
					return k
				}
			}
			return -1
		}
		opt.Lookup = func(sh experiments.Shard) ([]experiments.LERResult, bool) {
			runs, ok := w.store.GetShard(keys[pos(sh.Index)], sh.Count, sh.Seed)
			if ok {
				w.cached.Add(1)
			}
			return runs, ok
		}
		opt.Persist = func(sh experiments.Shard, runs []experiments.LERResult) error {
			w.computed.Add(1)
			return w.store.PutShard(keys[pos(sh.Index)], sh.Seed, runs)
		}
	}
	runs, err := experiments.RunShardBatch(r.Context(), spec, req.Indices, opt)
	if err != nil {
		w.failed.Add(1)
		writeError(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := ShardBatchResponse{Shards: make([]ShardResult, len(req.Indices))}
	for k, i := range req.Indices {
		if w.store == nil {
			w.computed.Add(1) // with a store, Lookup/Persist counted the split
		}
		resp.Shards[k] = ShardResult{Index: i, Key: keys[k], Runs: runs[k]}
	}
	writeJSON(rw, http.StatusOK, resp)
}

// writeStoreMetrics appends one store's counters under a metric prefix
// (shared by the coordinator's and the worker's /metrics).
func writeStoreMetrics(buf *bytes.Buffer, prefix string, st *sweepstore.Store) {
	stats := st.Stats()
	fmt.Fprintf(buf, "%s_store_shard_hits %d\n", prefix, stats.ShardHits)
	fmt.Fprintf(buf, "%s_store_shard_misses %d\n", prefix, stats.ShardMisses)
	fmt.Fprintf(buf, "%s_store_shard_writes %d\n", prefix, stats.ShardWrites)
	fmt.Fprintf(buf, "%s_store_bytes %d\n", prefix, stats.ShardBytes)
	fmt.Fprintf(buf, "%s_store_max_bytes %d\n", prefix, st.MaxBytes())
	fmt.Fprintf(buf, "%s_store_gc_runs %d\n", prefix, stats.GCRuns)
	fmt.Fprintf(buf, "%s_store_gc_evicted %d\n", prefix, stats.GCEvicted)
	fmt.Fprintf(buf, "%s_store_gc_reclaimed_bytes %d\n", prefix, stats.GCReclaimedBytes)
}
