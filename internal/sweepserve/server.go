// Package sweepserve is the HTTP/JSON sweep service behind cmd/sweepd:
// networked, crash-safe access to the deterministic sweep pipeline.
// Submitted specs are content-addressed (the job ID is the spec hash),
// every finished shard is checkpointed in an internal/sweepstore cache,
// and identical sub-sweeps are served from that cache instead of
// recomputed — so resubmitting a finished spec is a 100% cache hit, and
// a server restarted over the same store resumes interrupted sweeps to
// results bit-identical with an uninterrupted single-worker run.
//
// Routes:
//
//	GET  /healthz                   liveness + config-hash version
//	GET  /metrics                   plain-text counters
//	POST /v1/sweeps                 submit {"version": ..., "spec": {...}}
//	GET  /v1/sweeps/{id}            job status
//	GET  /v1/sweeps/{id}/result     folded PointResults (when done)
//	GET  /v1/sweeps/{id}/events     SSE progress stream
//	POST /v1/sweeps/{id}/resume     restart a stored job after a crash
package sweepserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

// Options configures a Server.
type Options struct {
	// Store is the content-addressed result store (required).
	Store *sweepstore.Store
	// Workers bounds each job's worker pool. Zero means GOMAXPROCS.
	Workers int
	// Dispatch, when non-nil, fans shard compute out to its remote
	// worker set. Adaptive sweeps (sequential by construction) still run
	// through the local cached pipeline.
	Dispatch *Dispatcher
}

// Server is the sweep service. It implements http.Handler.
type Server struct {
	store    *sweepstore.Store
	workers  int
	dispatch *Dispatcher
	mux      *http.ServeMux

	mu   sync.Mutex
	jobs map[string]*job

	inflight atomic.Int64
	submits  atomic.Int64
}

// New builds a Server over opt.Store.
func New(opt Options) (*Server, error) {
	if opt.Store == nil {
		return nil, fmt.Errorf("sweepserve: nil store")
	}
	s := &Server{
		store:    opt.Store,
		workers:  opt.Workers,
		dispatch: opt.Dispatch,
		mux:      http.NewServeMux(),
		jobs:     make(map[string]*job),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/sweeps/{id}/resume", s.handleResume)
	return s, nil
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running job (used on shutdown and in tests).
func (s *Server) Close() {
	for _, j := range s.jobList() {
		j.stop()
	}
}

// jobList snapshots the job table (map iteration stays order-free:
// callers only aggregate or fan out order-independent operations).
func (s *Server) jobList() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	return js
}

// SubmitRequest is the POST /v1/sweeps wire format. Version must match
// the server's sweepstore.Version: the config hash scheme is part of
// result semantics, and serving a cache written under another scheme
// would silently return stale results.
type SubmitRequest struct {
	Version string           `json:"version"`
	Spec    experiments.Spec `json:"spec"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ShardCounts reports a job's shard accounting.
type ShardCounts struct {
	Total    int `json:"total"`
	Computed int `json:"computed"`
	Cached   int `json:"cached"`
}

// StatusResponse is the job-status wire format.
type StatusResponse struct {
	ID         string      `json:"id"`
	State      string      `json:"state"`
	Points     int         `json:"points"`
	PointsDone int         `json:"points_done"`
	Shards     ShardCounts `json:"shards"`
	HasResult  bool        `json:"has_result"`
	Error      string      `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode error here means the client hung up; there is no one
	// left to report it to.
	//qa:allow errcheck client disconnect mid-response is unactionable
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": sweepstore.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var running, done, failed int
	var computed, cached int
	for _, j := range s.jobList() {
		st := j.snapshot()
		switch st.State {
		case stateRunning:
			running++
		case stateDone:
			done++
		case stateFailed:
			failed++
		}
		computed += st.Shards.Computed
		cached += st.Shards.Cached
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "sweepd_jobs_inflight %d\n", s.inflight.Load())
	fmt.Fprintf(&buf, "sweepd_jobs_running %d\n", running)
	fmt.Fprintf(&buf, "sweepd_jobs_done %d\n", done)
	fmt.Fprintf(&buf, "sweepd_jobs_failed %d\n", failed)
	fmt.Fprintf(&buf, "sweepd_submits_total %d\n", s.submits.Load())
	fmt.Fprintf(&buf, "sweepd_shards_computed %d\n", computed)
	fmt.Fprintf(&buf, "sweepd_shards_cached %d\n", cached)
	writeStoreMetrics(&buf, "sweepd", s.store)
	if d := s.dispatch; d != nil {
		ds := d.Stats()
		fmt.Fprintf(&buf, "sweepd_dispatch_peers %d\n", len(d.Peers()))
		fmt.Fprintf(&buf, "sweepd_dispatch_batches_total %d\n", ds.Batches)
		fmt.Fprintf(&buf, "sweepd_dispatch_retries_total %d\n", ds.Retries)
		fmt.Fprintf(&buf, "sweepd_dispatch_peer_failures_total %d\n", ds.PeerFailures)
		fmt.Fprintf(&buf, "sweepd_dispatch_shards_remote %d\n", ds.RemoteShards)
		fmt.Fprintf(&buf, "sweepd_dispatch_shards_local %d\n", ds.LocalShards)
		fmt.Fprintf(&buf, "sweepd_dispatch_inflight %d\n", ds.InFlight)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//qa:allow errcheck client disconnect mid-response is unactionable
	w.Write(buf.Bytes())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submits.Add(1)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode submit request: %v", err)
		return
	}
	if req.Version != sweepstore.Version {
		writeError(w, http.StatusBadRequest,
			"config-hash version mismatch: client %q, server %q — results cached under one version are not valid under another; upgrade the client or server",
			req.Version, sweepstore.Version)
		return
	}
	spec := req.Spec.Normalized()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, status, err := s.startJob(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, status, j.snapshot())
}

// startJob registers (or reuses) the job for spec and starts its run.
// A running job is returned as-is; a finished or failed one is replaced
// by a fresh run, which serves from the shard cache where possible.
func (s *Server) startJob(spec experiments.Spec) (*job, int, error) {
	id, err := sweepstore.SpecKey(spec)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.running() {
		s.mu.Unlock()
		return j, http.StatusOK, nil
	}
	j := newJob(id, spec)
	s.jobs[id] = j
	s.mu.Unlock()

	// Checkpoint the spec first: a crash after this point leaves a job
	// that `sweepd resume` can restart by ID.
	if err := s.store.PutSpec(id, spec); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	go s.runJob(ctx, j)
	return j, http.StatusAccepted, nil
}

// runJob drives one sweep to a stored result: through the distributed
// dispatcher when one is configured (and the sweep is distributable),
// through the shared local cached pipeline otherwise. Both paths write
// the same shards to the same store and fold in the same index order,
// so the result bytes do not depend on the route.
func (s *Server) runJob(ctx context.Context, j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	pts, err := s.runSweep(ctx, j)
	if err != nil {
		j.fail(err)
		return
	}
	if err := s.store.PutResult(j.id, pts); err != nil {
		j.fail(err)
		return
	}
	j.finish(pts)
}

// runSweep computes a job's points. Adaptive sweeps stay local: their
// Wilson-interval stop rule decides each batch from the last one's
// counts, a sequential dependency no fan-out can honor.
func (s *Server) runSweep(ctx context.Context, j *job) ([]experiments.PointResult, error) {
	//qa:allow float-eq zero is the adaptive-off sentinel, an exact flag value not a measurement
	if s.dispatch != nil && j.spec.AdaptRelWidth == 0 {
		return s.dispatch.Run(ctx, s.store, j.spec,
			func(point int, per float64) { j.pointDone(point, per) },
			func(_ experiments.Shard, cached bool) { j.noteShard(cached) })
	}
	cfg, err := j.spec.SweepConfig()
	if err != nil {
		return nil, err
	}
	cfg.Workers = s.workers
	cfg.Progress = func(point int, per float64) { j.pointDone(point, per) }
	return sweepstore.RunCached(ctx, s.store, cfg, func(_ experiments.Shard, cached bool) {
		j.noteShard(cached)
	})
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := s.jobByID(id); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	// Not in memory: report what the store knows (a checkpointed job
	// from a previous server life).
	spec, ok, err := s.store.GetSpec(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %s", id)
		return
	}
	_, hasResult, err := s.store.GetResult(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		ID:     id,
		State:  stateStored,
		Points: len(spec.PERs),
		Shards: ShardCounts{Total: spec.NumShards()},
		// HasResult means GET result works without resuming.
		HasResult: hasResult,
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := s.jobByID(id); j != nil {
		st := j.snapshot()
		switch st.State {
		case stateDone:
			writeJSON(w, http.StatusOK, j.results())
			return
		case stateFailed:
			writeError(w, http.StatusConflict, "sweep %s failed: %s", id, st.Error)
			return
		case stateRunning:
			writeError(w, http.StatusConflict, "sweep %s still running (%d/%d points)", id, st.PointsDone, st.Points)
			return
		}
	}
	pts, ok, err := s.store.GetResult(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no result for sweep %s", id)
		return
	}
	writeJSON(w, http.StatusOK, pts)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.running() {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	s.mu.Unlock()
	spec, ok, err := s.store.GetSpec(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %s (submit it first)", id)
		return
	}
	j, status, err := s.startJob(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, status, j.snapshot())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobByID(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no live job for sweep %s (resume it to stream progress)", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := j.subscribe()
	defer j.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			blob, err := json.Marshal(ev.Data)
			if err != nil {
				return
			}
			//qa:allow errcheck SSE client disconnect surfaces via the request context
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, blob)
			flusher.Flush()
			if ev.Name == eventDone || ev.Name == eventFailed {
				return
			}
		}
	}
}
