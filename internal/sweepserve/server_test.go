package sweepserve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

func testSpec() experiments.Spec {
	return experiments.Spec{
		Engine:           "stack",
		PERs:             []float64{3e-3, 8e-3},
		Samples:          2,
		ErrorType:        "x",
		WithPauliFrame:   true,
		MaxLogicalErrors: 4,
		MaxWindows:       3000,
		BaseSeed:         424242,
	}
}

func newTestServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	st, err := sweepstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: st, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func submit(t *testing.T, base string, spec experiments.Spec) StatusResponse {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Version: sweepstore.Version, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, base, id string) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case stateDone:
			return st
		case stateFailed:
			t.Fatalf("sweep %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getResult(t *testing.T, base, id string) ([]experiments.PointResult, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	var pts []experiments.PointResult
	if err := json.NewDecoder(io2(&buf, resp)).Decode(&pts); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	return pts, buf.Bytes()
}

// io2 tees the response body so tests can compare raw bytes.
func io2(buf *bytes.Buffer, resp *http.Response) *teeReader { return &teeReader{resp: resp, buf: buf} }

type teeReader struct {
	resp *http.Response
	buf  *bytes.Buffer
}

func (r *teeReader) Read(p []byte) (int, error) {
	n, err := r.resp.Body.Read(p)
	r.buf.Write(p[:n])
	return n, err
}

// TestServerEndToEnd is the service contract in one flow: submit and
// poll a sweep over HTTP; its result is bit-identical with a local
// Workers=1 run; resubmitting the identical spec is a 100% cache hit;
// and a second server over the same store ("restart") resumes the job
// to the identical result without computing anything.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("server e2e skipped in -short mode")
	}
	spec := testSpec()
	cfg, err := spec.SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	want, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, ts := newTestServer(t, dir, 4)
	st := submit(t, ts.URL, spec)
	if st.ID == "" || st.Shards.Total != spec.NumShards() {
		t.Fatalf("submit status: %+v", st)
	}
	id := st.ID

	final := waitDone(t, ts.URL, id)
	if final.Shards.Computed != spec.NumShards() || final.Shards.Cached != 0 {
		t.Errorf("first run: computed=%d cached=%d, want %d/0",
			final.Shards.Computed, final.Shards.Cached, spec.NumShards())
	}
	if final.PointsDone != len(spec.PERs) {
		t.Errorf("first run: points_done=%d, want %d", final.PointsDone, len(spec.PERs))
	}
	pts, raw1 := getResult(t, ts.URL, id)
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("server result diverged from local Workers=1 run:\nserver: %+v\nlocal:  %+v", pts, want)
	}

	// Identical spec resubmission: served fully from the shard cache.
	st2 := submit(t, ts.URL, spec)
	if st2.ID != id {
		t.Fatalf("identical spec hashed to a different job: %s vs %s", st2.ID, id)
	}
	rerun := waitDone(t, ts.URL, id)
	if rerun.Shards.Cached != spec.NumShards() || rerun.Shards.Computed != 0 {
		t.Errorf("resubmission: computed=%d cached=%d, want 0/%d",
			rerun.Shards.Computed, rerun.Shards.Cached, spec.NumShards())
	}
	_, raw2 := getResult(t, ts.URL, id)
	if !bytes.Equal(raw1, raw2) {
		t.Error("cached rerun served different result bytes")
	}

	// "Restart": a fresh server over the same store. The result is
	// immediately servable, status reports the checkpointed job, and
	// resume replays it without recomputation.
	ts.Close()
	_, ts2 := newTestServer(t, dir, 2)
	resp, err := http.Get(ts2.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var stored StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stored.State != stateStored || !stored.HasResult {
		t.Fatalf("restarted server status: %+v, want stored with result", stored)
	}
	resp, err = http.Post(ts2.URL+"/v1/sweeps/"+id+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resumed := waitDone(t, ts2.URL, id)
	if resumed.Shards.Computed != 0 || resumed.Shards.Cached != spec.NumShards() {
		t.Errorf("resume after restart: computed=%d cached=%d, want 0/%d",
			resumed.Shards.Computed, resumed.Shards.Cached, spec.NumShards())
	}
	pts3, raw3 := getResult(t, ts2.URL, id)
	if !reflect.DeepEqual(pts3, want) || !bytes.Equal(raw1, raw3) {
		t.Error("resumed result diverged from the original run")
	}
}

// TestServerEventsStream subscribes to the SSE stream and requires the
// in-order point events plus a terminal done event.
func TestServerEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("server e2e skipped in -short mode")
	}
	spec := testSpec()
	_, ts := newTestServer(t, t.TempDir(), 2)
	id := submit(t, ts.URL, spec).ID

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var names []string
	var points []int
	scanner := bufio.NewScanner(resp.Body)
	current := ""
	for scanner.Scan() {
		line := scanner.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			current = name
			names = append(names, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && current == eventPoint {
			var pe PointEvent
			if err := json.Unmarshal([]byte(data), &pe); err != nil {
				t.Fatal(err)
			}
			points = append(points, pe.Point)
		}
		if current == eventDone || current == eventFailed {
			break
		}
	}
	if len(names) == 0 || names[len(names)-1] != eventDone {
		t.Fatalf("event names %v, want trailing %q", names, eventDone)
	}
	wantPoints := make([]int, len(spec.PERs))
	for i := range wantPoints {
		wantPoints[i] = i
	}
	if !reflect.DeepEqual(points, wantPoints) {
		t.Fatalf("point events %v, want %v (strictly ascending)", points, wantPoints)
	}
}

// TestServerRejectsBadSubmissions: version mismatches and invalid specs
// are 400s, never silently served.
func TestServerRejectsBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, er.Error
	}

	specJSON, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	code, msg := post(fmt.Sprintf(`{"version":"pf-sweep-v0","spec":%s}`, specJSON))
	if code != http.StatusBadRequest || !strings.Contains(msg, "version mismatch") {
		t.Errorf("stale version: code %d, msg %q", code, msg)
	}
	code, msg = post(fmt.Sprintf(`{"version":%q,"spec":{"engine":"warp","pers":[0.001]}}`, sweepstore.Version))
	if code != http.StatusBadRequest || !strings.Contains(msg, "unknown engine") {
		t.Errorf("bad engine: code %d, msg %q", code, msg)
	}
	code, _ = post(fmt.Sprintf(`{"version":%q,"spec":{"pers":[]}}`, sweepstore.Version))
	if code != http.StatusBadRequest {
		t.Errorf("empty pers: code %d", code)
	}
	code, _ = post(`{"version":` + fmt.Sprintf("%q", sweepstore.Version) + `,"spec":{"pers":[0.001]},"bogus":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d", code)
	}

	// Unknown job IDs are 404s on every job route.
	for _, path := range []string{"/v1/sweeps/deadbeef", "/v1/sweeps/deadbeef/result", "/v1/sweeps/deadbeef/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: code %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps/deadbeef/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("resume unknown: code %d, want 404", resp.StatusCode)
	}
}

// TestServerHealthAndMetrics sanity-checks the observability routes.
func TestServerHealthAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("server e2e skipped in -short mode")
	}
	_, ts := newTestServer(t, t.TempDir(), 2)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["version"] != sweepstore.Version {
		t.Fatalf("healthz: %+v", health)
	}

	spec := testSpec()
	id := submit(t, ts.URL, spec).ID
	waitDone(t, ts.URL, id)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		sb.WriteString(scanner.Text())
		sb.WriteString("\n")
	}
	resp.Body.Close()
	metrics := sb.String()
	for _, want := range []string{
		"sweepd_jobs_done 1",
		fmt.Sprintf("sweepd_shards_computed %d", spec.NumShards()),
		fmt.Sprintf("sweepd_store_shard_writes %d", spec.NumShards()),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
