// The coordinator half of the distributed sweep fan-out: a Dispatcher
// partitions a job's missing shards into batches and streams them to a
// configured set of remote workers, pipelined — each peer keeps a
// bounded number of batches in flight and pulls the next the moment one
// completes, so a slow peer never stalls the rest of the fleet behind a
// barrier. Failures degrade, never corrupt: a batch that errors is
// retried on its peer with exponential backoff, a peer that exhausts
// its retries is marked dead and its batch requeued for the survivors,
// and when every peer is dead a local fallback drains the queue with
// the coordinator's own engine stack. Because every shard's runs are a
// pure function of its ShardConfig and the fold visits shards in index
// order, the merged results are byte-identical to a local -workers 1
// run for any worker set, batch size, or failure interleaving.
package sweepserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweepstore"
)

// Dispatch tuning defaults.
const (
	// DefaultBatchSize is the number of shards per dispatched batch.
	DefaultBatchSize = 8
	// DefaultInFlight is the number of batches each peer keeps in flight.
	DefaultInFlight = 2
	// DefaultRetries is the number of re-attempts on the same peer after
	// a failed batch, before the peer is marked dead.
	DefaultRetries = 2
	// DefaultTimeout bounds one batch request.
	DefaultTimeout = 2 * time.Minute
	// DefaultBackoff is the first retry delay (doubled per retry).
	DefaultBackoff = 250 * time.Millisecond
)

// DispatchOptions configures a Dispatcher.
type DispatchOptions struct {
	// Peers are the worker base URLs (normalize with ParsePeers).
	// Required: at least one, no duplicates, no empties.
	Peers []string
	// BatchSize is the number of shards per dispatched batch (> 0).
	BatchSize int
	// InFlight bounds each peer's concurrently outstanding batches (> 0).
	InFlight int
	// Retries is the number of re-attempts on the same peer after a
	// failed batch (>= 0); after that the peer is marked dead and the
	// batch fails over.
	Retries int
	// Timeout bounds one batch request end to end (> 0).
	Timeout time.Duration
	// Backoff is the first retry delay, doubled per retry (>= 0).
	Backoff time.Duration
	// LocalWorkers bounds the local-fallback compute pool. Zero means
	// GOMAXPROCS.
	LocalWorkers int
}

// withDefaults fills the zero-valued tuning knobs.
func (o DispatchOptions) withDefaults() DispatchOptions {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.InFlight == 0 {
		o.InFlight = DefaultInFlight
	}
	if o.Timeout == 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Backoff == 0 {
		o.Backoff = DefaultBackoff
	}
	return o
}

// Validate rejects option sets that cannot dispatch: no peers,
// duplicate or empty peer addresses, or non-positive tuning knobs. The
// flag layer calls this before any work runs (exit 2), the constructor
// re-checks it.
func (o DispatchOptions) Validate() error {
	if len(o.Peers) == 0 {
		return fmt.Errorf("dispatch: no worker peers configured")
	}
	seen := make(map[string]int, len(o.Peers))
	for i, p := range o.Peers {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("dispatch: peer %d is empty", i)
		}
		if j, dup := seen[p]; dup {
			return fmt.Errorf("dispatch: duplicate peer %q (positions %d and %d)", p, j, i)
		}
		seen[p] = i
	}
	if o.BatchSize <= 0 {
		return fmt.Errorf("dispatch: batch size must be > 0, got %d", o.BatchSize)
	}
	if o.InFlight <= 0 {
		return fmt.Errorf("dispatch: in-flight bound must be > 0, got %d", o.InFlight)
	}
	if o.Retries < 0 {
		return fmt.Errorf("dispatch: retries must be >= 0, got %d", o.Retries)
	}
	if o.Timeout <= 0 {
		return fmt.Errorf("dispatch: timeout must be positive, got %v", o.Timeout)
	}
	if o.Backoff < 0 {
		return fmt.Errorf("dispatch: backoff must be >= 0, got %v", o.Backoff)
	}
	if o.LocalWorkers < 0 {
		return fmt.Errorf("dispatch: local workers must be >= 0, got %d", o.LocalWorkers)
	}
	return nil
}

// ParsePeers splits a comma-separated worker list into normalized base
// URLs: bare host:port gets the http scheme, trailing slashes are
// trimmed, and empty or duplicate entries are rejected — the upfront
// flag validation of -peers.
func ParsePeers(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	peers := make([]string, 0, len(parts))
	seen := map[string]bool{}
	for i, part := range parts {
		addr := strings.TrimSpace(part)
		if addr == "" {
			return nil, fmt.Errorf("peer %d is empty", i)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		u, err := url.Parse(addr)
		if err != nil {
			return nil, fmt.Errorf("peer %q: %v", part, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("peer %q: scheme %q not supported (want http or https)", part, u.Scheme)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("peer %q: no host", part)
		}
		addr = strings.TrimRight(u.String(), "/")
		if seen[addr] {
			return nil, fmt.Errorf("duplicate peer %q", addr)
		}
		seen[addr] = true
		peers = append(peers, addr)
	}
	return peers, nil
}

// DispatchStats is a snapshot of the dispatcher's monotonic counters
// (and the current in-flight gauge).
type DispatchStats struct {
	// Batches counts successfully applied batches; Retries re-attempts
	// after failed requests; PeerFailures peers marked dead.
	Batches      int64
	Retries      int64
	PeerFailures int64
	// RemoteShards / LocalShards split computed shards by where they ran.
	RemoteShards int64
	LocalShards  int64
	// InFlight is the number of batch requests currently outstanding.
	InFlight int64
}

// Dispatcher fans shard batches out to remote workers. One Dispatcher
// serves every job of a Server; its counters aggregate across jobs.
type Dispatcher struct {
	opt    DispatchOptions
	client *http.Client

	batches, retries, failures atomic.Int64
	remoteShards, localShards  atomic.Int64
	inflight                   atomic.Int64
}

// NewDispatcher validates opt and builds a Dispatcher.
func NewDispatcher(opt DispatchOptions) (*Dispatcher, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Dispatcher{opt: opt, client: &http.Client{}}, nil
}

// Peers returns the configured worker set.
func (d *Dispatcher) Peers() []string { return d.opt.Peers }

// Stats returns a snapshot of the dispatch counters.
func (d *Dispatcher) Stats() DispatchStats {
	return DispatchStats{
		Batches:      d.batches.Load(),
		Retries:      d.retries.Load(),
		PeerFailures: d.failures.Load(),
		RemoteShards: d.remoteShards.Load(),
		LocalShards:  d.localShards.Load(),
		InFlight:     d.inflight.Load(),
	}
}

// Run executes spec with shard compute fanned out to the worker set,
// st as the shard cache and checkpoint, progress receiving completed
// points in ascending order (the SSE contract), and note observing
// each shard as it resolves (cached reports a store hit). The folded
// results are byte-identical to a local single-worker run.
//
// Adaptive specs (AdaptRelWidth > 0) are rejected: their batch-barrier
// stop rule is inherently sequential, so the server runs them through
// the local cached pipeline instead.
func (d *Dispatcher) Run(ctx context.Context, st *sweepstore.Store, spec experiments.Spec,
	progress func(point int, per float64), note func(sh experiments.Shard, cached bool)) ([]experiments.PointResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.AdaptRelWidth > 0 {
		return nil, fmt.Errorf("dispatch: adaptive sweeps are not distributable (run them through the local pipeline)")
	}
	n := spec.NumShards()
	keys := make([]string, n)
	for i := range keys {
		k, err := sweepstore.ShardKey(spec.ShardConfig(spec.Shard(i)))
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	runs := make([][]experiments.LERResult, n)
	tracker := newPointTracker(spec, progress)

	// Resolve cache hits locally first; only the misses travel.
	var missing []int
	for i := 0; i < n; i++ {
		sh := spec.Shard(i)
		if rs, ok := st.GetShard(keys[i], sh.Count, sh.Seed); ok {
			runs[i] = rs
			if note != nil {
				note(sh, true)
			}
			tracker.shardDone(sh.Point)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		if err := d.dispatch(ctx, st, spec, keys, missing, runs, tracker, note); err != nil {
			return nil, err
		}
	}
	out := experiments.FoldShards(spec, runs)
	tracker.finishDegenerate()
	return out, nil
}

// dispatch drains the missing shards through the peer set.
func (d *Dispatcher) dispatch(ctx context.Context, st *sweepstore.Store, spec experiments.Spec,
	keys []string, missing []int, runs [][]experiments.LERResult,
	tracker *pointTracker, note func(sh experiments.Shard, cached bool)) error {
	var batches [][]int
	for len(missing) > 0 {
		size := d.opt.BatchSize
		if size > len(missing) {
			size = len(missing)
		}
		batches = append(batches, missing[:size])
		missing = missing[size:]
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &dispatchRun{
		d: d, st: st, spec: spec, keys: keys, runs: runs,
		tracker: tracker, note: note,
		// Every batch is either queued or held by exactly one goroutine,
		// so cap len(batches) makes requeues non-blocking.
		queue:   make(chan []int, len(batches)),
		done:    make(chan struct{}),
		allDead: make(chan struct{}),
		cancel:  cancel,
	}
	r.pending.Store(int64(len(batches)))
	for _, b := range batches {
		r.queue <- b
	}
	r.alive.Store(int64(len(d.opt.Peers)))

	var wg sync.WaitGroup
	for _, peer := range d.opt.Peers {
		ps := &peerState{run: r, url: peer}
		for slot := 0; slot < d.opt.InFlight; slot++ {
			wg.Add(1)
			go ps.loop(ctx, &wg)
		}
	}
	wg.Add(1)
	go r.localLoop(ctx, &wg)
	wg.Wait()

	if err := r.loadErr(); err != nil {
		return err
	}
	if r.pending.Load() != 0 {
		// Only a cancelled parent context leaves batches behind.
		return context.Cause(ctx)
	}
	return nil
}

// dispatchRun is the per-sweep dispatch state shared by the peer slots
// and the local fallback.
type dispatchRun struct {
	d       *Dispatcher
	st      *sweepstore.Store
	spec    experiments.Spec
	keys    []string
	runs    [][]experiments.LERResult
	tracker *pointTracker
	note    func(sh experiments.Shard, cached bool)

	queue   chan []int
	pending atomic.Int64
	done    chan struct{} // closed when pending hits zero
	alive   atomic.Int64
	allDead chan struct{} // closed when the last peer dies
	cancel  context.CancelFunc

	errMu sync.Mutex
	err   error
}

// fail records the first fatal error and cancels the run.
func (r *dispatchRun) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.cancel()
}

func (r *dispatchRun) loadErr() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// requeue puts a batch back for another holder. The queue is sized for
// every batch, so this never blocks.
func (r *dispatchRun) requeue(batch []int) { r.queue <- batch }

// batchDone retires one batch; the last one releases every loop.
func (r *dispatchRun) batchDone() {
	if r.pending.Add(-1) == 0 {
		close(r.done)
	}
}

// peerDied marks one peer dead; the last death wakes the local
// fallback.
func (r *dispatchRun) peerDied() {
	if r.alive.Add(-1) == 0 {
		close(r.allDead)
	}
}

// apply verifies one batch response end to end, then persists and
// records every shard. Verify-all-then-apply keeps a malformed response
// side-effect free: a batch is either fully applied once or fully
// retried, so no shard is ever double-counted. A store write failure is
// fatal (r.fail) — the cache is the job's checkpoint.
func (r *dispatchRun) apply(batch []int, resp *ShardBatchResponse) error {
	if len(resp.Shards) != len(batch) {
		return fmt.Errorf("batch of %d shards answered with %d", len(batch), len(resp.Shards))
	}
	for k, sr := range resp.Shards {
		i := batch[k]
		sh := r.spec.Shard(i)
		if sr.Index != i {
			return fmt.Errorf("shard %d answered out of order (got index %d)", i, sr.Index)
		}
		if sr.Key != r.keys[i] {
			return fmt.Errorf("shard %d: content address mismatch (worker %s, coordinator %s)", i, sr.Key, r.keys[i])
		}
		if len(sr.Runs) != sh.Count {
			return fmt.Errorf("shard %d: %d runs, want %d", i, len(sr.Runs), sh.Count)
		}
	}
	for k, sr := range resp.Shards {
		i := batch[k]
		sh := r.spec.Shard(i)
		experiments.NormalizeLERRuns(sr.Runs)
		if err := r.st.PutShard(r.keys[i], sh.Seed, sr.Runs); err != nil {
			r.fail(err)
			return nil
		}
		r.runs[i] = sr.Runs
		r.d.remoteShards.Add(1)
		if r.note != nil {
			r.note(sh, false)
		}
		r.tracker.shardDone(sh.Point)
	}
	r.d.batches.Add(1)
	r.batchDone()
	return nil
}

// peerState is one remote worker's dispatch state, shared by its
// InFlight slots.
type peerState struct {
	run  *dispatchRun
	url  string
	dead atomic.Bool
}

// loop pulls batches for this peer until the run completes, the context
// cancels, or the peer dies.
func (p *peerState) loop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if p.dead.Load() {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-p.run.done:
			return
		case batch := <-p.run.queue:
			if p.dead.Load() {
				// A sibling slot marked the peer dead while this one was
				// blocked on the queue: hand the batch straight back.
				p.run.requeue(batch)
				return
			}
			p.process(ctx, batch)
		}
	}
}

// process runs one batch against the peer: attempt, retry with
// exponential backoff, and on exhaustion mark the peer dead and fail
// the batch over to the survivors (or the local fallback).
func (p *peerState) process(ctx context.Context, batch []int) {
	r := p.run
	r.d.inflight.Add(1)
	defer r.d.inflight.Add(-1)
	backoff := r.d.opt.Backoff
	for attempt := 0; attempt <= r.d.opt.Retries; attempt++ {
		if attempt > 0 {
			r.d.retries.Add(1)
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-ctx.Done():
					t.Stop()
					r.requeue(batch)
					return
				case <-t.C:
				}
				backoff *= 2
			}
		}
		resp, retryable, err := r.d.postBatch(ctx, p.url, r.spec, batch)
		if err == nil {
			if err := r.apply(batch, resp); err == nil {
				return
			}
			// A malformed response counts as a failed attempt.
		} else if !retryable {
			break
		}
		if ctx.Err() != nil {
			r.requeue(batch)
			return
		}
	}
	if !p.dead.Swap(true) {
		r.d.failures.Add(1)
		r.peerDied()
	}
	r.requeue(batch)
}

// postBatch sends one shard batch to a peer. retryable is false for
// responses that can never succeed on a retry (a 4xx: version or spec
// mismatch), true for transport errors and 5xxs.
func (d *Dispatcher) postBatch(ctx context.Context, peer string, spec experiments.Spec, indices []int) (*ShardBatchResponse, bool, error) {
	body, err := json.Marshal(ShardBatchRequest{Version: sweepstore.Version, Spec: spec, Indices: indices})
	if err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, d.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	//qa:allow errcheck response body close after full read, nothing to recover
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		msg := string(bytes.TrimSpace(raw))
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, resp.StatusCode/100 != 4, fmt.Errorf("worker %s: HTTP %d: %s", peer, resp.StatusCode, msg)
	}
	var out ShardBatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, true, err
	}
	return &out, false, nil
}

// localLoop is the fallback of last resort: it engages only once every
// peer is dead (never competing with healthy workers for shards) and
// drains the queue with the coordinator's own engine stack, so a sweep
// always completes even with the whole fleet gone.
func (r *dispatchRun) localLoop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	select {
	case <-ctx.Done():
		return
	case <-r.done:
		return
	case <-r.allDead:
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.done:
			return
		case batch := <-r.queue:
			r.computeLocal(ctx, batch)
		}
	}
}

// computeLocal computes one batch with the local engine stack (the same
// shard path a worker runs remotely).
func (r *dispatchRun) computeLocal(ctx context.Context, batch []int) {
	runs, err := experiments.RunShardBatch(ctx, r.spec, batch, experiments.RunOptions{Workers: r.d.opt.LocalWorkers})
	if err != nil {
		if ctx.Err() != nil {
			r.requeue(batch)
			return
		}
		r.fail(err)
		return
	}
	for k, i := range batch {
		sh := r.spec.Shard(i)
		if err := r.st.PutShard(r.keys[i], sh.Seed, runs[k]); err != nil {
			r.fail(err)
			return
		}
		r.runs[i] = runs[k]
		r.d.localShards.Add(1)
		if r.note != nil {
			r.note(sh, false)
		}
		r.tracker.shardDone(sh.Point)
	}
	r.batchDone()
}

// pointTracker reproduces the pipeline's in-order Progress contract for
// the dispatcher: point i is announced once all its shards and all
// earlier points are complete, whatever the completion interleaving.
type pointTracker struct {
	mu        sync.Mutex
	pers      []float64
	remaining []int
	next      int
	fn        func(point int, per float64)
}

// newPointTracker builds a tracker; a nil fn (no subscriber) yields a
// nil tracker, whose methods are no-ops.
func newPointTracker(spec experiments.Spec, fn func(point int, per float64)) *pointTracker {
	if fn == nil {
		return nil
	}
	spp := 0
	if len(spec.PERs) > 0 {
		spp = spec.NumShards() / len(spec.PERs)
	}
	if spp == 0 {
		// Degenerate sweep (no shards): announced by finishDegenerate.
		return &pointTracker{pers: spec.PERs, fn: fn}
	}
	remaining := make([]int, len(spec.PERs))
	for i := range remaining {
		remaining[i] = spp
	}
	return &pointTracker{pers: spec.PERs, remaining: remaining, fn: fn}
}

// shardDone retires one shard of point p, announcing every newly
// completed point in ascending order.
func (t *pointTracker) shardDone(p int) {
	if t == nil || t.remaining == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.remaining[p]--
	for t.next < len(t.pers) && t.remaining[t.next] == 0 {
		t.fn(t.next, t.pers[t.next])
		t.next++
	}
}

// finishDegenerate announces the points of a shardless sweep (Samples
// 0), keeping the per-point Progress contract.
func (t *pointTracker) finishDegenerate() {
	if t == nil || t.remaining != nil {
		return
	}
	for i, per := range t.pers {
		t.fn(i, per)
	}
}
