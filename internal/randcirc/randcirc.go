// Package randcirc generates random quantum circuits for the Pauli-frame
// verification experiments of thesis §5.2.2 (Fig 5.4): uniformly chosen
// gates from the set {I, X, Y, Z, H, S, CNOT, CZ, SWAP, T, T†} on
// uniformly chosen operands.
package randcirc

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// Config controls generation.
type Config struct {
	// Qubits is the register width.
	Qubits int
	// Gates is the number of gates to draw.
	Gates int
	// CliffordOnly restricts the pool to stabilizer gates (for the CHP
	// back-end).
	CliffordOnly bool
	// IncludeIdentity includes the identity gate in the pool (the thesis
	// set does).
	IncludeIdentity bool
}

// Pool returns the gate pool for a configuration.
func Pool(cfg Config) []*gates.Gate {
	pool := []*gates.Gate{
		gates.X, gates.Y, gates.Z, gates.H, gates.S,
		gates.CNOT, gates.CZ, gates.SWAP,
	}
	if cfg.IncludeIdentity {
		pool = append(pool, gates.I)
	}
	if !cfg.CliffordOnly {
		pool = append(pool, gates.T, gates.Tdg)
	}
	if cfg.Qubits < 2 {
		var single []*gates.Gate
		for _, g := range pool {
			if g.Arity == 1 {
				single = append(single, g)
			}
		}
		pool = single
	}
	return pool
}

// Generate draws a random circuit, one gate per time slot.
func Generate(cfg Config, rng *rand.Rand) *circuit.Circuit {
	pool := Pool(cfg)
	c := circuit.New()
	for i := 0; i < cfg.Gates; i++ {
		g := pool[rng.Intn(len(pool))]
		switch g.Arity {
		case 1:
			c.Add(g, rng.Intn(cfg.Qubits))
		case 2:
			a := rng.Intn(cfg.Qubits)
			b := (a + 1 + rng.Intn(cfg.Qubits-1)) % cfg.Qubits
			c.Add(g, a, b)
		}
	}
	return c
}

// GenerateWithMeasurements appends a final slot measuring every qubit.
func GenerateWithMeasurements(cfg Config, rng *rand.Rand) *circuit.Circuit {
	c := Generate(cfg, rng)
	slot := c.AppendSlot()
	for q := 0; q < cfg.Qubits; q++ {
		c.AddToSlot(slot, gates.Measure, q)
	}
	return c
}
