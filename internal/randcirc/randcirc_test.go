package randcirc

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{Qubits: 5, Gates: 200, IncludeIdentity: true}
	c := Generate(cfg, rand.New(rand.NewSource(1)))
	if c.NumOps() != 200 {
		t.Fatalf("ops = %d", c.NumOps())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MaxQubit() >= 5 {
		t.Errorf("qubit out of range: %d", c.MaxQubit())
	}
}

func TestGenerateCliffordOnly(t *testing.T) {
	cfg := Config{Qubits: 4, Gates: 300, CliffordOnly: true}
	c := Generate(cfg, rand.New(rand.NewSource(2)))
	if got := c.CountClass(gates.ClassNonClifford); got != 0 {
		t.Errorf("clifford-only circuit has %d non-Clifford gates", got)
	}
}

func TestGenerateUsesWholeGateSet(t *testing.T) {
	cfg := Config{Qubits: 5, Gates: 3000, IncludeIdentity: true}
	c := Generate(cfg, rand.New(rand.NewSource(3)))
	seen := map[gates.Name]bool{}
	for _, s := range c.Slots {
		for _, op := range s.Ops {
			seen[op.Gate.Name] = true
		}
	}
	for _, g := range Pool(cfg) {
		if !seen[g.Name] {
			t.Errorf("gate %s never drawn in 3000 samples", g.Name)
		}
	}
}

func TestGenerateWithMeasurements(t *testing.T) {
	cfg := Config{Qubits: 3, Gates: 10}
	c := GenerateWithMeasurements(cfg, rand.New(rand.NewSource(4)))
	if got := c.CountClass(gates.ClassMeasure); got != 3 {
		t.Errorf("measurements = %d", got)
	}
	last := c.Slots[c.NumSlots()-1]
	if len(last.Ops) != 3 {
		t.Errorf("final slot has %d ops", len(last.Ops))
	}
}

func TestSingleQubitConfig(t *testing.T) {
	cfg := Config{Qubits: 1, Gates: 50}
	c := Generate(cfg, rand.New(rand.NewSource(5)))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Slots {
		for _, op := range s.Ops {
			if op.Gate.Arity != 1 {
				t.Fatalf("two-qubit gate on one-qubit register: %v", op)
			}
		}
	}
}

func TestTwoQubitOperandsDistinct(t *testing.T) {
	cfg := Config{Qubits: 2, Gates: 500, CliffordOnly: true}
	c := Generate(cfg, rand.New(rand.NewSource(6)))
	for _, s := range c.Slots {
		for _, op := range s.Ops {
			if op.Gate.Arity == 2 && op.Qubits[0] == op.Qubits[1] {
				t.Fatalf("degenerate two-qubit gate: %v", op)
			}
		}
	}
}
