package experiments

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func TestShardSeedDistinctAndStable(t *testing.T) {
	const points, samples = 64, 64
	seen := make(map[int64][2]int, points*samples)
	for p := 0; p < points; p++ {
		for s := 0; s < samples; s++ {
			seed := ShardSeed(2017, p, s)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], p, s, seed)
			}
			seen[seed] = [2]int{p, s}
			if again := ShardSeed(2017, p, s); again != seed {
				t.Fatalf("ShardSeed(2017,%d,%d) unstable: %d then %d", p, s, seed, again)
			}
		}
	}
	// Different bases must decorrelate the whole grid.
	if ShardSeed(1, 3, 5) == ShardSeed(2, 3, 5) {
		t.Error("different bases produced the same shard seed")
	}
}

func TestShardSeedConcurrentStable(t *testing.T) {
	// ShardSeed is a pure function: hammer it from many goroutines and
	// require the single-threaded answers (also exercises -race).
	want := ShardSeed(99, 7, 11)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if got := ShardSeed(99, 7, 11); got != want {
					t.Errorf("concurrent ShardSeed = %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(4); got != 4 {
		t.Errorf("resolveWorkers(4) = %d", got)
	}
	if got := resolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := resolveWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachShardCoversAllJobs(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 50} {
		const n = 37
		hits := make([]int, n)
		var mu sync.Mutex
		err := forEachShard(n, workers, func(i int) error {
			mu.Lock()
			hits[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachShardReturnsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	other := errors.New("other")
	err := forEachShard(4, 1, func(i int) error {
		switch i {
		case 1:
			return boom
		case 2:
			return other // never reached serially; pool stops at job 1
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

// sweepTestConfig is small enough for -race yet noisy enough that every
// sample terminates on MaxLogicalErrors rather than the window cap.
func sweepTestConfig(workers int) SweepConfig {
	return SweepConfig{
		PERs:             []float64{3e-3, 6e-3, 9e-3},
		Samples:          4,
		MaxLogicalErrors: 3,
		MaxWindows:       20000,
		BaseSeed:         2017,
		Workers:          workers,
	}
}

// TestSweepDeterministicAcrossWorkers is the headline determinism
// guarantee: RunSweep output is bit-identical for Workers=1 and
// Workers=8 at a fixed BaseSeed (run under -race in CI).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunSweep(sweepTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(sweepTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Workers=1 and Workers=8 diverged:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	// Sanity: the runs actually did statistics.
	for _, pt := range serial {
		if len(pt.LERs) != 4 || pt.MeanLER() <= 0 {
			t.Fatalf("degenerate point: %+v", pt)
		}
	}
}

func TestSweepProgressOrderedAndSerialized(t *testing.T) {
	cfg := sweepTestConfig(8)
	// Plain (unsynchronized) variables: the race detector flags any
	// Progress call that is not serialized through the collector.
	var order []int
	var pers []float64
	cfg.Progress = func(point int, per float64) {
		order = append(order, point)
		pers = append(pers, per)
	}
	if _, err := RunSweep(cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cfg.PERs) {
		t.Fatalf("progress calls = %d, want %d (order %v)", len(order), len(cfg.PERs), order)
	}
	for i, p := range order {
		if p != i {
			t.Fatalf("progress out of order: %v", order)
		}
		if pers[i] != cfg.PERs[i] {
			t.Fatalf("progress PER mismatch at %d: %v vs %v", i, pers[i], cfg.PERs[i])
		}
	}
}

func TestSweepProgressWithZeroSamples(t *testing.T) {
	cfg := SweepConfig{PERs: []float64{1e-3, 2e-3}, Samples: 0, BaseSeed: 1}
	var order []int
	cfg.Progress = func(point int, per float64) { order = append(order, point) }
	pts, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0].LERs) != 0 {
		t.Fatalf("zero-sample sweep: %+v", pts)
	}
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Fatalf("zero-sample progress order: %v", order)
	}
}

func TestNegativeSamplesAreEmptyNotPanic(t *testing.T) {
	pts, err := RunSweep(SweepConfig{PERs: []float64{1e-3}, Samples: -2, BaseSeed: 1})
	if err != nil || len(pts) != 1 || len(pts[0].LERs) != 0 {
		t.Fatalf("negative-sample sweep: %+v, %v", pts, err)
	}
	rs, err := RunLERSamples(LERConfig{PER: 1e-3, Seed: 1}, -3)
	if err != nil || len(rs) != 0 {
		t.Fatalf("negative RunLERSamples: %+v, %v", rs, err)
	}
}

func TestRunLERSamplesDeterministicAcrossWorkers(t *testing.T) {
	cfg := LERConfig{PER: 5e-3, MaxLogicalErrors: 3, MaxWindows: 20000, Seed: 7}
	cfg.Workers = 1
	serial, err := RunLERSamples(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunLERSamples(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("RunLERSamples diverged across worker counts:\n%+v\n%+v", serial, parallel)
	}
	// Distinct shard seeds: the repetitions must not be clones.
	clones := true
	for _, r := range serial[1:] {
		if r.Windows != serial[0].Windows {
			clones = false
		}
	}
	if clones {
		t.Error("all repetitions identical — shard seeding suspect")
	}
}

func TestRunComputationLERPairDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("two-star computation runs skipped in -short mode")
	}
	cfg := ComputationLERConfig{PER: 3e-3, MaxLogicalErrors: 2, MaxWindows: 20000, Seed: 5}
	cfg.Workers = 1
	w1, p1, err := RunComputationLERPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	w2, p2, err := RunComputationLERPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 || p1 != p2 {
		t.Fatalf("pair diverged across worker counts:\n%+v vs %+v\n%+v vs %+v", w1, w2, p1, p2)
	}
	if w1.Windows == 0 || p1.Windows == 0 {
		t.Fatal("degenerate computation runs")
	}
}

func TestRunGenericLERSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("distance sweep skipped in -short mode")
	}
	cfg := GenericLERConfig{PER: 5e-3, MaxLogicalErrors: 2, MaxWindows: 5000, Seed: 11}
	cfg.Workers = 1
	serial, err := RunGenericLERSweep(cfg, []int{3, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunGenericLERSweep(cfg, []int{3, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("generic sweep diverged across worker counts:\n%+v\n%+v", serial, parallel)
	}
	// Same distance, same base seed → same shard seed → identical runs.
	if serial[0] != serial[1] {
		t.Error("repeated distance should reproduce the identical result")
	}
}
