package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// TestSingleFaultTolerance exhaustively injects one Pauli fault at every
// time-slot boundary of a QEC window on every qubit and verifies no
// single fault produces a logical error (the fault-tolerance property of
// the d=3 code with the two-pattern ESM schedule and the agreement-rule
// decoder). The X side runs on |0⟩_L and watches Z_L; the Z side runs on
// |+⟩_L (rotated lattice after H_L) and watches the rotated X_L.
func TestSingleFaultTolerance(t *testing.T) {
	failures := 0
	for _, side := range []struct {
		name string
		plus bool
	}{{"X", false}, {"Z", true}} {
		// A window is 16 slots (+1 correction slot); scan injections
		// across two full windows' worth of slots.
		for slotIdx := 0; slotIdx < 34; slotIdx++ {
			for q := 0; q < 17; q++ {
				for _, g := range []*gates.Gate{gates.X, gates.Y, gates.Z} {
					chp := layers.NewChpCore(rand.New(rand.NewSource(1)))
					fl := layers.NewFaultLayer(chp, slotIdx, q, g)
					star := surface.NewNinjaStarLayer(fl, surface.Config{Ancilla: surface.AncillaDedicated, InitRounds: 1})
					if err := star.CreateQubits(1); err != nil {
						t.Fatal(err)
					}
					init := circuit.New().Add(gates.Prep, 0)
					if side.plus {
						init.Add(gates.H, 0)
					}
					if err := qpdo.WithBypass(star, func() error {
						_, err := qpdo.Run(star, init)
						return err
					}); err != nil {
						t.Fatal(err)
					}
					for w := 0; w < 4; w++ {
						if _, err := star.RunWindow(0); err != nil {
							t.Fatal(err)
						}
					}
					toPhys := func(rel []int) []int {
						out := make([]int, len(rel))
						for i, d := range rel {
							out[i] = star.Star(0).Data[d]
						}
						return out
					}
					logical := pauli.ZString(toPhys(surface.LogicalZ(star.Star(0).Rotation))...)
					if side.plus {
						logical = pauli.XString(toPhys(surface.LogicalX(star.Star(0).Rotation))...)
					}
					v, det := chp.Tableau().ExpectPauli(logical)
					if !det || v != 1 {
						failures++
						fmt.Printf("FAULT side=%s slot=%d q=%d gate=%s: logical=%d det=%v\n",
							side.name, slotIdx, q, g, v, det)
					}
				}
			}
		}
	}
	if failures > 0 {
		t.Fatalf("%d single-fault cases caused logical errors", failures)
	}
}
