package experiments

import (
	"reflect"
	"testing"
)

// adaptiveTestConfig is a sparse-engine sweep with a high-LER point that
// converges quickly and a generous precision target, so the adaptive
// path exercises a genuine early stop in a few batches.
func adaptiveTestConfig(workers int) SweepConfig {
	return SweepConfig{
		Engine:           EngineSparse,
		PERs:             []float64{8e-3},
		Samples:          1024,
		ErrorType:        LogicalX,
		MaxLogicalErrors: 1 << 30,
		MaxWindows:       150,
		BaseSeed:         5150,
		AdaptRelWidth:    0.25,
		AdaptMinSamples:  64,
		AdaptBatch:       256,
		Workers:          workers,
	}
}

// TestAdaptiveStopsEarly: at a fat error rate the Wilson interval
// tightens long before the full sample budget, and the stop must land
// exactly on a batch boundary (the determinism granularity).
func TestAdaptiveStopsEarly(t *testing.T) {
	cfg := adaptiveTestConfig(1)
	pts, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	n := len(pts[0].LERs)
	if n >= cfg.Samples {
		t.Fatalf("adaptive sweep ran all %d samples (no early stop)", n)
	}
	if n < cfg.AdaptMinSamples {
		t.Fatalf("stopped after %d samples, below minimum %d", n, cfg.AdaptMinSamples)
	}
	if n%cfg.AdaptBatch != 0 {
		t.Fatalf("stopped at %d samples, not a multiple of the %d-sample batch", n, cfg.AdaptBatch)
	}
	if pts[0].TotalErrors <= 0 || pts[0].TotalWindows <= 0 {
		t.Fatalf("degenerate pooled counts: %+v", pts[0])
	}
	lo, hi := pts[0].WilsonLER()
	phat := pts[0].PooledLER()
	if hw := (hi - lo) / 2; hw > cfg.AdaptRelWidth*phat {
		t.Errorf("stop fired at half-width %g > target %g", hw, cfg.AdaptRelWidth*phat)
	}
}

// TestAdaptiveWorkerInvariance is the acceptance-criteria determinism
// proof: batch-granular stopping makes the adaptive sweep bit-identical
// for any worker count, on both the sparse frame engine and the stack.
func TestAdaptiveWorkerInvariance(t *testing.T) {
	t.Run("sparse", func(t *testing.T) {
		base, err := RunSweep(adaptiveTestConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{3, 8} {
			got, err := RunSweep(adaptiveTestConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("Workers=1 and Workers=%d diverged:\n1: %+v\n%d: %+v",
					workers, base, workers, got)
			}
		}
	})
	t.Run("stack", func(t *testing.T) {
		cfg := SweepConfig{
			Engine:           EngineStack,
			PERs:             []float64{8e-3},
			Samples:          96,
			MaxLogicalErrors: 3,
			MaxWindows:       2000,
			BaseSeed:         77,
			AdaptRelWidth:    0.4,
			AdaptMinSamples:  8,
			AdaptBatch:       16,
		}
		cfg.Workers = 1
		base, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 7
		got, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("stack adaptive sweep diverged across workers:\n1: %+v\n7: %+v", base, got)
		}
		if len(base[0].LERs)%cfg.AdaptBatch != 0 && len(base[0].LERs) != cfg.Samples {
			t.Fatalf("stack stop not batch-granular: %d samples", len(base[0].LERs))
		}
	})
}

// TestAdaptivePrefixOfFullSweep: the shards an adaptive sweep computes
// are exactly a prefix of the full sweep's shard sequence — same seeds,
// same results — so the adaptive LERs must equal the full sweep's first
// n samples verbatim. This pins that adaptivity changes only *how many*
// shards run, never *what* any shard computes.
func TestAdaptivePrefixOfFullSweep(t *testing.T) {
	cfg := adaptiveTestConfig(4)
	adaptive, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdaptRelWidth = 0 // same spec, adaptivity off
	full, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(adaptive[0].LERs)
	if len(full[0].LERs) != cfg.Samples {
		t.Fatalf("full sweep ran %d samples, want %d", len(full[0].LERs), cfg.Samples)
	}
	if !reflect.DeepEqual(adaptive[0].LERs, full[0].LERs[:n]) {
		t.Fatal("adaptive samples are not a verbatim prefix of the full sweep")
	}
	if !reflect.DeepEqual(adaptive[0].WindowCounts, full[0].WindowCounts[:n]) {
		t.Fatal("adaptive window counts are not a verbatim prefix of the full sweep")
	}
}

// TestAdaptiveZeroErrorPointRunsFull: a point that never observes a
// logical error has no interval to converge and must exhaust its full
// sample budget rather than stop on a degenerate all-zero pool.
func TestAdaptiveZeroErrorPointRunsFull(t *testing.T) {
	cfg := SweepConfig{
		Engine:          EngineSparse,
		PERs:            []float64{1e-7},
		Samples:         128,
		MaxWindows:      20,
		BaseSeed:        9,
		AdaptRelWidth:   0.5,
		AdaptMinSamples: 64,
		AdaptBatch:      64,
	}
	pts, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts[0].LERs) != cfg.Samples {
		t.Fatalf("zero-error point stopped early at %d samples", len(pts[0].LERs))
	}
	if pts[0].TotalErrors != 0 {
		t.Fatalf("expected an error-free point, got %d errors", pts[0].TotalErrors)
	}
}

// TestAdaptiveProgressOrdered: the adaptive path honors the Progress
// contract — one call per point, ascending order.
func TestAdaptiveProgressOrdered(t *testing.T) {
	cfg := adaptiveTestConfig(4)
	cfg.PERs = []float64{6e-3, 8e-3}
	var order []int
	cfg.Progress = func(point int, per float64) { order = append(order, point) }
	if _, err := RunSweep(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Fatalf("adaptive progress order: %v", order)
	}
}

// TestSparseSweepDeterministicAcrossWorkers mirrors the headline
// determinism guarantee for the sparse engine on the non-adaptive path.
func TestSparseSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := adaptiveTestConfig(1)
	cfg.AdaptRelWidth = 0
	cfg.Samples = 256
	serial, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sparse sweep diverged between Workers=1 and Workers=8")
	}
	if serial[0].MeanLER() <= 0 {
		t.Fatalf("degenerate sparse sweep: %+v", serial[0])
	}
}
