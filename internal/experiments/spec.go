// Sweep specifications: the serializable, canonical description of a
// PER sweep and its decomposition into independent shards. A Spec is the
// wire format of the sweep service (cmd/sweepd) and the hashing input of
// the content-addressed result store (internal/sweepstore): everything a
// sweep's results depend on is in the Spec, and everything one shard's
// results depend on is in its ShardConfig.
package experiments

import (
	"fmt"
	"math"
)

// Engine names used in serialized specs (the -engine flag vocabulary).
const (
	EngineNameStack    = "stack"
	EngineNameFrameSim = "framesim"
	EngineNameSparse   = "sparse"
)

// Spec is the serializable form of a SweepConfig: the pure inputs of a
// sweep, with the runtime-only fields (Workers, Progress) stripped.
// Results are a pure function of a normalized Spec — same Spec, same
// bits, for any worker count, process, or machine.
type Spec struct {
	// Engine selects the simulation engine: "stack" or "framesim".
	Engine string `json:"engine"`
	// PERs are the physical error rates of the sweep points.
	PERs []float64 `json:"pers"`
	// Samples is the number of Monte-Carlo repetitions per point.
	Samples int `json:"samples"`
	// ErrorType is the monitored logical error: "x" or "z".
	ErrorType string `json:"error_type"`
	// WithPauliFrame inserts the Pauli frame layer.
	WithPauliFrame bool `json:"with_pauli_frame"`
	// MaxLogicalErrors / MaxWindows terminate each run.
	MaxLogicalErrors int `json:"max_logical_errors"`
	MaxWindows       int `json:"max_windows"`
	// BaseSeed drives all randomness via ShardSeed.
	BaseSeed int64 `json:"base_seed"`
	// Lanes widens the frame engines' shards to Lanes 64-shot words
	// (64·Lanes shots propagate per pass through the wide kernels).
	// 0 or 1 is the canonical single-word layout; 2, 4 and 8 are the
	// supported wide widths. Word w of a point carries the same
	// ShardSeed-derived RNG at every width and lane extraction is
	// bit-identical, so Lanes changes shard granularity, never the folded
	// results. Invalid for the stack engine, which has no lanes.
	Lanes int `json:"lanes,omitempty"`
	// AdaptRelWidth > 0 enables adaptive per-point early stopping at
	// the given relative 95% Wilson half-width (see SweepConfig). The
	// adaptive fields are part of the spec hash: an adaptive sweep is a
	// different computation than a full sweep and never shares cache
	// entries with one. They are omitted from the canonical JSON when
	// adaptive sampling is off, so pre-existing non-adaptive spec
	// hashes are unchanged.
	AdaptRelWidth float64 `json:"adapt_rel_width,omitempty"`
	// AdaptMinSamples is the minimum sample count before early stop.
	AdaptMinSamples int `json:"adapt_min_samples,omitempty"`
	// AdaptBatch is the stop-decision granularity in samples.
	AdaptBatch int `json:"adapt_batch,omitempty"`
}

// SpecOf extracts the serializable part of a SweepConfig.
func SpecOf(cfg SweepConfig) Spec {
	et := "x"
	if cfg.ErrorType == LogicalZ {
		et = "z"
	}
	return Spec{
		Engine:           cfg.Engine.String(),
		PERs:             cfg.PERs,
		Samples:          cfg.Samples,
		ErrorType:        et,
		WithPauliFrame:   cfg.WithPauliFrame,
		MaxLogicalErrors: cfg.MaxLogicalErrors,
		MaxWindows:       cfg.MaxWindows,
		BaseSeed:         cfg.BaseSeed,
		Lanes:            cfg.Lanes,
		AdaptRelWidth:    cfg.AdaptRelWidth,
		AdaptMinSamples:  cfg.AdaptMinSamples,
		AdaptBatch:       cfg.AdaptBatch,
	}
}

// SweepConfig converts the spec back to a runnable configuration
// (Workers and Progress are left at their zero values).
func (s Spec) SweepConfig() (SweepConfig, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return SweepConfig{}, err
	}
	engine, err := ParseEngine(s.Engine)
	if err != nil {
		return SweepConfig{}, err
	}
	et := LogicalX
	if s.ErrorType == "z" {
		et = LogicalZ
	}
	return SweepConfig{
		Engine:           engine,
		PERs:             s.PERs,
		Samples:          s.Samples,
		ErrorType:        et,
		WithPauliFrame:   s.WithPauliFrame,
		MaxLogicalErrors: s.MaxLogicalErrors,
		MaxWindows:       s.MaxWindows,
		BaseSeed:         s.BaseSeed,
		Lanes:            s.Lanes,
		AdaptRelWidth:    s.AdaptRelWidth,
		AdaptMinSamples:  s.AdaptMinSamples,
		AdaptBatch:       s.AdaptBatch,
	}, nil
}

// Normalized fills the defaulted fields with their effective values, so
// that two specs describing the same computation hash identically:
// Samples<0 runs 0 samples, and the termination caps default exactly as
// LERConfig.withDefaults applies them at run time.
func (s Spec) Normalized() Spec {
	if s.Engine == "" {
		s.Engine = EngineNameStack
	}
	if s.ErrorType == "" {
		s.ErrorType = "x"
	}
	if s.Samples < 0 {
		s.Samples = 0
	}
	if s.MaxLogicalErrors <= 0 {
		s.MaxLogicalErrors = 50
	}
	if s.MaxWindows <= 0 {
		s.MaxWindows = 2_000_000
	}
	if s.Lanes == 1 {
		// One lane word is the canonical zero state: a width-1 spec is
		// the same computation whether the width was defaulted or spelled
		// out, and must hash identically.
		s.Lanes = 0
	}
	if s.AdaptRelWidth > 0 {
		if s.AdaptMinSamples <= 0 {
			s.AdaptMinSamples = 64
		}
		if s.AdaptBatch <= 0 {
			s.AdaptBatch = 256
		}
	} else {
		// Canonical off state: any non-positive (or NaN) width means
		// "full sweep", and the companion fields must not perturb the
		// spec hash.
		s.AdaptRelWidth = 0
		s.AdaptMinSamples = 0
		s.AdaptBatch = 0
	}
	return s
}

// Validate rejects specs that cannot be run (or could not be cached
// reproducibly). It expects a Normalized spec.
func (s Spec) Validate() error {
	switch s.Engine {
	case EngineNameStack, EngineNameFrameSim, EngineNameSparse:
	default:
		return fmt.Errorf("spec: unknown engine %q (want %s, %s or %s)",
			s.Engine, EngineNameStack, EngineNameFrameSim, EngineNameSparse)
	}
	switch s.ErrorType {
	case "x", "z":
	default:
		return fmt.Errorf("spec: unknown error_type %q (want x or z)", s.ErrorType)
	}
	if len(s.PERs) == 0 {
		return fmt.Errorf("spec: no PER points")
	}
	for i, p := range s.PERs {
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 || p > 1 {
			return fmt.Errorf("spec: PER point %d is %v, want 0 < p <= 1", i, p)
		}
	}
	switch s.Lanes {
	case 0, 2, 4, 8:
	default:
		return fmt.Errorf("spec: lane width %d not supported (want 1, 2, 4 or 8)", s.Lanes)
	}
	if s.Lanes > 0 && !s.batchEngine() {
		return fmt.Errorf("spec: lanes apply to the frame engines only, not %q", s.Engine)
	}
	if math.IsNaN(s.AdaptRelWidth) || math.IsInf(s.AdaptRelWidth, 0) || s.AdaptRelWidth < 0 {
		return fmt.Errorf("spec: adapt_rel_width is %v, want a finite value >= 0", s.AdaptRelWidth)
	}
	if s.AdaptMinSamples < 0 || s.AdaptBatch < 0 {
		return fmt.Errorf("spec: negative adaptive sampling fields (min_samples=%d, batch=%d)",
			s.AdaptMinSamples, s.AdaptBatch)
	}
	return nil
}

// Shard addresses one independent work unit of a sweep. Stack-engine
// shards are single (point × sample) runs; framesim shards are wide
// batches of Lanes 64-shot words. Shards are a pure function of the
// spec: Shard(i) is the same struct in every process.
type Shard struct {
	// Index is the shard's position in 0..NumShards-1.
	Index int
	// Point is the PER point the shard contributes to.
	Point int
	// Offset is the first sample index the shard produces.
	Offset int
	// Count is the number of runs the shard produces (1 for the stack
	// engine, up to 64·Lanes for a wide frame batch).
	Count int
	// Seed is the shard's RNG seed: ShardSeed(BaseSeed, Point, unit) for
	// the stack engine, the first word's seed for a frame batch (the
	// remaining word seeds are enumerated by WordSeeds).
	Seed int64
}

// shardsPerPoint returns the number of shards each PER point splits
// into. It expects a Normalized spec.
func (s Spec) shardsPerPoint() int {
	if s.batchEngine() {
		span := 64 * s.lanes()
		return (s.Samples + span - 1) / span
	}
	return s.Samples
}

// lanes returns the effective lane width in 64-shot words (>= 1). It
// expects a Normalized spec.
func (s Spec) lanes() int {
	if s.Lanes > 1 {
		return s.Lanes
	}
	return 1
}

// batchEngine reports whether the engine produces 64-shot batch words
// (the dense and sparse frame engines) rather than single runs.
func (s Spec) batchEngine() bool {
	return s.Engine == EngineNameFrameSim || s.Engine == EngineNameSparse
}

// NumShards returns the total shard count of the sweep.
func (s Spec) NumShards() int {
	s = s.Normalized()
	return len(s.PERs) * s.shardsPerPoint()
}

// Shard returns the i'th work unit. The enumeration order is
// point-major — exactly the (point × sample) order the pre-pipeline
// sweep drivers used, which keeps the seeded golden results identical.
func (s Spec) Shard(i int) Shard {
	s = s.Normalized()
	spp := s.shardsPerPoint()
	p, u := i/spp, i%spp
	sh := Shard{Index: i, Point: p, Offset: u, Count: 1, Seed: ShardSeed(s.BaseSeed, p, u)}
	if s.batchEngine() {
		l := s.lanes()
		sh.Offset = u * 64 * l
		sh.Count = s.Samples - sh.Offset
		if sh.Count > 64*l {
			sh.Count = 64 * l
		}
		// Seed words by global word index, so word w of a point carries
		// the same RNG at every lane width (and exactly the width-1 seed
		// enumeration when l == 1).
		sh.Seed = ShardSeed(s.BaseSeed, p, u*l)
	}
	return sh
}

// WordSeeds returns the per-word RNG seeds of shard sh: one ShardSeed
// per 64-shot word, indexed by the word's global position within the
// point (Offset/64 + k). The enumeration is lane-width-independent —
// word w of a point draws the same seed at every Lanes setting — which,
// combined with the engines' bit-identical lane extraction, makes folded
// sweep results identical across widths. For the stack engine the
// shard's single seed is returned.
func (s Spec) WordSeeds(sh Shard) []int64 {
	s = s.Normalized()
	if !s.batchEngine() {
		return []int64{sh.Seed}
	}
	seeds := make([]int64, (sh.Count+63)/64)
	w0 := sh.Offset / 64
	for k := range seeds {
		seeds[k] = ShardSeed(s.BaseSeed, sh.Point, w0+k)
	}
	return seeds
}

// ShardConfig is the complete engine-level description of one shard's
// computation: every input its results depend on. Equal ShardConfigs
// produce bit-identical results (that is the repo's determinism
// contract), which makes the struct the natural content-address key for
// the sweep result cache.
type ShardConfig struct {
	Engine           string  `json:"engine"`
	PER              float64 `json:"per"`
	ErrorType        string  `json:"error_type"`
	WithPauliFrame   bool    `json:"with_pauli_frame"`
	MaxLogicalErrors int     `json:"max_logical_errors"`
	MaxWindows       int     `json:"max_windows"`
	// Seed is the shard's ShardSeed-derived RNG seed.
	Seed int64 `json:"seed"`
	// Shots is the number of runs the shard produces.
	Shots int `json:"shots"`
	// RefSeed is the framesim noiseless-reference seed (the sweep's
	// BaseSeed); zero for the stack engine, whose runs depend on Seed
	// alone.
	RefSeed int64 `json:"ref_seed"`
	// Seeds lists the per-word RNG seeds of a multi-word (Lanes > 1)
	// frame shard; Seeds[0] == Seed. Omitted for single-word shards, so
	// a 64-shot shard's canonical encoding — and cache key — does not
	// depend on the lane width of the sweep that produced it.
	Seeds []int64 `json:"seeds,omitempty"`
}

// ShardConfig returns the content-address description of shard sh.
func (s Spec) ShardConfig(sh Shard) ShardConfig {
	s = s.Normalized()
	sc := ShardConfig{
		Engine:           s.Engine,
		PER:              s.PERs[sh.Point],
		ErrorType:        s.ErrorType,
		WithPauliFrame:   s.WithPauliFrame,
		MaxLogicalErrors: s.MaxLogicalErrors,
		MaxWindows:       s.MaxWindows,
		Seed:             sh.Seed,
		Shots:            sh.Count,
	}
	if s.batchEngine() {
		sc.RefSeed = s.BaseSeed
		if seeds := s.WordSeeds(sh); len(seeds) > 1 {
			sc.Seeds = seeds
		}
	}
	return sc
}
