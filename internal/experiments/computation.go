package experiments

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// ComputationLERConfig parameterizes the fault-tolerant computation
// experiment: the execution scheme of thesis Fig 2.6 — QEC windows
// interleaved with logical operations — on two ninja stars, rather than
// the single idling qubit of §5.3.
type ComputationLERConfig struct {
	// PER is the physical error rate.
	PER float64
	// WithPauliFrame inserts the frame below the QEC layer.
	WithPauliFrame bool
	// MaxLogicalErrors / MaxWindows terminate the run.
	MaxLogicalErrors int
	MaxWindows       int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the pool of the configuration-parallel driver
	// built on this config (RunComputationLERPair); RunComputationLER
	// itself is a single sequential trajectory. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int
}

func (c ComputationLERConfig) withDefaults() ComputationLERConfig {
	if c.MaxLogicalErrors <= 0 {
		c.MaxLogicalErrors = 20
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 1_000_000
	}
	return c
}

// RunComputationLER alternates QEC windows on two logical qubits with
// noisy transversal CNOT_L gates (whose net effect is the identity on
// |00⟩_L), probing both Z_L chains in bypass mode after every cycle.
// When a logical error is detected, both stars are re-initialized
// noiselessly and counting continues — the restart keeps the expected
// state well-defined even though CNOT_L propagates logical X errors
// between the stars. The reported LER is logical errors per window.
func RunComputationLER(cfg ComputationLERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	chp := layers.NewChpCore(rand.New(rand.NewSource(rng.Int63())))
	errl := layers.NewErrorLayer(chp, cfg.PER, rand.New(rand.NewSource(rng.Int63())))
	counterMid := layers.NewCounterLayer(errl)
	var below qpdo.Core = counterMid
	if cfg.WithPauliFrame {
		below = layers.NewPauliFrameLayer(below)
	}
	counterTop := layers.NewCounterLayer(below)
	star := surface.NewNinjaStarLayer(counterTop, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := star.CreateQubits(2); err != nil {
		return LERResult{}, err
	}

	reinit := func() error {
		return qpdo.WithBypass(star, func() error {
			_, err := qpdo.Run(star, circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1))
			return err
		})
	}
	if err := reinit(); err != nil {
		return LERResult{}, err
	}

	var res LERResult
	for res.LogicalErrors < cfg.MaxLogicalErrors && res.Windows < cfg.MaxWindows {
		// One cycle per Fig 2.6: a window on each star, then a logical
		// operation (the noisy CNOT_L).
		for q := 0; q < 2; q++ {
			w, err := star.RunWindow(q)
			if err != nil {
				return res, err
			}
			res.CorrectionGates += w.CorrectionGates
			res.CorrectionSlots += w.CorrectionSlots
			res.Windows++
		}
		if err := star.Add(circuit.New().Add(gates.CNOT, 0, 1)); err != nil {
			return res, err
		}
		if _, err := star.Execute(); err != nil {
			return res, err
		}

		// Diagnostics: probe both stars on clean syndromes.
		errored := false
		if err := qpdo.WithBypass(star, func() error {
			for q := 0; q < 2; q++ {
				round, err := star.RunESMRound(q)
				if err != nil {
					return err
				}
				if round.A != 0 || round.B != 0 {
					return nil // wait for the decoder to catch up
				}
			}
			for q := 0; q < 2; q++ {
				out, err := star.ProbeZL(q)
				if err != nil {
					return err
				}
				if out != 0 {
					errored = true
				}
			}
			return nil
		}); err != nil {
			return res, err
		}
		if errored {
			res.LogicalErrors++
			if err := reinit(); err != nil {
				return res, err
			}
		}
	}
	if res.Windows > 0 {
		res.LER = float64(res.LogicalErrors) / float64(res.Windows)
	}
	res.OpsIssued = counterTop.Stats.Ops
	res.SlotsIssued = counterTop.Stats.Slots
	res.OpsExecuted = counterMid.Stats.Ops
	res.SlotsExecuted = counterMid.Stats.Slots
	res.InjectedErrors = errl.Stats.Total()
	return res, nil
}
