package experiments

import (
	"testing"

	"repro/internal/layers"
)

// TestBiasedNoiseSkewsLogicalErrors runs the LER experiment under a
// strongly Z-biased channel (thesis future work: "more realistic error
// models"; bias per Aliferis & Preskill [28]). Physical Z errors cause
// logical Z errors, so the |+⟩_L experiment must see a much higher LER
// than the |0⟩_L experiment — the symmetric model's X/Z equality
// (§5.3.2) breaks exactly as physics demands.
func TestBiasedNoiseSkewsLogicalErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("biased-noise study skipped in -short mode")
	}
	model := layers.Biased(1.5e-3, 20)
	x, err := RunLER(LERConfig{
		PER: model.TotalSingle(), Model: &model,
		ErrorType: LogicalX, MaxLogicalErrors: 12, MaxWindows: 300000, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	z, err := RunLER(LERConfig{
		PER: model.TotalSingle(), Model: &model,
		ErrorType: LogicalZ, MaxLogicalErrors: 12, MaxWindows: 300000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("biased η=20 at p=1.5e-3: logical-X LER %.2e, logical-Z LER %.2e", x.LER, z.LER)
	if z.LER < 3*x.LER {
		t.Errorf("Z-biased noise should make logical Z errors dominate: X=%.2e Z=%.2e", x.LER, z.LER)
	}
}

// TestRelaxationModelLER sanity-checks the twirled T1/Tφ channel end to
// end: the code still corrects and the LER is finite and sub-physical.
func TestRelaxationModelLER(t *testing.T) {
	model := layers.Relaxation(1e-3, 1e-3)
	r, err := RunLER(LERConfig{
		PER: model.TotalSingle(), Model: &model,
		MaxLogicalErrors: 8, MaxWindows: 200000, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LER <= 0 {
		t.Fatalf("no logical errors observed: %+v", r)
	}
	if r.CorrectionGates == 0 {
		t.Error("decoder never corrected under relaxation noise")
	}
}
