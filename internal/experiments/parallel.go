// Parallel Monte-Carlo execution: the LER studies are embarrassingly
// parallel — every (PER point × sample) run owns a private simulator
// stack and a private RNG — so the sweep drivers fan the runs out over a
// bounded worker pool. Seeds are derived per run with a SplitMix64-style
// shard function, which makes every result bit-identical regardless of
// worker count or completion order.
package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardSeed derives the RNG seed of one Monte-Carlo shard from the base
// seed and the shard coordinates. The (point, sample) pair is packed
// into disjoint bit ranges and pushed through the SplitMix64 finalizer;
// both steps are bijections on uint64, so distinct pairs are guaranteed
// distinct seeds (for point, sample < 2³²) and the mapping is a pure
// function of its arguments — stable across calls, goroutines, and
// process runs.
func ShardSeed(base int64, point, sample int) int64 {
	z := uint64(base) ^ (uint64(uint32(point))<<32 | uint64(uint32(sample)))
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// resolveWorkers maps a config's Workers field to a pool size: positive
// values are taken as-is, anything else defaults to GOMAXPROCS.
func resolveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// forEachShard runs job(0..n-1) on at most workers goroutines. Jobs are
// handed out by an atomic cursor, so completion order is arbitrary —
// jobs must write their results to disjoint, index-addressed slots. On
// error the pool stops handing out new jobs and the lowest-indexed
// error among the jobs that ran is returned.
func forEachShard(n, workers int, job func(i int) error) error {
	return forEachShardWorker(n, workers, func(_, i int) error { return job(i) })
}

// forEachShardWorker is forEachShard with the worker index exposed: job
// receives (w, i) where w < workers identifies the goroutine running it.
// Jobs on the same worker run strictly sequentially, so per-worker state
// (a reusable simulator stack) needs no locking.
func forEachShardWorker(n, workers int, job func(w, i int) error) error {
	return forEachShardWorkerCtx(context.Background(), n, workers, job)
}

// forEachShardWorkerCtx is forEachShardWorker with cancellation: between
// jobs every worker checks ctx, and a cancelled context stops the pool
// from handing out new shards. Jobs already started run to completion
// (their results stay valid — the caller may have persisted them), and
// ctx.Err() is returned unless a job error takes precedence.
func forEachShardWorkerCtx(ctx context.Context, n, workers int, job func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := job(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := job(w, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// progressCollector serializes Progress callbacks through one goroutine
// and reports points strictly in ascending order: point i is announced
// once all its samples AND all earlier points are complete, so callers
// observe the same call sequence whatever the worker count.
type progressCollector struct {
	ch   chan int
	done chan struct{}
}

func newProgressCollector(pers []float64, samples int, fn func(point int, per float64)) *progressCollector {
	c := &progressCollector{
		ch:   make(chan int, len(pers)*samples), // sends never block
		done: make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		remaining := make([]int, len(pers))
		for i := range remaining {
			remaining[i] = samples
		}
		next := 0
		for p := range c.ch {
			remaining[p]--
			for next < len(pers) && remaining[next] == 0 {
				fn(next, pers[next])
				next++
			}
		}
	}()
	return c
}

// sampleDone records one finished sample of point p.
func (c *progressCollector) sampleDone(p int) { c.ch <- p }

// close drains the collector; it returns only after every pending
// Progress call has completed.
func (c *progressCollector) close() {
	close(c.ch)
	<-c.done
}

// RunLERSamples runs `samples` independent repetitions of one LER
// configuration in parallel (pool size cfg.Workers), seeding repetition
// s with ShardSeed(cfg.Seed, 0, s). Each worker reuses one simulator
// stack across its repetitions. The result order is by repetition index
// and is bit-identical for any worker count.
func RunLERSamples(cfg LERConfig, samples int) ([]LERResult, error) {
	if samples < 0 {
		samples = 0
	}
	out := make([]LERResult, samples)
	workers := resolveWorkers(cfg.Workers)
	pool := newStackPool(workers)
	err := forEachShardWorker(samples, workers, func(w, s int) error {
		c := cfg
		c.Seed = ShardSeed(cfg.Seed, 0, s)
		var (
			r   LERResult
			err error
		)
		if c.Engine == EngineStack {
			r, err = pool.run(w, c)
		} else {
			r, err = RunLER(c)
		}
		if err != nil {
			return err
		}
		out[s] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunGenericLERSweep runs the distance-scaling study (cmd/dsweep) with
// one worker per distance, seeding distance d with
// ShardSeed(cfg.Seed, d, 0). Results are ordered like distances.
func RunGenericLERSweep(cfg GenericLERConfig, distances []int) ([]LERResult, error) {
	out := make([]LERResult, len(distances))
	err := forEachShard(len(distances), resolveWorkers(cfg.Workers), func(i int) error {
		c := cfg
		c.Distance = distances[i]
		c.Seed = ShardSeed(cfg.Seed, distances[i], 0)
		r, err := RunGenericLER(c)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunComputationLERPair runs the two-star computation experiment with
// and without a Pauli frame concurrently (cmd/compute), seeding the
// configurations with ShardSeed(cfg.Seed, 0, 0) and ShardSeed(cfg.Seed,
// 1, 0) so either result is independent of the worker count.
func RunComputationLERPair(cfg ComputationLERConfig) (without, with LERResult, err error) {
	var out [2]LERResult
	err = forEachShard(2, resolveWorkers(cfg.Workers), func(i int) error {
		c := cfg
		c.WithPauliFrame = i == 1
		c.Seed = ShardSeed(cfg.Seed, i, 0)
		r, err := RunComputationLER(c)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	return out[0], out[1], err
}
