package experiments

import (
	"testing"

	"repro/internal/decoder"
)

// TestDecoderRuleAblation demonstrates why the agreement rule matters:
// the per-bit intersection rule mis-handles faults that strike between
// the two check CNOTs of an ESM round (partial syndrome in round 1, full
// in round 2) and leaks an O(p) term into the logical error rate. Below
// the pseudo-threshold the leak dominates, so the intersection rule's
// LER must be clearly worse.
func TestDecoderRuleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation skipped in -short mode")
	}
	const per = 3e-4
	agree, err := RunLER(LERConfig{
		PER: per, MaxLogicalErrors: 15, MaxWindows: 300000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := RunLER(LERConfig{
		PER: per, MaxLogicalErrors: 15, MaxWindows: 300000, Seed: 21,
		DecoderRule: decoder.RuleIntersection,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agree.LER <= 0 || inter.LER <= 0 {
		t.Fatalf("degenerate LERs: agree=%v inter=%v", agree.LER, inter.LER)
	}
	ratio := inter.LER / agree.LER
	t.Logf("ablation at p=%g: agreement LER=%.2e, intersection LER=%.2e (×%.1f)",
		per, agree.LER, inter.LER, ratio)
	if ratio < 1.5 {
		t.Errorf("intersection rule should be clearly worse below threshold: ratio %.2f", ratio)
	}
}
