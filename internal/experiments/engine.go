package experiments

import (
	"repro/internal/framesim"
	"repro/internal/layers"
)

// frameEngine compiles the framesim engine for one LER configuration.
// cfg must already have its defaults applied.
func frameEngine(cfg LERConfig) (*framesim.Engine, error) {
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	obs := framesim.ObserveX
	if cfg.ErrorType == LogicalZ {
		obs = framesim.ObserveZ
	}
	return framesim.New(framesim.Config{
		Observable:       obs,
		WithPauliFrame:   cfg.WithPauliFrame,
		MaxLogicalErrors: cfg.MaxLogicalErrors,
		MaxWindows:       cfg.MaxWindows,
		InitRounds:       cfg.InitRounds,
		DecoderRule:      cfg.DecoderRule,
		Model:            model,
		RefSeed:          cfg.Seed,
	})
}

// frameToLER converts a framesim shot into the harness result type.
func frameToLER(r framesim.ShotResult) LERResult {
	out := LERResult{
		Windows:         r.Windows,
		LogicalErrors:   r.LogicalErrors,
		CorrectionGates: r.CorrectionGates,
		CorrectionSlots: r.CorrectionSlots,
		OpsIssued:       r.OpsIssued,
		SlotsIssued:     r.SlotsIssued,
		OpsExecuted:     r.OpsExecuted,
		SlotsExecuted:   r.SlotsExecuted,
		InjectedErrors:  r.InjectedErrors,
	}
	if out.Windows > 0 {
		out.LER = float64(out.LogicalErrors) / float64(out.Windows)
	}
	return out
}

// runFrameLER runs a single shot on the frame engine.
func runFrameLER(cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	e, err := frameEngine(cfg)
	if err != nil {
		return LERResult{}, err
	}
	rs, err := e.RunBatch(cfg.Seed, 1)
	if err != nil {
		return LERResult{}, err
	}
	return frameToLER(rs[0]), nil
}

// runFrameSweep is the framesim back end of RunSweep: one compiled engine
// per sweep point (engines are immutable and shared across workers), and
// one 64-shot batch per work unit. Batch words are fixed work units seeded
// by ShardSeed(BaseSeed, point, word), so results are bit-identical for
// any worker count — the same determinism contract as the stack sweep,
// though the two engines' RNG streams (and hence individual runs) differ.
func runFrameSweep(cfg SweepConfig) ([]PointResult, error) {
	points, samples := len(cfg.PERs), cfg.Samples
	if samples < 0 {
		samples = 0
	}
	words := (samples + 63) / 64

	engines := make([]*framesim.Engine, points)
	for i, per := range cfg.PERs {
		e, err := frameEngine(LERConfig{
			PER:              per,
			ErrorType:        cfg.ErrorType,
			WithPauliFrame:   cfg.WithPauliFrame,
			MaxLogicalErrors: cfg.MaxLogicalErrors,
			MaxWindows:       cfg.MaxWindows,
			Seed:             cfg.BaseSeed,
		}.withDefaults())
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}

	runs := make([][]LERResult, points)
	for i := range runs {
		runs[i] = make([]LERResult, samples)
	}
	var progress *progressCollector
	if cfg.Progress != nil && words > 0 {
		progress = newProgressCollector(cfg.PERs, words, cfg.Progress)
	}
	workers := resolveWorkers(cfg.Workers)
	err := forEachShardWorker(points*words, workers, func(w, k int) error {
		i, wd := k/words, k%words
		count := samples - wd*64
		if count > 64 {
			count = 64
		}
		rs, err := engines[i].RunBatch(ShardSeed(cfg.BaseSeed, i, wd), count)
		if err != nil {
			return err
		}
		for j, r := range rs {
			runs[i][wd*64+j] = frameToLER(r)
		}
		if progress != nil {
			progress.sampleDone(i)
		}
		return nil
	})
	if progress != nil {
		progress.close()
	}
	if err != nil {
		return nil, err
	}

	out := make([]PointResult, 0, points)
	for i, per := range cfg.PERs {
		pt := PointResult{PER: per}
		for _, r := range runs[i] {
			pt.LERs = append(pt.LERs, r.LER)
			pt.WindowCounts = append(pt.WindowCounts, float64(r.Windows))
			pt.GatesSaved = append(pt.GatesSaved, r.GatesSavedFrac())
			pt.SlotsSaved = append(pt.SlotsSaved, r.SlotsSavedFrac())
		}
		out = append(out, pt)
		if cfg.Progress != nil && words == 0 {
			cfg.Progress(i, per)
		}
	}
	return out, nil
}
