package experiments

import (
	"repro/internal/framesim"
	"repro/internal/layers"
)

// frameEngine compiles the framesim engine for one LER configuration.
// cfg must already have its defaults applied.
func frameEngine(cfg LERConfig) (*framesim.Engine, error) {
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	obs := framesim.ObserveX
	if cfg.ErrorType == LogicalZ {
		obs = framesim.ObserveZ
	}
	return framesim.New(framesim.Config{
		Observable:       obs,
		WithPauliFrame:   cfg.WithPauliFrame,
		MaxLogicalErrors: cfg.MaxLogicalErrors,
		MaxWindows:       cfg.MaxWindows,
		InitRounds:       cfg.InitRounds,
		DecoderRule:      cfg.DecoderRule,
		Model:            model,
		RefSeed:          cfg.Seed,
	})
}

// frameToLER converts a framesim shot into the harness result type.
func frameToLER(r framesim.ShotResult) LERResult {
	out := LERResult{
		Windows:         r.Windows,
		LogicalErrors:   r.LogicalErrors,
		CorrectionGates: r.CorrectionGates,
		CorrectionSlots: r.CorrectionSlots,
		OpsIssued:       r.OpsIssued,
		SlotsIssued:     r.SlotsIssued,
		OpsExecuted:     r.OpsExecuted,
		SlotsExecuted:   r.SlotsExecuted,
		InjectedErrors:  r.InjectedErrors,
	}
	if out.Windows > 0 {
		out.LER = float64(out.LogicalErrors) / float64(out.Windows)
	}
	return out
}

// runFrameLER runs a single shot on the frame engine.
func runFrameLER(cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	e, err := frameEngine(cfg)
	if err != nil {
		return LERResult{}, err
	}
	rs, err := e.RunBatch(cfg.Seed, 1)
	if err != nil {
		return LERResult{}, err
	}
	return frameToLER(rs[0]), nil
}

// sparseEngine compiles the sparse gap-skipping frame engine for one LER
// configuration; it shares frameEngine's config mapping via
// framesim.Config, so the two engines always describe the same protocol.
func sparseEngine(cfg LERConfig) (*framesim.Sparse, error) {
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	obs := framesim.ObserveX
	if cfg.ErrorType == LogicalZ {
		obs = framesim.ObserveZ
	}
	return framesim.NewSparse(framesim.Config{
		Observable:       obs,
		WithPauliFrame:   cfg.WithPauliFrame,
		MaxLogicalErrors: cfg.MaxLogicalErrors,
		MaxWindows:       cfg.MaxWindows,
		InitRounds:       cfg.InitRounds,
		DecoderRule:      cfg.DecoderRule,
		Model:            model,
		RefSeed:          cfg.Seed,
	})
}

// runSparseLER runs a single shot on the sparse frame engine.
func runSparseLER(cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	s, err := sparseEngine(cfg)
	if err != nil {
		return LERResult{}, err
	}
	rs, err := s.RunBatch(cfg.Seed, 1)
	if err != nil {
		return LERResult{}, err
	}
	return frameToLER(rs[0]), nil
}

// The framesim back end of sweeps lives in the shared pipeline
// (pipeline.go): shardRunner compiles one immutable engine per point and
// runs one 64-shot batch word per shard, seeded by
// ShardSeed(BaseSeed, point, word) — the same determinism contract as
// the stack sweep, though the two engines' RNG streams (and hence
// individual runs) differ.
