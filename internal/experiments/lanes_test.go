package experiments

import (
	"reflect"
	"testing"
)

func wideSpec(engine string, lanes int) Spec {
	return Spec{
		Engine:           engine,
		PERs:             []float64{4e-3, 9e-3},
		Samples:          200,
		MaxLogicalErrors: 3,
		MaxWindows:       1500,
		BaseSeed:         5150,
		Lanes:            lanes,
	}
}

// TestSpecLanesValidation pins the -lanes vocabulary: only the widths the
// wide kernels support pass, one word normalizes onto the canonical zero
// state, and the stack engine (which has no lanes) rejects any width.
func TestSpecLanesValidation(t *testing.T) {
	for _, lanes := range []int{0, 1, 2, 4, 8} {
		s := wideSpec(EngineNameFrameSim, lanes).Normalized()
		if err := s.Validate(); err != nil {
			t.Errorf("lanes=%d rejected: %v", lanes, err)
		}
	}
	for _, lanes := range []int{-1, 3, 5, 16} {
		s := wideSpec(EngineNameSparse, lanes).Normalized()
		if err := s.Validate(); err == nil {
			t.Errorf("lanes=%d accepted", lanes)
		}
	}
	s := wideSpec(EngineNameStack, 2).Normalized()
	if err := s.Validate(); err == nil {
		t.Error("stack engine accepted a lane width")
	}
	if got := wideSpec(EngineNameFrameSim, 1).Normalized().Lanes; got != 0 {
		t.Errorf("Lanes=1 normalized to %d, want 0", got)
	}
}

// TestShardEnumerationWide checks the lane-aware shard decomposition:
// wide shards cover 64·Lanes contiguous samples, the last one partially,
// and every 64-shot word draws the seed of its global word index — the
// same seed it would draw in a width-1 sweep.
func TestShardEnumerationWide(t *testing.T) {
	spec := wideSpec(EngineNameFrameSim, 2).Normalized() // 200 samples -> 2 shards/point
	if got := spec.shardsPerPoint(); got != 2 {
		t.Fatalf("shardsPerPoint = %d, want 2", got)
	}
	narrow := spec
	narrow.Lanes = 0
	for p := 0; p < len(spec.PERs); p++ {
		wordSeed := func(w int) int64 { return narrow.Shard(p*4 + w).Seed }
		for u, want := range []struct{ offset, count, words int }{
			{0, 128, 2}, {128, 72, 2},
		} {
			sh := spec.Shard(p*2 + u)
			if sh.Point != p || sh.Offset != want.offset || sh.Count != want.count {
				t.Fatalf("shard (p=%d,u=%d) = %+v, want offset %d count %d", p, u, sh, want.offset, want.count)
			}
			seeds := spec.WordSeeds(sh)
			if len(seeds) != want.words || seeds[0] != sh.Seed {
				t.Fatalf("shard (p=%d,u=%d): %d word seeds (first %d vs shard seed %d)",
					p, u, len(seeds), seeds[0], sh.Seed)
			}
			for k, s := range seeds {
				if s != wordSeed(u*2+k) {
					t.Errorf("point %d word %d: seed %d differs from width-1 enumeration %d",
						p, u*2+k, s, wordSeed(u*2+k))
				}
			}
		}
	}
	// Multi-word shard configs carry every word seed; single-word ones
	// stay byte-compatible with the width-1 encoding.
	sc := spec.ShardConfig(spec.Shard(0))
	if len(sc.Seeds) != 2 || sc.Seeds[0] != sc.Seed {
		t.Errorf("wide ShardConfig seeds = %v (seed %d)", sc.Seeds, sc.Seed)
	}
	if one := narrow.ShardConfig(narrow.Shard(0)); one.Seeds != nil {
		t.Errorf("width-1 ShardConfig carries a seed list: %v", one.Seeds)
	}
}

// TestSweepIdenticalAcrossLanes is the end-to-end width-invariance
// contract: the same sweep folded at Lanes 1, 2 and 8 — dense and sparse,
// any worker count — produces bit-identical PointResults, because lane
// extraction is exact and the word seed enumeration is width-independent.
func TestSweepIdenticalAcrossLanes(t *testing.T) {
	for _, engine := range []string{EngineNameFrameSim, EngineNameSparse} {
		base, err := wideSpec(engine, 0).SweepConfig()
		if err != nil {
			t.Fatal(err)
		}
		base.Workers = 1
		want, err := RunSweep(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range []int{2, 8} {
			cfg := base
			cfg.Lanes = lanes
			cfg.Workers = 3
			got, err := RunSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: lanes=%d sweep diverged from width-1:\n got %+v\nwant %+v",
					engine, lanes, got, want)
			}
		}
	}
}
