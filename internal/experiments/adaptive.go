// Adaptive rare-event sampling: the batch-granular early-stopping
// executor behind Spec.AdaptRelWidth. Points run sequentially; within a
// point, shards are computed in fixed-size batches on the worker pool,
// and after every batch barrier the pooled (m, R) counts decide — via
// the Wilson score interval — whether the point has reached its target
// relative precision. Because the decision only ever happens at batch
// boundaries and only depends on pooled results of fully computed
// batches, the set of computed shards (and hence the folded results) is
// bit-identical for any worker count.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/stats"
)

// runAdaptiveSpec executes a Normalized, Validated spec with
// AdaptRelWidth > 0. The shard enumeration, seeds, Lookup/Persist
// contract and fold are exactly those of RunSpec; the only difference is
// that trailing shards of a point that already met the precision target
// are never computed (their fold slots stay nil).
func runAdaptiveSpec(ctx context.Context, spec Spec, opt RunOptions) ([]PointResult, error) {
	spp := spec.shardsPerPoint()
	runs := make([][]LERResult, len(spec.PERs)*spp)
	workers := resolveWorkers(opt.Workers)
	runner := newShardRunner(spec, workers)

	// The stop rule is sample-granular in the spec but shard-granular in
	// execution: frame-engine shards carry up to 64·Lanes samples each.
	batchShards := spec.AdaptBatch
	if spec.batchEngine() {
		span := 64 * spec.lanes()
		batchShards = (spec.AdaptBatch + span - 1) / span
	}
	if batchShards < 1 {
		batchShards = 1
	}

	for p, per := range spec.PERs {
		base := p * spp
		for done := 0; done < spp; {
			batch := batchShards
			if done+batch > spp {
				batch = spp - done
			}
			first := base + done
			err := forEachShardWorkerCtx(ctx, batch, workers, func(w, k int) error {
				i := first + k
				sh := spec.Shard(i)
				if opt.Lookup != nil {
					if rs, ok := opt.Lookup(sh); ok && len(rs) == sh.Count {
						runs[i] = rs
						return nil
					}
				}
				rs, err := runner.run(w, sh)
				if err != nil {
					return err
				}
				if len(rs) != sh.Count {
					return fmt.Errorf("shard %d: engine produced %d runs, want %d", i, len(rs), sh.Count)
				}
				if opt.Persist != nil {
					if err := opt.Persist(sh, rs); err != nil {
						return fmt.Errorf("persist shard %d: %w", i, err)
					}
				}
				runs[i] = rs
				return nil
			})
			if err != nil {
				return nil, err
			}
			done += batch

			// Pool m and R over every computed shard of this point and
			// stop once the Wilson interval is tight enough. The m > 0
			// guard keeps zero-error points sampling: an all-zero pool
			// has no width to converge and pins lo = 0 anyway.
			var m, r int64
			nsamp := 0
			for u := 0; u < done; u++ {
				for i := range runs[base+u] {
					m += int64(runs[base+u][i].LogicalErrors)
					r += int64(runs[base+u][i].Windows)
					nsamp++
				}
			}
			if nsamp >= spec.AdaptMinSamples && m > 0 {
				phat := float64(m) / float64(r)
				if stats.WilsonHalfWidth(m, r, wilsonZ95) <= spec.AdaptRelWidth*phat {
					break
				}
			}
		}
		if opt.Progress != nil {
			opt.Progress(p, per)
		}
	}
	return FoldShards(spec, runs), nil
}
