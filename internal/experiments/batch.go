// Shard-batch execution: the compute entry point of the distributed
// sweep fan-out. A remote worker receives an arbitrary subset of a
// spec's shard indices, computes exactly those shards with the local
// engine stack, and returns the per-shard runs — which are a pure
// function of each shard's ShardConfig, so a batch computed anywhere
// folds bit-identically into the coordinator's sweep.
package experiments

import (
	"context"
	"fmt"
)

// NormalizeLERRuns recomputes each run's derived LER ratio from its
// integer counts. The counts are the ground truth; the division is
// exact to replay, so runs that crossed a JSON boundary (the result
// store, the worker wire format) normalize to exactly the bits the
// original computation produced.
func NormalizeLERRuns(runs []LERResult) {
	for i := range runs {
		runs[i].LER = 0
		if runs[i].Windows > 0 {
			runs[i].LER = float64(runs[i].LogicalErrors) / float64(runs[i].Windows)
		}
	}
}

// RunShardBatch computes the shards of spec named by indices (in any
// order, any subset) on a bounded worker pool and returns their runs,
// indexed like indices. Each shard's runs are exactly what RunSpec
// would compute for it — same engines, same seeds, same bits — so any
// partition of a sweep's shards across any number of RunShardBatch
// calls (local or remote) reassembles into the identical fold.
//
// opt.Lookup and opt.Persist have their RunSpec semantics (a worker's
// local shard cache); opt.Progress is ignored — batches are a shard-
// not point-granular unit. Cancelling ctx abandons undistributed
// shards and returns ctx.Err().
func RunShardBatch(ctx context.Context, spec Spec, indices []int, opt RunOptions) ([][]LERResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.NumShards()
	for k, i := range indices {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("shard batch: index %d (position %d) out of range [0,%d)", i, k, n)
		}
	}
	out := make([][]LERResult, len(indices))
	workers := resolveWorkers(opt.Workers)
	runner := newShardRunner(spec, workers)
	err := forEachShardWorkerCtx(ctx, len(indices), workers, func(w, k int) error {
		sh := spec.Shard(indices[k])
		if opt.Lookup != nil {
			if rs, ok := opt.Lookup(sh); ok && len(rs) == sh.Count {
				out[k] = rs
				return nil
			}
		}
		rs, err := runner.run(w, sh)
		if err != nil {
			return err
		}
		if len(rs) != sh.Count {
			return fmt.Errorf("shard %d: engine produced %d runs, want %d", sh.Index, len(rs), sh.Count)
		}
		if opt.Persist != nil {
			if err := opt.Persist(sh, rs); err != nil {
				return fmt.Errorf("persist shard %d: %w", sh.Index, err)
			}
		}
		out[k] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
