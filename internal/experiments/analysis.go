package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// PairedSweeps couples the with- and without-Pauli-frame sweeps taken at
// the same PER points (thesis Figs 5.15-5.24 all derive from this).
type PairedSweeps struct {
	Without []PointResult
	With    []PointResult
}

// RunPairedSweeps runs both configurations over the same PER grid.
func RunPairedSweeps(cfg SweepConfig) (PairedSweeps, error) {
	var out PairedSweeps
	cfg.WithPauliFrame = false
	var err error
	if out.Without, err = RunSweep(cfg); err != nil {
		return out, err
	}
	cfg.WithPauliFrame = true
	cfg.BaseSeed += 7_777_777 // independent samples, as in the thesis
	if out.With, err = RunSweep(cfg); err != nil {
		return out, err
	}
	return out, nil
}

// DiffPoint is one entry of the absolute-difference series of thesis
// Figs 5.17-5.18.
type DiffPoint struct {
	PER float64
	// Delta is δ_PL = PL(without PF) − PL(with PF) (thesis Eq. 5.2).
	Delta float64
	// SigmaMax is max(σ_with, σ_without) (thesis Eq. 5.3).
	SigmaMax float64
}

// DiffSeries computes the absolute LER difference with σmax bands.
func (p PairedSweeps) DiffSeries() []DiffPoint {
	n := len(p.Without)
	out := make([]DiffPoint, 0, n)
	for i := 0; i < n && i < len(p.With); i++ {
		out = append(out, DiffPoint{
			PER:      p.Without[i].PER,
			Delta:    p.Without[i].MeanLER() - p.With[i].MeanLER(),
			SigmaMax: math.Max(p.Without[i].StdLER(), p.With[i].StdLER()),
		})
	}
	return out
}

// CVPoint is one entry of the window-count coefficient-of-variation
// series (thesis Figs 5.19-5.20).
type CVPoint struct {
	PER               float64
	CVWithout, CVWith float64
}

// CVSeries computes the coefficient of variation of window counts.
func (p PairedSweeps) CVSeries() []CVPoint {
	n := len(p.Without)
	out := make([]CVPoint, 0, n)
	for i := 0; i < n && i < len(p.With); i++ {
		out = append(out, CVPoint{
			PER:       p.Without[i].PER,
			CVWithout: stats.CV(p.Without[i].WindowCounts),
			CVWith:    stats.CV(p.With[i].WindowCounts),
		})
	}
	return out
}

// TTestPoint is one entry of the significance series (thesis
// Figs 5.21-5.24).
type TTestPoint struct {
	PER                      float64
	IndependentP, PairedPVal float64
}

// TTestSeries runs both t-tests per PER point on the LER samples.
func (p PairedSweeps) TTestSeries() ([]TTestPoint, error) {
	n := len(p.Without)
	out := make([]TTestPoint, 0, n)
	for i := 0; i < n && i < len(p.With); i++ {
		ind, err := stats.TTestIndependent(p.Without[i].LERs, p.With[i].LERs)
		if err != nil {
			return nil, fmt.Errorf("PER %g: %w", p.Without[i].PER, err)
		}
		pair, err := stats.TTestPaired(p.Without[i].LERs, p.With[i].LERs)
		if err != nil {
			return nil, fmt.Errorf("PER %g: %w", p.Without[i].PER, err)
		}
		out = append(out, TTestPoint{
			PER:          p.Without[i].PER,
			IndependentP: ind.P,
			PairedPVal:   pair.P,
		})
	}
	return out, nil
}

// Significant reports whether the p-values are consistently below the
// conventional 0.05 criterion — the thesis' test for a real PF effect
// (it finds none).
func Significant(ps []TTestPoint) bool {
	if len(ps) == 0 {
		return false
	}
	below := 0
	for _, p := range ps {
		if p.IndependentP < 0.05 {
			below++
		}
	}
	// "Consistently": a majority of points, far beyond the 5% false
	// positive rate expected under the null.
	return below*2 > len(ps)
}

// MeanP returns the mean independent-test p-value (the thesis observes
// ≈0.5, the null expectation).
func MeanP(ps []TTestPoint) float64 {
	if len(ps) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, p := range ps {
		s += p.IndependentP
	}
	return s / float64(len(ps))
}

// PseudoThreshold estimates where the mean-LER curve crosses PL = p.
func PseudoThreshold(points []PointResult) float64 {
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]].PER < points[idx[b]].PER })
	for i, j := range idx {
		xs[i] = points[j].PER
		ys[i] = points[j].MeanLER()
	}
	return stats.PseudoThreshold(xs, ys)
}

// Table renders a sweep as an aligned text table with an optional CSV
// twin, the reproduction's stand-in for the thesis plots. Error bars are
// the 95% Wilson score interval on the pooled m/R proportion — honest in
// the rare-event regime where the old per-sample normal approximation
// (mean ± stddev) collapses to zero width.
func Table(points []PointResult, label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", label)
	fmt.Fprintf(&b, "%-12s %-12s %-12s %-12s %-8s %-12s %-12s\n",
		"PER", "LER", "wilson_lo", "wilson_hi", "n", "gates_saved", "slots_saved")
	for _, p := range points {
		lo, hi := p.WilsonLER()
		fmt.Fprintf(&b, "%-12.4e %-12.4e %-12.4e %-12.4e %-8d %-12.5f %-12.5f\n",
			p.PER, p.MeanLER(), lo, hi, len(p.LERs),
			mean(p.GatesSaved), mean(p.SlotsSaved))
	}
	return b.String()
}

// CSV renders the sweep in machine-readable form.
func CSV(points []PointResult) string {
	var b strings.Builder
	b.WriteString("per,ler_mean,wilson_lo,wilson_hi,samples,errors,windows,gates_saved,slots_saved\n")
	for _, p := range points {
		lo, hi := p.WilsonLER()
		fmt.Fprintf(&b, "%g,%g,%g,%g,%d,%d,%d,%g,%g\n",
			p.PER, p.MeanLER(), lo, hi, len(p.LERs), p.TotalErrors, p.TotalWindows,
			mean(p.GatesSaved), mean(p.SlotsSaved))
	}
	return b.String()
}
