package experiments

import (
	"reflect"
	"testing"
)

// TestSteaneSweepLaneWorkerInvariance pins the Steane sweep's
// determinism contract: dense and sparse frame sweeps fold to
// bit-identical PointResults at every lane width and worker count.
func TestSteaneSweepLaneWorkerInvariance(t *testing.T) {
	for _, engine := range []Engine{EngineFrameSim, EngineSparse} {
		base := SteaneSweepConfig{
			Engine:           engine,
			PERs:             []float64{6e-4, 3e-3},
			Samples:          200,
			MaxLogicalErrors: 3,
			MaxWindows:       1500,
			BaseSeed:         808,
			Workers:          1,
		}
		want, err := RunSteaneSweep(base)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != 2 || len(want[0].LERs) != 200 {
			t.Fatalf("%v: folded %d points / %d samples", engine, len(want), len(want[0].LERs))
		}
		for _, lanes := range []int{2, 8} {
			cfg := base
			cfg.Lanes = lanes
			cfg.Workers = 3
			got, err := RunSteaneSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v: lanes=%d workers=3 sweep diverged from width-1 serial run", engine, lanes)
			}
		}
	}
}

// TestSteaneSweepRejectsBadLanes: the width vocabulary and the
// stack-engine restriction are enforced at the sweep entry point.
func TestSteaneSweepRejectsBadLanes(t *testing.T) {
	cfg := SteaneSweepConfig{PERs: []float64{1e-3}, Samples: 1, Lanes: 3, Engine: EngineFrameSim}
	if _, err := RunSteaneSweep(cfg); err == nil {
		t.Error("lanes=3 accepted")
	}
	cfg.Lanes = 2
	cfg.Engine = EngineStack
	if _, err := RunSteaneSweep(cfg); err == nil {
		t.Error("stack engine accepted a lane width")
	}
}

// TestSteaneStackFrameAgreement runs the same Steane LER point on the
// oracle stack and the frame engine. The engines' RNG streams differ, so
// only statistical agreement is required: with the scripted differential
// test pinning exact window semantics, this guards the sampled-noise
// wiring (model, seeds, termination) at the experiments level. The
// pooled LERs must land within a factor of two of each other — loose,
// but far tighter than the order of magnitude a protocol bug (wrong
// model, wrong observable, double-counted rounds) produces.
func TestSteaneStackFrameAgreement(t *testing.T) {
	const per = 8e-3
	stackCfg := SteaneSweepConfig{
		Engine:           EngineStack,
		PERs:             []float64{per},
		Samples:          3,
		MaxLogicalErrors: 12,
		MaxWindows:       4000,
		BaseSeed:         2024,
	}
	stack, err := RunSteaneSweep(stackCfg)
	if err != nil {
		t.Fatal(err)
	}
	frameCfg := stackCfg
	frameCfg.Engine = EngineFrameSim
	frameCfg.Samples = 64
	frameCfg.MaxLogicalErrors = 4
	frame, err := RunSteaneSweep(frameCfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, pf := stack[0].PooledLER(), frame[0].PooledLER()
	if ps <= 0 || pf <= 0 {
		t.Fatalf("degenerate pooled LERs: stack %v, frame %v", ps, pf)
	}
	if ratio := ps / pf; ratio < 0.5 || ratio > 2 {
		t.Errorf("stack LER %.3e vs frame LER %.3e (ratio %.2f) disagree", ps, pf, ratio)
	}
}

// TestSteanePauliFrameSavings: with the Pauli frame in the stack, the
// correction gates must be absorbed — fewer ops leave the frame than
// enter it — and the run must report a nonzero savings fraction, like
// the SC17 stack does.
func TestSteanePauliFrameSavings(t *testing.T) {
	r, err := RunSteaneLER(LERConfig{
		PER:              8e-3,
		WithPauliFrame:   true,
		MaxLogicalErrors: 6,
		MaxWindows:       3000,
		Seed:             99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows == 0 || r.CorrectionGates == 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	if r.OpsExecuted >= r.OpsIssued {
		t.Errorf("frame absorbed nothing: issued %d, executed %d", r.OpsIssued, r.OpsExecuted)
	}
	if r.GatesSavedFrac() <= 0 {
		t.Errorf("gates saved fraction %v, want > 0", r.GatesSavedFrac())
	}
}
