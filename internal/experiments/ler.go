// Package experiments implements the evaluation harness of the thesis
// (Chapter 5): the logical-error-rate windows protocol (Listing 5.7) on
// the test stack of Fig 5.8, physical-error-rate sweeps with and without
// a Pauli frame, the derived statistics series (LER difference, window-
// count coefficient of variation, t-tests — Figs 5.15-5.24), the Pauli
// frame savings counters (Figs 5.25-5.26) and the analytic upper bound of
// Eq. 5.12 (Fig 5.27).
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/stats"
	"repro/internal/surface"
)

// ErrorType selects which logical error the experiment counts.
type ErrorType int

// Experiment error types: logical X errors are detected on |0⟩_L with
// the Z_L probe, logical Z errors on |+⟩_L with the X_L probe
// (thesis Fig 5.10).
const (
	LogicalX ErrorType = iota
	LogicalZ
)

// String names the error type.
func (e ErrorType) String() string {
	if e == LogicalZ {
		return "Z"
	}
	return "X"
}

// Engine selects the simulation engine behind the LER experiments.
type Engine int

// Engines.
const (
	// EngineStack drives the full QPDO layer stack of thesis Fig 5.8
	// (ninja star → counters → [pauli frame] → error layer → CHP
	// tableau), one shot at a time. It is the semantic oracle: every
	// layer behaves exactly as the thesis specifies.
	EngineStack Engine = iota
	// EngineFrameSim drives the bit-sliced Pauli-frame engine
	// (internal/framesim): 64 Monte-Carlo shots propagate per uint64
	// word against a noiseless CHP reference run. Exact for the LER
	// protocol (Clifford circuits + Pauli noise); validated against
	// EngineStack by differential and statistical tests.
	EngineFrameSim
	// EngineSparse drives the sparse gap-skipping variant of the frame
	// engine (framesim.Sparse): identical protocol semantics, but only
	// nonzero frame entries are touched and whole noiseless windows are
	// skipped via the geometric gap sampler — the engine of choice below
	// pseudo-threshold where almost every window is empty. Scripted runs
	// are bit-identical to EngineFrameSim; sampled runs agree
	// statistically (the sparse engine skips the unobservable
	// reset-gauge RNG draws, so the streams differ).
	EngineSparse
)

// String names the engine like the -engine flag values.
func (e Engine) String() string {
	switch e {
	case EngineFrameSim:
		return "framesim"
	case EngineSparse:
		return "sparse"
	}
	return "stack"
}

// ParseEngine maps a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "stack", "chp", "qpdo":
		return EngineStack, nil
	case "framesim", "frame":
		return EngineFrameSim, nil
	case "sparse":
		return EngineSparse, nil
	}
	return EngineStack, fmt.Errorf("unknown engine %q (want stack, framesim or sparse)", s)
}

// LERConfig parameterizes one logical-error-rate run.
type LERConfig struct {
	// Engine selects the simulation engine (default: the QPDO stack).
	Engine Engine
	// PER is the physical error rate p of the depolarizing model.
	PER float64
	// ErrorType selects the monitored logical error.
	ErrorType ErrorType
	// WithPauliFrame inserts the Pauli frame layer (thesis Fig 5.8).
	WithPauliFrame bool
	// MaxLogicalErrors terminates the run (the thesis uses 50).
	MaxLogicalErrors int
	// MaxWindows caps the run length regardless of detected errors.
	MaxWindows int
	// InitRounds is the number of ESM rounds during (noiseless)
	// initialization; the thesis prescribes d = 3.
	InitRounds int
	// DecoderRule selects the windowed decoding rule (ablation hook).
	DecoderRule decoder.Rule
	// Model optionally overrides the error channel (default: the
	// thesis' symmetric depolarizing model at rate PER).
	Model *layers.Model
	// Seed drives all randomness of the run.
	Seed int64
	// Lanes is the frame engines' batch width in 64-shot words for sweep
	// execution (0 or 1 = single words; 2, 4, 8 = wide kernels). RunLER
	// itself always runs one trajectory, so the field only shapes how the
	// sweep pipeline groups this configuration's shots — never their
	// values, because lane extraction is bit-identical.
	Lanes int
	// Workers bounds the pool of sample-parallel drivers built on this
	// config (RunLERSamples); RunLER itself is a single sequential
	// trajectory. Zero means runtime.GOMAXPROCS(0).
	Workers int
}

func (c LERConfig) withDefaults() LERConfig {
	if c.MaxLogicalErrors <= 0 {
		c.MaxLogicalErrors = 50
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 2_000_000
	}
	if c.InitRounds <= 0 {
		c.InitRounds = 3
	}
	return c
}

// LERResult reports one run.
type LERResult struct {
	// Windows is R of thesis Eq. 5.1.
	Windows int
	// LogicalErrors is m of thesis Eq. 5.1.
	LogicalErrors int
	// LER is m / R.
	LER float64

	// CorrectionGates / CorrectionSlots count what the decoder issued
	// (before any Pauli frame absorbs them).
	CorrectionGates int
	CorrectionSlots int

	// OpsIssued / SlotsIssued count the operation stream entering the
	// Pauli frame position; OpsExecuted / SlotsExecuted count what left
	// it toward the error layer. Without a Pauli frame the pairs match.
	OpsIssued     int
	SlotsIssued   int
	OpsExecuted   int
	SlotsExecuted int

	// InjectedErrors counts physical errors inserted by the error layer.
	InjectedErrors int
}

// GatesSavedFrac returns the fraction of gates the Pauli frame filtered
// (thesis Fig 5.25a).
func (r LERResult) GatesSavedFrac() float64 {
	if r.OpsIssued == 0 {
		return 0
	}
	return float64(r.OpsIssued-r.OpsExecuted) / float64(r.OpsIssued)
}

// SlotsSavedFrac returns the fraction of time slots filtered
// (thesis Fig 5.25b).
func (r LERResult) SlotsSavedFrac() float64 {
	if r.SlotsIssued == 0 {
		return 0
	}
	return float64(r.SlotsIssued-r.SlotsExecuted) / float64(r.SlotsIssued)
}

// lerStack bundles the layers of the Fig 5.8 test stack.
type lerStack struct {
	star       *surface.NinjaStarLayer
	counterTop *layers.CounterLayer
	counterMid *layers.CounterLayer
	pf         *layers.PauliFrameLayer
	errl       *layers.ErrorLayer
	chp        *layers.ChpCore
}

// buildStack assembles: ninja star → counter → [pauli frame] → counter →
// error → chp (the bottom counter of Fig 5.8 is omitted: its stream is
// identical to the error layer's input plus injected errors, which the
// error layer already counts).
func buildStack(cfg LERConfig) (*lerStack, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &lerStack{}
	s.chp = layers.NewChpCore(rand.New(rand.NewSource(rng.Int63())))
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	s.errl = layers.NewErrorLayerModel(s.chp, model, rand.New(rand.NewSource(rng.Int63())))
	s.counterMid = layers.NewCounterLayer(s.errl)
	var below qpdo.Core = s.counterMid
	if cfg.WithPauliFrame {
		s.pf = layers.NewPauliFrameLayer(below)
		below = s.pf
	}
	s.counterTop = layers.NewCounterLayer(below)
	s.star = surface.NewNinjaStarLayer(s.counterTop, surface.Config{
		Ancilla:     surface.AncillaDedicated,
		InitRounds:  cfg.InitRounds,
		DecoderRule: cfg.DecoderRule,
	})
	if err := s.star.CreateQubits(1); err != nil {
		return nil, err
	}
	return s, nil
}

// reset restores a built stack to the state buildStack(cfg) would
// produce, reusing every allocation. The RNG derivation chain mirrors
// buildStack exactly (one master RNG seeded by cfg.Seed, first child for
// the CHP core, second for the error layer), so a reused stack is
// bit-identical to a fresh one. The ninja-star layer needs no explicit
// reset: the protocol's initial Prep re-establishes rotation, dance mode,
// decoder carries and logical state, and its cached ESM circuits are pure
// functions of the fixed geometry.
func (s *lerStack) reset(cfg LERConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.chp.Reset(rand.New(rand.NewSource(rng.Int63())))
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	s.errl.Reconfigure(model, rand.New(rand.NewSource(rng.Int63())))
	s.counterMid.ResetStats()
	s.counterTop.ResetStats()
	if s.pf != nil {
		s.pf.Reset()
	}
}

// stackPool hands one reusable stack to each Monte-Carlo worker. The
// pooled stacks must share the structural configuration (WithPauliFrame,
// InitRounds, DecoderRule); per-run fields (PER, Seed, Model) are applied
// by reset.
type stackPool struct {
	stacks []*lerStack
}

func newStackPool(workers int) *stackPool {
	return &stackPool{stacks: make([]*lerStack, workers)}
}

// run executes one LER run on worker w's stack, building it on first use.
func (p *stackPool) run(w int, cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	s := p.stacks[w]
	if s == nil {
		var err error
		s, err = buildStack(cfg)
		if err != nil {
			return LERResult{}, err
		}
		p.stacks[w] = s
	} else {
		s.reset(cfg)
	}
	return runLER(cfg, s)
}

// RunLER executes the windows protocol of thesis Listing 5.7 for one
// physical error rate: initialize the logical qubit noiselessly, then
// repeatedly run QEC windows, count windows, and — whenever the data
// qubits carry no observable error — probe for a logical error.
func RunLER(cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Engine {
	case EngineFrameSim:
		return runFrameLER(cfg)
	case EngineSparse:
		return runSparseLER(cfg)
	}
	s, err := buildStack(cfg)
	if err != nil {
		return LERResult{}, err
	}
	return runLER(cfg, s)
}

// runLER drives the windows protocol on an initialized stack; cfg must
// already have its defaults applied.
func runLER(cfg LERConfig, s *lerStack) (LERResult, error) {
	// Noiseless initialization (bypass mode).
	init := circuit.New().Add(gates.Prep, 0)
	if cfg.ErrorType == LogicalZ {
		init.Add(gates.H, 0) // |+⟩_L on the rotated lattice
	}
	if err := qpdo.WithBypass(s.star, func() error {
		_, err := qpdo.Run(s.star, init)
		return err
	}); err != nil {
		return LERResult{}, err
	}

	probe := s.star.ProbeZL
	if cfg.ErrorType == LogicalZ {
		probe = s.star.ProbeXL
	}
	expected := 0

	var res LERResult
	for res.LogicalErrors < cfg.MaxLogicalErrors && res.Windows < cfg.MaxWindows {
		w, err := s.star.RunWindow(0)
		if err != nil {
			return res, err
		}
		res.CorrectionGates += w.CorrectionGates
		res.CorrectionSlots += w.CorrectionSlots
		res.Windows++

		// Diagnostics in bypass mode: an error-free ESM round reveals
		// observable errors; only a clean state is probed for a logical
		// error (thesis §5.3, Listing 5.7).
		if err := qpdo.WithBypass(s.star, func() error {
			round, err := s.star.RunESMRound(0)
			if err != nil {
				return err
			}
			if round.A != 0 || round.B != 0 {
				return nil // observable physical errors remain
			}
			out, err := probe(0)
			if err != nil {
				return err
			}
			if out != expected {
				res.LogicalErrors++
				expected = out
			}
			return nil
		}); err != nil {
			return res, err
		}
	}
	if res.Windows > 0 {
		res.LER = float64(res.LogicalErrors) / float64(res.Windows)
	}
	res.OpsIssued = s.counterTop.Stats.Ops
	res.SlotsIssued = s.counterTop.Stats.Slots
	res.OpsExecuted = s.counterMid.Stats.Ops
	res.SlotsExecuted = s.counterMid.Stats.Slots
	res.InjectedErrors = s.errl.Stats.Total()
	return res, nil
}

// PointResult aggregates repeated runs at one physical error rate.
type PointResult struct {
	PER float64
	// LERs holds one logical error rate per repetition.
	LERs []float64
	// WindowCounts holds R per repetition (for the CV analysis of
	// thesis Figs 5.19-5.20).
	WindowCounts []float64
	// GatesSaved / SlotsSaved hold the per-run saving fractions.
	GatesSaved []float64
	SlotsSaved []float64
	// TotalErrors / TotalWindows pool m and R (thesis Eq. 5.1) over the
	// repetitions that actually ran — the binomial counts behind the
	// Wilson error bars and the adaptive stopping rule. For adaptive
	// sweeps len(LERs) < Samples and these pools are the authoritative
	// statistics.
	TotalErrors  int64
	TotalWindows int64
}

// MeanLER returns the mean logical error rate of the point.
func (p PointResult) MeanLER() float64 { return mean(p.LERs) }

// StdLER returns the sample standard deviation of the LERs.
func (p PointResult) StdLER() float64 { return stddev(p.LERs) }

// PooledLER returns the pooled estimate m/R over all repetitions.
func (p PointResult) PooledLER() float64 {
	if p.TotalWindows == 0 {
		return math.NaN()
	}
	return float64(p.TotalErrors) / float64(p.TotalWindows)
}

// WilsonLER returns the 95% Wilson score interval on the pooled
// logical-errors-per-window proportion.
func (p PointResult) WilsonLER() (lo, hi float64) {
	return stats.WilsonInterval(p.TotalErrors, p.TotalWindows, wilsonZ95)
}

// wilsonZ95 is the two-sided 95% normal quantile used for all sweep
// error bars and the adaptive stopping rule.
const wilsonZ95 = 1.959963984540054

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// SweepConfig parameterizes a PER sweep (thesis Figs 5.11-5.14).
type SweepConfig struct {
	// Engine selects the simulation engine (default: the QPDO stack).
	Engine           Engine
	PERs             []float64
	Samples          int
	ErrorType        ErrorType
	WithPauliFrame   bool
	MaxLogicalErrors int
	MaxWindows       int
	BaseSeed         int64
	// Lanes widens frame-engine shards to Lanes 64-shot words (see
	// Spec.Lanes): 0 or 1 keeps single words, 2/4/8 run the wide kernels.
	// Folded results are bit-identical at every width; only throughput
	// and shard granularity change. Invalid for the stack engine.
	Lanes int
	// AdaptRelWidth, when > 0, enables adaptive per-point early
	// stopping: a point stops sampling once the 95% Wilson interval on
	// its pooled LER is narrower than AdaptRelWidth relative to the
	// point estimate (half-width ≤ AdaptRelWidth · m/R), after at least
	// AdaptMinSamples samples and at least one observed logical error.
	// Stopping is batch-granular — the decision is re-evaluated only at
	// multiples of AdaptBatch samples — which keeps the folded results
	// bit-identical for any worker count.
	AdaptRelWidth float64
	// AdaptMinSamples is the minimum sample count before early stop is
	// considered (default 64 when adaptive sampling is enabled).
	AdaptMinSamples int
	// AdaptBatch is the early-stop decision granularity in samples
	// (default 256 when adaptive sampling is enabled; rounded up to
	// whole 64-shot words for the frame engines).
	AdaptBatch int
	// Workers bounds the Monte-Carlo worker pool. Zero means
	// runtime.GOMAXPROCS(0); the results are bit-identical for any
	// value because every (point × sample) run derives its own RNG from
	// BaseSeed via ShardSeed.
	Workers int
	// Progress, when non-nil, receives one call per completed point, in
	// ascending point order, serialized through a single collector
	// goroutine (safe to use from the cmd/ tools without locking).
	Progress func(point int, per float64)
}

// RunSweep executes repeated LER runs over a PER range through the
// (spec → shards → fold) pipeline of RunSpec. The (point × sample) runs
// are independent — each derives its RNG from ShardSeed(BaseSeed, point,
// unit) — and are fanned out over a bounded worker pool; each worker
// reuses one simulator stack across its runs (reset between samples,
// bit-identical to rebuilding); results are folded in deterministic
// (point, sample) order.
func RunSweep(cfg SweepConfig) ([]PointResult, error) {
	return RunSpec(context.Background(), SpecOf(cfg), RunOptions{
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
	})
}

// LogSpace returns n log-spaced values from lo to hi inclusive.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// UpperBoundRelativeImprovement evaluates thesis Eq. 5.12: the maximum
// relative LER improvement a Pauli frame can deliver for a surface code
// of distance d with tsESM time slots per ESM round.
func UpperBoundRelativeImprovement(d, tsESM int) float64 {
	if d < 2 || tsESM < 1 {
		return math.NaN()
	}
	return 1 / float64((d-1)*tsESM+1)
}

// WindowTimeSlots returns tswindow of thesis Eq. 5.6-5.9 for distance d:
// (d−1) ESM rounds of tsESM slots plus one correction slot when
// corrections are pending.
func WindowTimeSlots(d, tsESM int, corrections bool) int {
	ts := (d - 1) * tsESM
	if corrections {
		ts++
	}
	return ts
}

// FmtPoint renders one sweep point like the thesis data tables, with a
// 95% Wilson interval on the pooled LER as the error bar.
func FmtPoint(p PointResult) string {
	lo, hi := p.WilsonLER()
	return fmt.Sprintf("PER=%.3e  LER=%.3e  [%.2e, %.2e]95%%  (n=%d)",
		p.PER, p.MeanLER(), lo, hi, len(p.LERs))
}
