// Steane [[7,1,3]] LER experiments: the windows protocol of thesis
// Listing 5.7 driven over a Steane logical qubit instead of the SC17
// ninja star. The same three engines back it — the QPDO oracle stack
// (steane.Layer → counters → [pauli frame] → error layer → CHP), the
// bit-sliced Steane frame engine and its sparse window-skipping variant —
// with the same determinism contract: every (point × unit) run derives
// its RNG from ShardSeed(BaseSeed, point, unit), so results are
// bit-identical for any worker count and, for the frame engines, any
// lane width.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/circuit"
	"repro/internal/framesim"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/steane"
)

// steaneStack bundles the Steane analogue of the Fig 5.8 test stack.
type steaneStack struct {
	lay        *steane.Layer
	counterTop *layers.CounterLayer
	counterMid *layers.CounterLayer
	pf         *layers.PauliFrameLayer
	errl       *layers.ErrorLayer
	chp        *layers.ChpCore
}

// buildSteaneStack assembles: steane layer → counter → [pauli frame] →
// counter → error → chp, with the RNG derivation chain of buildStack
// (one master RNG seeded by cfg.Seed, first child for the CHP core,
// second for the error layer).
func buildSteaneStack(cfg LERConfig) (*steaneStack, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &steaneStack{}
	s.chp = layers.NewChpCore(rand.New(rand.NewSource(rng.Int63())))
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	s.errl = layers.NewErrorLayerModel(s.chp, model, rand.New(rand.NewSource(rng.Int63())))
	s.counterMid = layers.NewCounterLayer(s.errl)
	var below qpdo.Core = s.counterMid
	if cfg.WithPauliFrame {
		s.pf = layers.NewPauliFrameLayer(below)
		below = s.pf
	}
	s.counterTop = layers.NewCounterLayer(below)
	s.lay = steane.NewLayer(s.counterTop)
	if err := s.lay.CreateQubits(1); err != nil {
		return nil, err
	}
	return s, nil
}

// reset restores a built stack to the state buildSteaneStack(cfg) would
// produce, reusing every allocation. The Steane layer needs no explicit
// reset: the protocol's initial Prep re-projects the codespace and
// clears the two-round decode history.
func (s *steaneStack) reset(cfg LERConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.chp.Reset(rand.New(rand.NewSource(rng.Int63())))
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	s.errl.Reconfigure(model, rand.New(rand.NewSource(rng.Int63())))
	s.counterMid.ResetStats()
	s.counterTop.ResetStats()
	if s.pf != nil {
		s.pf.Reset()
	}
}

// steanePool hands one reusable Steane stack to each worker, like
// stackPool does for the SC17 stack.
type steanePool struct {
	stacks []*steaneStack
}

func newSteanePool(workers int) *steanePool {
	return &steanePool{stacks: make([]*steaneStack, workers)}
}

func (p *steanePool) run(w int, cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	s := p.stacks[w]
	if s == nil {
		var err error
		s, err = buildSteaneStack(cfg)
		if err != nil {
			return LERResult{}, err
		}
		p.stacks[w] = s
	} else {
		s.reset(cfg)
	}
	return runSteaneLER(cfg, s)
}

// steaneFrameConfig maps an LER configuration to the frame-engine config,
// exactly like frameEngine does for the SC17 engines.
func steaneFrameConfig(cfg LERConfig) framesim.Config {
	model := layers.Depolarizing(cfg.PER)
	if cfg.Model != nil {
		model = *cfg.Model
	}
	obs := framesim.ObserveX
	if cfg.ErrorType == LogicalZ {
		obs = framesim.ObserveZ
	}
	return framesim.Config{
		Observable:       obs,
		WithPauliFrame:   cfg.WithPauliFrame,
		MaxLogicalErrors: cfg.MaxLogicalErrors,
		MaxWindows:       cfg.MaxWindows,
		Model:            model,
		RefSeed:          cfg.Seed,
	}
}

// RunSteaneLER executes the windows protocol for one Steane logical
// qubit at one physical error rate, on the engine cfg selects.
func RunSteaneLER(cfg LERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Engine {
	case EngineFrameSim, EngineSparse:
		e, err := newSteaneEngine(cfg.Engine, cfg)
		if err != nil {
			return LERResult{}, err
		}
		rs, err := e.RunBatch(cfg.Seed, 1)
		if err != nil {
			return LERResult{}, err
		}
		return frameToLER(rs[0]), nil
	}
	s, err := buildSteaneStack(cfg)
	if err != nil {
		return LERResult{}, err
	}
	return runSteaneLER(cfg, s)
}

func newSteaneEngine(engine Engine, cfg LERConfig) (*framesim.SteaneEngine, error) {
	if engine == EngineSparse {
		return framesim.NewSteaneSparse(steaneFrameConfig(cfg))
	}
	return framesim.NewSteane(steaneFrameConfig(cfg))
}

// runSteaneLER drives the windows protocol on an initialized Steane
// stack; cfg must already have its defaults applied. One window is one
// noisy ESM round with two-round-agreement decode (the Steane layer
// decodes every round; the SC17 star needs two rounds per window),
// followed by the shared noiseless diagnostic-and-probe step.
func runSteaneLER(cfg LERConfig, s *steaneStack) (LERResult, error) {
	init := circuit.New().Add(gates.Prep, 0)
	if cfg.ErrorType == LogicalZ {
		init.Add(gates.H, 0) // |+⟩_L: transversal H is the logical H
	}
	if err := qpdo.WithBypass(s.lay, func() error {
		_, err := qpdo.Run(s.lay, init)
		return err
	}); err != nil {
		return LERResult{}, err
	}

	probe := s.lay.ProbeZL
	if cfg.ErrorType == LogicalZ {
		probe = s.lay.ProbeXL
	}
	expected := 0

	var res LERResult
	for res.LogicalErrors < cfg.MaxLogicalErrors && res.Windows < cfg.MaxWindows {
		info, err := s.lay.RunWindowInfo(0)
		if err != nil {
			return res, err
		}
		res.CorrectionGates += info.Gates
		if info.Gates > 0 {
			res.CorrectionSlots++
		}
		res.Windows++

		if err := qpdo.WithBypass(s.lay, func() error {
			sx, sz, err := s.lay.RunESMRound(0)
			if err != nil {
				return err
			}
			if sx != 0 || sz != 0 {
				return nil // observable physical errors remain
			}
			out, err := probe(0)
			if err != nil {
				return err
			}
			if out != expected {
				res.LogicalErrors++
				expected = out
			}
			return nil
		}); err != nil {
			return res, err
		}
	}
	if res.Windows > 0 {
		res.LER = float64(res.LogicalErrors) / float64(res.Windows)
	}
	res.OpsIssued = s.counterTop.Stats.Ops
	res.SlotsIssued = s.counterTop.Stats.Slots
	res.OpsExecuted = s.counterMid.Stats.Ops
	res.SlotsExecuted = s.counterMid.Stats.Slots
	res.InjectedErrors = s.errl.Stats.Total()
	return res, nil
}

// SteaneSweepConfig parameterizes a Steane PER sweep. The fields mirror
// SweepConfig; there is no serialized spec because the Steane study is
// not wired into the sweep service.
type SteaneSweepConfig struct {
	// Engine selects the simulation engine (default: the QPDO stack).
	Engine           Engine
	PERs             []float64
	Samples          int
	ErrorType        ErrorType
	WithPauliFrame   bool
	MaxLogicalErrors int
	MaxWindows       int
	BaseSeed         int64
	// Lanes widens frame-engine shards to Lanes 64-shot words (0 or 1 =
	// single words; 2, 4, 8 = wide kernels). Folded results are
	// bit-identical at every width. Invalid for the stack engine.
	Lanes int
	// Workers bounds the Monte-Carlo worker pool (0 = GOMAXPROCS);
	// results are bit-identical for any value.
	Workers int
	// Progress, when non-nil, receives one call per completed point in
	// ascending point order.
	Progress func(point int, per float64)
}

// RunSteaneSweep executes repeated Steane LER runs over a PER range:
// stack shards are single (point × sample) runs, frame shards are wide
// 64·Lanes-shot batches whose words are seeded by global word index —
// the same enumeration at every width, so the folded results are
// bit-identical for any Lanes and Workers setting.
func RunSteaneSweep(cfg SteaneSweepConfig) ([]PointResult, error) {
	if cfg.MaxLogicalErrors <= 0 {
		cfg.MaxLogicalErrors = 50
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 2_000_000
	}
	if cfg.Samples < 0 {
		cfg.Samples = 0
	}
	lanes := cfg.Lanes
	if lanes <= 1 {
		lanes = 1
	}
	switch cfg.Lanes {
	case 0, 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("steane sweep: lane width %d not supported (want 1, 2, 4 or 8)", cfg.Lanes)
	}
	batch := cfg.Engine == EngineFrameSim || cfg.Engine == EngineSparse
	if !batch && cfg.Lanes > 1 {
		return nil, fmt.Errorf("steane sweep: lanes apply to the frame engines only, not %q", cfg.Engine)
	}

	span := 64 * lanes
	spp := cfg.Samples
	if batch {
		spp = (cfg.Samples + span - 1) / span
	}
	points := len(cfg.PERs)
	out := make([]PointResult, points)
	for p, per := range cfg.PERs {
		out[p].PER = per
	}
	if spp == 0 {
		if cfg.Progress != nil {
			for p, per := range cfg.PERs {
				cfg.Progress(p, per)
			}
		}
		return out, nil
	}

	lerConfig := func(p int, seed int64) LERConfig {
		return LERConfig{
			Engine:           cfg.Engine,
			PER:              cfg.PERs[p],
			ErrorType:        cfg.ErrorType,
			WithPauliFrame:   cfg.WithPauliFrame,
			MaxLogicalErrors: cfg.MaxLogicalErrors,
			MaxWindows:       cfg.MaxWindows,
			Seed:             seed,
		}
	}

	workers := resolveWorkers(cfg.Workers)
	pool := newSteanePool(workers)
	// One immutable engine per point, compiled on first use with the
	// sweep's BaseSeed as the noiseless reference — shared across workers
	// like the shardRunner's SC17 engines.
	once := make([]sync.Once, points)
	engines := make([]*framesim.SteaneEngine, points)
	engErr := make([]error, points)
	engine := func(p int) (*framesim.SteaneEngine, error) {
		once[p].Do(func() {
			engines[p], engErr[p] = newSteaneEngine(cfg.Engine, lerConfig(p, cfg.BaseSeed).withDefaults())
		})
		return engines[p], engErr[p]
	}

	var progress *progressCollector
	if cfg.Progress != nil {
		progress = newProgressCollector(cfg.PERs, spp, cfg.Progress)
	}
	runs := make([][]LERResult, points*spp)
	err := forEachShardWorker(points*spp, workers, func(w, i int) error {
		p, u := i/spp, i%spp
		if batch {
			e, err := engine(p)
			if err != nil {
				return err
			}
			shots := cfg.Samples - u*span
			if shots > span {
				shots = span
			}
			seeds := make([]int64, (shots+63)/64)
			for k := range seeds {
				seeds[k] = ShardSeed(cfg.BaseSeed, p, u*lanes+k)
			}
			rs, err := e.RunBatchWide(seeds, shots)
			if err != nil {
				return err
			}
			runs[i] = frameShotsToLER(rs)
		} else {
			r, err := pool.run(w, lerConfig(p, ShardSeed(cfg.BaseSeed, p, u)))
			if err != nil {
				return err
			}
			runs[i] = []LERResult{r}
		}
		if progress != nil {
			progress.sampleDone(p)
		}
		return nil
	})
	if progress != nil {
		progress.close()
	}
	if err != nil {
		return nil, err
	}

	for i, rs := range runs {
		pt := &out[i/spp]
		for _, r := range rs {
			pt.LERs = append(pt.LERs, r.LER)
			pt.WindowCounts = append(pt.WindowCounts, float64(r.Windows))
			pt.GatesSaved = append(pt.GatesSaved, r.GatesSavedFrac())
			pt.SlotsSaved = append(pt.SlotsSaved, r.SlotsSavedFrac())
			pt.TotalErrors += int64(r.LogicalErrors)
			pt.TotalWindows += int64(r.Windows)
		}
	}
	return out, nil
}
