package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunLERZeroNoise(t *testing.T) {
	r, err := RunLER(LERConfig{PER: 0, MaxWindows: 50, MaxLogicalErrors: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows != 50 || r.LogicalErrors != 0 || r.LER != 0 {
		t.Errorf("zero-noise run: %+v", r)
	}
	if r.CorrectionGates != 0 {
		t.Errorf("zero-noise corrections: %d", r.CorrectionGates)
	}
	// 50 windows × 2 ESM rounds × 48 ops flow through the counters.
	if r.OpsIssued != 50*2*48 {
		t.Errorf("OpsIssued = %d, want %d", r.OpsIssued, 50*2*48)
	}
	if r.OpsExecuted != r.OpsIssued {
		t.Error("without corrections nothing should differ across the PF position")
	}
}

func TestRunLERScalesQuadratically(t *testing.T) {
	// Below the pseudo-threshold the d=3 code suppresses errors like p²;
	// compare LER at two rates differing by 3× and require superlinear
	// scaling (ratio well above 3, well below 27).
	lo, err := RunLER(LERConfig{PER: 5e-4, MaxLogicalErrors: 30, MaxWindows: 600000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunLER(LERConfig{PER: 1.5e-3, MaxLogicalErrors: 30, MaxWindows: 600000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := hi.LER / lo.LER
	if ratio < 4 || ratio > 30 {
		t.Errorf("LER ratio for 3× PER = %.2f (lo=%.2e hi=%.2e), want quadratic-ish",
			ratio, lo.LER, hi.LER)
	}
}

func TestRunLERBothErrorTypes(t *testing.T) {
	// X and Z experiments should give similar LERs under the symmetric
	// depolarizing model (thesis §5.3.2).
	x, err := RunLER(LERConfig{PER: 2e-3, ErrorType: LogicalX, MaxLogicalErrors: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	z, err := RunLER(LERConfig{PER: 2e-3, ErrorType: LogicalZ, MaxLogicalErrors: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if x.LER <= 0 || z.LER <= 0 {
		t.Fatalf("LERs: X=%v Z=%v", x.LER, z.LER)
	}
	ratio := x.LER / z.LER
	if ratio < 0.25 || ratio > 4 {
		t.Errorf("X/Z LER asymmetry: %.2f (X=%.2e Z=%.2e)", ratio, x.LER, z.LER)
	}
}

func TestPauliFrameSavings(t *testing.T) {
	// With a Pauli frame the correction gates and slots are absorbed:
	// executed < issued, bounded by the 1/17 slot share (thesis §5.3.2).
	r, err := RunLER(LERConfig{PER: 5e-3, WithPauliFrame: true, MaxLogicalErrors: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.CorrectionGates == 0 {
		t.Fatal("no corrections issued at p=5e-3")
	}
	g, s := r.GatesSavedFrac(), r.SlotsSavedFrac()
	if g <= 0 || s <= 0 {
		t.Errorf("savings not positive: gates=%v slots=%v", g, s)
	}
	if s > 1.0/17+0.01 {
		t.Errorf("slot savings %v exceed the 1/17 bound", s)
	}
	if g > 0.05 {
		t.Errorf("gate savings %v implausibly high", g)
	}
	// Issued - executed must equal the issued correction gates exactly.
	if r.OpsIssued-r.OpsExecuted != r.CorrectionGates {
		t.Errorf("absorbed ops %d != correction gates %d",
			r.OpsIssued-r.OpsExecuted, r.CorrectionGates)
	}
	if r.SlotsIssued-r.SlotsExecuted != r.CorrectionSlots {
		t.Errorf("absorbed slots %d != correction slots %d",
			r.SlotsIssued-r.SlotsExecuted, r.CorrectionSlots)
	}

	// Without the frame nothing is absorbed.
	r2, err := RunLER(LERConfig{PER: 5e-3, WithPauliFrame: false, MaxLogicalErrors: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r2.GatesSavedFrac() != 0 || r2.SlotsSavedFrac() != 0 {
		t.Error("savings without a Pauli frame should be zero")
	}
}

// TestPFDoesNotChangeLER is the headline claim at test scale: the LER
// with and without Pauli frame agree within statistical noise.
func TestPFDoesNotChangeLER(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison skipped in -short mode")
	}
	cfg := SweepConfig{
		PERs:             []float64{2e-3},
		Samples:          6,
		MaxLogicalErrors: 20,
		BaseSeed:         100,
	}
	pair, err := RunPairedSweeps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	without := pair.Without[0].MeanLER()
	with := pair.With[0].MeanLER()
	if without <= 0 || with <= 0 {
		t.Fatalf("degenerate LERs: %v / %v", without, with)
	}
	ratio := without / with
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("PF changed LER by factor %.2f (without=%.2e with=%.2e)", ratio, without, with)
	}
	ts, err := pair.TTestSeries()
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].IndependentP < 0.01 {
		t.Errorf("independent t-test claims significance: p=%v", ts[0].IndependentP)
	}
}

func TestSweepAndAnalysis(t *testing.T) {
	cfg := SweepConfig{
		PERs:             []float64{1e-3, 3e-3},
		Samples:          3,
		MaxLogicalErrors: 8,
		BaseSeed:         42,
	}
	pair, err := RunPairedSweeps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Without) != 2 || len(pair.With) != 2 {
		t.Fatalf("sweep lengths: %d/%d", len(pair.Without), len(pair.With))
	}
	diffs := pair.DiffSeries()
	if len(diffs) != 2 || diffs[0].SigmaMax < 0 {
		t.Errorf("diff series: %+v", diffs)
	}
	cvs := pair.CVSeries()
	if len(cvs) != 2 || cvs[0].CVWithout <= 0 {
		t.Errorf("cv series: %+v", cvs)
	}
	ts, err := pair.TTestSeries()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ts {
		if p.IndependentP < 0 || p.IndependentP > 1 || p.PairedPVal < 0 || p.PairedPVal > 1 {
			t.Errorf("p-values out of range: %+v", p)
		}
	}
	if Significant(ts) {
		t.Log("warning: small-sample t-test flagged significance (possible noise)")
	}
	tbl := Table(pair.Without, "test")
	if !strings.Contains(tbl, "PER") || !strings.Contains(tbl, "0.00000") {
		t.Errorf("table rendering: %q", tbl)
	}
	csv := CSV(pair.Without)
	if !strings.HasPrefix(csv, "per,") || strings.Count(csv, "\n") != 3 {
		t.Errorf("csv rendering: %q", csv)
	}
}

func TestUpperBound(t *testing.T) {
	// Thesis Eq. 5.12 / Fig 5.27: 1/((d−1)·tsESM + 1).
	if got := UpperBoundRelativeImprovement(3, 8); math.Abs(got-1.0/17) > 1e-12 {
		t.Errorf("bound(3,8) = %v, want 1/17", got)
	}
	prev := 1.0
	for d := 3; d <= 11; d += 2 {
		b := UpperBoundRelativeImprovement(d, 8)
		if b >= prev {
			t.Errorf("bound not decreasing at d=%d", d)
		}
		prev = b
	}
	if b := UpperBoundRelativeImprovement(5, 8); b > 0.031 {
		t.Errorf("bound(5,8) = %v, should drop below 3%% (thesis Fig 5.27)", b)
	}
	if !math.IsNaN(UpperBoundRelativeImprovement(1, 8)) {
		t.Error("degenerate distance should give NaN")
	}
	if WindowTimeSlots(3, 8, true) != 17 || WindowTimeSlots(3, 8, false) != 16 {
		t.Error("window time-slot accounting wrong")
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1e-4, 1e-2, 5)
	if len(xs) != 5 {
		t.Fatalf("len = %d", len(xs))
	}
	if math.Abs(xs[0]-1e-4) > 1e-12 || math.Abs(xs[4]-1e-2) > 1e-12 {
		t.Errorf("endpoints: %v", xs)
	}
	if math.Abs(xs[2]-1e-3) > 1e-9 {
		t.Errorf("midpoint: %v", xs[2])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Error("not increasing")
		}
	}
}

func TestPseudoThresholdEstimate(t *testing.T) {
	// Synthetic quadratic LER data crossing y=x at 1/c.
	pts := []PointResult{}
	c := 2500.0
	for _, p := range []float64{1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3} {
		pts = append(pts, PointResult{PER: p, LERs: []float64{c * p * p}})
	}
	th := PseudoThreshold(pts)
	if math.Abs(th-1/c)/th > 0.3 {
		t.Errorf("pseudo-threshold = %v, want ≈%v", th, 1/c)
	}
}
