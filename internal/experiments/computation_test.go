package experiments

import "testing"

func TestComputationLERZeroNoise(t *testing.T) {
	r, err := RunComputationLER(ComputationLERConfig{PER: 0, MaxWindows: 20, MaxLogicalErrors: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.LogicalErrors != 0 || r.Windows != 20 || r.CorrectionGates != 0 {
		t.Errorf("zero-noise computation: %+v", r)
	}
}

func TestComputationLERUnderNoise(t *testing.T) {
	r, err := RunComputationLER(ComputationLERConfig{
		PER: 2e-3, MaxLogicalErrors: 10, MaxWindows: 100000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LogicalErrors == 0 {
		t.Fatal("no logical errors at p=2e-3")
	}
	if r.LER <= 0 || r.LER > 0.5 {
		t.Errorf("computation LER = %v", r.LER)
	}
	if r.CorrectionGates == 0 {
		t.Error("decoder never corrected")
	}
}

// TestComputationCostsMoreThanIdling: the two-qubit computation with
// transversal CNOT_L gates exposes more error surface than an idling
// qubit; its per-window LER should be at least comparable (typically
// higher).
func TestComputationCostsMoreThanIdling(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison skipped in -short mode")
	}
	const per = 2e-3
	comp, err := RunComputationLER(ComputationLERConfig{
		PER: per, MaxLogicalErrors: 15, MaxWindows: 100000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := RunLER(LERConfig{PER: per, MaxLogicalErrors: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if comp.LER < idle.LER/3 {
		t.Errorf("computation LER %.2e implausibly below idle LER %.2e", comp.LER, idle.LER)
	}
}

// TestComputationPFNeutral: the Pauli frame stays LER-neutral in the
// computation setting too (the thesis' conclusion extends beyond the
// idling experiment).
func TestComputationPFNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison skipped in -short mode")
	}
	const per = 3e-3
	without, err := RunComputationLER(ComputationLERConfig{
		PER: per, MaxLogicalErrors: 15, MaxWindows: 100000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	with, err := RunComputationLER(ComputationLERConfig{
		PER: per, WithPauliFrame: true, MaxLogicalErrors: 15, MaxWindows: 100000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := without.LER / with.LER
	if ratio < 0.33 || ratio > 3 {
		t.Errorf("PF changed computation LER by %.2f (%.2e vs %.2e)", ratio, without.LER, with.LER)
	}
	if with.GatesSavedFrac() <= 0 {
		t.Error("frame saved nothing during computation")
	}
}
