// The sweep pipeline: a sweep is a pure (spec → shard results → fold)
// computation. RunSpec enumerates the spec's shards, computes (or looks
// up) each one on a bounded worker pool, and folds the per-shard runs
// into PointResults. The local CLIs (RunSweep) and the sweep service
// (cmd/sweepd via internal/sweepstore) share this single path, so cached,
// resumed, and networked sweeps are bit-identical to local ones.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/framesim"
)

// RunOptions carries the runtime-only knobs of a pipeline run — none of
// them may change the folded results, only how (and whether) shards are
// computed.
type RunOptions struct {
	// Workers bounds the worker pool. Zero means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, receives one call per completed point in
	// ascending point order, serialized through the in-order collector.
	Progress func(point int, per float64)
	// Lookup, when non-nil, is consulted before computing a shard; a hit
	// must return exactly sh.Count runs previously produced by an equal
	// ShardConfig. Short or oversized hits are ignored and recomputed.
	// Called concurrently from worker goroutines.
	Lookup func(sh Shard) ([]LERResult, bool)
	// Persist, when non-nil, receives every computed shard's runs
	// (cache hits are not re-persisted). A Persist error aborts the
	// sweep. Called concurrently from worker goroutines.
	Persist func(sh Shard, runs []LERResult) error
}

// shardRunner computes shards: one reusable stack per worker for the
// QPDO engine, one lazily compiled immutable frame engine (dense or
// sparse) per point.
type shardRunner struct {
	spec Spec
	pool *stackPool

	once    []sync.Once
	engines []*framesim.Engine
	sparses []*framesim.Sparse
	engErr  []error
}

func newShardRunner(spec Spec, workers int) *shardRunner {
	return &shardRunner{
		spec:    spec,
		pool:    newStackPool(workers),
		once:    make([]sync.Once, len(spec.PERs)),
		engines: make([]*framesim.Engine, len(spec.PERs)),
		sparses: make([]*framesim.Sparse, len(spec.PERs)),
		engErr:  make([]error, len(spec.PERs)),
	}
}

// lerConfig builds the per-shard LERConfig of point p (stack engine).
func (r *shardRunner) lerConfig(p int, seed int64) LERConfig {
	et := LogicalX
	if r.spec.ErrorType == "z" {
		et = LogicalZ
	}
	return LERConfig{
		PER:              r.spec.PERs[p],
		ErrorType:        et,
		WithPauliFrame:   r.spec.WithPauliFrame,
		MaxLogicalErrors: r.spec.MaxLogicalErrors,
		MaxWindows:       r.spec.MaxWindows,
		Seed:             seed,
	}
}

// engine returns point p's compiled framesim engine, building it on
// first use. Engines are immutable and shared across workers; the
// compile seed is the sweep's BaseSeed (the noiseless reference run),
// matching the pre-pipeline frame sweep exactly.
func (r *shardRunner) engine(p int) (*framesim.Engine, error) {
	r.once[p].Do(func() {
		r.engines[p], r.engErr[p] = frameEngine(r.lerConfig(p, r.spec.BaseSeed).withDefaults())
	})
	return r.engines[p], r.engErr[p]
}

// sparse returns point p's compiled sparse frame engine, sharing the
// per-point once with engine (a spec runs exactly one engine kind).
func (r *shardRunner) sparse(p int) (*framesim.Sparse, error) {
	r.once[p].Do(func() {
		r.sparses[p], r.engErr[p] = sparseEngine(r.lerConfig(p, r.spec.BaseSeed).withDefaults())
	})
	return r.sparses[p], r.engErr[p]
}

// run computes shard sh on worker w.
func (r *shardRunner) run(w int, sh Shard) ([]LERResult, error) {
	switch r.spec.Engine {
	case EngineNameFrameSim:
		e, err := r.engine(sh.Point)
		if err != nil {
			return nil, err
		}
		// One wide pass over the shard's words (RunBatch is the
		// single-word special case of the same call): word k is seeded by
		// its global word index, so results are bit-identical to running
		// each word alone at Lanes = 1.
		rs, err := e.RunBatchWide(r.spec.WordSeeds(sh), sh.Count)
		if err != nil {
			return nil, err
		}
		return frameShotsToLER(rs), nil
	case EngineNameSparse:
		s, err := r.sparse(sh.Point)
		if err != nil {
			return nil, err
		}
		rs, err := s.RunBatchWide(r.spec.WordSeeds(sh), sh.Count)
		if err != nil {
			return nil, err
		}
		return frameShotsToLER(rs), nil
	}
	res, err := r.pool.run(w, r.lerConfig(sh.Point, sh.Seed))
	if err != nil {
		return nil, err
	}
	return []LERResult{res}, nil
}

func frameShotsToLER(rs []framesim.ShotResult) []LERResult {
	out := make([]LERResult, len(rs))
	for i, shot := range rs {
		out[i] = frameToLER(shot)
	}
	return out
}

// RunSpec executes a sweep spec: every shard is looked up (opt.Lookup),
// or computed and handed to opt.Persist, then the per-shard runs are
// folded into PointResults. The fold is bit-identical for any worker
// count, any Lookup hit pattern, and any interleaving of cached and
// computed shards, because each shard's runs are a pure function of its
// ShardConfig. Cancelling ctx stops handing out shards and returns
// ctx.Err(); shards persisted before the cancel remain valid for resume.
func RunSpec(ctx context.Context, spec Spec, opt RunOptions) ([]PointResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.AdaptRelWidth > 0 {
		return runAdaptiveSpec(ctx, spec, opt)
	}
	n := spec.NumShards()
	runs := make([][]LERResult, n)

	var progress *progressCollector
	if opt.Progress != nil && spec.shardsPerPoint() > 0 {
		progress = newProgressCollector(spec.PERs, spec.shardsPerPoint(), opt.Progress)
	}
	workers := resolveWorkers(opt.Workers)
	runner := newShardRunner(spec, workers)
	err := forEachShardWorkerCtx(ctx, n, workers, func(w, i int) error {
		sh := spec.Shard(i)
		if opt.Lookup != nil {
			if rs, ok := opt.Lookup(sh); ok && len(rs) == sh.Count {
				runs[i] = rs
				if progress != nil {
					progress.sampleDone(sh.Point)
				}
				return nil
			}
		}
		rs, err := runner.run(w, sh)
		if err != nil {
			return err
		}
		if len(rs) != sh.Count {
			return fmt.Errorf("shard %d: engine produced %d runs, want %d", i, len(rs), sh.Count)
		}
		if opt.Persist != nil {
			if err := opt.Persist(sh, rs); err != nil {
				return fmt.Errorf("persist shard %d: %w", i, err)
			}
		}
		runs[i] = rs
		if progress != nil {
			progress.sampleDone(sh.Point)
		}
		return nil
	})
	if progress != nil {
		progress.close()
	}
	if err != nil {
		return nil, err
	}

	out := FoldShards(spec, runs)
	if opt.Progress != nil && spec.shardsPerPoint() == 0 {
		for i, per := range spec.PERs {
			opt.Progress(i, per) // degenerate sweep: keep the per-point contract
		}
	}
	return out, nil
}

// FoldShards merges per-shard runs (indexed like Spec.Shard) into the
// per-point aggregates. The fold is deterministic: shards are visited in
// ascending index order — which is (point, offset) order — never by
// completion order. Nil entries (shards an adaptive sweep stopped before
// computing) are skipped, so a partial fold simply yields fewer samples
// per point; full folds are unchanged.
func FoldShards(spec Spec, shardRuns [][]LERResult) []PointResult {
	spec = spec.Normalized()
	out := make([]PointResult, len(spec.PERs))
	for i, per := range spec.PERs {
		out[i].PER = per
	}
	for i, rs := range shardRuns {
		if rs == nil {
			continue
		}
		pt := &out[spec.Shard(i).Point]
		for _, r := range rs {
			pt.LERs = append(pt.LERs, r.LER)
			pt.WindowCounts = append(pt.WindowCounts, float64(r.Windows))
			pt.GatesSaved = append(pt.GatesSaved, r.GatesSavedFrac())
			pt.SlotsSaved = append(pt.SlotsSaved, r.SlotsSavedFrac())
			pt.TotalErrors += int64(r.LogicalErrors)
			pt.TotalWindows += int64(r.Windows)
		}
	}
	return out
}
