package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func pipelineTestSpec() Spec {
	return Spec{
		Engine:           EngineNameStack,
		PERs:             []float64{3e-3, 8e-3},
		Samples:          2,
		ErrorType:        "x",
		MaxLogicalErrors: 3,
		MaxWindows:       3000,
		BaseSeed:         7,
	}
}

func TestSpecShardEnumeration(t *testing.T) {
	spec := pipelineTestSpec().Normalized()
	if got := spec.NumShards(); got != 4 {
		t.Fatalf("stack NumShards = %d, want 4", got)
	}
	for i := 0; i < spec.NumShards(); i++ {
		sh := spec.Shard(i)
		wantPoint, wantSample := i/2, i%2
		if sh.Index != i || sh.Point != wantPoint || sh.Offset != wantSample || sh.Count != 1 {
			t.Errorf("stack shard %d = %+v, want point %d offset %d count 1", i, sh, wantPoint, wantSample)
		}
		if sh.Seed != ShardSeed(spec.BaseSeed, wantPoint, wantSample) {
			t.Errorf("stack shard %d seed mismatch", i)
		}
	}

	frame := spec
	frame.Engine = EngineNameFrameSim
	frame.Samples = 70 // one full word + one 6-shot tail per point
	if got := frame.NumShards(); got != 4 {
		t.Fatalf("framesim NumShards = %d, want 4", got)
	}
	counts := []int{64, 6, 64, 6}
	offsets := []int{0, 64, 0, 64}
	for i := 0; i < frame.NumShards(); i++ {
		sh := frame.Shard(i)
		if sh.Count != counts[i] || sh.Offset != offsets[i] || sh.Point != i/2 {
			t.Errorf("framesim shard %d = %+v, want point %d offset %d count %d",
				i, sh, i/2, offsets[i], counts[i])
		}
	}
	// The shard config of a framesim shard carries the reference seed;
	// stack shards depend on their ShardSeed alone.
	if sc := frame.ShardConfig(frame.Shard(1)); sc.RefSeed != frame.BaseSeed || sc.Shots != 6 {
		t.Errorf("framesim shard config = %+v", sc)
	}
	if sc := spec.ShardConfig(spec.Shard(1)); sc.RefSeed != 0 || sc.Shots != 1 {
		t.Errorf("stack shard config = %+v", sc)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{PERs: []float64{1e-3}, Engine: "qpu"},
		{PERs: []float64{1e-3}, ErrorType: "y"},
		{PERs: nil},
		{PERs: []float64{0}},
		{PERs: []float64{1.5}},
		{PERs: []float64{-1e-3}},
	}
	for i, s := range bad {
		if err := s.Normalized().Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
	if err := pipelineTestSpec().Normalized().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	// SweepConfig round trip preserves the computation.
	cfg, err := pipelineTestSpec().SweepConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got := SpecOf(cfg); !reflect.DeepEqual(got.Normalized(), pipelineTestSpec().Normalized()) {
		t.Errorf("Spec → SweepConfig → Spec drifted: %+v", got)
	}
}

// TestRunSpecMatchesRunSweep: the pipeline entry point and the classic
// sweep API are the same computation, bit for bit, on both engines.
func TestRunSpecMatchesRunSweep(t *testing.T) {
	for _, engine := range []Engine{EngineStack, EngineFrameSim} {
		cfg := SweepConfig{
			Engine:           engine,
			PERs:             []float64{3e-3, 8e-3},
			Samples:          2,
			MaxLogicalErrors: 3,
			MaxWindows:       3000,
			BaseSeed:         7,
			Workers:          2,
		}
		classic, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		piped, err := RunSpec(context.Background(), SpecOf(cfg), RunOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(classic, piped) {
			t.Errorf("engine %s: RunSpec diverged from RunSweep", engine)
		}
	}
}

// memStore is an in-memory Lookup/Persist pair for pipeline tests.
type memStore struct {
	mu     sync.Mutex
	shards map[int][]LERResult
}

func newMemStore() *memStore { return &memStore{shards: map[int][]LERResult{}} }

func (m *memStore) lookup(sh Shard) ([]LERResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.shards[sh.Index]
	return rs, ok
}

func (m *memStore) persist(sh Shard, runs []LERResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards[sh.Index] = runs
	return nil
}

// TestRunSpecCancelAndResume cancels a serial run after two persisted
// shards and resumes against the checkpoint: only the missing shards are
// computed and the fold matches an uninterrupted run exactly.
func TestRunSpecCancelAndResume(t *testing.T) {
	spec := pipelineTestSpec()
	want, err := RunSpec(context.Background(), spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	store := newMemStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	persisted := 0
	_, err = RunSpec(ctx, spec, RunOptions{
		Workers: 1,
		Persist: func(sh Shard, runs []LERResult) error {
			if err := store.persist(sh, runs); err != nil {
				return err
			}
			persisted++
			if persisted == 2 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if persisted != 2 {
		t.Fatalf("persisted %d shards before cancel, want 2", persisted)
	}

	var computed atomic.Int64 // Persist is called concurrently at Workers > 1
	got, err := RunSpec(context.Background(), spec, RunOptions{
		Workers: 4,
		Lookup:  store.lookup,
		Persist: func(sh Shard, runs []LERResult) error { computed.Add(1); return store.persist(sh, runs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(computed.Load()) != spec.NumShards()-2 {
		t.Errorf("resume computed %d shards, want %d", computed.Load(), spec.NumShards()-2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed fold diverged from uninterrupted run:\n%+v\n%+v", got, want)
	}
}

// TestRunSpecIgnoresShortCacheHits: a Lookup hit with the wrong run
// count is recomputed, not folded — a truncated cache entry can cost
// time but never correctness.
func TestRunSpecIgnoresShortCacheHits(t *testing.T) {
	spec := pipelineTestSpec()
	want, err := RunSpec(context.Background(), spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	recomputed := 0
	got, err := RunSpec(context.Background(), spec, RunOptions{
		Workers: 1,
		Lookup: func(sh Shard) ([]LERResult, bool) {
			return nil, true // claims a hit, delivers nothing
		},
		Persist: func(sh Shard, runs []LERResult) error { recomputed++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed != spec.NumShards() {
		t.Errorf("recomputed %d shards, want all %d", recomputed, spec.NumShards())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("short cache hits corrupted the fold")
	}
}

// TestRunSpecPersistErrorAborts: a failing checkpoint is a hard error —
// silently dropping checkpoints would turn "resumable" into a lie.
func TestRunSpecPersistErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	_, err := RunSpec(context.Background(), pipelineTestSpec(), RunOptions{
		Workers: 1,
		Persist: func(Shard, []LERResult) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("persist failure returned %v, want %v", err, boom)
	}
}
