package experiments

import (
	"math/rand"

	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surfaced"
)

// GenericLERConfig parameterizes a logical-error-rate run on the
// distance-d surface code of package surfaced — the thesis' future-work
// experiment ("repeat these experiments using a larger distance surface
// code", Chapter 6) that tests the Eq. 5.12 prediction empirically.
type GenericLERConfig struct {
	// Distance is the odd code distance (3 reproduces SC17 behaviour).
	Distance int
	// PER is the physical error rate.
	PER float64
	// WithPauliFrame inserts the frame below the plane.
	WithPauliFrame bool
	// MaxLogicalErrors / MaxWindows terminate the run.
	MaxLogicalErrors int
	MaxWindows       int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the pool of the distance-parallel driver built on
	// this config (RunGenericLERSweep); RunGenericLER itself is a
	// single sequential trajectory. Zero means runtime.GOMAXPROCS(0).
	Workers int
}

func (c GenericLERConfig) withDefaults() GenericLERConfig {
	if c.Distance == 0 {
		c.Distance = 3
	}
	if c.MaxLogicalErrors <= 0 {
		c.MaxLogicalErrors = 20
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 1_000_000
	}
	return c
}

// RunGenericLER executes the Listing 5.7 windows protocol on a
// distance-d plane with the matching decoder.
func RunGenericLER(cfg GenericLERConfig) (LERResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	chp := layers.NewChpCore(rand.New(rand.NewSource(rng.Int63())))
	errl := layers.NewErrorLayer(chp, cfg.PER, rand.New(rand.NewSource(rng.Int63())))
	counterMid := layers.NewCounterLayer(errl)
	var below qpdo.Core = counterMid
	var pf *layers.PauliFrameLayer
	if cfg.WithPauliFrame {
		pf = layers.NewPauliFrameLayer(below)
		below = pf
	}
	counterTop := layers.NewCounterLayer(below)
	plane, err := surfaced.NewPlane(counterTop, cfg.Distance)
	if err != nil {
		return LERResult{}, err
	}

	if err := qpdo.WithBypass(counterTop, plane.InitZero); err != nil {
		return LERResult{}, err
	}

	var res LERResult
	expected := 0
	for res.LogicalErrors < cfg.MaxLogicalErrors && res.Windows < cfg.MaxWindows {
		w, err := plane.RunWindow()
		if err != nil {
			return res, err
		}
		res.CorrectionGates += w.CorrectionGates
		res.CorrectionSlots += w.CorrectionSlots
		res.Windows++

		if err := qpdo.WithBypass(counterTop, func() error {
			round, err := plane.RunESMRound()
			if err != nil {
				return err
			}
			if !round.Clean() {
				return nil
			}
			out, err := plane.ProbeZL()
			if err != nil {
				return err
			}
			if out != expected {
				res.LogicalErrors++
				expected = out
			}
			return nil
		}); err != nil {
			return res, err
		}
	}
	if res.Windows > 0 {
		res.LER = float64(res.LogicalErrors) / float64(res.Windows)
	}
	res.OpsIssued = counterTop.Stats.Ops
	res.SlotsIssued = counterTop.Stats.Slots
	res.OpsExecuted = counterMid.Stats.Ops
	res.SlotsExecuted = counterMid.Stats.Slots
	res.InjectedErrors = errl.Stats.Total()
	return res, nil
}
