package experiments

import (
	"math"
	"testing"
)

// The golden values below were produced by the row-major CHP kernel
// before the column-major transpose (PR 2) and pin the exact seeded
// measurement stream: any change to gate semantics, RNG draw order or
// sweep sharding shows up as a count mismatch here. Regenerate only when
// a deliberate semantic change is made, and say so in the PR.

type goldenSweepPoint struct {
	per     float64
	lers    []float64
	windows []float64
	gates   []float64
}

var goldenSweep = map[bool][]goldenSweepPoint{
	false: {
		{3e-3, []float64{0.021164021164021163, 0.037383177570093455}, []float64{189, 107}, []float64{0, 0}},
		{8e-3, []float64{0.06666666666666667, 0.07407407407407407}, []float64{60, 54}, []float64{0, 0}},
	},
	true: {
		{3e-3, []float64{0.02631578947368421, 0.015444015444015444}, []float64{152, 259}, []float64{0.003959044368600682, 0.004683559505223971}},
		{8e-3, []float64{0.08163265306122448, 0.06666666666666667}, []float64{49, 60}, []float64{0.009058352643775016, 0.009628610729023384}},
	},
}

func floatsEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-15*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestGoldenSeededSweep runs a seeded mini LER sweep (two PER points, two
// samples each, with and without the Pauli frame) and checks the exact
// per-sample LERs, window counts and gate savings against the golden
// values recorded from the pre-transpose kernel.
func TestGoldenSeededSweep(t *testing.T) {
	for _, withPF := range []bool{false, true} {
		pts, err := RunSweep(SweepConfig{
			PERs:             []float64{3e-3, 8e-3},
			Samples:          2,
			WithPauliFrame:   withPF,
			MaxLogicalErrors: 4,
			MaxWindows:       3000,
			BaseSeed:         424242,
			Workers:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := goldenSweep[withPF]
		if len(pts) != len(want) {
			t.Fatalf("pf=%v: got %d points, want %d", withPF, len(pts), len(want))
		}
		for i, pt := range pts {
			g := want[i]
			if !floatsEqual(pt.PER, g.per) {
				t.Errorf("pf=%v point %d: PER=%g want %g", withPF, i, pt.PER, g.per)
			}
			if len(pt.LERs) != len(g.lers) || len(pt.WindowCounts) != len(g.windows) || len(pt.GatesSaved) != len(g.gates) {
				t.Fatalf("pf=%v point %d: sample count mismatch: %+v", withPF, i, pt)
			}
			for s := range g.lers {
				if !floatsEqual(pt.LERs[s], g.lers[s]) {
					t.Errorf("pf=%v point %d sample %d: LER=%v want %v", withPF, i, s, pt.LERs[s], g.lers[s])
				}
				if pt.WindowCounts[s] != g.windows[s] {
					t.Errorf("pf=%v point %d sample %d: windows=%v want %v", withPF, i, s, pt.WindowCounts[s], g.windows[s])
				}
				if !floatsEqual(pt.GatesSaved[s], g.gates[s]) {
					t.Errorf("pf=%v point %d sample %d: gatesSaved=%v want %v", withPF, i, s, pt.GatesSaved[s], g.gates[s])
				}
			}
		}
	}
}

// TestGoldenGenericSweep pins the distance-parameterized generic sweep
// the same way.
func TestGoldenGenericSweep(t *testing.T) {
	rs, err := RunGenericLERSweep(GenericLERConfig{
		PER:              4e-3,
		MaxLogicalErrors: 3,
		MaxWindows:       400,
		Seed:             777,
		Workers:          2,
	}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		windows, errors, injected int
		ler                       float64
	}{
		{116, 3, 113, 0.02586206896551724},
		{34, 3, 181, 0.08823529411764706},
	}
	if len(rs) != len(want) {
		t.Fatalf("got %d results, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		g := want[i]
		if r.Windows != g.windows || r.LogicalErrors != g.errors || r.InjectedErrors != g.injected {
			t.Errorf("d-point %d: windows/errors/injected = %d/%d/%d, want %d/%d/%d",
				i, r.Windows, r.LogicalErrors, r.InjectedErrors, g.windows, g.errors, g.injected)
		}
		if !floatsEqual(r.LER, g.ler) {
			t.Errorf("d-point %d: LER=%v want %v", i, r.LER, g.ler)
		}
	}
}
