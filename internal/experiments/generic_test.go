package experiments

import "testing"

func TestGenericLERZeroNoise(t *testing.T) {
	for _, d := range []int{3, 5} {
		r, err := RunGenericLER(GenericLERConfig{
			Distance: d, PER: 0, MaxWindows: 20, MaxLogicalErrors: 1, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Windows != 20 || r.LogicalErrors != 0 || r.CorrectionGates != 0 {
			t.Errorf("d=%d zero-noise run: %+v", d, r)
		}
	}
}

func TestGenericD3MatchesSC17Scale(t *testing.T) {
	// The d=3 generic plane and the SC17 layer implement the same code
	// and window scheme (LUT vs matching decoders are both min-weight
	// at d=3), so their LERs at one PER must agree within noise.
	sc17, err := RunLER(LERConfig{PER: 2e-3, MaxLogicalErrors: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := RunGenericLER(GenericLERConfig{Distance: 3, PER: 2e-3, MaxLogicalErrors: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gen.LER <= 0 || sc17.LER <= 0 {
		t.Fatalf("degenerate LERs: %v / %v", gen.LER, sc17.LER)
	}
	ratio := gen.LER / sc17.LER
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("d=3 generic LER %.2e vs SC17 LER %.2e (ratio %.2f)", gen.LER, sc17.LER, ratio)
	}
}

// TestDistanceSuppressesLER: below threshold the larger code must win
// (the defining property of the code family; thesis §2.5.1). Windows are
// (d−1) rounds long, so the fair comparison is the LER per ESM round.
func TestDistanceSuppressesLER(t *testing.T) {
	if testing.Short() {
		t.Skip("distance comparison skipped in -short mode")
	}
	const per = 4e-4
	pooled := func(d int) float64 {
		errs, rounds := 0, 0
		for seed := int64(1); seed <= 3; seed++ {
			r, err := RunGenericLER(GenericLERConfig{
				Distance: d, PER: per, MaxLogicalErrors: 15,
				MaxWindows: 600000, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			errs += r.LogicalErrors
			rounds += r.Windows * (d - 1)
		}
		return float64(errs) / float64(rounds)
	}
	perRound3 := pooled(3)
	perRound5 := pooled(5)
	t.Logf("pooled per-round LER at p=%g: d=3 %.2e, d=5 %.2e", per, perRound3, perRound5)
	if perRound5 >= perRound3 {
		t.Errorf("d=5 per-round LER %.2e not below d=3 %.2e at p=%g",
			perRound5, perRound3, per)
	}
}

// TestFig527SavingsShrinkWithDistance: the Pauli frame's slot savings at
// d=5 must fall below the d=3 savings and stay under the Eq. 5.12 bound,
// the empirical confirmation of Fig 5.27.
func TestFig527SavingsShrinkWithDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("distance comparison skipped in -short mode")
	}
	const per = 5e-3
	d3, err := RunGenericLER(GenericLERConfig{Distance: 3, PER: per, WithPauliFrame: true, MaxLogicalErrors: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d5, err := RunGenericLER(GenericLERConfig{Distance: 5, PER: per, WithPauliFrame: true, MaxLogicalErrors: 15, MaxWindows: 100000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s3, s5 := d3.SlotsSavedFrac(), d5.SlotsSavedFrac()
	if s3 <= 0 || s5 <= 0 {
		t.Fatalf("no savings recorded: d3=%v d5=%v", s3, s5)
	}
	if s5 >= s3 {
		t.Errorf("slot savings did not shrink with distance: d3=%.4f d5=%.4f", s3, s5)
	}
	if bound := UpperBoundRelativeImprovement(5, 8); s5 > bound+0.01 {
		t.Errorf("d=5 savings %.4f exceed the Eq. 5.12 bound %.4f", s5, bound)
	}
}
