package layers

import (
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// FaultLayer injects one deterministic Pauli fault after the Nth time
// slot that flows through it, then becomes transparent. It is the
// exhaustive-fault-enumeration counterpart of the stochastic ErrorLayer,
// used to verify the fault-tolerance property: any single fault must not
// cause a logical error (thesis §2.6).
type FaultLayer struct {
	qpdo.Forwarder
	// Slot is the global index of the time slot after which the fault
	// fires (counting every slot of every non-bypass circuit).
	Slot int
	// Qubit and Gate define the injected Pauli.
	Qubit int
	Gate  *gates.Gate

	// Fired reports whether the fault was injected.
	Fired bool

	seen   int
	bypass bool
}

// NewFaultLayer stacks a single-fault injector above next.
func NewFaultLayer(next qpdo.Core, slot, qubit int, g *gates.Gate) *FaultLayer {
	return &FaultLayer{Forwarder: qpdo.Forwarder{Next: next}, Slot: slot, Qubit: qubit, Gate: g}
}

// SetBypass pauses injection accounting for diagnostic circuits.
func (f *FaultLayer) SetBypass(on bool) {
	f.bypass = on
	f.Next.SetBypass(on)
}

// SlotsSeen returns how many slots have flowed through so far.
func (f *FaultLayer) SlotsSeen() int { return f.seen }

// Add forwards the circuit, splicing the fault in after the target slot.
func (f *FaultLayer) Add(c *circuit.Circuit) error {
	if f.bypass {
		return f.Next.Add(c)
	}
	out := circuit.New()
	for _, slot := range c.Slots {
		out.AddParallel(slot.Ops...)
		if !f.Fired && f.seen == f.Slot {
			out.Add(f.Gate, f.Qubit)
			f.Fired = true
		}
		f.seen++
	}
	return f.Next.Add(out)
}
