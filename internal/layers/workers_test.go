package layers

import (
	"math/rand"
	"testing"

	"repro/internal/qpdo"
	"repro/internal/randcirc"
)

// TestQxCoreWorkerDeterminism runs the same seeded random circuit on a
// serial QxCore and on cores sharding their state-vector kernels over
// several goroutines, requiring exactly equal amplitudes and
// measurement streams: the worker option must never change results.
func TestQxCoreWorkerDeterminism(t *testing.T) {
	const n, seed = 8, 77
	run := func(workers int) ([]complex128, []qpdo.Measurement) {
		circ := randcirc.Generate(randcirc.Config{Qubits: n, Gates: 300, IncludeIdentity: true},
			rand.New(rand.NewSource(seed)))
		core := NewQxCore(rand.New(rand.NewSource(seed * 31)))
		if workers != 1 {
			core.SetWorkers(workers)
		}
		if err := core.CreateQubits(n); err != nil {
			t.Fatal(err)
		}
		res, err := qpdo.Run(core, circ)
		if err != nil {
			t.Fatal(err)
		}
		return core.Vector().Amplitudes(), res.Measurements
	}
	refAmps, refMeas := run(1)
	for _, w := range []int{2, 4} {
		amps, meas := run(w)
		if len(meas) != len(refMeas) {
			t.Fatalf("workers=%d: %d measurements, want %d", w, len(meas), len(refMeas))
		}
		for i := range meas {
			if meas[i] != refMeas[i] {
				t.Fatalf("workers=%d: measurement %d = %+v, want %+v", w, i, meas[i], refMeas[i])
			}
		}
		for i := range amps {
			if amps[i] != refAmps[i] {
				t.Fatalf("workers=%d: amp[%d] = %v, want %v", w, i, amps[i], refAmps[i])
			}
		}
	}
	// The setting must survive qubit growth: SetWorkers before
	// CreateQubits and after both apply to the live state.
	core := NewQxCore(rand.New(rand.NewSource(1)))
	core.SetWorkers(3)
	if err := core.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	if got := core.Vector().Workers(); got != 3 {
		t.Fatalf("workers after CreateQubits = %d, want 3", got)
	}
	if err := core.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if got := core.Vector().Workers(); got != 3 {
		t.Fatalf("workers after growth = %d, want 3", got)
	}
}
