package layers

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// ErrorStats counts what the error layer injected.
type ErrorStats struct {
	// SingleQubitErrors counts X/Y/Z errors after single-qubit operations.
	SingleQubitErrors int
	// TwoQubitErrors counts correlated error pairs after two-qubit gates.
	TwoQubitErrors int
	// MeasurementErrors counts X errors inserted before measurements.
	MeasurementErrors int
	// IdleErrors counts errors on idling qubits.
	IdleErrors int
	// OpsSeen counts operations (including idle identities) subjected to
	// the error channel.
	OpsSeen int
}

// Total sums all injected errors.
func (s ErrorStats) Total() int {
	return s.SingleQubitErrors + s.TwoQubitErrors + s.MeasurementErrors + s.IdleErrors
}

// ErrorLayer implements the symmetric depolarizing error model of the
// thesis (§5.3.1, [11, 19]):
//
//   - every single-qubit operation (including reset and the identity
//     applied to idling qubits) suffers an X, Y or Z error with
//     probability p/3 each;
//   - a measurement suffers an X error (result flip) with probability p,
//     inserted before the measurement;
//   - every two-qubit gate suffers one of the fifteen non-trivial
//     two-qubit Pauli combinations ({I,X,Y,Z}² minus II) with
//     probability p/15 each.
//
// Idling a qubit for one time slot counts as a physical operation, so
// removing a time slot (as the Pauli frame does for correction slots)
// removes one error opportunity for every idle qubit.
type ErrorLayer struct {
	qpdo.Forwarder
	// P is the total physical error rate per operation.
	P float64
	// Model is the Pauli channel applied to the stream.
	Model Model
	// Stats accumulates injected-error counts.
	Stats ErrorStats

	rng    *rand.Rand
	bypass bool
	// busy is the reusable per-slot occupancy scratch (indexed by
	// physical qubit), cleared after each slot instead of reallocated.
	busy []bool
}

// NewErrorLayer stacks the thesis' symmetric depolarizing error layer
// with rate p above next.
func NewErrorLayer(next qpdo.Core, p float64, rng *rand.Rand) *ErrorLayer {
	return NewErrorLayerModel(next, Depolarizing(p), rng)
}

// NewErrorLayerModel stacks an error layer with an explicit channel.
func NewErrorLayerModel(next qpdo.Core, m Model, rng *rand.Rand) *ErrorLayer {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &ErrorLayer{
		Forwarder: qpdo.Forwarder{Next: next},
		P:         m.TotalSingle(),
		Model:     m,
		rng:       rng,
	}
}

// SetBypass pauses error injection for diagnostic circuits and forwards
// the toggle.
func (e *ErrorLayer) SetBypass(on bool) {
	e.bypass = on
	e.Next.SetBypass(on)
}

// Reconfigure swaps in a new channel and RNG and clears the statistics,
// restoring the layer to its freshly built state (stack reuse across
// Monte-Carlo samples). It panics on an invalid model, like the
// constructor.
func (e *ErrorLayer) Reconfigure(m Model, rng *rand.Rand) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	e.P = m.TotalSingle()
	e.Model = m
	e.Stats = ErrorStats{}
	e.rng = rng
	e.bypass = false
}

// twoQubitErrorTable lists the 15 equally likely error pairs for
// two-qubit gates; nil means identity on that operand.
var twoQubitErrorTable = func() [][2]*gates.Gate {
	set := []*gates.Gate{nil, gates.X, gates.Y, gates.Z}
	var out [][2]*gates.Gate
	for _, a := range set {
		for _, b := range set {
			if a == nil && b == nil {
				continue
			}
			out = append(out, [2]*gates.Gate{a, b})
		}
	}
	return out
}()

// Add rewrites the circuit with injected errors and forwards it. For each
// original time slot the layer may emit a pre-slot (X errors preceding
// measurements) and a post-slot (gate and idle errors); the original slot
// itself passes through unmodified, so upper-layer accounting of real
// operations is unaffected.
func (e *ErrorLayer) Add(c *circuit.Circuit) error {
	if e.bypass || (e.P <= 0 && e.Model.PMeas <= 0) {
		return e.Next.Add(c)
	}
	n := e.Next.NumQubits()
	if cap(e.busy) < n {
		e.busy = make([]bool, n)
	}
	busy := e.busy[:n]
	out := circuit.New()
	for _, slot := range c.Slots {
		var pre, post []circuit.Operation
		for _, op := range slot.Ops {
			for _, q := range op.Qubits {
				if q < n {
					busy[q] = true
				}
			}
			switch {
			case op.Gate.Class == gates.ClassMeasure:
				e.Stats.OpsSeen++
				if e.rng.Float64() < e.Model.PMeas {
					pre = append(pre, circuit.NewOp(gates.X, op.Qubits[0]))
					e.Stats.MeasurementErrors++
				}
			case op.Gate.Arity == 2 && e.Model.CorrelatedTwoQubit:
				e.Stats.OpsSeen++
				if e.rng.Float64() < e.P {
					pair := twoQubitErrorTable[e.rng.Intn(len(twoQubitErrorTable))]
					for i, g := range pair {
						if g != nil {
							post = append(post, circuit.NewOp(g, op.Qubits[i]))
						}
					}
					e.Stats.TwoQubitErrors++
				}
			default:
				// Reset and gates (per operand for uncorrelated models)
				// take the single-qubit channel.
				for _, q := range op.Qubits {
					e.Stats.OpsSeen++
					if g := e.Model.draw(e.rng); g != nil {
						post = append(post, circuit.NewOp(g, q))
						if op.Gate.Arity == 2 {
							e.Stats.TwoQubitErrors++
						} else {
							e.Stats.SingleQubitErrors++
						}
					}
				}
			}
		}
		// Idling qubits execute an identity and take the same channel.
		for q := 0; q < n; q++ {
			if busy[q] {
				busy[q] = false
				continue
			}
			e.Stats.OpsSeen++
			if g := e.Model.draw(e.rng); g != nil {
				post = append(post, circuit.NewOp(g, q))
				e.Stats.IdleErrors++
			}
		}
		if len(pre) > 0 {
			out.AddParallel(pre...)
		}
		out.AddParallel(slot.Ops...)
		if len(post) > 0 {
			out.AddParallel(post...)
		}
	}
	return e.Next.Add(out)
}

// CounterStats holds what one counter layer observed in the downward
// circuit stream.
type CounterStats struct {
	// Circuits counts Add calls.
	Circuits int
	// Slots counts time slots.
	Slots int
	// Ops counts operations of all kinds.
	Ops int
	// ByClass counts operations per class.
	ByClass map[gates.Class]int
}

// CounterLayer is the diagnostic layer of thesis §4.2.3: it counts the
// operations and time slots flowing between two layers without modifying
// the stream. Bypass-mode circuits are not counted.
type CounterLayer struct {
	qpdo.Forwarder
	// Stats accumulates the observations.
	Stats  CounterStats
	bypass bool
}

// NewCounterLayer stacks a counter above next.
func NewCounterLayer(next qpdo.Core) *CounterLayer {
	return &CounterLayer{
		Forwarder: qpdo.Forwarder{Next: next},
		Stats:     CounterStats{ByClass: map[gates.Class]int{}},
	}
}

// SetBypass pauses counting and forwards the toggle.
func (l *CounterLayer) SetBypass(on bool) {
	l.bypass = on
	l.Next.SetBypass(on)
}

// Add counts the circuit and forwards it untouched.
func (l *CounterLayer) Add(c *circuit.Circuit) error {
	if !l.bypass {
		l.Stats.Circuits++
		l.Stats.Slots += c.NumSlots()
		for _, slot := range c.Slots {
			for _, op := range slot.Ops {
				l.Stats.Ops++
				l.Stats.ByClass[op.Gate.Class]++
			}
		}
	}
	return l.Next.Add(c)
}

// ResetStats clears the counters.
func (l *CounterLayer) ResetStats() {
	l.Stats = CounterStats{ByClass: map[gates.Class]int{}}
}
