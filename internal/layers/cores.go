// Package layers provides the concrete QPDO layers of the thesis
// (§4.2.3): the QxCore and ChpCore simulation cores, the Pauli frame
// layer built on the Pauli Frame Unit, the symmetric-depolarizing error
// layer, and the diagnostic counter layer. Layers all implement the
// shared qpdo.Core interface and can be stacked in any order.
package layers

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/chp"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/pauli"
	"repro/internal/qpdo"
	"repro/internal/statevec"
)

// VectorState is the quantum-state view exposed by the QxCore: the full
// amplitude vector.
type VectorState struct {
	State *statevec.State
}

// Describe renders the nonzero support in the thesis listing style.
func (v *VectorState) Describe() string { return v.State.SupportString(1e-9) }

// StabilizerState is the quantum-state view exposed by the ChpCore: the
// stabilizer generators of the current state.
type StabilizerState struct {
	Stabilizers []pauli.PauliString
}

// Describe renders one stabilizer per line.
func (s *StabilizerState) Describe() string {
	var b strings.Builder
	for _, st := range s.Stabilizers {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// QxCore is the universal simulation core backed by the state-vector
// simulator, the stand-in for the QX Simulator back-end (thesis §4.1.1).
type QxCore struct {
	rng     *rand.Rand
	state   *statevec.State
	binary  []qpdo.BinaryState
	queue   []*circuit.Circuit
	workers int // 0 = leave the state-vector default (serial)
}

// NewQxCore creates an empty universal core.
func NewQxCore(rng *rand.Rand) *QxCore { return &QxCore{rng: rng} }

// SetWorkers shards every state-vector kernel invocation over w
// goroutines (w <= 0 selects GOMAXPROCS); results are bit-identical for
// any value. The setting survives CreateQubits/RemoveQubits.
func (c *QxCore) SetWorkers(w int) {
	if w == 0 {
		w = -1 // remember "all CPUs" distinctly from the unset zero value
	}
	c.workers = w
	if c.state != nil {
		c.state.SetWorkers(w)
	}
}

// CreateQubits allocates n new qubits in |0⟩.
func (c *QxCore) CreateQubits(n int) error {
	if n <= 0 {
		return fmt.Errorf("layers: cannot create %d qubits", n)
	}
	total := len(c.binary) + n
	amps := make([]complex128, 1<<uint(total))
	if c.state != nil {
		// Embed the old state into the larger register (new qubits |0⟩).
		copy(amps, c.state.Amplitudes())
	} else {
		amps[0] = 1
	}
	c.state = statevec.FromAmplitudes(amps, c.rng)
	if c.workers != 0 {
		c.state.SetWorkers(c.workers)
	}
	c.binary = append(c.binary, make([]qpdo.BinaryState, n)...)
	return nil
}

// RemoveQubits removes the m highest-numbered qubits; they must be in
// unentangled |0⟩ states.
func (c *QxCore) RemoveQubits(m int) error {
	n := len(c.binary)
	if m <= 0 || m > n {
		return fmt.Errorf("layers: cannot remove %d of %d qubits", m, n)
	}
	keep := make([]int, n-m)
	for i := range keep {
		keep[i] = i
	}
	for q := n - m; q < n; q++ {
		if p := c.state.ProbOne(q); p > 1e-9 {
			return fmt.Errorf("layers: qubit %d is not |0⟩ (P(1)=%g)", q, p)
		}
	}
	sub, err := c.state.ExtractSubsystem(keep)
	if err != nil {
		return fmt.Errorf("layers: removal: %w", err)
	}
	c.state = sub
	c.binary = c.binary[:n-m]
	return nil
}

// NumQubits returns the allocated qubit count.
func (c *QxCore) NumQubits() int { return len(c.binary) }

// Add queues a circuit.
func (c *QxCore) Add(circ *circuit.Circuit) error {
	if err := qpdo.Validate(circ, len(c.binary)); err != nil {
		return err
	}
	c.queue = append(c.queue, circ)
	return nil
}

// Execute runs every queued circuit in order.
func (c *QxCore) Execute() (*qpdo.Result, error) {
	res := &qpdo.Result{}
	for _, circ := range c.queue {
		for _, slot := range circ.Slots {
			for _, op := range slot.Ops {
				switch op.Gate.Class {
				case gates.ClassReset:
					c.state.Reset(op.Qubits[0])
					c.binary[op.Qubits[0]] = qpdo.StateZero
				case gates.ClassMeasure:
					v := c.state.Measure(op.Qubits[0])
					c.binary[op.Qubits[0]] = qpdo.BinaryState(v)
					res.Measurements = append(res.Measurements,
						qpdo.Measurement{Qubit: op.Qubits[0], Value: v})
				case gates.ClassPauli, gates.ClassClifford, gates.ClassNonClifford:
					if op.Gate.Name != gates.GateI {
						c.state.ApplyGate(op.Gate, op.Qubits...)
					}
					for _, q := range op.Qubits {
						c.binary[q] = qpdo.StateUnknown
					}
				}
			}
		}
	}
	c.queue = c.queue[:0]
	return res, nil
}

// GetState returns the binary-state view.
func (c *QxCore) GetState() (*qpdo.State, error) {
	return &qpdo.State{Values: append([]qpdo.BinaryState(nil), c.binary...)}, nil
}

// GetQuantumState returns the amplitude view.
func (c *QxCore) GetQuantumState() (qpdo.QuantumState, error) {
	if c.state == nil {
		return nil, fmt.Errorf("layers: no qubits allocated")
	}
	return &VectorState{State: c.state.Clone()}, nil
}

// SetBypass is a no-op for cores: bypass concerns service layers only.
func (c *QxCore) SetBypass(bool) {}

// Vector returns the live underlying state for white-box tests.
func (c *QxCore) Vector() *statevec.State { return c.state }

// ChpCore is the stabilizer simulation core backed by the tableau
// simulator, the stand-in for the CHP back-end (thesis §4.1.2). Only
// Clifford-group circuits are supported.
type ChpCore struct {
	rng     *rand.Rand
	tab     *chp.Tableau
	binary  []qpdo.BinaryState
	queue   []*circuit.Circuit
	removed int // logically removed trailing qubits (still in the tableau)
}

// NewChpCore creates an empty stabilizer core.
func NewChpCore(rng *rand.Rand) *ChpCore { return &ChpCore{rng: rng} }

// CreateQubits allocates n new qubits in |0⟩.
func (c *ChpCore) CreateQubits(n int) error {
	if n <= 0 {
		return fmt.Errorf("layers: cannot create %d qubits", n)
	}
	if c.removed > 0 {
		// Reclaim logically removed qubits first; they are verified |0⟩.
		reuse := n
		if reuse > c.removed {
			reuse = c.removed
		}
		c.removed -= reuse
		c.binary = append(c.binary, make([]qpdo.BinaryState, reuse)...)
		n -= reuse
		if n == 0 {
			return nil
		}
	}
	// Growing the tableau re-allocates it, which is only safe while every
	// existing qubit is still a pristine |0⟩ (binary state zero implies no
	// gate has acted since the last reset or 0-measurement).
	if c.tab != nil {
		for q, b := range c.binary {
			if b != qpdo.StateZero {
				return fmt.Errorf("layers: ChpCore can only grow while all qubits are |0⟩ (qubit %d is %s)", q, b)
			}
		}
	}
	total := len(c.binary) + n
	c.tab = chp.New(total, c.rng)
	c.binary = append(c.binary, make([]qpdo.BinaryState, n)...)
	return nil
}

// RemoveQubits logically removes the m highest-numbered qubits after
// verifying they are deterministic |0⟩ states. The tableau keeps the
// columns (they are exactly |0⟩ and cannot influence the rest), but the
// qubits become unaddressable until re-created.
func (c *ChpCore) RemoveQubits(m int) error {
	n := len(c.binary)
	if m <= 0 || m > n {
		return fmt.Errorf("layers: cannot remove %d of %d qubits", m, n)
	}
	for q := n - m; q < n; q++ {
		v, det := c.tab.ExpectPauli(pauli.ZString(q))
		if !det || v != 1 {
			return fmt.Errorf("layers: qubit %d is not a deterministic |0⟩", q)
		}
	}
	c.binary = c.binary[:n-m]
	c.removed += m
	return nil
}

// NumQubits returns the addressable qubit count.
func (c *ChpCore) NumQubits() int { return len(c.binary) }

// Add queues a circuit, rejecting non-Clifford gates up front.
func (c *ChpCore) Add(circ *circuit.Circuit) error {
	if err := qpdo.Validate(circ, len(c.binary)); err != nil {
		return err
	}
	for _, slot := range circ.Slots {
		for _, op := range slot.Ops {
			if op.Gate.Class == gates.ClassNonClifford {
				return fmt.Errorf("layers: ChpCore cannot simulate non-Clifford gate %s", op.Gate)
			}
		}
	}
	c.queue = append(c.queue, circ)
	return nil
}

// Execute runs every queued circuit in order.
func (c *ChpCore) Execute() (*qpdo.Result, error) {
	res := &qpdo.Result{}
	for _, circ := range c.queue {
		for _, slot := range circ.Slots {
			for _, op := range slot.Ops {
				if err := c.applyOp(op, res); err != nil {
					c.queue = c.queue[:0]
					return nil, err
				}
			}
		}
	}
	c.queue = c.queue[:0]
	return res, nil
}

func (c *ChpCore) applyOp(op circuit.Operation, res *qpdo.Result) error {
	q := op.Qubits[0]
	switch op.Gate.Name {
	case gates.PrepZ:
		c.tab.Reset(q)
		c.binary[q] = qpdo.StateZero
		return nil
	case gates.MeasZ:
		v, _ := c.tab.Measure(q)
		c.binary[q] = qpdo.BinaryState(v)
		res.Measurements = append(res.Measurements, qpdo.Measurement{Qubit: q, Value: v})
		return nil
	case gates.GateI:
	case gates.GateX:
		c.tab.X(q)
	case gates.GateY:
		c.tab.Y(q)
	case gates.GateZ:
		c.tab.Z(q)
	case gates.GateH:
		c.tab.H(q)
	case gates.GateS:
		c.tab.S(q)
	case gates.GateSdg:
		c.tab.Sdg(q)
	case gates.GateCNOT:
		c.tab.CNOT(q, op.Qubits[1])
	case gates.GateCZ:
		c.tab.CZ(q, op.Qubits[1])
	case gates.GateSWAP:
		c.tab.SWAP(q, op.Qubits[1])
	default:
		return fmt.Errorf("layers: ChpCore cannot apply gate %s", op.Gate)
	}
	for _, qq := range op.Qubits {
		if op.Gate.Name != gates.GateI {
			c.binary[qq] = qpdo.StateUnknown
		}
	}
	return nil
}

// GetState returns the binary-state view.
func (c *ChpCore) GetState() (*qpdo.State, error) {
	return &qpdo.State{Values: append([]qpdo.BinaryState(nil), c.binary...)}, nil
}

// GetQuantumState returns the stabilizer view.
func (c *ChpCore) GetQuantumState() (qpdo.QuantumState, error) {
	if c.tab == nil {
		return nil, fmt.Errorf("layers: no qubits allocated")
	}
	return &StabilizerState{Stabilizers: c.tab.Stabilizers()}, nil
}

// SetBypass is a no-op for cores.
func (c *ChpCore) SetBypass(bool) {}

// Tableau returns the live underlying tableau for white-box tests and
// fast stabilizer queries by the experiment harness.
func (c *ChpCore) Tableau() *chp.Tableau { return c.tab }

// Reset restores every addressable qubit to a pristine |0⟩ and replaces
// the measurement RNG, reusing the tableau allocation. Together with the
// other layers' Reset/Reconfigure methods this lets a Monte-Carlo worker
// recycle one stack across samples with results bit-identical to a
// freshly built stack.
func (c *ChpCore) Reset(rng *rand.Rand) {
	c.rng = rng
	if c.tab != nil {
		c.tab.Reinit(rng)
	}
	for q := range c.binary {
		c.binary[q] = qpdo.StateZero
	}
	c.queue = c.queue[:0]
}
