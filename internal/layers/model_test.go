package layers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

func TestModelConstructors(t *testing.T) {
	d := Depolarizing(3e-3)
	if !approxEq(d.PX, 1e-3) || !approxEq(d.PY, 1e-3) || !approxEq(d.PZ, 1e-3) {
		t.Errorf("depolarizing split: %+v", d)
	}
	if !d.CorrelatedTwoQubit || !approxEq(d.PMeas, 3e-3) {
		t.Errorf("depolarizing extras: %+v", d)
	}

	b := Biased(1e-2, 9)
	if !approxEq(b.TotalSingle(), 1e-2) {
		t.Errorf("biased total: %v", b.TotalSingle())
	}
	if !approxEq(b.PZ/(b.PX+b.PY), 9) {
		t.Errorf("bias ratio: %v", b.PZ/(b.PX+b.PY))
	}

	r := Relaxation(4e-3, 2e-3)
	if !approxEq(r.PX, 1e-3) || !approxEq(r.PY, 1e-3) || !approxEq(r.PZ, 2e-3) {
		t.Errorf("relaxation split: %+v", r)
	}

	if err := (Model{PX: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (Model{PX: 0.5, PY: 0.4, PZ: 0.3}).Validate(); err == nil {
		t.Error("total above 1 accepted")
	}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestBiasedModelSkewsErrors(t *testing.T) {
	// Drive many idle slots through a strongly Z-biased layer and count
	// the error types via stats and the final stabilizer signs.
	qx := NewQxCore(rand.New(rand.NewSource(30)))
	el := NewErrorLayerModel(qx, Biased(0.3, 20), rand.New(rand.NewSource(31)))
	if err := el.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	c := circuit.New()
	for i := 0; i < 400; i++ {
		c.Add(gates.I, 0)
	}
	if _, err := qpdo.Run(el, c); err != nil {
		t.Fatal(err)
	}
	if el.Stats.Total() < 50 {
		t.Fatalf("too few errors injected: %d", el.Stats.Total())
	}
}

func TestRelaxationModelRuns(t *testing.T) {
	ch := NewChpCore(rand.New(rand.NewSource(32)))
	el := NewErrorLayerModel(ch, Relaxation(0.5, 0.3), rand.New(rand.NewSource(33)))
	if err := el.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	c := circuit.New().Add(gates.H, 0).Add(gates.CNOT, 0, 1).Add(gates.Measure, 0)
	if _, err := qpdo.Run(el, c); err != nil {
		t.Fatal(err)
	}
	if el.Stats.OpsSeen == 0 {
		t.Error("channel never applied")
	}
}

func TestUncorrelatedTwoQubitChannel(t *testing.T) {
	// A non-correlated model applies the single-qubit channel per
	// operand: with PX=1 both operands of every CNOT get an X.
	m := Model{Name: "allX", PX: 1}
	qx := NewQxCore(rand.New(rand.NewSource(34)))
	el := NewErrorLayerModel(qx, m, rand.New(rand.NewSource(35)))
	if err := el.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(el, circuit.New().Add(gates.CNOT, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if el.Stats.TwoQubitErrors != 2 {
		t.Errorf("two-qubit operand errors = %d, want 2", el.Stats.TwoQubitErrors)
	}
	// CNOT|00⟩ = |00⟩, then X⊗X → |11⟩.
	sup := qx.Vector().Support(1e-9)
	if len(sup) != 1 || sup[0].Basis != 3 {
		t.Errorf("state after forced X⊗X: %v", sup)
	}
}

func TestPureReadoutNoise(t *testing.T) {
	// PMeas-only model must still inject (regression for the P==0 guard).
	m := Model{Name: "readout", PMeas: 1}
	qx := NewQxCore(rand.New(rand.NewSource(36)))
	el := NewErrorLayerModel(qx, m, rand.New(rand.NewSource(37)))
	if err := el.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	res, err := qpdo.Run(el, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("forced readout flip missing: %d", res.Last(0))
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid model should panic at construction")
		}
	}()
	NewErrorLayerModel(NewQxCore(rand.New(rand.NewSource(1))), Model{PX: 2}, rand.New(rand.NewSource(2)))
}
