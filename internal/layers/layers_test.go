package layers

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/pauli"
	"repro/internal/qpdo"
	"repro/internal/randcirc"
	"repro/internal/statevec"
)

func TestQxCoreBell(t *testing.T) {
	c := NewQxCore(rand.New(rand.NewSource(1)))
	if err := c.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	circ := circuit.New().Add(gates.H, 0).Add(gates.CNOT, 0, 1)
	slot := circ.AppendSlot()
	circ.AddToSlot(slot, gates.Measure, 0)
	circ.AddToSlot(slot, gates.Measure, 1)
	res, err := qpdo.Run(c, circ)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) != 2 {
		t.Fatalf("want 2 measurements, got %d", len(res.Measurements))
	}
	if res.Last(0) != res.Last(1) {
		t.Error("Bell measurements disagree")
	}
	st, _ := c.GetState()
	if st.Values[0] == qpdo.StateUnknown {
		t.Error("binary state should be known after measurement")
	}
}

func TestChpCoreBell(t *testing.T) {
	c := NewChpCore(rand.New(rand.NewSource(2)))
	if err := c.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	circ := circuit.New().Add(gates.H, 0).Add(gates.CNOT, 0, 1).
		Add(gates.Measure, 0).Add(gates.Measure, 1)
	res, err := qpdo.Run(c, circ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != res.Last(1) {
		t.Error("Bell measurements disagree")
	}
}

func TestChpCoreRejectsNonClifford(t *testing.T) {
	c := NewChpCore(rand.New(rand.NewSource(3)))
	if err := c.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(circuit.New().Add(gates.T, 0)); err == nil {
		t.Error("ChpCore should reject T gates at Add time")
	}
}

func TestCoreQubitBookkeeping(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(4)))
	if err := qx.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	if err := qx.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if qx.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d", qx.NumQubits())
	}
	// Entangle 0 and 1, leave 2 untouched: removing 2 works, removing
	// more fails.
	if _, err := qpdo.Run(qx, circuit.New().Add(gates.H, 0).Add(gates.CNOT, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := qx.RemoveQubits(1); err != nil {
		t.Fatalf("removing pristine qubit: %v", err)
	}
	if err := qx.RemoveQubits(1); err == nil {
		t.Error("removing an entangled superposition qubit should fail")
	}

	chpC := NewChpCore(rand.New(rand.NewSource(5)))
	if err := chpC.CreateQubits(3); err != nil {
		t.Fatal(err)
	}
	if err := chpC.RemoveQubits(1); err != nil {
		t.Fatalf("chp removal: %v", err)
	}
	if chpC.NumQubits() != 2 {
		t.Fatalf("chp NumQubits = %d", chpC.NumQubits())
	}
	// Reclaim the removed qubit.
	if err := chpC.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if chpC.NumQubits() != 3 {
		t.Fatalf("chp NumQubits after recreate = %d", chpC.NumQubits())
	}
	// Growth after gating non-zero qubits is rejected.
	if _, err := qpdo.Run(chpC, circuit.New().Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	if err := chpC.CreateQubits(1); err == nil {
		t.Error("ChpCore growth after gates should fail")
	}
}

func TestCircuitValidationAtAdd(t *testing.T) {
	c := NewQxCore(rand.New(rand.NewSource(6)))
	if err := c.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(circuit.New().Add(gates.H, 5)); err == nil {
		t.Error("out-of-range qubit should be rejected")
	}
}

// buildPFStack assembles testbench → PF layer → QxCore.
func buildPFStack(n int, seed int64) (*PauliFrameLayer, *QxCore) {
	qx := NewQxCore(rand.New(rand.NewSource(seed)))
	pf := NewPauliFrameLayer(qx)
	if err := pf.CreateQubits(n); err != nil {
		panic(err)
	}
	return pf, qx
}

func TestPauliFrameAbsorbsPaulis(t *testing.T) {
	pf, qx := buildPFStack(2, 7)
	circ := circuit.New().Add(gates.X, 0).Add(gates.Z, 1).Add(gates.Y, 0)
	if _, err := qpdo.Run(pf, circ); err != nil {
		t.Fatal(err)
	}
	// Nothing physical should have happened: state still |00⟩.
	sup := qx.Vector().Support(1e-9)
	if len(sup) != 1 || sup[0].Basis != 0 {
		t.Fatalf("physical state changed: %v", sup)
	}
	// Records: qubit 0 tracked X then Y → Z remains; qubit 1 tracked Z.
	if got := pf.PFU.Frame.Record(0); got != pauli.RecZ {
		t.Errorf("record 0 = %v, want Z", got)
	}
	if got := pf.PFU.Frame.Record(1); got != pauli.RecZ {
		t.Errorf("record 1 = %v, want Z", got)
	}
	if pf.SlotsSaved != 3 {
		t.Errorf("SlotsSaved = %d, want 3", pf.SlotsSaved)
	}
}

func TestPauliFrameMeasurementMapping(t *testing.T) {
	// X tracked in the frame: physical qubit stays |0⟩ but measurement
	// reports 1.
	pf, _ := buildPFStack(1, 8)
	circ := circuit.New().Add(gates.X, 0).Add(gates.Measure, 0)
	res, err := qpdo.Run(pf, circ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("measurement = %d, want 1 (flipped by frame)", res.Last(0))
	}
	// GetState view is flipped too.
	st, err := pf.GetState()
	if err != nil {
		t.Fatal(err)
	}
	// After measurement the record still holds X (measurement does not
	// clear records), so the binary view shows 1... the core recorded the
	// raw 0 and the layer flips it.
	if st.Values[0] != qpdo.StateOne {
		t.Errorf("binary state = %v, want 1", st.Values[0])
	}
}

func TestPauliFrameResetClearsRecord(t *testing.T) {
	pf, _ := buildPFStack(1, 9)
	circ := circuit.New().Add(gates.X, 0).Add(gates.Prep, 0).Add(gates.Measure, 0)
	res, err := qpdo.Run(pf, circ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("measurement after reset = %d, want 0", res.Last(0))
	}
}

func TestPauliFrameFlushBeforeNonClifford(t *testing.T) {
	// Track X, then apply T: the X must be flushed physically first.
	pf, qx := buildPFStack(1, 10)
	circ := circuit.New().Add(gates.X, 0).Add(gates.T, 0)
	if _, err := qpdo.Run(pf, circ); err != nil {
		t.Fatal(err)
	}
	if !pf.PFU.Frame.Record(0).IsIdentity() {
		t.Error("record should be flushed")
	}
	// Physical state should be T X |0⟩ = e^{iπ/4}|1⟩ — support on |1⟩.
	sup := qx.Vector().Support(1e-9)
	if len(sup) != 1 || sup[0].Basis != 1 {
		t.Fatalf("physical state = %v, want |1⟩", sup)
	}
}

// TestRandomCircuitEquivalence reproduces thesis §5.2.2: executing random
// Clifford+T circuits with a Pauli frame layer and flushing at the end
// yields the same quantum state (up to global phase) as executing without
// the frame. The thesis ran 100 iterations of 1000 gates on 10 qubits;
// here 40 iterations of 300 gates on 6 qubits keep the test fast while
// exercising every gate in the set.
func TestRandomCircuitEquivalence(t *testing.T) {
	const (
		iters  = 40
		qubits = 6
		ngates = 300
	)
	for it := 0; it < iters; it++ {
		seed := int64(1000 + it)
		cfg := randcirc.Config{Qubits: qubits, Gates: ngates, IncludeIdentity: true}
		circ := randcirc.Generate(cfg, rand.New(rand.NewSource(seed)))

		// Reference: plain QxCore.
		ref := NewQxCore(rand.New(rand.NewSource(seed * 31)))
		if err := ref.CreateQubits(qubits); err != nil {
			t.Fatal(err)
		}
		if _, err := qpdo.Run(ref, circ.Clone()); err != nil {
			t.Fatal(err)
		}

		// Stack with Pauli frame. Same RNG seed: the circuit contains no
		// measurements, so RNG consumption matches.
		qx := NewQxCore(rand.New(rand.NewSource(seed * 31)))
		pf := NewPauliFrameLayer(qx)
		if err := pf.CreateQubits(qubits); err != nil {
			t.Fatal(err)
		}
		if _, err := qpdo.Run(pf, circ.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := pf.Flush(); err != nil {
			t.Fatal(err)
		}

		ok, _ := statevec.EqualUpToGlobalPhase(ref.Vector(), qx.Vector(), 1e-9)
		if !ok {
			t.Fatalf("iteration %d: states differ after flush\nwith PF:\n%s\nwithout:\n%s",
				it, qx.Vector().SupportString(1e-9), ref.Vector().SupportString(1e-9))
		}
	}
}

// TestRandomCircuitMeasurementEquivalence checks that final-measurement
// distributions agree between stacks with and without a Pauli frame.
// Outcomes cannot match shot-for-shot (the physical state differs while
// records are pending, so the same RNG stream yields different raw
// draws); the frame guarantees equality in distribution, which this test
// verifies on per-qubit marginals over many shots.
func TestRandomCircuitMeasurementEquivalence(t *testing.T) {
	const (
		qubits = 4
		shots  = 600
	)
	cfg := randcirc.Config{Qubits: qubits, Gates: 60, CliffordOnly: true}
	circ := randcirc.GenerateWithMeasurements(cfg, rand.New(rand.NewSource(501)))

	countOnes := func(withPF bool, seed int64) [qubits]int {
		rng := rand.New(rand.NewSource(seed))
		var ones [qubits]int
		for s := 0; s < shots; s++ {
			qx := NewQxCore(rng)
			var stack qpdo.Core = qx
			if withPF {
				stack = NewPauliFrameLayer(qx)
			}
			if err := stack.CreateQubits(qubits); err != nil {
				t.Fatal(err)
			}
			res, err := qpdo.Run(stack, circ.Clone())
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < qubits; q++ {
				ones[q] += res.Last(q)
			}
		}
		return ones
	}
	ref := countOnes(false, 901)
	withPF := countOnes(true, 902)
	for q := 0; q < qubits; q++ {
		diff := float64(ref[q]-withPF[q]) / shots
		// 5 sigma for a binomial with n=600 is ≈ 0.1; use that bound.
		if diff < -0.12 || diff > 0.12 {
			t.Errorf("qubit %d marginal differs: %d vs %d of %d shots",
				q, ref[q], withPF[q], shots)
		}
	}
}

func TestPauliFrameFlushesBeforeRZ(t *testing.T) {
	// A tracked X must be flushed ahead of an arbitrary rotation: the
	// final state equals the direct X-then-RZ execution exactly.
	rz := gates.RZ(0.37)
	ref := NewQxCore(rand.New(rand.NewSource(50)))
	if err := ref.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(ref, circuit.New().Add(gates.X, 0).Add(rz, 0)); err != nil {
		t.Fatal(err)
	}

	qx := NewQxCore(rand.New(rand.NewSource(50)))
	pf := NewPauliFrameLayer(qx)
	if err := pf.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(pf, circuit.New().Add(gates.X, 0).Add(rz, 0)); err != nil {
		t.Fatal(err)
	}
	if !pf.PFU.Frame.Record(0).IsIdentity() {
		t.Error("record not flushed before RZ")
	}
	ok, _ := statevec.EqualUpToGlobalPhase(ref.Vector(), qx.Vector(), 1e-9)
	if !ok {
		t.Errorf("states differ:\n%s\nvs\n%s",
			qx.Vector().SupportString(1e-9), ref.Vector().SupportString(1e-9))
	}
}

func TestErrorLayerInjectsAtRate(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(12)))
	el := NewErrorLayer(qx, 0.5, rand.New(rand.NewSource(13)))
	if err := el.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	// 200 slots of single-qubit gates on qubit 0; qubit 1 idles.
	c := circuit.New()
	for i := 0; i < 200; i++ {
		c.Add(gates.H, 0)
	}
	if _, err := qpdo.Run(el, c); err != nil {
		t.Fatal(err)
	}
	// 200 gate ops + 200 idles, each erroring with p=0.5: expect ~200
	// total errors; far from zero.
	if el.Stats.OpsSeen != 400 {
		t.Fatalf("OpsSeen = %d, want 400", el.Stats.OpsSeen)
	}
	total := el.Stats.Total()
	if total < 120 || total > 280 {
		t.Errorf("injected errors = %d, want ≈200", total)
	}
	if el.Stats.IdleErrors == 0 {
		t.Error("idle qubit should take errors")
	}
}

func TestErrorLayerZeroRateIsTransparent(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(14)))
	el := NewErrorLayer(qx, 0, rand.New(rand.NewSource(15)))
	if err := el.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	res, err := qpdo.Run(el, circuit.New().Add(gates.X, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Error("zero-rate error layer altered the computation")
	}
}

func TestErrorLayerBypass(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(16)))
	el := NewErrorLayer(qx, 1.0, rand.New(rand.NewSource(17)))
	if err := el.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	var res *qpdo.Result
	err := qpdo.WithBypass(el, func() error {
		var err error
		res, err = qpdo.Run(el, circuit.New().Add(gates.X, 0).Add(gates.Measure, 0))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Error("bypass mode should suppress error injection")
	}
	if el.Stats.Total() != 0 {
		t.Errorf("bypass mode injected %d errors", el.Stats.Total())
	}
}

func TestErrorLayerMeasurementErrorFlipsResult(t *testing.T) {
	// p=1 forces an X before every measurement: |0⟩ measures 1.
	qx := NewQxCore(rand.New(rand.NewSource(18)))
	el := NewErrorLayer(qx, 1.0, rand.New(rand.NewSource(19)))
	if err := el.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	res, err := qpdo.Run(el, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("measurement with p=1 X error = %d, want 1", res.Last(0))
	}
	if el.Stats.MeasurementErrors != 1 {
		t.Errorf("MeasurementErrors = %d", el.Stats.MeasurementErrors)
	}
}

func TestCounterLayer(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(20)))
	cl := NewCounterLayer(qx)
	if err := cl.CreateQubits(2); err != nil {
		t.Fatal(err)
	}
	c := circuit.New().Add(gates.H, 0).Add(gates.CNOT, 0, 1).Add(gates.X, 0)
	slot := c.AppendSlot()
	c.AddToSlot(slot, gates.Measure, 0)
	c.AddToSlot(slot, gates.Measure, 1)
	if _, err := qpdo.Run(cl, c); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats
	if st.Circuits != 1 || st.Slots != 4 || st.Ops != 5 {
		t.Errorf("counter stats = %+v", st)
	}
	if st.ByClass[gates.ClassPauli] != 1 || st.ByClass[gates.ClassClifford] != 2 ||
		st.ByClass[gates.ClassMeasure] != 2 {
		t.Errorf("per-class counts = %v", st.ByClass)
	}
	// Bypass suppresses counting.
	if err := qpdo.WithBypass(cl, func() error {
		_, err := qpdo.Run(cl, circuit.New().Add(gates.H, 0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Circuits != 1 {
		t.Error("bypass circuit was counted")
	}
	cl.ResetStats()
	if cl.Stats.Ops != 0 {
		t.Error("ResetStats failed")
	}
}

// TestSyndromeMapsThroughFrame verifies the key invariant of the design:
// a tracked X error on a data qubit propagates through the ESM CNOT into
// the ancilla's record and the reported syndrome is flipped back, so a
// decoder above the frame sees as-if-corrected syndromes.
func TestSyndromeMapsThroughFrame(t *testing.T) {
	// Qubit 0 = data, qubit 1 = Z-check ancilla.
	pf, _ := buildPFStack(2, 21)
	// Track an X "correction" on the data qubit (as QEC would after
	// detecting an error that is physically still present... here the
	// physical error never happened, so the physical parity is even).
	circ := circuit.New().Add(gates.X, 0)
	// Z-syndrome extraction: ancilla reset, CNOT(data→ancilla), measure.
	circ.Add(gates.Prep, 1).Add(gates.CNOT, 0, 1).Add(gates.Measure, 1)
	res, err := qpdo.Run(pf, circ)
	if err != nil {
		t.Fatal(err)
	}
	// The physical ancilla measures 0 (no physical X), but the frame
	// propagated the tracked X onto the ancilla and flips the result:
	// the decoder sees syndrome 1 exactly as if the error were physical.
	if res.Last(1) != 1 {
		t.Errorf("syndrome = %d, want 1 (tracked error visible to decoder)", res.Last(1))
	}
}

// TestTeleportationThroughFrame teleports a non-stabilizer state across
// a Bell pair with the conditional Pauli corrections absorbed by the
// frame, over enough seeds to hit all four Bell-measurement branches.
func TestTeleportationThroughFrame(t *testing.T) {
	ref := NewQxCore(rand.New(rand.NewSource(60)))
	if err := ref.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	rz := gates.RZ(1.234)
	if _, err := qpdo.Run(ref, circuit.New().Add(gates.H, 0).Add(rz, 0)); err != nil {
		t.Fatal(err)
	}

	branches := map[[2]int]bool{}
	for seed := int64(0); seed < 40 && len(branches) < 4; seed++ {
		qx := NewQxCore(rand.New(rand.NewSource(seed)))
		pf := NewPauliFrameLayer(qx)
		if err := pf.CreateQubits(3); err != nil {
			t.Fatal(err)
		}
		prep := circuit.New().Add(gates.H, 0).Add(rz, 0).
			Add(gates.H, 1).Add(gates.CNOT, 1, 2).
			Add(gates.CNOT, 0, 1).Add(gates.H, 0).
			Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(pf, prep)
		if err != nil {
			t.Fatal(err)
		}
		m0, m1 := res.Last(0), res.Last(1)
		branches[[2]int{m0, m1}] = true
		fix := circuit.New()
		if m1 == 1 {
			fix.Add(gates.X, 2)
		}
		if m0 == 1 {
			fix.Add(gates.Z, 2)
		}
		if fix.NumSlots() > 0 {
			if _, err := qpdo.Run(pf, fix); err != nil {
				t.Fatal(err)
			}
		}
		if err := pf.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := qx.Vector().ExtractSubsystem([]int{2})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := statevec.EqualUpToGlobalPhase(got, ref.Vector(), 1e-9); !ok {
			t.Fatalf("seed %d (branch %d%d): teleported state wrong", seed, m0, m1)
		}
	}
	if len(branches) < 4 {
		t.Errorf("only %d of 4 Bell branches exercised", len(branches))
	}
}

func TestQuantumStateViews(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(22)))
	if err := qx.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	qs, err := qx.GetQuantumState()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := qs.(*VectorState); !ok {
		t.Errorf("QxCore quantum state type %T", qs)
	}
	ch := NewChpCore(rand.New(rand.NewSource(23)))
	if err := ch.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	qs2, err := ch.GetQuantumState()
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := qs2.(*StabilizerState)
	if !ok {
		t.Fatalf("ChpCore quantum state type %T", qs2)
	}
	if ss.Describe() == "" {
		t.Error("empty stabilizer description")
	}
}
