package layers

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

func TestFaultLayerInjectsOnce(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(1)))
	fl := NewFaultLayer(qx, 1, 0, gates.X)
	if err := fl.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	// Slots: 0 (I), 1 (I) ← fault after this one, 2 (measure).
	c := circuit.New().Add(gates.I, 0).Add(gates.I, 0).Add(gates.Measure, 0)
	res, err := qpdo.Run(fl, c)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.Fired {
		t.Fatal("fault never fired")
	}
	if res.Last(0) != 1 {
		t.Errorf("fault X not applied before measurement: %d", res.Last(0))
	}
	if fl.SlotsSeen() != 3 {
		t.Errorf("slots seen = %d", fl.SlotsSeen())
	}
	// A second circuit must not re-fire.
	res, err = qpdo.Run(fl, circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Error("fault fired twice")
	}
}

func TestFaultLayerBypass(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(2)))
	fl := NewFaultLayer(qx, 0, 0, gates.X)
	if err := fl.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	// Bypass circuits neither fire nor advance the slot counter.
	if err := qpdo.WithBypass(fl, func() error {
		_, err := qpdo.Run(fl, circuit.New().Add(gates.I, 0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fl.Fired || fl.SlotsSeen() != 0 {
		t.Errorf("bypass affected the injector: fired=%v seen=%d", fl.Fired, fl.SlotsSeen())
	}
	res, err := qpdo.Run(fl, circuit.New().Add(gates.I, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !fl.Fired || res.Last(0) != 1 {
		t.Errorf("fault should fire on the first normal slot: fired=%v m=%d", fl.Fired, res.Last(0))
	}
}

func TestFaultLayerNeverReachedSlot(t *testing.T) {
	qx := NewQxCore(rand.New(rand.NewSource(3)))
	fl := NewFaultLayer(qx, 99, 0, gates.Z)
	if err := fl.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(fl, circuit.New().Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	if fl.Fired {
		t.Error("fault fired before its slot")
	}
}
