package layers

import (
	"fmt"
	"math/rand"

	"repro/internal/gates"
)

// Model is a Pauli error channel specification for the error layer. The
// thesis evaluates the symmetric depolarizing model (§5.3.1) and lists
// "more realistic error models" as future work (Chapter 6); Biased
// follows the biased-noise literature it cites (Aliferis & Preskill
// [28]) and Relaxation is the Pauli twirl of amplitude/phase damping.
type Model struct {
	// Name labels the model in reports.
	Name string
	// PX, PY, PZ are the per-operation probabilities of each Pauli
	// error on single-qubit operations and idle slots.
	PX, PY, PZ float64
	// PMeas is the probability of an X error immediately before a
	// measurement (result flip).
	PMeas float64
	// CorrelatedTwoQubit uses the thesis' p/15 uniform two-qubit table
	// (with p = PX+PY+PZ); otherwise each operand independently suffers
	// the single-qubit channel.
	CorrelatedTwoQubit bool
}

// TotalSingle is the per-operation error probability.
func (m Model) TotalSingle() float64 { return m.PX + m.PY + m.PZ }

// Validate rejects non-physical parameters.
func (m Model) Validate() error {
	for _, p := range []float64{m.PX, m.PY, m.PZ, m.PMeas} {
		if p < 0 || p > 1 {
			return fmt.Errorf("layers: probability %g out of range", p)
		}
	}
	if m.TotalSingle() > 1 {
		return fmt.Errorf("layers: total single-qubit error probability %g exceeds 1", m.TotalSingle())
	}
	return nil
}

// Depolarizing is the thesis model: p/3 for each Pauli, p for
// measurement flips, p/15 for each correlated two-qubit error.
func Depolarizing(p float64) Model {
	return Model{
		Name: fmt.Sprintf("depolarizing(p=%g)", p),
		PX:   p / 3, PY: p / 3, PZ: p / 3,
		PMeas:              p,
		CorrelatedTwoQubit: true,
	}
}

// Biased is a dephasing-biased channel: total error probability p with
// Z errors η times more likely than X and Y together follow the
// convention pZ = p·η/(η+1), pX = pY = p/(2(η+1)).
func Biased(p, eta float64) Model {
	return Model{
		Name: fmt.Sprintf("biased(p=%g, eta=%g)", p, eta),
		PX:   p / (2 * (eta + 1)), PY: p / (2 * (eta + 1)),
		PZ:    p * eta / (eta + 1),
		PMeas: p,
	}
}

// Relaxation is the Pauli twirl of simultaneous amplitude damping
// (probability pRelax per operation) and pure dephasing (pDephase): the
// twirled amplitude-damping channel contributes pRelax/4 to each of X
// and Y and pRelax/4 to Z; dephasing adds to Z.
func Relaxation(pRelax, pDephase float64) Model {
	return Model{
		Name: fmt.Sprintf("relaxation(T1=%g, Tphi=%g)", pRelax, pDephase),
		PX:   pRelax / 4, PY: pRelax / 4,
		PZ:    pRelax/4 + pDephase/2,
		PMeas: pRelax,
	}
}

// draw samples the single-qubit channel: nil for no error.
func (m Model) draw(rng *rand.Rand) *gates.Gate {
	u := rng.Float64()
	switch {
	case u < m.PX:
		return gates.X
	case u < m.PX+m.PY:
		return gates.Y
	case u < m.PX+m.PY+m.PZ:
		return gates.Z
	}
	return nil
}
