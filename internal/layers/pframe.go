package layers

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// PauliFrameLayer wraps a Pauli Frame Unit as a transparent QPDO layer
// (thesis §5.2.1): on the way down it absorbs Pauli gates, maps records
// through Clifford gates and flushes records ahead of non-Clifford gates;
// on the way up it inverts measurement results whose qubit record holds
// an X component. The layer sits above the error layer in the thesis
// stacks (Fig 5.8), so physical errors injected below are invisible to
// the frame while corrections arriving from above are absorbed.
type PauliFrameLayer struct {
	qpdo.Forwarder
	// PFU is the Pauli frame unit doing the work; exposed for
	// inspection by tests and experiments.
	PFU *core.PFU

	// pendingFlips queues, in stream order, whether each forwarded
	// measurement must be inverted on the way back up.
	pendingFlips []measFlip
	// SlotsSaved counts input time slots that vanished because every
	// operation in them was absorbed (thesis Fig 5.26).
	SlotsSaved int
}

type measFlip struct {
	qubit int
	flip  bool
}

// NewPauliFrameLayer stacks a Pauli frame above next, sized to the
// current qubit count (it grows with CreateQubits).
func NewPauliFrameLayer(next qpdo.Core) *PauliFrameLayer {
	return &PauliFrameLayer{
		Forwarder: qpdo.Forwarder{Next: next},
		PFU:       core.NewPFU(next.NumQubits()),
	}
}

// Reset clears every Pauli record, the pending measurement flips, the
// arbiter statistics and the slot-saving counter, restoring the layer to
// its freshly built state (stack reuse across Monte-Carlo samples).
func (l *PauliFrameLayer) Reset() {
	l.PFU.Frame.Clear()
	l.PFU.Stats = core.Stats{}
	l.pendingFlips = l.pendingFlips[:0]
	l.SlotsSaved = 0
}

// CreateQubits grows the frame alongside the stack.
func (l *PauliFrameLayer) CreateQubits(n int) error {
	if err := l.Next.CreateQubits(n); err != nil {
		return err
	}
	l.PFU.Frame.Grow(n)
	return nil
}

// RemoveQubits shrinks the frame alongside the stack.
func (l *PauliFrameLayer) RemoveQubits(m int) error {
	if err := l.Next.RemoveQubits(m); err != nil {
		return err
	}
	return l.PFU.Frame.Shrink(m)
}

// Add transforms the circuit through the Pauli arbiter and forwards the
// result. Time slots whose operations were all absorbed are dropped;
// flush gates for non-Clifford operations are emitted in a dedicated
// slot preceding the slot of the gate itself.
func (l *PauliFrameLayer) Add(c *circuit.Circuit) error {
	if err := qpdo.Validate(c, l.PFU.Frame.Size()); err != nil {
		return err
	}
	out := circuit.New()
	for _, slot := range c.Slots {
		var flushOps, mainOps []circuit.Operation
		for _, op := range slot.Ops {
			if op.Gate.Class == gates.ClassMeasure {
				// Capture the flip decision at this point in the stream.
				l.pendingFlips = append(l.pendingFlips, measFlip{
					qubit: op.Qubits[0],
					flip:  l.PFU.Frame.FlipsMeasurement(op.Qubits[0]),
				})
			}
			fwd, err := l.PFU.Process(op)
			if err != nil {
				return err
			}
			if len(fwd) > 1 {
				flushOps = append(flushOps, fwd[:len(fwd)-1]...)
				mainOps = append(mainOps, fwd[len(fwd)-1])
			} else {
				mainOps = append(mainOps, fwd...)
			}
		}
		if len(flushOps) > 0 {
			out.AddParallel(flushOps...)
		}
		if len(mainOps) > 0 {
			out.AddParallel(mainOps...)
		} else if len(flushOps) == 0 {
			l.SlotsSaved++
		}
	}
	if out.NumSlots() == 0 {
		// Nothing physical to do; the whole circuit was absorbed.
		return nil
	}
	return l.Next.Add(out)
}

// Execute runs the forwarded stream and maps the measurement results
// through the frame in order.
func (l *PauliFrameLayer) Execute() (*qpdo.Result, error) {
	res, err := l.Next.Execute()
	if err != nil {
		return nil, err
	}
	if len(res.Measurements) != len(l.pendingFlips) {
		return nil, fmt.Errorf("layers: pauli frame saw %d pending measurements but %d results arrived",
			len(l.pendingFlips), len(res.Measurements))
	}
	for i := range res.Measurements {
		pf := l.pendingFlips[i]
		m := &res.Measurements[i]
		if m.Qubit != pf.qubit {
			return nil, fmt.Errorf("layers: measurement order mismatch: result %d is qubit %d, frame expected qubit %d",
				i, m.Qubit, pf.qubit)
		}
		if pf.flip {
			m.Value = 1 - m.Value
			l.PFU.Stats.MeasurementsFlipped++
		}
	}
	l.pendingFlips = l.pendingFlips[:0]
	return res, nil
}

// GetState maps the binary-state view through the frame: a qubit whose
// record holds an X component has its known 0/1 value inverted.
func (l *PauliFrameLayer) GetState() (*qpdo.State, error) {
	st, err := l.Next.GetState()
	if err != nil {
		return nil, err
	}
	for q := range st.Values {
		if q < l.PFU.Frame.Size() && l.PFU.Frame.FlipsMeasurement(q) {
			switch st.Values[q] {
			case qpdo.StateZero:
				st.Values[q] = qpdo.StateOne
			case qpdo.StateOne:
				st.Values[q] = qpdo.StateZero
			}
		}
	}
	return st, nil
}

// Flush emits all pending records as physical Pauli gates to the lower
// layers and executes them, restoring the physical state to what it
// would have been without a Pauli frame (thesis §5.2.2). Call before
// comparing full quantum states.
func (l *PauliFrameLayer) Flush() error {
	if len(l.pendingFlips) > 0 {
		return fmt.Errorf("layers: Flush with %d unexecuted measurements queued; call Execute first", len(l.pendingFlips))
	}
	c := l.PFU.FlushAll()
	if c.NumSlots() == 0 {
		return nil
	}
	if err := l.Next.Add(c); err != nil {
		return err
	}
	_, err := l.Next.Execute()
	return err
}
