package layers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
	"repro/internal/qpdo"
	"repro/internal/randcirc"
)

// TestCrossSimulatorEquivalence drives the same random Clifford circuits
// through both simulation cores (the thesis' QX and CHP back-ends) and
// compares the full stabilizer structure: every stabilizer generator the
// tableau reports must have expectation +1 on the state-vector state,
// and single-qubit ⟨Z⟩ expectations must agree exactly. This pins the
// two independently-implemented substrates against each other.
func TestCrossSimulatorEquivalence(t *testing.T) {
	const (
		iters  = 25
		qubits = 6
		ngates = 150
	)
	for it := 0; it < iters; it++ {
		seed := int64(9000 + it)
		circ := randcirc.Generate(randcirc.Config{
			Qubits: qubits, Gates: ngates, CliffordOnly: true, IncludeIdentity: true,
		}, rand.New(rand.NewSource(seed)))

		qx := NewQxCore(rand.New(rand.NewSource(seed)))
		if err := qx.CreateQubits(qubits); err != nil {
			t.Fatal(err)
		}
		if _, err := qpdo.Run(qx, circ.Clone()); err != nil {
			t.Fatal(err)
		}

		ch := NewChpCore(rand.New(rand.NewSource(seed)))
		if err := ch.CreateQubits(qubits); err != nil {
			t.Fatal(err)
		}
		if _, err := qpdo.Run(ch, circ.Clone()); err != nil {
			t.Fatal(err)
		}

		for _, stab := range ch.Tableau().Stabilizers() {
			if got := qx.Vector().ExpectPauli(stab); math.Abs(got-1) > 1e-9 {
				t.Fatalf("iteration %d: stabilizer %v has ⟨·⟩ = %v on the state vector",
					it, stab, got)
			}
		}
		for q := 0; q < qubits; q++ {
			zq := pauli.ZString(q)
			sv := qx.Vector().ExpectPauli(zq)
			v, det := ch.Tableau().ExpectPauli(zq)
			if det {
				if math.Abs(sv-float64(v)) > 1e-9 {
					t.Fatalf("iteration %d: ⟨Z%d⟩ = %v (statevec) vs %d (tableau)", it, q, sv, v)
				}
			} else if math.Abs(sv) > 1e-9 {
				t.Fatalf("iteration %d: tableau says ⟨Z%d⟩ indeterminate, statevec says %v", it, q, sv)
			}
		}
	}
}

// TestCrossSimulatorMeasurementCollapse runs circuits with mid-circuit
// measurements through both cores with the same RNG and verifies the
// stabilizer structure still agrees after collapse (outcomes may differ,
// so the comparison re-anchors on the tableau's own post-measurement
// stabilizers).
func TestCrossSimulatorMeasurementCollapse(t *testing.T) {
	const iters = 15
	for it := 0; it < iters; it++ {
		seed := int64(9500 + it)
		circ := randcirc.GenerateWithMeasurements(randcirc.Config{
			Qubits: 5, Gates: 60, CliffordOnly: true,
		}, rand.New(rand.NewSource(seed)))

		ch := NewChpCore(rand.New(rand.NewSource(seed)))
		if err := ch.CreateQubits(5); err != nil {
			t.Fatal(err)
		}
		res, err := qpdo.Run(ch, circ.Clone())
		if err != nil {
			t.Fatal(err)
		}
		// After measuring every qubit the state is a basis state whose
		// bits are the outcomes: ±Z_q must be stabilizers.
		for q := 0; q < 5; q++ {
			want := 1 - 2*res.Last(q)
			v, det := ch.Tableau().ExpectPauli(pauli.ZString(q))
			if !det || v != want {
				t.Fatalf("iteration %d: post-measurement ⟨Z%d⟩ = %d det=%v, outcome was %d",
					it, q, v, det, res.Last(q))
			}
		}
	}
}
