package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gates"
	"repro/internal/pauli"
)

// TestBitFrameMatchesReference drives the reference Frame and the
// hardware-shaped BitFrame with identical random operation streams and
// requires bit-identical records throughout.
func TestBitFrameMatchesReference(t *testing.T) {
	const n = 70 // spans two words
	type opKind int
	const (
		kPauli opKind = iota
		kSingleClifford
		kTwoClifford
		kReset
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := NewFrame(n)
		bit := NewBitFrame(n)
		paulis := []gates.Name{gates.GateI, gates.GateX, gates.GateY, gates.GateZ}
		singles := []gates.Name{gates.GateH, gates.GateS, gates.GateSdg}
		twos := []gates.Name{gates.GateCNOT, gates.GateCZ, gates.GateSWAP}
		for i := 0; i < 300; i++ {
			q := rng.Intn(n)
			switch opKind(rng.Intn(4)) {
			case kPauli:
				g := paulis[rng.Intn(len(paulis))]
				if err := ref.TrackPauli(g, q); err != nil {
					return false
				}
				if err := bit.TrackPauli(g, q); err != nil {
					return false
				}
			case kSingleClifford:
				g := singles[rng.Intn(len(singles))]
				if err := ref.MapClifford(g, []int{q}); err != nil {
					return false
				}
				if err := bit.MapClifford(g, []int{q}); err != nil {
					return false
				}
			case kTwoClifford:
				g := twos[rng.Intn(len(twos))]
				q2 := (q + 1 + rng.Intn(n-1)) % n
				if err := ref.MapClifford(g, []int{q, q2}); err != nil {
					return false
				}
				if err := bit.MapClifford(g, []int{q, q2}); err != nil {
					return false
				}
			case kReset:
				ref.Reset(q)
				bit.Reset(q)
			}
		}
		for q := 0; q < n; q++ {
			if ref.Record(q) != bit.Record(q) {
				t.Logf("seed %d: record %d diverged: %v vs %v", seed, q, ref.Record(q), bit.Record(q))
				return false
			}
			if ref.FlipsMeasurement(q) != bit.FlipsMeasurement(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBitFrameTransversalH(t *testing.T) {
	bit := NewBitFrame(9)
	ref := NewFrame(9)
	for q := 0; q < 9; q += 2 {
		_ = bit.TrackPauli(gates.GateX, q)
		_ = ref.TrackPauli(gates.GateX, q)
	}
	_ = bit.TrackPauli(gates.GateZ, 1)
	_ = ref.TrackPauli(gates.GateZ, 1)
	bit.TransversalH()
	for q := 0; q < 9; q++ {
		_ = ref.MapClifford(gates.GateH, []int{q})
	}
	for q := 0; q < 9; q++ {
		if bit.Record(q) != ref.Record(q) {
			t.Errorf("qubit %d: %v vs %v", q, bit.Record(q), ref.Record(q))
		}
	}
}

func TestBitFrameMaskTracking(t *testing.T) {
	bit := NewBitFrame(9)
	// X chain on qubits 2,4,6 and Z chain on 0,4,8 in one word operation.
	xMask := []uint64{1<<2 | 1<<4 | 1<<6}
	zMask := []uint64{1<<0 | 1<<4 | 1<<8}
	bit.TrackPauliMask(xMask, zMask)
	want := map[int]pauli.Record{
		0: pauli.RecZ, 2: pauli.RecX, 4: pauli.RecXZ, 6: pauli.RecX, 8: pauli.RecZ,
	}
	for q := 0; q < 9; q++ {
		w := want[q]
		if got := bit.Record(q); got != w {
			t.Errorf("qubit %d: %v, want %v", q, got, w)
		}
	}
	// Applying the same masks again cancels everything.
	bit.TrackPauliMask(xMask, zMask)
	for q := 0; q < 9; q++ {
		if !bit.Record(q).IsIdentity() {
			t.Errorf("qubit %d not cancelled", q)
		}
	}
}

func TestBitFrameErrors(t *testing.T) {
	bit := NewBitFrame(2)
	if err := bit.TrackPauli(gates.GateH, 0); err == nil {
		t.Error("H is not a Pauli")
	}
	if err := bit.MapClifford(gates.GateT, []int{0}); err == nil {
		t.Error("T has no mapping table")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	bit.Record(5)
}
