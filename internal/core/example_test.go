package core_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gates"
)

// The Pauli arbiter routes each operation category differently
// (thesis Table 3.1): Pauli gates are absorbed, Clifford gates map the
// records and pass through, non-Clifford gates force a flush.
func Example() {
	pfu := core.NewPFU(2)

	ops := []circuit.Operation{
		circuit.NewOp(gates.X, 0),       // absorbed
		circuit.NewOp(gates.H, 0),       // record X→Z, forwarded
		circuit.NewOp(gates.CNOT, 0, 1), // records map, forwarded
		circuit.NewOp(gates.T, 0),       // flush Z first, then T
	}
	for _, op := range ops {
		fwd, _ := pfu.Process(op)
		names := make([]string, len(fwd))
		for i, f := range fwd {
			names[i] = string(f.Gate.Name)
		}
		fmt.Printf("%-4s -> forwarded %v\n", op.Gate.Name, names)
	}
	fmt.Printf("records: q0=%s q1=%s\n", pfu.Frame.Record(0), pfu.Frame.Record(1))

	// Output:
	// x    -> forwarded []
	// h    -> forwarded [h]
	// cnot -> forwarded [cnot]
	// t    -> forwarded [z t]
	// records: q0=I q1=I
}
