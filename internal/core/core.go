// Package core implements the Pauli Frame Unit (PFU), the primary
// contribution of the paper (thesis Chapter 3): classical memory holding a
// two-bit Pauli record per qubit, the Pauli-frame mapping logic that
// updates records under every operation category, and the Pauli arbiter
// that decides which operations are forwarded to the physical execution
// layer and which are absorbed by the frame (thesis Table 3.1, Fig 3.12).
//
// The five operation categories are handled as specified:
//
//	Initialization  — forward, then reset the record to I.
//	Measurement     — forward, then invert the result when the record
//	                  contains an X component (Table 3.2).
//	Pauli gates     — absorb: map the record only (Table 3.3).
//	Clifford gates  — map the record(s) (Tables 3.4, 3.5) and forward.
//	Non-Clifford    — flush the operand records as physical Pauli gates,
//	                  then forward the gate itself.
package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/pauli"
)

// Frame is the Pauli frame: one Pauli record per qubit (thesis §3.2).
// A frame for n qubits is 2n bits of classical state.
type Frame struct {
	recs []pauli.Record
}

// NewFrame creates a frame of n identity records.
func NewFrame(n int) *Frame { return &Frame{recs: make([]pauli.Record, n)} }

// Grow appends n identity records (new qubits).
func (f *Frame) Grow(n int) { f.recs = append(f.recs, make([]pauli.Record, n)...) }

// Shrink drops the m highest-numbered records.
func (f *Frame) Shrink(m int) error {
	if m < 0 || m > len(f.recs) {
		return fmt.Errorf("core: cannot shrink %d records from a frame of %d", m, len(f.recs))
	}
	f.recs = f.recs[:len(f.recs)-m]
	return nil
}

// Size returns the number of records.
func (f *Frame) Size() int { return len(f.recs) }

func (f *Frame) check(q int) {
	if q < 0 || q >= len(f.recs) {
		panic(fmt.Sprintf("core: qubit %d outside frame of %d records", q, len(f.recs)))
	}
}

// Record returns the record of qubit q.
func (f *Frame) Record(q int) pauli.Record {
	f.check(q)
	return f.recs[q]
}

// SetRecord overwrites the record of qubit q (used by tests and by the
// architecture model's symbol-table moves).
func (f *Frame) SetRecord(q int, r pauli.Record) {
	f.check(q)
	f.recs[q] = r
}

// Reset clears the record of qubit q to I; called on initialization
// (thesis §3.1, element 1).
func (f *Frame) Reset(q int) {
	f.check(q)
	f.recs[q] = pauli.RecI
}

// Clear resets every record to I; the stack-reuse fast path of the
// Monte-Carlo drivers (one allocation-free call instead of per-qubit
// Resets).
func (f *Frame) Clear() {
	for i := range f.recs {
		f.recs[i] = pauli.RecI
	}
}

// FlipsMeasurement reports whether the measurement result of qubit q must
// be inverted (thesis Table 3.2).
func (f *Frame) FlipsMeasurement(q int) bool {
	f.check(q)
	return f.recs[q].FlipsMeasurement()
}

// TrackPauli absorbs a Pauli gate into the record of qubit q
// (thesis Table 3.3).
func (f *Frame) TrackPauli(name gates.Name, q int) error {
	f.check(q)
	switch name {
	case gates.GateI:
		// Identity tracks nothing.
	case gates.GateX:
		f.recs[q] = f.recs[q].MulPauli(pauli.X)
	case gates.GateY:
		f.recs[q] = f.recs[q].MulPauli(pauli.Y)
	case gates.GateZ:
		f.recs[q] = f.recs[q].MulPauli(pauli.Z)
	default:
		return fmt.Errorf("core: %s is not a Pauli gate", name)
	}
	return nil
}

// MapClifford conjugates the records of the operand qubits by a Clifford
// gate (thesis Tables 3.4 and 3.5). Gates without a mapping rule are
// rejected; the arbiter treats them as non-Clifford.
func (f *Frame) MapClifford(name gates.Name, qubits []int) error {
	for _, q := range qubits {
		f.check(q)
	}
	switch name {
	case gates.GateH:
		f.recs[qubits[0]] = f.recs[qubits[0]].MapH()
	case gates.GateS:
		f.recs[qubits[0]] = f.recs[qubits[0]].MapS()
	case gates.GateSdg:
		f.recs[qubits[0]] = f.recs[qubits[0]].MapSdg()
	case gates.GateCNOT:
		f.recs[qubits[0]], f.recs[qubits[1]] = pauli.MapCNOT(f.recs[qubits[0]], f.recs[qubits[1]])
	case gates.GateCZ:
		f.recs[qubits[0]], f.recs[qubits[1]] = pauli.MapCZ(f.recs[qubits[0]], f.recs[qubits[1]])
	case gates.GateSWAP:
		f.recs[qubits[0]], f.recs[qubits[1]] = pauli.MapSWAP(f.recs[qubits[0]], f.recs[qubits[1]])
	default:
		return fmt.Errorf("core: no Clifford mapping table for %s", name)
	}
	return nil
}

// HasMappingTable reports whether the frame can map records through the
// gate without flushing. This is the arbiter's Clifford test: only gates
// with an implemented mapping table qualify (thesis §5.2.1).
func HasMappingTable(name gates.Name) bool {
	switch name {
	case gates.GateH, gates.GateS, gates.GateSdg, gates.GateCNOT, gates.GateCZ, gates.GateSWAP:
		return true
	default:
		return false
	}
}

// FlushGate returns the physical gate that realizes the pending record of
// qubit q — X, Z, or Y for the combined XZ record (equal to XZ up to the
// discarded global phase i) — and resets the record to I. It returns nil
// when nothing is pending.
func (f *Frame) FlushGate(q int) *gates.Gate {
	f.check(q)
	r := f.recs[q]
	f.recs[q] = pauli.RecI
	switch r {
	case pauli.RecX:
		return gates.X
	case pauli.RecZ:
		return gates.Z
	case pauli.RecXZ:
		return gates.Y
	}
	return nil
}

// String renders the frame in the style of thesis Listing 5.5.
func (f *Frame) String() string {
	s := "Pauli frame with Pauli records:\n"
	for q, r := range f.recs {
		s += fmt.Sprintf("  %d: %s\n", q, r)
	}
	return s
}

// Records returns a copy of all records.
func (f *Frame) Records() []pauli.Record {
	return append([]pauli.Record(nil), f.recs...)
}

// PendingCount returns the number of non-identity records.
func (f *Frame) PendingCount() int {
	n := 0
	for _, r := range f.recs {
		if !r.IsIdentity() {
			n++
		}
	}
	return n
}

// Stats counts what the arbiter has done with the operation stream; the
// savings experiments of thesis Figs 5.25–5.26 read these.
type Stats struct {
	// PauliAbsorbed counts Pauli gates absorbed into the frame.
	PauliAbsorbed int
	// CliffordMapped counts Clifford gates that mapped records.
	CliffordMapped int
	// FlushGates counts physical Pauli gates emitted by flushes.
	FlushGates int
	// NonClifford counts non-Clifford gates processed.
	NonClifford int
	// MeasurementsFlipped counts measurement results inverted.
	MeasurementsFlipped int
	// Resets counts record resets from initialization operations.
	Resets int
}

// PFU couples a Pauli frame with the Pauli arbiter's routing logic
// (thesis Fig 3.11): Process consumes one operation from the stream and
// returns the operations to forward to the physical execution layer.
type PFU struct {
	Frame *Frame
	Stats Stats
}

// NewPFU creates a Pauli frame unit for n qubits.
func NewPFU(n int) *PFU { return &PFU{Frame: NewFrame(n)} }

// Process routes one operation per thesis Table 3.1 / Fig 3.12 and
// returns the physical operations to forward downward, in order. Pauli
// gates return an empty slice; non-Clifford gates return the flushed
// Pauli gates followed by the gate itself.
func (u *PFU) Process(op circuit.Operation) ([]circuit.Operation, error) {
	g := op.Gate
	switch g.Class {
	case gates.ClassReset:
		// Step 1: forward the reset; step 2: record to I (Fig 3.12a).
		u.Frame.Reset(op.Qubits[0])
		u.Stats.Resets++
		return []circuit.Operation{op}, nil
	case gates.ClassMeasure:
		// Forward untouched; the result is mapped on the way back up
		// via MapMeasurement (Fig 3.12b).
		return []circuit.Operation{op}, nil
	case gates.ClassPauli:
		// Absorb (Fig 3.12c).
		if err := u.Frame.TrackPauli(g.Name, op.Qubits[0]); err != nil {
			return nil, err
		}
		u.Stats.PauliAbsorbed++
		return nil, nil
	case gates.ClassClifford:
		if !HasMappingTable(g.Name) {
			return u.flushAndForward(op)
		}
		// Map records, then forward (Fig 3.12d).
		if err := u.Frame.MapClifford(g.Name, op.Qubits); err != nil {
			return nil, err
		}
		u.Stats.CliffordMapped++
		return []circuit.Operation{op}, nil
	case gates.ClassNonClifford:
		return u.flushAndForward(op)
	}
	return nil, fmt.Errorf("core: unknown operation class %v", g.Class)
}

// flushAndForward implements Fig 3.12e: flush the operand records as
// physical Pauli gates, then forward the original gate.
func (u *PFU) flushAndForward(op circuit.Operation) ([]circuit.Operation, error) {
	var out []circuit.Operation
	for _, q := range op.Qubits {
		if g := u.Frame.FlushGate(q); g != nil {
			out = append(out, circuit.NewOp(g, q))
			u.Stats.FlushGates++
		}
	}
	u.Stats.NonClifford++
	return append(out, op), nil
}

// MapMeasurement maps a raw measurement result of qubit q through the
// frame (thesis Table 3.2), returning the corrected result.
func (u *PFU) MapMeasurement(q, value int) int {
	if u.Frame.FlipsMeasurement(q) {
		u.Stats.MeasurementsFlipped++
		return 1 - value
	}
	return value
}

// FlushAll emits the pending Pauli gates of every qubit as a circuit of
// single-gate time slots and clears the frame; used before retrieving a
// full quantum state for comparison (thesis §5.2.2).
func (u *PFU) FlushAll() *circuit.Circuit {
	c := circuit.New()
	slot := -1
	for q := 0; q < u.Frame.Size(); q++ {
		if g := u.Frame.FlushGate(q); g != nil {
			if slot < 0 {
				slot = c.AppendSlot()
			}
			c.AddToSlot(slot, g, q)
			u.Stats.FlushGates++
		}
	}
	return c
}
