package core

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/pauli"
	"repro/internal/statevec"
)

// recordOps renders a record pair as physical gate applications.
func applyRecords(s *statevec.State, recs []pauli.Record) {
	for q, r := range recs {
		if r.X {
			s.ApplyGate(gates.X, q)
		}
		if r.Z {
			s.ApplyGate(gates.Z, q)
		}
	}
}

// TestMappingTablesMatchConjugation is the physics ground truth for
// thesis Tables 3.4/3.5: for every Clifford generator C and every record
// configuration R, the states C·R|ψ⟩ and R′·C|ψ⟩ must agree up to global
// phase, where R′ is the frame-mapped record. Randomized non-stabilizer
// input states |ψ⟩ make the check basis-independent.
func TestMappingTablesMatchConjugation(t *testing.T) {
	singles := []gates.Name{gates.GateH, gates.GateS, gates.GateSdg}
	twos := []gates.Name{gates.GateCNOT, gates.GateCZ, gates.GateSWAP}
	rng := rand.New(rand.NewSource(123))
	prep := func() *statevec.State {
		s := statevec.New(2, rng)
		// A generic two-qubit state: Haar-ish via a few parametrized ops.
		s.ApplyGate(gates.H, 0)
		s.ApplyGate(gates.RZ(rng.Float64()*6), 0)
		s.ApplyGate(gates.H, 1)
		s.ApplyGate(gates.RZ(rng.Float64()*6), 1)
		s.ApplyGate(gates.CNOT, 0, 1)
		s.ApplyGate(gates.RZ(rng.Float64()*6), 1)
		return s
	}

	for _, name := range singles {
		g := gates.MustLookup(name)
		for _, r0 := range pauli.AllRecords() {
			for _, r1 := range pauli.AllRecords() {
				base := prep()
				// Path A: pending records applied physically, then C on q0.
				a := base.Clone()
				applyRecords(a, []pauli.Record{r0, r1})
				a.ApplyGate(g, 0)
				// Path B: C first, then the mapped records.
				f := NewFrame(2)
				f.SetRecord(0, r0)
				f.SetRecord(1, r1)
				if err := f.MapClifford(name, []int{0}); err != nil {
					t.Fatal(err)
				}
				b := base.Clone()
				b.ApplyGate(g, 0)
				applyRecords(b, f.Records())
				if ok, _ := statevec.EqualUpToGlobalPhase(a, b, 1e-9); !ok {
					t.Errorf("%s with records (%v,%v): conjugation mismatch", name, r0, r1)
				}
			}
		}
	}
	for _, name := range twos {
		g := gates.MustLookup(name)
		for _, r0 := range pauli.AllRecords() {
			for _, r1 := range pauli.AllRecords() {
				base := prep()
				a := base.Clone()
				applyRecords(a, []pauli.Record{r0, r1})
				a.ApplyGate(g, 0, 1)
				f := NewFrame(2)
				f.SetRecord(0, r0)
				f.SetRecord(1, r1)
				if err := f.MapClifford(name, []int{0, 1}); err != nil {
					t.Fatal(err)
				}
				b := base.Clone()
				b.ApplyGate(g, 0, 1)
				applyRecords(b, f.Records())
				if ok, _ := statevec.EqualUpToGlobalPhase(a, b, 1e-9); !ok {
					t.Errorf("%s with records (%v,%v): conjugation mismatch", name, r0, r1)
				}
			}
		}
	}
}

// TestMeasurementRuleMatchesPhysics verifies thesis Table 3.2 against the
// state vector: the frame-corrected outcome distribution of a qubit with
// a pending record equals the distribution of the physically-applied
// record.
func TestMeasurementRuleMatchesPhysics(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, r := range pauli.AllRecords() {
		// Reference probability with the record applied physically.
		ref := statevec.New(1, rng)
		ref.ApplyGate(gates.H, 0)
		ref.ApplyGate(gates.RZ(0.9), 0)
		ref.ApplyGate(gates.H, 0)
		refState := ref.Clone()
		applyRecords(refState, []pauli.Record{r})
		wantP1 := refState.ProbOne(0)
		// Frame path: raw probability, then the Table 3.2 flip.
		rawP1 := ref.ProbOne(0)
		gotP1 := rawP1
		if r.FlipsMeasurement() {
			gotP1 = 1 - rawP1
		}
		if diff := gotP1 - wantP1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("record %v: corrected P(1)=%v, physical P(1)=%v", r, gotP1, wantP1)
		}
	}
}
