package core

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/pauli"
)

func TestArbiterRoutingTable31(t *testing.T) {
	// Thesis Table 3.1: what each operation category forwards.
	u := NewPFU(3)

	// Initialization: forwarded, record reset.
	u.Frame.SetRecord(0, pauli.RecXZ)
	out, err := u.Process(circuit.NewOp(gates.Prep, 0))
	if err != nil || len(out) != 1 || out[0].Gate != gates.Prep {
		t.Fatalf("reset routing: out=%v err=%v", out, err)
	}
	if u.Frame.Record(0) != pauli.RecI {
		t.Error("reset should clear the record")
	}

	// Pauli gate: absorbed, nothing forwarded.
	out, err = u.Process(circuit.NewOp(gates.X, 1))
	if err != nil || len(out) != 0 {
		t.Fatalf("pauli routing: out=%v err=%v", out, err)
	}
	if u.Frame.Record(1) != pauli.RecX {
		t.Errorf("record after X = %v", u.Frame.Record(1))
	}

	// Clifford gate: record mapped, gate forwarded.
	out, err = u.Process(circuit.NewOp(gates.H, 1))
	if err != nil || len(out) != 1 || out[0].Gate != gates.H {
		t.Fatalf("clifford routing: out=%v err=%v", out, err)
	}
	if u.Frame.Record(1) != pauli.RecZ {
		t.Errorf("record after H mapping = %v, want Z", u.Frame.Record(1))
	}

	// Measurement: forwarded untouched.
	out, err = u.Process(circuit.NewOp(gates.Measure, 1))
	if err != nil || len(out) != 1 || out[0].Gate != gates.Measure {
		t.Fatalf("measure routing: out=%v err=%v", out, err)
	}

	// Non-Clifford gate: flush then forward.
	u.Frame.SetRecord(2, pauli.RecX)
	out, err = u.Process(circuit.NewOp(gates.T, 2))
	if err != nil || len(out) != 2 {
		t.Fatalf("non-clifford routing: out=%v err=%v", out, err)
	}
	if out[0].Gate != gates.X || out[1].Gate != gates.T {
		t.Errorf("flush order wrong: %v", out)
	}
	if u.Frame.Record(2) != pauli.RecI {
		t.Error("flush should clear the record")
	}
}

func TestFlushGateMapping(t *testing.T) {
	f := NewFrame(4)
	f.SetRecord(1, pauli.RecX)
	f.SetRecord(2, pauli.RecZ)
	f.SetRecord(3, pauli.RecXZ)
	if g := f.FlushGate(0); g != nil {
		t.Errorf("identity record flushed %v", g)
	}
	if g := f.FlushGate(1); g != gates.X {
		t.Errorf("X record flushed %v", g)
	}
	if g := f.FlushGate(2); g != gates.Z {
		t.Errorf("Z record flushed %v", g)
	}
	if g := f.FlushGate(3); g != gates.Y {
		t.Errorf("XZ record flushed %v, want Y (= XZ up to phase)", g)
	}
	for q := 0; q < 4; q++ {
		if f.Record(q) != pauli.RecI {
			t.Errorf("record %d not cleared after flush", q)
		}
	}
}

func TestMeasurementMapping(t *testing.T) {
	u := NewPFU(2)
	u.Frame.SetRecord(0, pauli.RecX)
	u.Frame.SetRecord(1, pauli.RecZ)
	if got := u.MapMeasurement(0, 0); got != 1 {
		t.Errorf("X record should invert 0 to 1, got %d", got)
	}
	if got := u.MapMeasurement(0, 1); got != 0 {
		t.Errorf("X record should invert 1 to 0, got %d", got)
	}
	if got := u.MapMeasurement(1, 1); got != 1 {
		t.Errorf("Z record should not invert, got %d", got)
	}
	if u.Stats.MeasurementsFlipped != 2 {
		t.Errorf("flip stat = %d, want 2", u.Stats.MeasurementsFlipped)
	}
}

func TestDoubleErrorCancels(t *testing.T) {
	// Thesis Fig 3.7: an X record followed by a combined XZ detection
	// leaves only Z tracked.
	u := NewPFU(1)
	if _, err := u.Process(circuit.NewOp(gates.X, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Process(circuit.NewOp(gates.X, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Process(circuit.NewOp(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	if got := u.Frame.Record(0); got != pauli.RecZ {
		t.Errorf("record = %v, want Z", got)
	}
}

func TestCNOTPropagation(t *testing.T) {
	// An X on the control propagates to the target through CNOT — the
	// mechanism that lets tracked data-qubit errors flip ancilla
	// syndromes automatically.
	u := NewPFU(2)
	u.Frame.SetRecord(0, pauli.RecX)
	if _, err := u.Process(circuit.NewOp(gates.CNOT, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if u.Frame.Record(0) != pauli.RecX || u.Frame.Record(1) != pauli.RecX {
		t.Errorf("records after CNOT = %v,%v; want X,X",
			u.Frame.Record(0), u.Frame.Record(1))
	}
}

func TestFlushAll(t *testing.T) {
	u := NewPFU(5)
	u.Frame.SetRecord(0, pauli.RecXZ)
	u.Frame.SetRecord(2, pauli.RecXZ)
	u.Frame.SetRecord(4, pauli.RecXZ)
	c := u.FlushAll()
	if c.NumSlots() != 1 || c.NumOps() != 3 {
		t.Fatalf("flush circuit: slots=%d ops=%d", c.NumSlots(), c.NumOps())
	}
	for _, op := range c.Slots[0].Ops {
		if op.Gate != gates.Y {
			t.Errorf("flush gate %v, want y", op.Gate)
		}
	}
	if u.Frame.PendingCount() != 0 {
		t.Error("frame not cleared by FlushAll")
	}
	// Flushing an empty frame yields an empty circuit.
	if c2 := u.FlushAll(); c2.NumSlots() != 0 {
		t.Error("empty flush should produce no slots")
	}
}

func TestFrameGrowShrink(t *testing.T) {
	f := NewFrame(2)
	f.Grow(3)
	if f.Size() != 5 {
		t.Fatalf("size after grow = %d", f.Size())
	}
	f.SetRecord(4, pauli.RecX)
	if err := f.Shrink(3); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("size after shrink = %d", f.Size())
	}
	if err := f.Shrink(5); err == nil {
		t.Error("over-shrink should fail")
	}
}

func TestFrameStringListing(t *testing.T) {
	// Thesis Listing 5.5 style rendering.
	f := NewFrame(3)
	f.SetRecord(0, pauli.RecXZ)
	s := f.String()
	if !strings.Contains(s, "0: XZ") || !strings.Contains(s, "1: I") {
		t.Errorf("frame rendering: %q", s)
	}
}

func TestStats(t *testing.T) {
	u := NewPFU(2)
	ops := []circuit.Operation{
		circuit.NewOp(gates.Prep, 0),
		circuit.NewOp(gates.X, 0),
		circuit.NewOp(gates.Z, 1),
		circuit.NewOp(gates.H, 0),
		circuit.NewOp(gates.T, 0),
		circuit.NewOp(gates.Measure, 1),
	}
	for _, op := range ops {
		if _, err := u.Process(op); err != nil {
			t.Fatal(err)
		}
	}
	st := u.Stats
	if st.Resets != 1 || st.PauliAbsorbed != 2 || st.CliffordMapped != 1 ||
		st.NonClifford != 1 || st.FlushGates != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIdentityGateIsNoop(t *testing.T) {
	u := NewPFU(1)
	u.Frame.SetRecord(0, pauli.RecZ)
	out, err := u.Process(circuit.NewOp(gates.I, 0))
	if err != nil || len(out) != 0 {
		t.Fatalf("identity routing: out=%v err=%v", out, err)
	}
	if u.Frame.Record(0) != pauli.RecZ {
		t.Error("identity changed the record")
	}
}

func TestUnknownCliffordFallsBackToFlush(t *testing.T) {
	if HasMappingTable(gates.GateT) || HasMappingTable("weird") {
		t.Error("mapping table claims unsupported gates")
	}
	if !HasMappingTable(gates.GateCNOT) || !HasMappingTable(gates.GateH) {
		t.Error("mapping table missing supported gates")
	}
}

func TestToffoliFlushesAllOperands(t *testing.T) {
	u := NewPFU(3)
	u.Frame.SetRecord(0, pauli.RecX)
	u.Frame.SetRecord(1, pauli.RecZ)
	u.Frame.SetRecord(2, pauli.RecXZ)
	out, err := u.Process(circuit.NewOp(gates.Toffoli, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("want 3 flush gates + toffoli, got %v", out)
	}
	if out[3].Gate != gates.Toffoli {
		t.Errorf("toffoli should come last: %v", out)
	}
	for q := 0; q < 3; q++ {
		if u.Frame.Record(q) != pauli.RecI {
			t.Errorf("record %d not flushed", q)
		}
	}
}
