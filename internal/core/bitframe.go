package core

import (
	"fmt"

	"repro/internal/gates"
	"repro/internal/pauli"
)

// BitFrame is the hardware-shaped implementation of the Pauli frame: the
// X and Z components of all records are stored as bit planes (one bit
// per qubit packed into 64-bit words), and every mapping rule of thesis
// Tables 3.2–3.5 becomes one or two word-wide boolean operations —
// exactly the registers-plus-gates structure the thesis argues "can soon
// be mapped to a hardware implementation" (abstract; §3.5.2: 2n bits of
// memory plus mapping logic). The reference implementation is Frame;
// the two are kept in lock-step by property tests.
type BitFrame struct {
	n    int
	x, z []uint64
}

// NewBitFrame creates an all-identity frame for n qubits.
func NewBitFrame(n int) *BitFrame {
	w := (n + 63) / 64
	return &BitFrame{n: n, x: make([]uint64, w), z: make([]uint64, w)}
}

// Size returns the number of records.
func (f *BitFrame) Size() int { return f.n }

func (f *BitFrame) check(q int) {
	if q < 0 || q >= f.n {
		panic(fmt.Sprintf("core: qubit %d outside bit frame of %d records", q, f.n))
	}
}

func (f *BitFrame) get(plane []uint64, q int) bool {
	return plane[q/64]&(1<<uint(q%64)) != 0
}

func (f *BitFrame) flip(plane []uint64, q int) {
	plane[q/64] ^= 1 << uint(q%64)
}

func (f *BitFrame) clear(q int) {
	f.x[q/64] &^= 1 << uint(q%64)
	f.z[q/64] &^= 1 << uint(q%64)
}

// Record reads the record of qubit q in the reference representation.
func (f *BitFrame) Record(q int) pauli.Record {
	f.check(q)
	return pauli.Record{X: f.get(f.x, q), Z: f.get(f.z, q)}
}

// Reset clears the record of qubit q (initialization).
func (f *BitFrame) Reset(q int) {
	f.check(q)
	f.clear(q)
}

// FlipsMeasurement implements thesis Table 3.2: the X plane bit.
func (f *BitFrame) FlipsMeasurement(q int) bool {
	f.check(q)
	return f.get(f.x, q)
}

// TrackPauli absorbs a Pauli gate: X toggles the X plane, Z the Z plane,
// Y both (Table 3.3 as two XOR gates).
func (f *BitFrame) TrackPauli(name gates.Name, q int) error {
	f.check(q)
	switch name {
	case gates.GateI:
	case gates.GateX:
		f.flip(f.x, q)
	case gates.GateY:
		f.flip(f.x, q)
		f.flip(f.z, q)
	case gates.GateZ:
		f.flip(f.z, q)
	default:
		return fmt.Errorf("core: %s is not a Pauli gate", name)
	}
	return nil
}

// MapClifford applies the Table 3.4/3.5 rules as plane operations:
//
//	H:    swap the X and Z bits
//	S/S†: Z ^= X
//	CNOT: X_t ^= X_c; Z_c ^= Z_t
//	CZ:   Z_t ^= X_c; Z_c ^= X_t
//	SWAP: exchange both planes' bits
func (f *BitFrame) MapClifford(name gates.Name, qubits []int) error {
	for _, q := range qubits {
		f.check(q)
	}
	switch name {
	case gates.GateH:
		q := qubits[0]
		xb, zb := f.get(f.x, q), f.get(f.z, q)
		if xb != zb {
			f.flip(f.x, q)
			f.flip(f.z, q)
		}
	case gates.GateS, gates.GateSdg:
		q := qubits[0]
		if f.get(f.x, q) {
			f.flip(f.z, q)
		}
	case gates.GateCNOT:
		c, t := qubits[0], qubits[1]
		if f.get(f.x, c) {
			f.flip(f.x, t)
		}
		if f.get(f.z, t) {
			f.flip(f.z, c)
		}
	case gates.GateCZ:
		a, b := qubits[0], qubits[1]
		if f.get(f.x, a) {
			f.flip(f.z, b)
		}
		if f.get(f.x, b) {
			f.flip(f.z, a)
		}
	case gates.GateSWAP:
		a, b := qubits[0], qubits[1]
		xa, za := f.get(f.x, a), f.get(f.z, a)
		xb, zb := f.get(f.x, b), f.get(f.z, b)
		if xa != xb {
			f.flip(f.x, a)
			f.flip(f.x, b)
		}
		if za != zb {
			f.flip(f.z, a)
			f.flip(f.z, b)
		}
	default:
		return fmt.Errorf("core: no Clifford mapping table for %s", name)
	}
	return nil
}

// TrackPauliMask absorbs Pauli gates on many qubits at once — the
// word-parallel path a hardware PFU would use for chain operators and
// whole-plane corrections: one XOR per 64 qubits.
func (f *BitFrame) TrackPauliMask(xMask, zMask []uint64) {
	for w := range f.x {
		if w < len(xMask) {
			f.x[w] ^= xMask[w]
		}
		if w < len(zMask) {
			f.z[w] ^= zMask[w]
		}
	}
}

// TransversalH maps every record through H simultaneously: the planes
// swap wholesale — a single wire crossing in hardware.
func (f *BitFrame) TransversalH() {
	f.x, f.z = f.z, f.x
}

// Snapshot copies the planes for test comparison.
func (f *BitFrame) Snapshot() (x, z []uint64) {
	return append([]uint64(nil), f.x...), append([]uint64(nil), f.z...)
}
