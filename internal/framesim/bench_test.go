package framesim

import (
	"testing"

	"repro/internal/layers"
)

func benchEngine(b *testing.B, per float64) *Engine {
	b.Helper()
	e, err := New(Config{Model: layers.Depolarizing(per), RefSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFrameSimPropagate measures the batch propagate kernel: one
// noisy ESM tape execution for 64 shots. This is the inner loop of every
// LER sweep; it must not allocate.
func BenchmarkFrameSimPropagate(b *testing.B) {
	e := benchEngine(b, 2e-3)
	st := e.newRunState(1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runTape(st, e.esm, e.refESM, true, st.r1)
		st.round++
	}
	if allocs := testing.AllocsPerRun(100, func() {
		e.runTape(st, e.esm, e.refESM, true, st.r1)
	}); allocs != 0 {
		b.Fatalf("propagate kernel allocates %.0f times per run", allocs)
	}
}

// BenchmarkFrameSimWindow measures one full QEC window for 64 shots:
// two noisy rounds, word-parallel decode, correction, diagnostics, probe.
func BenchmarkFrameSimWindow(b *testing.B) {
	e := benchEngine(b, 2e-3)
	b.ReportAllocs()
	b.ResetTimer()
	e.cfg.MaxWindows = 1
	var res [64]ShotResult
	st := e.newRunState(1, nil)
	for i := 0; i < b.N; i++ {
		e.runWindows(st, &res, 64, 0, nil)
	}
}
