package framesim

import (
	"testing"

	"repro/internal/layers"
)

func benchEngine(b *testing.B, per float64) *Engine {
	b.Helper()
	e, err := New(Config{Model: layers.Depolarizing(per), RefSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchSeeds returns w distinct word seeds for the wide benchmarks.
func benchSeeds(w int) []int64 {
	seeds := make([]int64, w)
	for k := range seeds {
		seeds[k] = int64(1 + k)
	}
	return seeds
}

// BenchmarkFrameSimPropagate measures the batch propagate kernel: one
// noisy ESM tape execution for 64 shots. This is the inner loop of every
// LER sweep; it must not allocate.
func BenchmarkFrameSimPropagate(b *testing.B) {
	e := benchEngine(b, 2e-3)
	st := e.newRunState(benchSeeds(1), nil)
	st.active[0] = ^uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runFused(st, e.esmFused, e.refESM, st.r1)
		st.round++
	}
	if allocs := testing.AllocsPerRun(100, func() {
		e.runFused(st, e.esmFused, e.refESM, st.r1)
	}); allocs != 0 {
		b.Fatalf("propagate kernel allocates %.0f times per run", allocs)
	}
}

// BenchmarkFrameSimWidePropagate sweeps the lane width of the propagate
// kernel: one noisy ESM tape execution for 64·W shots. ns/op divided by
// W is the per-word cost; the W=8/W=1 ratio is the tape-walk
// amortization the wide layout buys.
func BenchmarkFrameSimWidePropagate(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchWidthName(w), func(b *testing.B) {
			e := benchEngine(b, 2e-3)
			st := e.newRunState(benchSeeds(w), nil)
			for k := 0; k < w; k++ {
				st.active[k] = ^uint64(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.runFused(st, e.esmFused, e.refESM, st.r1)
				st.round++
			}
			if allocs := testing.AllocsPerRun(100, func() {
				e.runFused(st, e.esmFused, e.refESM, st.r1)
			}); allocs != 0 {
				b.Fatalf("wide propagate kernel allocates %.0f times per run", allocs)
			}
		})
	}
}

func benchWidthName(w int) string {
	return "lanes=" + string(rune('0'+w))
}

// BenchmarkFrameSimWindow measures one full QEC window for 64 shots:
// two noisy rounds, word-parallel decode, correction, diagnostics, probe.
func BenchmarkFrameSimWindow(b *testing.B) {
	e := benchEngine(b, 2e-3)
	b.ReportAllocs()
	b.ResetTimer()
	e.cfg.MaxWindows = 1
	res := make([]ShotResult, 64)
	st := e.newRunState(benchSeeds(1), nil)
	for i := 0; i < b.N; i++ {
		e.runWindows(st, res, 64, 0, nil)
	}
}

// BenchmarkFrameSimWideWindow sweeps the lane width of one full QEC
// window (64·W shots per call). The window loop must not allocate at
// any width.
func BenchmarkFrameSimWideWindow(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchWidthName(w), func(b *testing.B) {
			e := benchEngine(b, 2e-3)
			e.cfg.MaxWindows = 1
			res := make([]ShotResult, 64*w)
			st := e.newRunState(benchSeeds(w), nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.runWindows(st, res, 64*w, 0, nil)
			}
			if allocs := testing.AllocsPerRun(20, func() {
				e.runWindows(st, res, 64*w, 0, nil)
			}); allocs != 0 {
				b.Fatalf("wide window loop allocates %.0f times per run", allocs)
			}
		})
	}
}

// benchSteane compiles the Steane frame engine (dense or sparse) for the
// benchmark workload.
func benchSteane(b *testing.B, per float64, sparse bool) *SteaneEngine {
	b.Helper()
	cfg := Config{Model: layers.Depolarizing(per), MaxLogicalErrors: 10, RefSeed: 42}
	var (
		e   *SteaneEngine
		err error
	)
	if sparse {
		e, err = NewSteaneSparse(cfg)
	} else {
		e, err = NewSteane(cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkSteaneFrameWindow sweeps the lane width of one Steane QEC
// window (one noisy ESM round, word-parallel Hamming decode, correction,
// diagnostics, probe for 64·W shots). The window loop must not allocate
// at any width.
func BenchmarkSteaneFrameWindow(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchWidthName(w), func(b *testing.B) {
			e := benchSteane(b, 2e-3, false)
			e.cfg.MaxWindows = 1
			res := make([]ShotResult, 64*w)
			st := newRunState(&e.tapeExec, e.esm.NumMeas(), e.probe.NumMeas(), benchSeeds(w), nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.runWindows(st, res, 64*w, 0, nil)
			}
			if allocs := testing.AllocsPerRun(20, func() {
				e.runWindows(st, res, 64*w, 0, nil)
			}); allocs != 0 {
				b.Fatalf("steane window loop allocates %.0f times per run", allocs)
			}
		})
	}
}

// BenchmarkSteaneFrameBatch runs the Steane LER-point workload (PER
// 5e-3, 10 logical errors per shot) through one W-wide dense batch;
// shots/s across the width sweep is recorded in BENCH_framesim.json.
func BenchmarkSteaneFrameBatch(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchWidthName(w), func(b *testing.B) {
			e := benchSteane(b, 5e-3, false)
			seeds := benchSeeds(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunBatchWide(seeds, 64*w); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*64*w)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkSteaneFrameSparseBatch is BenchmarkSteaneFrameBatch on the
// window-skipping engine at a below-threshold rate, where whole-batch
// gap skipping dominates.
func BenchmarkSteaneFrameSparseBatch(b *testing.B) {
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse"
		}
		b.Run(name, func(b *testing.B) {
			e := benchSteane(b, 3e-4, sparse)
			seeds := benchSeeds(4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunBatchWide(seeds, 256); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*256)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}

// BenchmarkFrameSimWideBatch runs the full LER-point workload (the
// BenchmarkFrameSimLERPoint sample protocol: PER 5e-3, 10 logical errors
// per shot) through one W-wide batch of 64·W shots. Shots per second
// across the width sweep is the 64→512 scaling curve recorded in
// BENCH_framesim.json.
func BenchmarkFrameSimWideBatch(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchWidthName(w), func(b *testing.B) {
			e, err := New(Config{
				Model:            layers.Depolarizing(5e-3),
				MaxLogicalErrors: 10,
				RefSeed:          42,
			})
			if err != nil {
				b.Fatal(err)
			}
			seeds := benchSeeds(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunBatchWide(seeds, 64*w); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*64*w)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}
