// Package framesim implements the bit-sliced Pauli-frame Monte-Carlo
// engine for the LER windows protocol (thesis Listing 5.7).
//
// The QPDO stack (ninja star → counters → [pauli frame] → error layer →
// CHP tableau) simulates one noisy trajectory at a time; every shot pays
// the full tableau cost. This engine exploits that the protocol is a
// Clifford circuit with Pauli noise: a noisy shot equals the noiseless
// reference run plus a Pauli error frame conjugated through the circuit.
// The reference is computed once on the CHP tableau; after that each shot
// is just an X/Z frame bit-pair per qubit, and 64 shots pack into one
// uint64 word per plane — the conjugation rules of thesis Tables 3.2–3.5
// become word ops (exactly core.BitFrame, sliced across shots instead of
// qubits). A batch may carry W ∈ {1..8} such words per plane (64·W shots
// per propagate pass); every 64-shot word is an independent run with its
// own seed, RNG and channel samplers, so lane word k of a W-wide run is
// bit-identical to a width-1 run from the same seed, and wide batches
// shard across cores word-by-word without any cross-word coupling.
//
// Exactness rests on the protocol's structure: after the noiseless
// initialization the state is the unique all-(+1)-stabilizer logical
// state, so every window-phase measurement (ESM ancillas, diagnostics,
// probe) is deterministic on the reference, and a shot's outcome is the
// reference value XOR the frame's X bit. Reset gauge randomization (a
// fresh random Z frame bit after Prep/Measure) would keep the frame
// distribution faithful for arbitrary circuits; for this protocol the
// randomized component is always a Z on a fresh eigenstate — a
// stabilizer of the evolving reference — and provably never flips a
// measured value, so the engine omits it (the sparse engine pioneered
// the omission; it is what keeps clean frames zero there). The syndrome
// stream is therefore a bit-exact function of the injected error
// pattern — the property the differential test checks against the QPDO
// stack.
//
// The decoder windows run word-parallel too: syndrome bit-planes per
// hardware ancilla group, the three-round agreement/intersection rules as
// boolean word ops, and a scalar LUT lookup only for the (rare) shots
// whose decoded syndrome is nonzero. The noiseless diagnostic round and
// probe are not even executed as tapes: at compile time the engine
// derives each noiseless outcome as an F₂ linear functional of the
// current frame planes (and symbolically verifies the substitution is
// sound — see buildShortcut), so a window's clean-check and probe cost a
// handful of XORs per lane word instead of two full tape walks.
package framesim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/chp"
	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// MaxLanes is the widest supported batch: 8 words = 512 shots per
// propagate pass. Wider batches stop paying for themselves — the
// per-shot RNG and decode work is already width-independent, and the
// amortizable tape-walk overhead is down to 1/8th.
const MaxLanes = 8

// Observable selects the monitored logical error, mirroring the
// experiment harness: logical X errors are detected on |0⟩_L with the
// Z_L probe, logical Z errors on |+⟩_L with the X_L probe.
type Observable int

// Observables.
const (
	ObserveX Observable = iota
	ObserveZ
)

// Config parameterizes a frame engine.
type Config struct {
	// Observable selects the monitored logical error.
	Observable Observable
	// WithPauliFrame models the Pauli-frame stack variant: corrections
	// are absorbed (no physical correction slot, hence no correction-slot
	// error opportunities and no executed correction ops).
	WithPauliFrame bool
	// MaxLogicalErrors terminates a shot (default 50, like the thesis).
	MaxLogicalErrors int
	// MaxWindows caps every shot's run length (default 2,000,000).
	MaxWindows int
	// InitRounds is the number of ESM rounds during noiseless
	// initialization (default 3).
	InitRounds int
	// DecoderRule selects the windowed decoding rule.
	DecoderRule decoder.Rule
	// Model is the Pauli error channel.
	Model layers.Model
	// RefSeed seeds the reference tableau run. Every protocol measurement
	// is required to be deterministic (New errors out otherwise), so the
	// results do not depend on this value.
	RefSeed int64
	// DenseThreshold is the dirty-qubit population at which the sparse
	// engine (NewSparse) abandons event-driven propagation for the rest
	// of the current tape and drains it with the dense word kernels
	// (default 8). The dense engine ignores it.
	DenseThreshold int
}

func (c Config) withDefaults() Config {
	if c.MaxLogicalErrors <= 0 {
		c.MaxLogicalErrors = 50
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 2_000_000
	}
	if c.InitRounds <= 0 {
		c.InitRounds = 3
	}
	return c
}

// ShotResult reports one Monte-Carlo shot, with the same accounting
// semantics as the stack harness's LERResult.
type ShotResult struct {
	// Windows and LogicalErrors are R and m of thesis Eq. 5.1.
	Windows       int
	LogicalErrors int
	// CorrectionGates / CorrectionSlots count what the decoder issued.
	CorrectionGates int
	CorrectionSlots int
	// OpsIssued / SlotsIssued count the stream entering the Pauli-frame
	// position; OpsExecuted / SlotsExecuted what would leave it.
	OpsIssued     int
	SlotsIssued   int
	OpsExecuted   int
	SlotsExecuted int
	// InjectedErrors counts error events applied while the shot was live.
	InjectedErrors int
}

// WindowTrace records what one QEC window did for shot lane 0; the
// differential test compares traces against the manually driven stack.
type WindowTrace struct {
	// R1A..R2B are the raw syndromes of the two ESM rounds per hardware
	// ancilla group.
	R1A, R1B, R2A, R2B decoder.Syndrome
	// CorrA / CorrB are the decoded correction masks (bit d = data qubit
	// d) per group.
	CorrA, CorrB uint16
	// DiagA / DiagB are the noiseless diagnostic round syndromes.
	DiagA, DiagB decoder.Syndrome
	// Clean reports whether the diagnostic round was all-zero (the shot
	// was probed).
	Clean bool
	// Probe is the probe outcome, or -1 when the shot was not probed.
	Probe int
}

// Engine is an immutable compiled instance of the windows protocol for
// one configuration: instruction tapes, reference outcomes, decoder
// tables and channel constants. RunBatch carries all mutable state in a
// private runState, so one Engine may serve many goroutines concurrently.
type Engine struct {
	cfg Config
	tapeExec

	esm, probe       *Tape
	esmFused         *fusedProg
	refESM, refProbe []uint64

	// groupOfSite/bitOfSite map ESM measurement sites to hardware ancilla
	// groups (0 = A, ancillas 9..12; 1 = B) and syndrome bits.
	groupOfSite, bitOfSite []uint8

	lutA, lutB *decoder.LUT
	// gateAIsZ: group-A syndromes decode to Z corrections (normal
	// orientation); swapped after the logical Hadamard of ObserveZ.
	gateAIsZ     bool
	intersection bool

	// esmOps/esmSlots are the per-round circuit sizes for the ops
	// accounting (48 and 8 for a full SC17 round).
	esmOps, esmSlots int

	// Noiseless-round shortcut (newShortcut).
	sc shortcut
}

// tapeExec is the executor core shared by the protocol front-ends (the
// SC17 Engine and the Steane engine): the physical qubit count plus the
// cached channel constants every tape walk and hit sampler needs. It
// carries no mutable run state — that lives in runState — so front-ends
// embedding it stay safe for concurrent runs.
type tapeExec struct {
	n int
	chanParams
}

// chanParams caches one error model's channel constants; the tape
// executor shares them between the SC17 and Steane front-ends. uX/uXY
// are the conditional Pauli-kind thresholds (PX/P, (PX+PY)/P) scaled to
// the full uint64 range, so a hit's kind is one integer compare against
// a raw RNG word instead of a float multiply chain.
type chanParams struct {
	p, px, pxy, pMeas float64
	uX, uXY           uint64
	corrPair          bool
}

func newChanParams(m layers.Model) chanParams {
	c := chanParams{
		p:        m.TotalSingle(),
		px:       m.PX,
		pxy:      m.PX + m.PY,
		pMeas:    m.PMeas,
		corrPair: m.CorrelatedTwoQubit,
	}
	if c.p > 0 {
		c.uX = uFrac(c.px / c.p)
		c.uXY = uFrac(c.pxy / c.p)
	}
	return c
}

// uFrac maps a fraction in [0, 1] to the uint64 threshold with
// P(Uint64() < uFrac(f)) = f up to 2⁻⁶⁴ quantization.
func uFrac(f float64) uint64 {
	if f >= 1 {
		return ^uint64(0)
	}
	if f <= 0 {
		return 0
	}
	return uint64(f * 18446744073709551616.0) // f·2⁶⁴, exact to float64 precision
}

// New compiles the windows protocol for one configuration: it builds a
// noiseless reference stack (ninja star over a CHP tableau), initializes
// the logical qubit exactly like the harness, compiles the ESM and probe
// circuits to tapes, and fixes the reference outcomes by running each
// tape on the tableau — twice, verifying the reference is deterministic
// and stationary (it must be: the post-init state carries all +1
// stabilizers), so frame propagation against fixed reference words is
// exact.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	chpCore := layers.NewChpCore(rand.New(rand.NewSource(cfg.RefSeed)))
	star := surface.NewNinjaStarLayer(chpCore, surface.Config{
		Ancilla:     surface.AncillaDedicated,
		InitRounds:  cfg.InitRounds,
		DecoderRule: cfg.DecoderRule,
	})
	if err := star.CreateQubits(1); err != nil {
		return nil, err
	}
	init := circuit.New().Add(gates.Prep, 0)
	if cfg.Observable == ObserveZ {
		init.Add(gates.H, 0)
	}
	if _, err := qpdo.Run(star, init); err != nil {
		return nil, err
	}

	st := star.Star(0)
	n := chpCore.NumQubits()
	// The tapes address physical qubits; correction masks address
	// relative data indices. With one star on a fresh core they coincide.
	for d := 0; d < surface.NumData; d++ {
		if st.Data[d] != d {
			return nil, fmt.Errorf("framesim: data qubit %d placed at %d; expected identity layout", d, st.Data[d])
		}
	}

	esmC := st.ESMCircuit()
	probeC := st.ProbeZLCircuit()
	if cfg.Observable == ObserveZ {
		probeC = st.ProbeXLCircuit()
	}
	esm, err := Compile(esmC, n)
	if err != nil {
		return nil, err
	}
	probe, err := Compile(probeC, n)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:          cfg,
		tapeExec:     tapeExec{n: n, chanParams: newChanParams(cfg.Model)},
		esm:          esm,
		probe:        probe,
		lutA:         decoder.BuildLUT(surface.XSupports(surface.RotNormal), surface.NumData),
		lutB:         decoder.BuildLUT(surface.ZSupports(surface.RotNormal), surface.NumData),
		gateAIsZ:     st.Rotation == surface.RotNormal,
		intersection: cfg.DecoderRule == decoder.RuleIntersection,
		esmOps:       esmC.NumOps(),
		esmSlots:     esmC.NumSlots(),
	}

	e.groupOfSite = make([]uint8, esm.NumMeas())
	e.bitOfSite = make([]uint8, esm.NumMeas())
	var seen [2][4]bool
	for i := 0; i < esm.NumMeas(); i++ {
		q := esm.MeasQubit(i)
		rel := -1
		for a, phys := range st.Anc {
			if phys == q {
				rel = a
				break
			}
		}
		if rel < 0 {
			return nil, fmt.Errorf("framesim: ESM measures qubit %d, which is no ancilla", q)
		}
		g, b := uint8(rel/4), uint8(rel%4)
		if seen[g][b] {
			return nil, fmt.Errorf("framesim: ancilla %d measured twice per round", q)
		}
		seen[g][b] = true
		e.groupOfSite[i], e.bitOfSite[i] = g, b
	}
	for g := range seen {
		for b, ok := range seen[g] {
			if !ok {
				return nil, fmt.Errorf("framesim: ESM round misses group %d bit %d", g, b)
			}
		}
	}

	tab := chpCore.Tableau()
	if e.refESM, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	again, err := refRun(tab, esm)
	if err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: ESM reference outcomes are not stationary")
	}
	if e.refProbe, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if again, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if !equalWords(e.refProbe, again) {
		return nil, fmt.Errorf("framesim: probe reference outcome is not stationary")
	}
	// The probe must be QND with respect to the ESM reference.
	if again, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: probe disturbs the ESM reference outcomes")
	}
	e.sc = newShortcut(esm, probe, n, e.refProbe)
	e.esmFused = fuseTape(esm, e.corrPair)
	return e, nil
}

// fusedProg is a tape specialized for the sampled hot path: within each
// time slot the error sites are regrouped into one run per channel
// (pre-measurement X flips, single-qubit channel, correlated pairs), so
// the geometric gap samplers advance over a whole run's trial words with
// one comparison instead of one per site. The regrouping is exact
// because a slot's operations act on disjoint qubits (Compile validates
// this): hoisting a site across another operation's gate commutes, which
// is the same argument Compile already uses to interleave sites with
// gates. Under the uncorrelated two-qubit model, pair sites expand into
// two single-channel sites in operand order, exactly like the per-site
// executor. Scripted runs keep the original tape — site identity, not
// throughput, matters there.
type fusedProg struct {
	ops          []tapeOp
	singleQ      []int32
	measQ        []int32
	pairA, pairB []int32
}

// fuseTape builds the fused program for one tape (see fusedProg).
func fuseTape(t *Tape, corrPair bool) *fusedProg {
	fp := &fusedProg{}
	i := 0
	for i < len(t.ops) {
		slot := t.ops[i].slot
		j := i
		for j < len(t.ops) && t.ops[j].slot == slot {
			j++
		}
		measStart := int32(len(fp.measQ))
		singleStart := int32(len(fp.singleQ))
		pairStart := int32(len(fp.pairA))
		var gateOps []tapeOp
		for _, op := range t.ops[i:j] {
			switch op.code {
			case opErrMeas:
				fp.measQ = append(fp.measQ, op.a)
			case opErrSingle:
				fp.singleQ = append(fp.singleQ, op.a)
			case opErrPair:
				if corrPair {
					fp.pairA = append(fp.pairA, op.a)
					fp.pairB = append(fp.pairB, op.b)
				} else {
					fp.singleQ = append(fp.singleQ, op.a, op.b)
				}
			default:
				gateOps = append(gateOps, op)
			}
		}
		// Pre-measurement flips precede the slot, channel sites follow it.
		if n := int32(len(fp.measQ)) - measStart; n > 0 {
			fp.ops = append(fp.ops, tapeOp{code: opRunMeas, slot: slot, a: measStart, b: n})
		}
		fp.ops = append(fp.ops, gateOps...)
		if n := int32(len(fp.singleQ)) - singleStart; n > 0 {
			fp.ops = append(fp.ops, tapeOp{code: opRunSingle, slot: slot, a: singleStart, b: n})
		}
		if n := int32(len(fp.pairA)) - pairStart; n > 0 {
			fp.ops = append(fp.ops, tapeOp{code: opRunPair, slot: slot, a: pairStart, b: n})
		}
		i = j
	}
	return fp
}

// symbolicPass runs one tape noiselessly on a width-1 batch whose lane j
// carries the j-th F₂ basis vector of one plane family (fx when zBasis
// is false, fz when true). Because noiseless frame propagation is linear
// over F₂, the returned outcome words are the dependence masks of each
// measurement site on the pre-tape planes, and the final planes are the
// rows of the tape's linear map (postX[q] = which basis lanes feed
// fx'[q], postZ[q] likewise for fz'[q]). Error sites are skipped — they
// inject nothing in a noiseless run.
func symbolicPass(t *Tape, n int, zBasis bool) (out, postX, postZ []uint64) {
	b := NewBatch(n)
	for q := 0; q < n; q++ {
		if zBasis {
			b.fz[q] = uint64(1) << uint(q)
		} else {
			b.fx[q] = uint64(1) << uint(q)
		}
	}
	out = make([]uint64, t.NumMeas())
	for i := range t.ops {
		op := &t.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			b.H(a)
		case opS, opSdg:
			b.S(a)
		case opCNOT:
			b.CNOT(a, int(op.b))
		case opCZ:
			b.CZ(a, int(op.b))
		case opSWAP:
			b.SWAP(a, int(op.b))
		case opPrep:
			b.fx[a], b.fz[a] = 0, 0
		case opMeas:
			out[op.b] = b.fx[a]
		}
	}
	return out, b.fx, b.fz
}

// shortcut holds the noiseless-round linear functionals derived by
// newShortcut: when ok, the diagnostic round's outcome at site i is the
// ESM reference at i XOR the fx planes in diagX[i] XOR the fz planes in
// diagZ[i] (masks index qubits), and the probe outcome is probeRef XOR
// the probeX/probeZ planes — no tape execution needed.
type shortcut struct {
	ok           bool
	diagX, diagZ []uint64
	probeX       uint64
	probeZ       uint64
	probeRef     uint64
}

// newShortcut derives the diagnostic/probe linear functionals and
// verifies, symbolically, that substituting them for the two noiseless
// tape executions of each window is exact. Skipping the tapes leaves the
// planes of every tape-modified qubit stale (the true run would re-prep
// and re-evolve them), so the substitution is sound iff nothing
// downstream ever reads a stale plane. Let S be the set of qubits whose
// plane rows are not the identity under either noiseless tape (for the
// ESM/probe circuits these are exactly the ancillas — prep wipes them,
// data rows commute through). The checks:
//
//   - no diagnostic outcome mask and no probe outcome mask may read a
//     qubit in S (those outcomes must be functions of data planes only,
//     which stay exact), and
//   - every qubit outside S has an identity row (true by construction of
//     S), so the *real* noisy tape runs, corrections and injected errors
//     keep non-S planes exact: deviations supported on S propagate only
//     within S and never reach an outcome.
//
// Corrections and error injections are XORs, which preserve the
// "stale difference is supported on S" invariant. If any check fails
// (or n > 64, the mask width) the returned shortcut is not ok and the
// engine falls back to executing the noiseless tapes.
func newShortcut(esm, probe *Tape, n int, refProbe []uint64) shortcut {
	if n > 64 {
		return shortcut{}
	}
	outEX, postEXX, postEZX := symbolicPass(esm, n, false)
	outEZ, postEXZ, postEZZ := symbolicPass(esm, n, true)
	outPX, postPXX, postPZX := symbolicPass(probe, n, false)
	outPZ, postPXZ, postPZZ := symbolicPass(probe, n, true)
	var stale uint64
	for q := 0; q < n; q++ {
		id := uint64(1) << uint(q)
		if postEXX[q] != id || postEZZ[q] != id || postEZX[q] != 0 || postEXZ[q] != 0 {
			stale |= id
		}
		if postPXX[q] != id || postPZZ[q] != id || postPZX[q] != 0 || postPXZ[q] != 0 {
			stale |= id
		}
	}
	for i := range outEX {
		if (outEX[i]|outEZ[i])&stale != 0 {
			return shortcut{}
		}
	}
	last := probe.NumMeas() - 1
	if (outPX[last]|outPZ[last])&stale != 0 {
		return shortcut{}
	}
	return shortcut{
		ok:       true,
		diagX:    outEX,
		diagZ:    outEZ,
		probeX:   outPX[last],
		probeZ:   outPZ[last],
		probeRef: refProbe[last],
	}
}

// ESMSites lists the error-injection sites of one ESM round (Round 0 in
// every returned Site); scripted callers offset Round per execution. Each
// noisy window consumes two rounds, so a W-window scripted run draws
// rounds 0..2W-1.
func (e *Engine) ESMSites() []Site { return e.esm.Sites() }

// refRun executes a tape on the reference tableau and returns the
// broadcast outcome word per measurement site (0 or all-ones). Any
// non-deterministic measurement is an error: the frame engine's exactness
// argument requires fixed reference outcomes.
func refRun(tab *chp.Tableau, t *Tape) ([]uint64, error) {
	out := make([]uint64, t.NumMeas())
	for i := range t.ops {
		op := &t.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			tab.H(a)
		case opS:
			tab.S(a)
		case opSdg:
			tab.Sdg(a)
		case opCNOT:
			tab.CNOT(a, int(op.b))
		case opCZ:
			tab.CZ(a, int(op.b))
		case opSWAP:
			tab.SWAP(a, int(op.b))
		case opX:
			tab.X(a)
		case opY:
			tab.Y(a)
		case opZ:
			tab.Z(a)
		case opPrep:
			tab.Reset(a)
		case opMeas:
			v, det := tab.Measure(a)
			if !det {
				return nil, fmt.Errorf("framesim: reference measurement of qubit %d is random; the frame engine needs a stabilized protocol state", a)
			}
			if v == 1 {
				out[op.b] = ^uint64(0)
			}
		}
	}
	return out, nil
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// laneRun is the independent sampling state of one 64-shot word: its own
// RNG and channel samplers. Word independence is what makes lane
// extraction exact (word k of a W-wide run replays a width-1 run from
// the same seed bit-for-bit) and wide worker sharding trivially
// deterministic.
type laneRun struct {
	rng                *rand.Rand
	single, meas, pair sampler
}

// runState is the mutable per-run state: frame planes, per-word RNGs and
// channel samplers, and scratch buffers. All scratch is allocated once
// per run; the window loop itself is allocation-free. Outcome scratch
// (r1/r2/diag/probeOut) is strided like the batch planes: site i, word k
// at index i·w+k. active and expected hold one mask word per lane word;
// inj counts injected errors per global shot lane (64·w entries).
type runState struct {
	b *Batch
	w int

	lanes []laneRun

	r1, r2, diag, probeOut []uint64
	carryA, carryB         [][4]uint64
	expected               []uint64

	script Script
	round  int
	active []uint64
	inj    []int
}

func (e *Engine) newRunState(seeds []int64, script Script) *runState {
	return newRunState(&e.tapeExec, e.esm.NumMeas(), e.probe.NumMeas(), seeds, script)
}

// newRunState allocates the mutable state of one run: a W-wide batch on
// x.n qubits, one laneRun per word (RNG first, then — in sampled mode —
// the single/meas/pair samplers in that fixed draw order), and outcome
// scratch sized for esmMeas/probeMeas measurement sites per round.
func newRunState(x *tapeExec, esmMeas, probeMeas int, seeds []int64, script Script) *runState {
	w := len(seeds)
	st := &runState{
		b:        NewBatchWide(x.n, w),
		w:        w,
		lanes:    make([]laneRun, w),
		script:   script,
		r1:       make([]uint64, esmMeas*w),
		r2:       make([]uint64, esmMeas*w),
		diag:     make([]uint64, esmMeas*w),
		probeOut: make([]uint64, probeMeas*w),
		carryA:   make([][4]uint64, w),
		carryB:   make([][4]uint64, w),
		expected: make([]uint64, w),
		active:   make([]uint64, w),
		inj:      make([]int, 64*w),
	}
	for k, seed := range seeds {
		l := &st.lanes[k]
		l.rng = rand.New(rand.NewSource(seed))
		if script == nil {
			l.single = newSampler(x.p, l.rng)
			l.meas = newSampler(x.pMeas, l.rng)
			if x.corrPair {
				l.pair = newSampler(x.p, l.rng)
			}
		}
	}
	return st
}

// checkWide validates a wide batch request: 1..MaxLanes seed words, and
// a shot count that fills every word (the last one possibly partially).
func checkWide(seeds []int64, shots int) error {
	w := len(seeds)
	if w < 1 || w > MaxLanes {
		return fmt.Errorf("framesim: %d lane words outside 1..%d", w, MaxLanes)
	}
	if shots < 1 || shots > 64*w {
		return fmt.Errorf("framesim: batch width %d outside 1..%d", shots, 64*w)
	}
	if shots <= 64*(w-1) {
		return fmt.Errorf("framesim: %d shots leave lane word %d empty (pass %d words)", shots, w-1, (shots+63)/64)
	}
	return nil
}

// RunBatch runs up to 64 Monte-Carlo shots in one word, all seeded from
// one RNG derived from seed. Shot j terminates when it accumulates
// MaxLogicalErrors or reaches MaxWindows; terminated lanes keep
// propagating (their planes are dead weight in the words) but stop
// accumulating statistics. Safe for concurrent use on one Engine.
func (e *Engine) RunBatch(seed int64, shots int) ([]ShotResult, error) {
	var seeds [1]int64
	seeds[0] = seed
	return e.RunBatchWide(seeds[:], shots)
}

// RunBatchWide runs up to 64·len(seeds) Monte-Carlo shots in one W-wide
// batch; word k carries shots 64k..64k+63 and is an independent run
// seeded by seeds[k], so the result slice is bit-identical to
// concatenating len(seeds) width-1 RunBatch calls — one wide pass just
// amortizes the tape walk over all words. shots must fill every word
// (the last may be partial). Safe for concurrent use on one Engine.
func (e *Engine) RunBatchWide(seeds []int64, shots int) ([]ShotResult, error) {
	if err := checkWide(seeds, shots); err != nil {
		return nil, err
	}
	st := e.newRunState(seeds, nil)
	res := make([]ShotResult, 64*len(seeds))
	e.runWindows(st, res, shots, 0, nil)
	return res[:shots], nil
}

// RunBatchWideWorkers is RunBatchWide with the lane words sharded across
// up to `workers` goroutines in fixed contiguous blocks. Because every
// word is an independent run, the folded result is bit-identical for any
// worker count — including RunBatchWide itself (workers = 1).
func (e *Engine) RunBatchWideWorkers(seeds []int64, shots, workers int) ([]ShotResult, error) {
	if err := checkWide(seeds, shots); err != nil {
		return nil, err
	}
	w := len(seeds)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > w {
		workers = w
	}
	if workers == 1 {
		return e.RunBatchWide(seeds, shots)
	}
	res := make([]ShotResult, shots)
	block := (w + workers - 1) / workers
	var wg sync.WaitGroup
	for c0 := 0; c0 < w; c0 += block {
		c1 := c0 + block
		if c1 > w {
			c1 = w
		}
		chunkShots := shots - c0*64
		if chunkShots > (c1-c0)*64 {
			chunkShots = (c1 - c0) * 64
		}
		wg.Add(1)
		go func(c0, c1, chunkShots int) {
			defer wg.Done()
			st := e.newRunState(seeds[c0:c1], nil)
			sub := make([]ShotResult, 64*(c1-c0))
			e.runWindows(st, sub, chunkShots, 0, nil)
			copy(res[c0*64:c0*64+chunkShots], sub[:chunkShots])
		}(c0, c1, chunkShots)
	}
	wg.Wait()
	return res, nil
}

// RunScripted runs exactly `windows` QEC windows of a single shot with
// the Script's errors injected instead of sampled noise, recording a
// WindowTrace per window. Caps
// are ignored; the shot never terminates early. The differential test
// feeds the same Script to an InjectLayer-instrumented QPDO stack and
// requires bit-identical traces.
func (e *Engine) RunScripted(windows int, script Script) ([]WindowTrace, ShotResult, error) {
	if windows < 0 {
		return nil, ShotResult{}, fmt.Errorf("framesim: negative window count %d", windows)
	}
	if script == nil {
		script = Script{}
	}
	var seeds [1]int64
	st := e.newRunState(seeds[:], script)
	res := make([]ShotResult, 64)
	traces := make([]WindowTrace, 0, windows)
	e.runWindows(st, res, 1, windows, &traces)
	return traces, res[0], nil
}

// runWindows drives the window loop. In sampled mode (st.script == nil)
// it runs until every lane of the first `shots` terminates; in scripted
// mode it runs exactly scriptWindows windows on lane 0. res must hold
// 64·w entries; shot 64k+j of lane word k lands in res[64k+j].
//
// A lane word whose 64 shots have all terminated goes *dead*: its noise
// sampling, gauge draws, decode and probe bookkeeping are skipped for
// the remaining windows (only the shared gate kernels still touch its
// plane words, writing values nothing reads). Word independence makes
// the skip exact — a dead word's statistics are already final, and no
// live word ever observes its RNG stream.
func (e *Engine) runWindows(st *runState, res []ShotResult, shots, scriptWindows int, traces *[]WindowTrace) {
	W := st.w
	for k := 0; k < W; k++ {
		lanes := shots - 64*k
		if lanes >= 64 {
			st.active[k] = ^uint64(0)
		} else if lanes > 0 {
			st.active[k] = uint64(1)<<uint(lanes) - 1
		}
	}
	var corrMask [64]uint16
	var tr WindowTrace
	w := 0
	for {
		if st.script == nil {
			live := uint64(0)
			for k := 0; k < W; k++ {
				live |= st.active[k]
			}
			if live == 0 || w >= e.cfg.MaxWindows {
				break
			}
		} else if w >= scriptWindows {
			break
		}
		w++

		// Two noisy ESM rounds: the fused program in sampled mode, the
		// site-exact tape for scripted injection.
		if st.script == nil {
			e.runFused(st, e.esmFused, e.refESM, st.r1)
			st.round++
			e.runFused(st, e.esmFused, e.refESM, st.r2)
			st.round++
		} else {
			e.runTape(st, e.esm, e.refESM, true, st.r1)
			st.round++
			e.runTape(st, e.esm, e.refESM, true, st.r2)
			st.round++
		}

		// Word-parallel windowed decode per lane word and hardware group,
		// then scalar LUT lookups only for lanes with a nonzero decoded
		// syndrome.
		for k := 0; k < W; k++ {
			if st.script == nil && st.active[k] == 0 {
				continue
			}
			var a1, b1, a2, b2, decA, decB [4]uint64
			gather(e, st.r1, k, W, &a1, &b1)
			gather(e, st.r2, k, W, &a2, &b2)
			nzA := e.decodeGroup(&a1, &a2, &st.carryA[k], &decA)
			nzB := e.decodeGroup(&b1, &b2, &st.carryB[k], &decB)
			var trA, trB uint16
			for m := nzA; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				cm := uint16(e.lutA.CorrectionMask(synAt(&decA, j)))
				corrMask[j] |= cm
				if j == 0 {
					trA = cm
				}
				applyCorr(st.b, cm, k, uint64(1)<<uint(j), e.gateAIsZ)
			}
			for m := nzB; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				cm := uint16(e.lutB.CorrectionMask(synAt(&decB, j)))
				corrMask[j] |= cm
				if j == 0 {
					trB = cm
				}
				applyCorr(st.b, cm, k, uint64(1)<<uint(j), !e.gateAIsZ)
			}
			var hasCorr uint64
			for m := nzA | nzB; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				if cm := corrMask[j]; cm != 0 {
					hasCorr |= uint64(1) << uint(j)
					if st.active[k]>>uint(j)&1 == 1 {
						res[k*64+j].CorrectionGates += bits.OnesCount16(cm)
						res[k*64+j].CorrectionSlots++
					}
					corrMask[j] = 0
				}
			}
			// Without a Pauli frame the correction slot executes physically
			// and is itself noisy: one single-qubit channel site per qubit
			// (correction operands and idles alike), applied only to the
			// lanes that issued a correction. With a frame, the slot is
			// absorbed and injects nothing. Scripted runs inject nothing
			// here either — the QPDO-side InjectLayer skips 1-slot circuits.
			if hasCorr != 0 && st.script == nil && !e.cfg.WithPauliFrame {
				e.sampleCorrectionSlot(st, k, hasCorr)
			}
			if k == 0 && traces != nil {
				tr = WindowTrace{
					R1A: synAt(&a1, 0), R1B: synAt(&b1, 0),
					R2A: synAt(&a2, 0), R2B: synAt(&b2, 0),
					CorrA: trA, CorrB: trB,
					Probe: -1,
				}
			}
		}

		// Noiseless diagnostic round; only all-clean lanes are probed.
		// With the compile-time shortcut the outcomes are evaluated as
		// linear functionals of the frame planes; the fallback executes
		// the tapes.
		nm := e.esm.NumMeas()
		probeBase := (e.probe.NumMeas() - 1) * W
		if !e.sc.ok {
			e.runTape(st, e.esm, e.refESM, false, st.diag)
			e.runTape(st, e.probe, e.refProbe, false, st.probeOut)
		}
		for k := 0; k < W; k++ {
			if st.script == nil && st.active[k] == 0 {
				continue
			}
			clean := ^uint64(0)
			var out uint64
			if e.sc.ok {
				for i := 0; i < nm; i++ {
					v := e.refESM[i]
					for m := e.sc.diagX[i]; m != 0; m &= m - 1 {
						v ^= st.b.fx[bits.TrailingZeros64(m)*W+k]
					}
					for m := e.sc.diagZ[i]; m != 0; m &= m - 1 {
						v ^= st.b.fz[bits.TrailingZeros64(m)*W+k]
					}
					st.diag[i*W+k] = v
					clean &^= v
				}
				out = e.sc.probeRef
				for m := e.sc.probeX; m != 0; m &= m - 1 {
					out ^= st.b.fx[bits.TrailingZeros64(m)*W+k]
				}
				for m := e.sc.probeZ; m != 0; m &= m - 1 {
					out ^= st.b.fz[bits.TrailingZeros64(m)*W+k]
				}
			} else {
				for i := 0; i < nm; i++ {
					clean &^= st.diag[i*W+k]
				}
				out = st.probeOut[probeBase+k]
			}
			flips := (out ^ st.expected[k]) & clean
			st.expected[k] ^= flips
			for m := flips & st.active[k]; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				r := &res[k*64+j]
				r.LogicalErrors++
				if st.script == nil && r.LogicalErrors >= e.cfg.MaxLogicalErrors {
					st.active[k] &^= uint64(1) << uint(j)
					r.Windows = w
				}
			}
			if k == 0 && traces != nil {
				var da, db [4]uint64
				gather(e, st.diag, 0, W, &da, &db)
				tr.DiagA, tr.DiagB = synAt(&da, 0), synAt(&db, 0)
				tr.Clean = clean&1 == 1
				if tr.Clean {
					tr.Probe = int(out & 1)
				}
			}
		}
		if traces != nil {
			*traces = append(*traces, tr)
		}
	}
	for idx := 0; idx < shots; idx++ {
		k, j := idx/64, idx%64
		r := &res[idx]
		if st.active[k]>>uint(j)&1 == 1 {
			r.Windows = w
		}
		r.InjectedErrors = st.inj[idx]
		r.OpsIssued = r.Windows*2*e.esmOps + r.CorrectionGates
		r.SlotsIssued = r.Windows*2*e.esmSlots + r.CorrectionSlots
		r.OpsExecuted = r.OpsIssued
		r.SlotsExecuted = r.SlotsIssued
		if e.cfg.WithPauliFrame {
			r.OpsExecuted -= r.CorrectionGates
			r.SlotsExecuted -= r.CorrectionSlots
		}
	}
}

// runTape propagates all lane words' frames through one tape. inject
// enables the error sites for scripted injection; with inject false (or
// no script) the sites are inert and the tape runs noiselessly (the
// diagnostic/probe fallback semantics). Sampled noise never goes through
// runTape — the fused program (runFused) owns that path. out receives
// one outcome word per measurement site and lane word (site i, word k at
// i·w+k): reference XOR the frame's X plane.
//
//qa:hotpath
func (x *tapeExec) runTape(st *runState, t *Tape, ref []uint64, inject bool, out []uint64) {
	b := st.b
	w := st.w
	for i := range t.ops {
		op := &t.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			b.H(a)
		case opS, opSdg:
			b.S(a)
		case opCNOT:
			b.CNOT(a, int(op.b))
		case opCZ:
			b.CZ(a, int(op.b))
		case opSWAP:
			b.SWAP(a, int(op.b))
		case opX, opY, opZ:
			// Applied in both reference and shots: frame unchanged.
		case opPrep:
			// No reset gauge randomization: the post-reset/post-measure
			// state is a Z eigenstate, so a random Z frame component
			// would be a stabilizer of the evolving reference and can
			// never flip an outcome — omitting the draw is exact.
			o := a * w
			for k := 0; k < w; k++ {
				b.fx[o+k] = 0
				b.fz[o+k] = 0
			}
		case opMeas:
			o := a * w
			oo := int(op.b) * w
			rv := ref[op.b]
			for k := 0; k < w; k++ {
				out[oo+k] = b.fx[o+k] ^ rv
			}
		case opErrMeas:
			if !inject || st.script == nil {
				continue
			}
			// Cold path: scripted runs are single-shot diagnostics.
			//qa:allow hotpath
			if pp, ok := st.script[Site{st.round, int(op.slot), KindMeas, a, -1}]; ok {
				x.applyScripted(st, a, pp[0])
			}
		case opErrSingle:
			if !inject || st.script == nil {
				continue
			}
			// Cold path: scripted runs are single-shot diagnostics.
			//qa:allow hotpath
			if pp, ok := st.script[Site{st.round, int(op.slot), KindSingle, a, -1}]; ok {
				x.applyScripted(st, a, pp[0])
			}
		case opErrPair:
			if !inject || st.script == nil {
				continue
			}
			// Cold path: scripted runs are single-shot diagnostics.
			//qa:allow hotpath
			if pp, ok := st.script[Site{st.round, int(op.slot), KindPair, a, int(op.b)}]; ok {
				x.applyScripted(st, a, pp[0])
				x.applyScripted(st, int(op.b), pp[1])
			}
		}
	}
}

// runFused propagates all lane words' frames through one noisy round of
// the fused program fp (with reference outcomes ref): gates, preps and
// measurements execute exactly like runTape; the regrouped error runs
// advance each word's geometric gap samplers over a whole run's trial
// words at once. Dead lane words skip all sampling.
//
//qa:hotpath
func (x *tapeExec) runFused(st *runState, fp *fusedProg, ref []uint64, out []uint64) {
	b := st.b
	w := st.w
	for i := range fp.ops {
		op := &fp.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			b.H(a)
		case opS, opSdg:
			b.S(a)
		case opCNOT:
			b.CNOT(a, int(op.b))
		case opCZ:
			b.CZ(a, int(op.b))
		case opSWAP:
			b.SWAP(a, int(op.b))
		case opX, opY, opZ:
			// Applied in both reference and shots: frame unchanged.
		case opPrep:
			o := a * w
			for k := 0; k < w; k++ {
				b.fx[o+k] = 0
				b.fz[o+k] = 0
			}
		case opMeas:
			o := a * w
			oo := int(op.b) * w
			rv := ref[op.b]
			for k := 0; k < w; k++ {
				out[oo+k] = b.fx[o+k] ^ rv
			}
		case opRunSingle:
			x.runSites(st, fp.singleQ[op.a:op.a+op.b], false)
		case opRunMeas:
			x.runSites(st, fp.measQ[op.a:op.a+op.b], true)
		case opRunPair:
			x.runPairs(st, fp.pairA[op.a:op.a+op.b], fp.pairB[op.a:op.a+op.b])
		}
	}
}

// runSites walks one fused run of single-channel (or pre-measurement
// X-flip) sites for every live lane word: the word's gap sampler jumps
// from hit to hit across the whole run, paying one comparison per hit
// plus one per run instead of one per site.
//
//qa:hotpath
func (x *tapeExec) runSites(st *runState, qs []int32, measFlip bool) {
	p := x.p
	if measFlip {
		p = x.pMeas
	}
	if p <= 0 {
		return
	}
	w := st.w
	m := int64(len(qs)) << 6
	for k := 0; k < w; k++ {
		if st.active[k] == 0 {
			continue
		}
		l := &st.lanes[k]
		s := &l.single
		if measFlip {
			s = &l.meas
		}
		for s.next < m {
			q := int(qs[s.next>>6])
			j := uint(s.next) & 63
			bit := uint64(1) << j
			o := q*w + k
			if measFlip {
				st.b.fx[o] ^= bit
			} else {
				v := l.rng.Uint64()
				switch {
				case v < x.uX:
					st.b.fx[o] ^= bit
				case v < x.uXY:
					st.b.fx[o] ^= bit
					st.b.fz[o] ^= bit
				default:
					st.b.fz[o] ^= bit
				}
			}
			if st.active[k]&bit != 0 {
				st.inj[k*64+int(j)]++
			}
			s.next += s.gap(l.rng)
		}
		s.next -= m
	}
}

// runPairs walks one fused run of correlated two-qubit sites for every
// live lane word.
//
//qa:hotpath
func (x *tapeExec) runPairs(st *runState, qa, qb []int32) {
	if x.p <= 0 {
		return
	}
	w := st.w
	m := int64(len(qa)) << 6
	for k := 0; k < w; k++ {
		if st.active[k] == 0 {
			continue
		}
		l := &st.lanes[k]
		s := &l.pair
		for s.next < m {
			site := s.next >> 6
			x.applyPairHit(st, k, int(qa[site]), int(qb[site]), uint(s.next)&63)
			s.next += s.gap(l.rng)
		}
		s.next -= m
	}
}

// applySingleHit applies one single-qubit channel hit on lane j of word
// k: the conditional Pauli kind given a hit (PX/P, PY/P, PZ/P), decided
// by comparing one raw RNG word against the precomputed uint64
// thresholds.
//
//qa:hotpath
func (x *tapeExec) applySingleHit(st *runState, k, q int, j uint) {
	bit := uint64(1) << j
	o := q*st.w + k
	v := st.lanes[k].rng.Uint64()
	switch {
	case v < x.uX:
		st.b.fx[o] ^= bit
	case v < x.uXY:
		st.b.fx[o] ^= bit
		st.b.fz[o] ^= bit
	default:
		st.b.fz[o] ^= bit
	}
	if st.active[k]&bit != 0 {
		st.inj[k*64+int(j)]++
	}
}

// applyPairHit applies one correlated two-qubit hit on lane j of word k:
// one of the 15 non-trivial pairs, uniformly.
//
//qa:hotpath
func (x *tapeExec) applyPairHit(st *runState, k, qa, qb int, j uint) {
	bit := uint64(1) << j
	oa := qa*st.w + k
	ob := qb*st.w + k
	pr := pairTable[st.lanes[k].rng.Intn(len(pairTable))]
	if pr[0]&ErrX != 0 {
		st.b.fx[oa] ^= bit
	}
	if pr[0]&ErrZ != 0 {
		st.b.fz[oa] ^= bit
	}
	if pr[1]&ErrX != 0 {
		st.b.fx[ob] ^= bit
	}
	if pr[1]&ErrZ != 0 {
		st.b.fz[ob] ^= bit
	}
	if st.active[k]&bit != 0 {
		st.inj[k*64+int(j)]++
	}
}

// applyScripted injects a scripted Pauli on every lane of word 0
// (scripted runs are single-shot; broadcasting keeps lane 0 correct and
// the rest unused).
func (x *tapeExec) applyScripted(st *runState, q int, p PauliErr) {
	if p == ErrNone {
		return
	}
	o := q * st.w
	if p&ErrX != 0 {
		st.b.fx[o] ^= ^uint64(0)
	}
	if p&ErrZ != 0 {
		st.b.fz[o] ^= ^uint64(0)
	}
	st.inj[0]++
}

// sampleCorrectionSlot applies the physical correction slot's error
// opportunities for lane word k: one single-qubit channel site per qubit
// (the corrected qubits execute Pauli gates, the rest idle — all take
// the same channel), masked to the lanes that actually issued a
// correction slot. Trials for masked-out lanes are consumed but not
// applied, which preserves both the per-lane distribution and seed
// determinism.
//
//qa:hotpath
func (x *tapeExec) sampleCorrectionSlot(st *runState, k int, hasCorr uint64) {
	if x.p <= 0 {
		return
	}
	l := &st.lanes[k]
	s := &l.single
	m := int64(x.n) << 6
	for s.next < m {
		j := uint(s.next) & 63
		if hasCorr>>j&1 == 1 {
			x.applySingleHit(st, k, int(s.next>>6), j)
		}
		s.next += s.gap(l.rng)
	}
	s.next -= m
}

// decodeGroup applies the windowed decoding rule word-parallel for one
// hardware group: r1/r2 are the two fresh rounds as syndrome bit-planes,
// carry is the persistent carried round. dec receives the decoded
// syndrome planes; the return value is the lane mask with a nonzero
// decoded syndrome (the only lanes needing scalar LUT work).
//
//qa:hotpath
func (e *Engine) decodeGroup(r1, r2, carry, dec *[4]uint64) uint64 {
	if e.intersection {
		for i := 0; i < 4; i++ {
			dec[i] = (carry[i] & r1[i]) | (r1[i] & r2[i]) | (carry[i] & r2[i])
			carry[i] = r2[i]
		}
		return dec[0] | dec[1] | dec[2] | dec[3]
	}
	diff12 := (r1[0] ^ r2[0]) | (r1[1] ^ r2[1]) | (r1[2] ^ r2[2]) | (r1[3] ^ r2[3])
	diffC1 := (carry[0] ^ r1[0]) | (carry[1] ^ r1[1]) | (carry[2] ^ r1[2]) | (carry[3] ^ r1[3])
	eq12, eqC1 := ^diff12, ^diffC1
	decMask := eq12 | eqC1
	// Lanes decoding via the carried round remove the confirmed part
	// from the next carry (decoder.WindowDecoder's carry adjustment).
	adjust := eqC1 &^ eq12
	for i := 0; i < 4; i++ {
		carry[i] = r2[i] ^ (r1[i] & adjust)
		dec[i] = r1[i] & decMask
	}
	return dec[0] | dec[1] | dec[2] | dec[3]
}

// gather scatters the per-site outcome words of lane word k into
// syndrome bit-planes per hardware group.
//
//qa:hotpath
func gather(e *Engine, out []uint64, k, w int, a, b *[4]uint64) {
	for i := range e.groupOfSite {
		v := out[i*w+k]
		if e.groupOfSite[i] == 0 {
			a[e.bitOfSite[i]] = v
		} else {
			b[e.bitOfSite[i]] = v
		}
	}
}

// synAt extracts the scalar syndrome of lane j from bit-planes.
//
//qa:hotpath
func synAt(p *[4]uint64, j int) decoder.Syndrome {
	return decoder.Syndrome((p[0]>>uint(j))&1 |
		(p[1]>>uint(j))&1<<1 |
		(p[2]>>uint(j))&1<<2 |
		(p[3]>>uint(j))&1<<3)
}

// applyCorr XORs a decoded correction mask into one lane of word k's
// frame: Z corrections into the Z planes, X corrections into the X
// planes. This models both stack variants at once — a physical
// correction gate and a frame-absorbed correction differ from the
// reference by the same Pauli.
//
//qa:hotpath
func applyCorr(b *Batch, cm uint16, k int, lane uint64, asZ bool) {
	for m := cm; m != 0; m &= m - 1 {
		d := bits.TrailingZeros16(m)
		o := d*b.w + k
		if asZ {
			b.fz[o] ^= lane
		} else {
			b.fx[o] ^= lane
		}
	}
}
