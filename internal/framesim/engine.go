// Package framesim implements the bit-sliced 64-shot Pauli-frame
// Monte-Carlo engine for the LER windows protocol (thesis Listing 5.7).
//
// The QPDO stack (ninja star → counters → [pauli frame] → error layer →
// CHP tableau) simulates one noisy trajectory at a time; every shot pays
// the full tableau cost. This engine exploits that the protocol is a
// Clifford circuit with Pauli noise: a noisy shot equals the noiseless
// reference run plus a Pauli error frame conjugated through the circuit.
// The reference is computed once on the CHP tableau; after that each shot
// is just an X/Z frame bit-pair per qubit, and 64 shots pack into one
// uint64 word per plane — the conjugation rules of thesis Tables 3.2–3.5
// become word ops (exactly core.BitFrame, sliced across shots instead of
// qubits).
//
// Exactness rests on the protocol's structure: after the noiseless
// initialization the state is the unique all-(+1)-stabilizer logical
// state, so every window-phase measurement (ESM ancillas, diagnostics,
// probe) is deterministic on the reference, and a shot's outcome is the
// reference value XOR the frame's X bit. Reset gauge randomization (a
// fresh random Z frame bit after Prep/Measure) keeps the frame
// distribution faithful for general circuits; for this protocol the
// randomized component is always a stabilizer of the evolving reference
// and never flips a measured value, which is why the syndrome stream is a
// bit-exact function of the injected error pattern — the property the
// differential test checks against the QPDO stack.
//
// The decoder windows run word-parallel too: syndrome bit-planes per
// hardware ancilla group, the three-round agreement/intersection rules as
// boolean word ops, and a scalar LUT lookup only for the (rare) shots
// whose decoded syndrome is nonzero.
package framesim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/chp"
	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// Observable selects the monitored logical error, mirroring the
// experiment harness: logical X errors are detected on |0⟩_L with the
// Z_L probe, logical Z errors on |+⟩_L with the X_L probe.
type Observable int

// Observables.
const (
	ObserveX Observable = iota
	ObserveZ
)

// Config parameterizes a frame engine.
type Config struct {
	// Observable selects the monitored logical error.
	Observable Observable
	// WithPauliFrame models the Pauli-frame stack variant: corrections
	// are absorbed (no physical correction slot, hence no correction-slot
	// error opportunities and no executed correction ops).
	WithPauliFrame bool
	// MaxLogicalErrors terminates a shot (default 50, like the thesis).
	MaxLogicalErrors int
	// MaxWindows caps every shot's run length (default 2,000,000).
	MaxWindows int
	// InitRounds is the number of ESM rounds during noiseless
	// initialization (default 3).
	InitRounds int
	// DecoderRule selects the windowed decoding rule.
	DecoderRule decoder.Rule
	// Model is the Pauli error channel.
	Model layers.Model
	// RefSeed seeds the reference tableau run. Every protocol measurement
	// is required to be deterministic (New errors out otherwise), so the
	// results do not depend on this value.
	RefSeed int64
	// DenseThreshold is the dirty-qubit population at which the sparse
	// engine (NewSparse) abandons event-driven propagation for the rest
	// of the current tape and drains it with the dense word kernels
	// (default 8). The dense engine ignores it.
	DenseThreshold int
}

func (c Config) withDefaults() Config {
	if c.MaxLogicalErrors <= 0 {
		c.MaxLogicalErrors = 50
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 2_000_000
	}
	if c.InitRounds <= 0 {
		c.InitRounds = 3
	}
	return c
}

// ShotResult reports one Monte-Carlo shot, with the same accounting
// semantics as the stack harness's LERResult.
type ShotResult struct {
	// Windows and LogicalErrors are R and m of thesis Eq. 5.1.
	Windows       int
	LogicalErrors int
	// CorrectionGates / CorrectionSlots count what the decoder issued.
	CorrectionGates int
	CorrectionSlots int
	// OpsIssued / SlotsIssued count the stream entering the Pauli-frame
	// position; OpsExecuted / SlotsExecuted what would leave it.
	OpsIssued     int
	SlotsIssued   int
	OpsExecuted   int
	SlotsExecuted int
	// InjectedErrors counts error events applied while the shot was live.
	InjectedErrors int
}

// WindowTrace records what one QEC window did for shot lane 0; the
// differential test compares traces against the manually driven stack.
type WindowTrace struct {
	// R1A..R2B are the raw syndromes of the two ESM rounds per hardware
	// ancilla group.
	R1A, R1B, R2A, R2B decoder.Syndrome
	// CorrA / CorrB are the decoded correction masks (bit d = data qubit
	// d) per group.
	CorrA, CorrB uint16
	// DiagA / DiagB are the noiseless diagnostic round syndromes.
	DiagA, DiagB decoder.Syndrome
	// Clean reports whether the diagnostic round was all-zero (the shot
	// was probed).
	Clean bool
	// Probe is the probe outcome, or -1 when the shot was not probed.
	Probe int
}

// Engine is an immutable compiled instance of the windows protocol for
// one configuration: instruction tapes, reference outcomes, decoder
// tables and channel constants. RunBatch carries all mutable state in a
// private runState, so one Engine may serve many goroutines concurrently.
type Engine struct {
	cfg Config
	n   int

	esm, probe       *Tape
	refESM, refProbe []uint64

	// groupOfSite/bitOfSite map ESM measurement sites to hardware ancilla
	// groups (0 = A, ancillas 9..12; 1 = B) and syndrome bits.
	groupOfSite, bitOfSite []uint8

	lutA, lutB *decoder.LUT
	// gateAIsZ: group-A syndromes decode to Z corrections (normal
	// orientation); swapped after the logical Hadamard of ObserveZ.
	gateAIsZ     bool
	intersection bool

	// esmOps/esmSlots are the per-round circuit sizes for the ops
	// accounting (48 and 8 for a full SC17 round).
	esmOps, esmSlots int

	// Cached channel constants.
	p, px, pxy, pMeas float64
	corrPair          bool
}

// New compiles the windows protocol for one configuration: it builds a
// noiseless reference stack (ninja star over a CHP tableau), initializes
// the logical qubit exactly like the harness, compiles the ESM and probe
// circuits to tapes, and fixes the reference outcomes by running each
// tape on the tableau — twice, verifying the reference is deterministic
// and stationary (it must be: the post-init state carries all +1
// stabilizers), so frame propagation against fixed reference words is
// exact.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	chpCore := layers.NewChpCore(rand.New(rand.NewSource(cfg.RefSeed)))
	star := surface.NewNinjaStarLayer(chpCore, surface.Config{
		Ancilla:     surface.AncillaDedicated,
		InitRounds:  cfg.InitRounds,
		DecoderRule: cfg.DecoderRule,
	})
	if err := star.CreateQubits(1); err != nil {
		return nil, err
	}
	init := circuit.New().Add(gates.Prep, 0)
	if cfg.Observable == ObserveZ {
		init.Add(gates.H, 0)
	}
	if _, err := qpdo.Run(star, init); err != nil {
		return nil, err
	}

	st := star.Star(0)
	n := chpCore.NumQubits()
	// The tapes address physical qubits; correction masks address
	// relative data indices. With one star on a fresh core they coincide.
	for d := 0; d < surface.NumData; d++ {
		if st.Data[d] != d {
			return nil, fmt.Errorf("framesim: data qubit %d placed at %d; expected identity layout", d, st.Data[d])
		}
	}

	esmC := st.ESMCircuit()
	probeC := st.ProbeZLCircuit()
	if cfg.Observable == ObserveZ {
		probeC = st.ProbeXLCircuit()
	}
	esm, err := Compile(esmC, n)
	if err != nil {
		return nil, err
	}
	probe, err := Compile(probeC, n)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:          cfg,
		n:            n,
		esm:          esm,
		probe:        probe,
		lutA:         decoder.BuildLUT(surface.XSupports(surface.RotNormal), surface.NumData),
		lutB:         decoder.BuildLUT(surface.ZSupports(surface.RotNormal), surface.NumData),
		gateAIsZ:     st.Rotation == surface.RotNormal,
		intersection: cfg.DecoderRule == decoder.RuleIntersection,
		esmOps:       esmC.NumOps(),
		esmSlots:     esmC.NumSlots(),
		p:            cfg.Model.TotalSingle(),
		px:           cfg.Model.PX,
		pxy:          cfg.Model.PX + cfg.Model.PY,
		pMeas:        cfg.Model.PMeas,
		corrPair:     cfg.Model.CorrelatedTwoQubit,
	}

	e.groupOfSite = make([]uint8, esm.NumMeas())
	e.bitOfSite = make([]uint8, esm.NumMeas())
	var seen [2][4]bool
	for i := 0; i < esm.NumMeas(); i++ {
		q := esm.MeasQubit(i)
		rel := -1
		for a, phys := range st.Anc {
			if phys == q {
				rel = a
				break
			}
		}
		if rel < 0 {
			return nil, fmt.Errorf("framesim: ESM measures qubit %d, which is no ancilla", q)
		}
		g, b := uint8(rel/4), uint8(rel%4)
		if seen[g][b] {
			return nil, fmt.Errorf("framesim: ancilla %d measured twice per round", q)
		}
		seen[g][b] = true
		e.groupOfSite[i], e.bitOfSite[i] = g, b
	}
	for g := range seen {
		for b, ok := range seen[g] {
			if !ok {
				return nil, fmt.Errorf("framesim: ESM round misses group %d bit %d", g, b)
			}
		}
	}

	tab := chpCore.Tableau()
	if e.refESM, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	again, err := refRun(tab, esm)
	if err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: ESM reference outcomes are not stationary")
	}
	if e.refProbe, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if again, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if !equalWords(e.refProbe, again) {
		return nil, fmt.Errorf("framesim: probe reference outcome is not stationary")
	}
	// The probe must be QND with respect to the ESM reference.
	if again, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: probe disturbs the ESM reference outcomes")
	}
	return e, nil
}

// ESMSites lists the error-injection sites of one ESM round (Round 0 in
// every returned Site); scripted callers offset Round per execution. Each
// noisy window consumes two rounds, so a W-window scripted run draws
// rounds 0..2W-1.
func (e *Engine) ESMSites() []Site { return e.esm.Sites() }

// refRun executes a tape on the reference tableau and returns the
// broadcast outcome word per measurement site (0 or all-ones). Any
// non-deterministic measurement is an error: the frame engine's exactness
// argument requires fixed reference outcomes.
func refRun(tab *chp.Tableau, t *Tape) ([]uint64, error) {
	out := make([]uint64, t.NumMeas())
	for i := range t.ops {
		op := &t.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			tab.H(a)
		case opS:
			tab.S(a)
		case opSdg:
			tab.Sdg(a)
		case opCNOT:
			tab.CNOT(a, int(op.b))
		case opCZ:
			tab.CZ(a, int(op.b))
		case opSWAP:
			tab.SWAP(a, int(op.b))
		case opX:
			tab.X(a)
		case opY:
			tab.Y(a)
		case opZ:
			tab.Z(a)
		case opPrep:
			tab.Reset(a)
		case opMeas:
			v, det := tab.Measure(a)
			if !det {
				return nil, fmt.Errorf("framesim: reference measurement of qubit %d is random; the frame engine needs a stabilized protocol state", a)
			}
			if v == 1 {
				out[op.b] = ^uint64(0)
			}
		}
	}
	return out, nil
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runState is the mutable per-run state: frame planes, RNG, channel
// samplers and scratch buffers. All scratch is allocated once per run;
// the window loop itself is allocation-free.
type runState struct {
	b   *Batch
	rng *rand.Rand

	single, meas, pair sampler

	r1, r2, diag, probeOut []uint64

	script Script
	round  int
	active uint64
	inj    [64]int
}

func (e *Engine) newRunState(seed int64, script Script) *runState {
	st := &runState{
		b:        NewBatch(e.n),
		rng:      rand.New(rand.NewSource(seed)),
		script:   script,
		r1:       make([]uint64, e.esm.NumMeas()),
		r2:       make([]uint64, e.esm.NumMeas()),
		diag:     make([]uint64, e.esm.NumMeas()),
		probeOut: make([]uint64, e.probe.NumMeas()),
	}
	if script == nil {
		st.single = newSampler(e.p, st.rng)
		st.meas = newSampler(e.pMeas, st.rng)
		if e.corrPair {
			st.pair = newSampler(e.p, st.rng)
		}
	}
	return st
}

// RunBatch runs up to 64 Monte-Carlo shots in one word, all seeded from
// one RNG derived from seed. Shot j terminates when it accumulates
// MaxLogicalErrors or reaches MaxWindows; terminated lanes keep
// propagating (their planes are dead weight in the words) but stop
// accumulating statistics. Safe for concurrent use on one Engine.
func (e *Engine) RunBatch(seed int64, shots int) ([]ShotResult, error) {
	if shots < 1 || shots > 64 {
		return nil, fmt.Errorf("framesim: batch width %d outside 1..64", shots)
	}
	st := e.newRunState(seed, nil)
	var res [64]ShotResult
	e.runWindows(st, &res, shots, 0, nil)
	return append([]ShotResult(nil), res[:shots]...), nil
}

// RunScripted runs exactly `windows` QEC windows of a single shot with
// the Script's errors injected instead of sampled noise (and without
// reset gauge randomization), recording a WindowTrace per window. Caps
// are ignored; the shot never terminates early. The differential test
// feeds the same Script to an InjectLayer-instrumented QPDO stack and
// requires bit-identical traces.
func (e *Engine) RunScripted(windows int, script Script) ([]WindowTrace, ShotResult, error) {
	if windows < 0 {
		return nil, ShotResult{}, fmt.Errorf("framesim: negative window count %d", windows)
	}
	if script == nil {
		script = Script{}
	}
	st := e.newRunState(0, script)
	var res [64]ShotResult
	traces := make([]WindowTrace, 0, windows)
	e.runWindows(st, &res, 1, windows, &traces)
	return traces, res[0], nil
}

// runWindows drives the window loop. In sampled mode (st.script == nil)
// it runs until every lane of the first `shots` terminates; in scripted
// mode it runs exactly scriptWindows windows on lane 0.
func (e *Engine) runWindows(st *runState, res *[64]ShotResult, shots, scriptWindows int, traces *[]WindowTrace) {
	active := ^uint64(0)
	if shots < 64 {
		active = uint64(1)<<uint(shots) - 1
	}
	var carryA, carryB, decA, decB [4]uint64
	var a1, b1, a2, b2 [4]uint64
	var corrMask [64]uint16
	var expected uint64
	w := 0
	for {
		if st.script == nil {
			if active == 0 || w >= e.cfg.MaxWindows {
				break
			}
		} else if w >= scriptWindows {
			break
		}
		w++
		st.active = active

		// Two noisy ESM rounds.
		e.runTape(st, e.esm, e.refESM, true, st.r1)
		st.round++
		e.runTape(st, e.esm, e.refESM, true, st.r2)
		st.round++
		gather(e, st.r1, &a1, &b1)
		gather(e, st.r2, &a2, &b2)

		// Word-parallel windowed decode per hardware group, then scalar
		// LUT lookups only for lanes with a nonzero decoded syndrome.
		nzA := e.decodeGroup(&a1, &a2, &carryA, &decA)
		nzB := e.decodeGroup(&b1, &b2, &carryB, &decB)
		var trA, trB uint16
		for m := nzA; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			cm := uint16(e.lutA.CorrectionMask(synAt(&decA, j)))
			corrMask[j] |= cm
			if j == 0 {
				trA = cm
			}
			applyCorr(st.b, cm, uint64(1)<<uint(j), e.gateAIsZ)
		}
		for m := nzB; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			cm := uint16(e.lutB.CorrectionMask(synAt(&decB, j)))
			corrMask[j] |= cm
			if j == 0 {
				trB = cm
			}
			applyCorr(st.b, cm, uint64(1)<<uint(j), !e.gateAIsZ)
		}
		var hasCorr uint64
		for m := nzA | nzB; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			if cm := corrMask[j]; cm != 0 {
				hasCorr |= uint64(1) << uint(j)
				if active>>uint(j)&1 == 1 {
					res[j].CorrectionGates += bits.OnesCount16(cm)
					res[j].CorrectionSlots++
				}
				corrMask[j] = 0
			}
		}
		// Without a Pauli frame the correction slot executes physically
		// and is itself noisy: one single-qubit channel site per qubit
		// (correction operands and idles alike), applied only to the
		// lanes that issued a correction. With a frame, the slot is
		// absorbed and injects nothing. Scripted runs inject nothing here
		// either — the QPDO-side InjectLayer skips 1-slot circuits.
		if hasCorr != 0 && st.script == nil && !e.cfg.WithPauliFrame {
			e.sampleCorrectionSlot(st, hasCorr)
		}

		// Noiseless diagnostic round; only all-clean lanes are probed.
		e.runTape(st, e.esm, e.refESM, false, st.diag)
		clean := ^uint64(0)
		for _, v := range st.diag {
			clean &^= v
		}
		e.runTape(st, e.probe, e.refProbe, false, st.probeOut)
		out := st.probeOut[len(st.probeOut)-1]
		flips := (out ^ expected) & clean
		expected ^= flips
		for m := flips & active; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			res[j].LogicalErrors++
			if st.script == nil && res[j].LogicalErrors >= e.cfg.MaxLogicalErrors {
				active &^= uint64(1) << uint(j)
				res[j].Windows = w
			}
		}

		if traces != nil {
			var da, db [4]uint64
			gather(e, st.diag, &da, &db)
			tr := WindowTrace{
				R1A: synAt(&a1, 0), R1B: synAt(&b1, 0),
				R2A: synAt(&a2, 0), R2B: synAt(&b2, 0),
				CorrA: trA, CorrB: trB,
				DiagA: synAt(&da, 0), DiagB: synAt(&db, 0),
				Clean: clean&1 == 1,
				Probe: -1,
			}
			if tr.Clean {
				tr.Probe = int(out & 1)
			}
			*traces = append(*traces, tr)
		}
	}
	for j := 0; j < shots; j++ {
		r := &res[j]
		if active>>uint(j)&1 == 1 {
			r.Windows = w
		}
		r.InjectedErrors = st.inj[j]
		r.OpsIssued = r.Windows*2*e.esmOps + r.CorrectionGates
		r.SlotsIssued = r.Windows*2*e.esmSlots + r.CorrectionSlots
		r.OpsExecuted = r.OpsIssued
		r.SlotsExecuted = r.SlotsIssued
		if e.cfg.WithPauliFrame {
			r.OpsExecuted -= r.CorrectionGates
			r.SlotsExecuted -= r.CorrectionSlots
		}
	}
}

// runTape propagates all 64 frames through one tape. inject enables the
// error sites (scripted or sampled); with inject false the tape runs
// noiselessly and without gauge randomization (the diagnostic/probe
// bypass semantics). out receives one outcome word per measurement site:
// reference XOR the frame's X plane.
//
//qa:hotpath
func (e *Engine) runTape(st *runState, t *Tape, ref []uint64, inject bool, out []uint64) {
	b := st.b
	noisy := inject && st.script == nil
	for i := range t.ops {
		op := &t.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			b.H(a)
		case opS, opSdg:
			b.S(a)
		case opCNOT:
			b.CNOT(a, int(op.b))
		case opCZ:
			b.CZ(a, int(op.b))
		case opSWAP:
			b.SWAP(a, int(op.b))
		case opX, opY, opZ:
			// Applied in both reference and shots: frame unchanged.
		case opPrep:
			b.fx[a] = 0
			if noisy {
				// Reset gauge randomization: the post-reset state is a Z
				// eigenstate, so a Z frame component is unobservable —
				// randomizing it keeps the frame distribution faithful.
				b.fz[a] = st.rng.Uint64()
			} else {
				b.fz[a] = 0
			}
		case opMeas:
			out[op.b] = b.fx[a] ^ ref[op.b]
			if noisy {
				b.fz[a] = st.rng.Uint64()
			}
		case opErrMeas:
			if !inject {
				continue
			}
			if st.script != nil {
				// Cold path: scripted runs are single-shot diagnostics.
				//qa:allow hotpath
				if pp, ok := st.script[Site{st.round, int(op.slot), KindMeas, a, -1}]; ok {
					e.applyScripted(st, a, pp[0])
				}
				continue
			}
			s := &st.meas
			for s.next < 64 {
				j := uint(s.next)
				bit := uint64(1) << j
				b.fx[a] ^= bit
				if st.active&bit != 0 {
					st.inj[j]++
				}
				s.next += s.gap(st.rng)
			}
			s.advanceWord()
		case opErrSingle:
			if !inject {
				continue
			}
			if st.script != nil {
				// Cold path: scripted runs are single-shot diagnostics.
				//qa:allow hotpath
				if pp, ok := st.script[Site{st.round, int(op.slot), KindSingle, a, -1}]; ok {
					e.applyScripted(st, a, pp[0])
				}
				continue
			}
			s := &st.single
			for s.next < 64 {
				e.applySingleHit(st, a, uint(s.next))
				s.next += s.gap(st.rng)
			}
			s.advanceWord()
		case opErrPair:
			if !inject {
				continue
			}
			qb := int(op.b)
			if st.script != nil {
				// Cold path: scripted runs are single-shot diagnostics.
				//qa:allow hotpath
				if pp, ok := st.script[Site{st.round, int(op.slot), KindPair, a, qb}]; ok {
					e.applyScripted(st, a, pp[0])
					e.applyScripted(st, qb, pp[1])
				}
				continue
			}
			if e.corrPair {
				s := &st.pair
				for s.next < 64 {
					e.applyPairHit(st, a, qb, uint(s.next))
					s.next += s.gap(st.rng)
				}
				s.advanceWord()
			} else {
				// Uncorrelated model: each operand takes the single
				// channel independently, in operand order.
				s := &st.single
				for s.next < 64 {
					e.applySingleHit(st, a, uint(s.next))
					s.next += s.gap(st.rng)
				}
				s.advanceWord()
				for s.next < 64 {
					e.applySingleHit(st, qb, uint(s.next))
					s.next += s.gap(st.rng)
				}
				s.advanceWord()
			}
		}
	}
}

// applySingleHit applies one single-qubit channel hit on lane j: the
// conditional Pauli kind given a hit (PX/P, PY/P, PZ/P).
//
//qa:hotpath
func (e *Engine) applySingleHit(st *runState, q int, j uint) {
	bit := uint64(1) << j
	v := st.rng.Float64() * e.p
	switch {
	case v < e.px:
		st.b.fx[q] ^= bit
	case v < e.pxy:
		st.b.fx[q] ^= bit
		st.b.fz[q] ^= bit
	default:
		st.b.fz[q] ^= bit
	}
	if st.active&bit != 0 {
		st.inj[j]++
	}
}

// applyPairHit applies one correlated two-qubit hit on lane j: one of the
// 15 non-trivial pairs, uniformly.
//
//qa:hotpath
func (e *Engine) applyPairHit(st *runState, qa, qb int, j uint) {
	bit := uint64(1) << j
	pr := pairTable[st.rng.Intn(len(pairTable))]
	if pr[0]&ErrX != 0 {
		st.b.fx[qa] ^= bit
	}
	if pr[0]&ErrZ != 0 {
		st.b.fz[qa] ^= bit
	}
	if pr[1]&ErrX != 0 {
		st.b.fx[qb] ^= bit
	}
	if pr[1]&ErrZ != 0 {
		st.b.fz[qb] ^= bit
	}
	if st.active&bit != 0 {
		st.inj[j]++
	}
}

// applyScripted injects a scripted Pauli on every lane (scripted runs are
// single-shot; broadcasting keeps lane 0 correct and the rest unused).
func (e *Engine) applyScripted(st *runState, q int, p PauliErr) {
	if p == ErrNone {
		return
	}
	if p&ErrX != 0 {
		st.b.fx[q] ^= ^uint64(0)
	}
	if p&ErrZ != 0 {
		st.b.fz[q] ^= ^uint64(0)
	}
	st.inj[0]++
}

// sampleCorrectionSlot applies the physical correction slot's error
// opportunities: one single-qubit channel site per qubit (the corrected
// qubits execute Pauli gates, the rest idle — all take the same channel),
// masked to the lanes that actually issued a correction slot. Trials for
// masked-out lanes are consumed but not applied, which preserves both
// the per-lane distribution and seed determinism.
//
//qa:hotpath
func (e *Engine) sampleCorrectionSlot(st *runState, hasCorr uint64) {
	s := &st.single
	for q := 0; q < e.n; q++ {
		for s.next < 64 {
			j := uint(s.next)
			if hasCorr>>j&1 == 1 {
				e.applySingleHit(st, q, j)
			}
			s.next += s.gap(st.rng)
		}
		s.advanceWord()
	}
}

// decodeGroup applies the windowed decoding rule word-parallel for one
// hardware group: r1/r2 are the two fresh rounds as syndrome bit-planes,
// carry is the persistent carried round. dec receives the decoded
// syndrome planes; the return value is the lane mask with a nonzero
// decoded syndrome (the only lanes needing scalar LUT work).
//
//qa:hotpath
func (e *Engine) decodeGroup(r1, r2, carry, dec *[4]uint64) uint64 {
	if e.intersection {
		for i := 0; i < 4; i++ {
			dec[i] = (carry[i] & r1[i]) | (r1[i] & r2[i]) | (carry[i] & r2[i])
			carry[i] = r2[i]
		}
		return dec[0] | dec[1] | dec[2] | dec[3]
	}
	diff12 := (r1[0] ^ r2[0]) | (r1[1] ^ r2[1]) | (r1[2] ^ r2[2]) | (r1[3] ^ r2[3])
	diffC1 := (carry[0] ^ r1[0]) | (carry[1] ^ r1[1]) | (carry[2] ^ r1[2]) | (carry[3] ^ r1[3])
	eq12, eqC1 := ^diff12, ^diffC1
	decMask := eq12 | eqC1
	// Lanes decoding via the carried round remove the confirmed part
	// from the next carry (decoder.WindowDecoder's carry adjustment).
	adjust := eqC1 &^ eq12
	for i := 0; i < 4; i++ {
		carry[i] = r2[i] ^ (r1[i] & adjust)
		dec[i] = r1[i] & decMask
	}
	return dec[0] | dec[1] | dec[2] | dec[3]
}

// gather scatters per-site outcome words into syndrome bit-planes per
// hardware group.
//
//qa:hotpath
func gather(e *Engine, out []uint64, a, b *[4]uint64) {
	for i, v := range out {
		if e.groupOfSite[i] == 0 {
			a[e.bitOfSite[i]] = v
		} else {
			b[e.bitOfSite[i]] = v
		}
	}
}

// synAt extracts the scalar syndrome of lane j from bit-planes.
//
//qa:hotpath
func synAt(p *[4]uint64, j int) decoder.Syndrome {
	return decoder.Syndrome((p[0]>>uint(j))&1 |
		(p[1]>>uint(j))&1<<1 |
		(p[2]>>uint(j))&1<<2 |
		(p[3]>>uint(j))&1<<3)
}

// applyCorr XORs a decoded correction mask into one lane's frame: Z
// corrections into the Z planes, X corrections into the X planes. This
// models both stack variants at once — a physical correction gate and a
// frame-absorbed correction differ from the reference by the same Pauli.
//
//qa:hotpath
func applyCorr(b *Batch, cm uint16, lane uint64, asZ bool) {
	for m := cm; m != 0; m &= m - 1 {
		d := bits.TrailingZeros16(m)
		if asZ {
			b.fz[d] ^= lane
		} else {
			b.fx[d] ^= lane
		}
	}
}
