package framesim

import "repro/internal/pauli"

// Batch is a bit-sliced Pauli error frame for 64 Monte-Carlo shots: for
// every qubit one uint64 word holds the X components of all shots (bit j
// = shot j) and one word the Z components. This is the same object as
// core.BitFrame — a sign-free F₂ symplectic Pauli frame — but sliced
// across shots instead of qubits, so one Clifford conjugation rule of
// thesis Tables 3.4–3.5 updates 64 independent trajectories with one or
// two word operations.
//
// The layout is [qubit][shot-word]: the planes of one qubit are adjacent,
// which is what the gate kernels touch (a gate reads/writes the planes of
// its one or two operand qubits across all shots), while the per-shot
// view (column j of all planes) is only materialized shot-by-shot when a
// decoded syndrome needs a scalar LUT lookup.
type Batch struct {
	n      int
	fx, fz []uint64
}

// NewBatch creates an identity frame batch for n qubits.
func NewBatch(n int) *Batch {
	return &Batch{n: n, fx: make([]uint64, n), fz: make([]uint64, n)}
}

// NumQubits returns the number of qubits.
func (b *Batch) NumQubits() int { return b.n }

// Reset clears every frame to the identity.
//
//qa:hotpath
func (b *Batch) Reset() {
	for i := range b.fx {
		b.fx[i] = 0
		b.fz[i] = 0
	}
}

// The conjugation kernels below mirror core.BitFrame bit for bit (the
// property test drives the two against each other record-by-record).
// Pauli gates are absent by design: a Pauli applied physically in both
// the reference and the shots commutes through the frame unchanged, and
// Pauli *errors* enter via XorX/XorZ.

// H conjugates the frames of qubit q by a Hadamard: X ↔ Z.
//
//qa:hotpath
func (b *Batch) H(q int) {
	b.fx[q], b.fz[q] = b.fz[q], b.fx[q]
}

// S conjugates by the phase gate: X → Y (Z ^= X), Z fixed. S† acts
// identically on the sign-free frame.
//
//qa:hotpath
func (b *Batch) S(q int) {
	b.fz[q] ^= b.fx[q]
}

// CNOT conjugates by a controlled-NOT: X copies control→target, Z copies
// target→control.
//
//qa:hotpath
func (b *Batch) CNOT(c, t int) {
	b.fx[t] ^= b.fx[c]
	b.fz[c] ^= b.fz[t]
}

// CZ conjugates by a controlled-Z: an X on either operand toggles Z on
// the other.
//
//qa:hotpath
func (b *Batch) CZ(p, q int) {
	b.fz[q] ^= b.fx[p]
	b.fz[p] ^= b.fx[q]
}

// SWAP exchanges the frames of the two operands.
//
//qa:hotpath
func (b *Batch) SWAP(p, q int) {
	b.fx[p], b.fx[q] = b.fx[q], b.fx[p]
	b.fz[p], b.fz[q] = b.fz[q], b.fz[p]
}

// XorX injects an X error into qubit q for the shots selected by mask.
//
//qa:hotpath
func (b *Batch) XorX(q int, mask uint64) { b.fx[q] ^= mask }

// XorZ injects a Z error into qubit q for the shots selected by mask.
//
//qa:hotpath
func (b *Batch) XorZ(q int, mask uint64) { b.fz[q] ^= mask }

// X returns the X bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) X(q int) uint64 { return b.fx[q] }

// Z returns the Z bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) Z(q int) uint64 { return b.fz[q] }

// ClearQubit zeroes both planes of qubit q (reset of a physical qubit
// destroys any pending error on it).
//
//qa:hotpath
func (b *Batch) ClearQubit(q int) {
	b.fx[q] = 0
	b.fz[q] = 0
}

// Record extracts the Pauli record of qubit q in shot j, for comparison
// against core.BitFrame in the width-1 property test.
func (b *Batch) Record(q, j int) pauli.Record {
	bit := uint64(1) << uint(j)
	return pauli.Record{X: b.fx[q]&bit != 0, Z: b.fz[q]&bit != 0}
}
