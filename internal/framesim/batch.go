package framesim

import "repro/internal/pauli"

// Batch is a bit-sliced Pauli error frame for up to 64·W Monte-Carlo
// shots: for every qubit W uint64 words hold the X components of all
// shots (word k bit j = shot 64k+j) and W words the Z components. This
// is the same object as core.BitFrame — a sign-free F₂ symplectic Pauli
// frame — but sliced across shots instead of qubits, so one Clifford
// conjugation rule of thesis Tables 3.4–3.5 updates 64·W independent
// trajectories with a handful of word operations.
//
// The layout is [qubit][shot-word]: the W words of one qubit's plane are
// adjacent, which is what the gate kernels touch (a gate reads/writes
// the planes of its one or two operand qubits across all shots, a tight
// W-long loop the compiler unrolls for the supported widths), while the
// per-shot view (column j of all planes) is only materialized
// shot-by-shot when a decoded syndrome needs a scalar LUT lookup.
type Batch struct {
	n, w   int
	fx, fz []uint64
}

// NewBatch creates an identity frame batch for n qubits with one
// 64-shot word per plane (the width-1 layout of the scalar contract).
func NewBatch(n int) *Batch { return NewBatchWide(n, 1) }

// NewBatchWide creates an identity frame batch for n qubits with w
// 64-shot words per plane (64·w shots per propagate pass).
func NewBatchWide(n, w int) *Batch {
	if w < 1 {
		w = 1
	}
	return &Batch{n: n, w: w, fx: make([]uint64, n*w), fz: make([]uint64, n*w)}
}

// NumQubits returns the number of qubits.
func (b *Batch) NumQubits() int { return b.n }

// Width returns the number of 64-shot words per plane.
func (b *Batch) Width() int { return b.w }

// Reset clears every frame to the identity.
//
//qa:hotpath
func (b *Batch) Reset() {
	for i := range b.fx {
		b.fx[i] = 0
		b.fz[i] = 0
	}
}

// The conjugation kernels below mirror core.BitFrame bit for bit (the
// property test drives the two against each other record-by-record).
// Pauli gates are absent by design: a Pauli applied physically in both
// the reference and the shots commutes through the frame unchanged, and
// Pauli *errors* enter via XorX/XorZ.

// H conjugates the frames of qubit q by a Hadamard: X ↔ Z.
//
//qa:hotpath
func (b *Batch) H(q int) {
	o := q * b.w
	x := b.fx[o : o+b.w]
	z := b.fz[o : o+b.w]
	for k := range x {
		x[k], z[k] = z[k], x[k]
	}
}

// S conjugates by the phase gate: X → Y (Z ^= X), Z fixed. S† acts
// identically on the sign-free frame.
//
//qa:hotpath
func (b *Batch) S(q int) {
	o := q * b.w
	x := b.fx[o : o+b.w]
	z := b.fz[o : o+b.w]
	for k := range x {
		z[k] ^= x[k]
	}
}

// CNOT conjugates by a controlled-NOT: X copies control→target, Z copies
// target→control.
//
//qa:hotpath
func (b *Batch) CNOT(c, t int) {
	oc, ot := c*b.w, t*b.w
	cx := b.fx[oc : oc+b.w]
	cz := b.fz[oc : oc+b.w]
	tx := b.fx[ot : ot+b.w]
	tz := b.fz[ot : ot+b.w]
	for k := range cx {
		tx[k] ^= cx[k]
		cz[k] ^= tz[k]
	}
}

// CZ conjugates by a controlled-Z: an X on either operand toggles Z on
// the other.
//
//qa:hotpath
func (b *Batch) CZ(p, q int) {
	op, oq := p*b.w, q*b.w
	px := b.fx[op : op+b.w]
	pz := b.fz[op : op+b.w]
	qx := b.fx[oq : oq+b.w]
	qz := b.fz[oq : oq+b.w]
	for k := range px {
		qz[k] ^= px[k]
		pz[k] ^= qx[k]
	}
}

// SWAP exchanges the frames of the two operands.
//
//qa:hotpath
func (b *Batch) SWAP(p, q int) {
	op, oq := p*b.w, q*b.w
	px := b.fx[op : op+b.w]
	pz := b.fz[op : op+b.w]
	qx := b.fx[oq : oq+b.w]
	qz := b.fz[oq : oq+b.w]
	for k := range px {
		px[k], qx[k] = qx[k], px[k]
		pz[k], qz[k] = qz[k], pz[k]
	}
}

// XorX injects an X error into qubit q for the word-0 shots selected by
// mask (the width-1 view; wide callers use XorXAt).
//
//qa:hotpath
func (b *Batch) XorX(q int, mask uint64) { b.fx[q*b.w] ^= mask }

// XorZ injects a Z error into qubit q for the word-0 shots selected by
// mask (the width-1 view; wide callers use XorZAt).
//
//qa:hotpath
func (b *Batch) XorZ(q int, mask uint64) { b.fz[q*b.w] ^= mask }

// XorXAt injects an X error into qubit q for the shots of word k
// selected by mask.
//
//qa:hotpath
func (b *Batch) XorXAt(q, k int, mask uint64) { b.fx[q*b.w+k] ^= mask }

// XorZAt injects a Z error into qubit q for the shots of word k
// selected by mask.
//
//qa:hotpath
func (b *Batch) XorZAt(q, k int, mask uint64) { b.fz[q*b.w+k] ^= mask }

// X returns the word-0 X bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) X(q int) uint64 { return b.fx[q*b.w] }

// Z returns the word-0 Z bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) Z(q int) uint64 { return b.fz[q*b.w] }

// XAt returns word k of the X bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) XAt(q, k int) uint64 { return b.fx[q*b.w+k] }

// ZAt returns word k of the Z bit-plane of qubit q.
//
//qa:hotpath
func (b *Batch) ZAt(q, k int) uint64 { return b.fz[q*b.w+k] }

// ClearQubit zeroes both planes of qubit q (reset of a physical qubit
// destroys any pending error on it).
//
//qa:hotpath
func (b *Batch) ClearQubit(q int) {
	o := q * b.w
	for k := 0; k < b.w; k++ {
		b.fx[o+k] = 0
		b.fz[o+k] = 0
	}
}

// Record extracts the Pauli record of qubit q in shot lane j (a global
// lane index, 0..64·W-1: word j/64, bit j%64), for comparison against
// core.BitFrame in the width-1 property test and its wide extension.
func (b *Batch) Record(q, j int) pauli.Record {
	o := q*b.w + j>>6
	bit := uint64(1) << uint(j&63)
	return pauli.Record{X: b.fx[o]&bit != 0, Z: b.fz[o]&bit != 0}
}
