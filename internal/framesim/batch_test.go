package framesim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gates"
)

// TestBatchMatchesFrame drives the bit-sliced batch and 64 independent
// scalar core.Frame replicas through the same random interleaving of
// Clifford conjugations and per-lane Pauli injections, and requires every
// lane of the batch to agree with its replica record-by-record. This is
// the width-1 property: lane j of a Batch IS a Pauli frame.
func TestBatchMatchesFrame(t *testing.T) {
	const n = 9
	rng := rand.New(rand.NewSource(11))
	b := NewBatch(n)
	var frames [64]*core.Frame
	for j := range frames {
		frames[j] = core.NewFrame(n)
	}
	check := func(step int) {
		t.Helper()
		for q := 0; q < n; q++ {
			for j := 0; j < 64; j++ {
				if got, want := b.Record(q, j), frames[j].Record(q); got != want {
					t.Fatalf("step %d: qubit %d lane %d: batch %v, frame %v", step, q, j, got, want)
				}
			}
		}
	}
	for step := 0; step < 2000; step++ {
		q := rng.Intn(n)
		p := rng.Intn(n - 1)
		if p >= q {
			p++
		}
		switch rng.Intn(10) {
		case 0:
			b.H(q)
			for _, f := range frames {
				f.MapClifford(gates.GateH, []int{q})
			}
		case 1:
			b.S(q)
			for _, f := range frames {
				f.MapClifford(gates.GateS, []int{q})
			}
		case 2:
			// S† has the same sign-free action as S.
			b.S(q)
			for _, f := range frames {
				f.MapClifford(gates.GateSdg, []int{q})
			}
		case 3:
			b.CNOT(q, p)
			for _, f := range frames {
				f.MapClifford(gates.GateCNOT, []int{q, p})
			}
		case 4:
			b.CZ(q, p)
			for _, f := range frames {
				f.MapClifford(gates.GateCZ, []int{q, p})
			}
		case 5:
			b.SWAP(q, p)
			for _, f := range frames {
				f.MapClifford(gates.GateSWAP, []int{q, p})
			}
		case 6:
			mask := rng.Uint64()
			b.XorX(q, mask)
			for j, f := range frames {
				if mask>>uint(j)&1 == 1 {
					f.TrackPauli(gates.GateX, q)
				}
			}
		case 7:
			mask := rng.Uint64()
			b.XorZ(q, mask)
			for j, f := range frames {
				if mask>>uint(j)&1 == 1 {
					f.TrackPauli(gates.GateZ, q)
				}
			}
		case 8:
			mask := rng.Uint64()
			b.XorX(q, mask)
			b.XorZ(q, mask)
			for j, f := range frames {
				if mask>>uint(j)&1 == 1 {
					f.TrackPauli(gates.GateY, q)
				}
			}
		case 9:
			b.ClearQubit(q)
			for _, f := range frames {
				f.Reset(q)
			}
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(2000)

	b.Reset()
	for q := 0; q < n; q++ {
		if b.X(q) != 0 || b.Z(q) != 0 {
			t.Fatalf("Reset left qubit %d planes %x/%x", q, b.X(q), b.Z(q))
		}
	}
}
