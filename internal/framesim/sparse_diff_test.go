package framesim_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/experiments"
	"repro/internal/framesim"
	"repro/internal/layers"
)

// TestSparseScriptedTraceEquality is the sparse counterpart of
// TestDifferentialScripted: the sparse engine consumes the same Script as
// the dense engine and must emit bit-identical per-window traces — raw
// syndromes, decoded corrections, diagnostics, absolute probe outcomes —
// and identical ShotResult accounting. Scripted mode draws no gauge
// randomization in either engine, so the equivalence is exact, not
// statistical.
func TestSparseScriptedTraceEquality(t *testing.T) {
	const windows = 24
	for _, tc := range []struct {
		name      string
		obs       framesim.Observable
		rule      decoder.Rule
		density   float64
		threshold int
		seed      int64
	}{
		{"X/agreement/sparse", framesim.ObserveX, decoder.RuleAgreement, 0.004, 0, 1},
		{"X/agreement/dense", framesim.ObserveX, decoder.RuleAgreement, 0.04, 0, 2},
		{"Z/agreement/sparse", framesim.ObserveZ, decoder.RuleAgreement, 0.004, 0, 3},
		{"Z/agreement/dense", framesim.ObserveZ, decoder.RuleAgreement, 0.04, 0, 4},
		{"X/intersection", framesim.ObserveX, decoder.RuleIntersection, 0.02, 0, 5},
		{"Z/intersection", framesim.ObserveZ, decoder.RuleIntersection, 0.02, 0, 6},
		{"X/empty", framesim.ObserveX, decoder.RuleAgreement, 0, 0, 7},
		{"X/drain-always", framesim.ObserveX, decoder.RuleAgreement, 0.04, 1, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := framesim.Config{
				Observable:     tc.obs,
				DecoderRule:    tc.rule,
				Model:          layers.Depolarizing(1e-3), // ignored: scripted
				RefSeed:        7,
				DenseThreshold: tc.threshold,
			}
			eng, err := framesim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := framesim.NewSparse(cfg)
			if err != nil {
				t.Fatal(err)
			}
			script := randomScript(rand.New(rand.NewSource(tc.seed)), eng.ESMSites(), 2*windows, tc.density)
			denseTr, denseRes, err := eng.RunScripted(windows, script)
			if err != nil {
				t.Fatal(err)
			}
			sparseTr, sparseRes, err := sp.RunScripted(windows, script)
			if err != nil {
				t.Fatal(err)
			}
			if len(sparseTr) != windows {
				t.Fatalf("sparse emitted %d traces, want %d", len(sparseTr), windows)
			}
			for w := range denseTr {
				if denseTr[w] != sparseTr[w] {
					t.Errorf("window %d:\n  dense  %+v\n  sparse %+v\n  (%d scripted errors)",
						w, denseTr[w], sparseTr[w], len(script))
				}
			}
			if denseRes != sparseRes {
				t.Errorf("shot results diverge:\n  dense  %+v\n  sparse %+v", denseRes, sparseRes)
			}
			if tc.density > 0 {
				syn := 0
				for _, tr := range sparseTr {
					syn += (tr.R1A | tr.R1B | tr.R2A | tr.R2B).Weight()
				}
				if syn == 0 {
					t.Error("script injected errors but no syndrome ever fired")
				}
			}
		})
	}
}

// TestSparseSampledStatisticalAgreement compares sampled LER estimates of
// the dense and sparse engines at the same physical error rate. The
// engines intentionally consume different RNG streams (the sparse engine
// skips the unobservable reset-gauge draws), so the comparison is
// statistical: pooled logical-errors-per-window must agree within 5σ of
// the combined binomial error. Seeds are fixed — deterministic, no flake.
func TestSparseSampledStatisticalAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo comparison")
	}
	for _, obs := range []framesim.Observable{framesim.ObserveX, framesim.ObserveZ} {
		name := "X"
		if obs == framesim.ObserveZ {
			name = "Z"
		}
		t.Run(name, func(t *testing.T) {
			cfg := framesim.Config{
				Observable:       obs,
				Model:            layers.Depolarizing(6e-3),
				MaxWindows:       400,
				MaxLogicalErrors: 1 << 30,
				RefSeed:          7,
			}
			eng, err := framesim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := framesim.NewSparse(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := func(run func(seed int64) ([]framesim.ShotResult, error)) (errs, windows float64) {
				for seed := int64(0); seed < 12; seed++ {
					rs, err := run(seed)
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range rs {
						errs += float64(r.LogicalErrors)
						windows += float64(r.Windows)
					}
				}
				return errs, windows
			}
			de, dw := pool(func(seed int64) ([]framesim.ShotResult, error) { return eng.RunBatch(seed, 64) })
			se, sw := pool(func(seed int64) ([]framesim.ShotResult, error) { return sp.RunBatch(seed, 64) })
			pd, ps := de/dw, se/sw
			sigma := math.Sqrt(pd*(1-pd)/dw + ps*(1-ps)/sw)
			if d := math.Abs(pd - ps); d > 5*sigma {
				t.Errorf("LER/window: dense %.4g (%g/%g), sparse %.4g (%g/%g), |Δ|=%.3g > 5σ=%.3g",
					pd, de, dw, ps, se, sw, d, 5*sigma)
			}
			if se == 0 || de == 0 {
				t.Error("an engine saw no logical errors at PER 6e-3")
			}
		})
	}
}

// TestSparseSweepStatisticalAgreement is the sweep-level agreement gate:
// EngineSparse and EngineFrameSim run the same SweepConfig and their
// pooled LER estimates must agree within 5σ of the combined binomial
// error. Seeds are fixed — deterministic, no flake.
func TestSparseSweepStatisticalAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo comparison")
	}
	cfg := experiments.SweepConfig{
		Engine:           experiments.EngineFrameSim,
		PERs:             []float64{6e-3},
		Samples:          512,
		ErrorType:        experiments.LogicalX,
		MaxLogicalErrors: 1 << 30,
		MaxWindows:       200,
		BaseSeed:         2026,
	}
	dense, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = experiments.EngineSparse
	sparse, err := experiments.RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pd, ps := dense[0].PooledLER(), sparse[0].PooledLER()
	dw, sw := float64(dense[0].TotalWindows), float64(sparse[0].TotalWindows)
	sigma := math.Sqrt(pd*(1-pd)/dw + ps*(1-ps)/sw)
	if d := math.Abs(pd - ps); d > 5*sigma {
		t.Errorf("pooled LER: dense %.4g, sparse %.4g, |Δ|=%.3g > 5σ=%.3g", pd, ps, d, 5*sigma)
	}
	if dense[0].TotalErrors == 0 || sparse[0].TotalErrors == 0 {
		t.Error("an engine saw no logical errors at PER 6e-3")
	}
}
