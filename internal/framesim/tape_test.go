package framesim

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

func TestCompileEmptyAndNil(t *testing.T) {
	if _, err := Compile(nil, 5); err == nil {
		t.Fatal("nil circuit compiled")
	}
	if _, err := Compile(circuit.New(), 0); err == nil {
		t.Fatal("zero-width tape compiled")
	}
	tp, err := Compile(circuit.New(), 3)
	if err != nil {
		t.Fatalf("empty circuit: %v", err)
	}
	if tp.NumOps() != 0 || tp.NumMeas() != 0 {
		t.Fatalf("empty circuit compiled to %d ops, %d meas", tp.NumOps(), tp.NumMeas())
	}
}

func TestCompileRejectsMalformed(t *testing.T) {
	cases := map[string]*circuit.Circuit{
		"qubit out of range": circuit.New().Add(gates.H, 7),
		"negative qubit":     {Slots: []circuit.TimeSlot{{Ops: []circuit.Operation{{Gate: gates.H, Qubits: []int{-1}}}}}},
		"slot collision": {Slots: []circuit.TimeSlot{{Ops: []circuit.Operation{
			{Gate: gates.H, Qubits: []int{0}},
			{Gate: gates.X, Qubits: []int{0}},
		}}}},
		"arity mismatch":    {Slots: []circuit.TimeSlot{{Ops: []circuit.Operation{{Gate: gates.CNOT, Qubits: []int{0}}}}}},
		"nil gate":          {Slots: []circuit.TimeSlot{{Ops: []circuit.Operation{{Qubits: []int{0}}}}}},
		"non-Clifford gate": circuit.New().Add(gates.T, 0),
	}
	for name, c := range cases {
		if _, err := Compile(c, 3); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

// TestCompileSiteLayout checks the error-site emission against the
// ErrorLayer contract on a hand-built circuit: measurement sites precede
// the measurement, gate and pair sites follow their op, and idles fill
// the remaining qubits in ascending order.
func TestCompileSiteLayout(t *testing.T) {
	c := circuit.New()
	s0 := c.AppendSlot()
	c.AddToSlot(s0, gates.CNOT, 0, 1)
	c.AddToSlot(s0, gates.Measure, 2)
	c.Add(gates.H, 3)
	tp, err := Compile(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Site{
		{Slot: 0, Kind: KindPair, A: 0, B: 1},
		{Slot: 0, Kind: KindMeas, A: 2, B: -1},
		{Slot: 0, Kind: KindSingle, A: 3, B: -1}, // idle
		{Slot: 1, Kind: KindSingle, A: 3, B: -1}, // H operand
		{Slot: 1, Kind: KindSingle, A: 0, B: -1}, // idles ascending
		{Slot: 1, Kind: KindSingle, A: 1, B: -1},
		{Slot: 1, Kind: KindSingle, A: 2, B: -1},
	}
	got := tp.Sites()
	if len(got) != len(want) {
		t.Fatalf("got %d sites %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("site %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if tp.NumMeas() != 1 || tp.MeasQubit(0) != 2 {
		t.Fatalf("measurement sites: %d (q %d)", tp.NumMeas(), tp.MeasQubit(0))
	}
}

// FuzzCompile feeds arbitrary (including malformed) circuits to the
// compiler; any input must produce a tape or an error, never a panic.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{0, 0, 1, 1, 2, 3, 9, 0, 1, 13, 4, 4}, uint8(5))
	f.Add([]byte{255, 255, 255, 10, 0, 0}, uint8(1))
	pool := []*gates.Gate{
		gates.I, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.Sdg,
		gates.T, gates.CNOT, gates.CZ, gates.SWAP, gates.Prep, gates.Measure,
		nil,
	}
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		c := circuit.New()
		slot := -1
		for i := 0; i+2 < len(data); i += 3 {
			if slot < 0 || data[i]&1 == 0 {
				slot = c.AppendSlot()
			}
			g := pool[int(data[i]>>1)%len(pool)]
			op := circuit.Operation{Gate: g, Qubits: []int{int(int8(data[i+1]))}}
			if g != nil && g.Arity == 2 {
				op.Qubits = append(op.Qubits, int(int8(data[i+2])))
			}
			c.Slots[slot].Ops = append(c.Slots[slot].Ops, op)
		}
		tape, err := Compile(c, int(width))
		if err != nil {
			return
		}
		// A tape that compiled must replay without panicking.
		x := &tapeExec{n: tape.NumQubits()}
		st := &runState{b: NewBatch(tape.NumQubits()), script: Script{}}
		out := make([]uint64, tape.NumMeas())
		x.runTape(st, tape, make([]uint64, tape.NumMeas()), true, out)
	})
}
