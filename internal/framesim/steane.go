// Steane [[7,1,3]] front-end for the bit-sliced frame executor: the same
// tape compiler, fused noise runs, lane layout and worker sharding as the
// SC17 Engine, driving the Steane layer's ESM/decode cycle instead of the
// ninja star's. The Hamming decode is word-parallel: the two-round
// agreement rule is a handful of boolean plane ops, and the "syndrome
// spells the faulty qubit" rule becomes seven 3-AND match masks — no
// scalar per-lane decode at all.

package framesim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/steane"
)

// SteaneTrace records what one Steane QEC window did for shot lane 0;
// the differential test compares traces against the manually driven
// steane.Layer stack.
type SteaneTrace struct {
	// SX / SZ are the raw X-check and Z-check syndromes of the round.
	SX, SZ int
	// CorrZ / CorrX name the data qubit corrected per error type, or -1.
	CorrZ, CorrX int
	// DiagSX / DiagSZ are the noiseless diagnostic round syndromes.
	DiagSX, DiagSZ int
	// Clean reports whether the diagnostic round was all-zero.
	Clean bool
	// Probe is the probe outcome, or -1 when the shot was not probed.
	Probe int
}

// SteaneEngine is the compiled windows protocol for one logical Steane
// qubit: ESM and probe tapes over the 13 physical qubits, reference
// outcomes, and the Hamming decode wiring. Like Engine it is immutable
// after construction and safe for concurrent runs.
//
// A window is one noisy ESM round (the Steane layer decodes every round;
// the surface-code stack needs two per window), a word-parallel
// two-round-agreement Hamming decode with corrections, then the
// noiseless diagnostic round and probe shared with the SC17 protocol.
type SteaneEngine struct {
	cfg Config
	tapeExec

	esm, probe       *Tape
	esmFused         *fusedProg
	refESM, refProbe []uint64

	// siteOfCheck maps check c (0..2 X checks, 3..5 Z checks) to its ESM
	// measurement site.
	siteOfCheck [steane.NumAncilla]int

	esmOps, esmSlots int
	sc               shortcut

	// sparse enables the whole-batch window skip: when every live lane
	// word is canonical (zero frame, zero carried syndrome, zero
	// expectation) the geometric gap samplers bound how many windows can
	// pass before the next hit, and the engine jumps over all of them at
	// once. The 13-qubit block is too small for the event-driven per-qubit
	// machinery of the SC17 sparse engine to pay off; window-granular gap
	// skipping captures the same low-p asymptotics.
	sparse bool
	// zeroRefs gates frame canonicalization and the sparse skip: both
	// identify "zero frame" with "reference outcomes", which requires the
	// reference words to be zero (they are — the post-init state carries
	// all +1 stabilizers — but the engine verifies rather than assumes).
	zeroRefs bool
}

// NewSteane compiles the Steane windows protocol for one configuration.
// Config fields specific to the surface-code stack (InitRounds,
// DecoderRule, DenseThreshold) are ignored: the Steane layer projects
// the codespace with a single sign-fixed ESM round and always decodes by
// two-round agreement.
func NewSteane(cfg Config) (*SteaneEngine, error) { return newSteane(cfg, false) }

// NewSteaneSparse is NewSteane with the whole-batch window skip enabled.
// Sampled results are bit-identical to NewSteane's — the skip is exact,
// not approximate — it just spends no time on all-clean window spans.
func NewSteaneSparse(cfg Config) (*SteaneEngine, error) { return newSteane(cfg, true) }

func newSteane(cfg Config, sparse bool) (*SteaneEngine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	chpCore := layers.NewChpCore(rand.New(rand.NewSource(cfg.RefSeed)))
	lay := steane.NewLayer(chpCore)
	if err := lay.CreateQubits(1); err != nil {
		return nil, err
	}
	init := circuit.New().Add(gates.Prep, 0)
	if cfg.Observable == ObserveZ {
		init.Add(gates.H, 0)
	}
	if _, err := qpdo.Run(lay, init); err != nil {
		return nil, err
	}

	data, anc := lay.Block(0)
	n := chpCore.NumQubits()
	// The tapes address physical qubits; the decode masks address data
	// indices. With one block on a fresh core they coincide.
	for d := 0; d < steane.NumData; d++ {
		if data[d] != d {
			return nil, fmt.Errorf("framesim: steane data qubit %d placed at %d; expected identity layout", d, data[d])
		}
	}
	for a := 0; a < steane.NumAncilla; a++ {
		if anc[a] != steane.NumData+a {
			return nil, fmt.Errorf("framesim: steane ancilla %d placed at %d; expected identity layout", a, anc[a])
		}
	}

	esmC := lay.ESMCircuit(0)
	probeC := lay.ProbeZLCircuit(0)
	if cfg.Observable == ObserveZ {
		probeC = lay.ProbeXLCircuit(0)
	}
	esm, err := Compile(esmC, n)
	if err != nil {
		return nil, err
	}
	probe, err := Compile(probeC, n)
	if err != nil {
		return nil, err
	}
	if esm.NumMeas() != steane.NumAncilla {
		return nil, fmt.Errorf("framesim: steane ESM has %d measurement sites; want %d", esm.NumMeas(), steane.NumAncilla)
	}

	e := &SteaneEngine{
		cfg:      cfg,
		tapeExec: tapeExec{n: n, chanParams: newChanParams(cfg.Model)},
		esm:      esm,
		probe:    probe,
		esmOps:   esmC.NumOps(),
		esmSlots: esmC.NumSlots(),
		sparse:   sparse,
	}
	var seen [steane.NumAncilla]bool
	for i := 0; i < esm.NumMeas(); i++ {
		c := esm.MeasQubit(i) - steane.NumData
		if c < 0 || c >= steane.NumAncilla || seen[c] {
			return nil, fmt.Errorf("framesim: steane ESM site %d measures qubit %d; want each ancilla once", i, esm.MeasQubit(i))
		}
		seen[c] = true
		e.siteOfCheck[c] = i
	}

	tab := chpCore.Tableau()
	if e.refESM, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	again, err := refRun(tab, esm)
	if err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: steane ESM reference outcomes are not stationary")
	}
	if e.refProbe, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if again, err = refRun(tab, probe); err != nil {
		return nil, err
	}
	if !equalWords(e.refProbe, again) {
		return nil, fmt.Errorf("framesim: steane probe reference outcome is not stationary")
	}
	if again, err = refRun(tab, esm); err != nil {
		return nil, err
	}
	if !equalWords(e.refESM, again) {
		return nil, fmt.Errorf("framesim: steane probe disturbs the ESM reference outcomes")
	}
	e.sc = newShortcut(esm, probe, n, e.refProbe)
	e.esmFused = fuseTape(esm, e.corrPair)
	e.zeroRefs = e.refProbe[probe.NumMeas()-1] == 0
	for _, v := range e.refESM {
		if v != 0 {
			e.zeroRefs = false
		}
	}
	return e, nil
}

// ESMSites lists the error-injection sites of one ESM round (Round 0 in
// every returned Site); scripted callers offset Round per execution. Each
// Steane window consumes one round, so a W-window scripted run draws
// rounds 0..W-1.
func (e *SteaneEngine) ESMSites() []Site { return e.esm.Sites() }

// RunBatch runs up to 64 Monte-Carlo shots in one word; semantics match
// Engine.RunBatch.
func (e *SteaneEngine) RunBatch(seed int64, shots int) ([]ShotResult, error) {
	var seeds [1]int64
	seeds[0] = seed
	return e.RunBatchWide(seeds[:], shots)
}

// RunBatchWide runs up to 64·len(seeds) shots in one W-wide batch; word
// k is an independent run seeded by seeds[k], bit-identical to a width-1
// RunBatch from the same seed. Semantics match Engine.RunBatchWide.
func (e *SteaneEngine) RunBatchWide(seeds []int64, shots int) ([]ShotResult, error) {
	if err := checkWide(seeds, shots); err != nil {
		return nil, err
	}
	st := newRunState(&e.tapeExec, e.esm.NumMeas(), e.probe.NumMeas(), seeds, nil)
	res := make([]ShotResult, 64*len(seeds))
	e.runWindows(st, res, shots, 0, nil)
	return res[:shots], nil
}

// RunBatchWideWorkers is RunBatchWide with the lane words sharded across
// up to `workers` goroutines in fixed contiguous blocks; the folded
// result is bit-identical for any worker count.
func (e *SteaneEngine) RunBatchWideWorkers(seeds []int64, shots, workers int) ([]ShotResult, error) {
	if err := checkWide(seeds, shots); err != nil {
		return nil, err
	}
	w := len(seeds)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > w {
		workers = w
	}
	if workers == 1 {
		return e.RunBatchWide(seeds, shots)
	}
	res := make([]ShotResult, shots)
	block := (w + workers - 1) / workers
	var wg sync.WaitGroup
	for c0 := 0; c0 < w; c0 += block {
		c1 := c0 + block
		if c1 > w {
			c1 = w
		}
		chunkShots := shots - c0*64
		if chunkShots > (c1-c0)*64 {
			chunkShots = (c1 - c0) * 64
		}
		wg.Add(1)
		go func(c0, c1, chunkShots int) {
			defer wg.Done()
			st := newRunState(&e.tapeExec, e.esm.NumMeas(), e.probe.NumMeas(), seeds[c0:c1], nil)
			sub := make([]ShotResult, 64*(c1-c0))
			e.runWindows(st, sub, chunkShots, 0, nil)
			copy(res[c0*64:c0*64+chunkShots], sub[:chunkShots])
		}(c0, c1, chunkShots)
	}
	wg.Wait()
	return res, nil
}

// RunScripted runs exactly `windows` QEC windows of a single shot with
// the Script's errors injected instead of sampled noise, recording a
// SteaneTrace per window. Like the SC17 scripted mode (and following the
// sparse engine's precedent) canonicalization and window skipping are
// disabled, so the traces and the frame state after every round are
// bit-identical to what the QPDO stack observes.
func (e *SteaneEngine) RunScripted(windows int, script Script) ([]SteaneTrace, ShotResult, error) {
	if windows < 0 {
		return nil, ShotResult{}, fmt.Errorf("framesim: negative window count %d", windows)
	}
	if script == nil {
		script = Script{}
	}
	var seeds [1]int64
	st := newRunState(&e.tapeExec, e.esm.NumMeas(), e.probe.NumMeas(), seeds[:], script)
	res := make([]ShotResult, 64)
	traces := make([]SteaneTrace, 0, windows)
	e.runWindows(st, res, 1, windows, &traces)
	return traces, res[0], nil
}

// runWindows drives the Steane window loop; structure and lane/word
// semantics match Engine.runWindows (dead-word skip, scripted lane 0).
// st.carryA[k][0..2] / st.carryB[k][0..2] hold the carried X-check /
// Z-check syndrome planes of the two-round agreement rule.
func (e *SteaneEngine) runWindows(st *runState, res []ShotResult, shots, scriptWindows int, traces *[]SteaneTrace) {
	W := st.w
	for k := 0; k < W; k++ {
		lanes := shots - 64*k
		if lanes >= 64 {
			st.active[k] = ^uint64(0)
		} else if lanes > 0 {
			st.active[k] = uint64(1)<<uint(lanes) - 1
		}
	}
	// Trial-space spans of one ESM round per channel, for the sparse skip.
	spanSingle := int64(len(e.esmFused.singleQ)) << 6
	spanMeas := int64(len(e.esmFused.measQ)) << 6
	spanPair := int64(len(e.esmFused.pairA)) << 6
	prevValid := false
	var tr SteaneTrace
	w := 0
	for {
		if st.script == nil {
			live := uint64(0)
			for k := 0; k < W; k++ {
				live |= st.active[k]
			}
			if live == 0 || w >= e.cfg.MaxWindows {
				break
			}
		} else if w >= scriptWindows {
			break
		}

		// Sparse whole-batch skip: when every live word is canonical (all
		// plane, carried-syndrome and expectation bits zero) a window with
		// no channel hits changes nothing — frame stays zero, syndromes
		// stay zero, diagnostics stay clean, the probe matches the
		// expectation. The gap samplers bound how many hit-free windows
		// lie ahead; jump them all, advancing each live word's samplers by
		// the skipped trial spans (bit-identical to running the empty
		// windows: no gap is drawn between hits).
		if st.script == nil && e.sparse && e.zeroRefs {
			nSkip := int64(e.cfg.MaxWindows - w)
			for k := 0; k < W && nSkip > 0; k++ {
				if st.active[k] == 0 {
					continue
				}
				if st.expected[k] != 0 {
					nSkip = 0
					break
				}
				carry := uint64(0)
				for c := 0; c < 3; c++ {
					carry |= st.carryA[k][c] | st.carryB[k][c]
				}
				if carry != 0 {
					nSkip = 0
					break
				}
				dirty := uint64(0)
				for q := 0; q < e.n; q++ {
					dirty |= st.b.fx[q*W+k] | st.b.fz[q*W+k]
				}
				if dirty != 0 {
					nSkip = 0
					break
				}
				l := &st.lanes[k]
				if spanSingle > 0 && l.single.p > 0 && l.single.next/spanSingle < nSkip {
					nSkip = l.single.next / spanSingle
				}
				if spanMeas > 0 && l.meas.p > 0 && l.meas.next/spanMeas < nSkip {
					nSkip = l.meas.next / spanMeas
				}
				if spanPair > 0 && l.pair.p > 0 && l.pair.next/spanPair < nSkip {
					nSkip = l.pair.next / spanPair
				}
			}
			if nSkip > 0 {
				for k := 0; k < W; k++ {
					if st.active[k] == 0 {
						continue
					}
					l := &st.lanes[k]
					if l.single.p > 0 {
						l.single.next -= nSkip * spanSingle
					}
					if l.meas.p > 0 {
						l.meas.next -= nSkip * spanMeas
					}
					if l.pair.p > 0 {
						l.pair.next -= nSkip * spanPair
					}
				}
				w += int(nSkip)
				st.round += int(nSkip)
				// A skipped window is an executed all-zero window: the
				// two-round state becomes valid with zero carried syndrome.
				prevValid = true
				continue
			}
		}
		w++

		// One noisy ESM round: the fused program in sampled mode, the
		// site-exact tape for scripted injection.
		if st.script == nil {
			e.runFused(st, e.esmFused, e.refESM, st.r1)
		} else {
			e.runTape(st, e.esm, e.refESM, true, st.r1)
		}
		st.round++

		// Word-parallel two-round-agreement Hamming decode per lane word.
		for k := 0; k < W; k++ {
			if st.script == nil && st.active[k] == 0 {
				continue
			}
			var sx, sz [3]uint64
			for c := 0; c < 3; c++ {
				sx[c] = st.r1[e.siteOfCheck[c]*W+k]
				sz[c] = st.r1[e.siteOfCheck[3+c]*W+k]
			}
			px := &st.carryA[k]
			pz := &st.carryB[k]
			var corrZ, corrX uint64
			if prevValid {
				// Lanes whose nonzero syndrome repeats the previous round
				// decode now; the Hamming syndrome spells the data qubit.
				agreeX := ^((sx[0] ^ px[0]) | (sx[1] ^ px[1]) | (sx[2] ^ px[2]))
				agreeZ := ^((sz[0] ^ pz[0]) | (sz[1] ^ pz[1]) | (sz[2] ^ pz[2]))
				corrZ = agreeX & (sx[0] | sx[1] | sx[2])
				corrX = agreeZ & (sz[0] | sz[1] | sz[2])
				for d := 0; d < steane.NumData; d++ {
					pos := uint(d + 1)
					mz, mx := corrZ, corrX
					for c := 0; c < 3; c++ {
						if pos>>uint(c)&1 == 1 {
							mz &= sx[c]
							mx &= sz[c]
						} else {
							mz &^= sx[c]
							mx &^= sz[c]
						}
					}
					if mz != 0 {
						st.b.fz[d*W+k] ^= mz
					}
					if mx != 0 {
						st.b.fx[d*W+k] ^= mx
					}
				}
				// Corrected lanes clear their carried syndrome; the rest
				// carry the fresh round.
				for c := 0; c < 3; c++ {
					px[c] = sx[c] &^ corrZ
					pz[c] = sz[c] &^ corrX
				}
			} else {
				for c := 0; c < 3; c++ {
					px[c], pz[c] = sx[c], sz[c]
				}
			}
			// Correction accounting: one slot per correcting lane; a
			// Z and an X on the same qubit merge into one Y gate (equal
			// syndromes name the same qubit).
			if hasCorr := corrZ | corrX; hasCorr != 0 {
				eqSyn := ^((sx[0] ^ sz[0]) | (sx[1] ^ sz[1]) | (sx[2] ^ sz[2]))
				merged := corrZ & corrX & eqSyn
				for m := hasCorr & st.active[k]; m != 0; m &= m - 1 {
					j := bits.TrailingZeros64(m)
					r := &res[k*64+j]
					g := int(corrZ>>uint(j)&1) + int(corrX>>uint(j)&1) - int(merged>>uint(j)&1)
					r.CorrectionGates += g
					r.CorrectionSlots++
				}
				if st.script == nil && !e.cfg.WithPauliFrame {
					e.sampleCorrectionSlot(st, k, hasCorr)
				}
			}
			if k == 0 && traces != nil {
				sxv := int(sx[0]&1) | int(sx[1]&1)<<1 | int(sx[2]&1)<<2
				szv := int(sz[0]&1) | int(sz[1]&1)<<1 | int(sz[2]&1)<<2
				tr = SteaneTrace{SX: sxv, SZ: szv, CorrZ: -1, CorrX: -1, Probe: -1}
				if corrZ&1 == 1 {
					tr.CorrZ = steane.DecodeSyndrome(sxv)
				}
				if corrX&1 == 1 {
					tr.CorrX = steane.DecodeSyndrome(szv)
				}
			}
		}
		prevValid = true

		// Noiseless diagnostic round and probe, via the compile-time
		// linear shortcut or the tape fallback; only all-clean lanes are
		// probed.
		nm := e.esm.NumMeas()
		probeBase := (e.probe.NumMeas() - 1) * W
		if !e.sc.ok {
			e.runTape(st, e.esm, e.refESM, false, st.diag)
			e.runTape(st, e.probe, e.refProbe, false, st.probeOut)
		}
		for k := 0; k < W; k++ {
			if st.script == nil && st.active[k] == 0 {
				continue
			}
			clean := ^uint64(0)
			var out uint64
			if e.sc.ok {
				for i := 0; i < nm; i++ {
					v := e.refESM[i]
					for m := e.sc.diagX[i]; m != 0; m &= m - 1 {
						v ^= st.b.fx[bits.TrailingZeros64(m)*W+k]
					}
					for m := e.sc.diagZ[i]; m != 0; m &= m - 1 {
						v ^= st.b.fz[bits.TrailingZeros64(m)*W+k]
					}
					st.diag[i*W+k] = v
					clean &^= v
				}
				out = e.sc.probeRef
				for m := e.sc.probeX; m != 0; m &= m - 1 {
					out ^= st.b.fx[bits.TrailingZeros64(m)*W+k]
				}
				for m := e.sc.probeZ; m != 0; m &= m - 1 {
					out ^= st.b.fz[bits.TrailingZeros64(m)*W+k]
				}
			} else {
				for i := 0; i < nm; i++ {
					clean &^= st.diag[i*W+k]
				}
				out = st.probeOut[probeBase+k]
			}
			flips := (out ^ st.expected[k]) & clean
			st.expected[k] ^= flips
			for m := flips & st.active[k]; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				r := &res[k*64+j]
				r.LogicalErrors++
				if st.script == nil && r.LogicalErrors >= e.cfg.MaxLogicalErrors {
					st.active[k] &^= uint64(1) << uint(j)
					r.Windows = w
				}
			}
			// Frame canonicalization (sampled mode only): a clean lane's
			// frame produces no syndrome and its probe effect has just
			// been folded into the expectation, so replacing frame and
			// expectation by zero is unobservable — syndromes were going
			// to read zero either way, and future probes of the zeroed
			// frame read the (zero) reference, matching the zeroed
			// expectation. This is what makes long quiet stretches
			// canonical and therefore skippable in sparse mode; applying
			// it in dense mode too keeps the two modes bit-identical.
			if st.script == nil && e.zeroRefs {
				if canon := clean; canon != 0 {
					for q := 0; q < e.n; q++ {
						st.b.fx[q*W+k] &^= canon
						st.b.fz[q*W+k] &^= canon
					}
					st.expected[k] &^= canon
				}
			}
			if k == 0 && traces != nil {
				dsx := int(st.diag[e.siteOfCheck[0]*W]&1) |
					int(st.diag[e.siteOfCheck[1]*W]&1)<<1 |
					int(st.diag[e.siteOfCheck[2]*W]&1)<<2
				dsz := int(st.diag[e.siteOfCheck[3]*W]&1) |
					int(st.diag[e.siteOfCheck[4]*W]&1)<<1 |
					int(st.diag[e.siteOfCheck[5]*W]&1)<<2
				tr.DiagSX, tr.DiagSZ = dsx, dsz
				tr.Clean = clean&1 == 1
				if tr.Clean {
					tr.Probe = int(out & 1)
				}
			}
		}
		if traces != nil {
			*traces = append(*traces, tr)
		}
	}
	for idx := 0; idx < shots; idx++ {
		k, j := idx/64, idx%64
		r := &res[idx]
		if st.active[k]>>uint(j)&1 == 1 {
			r.Windows = w
		}
		r.InjectedErrors = st.inj[idx]
		r.OpsIssued = r.Windows*e.esmOps + r.CorrectionGates
		r.SlotsIssued = r.Windows*e.esmSlots + r.CorrectionSlots
		r.OpsExecuted = r.OpsIssued
		r.SlotsExecuted = r.SlotsIssued
		if e.cfg.WithPauliFrame {
			r.OpsExecuted -= r.CorrectionGates
			r.SlotsExecuted -= r.CorrectionSlots
		}
	}
}
