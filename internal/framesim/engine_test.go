package framesim_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/framesim"
	"repro/internal/layers"
)

func TestEngineRejectsBadConfig(t *testing.T) {
	if _, err := framesim.New(framesim.Config{Model: layers.Model{PX: -1}}); err == nil {
		t.Fatal("negative error rate accepted")
	}
	e, err := framesim.New(framesim.Config{Model: layers.Depolarizing(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunBatch(1, 0); err == nil {
		t.Fatal("zero-shot batch accepted")
	}
	if _, err := e.RunBatch(1, 65); err == nil {
		t.Fatal("65-shot batch accepted")
	}
	if _, _, err := e.RunScripted(-1, nil); err == nil {
		t.Fatal("negative window count accepted")
	}
}

// TestEngineZeroNoise checks the degenerate channel: with p = 0 no lane
// may ever see a logical error or a correction, and the run must hit the
// window cap with clean accounting.
func TestEngineZeroNoise(t *testing.T) {
	e, err := framesim.New(framesim.Config{Model: layers.Model{}, MaxWindows: 50})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.RunBatch(99, 64)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range rs {
		if r.LogicalErrors != 0 || r.CorrectionGates != 0 || r.InjectedErrors != 0 {
			t.Fatalf("lane %d saw activity without noise: %+v", j, r)
		}
		if r.Windows != 50 {
			t.Fatalf("lane %d ran %d windows, want 50", j, r.Windows)
		}
		if r.OpsIssued != 50*2*48 || r.SlotsIssued != 50*2*8 {
			t.Fatalf("lane %d accounting: %+v", j, r)
		}
	}
}

// TestStatisticalAgreement runs the same LER point on the QPDO stack and
// on the frame engine and requires the mean LERs to agree within their
// combined Monte-Carlo error. The seeds are fixed, so the test is
// deterministic; the 5σ gate keeps it meaningful without flakiness.
func TestStatisticalAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo comparison")
	}
	for _, tc := range []struct {
		name string
		et   experiments.ErrorType
		pf   bool
	}{
		{"X/nopf", experiments.LogicalX, false},
		{"X/pf", experiments.LogicalX, true},
		{"Z/nopf", experiments.LogicalZ, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := experiments.SweepConfig{
				PERs:             []float64{6e-3},
				Samples:          48,
				ErrorType:        tc.et,
				WithPauliFrame:   tc.pf,
				MaxLogicalErrors: 12,
				BaseSeed:         2024,
			}
			stack, err := experiments.RunSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = experiments.EngineFrameSim
			frame, err := experiments.RunSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ms, mf := stack[0].MeanLER(), frame[0].MeanLER()
			n := float64(cfg.Samples)
			sigma := math.Sqrt((stack[0].StdLER()*stack[0].StdLER() + frame[0].StdLER()*frame[0].StdLER()) / n)
			if d := math.Abs(ms - mf); d > 5*sigma {
				t.Errorf("mean LER: stack %.4g, frame %.4g, |Δ|=%.3g > 5σ=%.3g", ms, mf, d, 5*sigma)
			}
			if mf <= 0 {
				t.Errorf("frame engine saw no logical errors at PER %g", cfg.PERs[0])
			}
		})
	}
}

// TestFrameSweepWorkerDeterminism requires bit-identical sweep results
// for any worker count: batch words are fixed work units with
// ShardSeed-derived RNGs.
func TestFrameSweepWorkerDeterminism(t *testing.T) {
	base := experiments.SweepConfig{
		Engine:           experiments.EngineFrameSim,
		PERs:             []float64{4e-3, 8e-3},
		Samples:          130, // 3 words: 64 + 64 + 2
		MaxLogicalErrors: 4,
		BaseSeed:         77,
	}
	var got [][]experiments.PointResult
	for _, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		pts, err := experiments.RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pts)
	}
	for i := 1; i < len(got); i++ {
		if !reflect.DeepEqual(got[0], got[i]) {
			t.Fatalf("sweep results differ between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
	}
	for _, pt := range got[0] {
		if len(pt.LERs) != base.Samples {
			t.Fatalf("point %g has %d samples, want %d", pt.PER, len(pt.LERs), base.Samples)
		}
	}
}

// TestRunBatchConcurrentSafe runs batches of the same engine from many
// goroutines (the sweep sharing pattern) and checks results match a
// sequential rerun; the race detector does the rest.
func TestRunBatchConcurrentSafe(t *testing.T) {
	e, err := framesim.New(framesim.Config{
		Model:            layers.Depolarizing(8e-3),
		MaxLogicalErrors: 3,
		RefSeed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([][]framesim.ShotResult, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			rs, err := e.RunBatch(int64(g), 64)
			if err == nil {
				results[g] = rs
			}
			done <- g
		}(g)
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		again, err := e.RunBatch(int64(g), 64)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[g], again) {
			t.Fatalf("concurrent batch %d differs from sequential rerun", g)
		}
	}
}
