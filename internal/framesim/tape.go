package framesim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// opcode is one instruction of the flat tape a circuit compiles to.
type opcode uint8

const (
	// Clifford conjugation ops (frame + reference).
	opH opcode = iota
	opS
	opSdg
	opCNOT
	opCZ
	opSWAP
	// Physical Pauli gates: applied in both the reference and every shot,
	// so they commute through the frame — reference-only instructions.
	opX
	opY
	opZ
	// Initialization and measurement.
	opPrep
	opMeas
	// Error-injection sites, in the exact per-slot order of
	// layers.ErrorLayer: a pre-measurement X site per measurement, a
	// channel site per gate operand or gate pair, and one idle site per
	// untouched qubit after the slot's gates.
	opErrSingle
	opErrMeas
	opErrPair
	// Fused sampled-noise runs (engine-internal; never emitted by
	// Compile): a maximal per-slot sequence of same-channel error sites
	// collapsed into one op, so the geometric gap sampler skips the whole
	// run in one comparison instead of one per site. a is the start index
	// into the fused program's site array, b the site count.
	opRunSingle
	opRunMeas
	opRunPair
)

// tapeOp is one tape instruction. a (and b for two-qubit codes) are
// physical qubit operands; for opMeas, b is the measurement site index.
// slot is the time-slot index of the source circuit, which keys scripted
// error injection.
type tapeOp struct {
	code opcode
	slot int16
	a, b int32
}

// Tape is a circuit compiled to a flat instruction stream: gate opcodes,
// qubit operands, and explicit error-injection and measurement sites.
// One Tape is compiled per protocol circuit and replayed every round by
// both the bit-sliced frame executor and the noiseless CHP reference.
type Tape struct {
	n    int
	ops  []tapeOp
	meas []int // meas[i] = qubit measured at site i, in tape order
}

// NumQubits returns the width the tape was compiled for.
func (t *Tape) NumQubits() int { return t.n }

// NumMeas returns the number of measurement sites.
func (t *Tape) NumMeas() int { return len(t.meas) }

// MeasQubit returns the qubit measured at site i.
func (t *Tape) MeasQubit(i int) int { return t.meas[i] }

// NumOps returns the number of tape instructions (including error sites).
func (t *Tape) NumOps() int { return len(t.ops) }

// Sites lists the error-injection sites of one execution of the tape in
// tape order, with Round set to 0; callers replaying the tape as round r
// of a protocol offset Round themselves. Used by the differential tests
// to enumerate the legal injection points.
func (t *Tape) Sites() []Site {
	var out []Site
	for _, op := range t.ops {
		switch op.code {
		case opErrSingle:
			out = append(out, Site{Slot: int(op.slot), Kind: KindSingle, A: int(op.a), B: -1})
		case opErrMeas:
			out = append(out, Site{Slot: int(op.slot), Kind: KindMeas, A: int(op.a), B: -1})
		case opErrPair:
			out = append(out, Site{Slot: int(op.slot), Kind: KindPair, A: int(op.a), B: int(op.b)})
		}
	}
	return out
}

// Compile flattens a circuit into a tape for a stack of n qubits. The
// error-site emission mirrors layers.ErrorLayer exactly: measurements get
// a pre-slot X-flip site; two-qubit gates get a (potentially correlated)
// pair site after the slot; every other operation — reset, single-qubit
// gates, explicit identities — gets a single-qubit channel site per
// operand after the slot; and every qubit not touched by the slot idles
// through one single-qubit channel site. Within a slot the operations act
// on disjoint qubits (enforced by validation), so interleaving each op's
// sites with the op itself is equivalent to the layer's pre/post slots.
//
// Compile returns an error — never panics — on malformed input: qubit
// collisions within a slot, out-of-range operands, or gates outside the
// Clifford+Pauli+Prep/Measure set the frame can propagate.
func Compile(c *circuit.Circuit, n int) (*Tape, error) {
	if c == nil {
		return nil, fmt.Errorf("framesim: cannot compile a nil circuit")
	}
	if n <= 0 {
		return nil, fmt.Errorf("framesim: cannot compile for %d qubits", n)
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("framesim: %d qubits exceeds the tape operand range", n)
	}
	if len(c.Slots) > 1<<15-1 {
		return nil, fmt.Errorf("framesim: %d time slots exceeds the tape slot range", len(c.Slots))
	}
	if err := qpdo.Validate(c, n); err != nil {
		return nil, err
	}
	t := &Tape{n: n}
	busy := make([]bool, n)
	for si := range c.Slots {
		slot := &c.Slots[si]
		for oi := range slot.Ops {
			op := &slot.Ops[oi]
			if op.Gate == nil {
				return nil, fmt.Errorf("framesim: slot %d op %d has no gate", si, oi)
			}
			if op.Gate.Arity != len(op.Qubits) {
				return nil, fmt.Errorf("framesim: slot %d op %d: gate %s wants %d qubits, got %d",
					si, oi, op.Gate.Name, op.Gate.Arity, len(op.Qubits))
			}
			for _, q := range op.Qubits {
				busy[q] = true
			}
			s16 := int16(si)
			switch op.Gate.Name {
			case gates.GateH:
				t.emit(opH, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateS:
				t.emit(opS, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateSdg:
				t.emit(opSdg, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateCNOT:
				t.emit(opCNOT, s16, op.Qubits[0], op.Qubits[1])
				t.emit(opErrPair, s16, op.Qubits[0], op.Qubits[1])
			case gates.GateCZ:
				t.emit(opCZ, s16, op.Qubits[0], op.Qubits[1])
				t.emit(opErrPair, s16, op.Qubits[0], op.Qubits[1])
			case gates.GateSWAP:
				t.emit(opSWAP, s16, op.Qubits[0], op.Qubits[1])
				t.emit(opErrPair, s16, op.Qubits[0], op.Qubits[1])
			case gates.GateX:
				t.emit(opX, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateY:
				t.emit(opY, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateZ:
				t.emit(opZ, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.GateI:
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.PrepZ:
				t.emit(opPrep, s16, op.Qubits[0], -1)
				t.emit(opErrSingle, s16, op.Qubits[0], -1)
			case gates.MeasZ:
				t.emit(opErrMeas, s16, op.Qubits[0], -1)
				t.emit(opMeas, s16, op.Qubits[0], len(t.meas))
				t.meas = append(t.meas, op.Qubits[0])
			default:
				return nil, fmt.Errorf("framesim: gate %s has no frame propagation rule", op.Gate.Name)
			}
		}
		// Idle sites for the qubits the slot did not touch, ascending.
		for q := 0; q < n; q++ {
			if busy[q] {
				busy[q] = false
				continue
			}
			t.emit(opErrSingle, int16(si), q, -1)
		}
	}
	return t, nil
}

func (t *Tape) emit(code opcode, slot int16, a, b int) {
	t.ops = append(t.ops, tapeOp{code: code, slot: slot, a: int32(a), b: int32(b)})
}
