package framesim

import (
	"math"
	"math/rand"
)

// sampler draws hit positions for one Bernoulli error channel across the
// flattened trial space (site × 64 shots) with geometric gap sampling:
// instead of one uniform draw per (site, shot) trial, the sampler draws
// the gap to the next hit — Geometric(p) — and skips everything in
// between. At the physical error rates of the LER sweeps (p ~ 1e-3) this
// replaces thousands of RNG calls per ESM round with a handful.
//
// The gap is drawn by quantizing an exponential: if E ~ Exp(1), then
// ⌊E/λ⌋ with λ = −log(1−p) is exactly Geometric(p) on {0, 1, ...} — the
// same inversion formula as ⌊log(1−u)/log(1−p)⌋ with E = −log(1−u), but
// rand.ExpFloat64's ziggurat draw costs a fraction of a log evaluation,
// and the gap draw is the single hottest RNG operation of a sweep.
//
// next is the offset of the next hit inside the current 64-trial word;
// the executor consumes one word per error site and carries the residual
// offset to the following site via advanceWord.
type sampler struct {
	p    float64
	invL float64 // 1/λ = −1/log(1 − p), the geometric gap scale
	next int64
}

// disabledNext parks a zero-probability sampler beyond every word without
// risking overflow when advanceWord would decrement it.
const disabledNext = int64(math.MaxInt64 / 2)

// newSampler primes a sampler, consuming one gap draw when p > 0.
func newSampler(p float64, rng *rand.Rand) sampler {
	s := sampler{p: p}
	if p <= 0 {
		s.next = disabledNext
		return s
	}
	if p < 1 {
		s.invL = -1 / math.Log1p(-p)
	}
	s.next = s.gap(rng) - 1
	return s
}

// gap draws the 1-based distance to the next hit: Geometric(p) via the
// quantized exponential, ⌊Exp(1)·invL⌋ + 1.
func (s *sampler) gap(rng *rand.Rand) int64 {
	g := rng.ExpFloat64() * s.invL
	if g >= float64(disabledNext) {
		return disabledNext
	}
	return int64(g) + 1
}

// advanceWord moves the trial window past the 64 trials of one site.
func (s *sampler) advanceWord() {
	if s.p > 0 {
		s.next -= 64
	}
}

// siteOfNextHit returns how many whole 64-trial sites lie before the
// next hit: the hit lands inside site ordinal siteOfNextHit() counted
// from the current stream position. Between sites the stream position is
// always on a word boundary, so this is an exact floor division.
//
//qa:hotpath
func (s *sampler) siteOfNextHit() int64 {
	if s.p <= 0 {
		return disabledNext
	}
	return s.next >> 6
}

// skipSites advances the trial stream past k whole sites (64·k trials)
// without visiting them. Legal only when no hit lands inside the skipped
// span (the caller checks siteOfNextHit); the sampler state afterwards is
// bit-identical to executing k empty word loops.
//
//qa:hotpath
func (s *sampler) skipSites(k int) {
	if s.p > 0 {
		s.next -= 64 * int64(k)
	}
}

// pairTable lists the 15 equally likely correlated two-qubit error pairs
// in the order of layers.twoQubitErrorTable: ({I,X,Y,Z}² minus II),
// first operand outermost.
var pairTable = func() [15][2]PauliErr {
	set := [4]PauliErr{ErrNone, ErrX, ErrY, ErrZ}
	var out [15][2]PauliErr
	i := 0
	for _, a := range set {
		for _, b := range set {
			if a == ErrNone && b == ErrNone {
				continue
			}
			out[i] = [2]PauliErr{a, b}
			i++
		}
	}
	return out
}()
