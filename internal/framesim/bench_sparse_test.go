package framesim_test

import (
	"fmt"
	"testing"

	"repro/internal/framesim"
	"repro/internal/layers"
)

// benchEngineBatch runs 64-shot RunBatch words on one engine at a fixed
// PER with a bounded window budget — the same seeds and the same
// statistical target (MaxWindows windows per shot) for both engines, so
// the ns/op ratio is the dense-vs-sparse wall-clock speedup recorded in
// BENCH_sparse.json. The window budget, not MaxLogicalErrors, terminates
// every shot: at PER 1e-5 a logical-error target would never be reached.
func benchEngineBatch(b *testing.B, sparse bool, per float64) {
	cfg := framesim.Config{
		Observable:       framesim.ObserveX,
		Model:            layers.Depolarizing(per),
		MaxWindows:       2000,
		MaxLogicalErrors: 1 << 30,
		RefSeed:          42,
	}
	var run func(seed int64, shots int) ([]framesim.ShotResult, error)
	if sparse {
		s, err := framesim.NewSparse(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run = s.RunBatch
	} else {
		e, err := framesim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run = e.RunBatch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(int64(i), 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseBatch / BenchmarkFrameSimDenseBatch are the PR-7
// speedup pair at the PERs the paper's low-error-rate claims live at.
func BenchmarkSparseBatch(b *testing.B) {
	for _, per := range []float64{1e-3, 1e-4, 1e-5} {
		b.Run(fmt.Sprintf("per=%.0e", per), func(b *testing.B) { benchEngineBatch(b, true, per) })
	}
}

func BenchmarkFrameSimDenseBatch(b *testing.B) {
	for _, per := range []float64{1e-3, 1e-4, 1e-5} {
		b.Run(fmt.Sprintf("per=%.0e", per), func(b *testing.B) { benchEngineBatch(b, false, per) })
	}
}
