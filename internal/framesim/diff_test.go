package framesim_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/framesim"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// runStackScripted drives the QPDO oracle stack (ninja star → scripted
// injector → CHP tableau) through the windows protocol by hand, injecting
// exactly the Script's errors, and records the same per-window trace the
// frame engine emits. The window driving replicates NinjaStarLayer
// .RunWindow with local decoder replicas so the raw syndromes are visible.
func runStackScripted(t *testing.T, obs framesim.Observable, rule decoder.Rule, windows int, script framesim.Script) ([]framesim.WindowTrace, int) {
	t.Helper()
	chpCore := layers.NewChpCore(rand.New(rand.NewSource(12345)))
	inj := framesim.NewInjectLayer(chpCore, script)
	star := surface.NewNinjaStarLayer(inj, surface.Config{
		Ancilla:     surface.AncillaDedicated,
		InitRounds:  3,
		DecoderRule: rule,
	})
	if err := star.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	init := circuit.New().Add(gates.Prep, 0)
	if obs == framesim.ObserveZ {
		init.Add(gates.H, 0)
	}
	if err := qpdo.WithBypass(star, func() error {
		_, err := qpdo.Run(star, init)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if inj.Round != 0 {
		t.Fatalf("injector consumed %d rounds during bypassed init", inj.Round)
	}

	st := star.Star(0)
	lutA := decoder.BuildLUT(surface.XSupports(surface.RotNormal), surface.NumData)
	lutB := decoder.BuildLUT(surface.ZSupports(surface.RotNormal), surface.NumData)
	decA, decB := decoder.NewWindowDecoder(lutA), decoder.NewWindowDecoder(lutB)
	decA.SetRule(rule)
	decB.SetRule(rule)
	gateA, gateB := gates.Z, gates.X
	if st.Rotation == surface.RotRotated {
		gateA, gateB = gates.X, gates.Z
	}
	probe := star.ProbeZL
	if obs == framesim.ObserveZ {
		probe = star.ProbeXL
	}

	expected, errs := 0, 0
	traces := make([]framesim.WindowTrace, 0, windows)
	for w := 0; w < windows; w++ {
		r1, err := star.RunESMRound(0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := star.RunESMRound(0)
		if err != nil {
			t.Fatal(err)
		}
		cmA := uint16(lutA.CorrectionMask(decA.DecodeSyndrome(r1.A, r2.A)))
		cmB := uint16(lutB.CorrectionMask(decB.DecodeSyndrome(r1.B, r2.B)))
		// Correction slot, merged like NinjaStarLayer.correctionCircuit
		// (both components on one qubit → Y).
		if cmA|cmB != 0 {
			c := circuit.New()
			slot := c.AppendSlot()
			for d := 0; d < surface.NumData; d++ {
				bit := uint16(1) << uint(d)
				switch {
				case cmA&bit != 0 && cmB&bit != 0:
					c.AddToSlot(slot, gates.Y, st.Data[d])
				case cmA&bit != 0:
					c.AddToSlot(slot, gateA, st.Data[d])
				case cmB&bit != 0:
					c.AddToSlot(slot, gateB, st.Data[d])
				}
			}
			if err := inj.Add(c); err != nil {
				t.Fatal(err)
			}
			if _, err := inj.Execute(); err != nil {
				t.Fatal(err)
			}
		}
		tr := framesim.WindowTrace{
			R1A: r1.A, R1B: r1.B, R2A: r2.A, R2B: r2.B,
			CorrA: cmA, CorrB: cmB, Probe: -1,
		}
		if err := qpdo.WithBypass(star, func() error {
			diag, err := star.RunESMRound(0)
			if err != nil {
				return err
			}
			tr.DiagA, tr.DiagB = diag.A, diag.B
			tr.Clean = diag.A == 0 && diag.B == 0
			if !tr.Clean {
				return nil
			}
			out, err := probe(0)
			if err != nil {
				return err
			}
			tr.Probe = out
			if out != expected {
				errs++
				expected = out
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	if want := 2 * windows; inj.Round != want {
		t.Fatalf("injector consumed %d rounds, want %d", inj.Round, want)
	}
	return traces, errs
}

// randomScript draws errors over the legal injection sites of `rounds`
// noisy ESM executions: each site independently carries an error with the
// given density. Measurement sites get X flips (the PMeas channel);
// everything else draws uniform non-identity (pairs of) Paulis.
func randomScript(rng *rand.Rand, sites []framesim.Site, rounds int, density float64) framesim.Script {
	paulis := []framesim.PauliErr{framesim.ErrX, framesim.ErrY, framesim.ErrZ}
	script := framesim.Script{}
	for _, site := range sites {
		for r := 0; r < rounds; r++ {
			if rng.Float64() >= density {
				continue
			}
			site.Round = r
			switch site.Kind {
			case framesim.KindMeas:
				script[site] = [2]framesim.PauliErr{framesim.ErrX}
			case framesim.KindPair:
				pp := [2]framesim.PauliErr{
					framesim.PauliErr(rng.Intn(4)),
					framesim.PauliErr(rng.Intn(4)),
				}
				if pp[0] == framesim.ErrNone && pp[1] == framesim.ErrNone {
					pp[0] = paulis[rng.Intn(3)]
				}
				script[site] = pp
			default:
				script[site] = [2]framesim.PauliErr{paulis[rng.Intn(3)]}
			}
		}
	}
	return script
}

// TestDifferentialScripted is the oracle test of the frame engine: for
// both observables, both decoder rules and a range of error densities, a
// scripted error pattern must produce bit-identical per-window traces —
// raw syndromes, decoded corrections, diagnostics, probe outcomes — and
// the same logical error count on the frame engine and on the full QPDO
// stack.
func TestDifferentialScripted(t *testing.T) {
	const windows = 24
	for _, tc := range []struct {
		name    string
		obs     framesim.Observable
		rule    decoder.Rule
		density float64
		seed    int64
	}{
		{"X/agreement/sparse", framesim.ObserveX, decoder.RuleAgreement, 0.004, 1},
		{"X/agreement/dense", framesim.ObserveX, decoder.RuleAgreement, 0.04, 2},
		{"Z/agreement/sparse", framesim.ObserveZ, decoder.RuleAgreement, 0.004, 3},
		{"Z/agreement/dense", framesim.ObserveZ, decoder.RuleAgreement, 0.04, 4},
		{"X/intersection", framesim.ObserveX, decoder.RuleIntersection, 0.02, 5},
		{"Z/intersection", framesim.ObserveZ, decoder.RuleIntersection, 0.02, 6},
		{"X/empty", framesim.ObserveX, decoder.RuleAgreement, 0, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := framesim.New(framesim.Config{
				Observable:  tc.obs,
				DecoderRule: tc.rule,
				Model:       layers.Depolarizing(1e-3), // ignored: scripted
				RefSeed:     7,
			})
			if err != nil {
				t.Fatal(err)
			}
			script := randomScript(rand.New(rand.NewSource(tc.seed)), eng.ESMSites(), 2*windows, tc.density)
			frameTr, frameRes, err := eng.RunScripted(windows, script)
			if err != nil {
				t.Fatal(err)
			}
			stackTr, stackErrs := runStackScripted(t, tc.obs, tc.rule, windows, script)
			if len(frameTr) != windows || len(stackTr) != windows {
				t.Fatalf("trace lengths %d/%d, want %d", len(frameTr), len(stackTr), windows)
			}
			for w := range frameTr {
				if frameTr[w] != stackTr[w] {
					t.Errorf("window %d:\n  frame %+v\n  stack %+v\n  (%d scripted errors)",
						w, frameTr[w], stackTr[w], len(script))
				}
			}
			if frameRes.LogicalErrors != stackErrs {
				t.Errorf("logical errors: frame %d, stack %d", frameRes.LogicalErrors, stackErrs)
			}
			if frameRes.Windows != windows {
				t.Errorf("frame ran %d windows, want %d", frameRes.Windows, windows)
			}
			// Guard against a vacuous pass: non-empty scripts must light up
			// syndromes, and the dense ones must trigger corrections.
			if tc.density > 0 {
				syn := 0
				for _, tr := range frameTr {
					syn += (tr.R1A | tr.R1B | tr.R2A | tr.R2B).Weight()
				}
				if syn == 0 {
					t.Error("script injected errors but no syndrome ever fired")
				}
				if tc.density >= 0.02 && frameRes.CorrectionSlots == 0 {
					t.Error("dense script triggered no corrections")
				}
			}
		})
	}
}
