package framesim_test

import (
	"testing"

	"repro/internal/framesim"
	"repro/internal/layers"
)

// wideRunner abstracts the three engines' wide batch entry points so the
// lane-extraction and worker-invariance properties are pinned uniformly.
type wideRunner struct {
	name    string
	run     func(seeds []int64, shots int) ([]framesim.ShotResult, error)
	workers func(seeds []int64, shots, workers int) ([]framesim.ShotResult, error)
}

func wideRunners(t *testing.T, cfg framesim.Config) []wideRunner {
	t.Helper()
	dense, err := framesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := framesim.NewSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steaneDense, err := framesim.NewSteane(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steaneSparse, err := framesim.NewSteaneSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []wideRunner{
		{"dense", dense.RunBatchWide, dense.RunBatchWideWorkers},
		{"sparse", sparse.RunBatchWide, sparse.RunBatchWideWorkers},
		{"steane", steaneDense.RunBatchWide, steaneDense.RunBatchWideWorkers},
		{"steane-sparse", steaneSparse.RunBatchWide, steaneSparse.RunBatchWideWorkers},
	}
}

func wideSeeds(w int, base int64) []int64 {
	seeds := make([]int64, w)
	for k := range seeds {
		seeds[k] = base + int64(k)
	}
	return seeds
}

// TestWideLaneExtraction is the width-W ↔ width-1 contract on every
// engine: a W-wide batch — including one whose last word is partial —
// must equal the concatenation of W independent single-word batches from
// the same seeds, bit for bit. This is what makes the lane width a pure
// throughput knob in the sweep pipeline.
func TestWideLaneExtraction(t *testing.T) {
	cfg := framesim.Config{
		Model:            layers.Depolarizing(4e-3),
		MaxLogicalErrors: 3,
		MaxWindows:       1200,
		WithPauliFrame:   true,
		RefSeed:          21,
	}
	for _, r := range wideRunners(t, cfg) {
		for _, w := range []int{2, 4, 8} {
			seeds := wideSeeds(w, int64(1000*w))
			// A partial last word exercises the active-mask setup.
			shots := 64*(w-1) + 17
			wide, err := r.run(seeds, shots)
			if err != nil {
				t.Fatal(err)
			}
			if len(wide) != shots {
				t.Fatalf("%s w=%d: %d results, want %d", r.name, w, len(wide), shots)
			}
			for k := 0; k < w; k++ {
				cnt := shots - 64*k
				if cnt > 64 {
					cnt = 64
				}
				one, err := r.run(seeds[k:k+1], cnt)
				if err != nil {
					t.Fatal(err)
				}
				for j, res := range one {
					if res != wide[64*k+j] {
						t.Fatalf("%s w=%d word %d shot %d: wide %+v, single %+v",
							r.name, w, k, j, wide[64*k+j], res)
					}
				}
			}
		}
	}
}

// TestWideWorkerInvariance pins intra-batch sharding: RunBatchWideWorkers
// must fold bit-identically for every worker count at every width,
// including worker counts that do not divide the word count.
func TestWideWorkerInvariance(t *testing.T) {
	cfg := framesim.Config{
		Model:            layers.Depolarizing(6e-3),
		MaxLogicalErrors: 3,
		MaxWindows:       800,
		RefSeed:          35,
	}
	for _, r := range wideRunners(t, cfg) {
		for _, w := range []int{2, 4, 8} {
			seeds := wideSeeds(w, int64(77*w))
			shots := 64 * w
			want, err := r.workers(seeds, shots, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, w, w + 5} {
				got, err := r.workers(seeds, shots, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s w=%d workers=%d shot %d: %+v, serial %+v",
							r.name, w, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}
