// The sparse Pauli-frame engine: the same windows protocol as Engine,
// but propagation cost scales with the number of *errors*, not with the
// circuit. Below pseudo-threshold almost every shot-word is the identity
// frame almost all the time, so the dense engine burns its cycles
// swapping and XORing zero words. This engine tracks the set of qubits
// whose X/Z planes are nonzero (a uint64 population mask — SC17 has 17
// physical qubits) and
//
//   - skips whole windows outright while every frame is zero, jumping the
//     geometric gap samplers straight to the window containing the next
//     hit (a skipped window is pure trial-stream consumption: reference
//     outcomes are all-zero, the decoder sees nothing, no correction
//     fires);
//   - inside a dirty tape, walks only the "events": gate ops touching a
//     dirty qubit and error sites where a sampler lands a hit, skipping
//     every noiseless span in between without touching frame state;
//   - falls back to the dense word-parallel kernels for the rest of a
//     tape when the dirty population crosses DenseThreshold, so above
//     threshold the engine degrades to dense speed instead of event-walk
//     overhead.
//
// One deliberate semantic delta against the dense engine, unobservable
// in the counted statistics (both engines omit reset gauge
// randomization — the randomized Z component would be a stabilizer of
// the evolving reference and can never flip a measured value; here the
// omission is also what keeps clean frames zero, the whole point of
// sparseness):
//
//   - Frame canonicalization. A lane whose diagnostic round is clean has
//     a residual frame in N(S): it commutes with every stabilizer
//     generator, so it can never contribute to a future syndrome, and its
//     only future effect is a fixed flip of every probe outcome — which
//     the protocol has just absorbed into its `expected` tracker. Zeroing
//     the lane's frame *and* its expected bit together is therefore
//     unobservable, and it is what returns the batch to the all-zero
//     state that whole-window skipping needs.
package framesim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
)

// defaultDenseThreshold is the dirty-qubit population at which a tape
// drains densely when Config.DenseThreshold is unset.
const defaultDenseThreshold = 8

// chanSite is one error site of a channel in trial-stream order.
type chanSite struct {
	op int32 // tape op index
	a  int32 // operand qubit
	b  int32 // second operand (correlated pair sites only, else -1)
}

// sparseTape indexes one compiled tape for event-driven execution.
type sparseTape struct {
	t *Tape

	// Per-channel error sites in tape (= trial stream) order. With the
	// uncorrelated model a pair op contributes two consecutive entries to
	// single (operand a, then b); with the correlated model one to pairs.
	single, meas, pairs []chanSite

	// qubitOps[q] lists (ascending) the op indices that must execute when
	// qubit q's planes are nonzero: Cliffords touching q plus q's
	// Prep/Meas. Error sites and reference-only Paulis are absent.
	qubitOps [][]int32

	// singleOrd/measOrd/pairOrd map an op index to the ordinal of its
	// first site in the channel list (-1 elsewhere), aligning channel
	// cursors when execution jumps into the middle of the tape.
	singleOrd, measOrd, pairOrd []int32
}

func indexTape(t *Tape, corrPair bool) *sparseTape {
	ti := &sparseTape{
		t:         t,
		qubitOps:  make([][]int32, t.n),
		singleOrd: make([]int32, len(t.ops)),
		measOrd:   make([]int32, len(t.ops)),
		pairOrd:   make([]int32, len(t.ops)),
	}
	for i := range ti.singleOrd {
		ti.singleOrd[i], ti.measOrd[i], ti.pairOrd[i] = -1, -1, -1
	}
	addQ := func(q int32, i int) {
		ti.qubitOps[q] = append(ti.qubitOps[q], int32(i))
	}
	for i := range t.ops {
		op := &t.ops[i]
		switch op.code {
		case opH, opS, opSdg, opPrep, opMeas:
			addQ(op.a, i)
		case opCNOT, opCZ, opSWAP:
			addQ(op.a, i)
			addQ(op.b, i)
		case opX, opY, opZ:
			// Reference-only: the frame commutes through.
		case opErrSingle:
			ti.singleOrd[i] = int32(len(ti.single))
			ti.single = append(ti.single, chanSite{op: int32(i), a: op.a, b: -1})
		case opErrMeas:
			ti.measOrd[i] = int32(len(ti.meas))
			ti.meas = append(ti.meas, chanSite{op: int32(i), a: op.a, b: -1})
		case opErrPair:
			if corrPair {
				ti.pairOrd[i] = int32(len(ti.pairs))
				ti.pairs = append(ti.pairs, chanSite{op: int32(i), a: op.a, b: op.b})
			} else {
				// Uncorrelated model: operand a's site word, then b's.
				ti.singleOrd[i] = int32(len(ti.single))
				ti.single = append(ti.single, chanSite{op: int32(i), a: op.a, b: -1})
				ti.single = append(ti.single, chanSite{op: int32(i), a: op.b, b: -1})
			}
		}
	}
	return ti
}

// Sparse is the sparse-mode engine: an immutable compiled protocol (the
// embedded dense Engine provides tapes, reference outcomes and decoder
// tables) plus the per-tape event indexes. Like Engine, one Sparse may
// serve many goroutines concurrently.
type Sparse struct {
	e            *Engine
	esmT, probeT *sparseTape

	// Trials per window and channel: two noisy ESM tapes of 64 trials
	// per site. Zero for empty channels.
	tpwSingle, tpwMeas, tpwPair int64

	threshold int
}

// NewSparse compiles the sparse engine for one configuration. It demands
// what the skip algebra needs: at most 64 qubits (the dirty set is one
// word) and all-zero reference outcomes on both tapes (a zero frame then
// yields zero syndromes and a zero probe, so an all-clean window is pure
// trial-stream consumption).
func NewSparse(cfg Config) (*Sparse, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if e.n > 64 {
		return nil, fmt.Errorf("framesim: sparse engine supports at most 64 qubits, protocol uses %d", e.n)
	}
	for i, v := range e.refESM {
		if v != 0 {
			return nil, fmt.Errorf("framesim: sparse engine needs all-zero ESM reference outcomes, site %d reads %#x", i, v)
		}
	}
	for i, v := range e.refProbe {
		if v != 0 {
			return nil, fmt.Errorf("framesim: sparse engine needs an all-zero probe reference, site %d reads %#x", i, v)
		}
	}
	s := &Sparse{
		e:         e,
		esmT:      indexTape(e.esm, e.corrPair),
		probeT:    indexTape(e.probe, e.corrPair),
		threshold: cfg.DenseThreshold,
	}
	if s.threshold <= 0 {
		s.threshold = defaultDenseThreshold
	}
	s.tpwSingle = 2 * 64 * int64(len(s.esmT.single))
	s.tpwMeas = 2 * 64 * int64(len(s.esmT.meas))
	s.tpwPair = 2 * 64 * int64(len(s.esmT.pairs))
	return s, nil
}

// Engine returns the embedded dense engine (shared tapes, references and
// decoder tables), mainly for the differential tests.
func (s *Sparse) Engine() *Engine { return s.e }

// ESMSites lists the error-injection sites of one ESM round, like
// Engine.ESMSites.
func (s *Sparse) ESMSites() []Site { return s.e.ESMSites() }

// scriptHit is one collected scripted injection of the current tape.
type scriptHit struct {
	op     int32
	a, b   int32
	pa, pb PauliErr
}

// sparseRun is the mutable per-run state of a sparse run.
type sparseRun struct {
	b   *Batch
	rng *rand.Rand

	single, meas, pair sampler

	// dirty has bit q set iff qubit q's planes may be nonzero. It is
	// exact after every executed op (execOp refreshes the touched
	// operands; the dense drain recomputes it).
	dirty uint64

	r1, r2, diag, probeOut []uint64

	script Script
	round  int
	active uint64
	inj    [64]int

	// Walker scratch, reset per tape.
	cur        []int32 // per-qubit cursor into qubitOps
	sc, mc, pc int     // sites consumed per channel this tape

	hits []scriptHit // scripted-mode hit list (cold path)
}

func (s *Sparse) newRun(seed int64, script Script) *sparseRun {
	e := s.e
	st := &sparseRun{
		b:        NewBatch(e.n),
		rng:      rand.New(rand.NewSource(seed)),
		script:   script,
		r1:       make([]uint64, e.esm.NumMeas()),
		r2:       make([]uint64, e.esm.NumMeas()),
		diag:     make([]uint64, e.esm.NumMeas()),
		probeOut: make([]uint64, e.probe.NumMeas()),
		cur:      make([]int32, e.n),
	}
	if script == nil {
		st.single = newSampler(e.p, st.rng)
		st.meas = newSampler(e.pMeas, st.rng)
		if e.corrPair {
			st.pair = newSampler(e.p, st.rng)
		}
	}
	return st
}

// RunBatch runs up to 64 Monte-Carlo shots in one word, with the same
// termination and accounting semantics as Engine.RunBatch. The sampled
// results agree with the dense engine in distribution (frame
// canonicalization makes no bitwise promise — see the package comment).
// Safe for concurrent use on one Sparse.
func (s *Sparse) RunBatch(seed int64, shots int) ([]ShotResult, error) {
	if shots < 1 || shots > 64 {
		return nil, fmt.Errorf("framesim: batch width %d outside 1..64", shots)
	}
	st := s.newRun(seed, nil)
	var res [64]ShotResult
	s.runWindows(st, &res, shots, 0, nil)
	return append([]ShotResult(nil), res[:shots]...), nil
}

// RunBatchWide runs up to 64·len(seeds) shots as len(seeds) independent
// width-1 word runs, one per seed, concatenating the per-word results.
// The event-driven walker gains nothing from interleaving words (its
// cost is dominated by per-hit work, not the tape walk), so the wide
// entry point exists for engine-interchangeability: the result slice is
// bit-identical to len(seeds) RunBatch calls — and hence to the dense
// engine's lane-extraction contract for the word seeds.
func (s *Sparse) RunBatchWide(seeds []int64, shots int) ([]ShotResult, error) {
	return s.RunBatchWideWorkers(seeds, shots, 1)
}

// RunBatchWideWorkers is RunBatchWide with the word runs sharded across
// up to `workers` goroutines in fixed contiguous blocks. Word
// independence makes the folded result bit-identical for any worker
// count.
func (s *Sparse) RunBatchWideWorkers(seeds []int64, shots, workers int) ([]ShotResult, error) {
	if err := checkWide(seeds, shots); err != nil {
		return nil, err
	}
	w := len(seeds)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > w {
		workers = w
	}
	res := make([]ShotResult, shots)
	runWord := func(k int) {
		wordShots := shots - 64*k
		if wordShots > 64 {
			wordShots = 64
		}
		st := s.newRun(seeds[k], nil)
		var sub [64]ShotResult
		s.runWindows(st, &sub, wordShots, 0, nil)
		copy(res[64*k:64*k+wordShots], sub[:wordShots])
	}
	if workers == 1 {
		for k := 0; k < w; k++ {
			runWord(k)
		}
		return res, nil
	}
	block := (w + workers - 1) / workers
	var wg sync.WaitGroup
	for c0 := 0; c0 < w; c0 += block {
		c1 := c0 + block
		if c1 > w {
			c1 = w
		}
		wg.Add(1)
		go func(c0, c1 int) {
			defer wg.Done()
			for k := c0; k < c1; k++ {
				runWord(k)
			}
		}(c0, c1)
	}
	wg.Wait()
	return res, nil
}

// RunScripted runs exactly `windows` QEC windows of a single shot with
// the Script's errors injected instead of sampled noise. Scripted mode
// disables canonicalization, so the traces (and the frame state after
// every tape) are bit-identical to Engine.RunScripted — the sparse
// differential tests rely on this.
func (s *Sparse) RunScripted(windows int, script Script) ([]WindowTrace, ShotResult, error) {
	if windows < 0 {
		return nil, ShotResult{}, fmt.Errorf("framesim: negative window count %d", windows)
	}
	if script == nil {
		script = Script{}
	}
	st := s.newRun(0, script)
	var res [64]ShotResult
	traces := make([]WindowTrace, 0, windows)
	s.runWindows(st, &res, 1, windows, &traces)
	return traces, res[0], nil
}

// windowsUntilHit returns how many whole windows fit before any
// channel's next hit lands.
//
//qa:hotpath
func (s *Sparse) windowsUntilHit(st *sparseRun) int64 {
	w := disabledNext
	if st.single.p > 0 && s.tpwSingle > 0 {
		if v := st.single.next / s.tpwSingle; v < w {
			w = v
		}
	}
	if st.meas.p > 0 && s.tpwMeas > 0 {
		if v := st.meas.next / s.tpwMeas; v < w {
			w = v
		}
	}
	if st.pair.p > 0 && s.tpwPair > 0 {
		if v := st.pair.next / s.tpwPair; v < w {
			w = v
		}
	}
	return w
}

// carryZero reports whether a decode carry holds no syndrome bit in any
// lane.
//
//qa:hotpath
func carryZero(c *[4]uint64) bool {
	return c[0]|c[1]|c[2]|c[3] == 0
}

// runWindows drives the sparse window loop; the decode/correction/probe
// plumbing deliberately mirrors Engine.runWindows so the two stay
// comparable line by line.
func (s *Sparse) runWindows(st *sparseRun, res *[64]ShotResult, shots, scriptWindows int, traces *[]WindowTrace) {
	e := s.e
	active := ^uint64(0)
	if shots < 64 {
		active = uint64(1)<<uint(shots) - 1
	}
	var carryA, carryB, decA, decB [4]uint64
	var a1, b1, a2, b2 [4]uint64
	var corrMask [64]uint16
	var expected uint64
	w := 0
	for {
		if st.script == nil {
			if active == 0 || w >= e.cfg.MaxWindows {
				break
			}
			// Whole-window skip: with every frame zero, no decode carry
			// and no pending probe flip, a window is pure trial-stream
			// consumption — jump straight to the window with the next hit.
			if st.dirty == 0 && expected == 0 && carryZero(&carryA) && carryZero(&carryB) {
				skip := s.windowsUntilHit(st)
				if max := int64(e.cfg.MaxWindows - w); skip > max {
					skip = max
				}
				if skip > 0 {
					st.single.skipSites(int(skip) * 2 * len(s.esmT.single))
					st.meas.skipSites(int(skip) * 2 * len(s.esmT.meas))
					st.pair.skipSites(int(skip) * 2 * len(s.esmT.pairs))
					w += int(skip)
					st.round += 2 * int(skip)
					continue
				}
			}
		} else if w >= scriptWindows {
			break
		}
		w++
		st.active = active

		// Two noisy ESM rounds.
		s.runTape(st, s.esmT, e.refESM, true, st.r1)
		st.round++
		s.runTape(st, s.esmT, e.refESM, true, st.r2)
		st.round++
		gather(e, st.r1, 0, 1, &a1, &b1)
		gather(e, st.r2, 0, 1, &a2, &b2)

		nzA := e.decodeGroup(&a1, &a2, &carryA, &decA)
		nzB := e.decodeGroup(&b1, &b2, &carryB, &decB)
		var trA, trB uint16
		for m := nzA; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			cm := uint16(e.lutA.CorrectionMask(synAt(&decA, j)))
			corrMask[j] |= cm
			if j == 0 {
				trA = cm
			}
			applyCorr(st.b, cm, 0, uint64(1)<<uint(j), e.gateAIsZ)
			// Corrections land on data qubits d = mask bit d (identity
			// layout, asserted by New).
			st.dirty |= uint64(cm)
		}
		for m := nzB; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			cm := uint16(e.lutB.CorrectionMask(synAt(&decB, j)))
			corrMask[j] |= cm
			if j == 0 {
				trB = cm
			}
			applyCorr(st.b, cm, 0, uint64(1)<<uint(j), !e.gateAIsZ)
			st.dirty |= uint64(cm)
		}
		var hasCorr uint64
		for m := nzA | nzB; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			if cm := corrMask[j]; cm != 0 {
				hasCorr |= uint64(1) << uint(j)
				if active>>uint(j)&1 == 1 {
					res[j].CorrectionGates += bits.OnesCount16(cm)
					res[j].CorrectionSlots++
				}
				corrMask[j] = 0
			}
		}
		if hasCorr != 0 && st.script == nil && !e.cfg.WithPauliFrame {
			s.sampleCorrectionSlot(st, hasCorr)
		}
		// A correction can cancel the very error it corrects: planes may
		// be zero again. Re-derive the dirty set exactly so the skip path
		// reopens as early as possible.
		s.refreshAll(st)

		// Noiseless diagnostic round; only all-clean lanes are probed.
		s.runTape(st, s.esmT, e.refESM, false, st.diag)
		clean := ^uint64(0)
		for _, v := range st.diag {
			clean &^= v
		}
		s.runTape(st, s.probeT, e.refProbe, false, st.probeOut)
		out := st.probeOut[len(st.probeOut)-1]
		flips := (out ^ expected) & clean
		expected ^= flips
		for m := flips & active; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			res[j].LogicalErrors++
			if st.script == nil && res[j].LogicalErrors >= e.cfg.MaxLogicalErrors {
				active &^= uint64(1) << uint(j)
				res[j].Windows = w
			}
		}

		if st.script == nil && clean != 0 && st.dirty != 0 {
			// Canonicalize clean lanes (see the package comment): their
			// residual frames are in N(S) and their fixed probe flip was
			// just absorbed into expected, so zeroing both is
			// unobservable and restores the skippable all-zero state.
			for m := st.dirty; m != 0; m &= m - 1 {
				q := bits.TrailingZeros64(m)
				st.b.fx[q] &^= clean
				st.b.fz[q] &^= clean
				if st.b.fx[q]|st.b.fz[q] == 0 {
					st.dirty &^= uint64(1) << uint(q)
				}
			}
			expected &^= clean
		}

		if traces != nil {
			var da, db [4]uint64
			gather(e, st.diag, 0, 1, &da, &db)
			tr := WindowTrace{
				R1A: synAt(&a1, 0), R1B: synAt(&b1, 0),
				R2A: synAt(&a2, 0), R2B: synAt(&b2, 0),
				CorrA: trA, CorrB: trB,
				DiagA: synAt(&da, 0), DiagB: synAt(&db, 0),
				Clean: clean&1 == 1,
				Probe: -1,
			}
			if tr.Clean {
				tr.Probe = int(out & 1)
			}
			*traces = append(*traces, tr)
		}
	}
	for j := 0; j < shots; j++ {
		r := &res[j]
		if active>>uint(j)&1 == 1 {
			r.Windows = w
		}
		r.InjectedErrors = st.inj[j]
		r.OpsIssued = r.Windows*2*e.esmOps + r.CorrectionGates
		r.SlotsIssued = r.Windows*2*e.esmSlots + r.CorrectionSlots
		r.OpsExecuted = r.OpsIssued
		r.SlotsExecuted = r.SlotsIssued
		if e.cfg.WithPauliFrame {
			r.OpsExecuted -= r.CorrectionGates
			r.SlotsExecuted -= r.CorrectionSlots
		}
	}
}

// refresh re-derives qubit q's dirty bit from its planes.
//
//qa:hotpath
func (st *sparseRun) refresh(q int) {
	bit := uint64(1) << uint(q)
	if st.b.fx[q]|st.b.fz[q] != 0 {
		st.dirty |= bit
	} else {
		st.dirty &^= bit
	}
}

// refreshAll re-derives the dirty bits of every currently dirty qubit
// (clean qubits cannot have become dirty without an executed op, which
// refreshes them itself).
//
//qa:hotpath
func (s *Sparse) refreshAll(st *sparseRun) {
	for m := st.dirty; m != 0; m &= m - 1 {
		q := bits.TrailingZeros64(m)
		if st.b.fx[q]|st.b.fz[q] == 0 {
			st.dirty &^= uint64(1) << uint(q)
		}
	}
}

// runTape propagates the frames through one tape, visiting only the
// events that can matter: gate ops on dirty qubits and error sites where
// a gap sampler lands a hit. Noiseless spans in between are skipped
// without touching frame state. When the dirty population reaches the
// density threshold the remainder of the tape drains densely.
//
//qa:hotpath
func (s *Sparse) runTape(st *sparseRun, ti *sparseTape, ref []uint64, noisy bool, out []uint64) {
	copy(out, ref)
	if st.script != nil {
		if noisy {
			//qa:allow hotpath scripted runs are single-shot diagnostics, cold by design
			s.runTapeScripted(st, ti, ref, out)
			return
		}
		noisy = false
	}
	if !noisy && st.dirty == 0 {
		return
	}
	st.sc, st.mc, st.pc = 0, 0, 0
	if noisy && st.dirty == 0 &&
		st.single.siteOfNextHit() >= int64(len(ti.single)) &&
		st.meas.siteOfNextHit() >= int64(len(ti.meas)) &&
		st.pair.siteOfNextHit() >= int64(len(ti.pairs)) {
		// Clean frames, no hit in this tape: consume the trial words and
		// leave the reference outcomes untouched.
		st.single.skipSites(len(ti.single))
		st.meas.skipSites(len(ti.meas))
		st.pair.skipSites(len(ti.pairs))
		return
	}
	for q := range st.cur {
		st.cur[q] = 0
	}
	nops := len(ti.t.ops)
	pos := 0
	for pos < nops {
		next := nops
		for m := st.dirty; m != 0; m &= m - 1 {
			q := bits.TrailingZeros64(m)
			ops := ti.qubitOps[q]
			c := int(st.cur[q])
			for c < len(ops) && int(ops[c]) < pos {
				c++
			}
			st.cur[q] = int32(c)
			if c < len(ops) && int(ops[c]) < next {
				next = int(ops[c])
			}
		}
		if noisy {
			if h := st.single.siteOfNextHit() + int64(st.sc); h < int64(len(ti.single)) {
				if op := int(ti.single[h].op); op < next {
					next = op
				}
			}
			if h := st.meas.siteOfNextHit() + int64(st.mc); h < int64(len(ti.meas)) {
				if op := int(ti.meas[h].op); op < next {
					next = op
				}
			}
			if h := st.pair.siteOfNextHit() + int64(st.pc); h < int64(len(ti.pairs)) {
				if op := int(ti.pairs[h].op); op < next {
					next = op
				}
			}
		}
		if next >= nops {
			break
		}
		s.execOp(st, ti, ref, noisy, out, next)
		pos = next + 1
		if bits.OnesCount64(st.dirty) >= s.threshold {
			s.drainDense(st, ti, ref, noisy, out, pos)
			return
		}
	}
	if noisy {
		st.single.skipSites(len(ti.single) - st.sc)
		st.meas.skipSites(len(ti.meas) - st.mc)
		st.pair.skipSites(len(ti.pairs) - st.pc)
	}
}

// execOp executes the single tape op at index i: a gate/prep/meas on a
// dirty qubit, or an error site whose trial word contains a hit. Error
// sites consume their whole trial word(s) exactly like the dense engine,
// so the sampled hit pattern is identical given the same draw sequence.
//
//qa:hotpath
func (s *Sparse) execOp(st *sparseRun, ti *sparseTape, ref []uint64, noisy bool, out []uint64, i int) {
	b := st.b
	op := &ti.t.ops[i]
	a := int(op.a)
	switch op.code {
	case opH:
		b.H(a)
	case opS, opSdg:
		b.S(a)
	case opCNOT:
		b.CNOT(a, int(op.b))
		st.refresh(a)
		st.refresh(int(op.b))
	case opCZ:
		b.CZ(a, int(op.b))
		st.refresh(a)
		st.refresh(int(op.b))
	case opSWAP:
		b.SWAP(a, int(op.b))
		st.refresh(a)
		st.refresh(int(op.b))
	case opX, opY, opZ:
		// Reference-only: never an event (absent from qubitOps).
	case opPrep:
		b.fx[a] = 0
		b.fz[a] = 0
		st.dirty &^= uint64(1) << uint(a)
	case opMeas:
		out[op.b] = b.fx[a] ^ ref[op.b]
	case opErrMeas:
		k := int(ti.measOrd[i])
		st.meas.skipSites(k - st.mc)
		st.mc = k + 1
		sm := &st.meas
		for sm.next < 64 {
			j := uint(sm.next)
			bit := uint64(1) << j
			b.fx[a] ^= bit
			if st.active&bit != 0 {
				st.inj[j]++
			}
			sm.next += sm.gap(st.rng)
		}
		sm.advanceWord()
		st.refresh(a)
	case opErrSingle:
		k := int(ti.singleOrd[i])
		st.single.skipSites(k - st.sc)
		st.sc = k + 1
		sm := &st.single
		for sm.next < 64 {
			s.hitSingle(st, a, uint(sm.next))
			sm.next += sm.gap(st.rng)
		}
		sm.advanceWord()
		st.refresh(a)
	case opErrPair:
		qb := int(op.b)
		if s.e.corrPair {
			k := int(ti.pairOrd[i])
			st.pair.skipSites(k - st.pc)
			st.pc = k + 1
			sm := &st.pair
			for sm.next < 64 {
				s.hitPair(st, a, qb, uint(sm.next))
				sm.next += sm.gap(st.rng)
			}
			sm.advanceWord()
		} else {
			// Uncorrelated model: operand a's site word, then b's. The
			// hit that triggered this event may live in either word.
			k := int(ti.singleOrd[i])
			st.single.skipSites(k - st.sc)
			st.sc = k + 2
			sm := &st.single
			for sm.next < 64 {
				s.hitSingle(st, a, uint(sm.next))
				sm.next += sm.gap(st.rng)
			}
			sm.advanceWord()
			for sm.next < 64 {
				s.hitSingle(st, qb, uint(sm.next))
				sm.next += sm.gap(st.rng)
			}
			sm.advanceWord()
		}
		st.refresh(a)
		st.refresh(qb)
	}
}

// hitSingle applies one single-qubit channel hit on lane j, drawing the
// conditional Pauli kind exactly like the dense engine (one raw RNG word
// against the precomputed thresholds).
//
//qa:hotpath
func (s *Sparse) hitSingle(st *sparseRun, q int, j uint) {
	bit := uint64(1) << j
	v := st.rng.Uint64()
	switch {
	case v < s.e.uX:
		st.b.fx[q] ^= bit
	case v < s.e.uXY:
		st.b.fx[q] ^= bit
		st.b.fz[q] ^= bit
	default:
		st.b.fz[q] ^= bit
	}
	if st.active&bit != 0 {
		st.inj[j]++
	}
}

// hitPair applies one correlated two-qubit hit on lane j.
//
//qa:hotpath
func (s *Sparse) hitPair(st *sparseRun, qa, qb int, j uint) {
	bit := uint64(1) << j
	pr := pairTable[st.rng.Intn(len(pairTable))]
	if pr[0]&ErrX != 0 {
		st.b.fx[qa] ^= bit
	}
	if pr[0]&ErrZ != 0 {
		st.b.fz[qa] ^= bit
	}
	if pr[1]&ErrX != 0 {
		st.b.fx[qb] ^= bit
	}
	if pr[1]&ErrZ != 0 {
		st.b.fz[qb] ^= bit
	}
	if st.active&bit != 0 {
		st.inj[j]++
	}
}

// drainDense finishes the tape with the dense word kernels from op index
// `from`: gates execute unconditionally, every remaining error site
// consumes its trial word. The channel cursors align via the ord tables,
// so the trial stream is identical to a pure event walk.
//
//qa:hotpath
func (s *Sparse) drainDense(st *sparseRun, ti *sparseTape, ref []uint64, noisy bool, out []uint64, from int) {
	b := st.b
	ops := ti.t.ops
	for i := from; i < len(ops); i++ {
		op := &ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			b.H(a)
		case opS, opSdg:
			b.S(a)
		case opCNOT:
			b.CNOT(a, int(op.b))
		case opCZ:
			b.CZ(a, int(op.b))
		case opSWAP:
			b.SWAP(a, int(op.b))
		case opX, opY, opZ:
		case opPrep:
			b.fx[a] = 0
			b.fz[a] = 0
		case opMeas:
			out[op.b] = b.fx[a] ^ ref[op.b]
		case opErrMeas:
			if !noisy {
				continue
			}
			k := int(ti.measOrd[i])
			st.meas.skipSites(k - st.mc)
			st.mc = k + 1
			sm := &st.meas
			for sm.next < 64 {
				j := uint(sm.next)
				bit := uint64(1) << j
				b.fx[a] ^= bit
				if st.active&bit != 0 {
					st.inj[j]++
				}
				sm.next += sm.gap(st.rng)
			}
			sm.advanceWord()
		case opErrSingle:
			if !noisy {
				continue
			}
			k := int(ti.singleOrd[i])
			st.single.skipSites(k - st.sc)
			st.sc = k + 1
			sm := &st.single
			for sm.next < 64 {
				s.hitSingle(st, a, uint(sm.next))
				sm.next += sm.gap(st.rng)
			}
			sm.advanceWord()
		case opErrPair:
			if !noisy {
				continue
			}
			qb := int(op.b)
			if s.e.corrPair {
				k := int(ti.pairOrd[i])
				st.pair.skipSites(k - st.pc)
				st.pc = k + 1
				sm := &st.pair
				for sm.next < 64 {
					s.hitPair(st, a, qb, uint(sm.next))
					sm.next += sm.gap(st.rng)
				}
				sm.advanceWord()
			} else {
				k := int(ti.singleOrd[i])
				st.single.skipSites(k - st.sc)
				st.sc = k + 2
				sm := &st.single
				for sm.next < 64 {
					s.hitSingle(st, a, uint(sm.next))
					sm.next += sm.gap(st.rng)
				}
				sm.advanceWord()
				for sm.next < 64 {
					s.hitSingle(st, qb, uint(sm.next))
					sm.next += sm.gap(st.rng)
				}
				sm.advanceWord()
			}
		}
	}
	if noisy {
		st.single.skipSites(len(ti.single) - st.sc)
		st.meas.skipSites(len(ti.meas) - st.mc)
		st.pair.skipSites(len(ti.pairs) - st.pc)
	}
	st.dirty = 0
	for q := 0; q < b.n; q++ {
		if b.fx[q]|b.fz[q] != 0 {
			st.dirty |= uint64(1) << uint(q)
		}
	}
}

// sampleCorrectionSlot mirrors Engine.sampleCorrectionSlot — one
// single-channel site per qubit, masked to the lanes that issued a
// correction — skipping hit-free words without touching state.
//
//qa:hotpath
func (s *Sparse) sampleCorrectionSlot(st *sparseRun, hasCorr uint64) {
	sm := &st.single
	for q := 0; q < s.e.n; q++ {
		if sm.next < 64 {
			for sm.next < 64 {
				j := uint(sm.next)
				if hasCorr>>j&1 == 1 {
					s.hitSingle(st, q, j)
				}
				sm.next += sm.gap(st.rng)
			}
			st.refresh(q)
		}
		sm.advanceWord()
	}
}

// runTapeScripted executes one noisy tape in scripted mode: the hit list
// is collected by walking the tape's error ops in order (a deterministic
// map *lookup* per site, never an iteration) and then merged with the
// dirty-qubit gate events. Scripted runs are single-shot diagnostics —
// this path is cold and may allocate.
func (s *Sparse) runTapeScripted(st *sparseRun, ti *sparseTape, ref []uint64, out []uint64) {
	st.hits = st.hits[:0]
	for i := range ti.t.ops {
		op := &ti.t.ops[i]
		switch op.code {
		case opErrSingle:
			if pp, ok := st.script[Site{st.round, int(op.slot), KindSingle, int(op.a), -1}]; ok && pp[0] != ErrNone {
				st.hits = append(st.hits, scriptHit{op: int32(i), a: op.a, b: -1, pa: pp[0]})
			}
		case opErrMeas:
			if pp, ok := st.script[Site{st.round, int(op.slot), KindMeas, int(op.a), -1}]; ok && pp[0] != ErrNone {
				st.hits = append(st.hits, scriptHit{op: int32(i), a: op.a, b: -1, pa: pp[0]})
			}
		case opErrPair:
			if pp, ok := st.script[Site{st.round, int(op.slot), KindPair, int(op.a), int(op.b)}]; ok && pp[0]|pp[1] != ErrNone {
				st.hits = append(st.hits, scriptHit{op: int32(i), a: op.a, b: op.b, pa: pp[0], pb: pp[1]})
			}
		}
	}
	for q := range st.cur {
		st.cur[q] = 0
	}
	nops := len(ti.t.ops)
	hi := 0
	pos := 0
	for pos < nops {
		next := nops
		for m := st.dirty; m != 0; m &= m - 1 {
			q := bits.TrailingZeros64(m)
			ops := ti.qubitOps[q]
			c := int(st.cur[q])
			for c < len(ops) && int(ops[c]) < pos {
				c++
			}
			st.cur[q] = int32(c)
			if c < len(ops) && int(ops[c]) < next {
				next = int(ops[c])
			}
		}
		if hi < len(st.hits) && int(st.hits[hi].op) < next {
			next = int(st.hits[hi].op)
		}
		if next >= nops {
			break
		}
		if hi < len(st.hits) && int(st.hits[hi].op) == next {
			h := &st.hits[hi]
			hi++
			s.applyScriptedHit(st, int(h.a), h.pa)
			if h.b >= 0 {
				s.applyScriptedHit(st, int(h.b), h.pb)
			}
		} else {
			s.execOp(st, ti, ref, false, out, next)
		}
		pos = next + 1
	}
}

// applyScriptedHit injects a scripted Pauli on every lane, mirroring
// Engine.applyScripted, and refreshes the qubit's dirty bit.
func (s *Sparse) applyScriptedHit(st *sparseRun, q int, p PauliErr) {
	if p == ErrNone {
		return
	}
	if p&ErrX != 0 {
		st.b.fx[q] ^= ^uint64(0)
	}
	if p&ErrZ != 0 {
		st.b.fz[q] ^= ^uint64(0)
	}
	st.inj[0]++
	st.refresh(q)
}
