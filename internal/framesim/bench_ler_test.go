package framesim_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchSweep is the shared SC17 LER point both engines run: 64 samples at
// the thesis' mid-sweep PER. The ns/op ratio between the two benchmarks
// is the speedup recorded in BENCH_framesim.json.
func benchSweep(b *testing.B, engine experiments.Engine) {
	cfg := experiments.SweepConfig{
		Engine:           engine,
		PERs:             []float64{5e-3},
		Samples:          64,
		MaxLogicalErrors: 10,
		BaseSeed:         42,
		Workers:          1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameSimLERPoint runs the point on the bit-sliced frame
// engine (one 64-shot batch).
func BenchmarkFrameSimLERPoint(b *testing.B) { benchSweep(b, experiments.EngineFrameSim) }

// BenchmarkStackLERPoint runs the identical point on the QPDO oracle
// stack, one shot at a time.
func BenchmarkStackLERPoint(b *testing.B) { benchSweep(b, experiments.EngineStack) }
