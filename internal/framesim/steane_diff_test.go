package framesim_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/framesim"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/steane"
)

// runSteaneScripted drives the QPDO oracle stack (Steane layer →
// scripted injector → CHP tableau) through the windows protocol by hand,
// injecting exactly the Script's errors, and records the same per-window
// trace the Steane frame engine emits. The window decode is the layer's
// own RunWindowInfo; diagnostics and probe run bypassed, exactly like the
// frame engine's noiseless rounds.
func runSteaneScripted(t *testing.T, obs framesim.Observable, windows int, script framesim.Script) (traces []framesim.SteaneTrace, errs, gates_ int) {
	t.Helper()
	chpCore := layers.NewChpCore(rand.New(rand.NewSource(98765)))
	inj := framesim.NewInjectLayer(chpCore, script)
	lay := steane.NewLayer(inj)
	if err := lay.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	init := circuit.New().Add(gates.Prep, 0)
	if obs == framesim.ObserveZ {
		init.Add(gates.H, 0)
	}
	if err := qpdo.WithBypass(lay, func() error {
		_, err := qpdo.Run(lay, init)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if inj.Round != 0 {
		t.Fatalf("injector consumed %d rounds during bypassed init", inj.Round)
	}
	probe := lay.ProbeZL
	if obs == framesim.ObserveZ {
		probe = lay.ProbeXL
	}

	expected := 0
	traces = make([]framesim.SteaneTrace, 0, windows)
	for w := 0; w < windows; w++ {
		info, err := lay.RunWindowInfo(0)
		if err != nil {
			t.Fatal(err)
		}
		gates_ += info.Gates
		tr := framesim.SteaneTrace{
			SX: info.SX, SZ: info.SZ,
			CorrZ: info.CorrZ, CorrX: info.CorrX,
			Probe: -1,
		}
		if err := qpdo.WithBypass(lay, func() error {
			dsx, dsz, err := lay.RunESMRound(0)
			if err != nil {
				return err
			}
			tr.DiagSX, tr.DiagSZ = dsx, dsz
			tr.Clean = dsx == 0 && dsz == 0
			if !tr.Clean {
				return nil
			}
			out, err := probe(0)
			if err != nil {
				return err
			}
			tr.Probe = out
			if out != expected {
				errs++
				expected = out
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	if inj.Round != windows {
		t.Fatalf("injector consumed %d rounds, want %d", inj.Round, windows)
	}
	return traces, errs, gates_
}

// TestSteaneDifferentialScripted is the oracle test of the Steane frame
// engine: for both observables, both engine variants and a range of
// error densities, a scripted error pattern must produce bit-identical
// per-window traces — raw syndromes, decoded corrections, diagnostics,
// probe outcomes — and the same logical error and correction gate counts
// on the frame engine and on the full QPDO stack.
func TestSteaneDifferentialScripted(t *testing.T) {
	const windows = 32
	for _, tc := range []struct {
		name    string
		obs     framesim.Observable
		sparse  bool
		density float64
		seed    int64
	}{
		{"X/sparse-errors", framesim.ObserveX, false, 0.004, 1},
		{"X/dense-errors", framesim.ObserveX, false, 0.04, 2},
		{"Z/sparse-errors", framesim.ObserveZ, false, 0.004, 3},
		{"Z/dense-errors", framesim.ObserveZ, false, 0.04, 4},
		{"X/sparse-engine", framesim.ObserveX, true, 0.03, 5},
		{"Z/sparse-engine", framesim.ObserveZ, true, 0.03, 6},
		{"X/empty", framesim.ObserveX, false, 0, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := framesim.Config{
				Observable: tc.obs,
				Model:      layers.Depolarizing(1e-3), // ignored: scripted
				RefSeed:    7,
			}
			var eng *framesim.SteaneEngine
			var err error
			if tc.sparse {
				eng, err = framesim.NewSteaneSparse(cfg)
			} else {
				eng, err = framesim.NewSteane(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			script := randomScript(rand.New(rand.NewSource(tc.seed)), eng.ESMSites(), windows, tc.density)
			frameTr, frameRes, err := eng.RunScripted(windows, script)
			if err != nil {
				t.Fatal(err)
			}
			stackTr, stackErrs, stackGates := runSteaneScripted(t, tc.obs, windows, script)
			if len(frameTr) != windows || len(stackTr) != windows {
				t.Fatalf("trace lengths %d/%d, want %d", len(frameTr), len(stackTr), windows)
			}
			for w := range frameTr {
				if frameTr[w] != stackTr[w] {
					t.Errorf("window %d:\n  frame %+v\n  stack %+v\n  (%d scripted errors)",
						w, frameTr[w], stackTr[w], len(script))
				}
			}
			if frameRes.LogicalErrors != stackErrs {
				t.Errorf("logical errors: frame %d, stack %d", frameRes.LogicalErrors, stackErrs)
			}
			if frameRes.CorrectionGates != stackGates {
				t.Errorf("correction gates: frame %d, stack %d", frameRes.CorrectionGates, stackGates)
			}
			if frameRes.Windows != windows {
				t.Errorf("frame ran %d windows, want %d", frameRes.Windows, windows)
			}
			// Guard against a vacuous pass: non-empty scripts must light up
			// syndromes, and the dense ones must trigger corrections.
			if tc.density > 0 {
				syn := 0
				for _, tr := range frameTr {
					syn += tr.SX | tr.SZ
				}
				if syn == 0 {
					t.Error("script injected errors but no syndrome ever fired")
				}
				if tc.density >= 0.03 && frameRes.CorrectionSlots == 0 {
					t.Error("dense script triggered no corrections")
				}
			}
		})
	}
}

// TestSteaneFrameSparseIdentical pins the sparse window skip as exact:
// sampled runs of the dense and sparse Steane engines from the same
// seeds must produce bit-identical per-shot results at every lane width,
// with and without the Pauli frame.
func TestSteaneFrameSparseIdentical(t *testing.T) {
	for _, pf := range []bool{false, true} {
		cfg := framesim.Config{
			Model:            layers.Depolarizing(2e-3),
			MaxLogicalErrors: 4,
			WithPauliFrame:   pf,
			RefSeed:          11,
		}
		dense, err := framesim.NewSteane(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := framesim.NewSteaneSparse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4} {
			seeds := make([]int64, w)
			for k := range seeds {
				seeds[k] = int64(100*w + k)
			}
			shots := 64 * w
			rd, err := dense.RunBatchWide(seeds, shots)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := sparse.RunBatchWide(seeds, shots)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rd {
				if rd[i] != rs[i] {
					t.Fatalf("pf=%v lanes=%d shot %d: dense %+v, sparse %+v", pf, w, i, rd[i], rs[i])
				}
			}
		}
	}
}

// TestSteaneSparseZeroNoise pins the degenerate skip: with a zero-rate
// model every sampler is parked, so the sparse engine must jump straight
// to MaxWindows — error-free shots in O(1) work per window span.
func TestSteaneSparseZeroNoise(t *testing.T) {
	e, err := framesim.NewSteaneSparse(framesim.Config{
		Model:      layers.Model{},
		MaxWindows: 500_000,
		RefSeed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunBatch(9, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.LogicalErrors != 0 || r.Windows != 500_000 || r.InjectedErrors != 0 {
			t.Fatalf("shot %d: %+v, want 500000 clean windows", i, r)
		}
	}
}
