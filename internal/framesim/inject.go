package framesim

import (
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// PauliErr is a Pauli error in symplectic form: bit 0 is the X component,
// bit 1 the Z component (Y = both, matching the frame's bit planes).
type PauliErr uint8

// Pauli error values.
const (
	ErrNone PauliErr = 0
	ErrX    PauliErr = 1
	ErrZ    PauliErr = 2
	ErrY    PauliErr = ErrX | ErrZ
)

// Gate returns the physical Pauli gate realizing the error, or nil for
// ErrNone.
func (p PauliErr) Gate() *gates.Gate {
	switch p {
	case ErrX:
		return gates.X
	case ErrZ:
		return gates.Z
	case ErrY:
		return gates.Y
	}
	return nil
}

// SiteKind classifies an error-injection site.
type SiteKind uint8

// Site kinds, mirroring the three channel classes of layers.ErrorLayer.
const (
	// KindSingle is the single-qubit channel after a gate operand, reset,
	// identity, or idle slot.
	KindSingle SiteKind = iota
	// KindMeas is the X-flip channel immediately before a measurement.
	KindMeas
	// KindPair is the correlated two-qubit channel after a two-qubit gate.
	KindPair
)

// Site addresses one error-injection opportunity of a protocol run:
// Round counts the noisy multi-slot circuits (ESM rounds) executed so
// far, Slot is the time-slot index within that circuit, and A/B are the
// physical qubit operands (B is -1 except for pair sites).
type Site struct {
	Round int
	Slot  int
	Kind  SiteKind
	A, B  int
}

// Script maps injection sites to the exact Pauli errors to apply there;
// element 1 is only used by pair sites (error on operand B). A Script
// replaces random sampling entirely, which is what makes the differential
// test bit-exact: the frame engine and the QPDO stack consume the same
// Script and must emit identical syndrome streams.
type Script map[Site][2]PauliErr

// InjectLayer is the QPDO-side counterpart of scripted injection: a layer
// that rewrites circuits like layers.ErrorLayer but injects the Script's
// errors instead of sampling. Site enumeration matches the error layer —
// pre-slot X for measurement sites, post-slot for gate, pair and idle
// sites. Bypass-mode circuits and circuits with fewer than two time slots
// (correction slots, logical chain slots) are forwarded untouched and do
// not consume a Round ordinal; every other circuit is one Round. This
// matches the frame engine, whose round counter advances only on noisy
// ESM tape executions.
type InjectLayer struct {
	qpdo.Forwarder
	// Script holds the errors to inject.
	Script Script
	// Round is the next round ordinal (exported for test assertions).
	Round  int
	bypass bool
}

// NewInjectLayer stacks a scripted injector above next.
func NewInjectLayer(next qpdo.Core, script Script) *InjectLayer {
	return &InjectLayer{Forwarder: qpdo.Forwarder{Next: next}, Script: script}
}

// SetBypass pauses injection for diagnostic circuits and forwards the
// toggle.
func (l *InjectLayer) SetBypass(on bool) {
	l.bypass = on
	l.Next.SetBypass(on)
}

// Add rewrites the circuit with the scripted errors and forwards it.
func (l *InjectLayer) Add(c *circuit.Circuit) error {
	if l.bypass || c.NumSlots() < 2 {
		return l.Next.Add(c)
	}
	round := l.Round
	l.Round++
	n := l.Next.NumQubits()
	busy := make([]bool, n)
	out := circuit.New()
	for si := range c.Slots {
		slot := &c.Slots[si]
		var pre, post []circuit.Operation
		appendErr := func(ops []circuit.Operation, p PauliErr, q int) []circuit.Operation {
			if g := p.Gate(); g != nil {
				ops = append(ops, circuit.NewOp(g, q))
			}
			return ops
		}
		for _, op := range slot.Ops {
			for _, q := range op.Qubits {
				if q < n {
					busy[q] = true
				}
			}
			switch {
			case op.Gate.Class == gates.ClassMeasure:
				if pp, ok := l.Script[Site{round, si, KindMeas, op.Qubits[0], -1}]; ok {
					pre = appendErr(pre, pp[0], op.Qubits[0])
				}
			case op.Gate.Arity == 2:
				if pp, ok := l.Script[Site{round, si, KindPair, op.Qubits[0], op.Qubits[1]}]; ok {
					post = appendErr(post, pp[0], op.Qubits[0])
					post = appendErr(post, pp[1], op.Qubits[1])
				}
			default:
				for _, q := range op.Qubits {
					if pp, ok := l.Script[Site{round, si, KindSingle, q, -1}]; ok {
						post = appendErr(post, pp[0], q)
					}
				}
			}
		}
		for q := 0; q < n; q++ {
			if busy[q] {
				busy[q] = false
				continue
			}
			if pp, ok := l.Script[Site{round, si, KindSingle, q, -1}]; ok {
				post = appendErr(post, pp[0], q)
			}
		}
		if len(pre) > 0 {
			out.AddParallel(pre...)
		}
		out.AddParallel(slot.Ops...)
		if len(post) > 0 {
			out.AddParallel(post...)
		}
	}
	return l.Next.Add(out)
}
