package framesim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/layers"
)

// sparseScript draws a random script over `rounds` ESM rounds with the
// given per-site density (white-box twin of the diff_test generator).
func sparseScript(rng *rand.Rand, sites []Site, rounds int, density float64) Script {
	paulis := []PauliErr{ErrX, ErrY, ErrZ}
	script := Script{}
	for _, site := range sites {
		for r := 0; r < rounds; r++ {
			if rng.Float64() >= density {
				continue
			}
			site.Round = r
			switch site.Kind {
			case KindMeas:
				script[site] = [2]PauliErr{ErrX}
			case KindPair:
				pp := [2]PauliErr{PauliErr(rng.Intn(4)), PauliErr(rng.Intn(4))}
				if pp[0] == ErrNone && pp[1] == ErrNone {
					pp[0] = paulis[rng.Intn(3)]
				}
				script[site] = pp
			default:
				script[site] = [2]PauliErr{paulis[rng.Intn(3)]}
			}
		}
	}
	return script
}

func requireEqualPlanes(t *testing.T, label string, span int, dense, sparse *Batch, dirty uint64) {
	t.Helper()
	for q := 0; q < dense.n; q++ {
		if dense.fx[q] != sparse.fx[q] || dense.fz[q] != sparse.fz[q] {
			t.Fatalf("%s span %d: qubit %d planes diverge: dense (%#x,%#x) sparse (%#x,%#x)",
				label, span, q, dense.fx[q], dense.fz[q], sparse.fx[q], sparse.fz[q])
		}
		bit := uint64(1) << uint(q)
		if got, want := dirty&bit != 0, sparse.fx[q]|sparse.fz[q] != 0; got != want {
			t.Fatalf("%s span %d: qubit %d dirty bit %v, planes nonzero %v", label, span, q, got, want)
		}
	}
}

// TestSparseScriptedSpanEquality drives the dense and sparse tape
// executors side by side through scripted noisy ESM spans interleaved
// with noiseless diagnostic and probe spans, requiring bit-identical
// frame planes and outcome words after every span — the strongest
// statement of walker correctness, independent of the window plumbing.
// The dirty mask is cross-checked against the planes at every span, and
// low DenseThreshold values force the mid-tape dense drain.
func TestSparseScriptedSpanEquality(t *testing.T) {
	const rounds = 36
	for _, tc := range []struct {
		name      string
		obs       Observable
		density   float64
		threshold int
		seed      int64
	}{
		{"X/empty", ObserveX, 0, 0, 1},
		{"X/sparse", ObserveX, 0.004, 0, 2},
		{"X/mid", ObserveX, 0.03, 0, 3},
		{"X/dense", ObserveX, 0.15, 0, 4},
		{"Z/sparse", ObserveZ, 0.004, 0, 5},
		{"Z/dense", ObserveZ, 0.15, 0, 6},
		{"X/drain-always", ObserveX, 0.03, 1, 7},
		{"X/drain-early", ObserveX, 0.08, 2, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Observable:     tc.obs,
				Model:          layers.Depolarizing(1e-3), // ignored: scripted
				RefSeed:        7,
				DenseThreshold: tc.threshold,
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSparse(cfg)
			if err != nil {
				t.Fatal(err)
			}
			script := sparseScript(rand.New(rand.NewSource(tc.seed)), e.ESMSites(), rounds, tc.density)
			dst := e.newRunState([]int64{0}, script)
			sst := s.newRun(0, script)
			outD := make([]uint64, e.esm.NumMeas())
			outS := make([]uint64, e.esm.NumMeas())
			probeD := make([]uint64, e.probe.NumMeas())
			probeS := make([]uint64, e.probe.NumMeas())
			for r := 0; r < rounds; r++ {
				e.runTape(dst, e.esm, e.refESM, true, outD)
				s.runTape(sst, s.esmT, e.refESM, true, outS)
				dst.round++
				sst.round++
				if !equalWords(outD, outS) {
					t.Fatalf("noisy span %d: outcome words diverge", r)
				}
				requireEqualPlanes(t, "noisy", r, dst.b, sst.b, sst.dirty)
				if r%3 == 2 {
					e.runTape(dst, e.esm, e.refESM, false, outD)
					s.runTape(sst, s.esmT, e.refESM, false, outS)
					if !equalWords(outD, outS) {
						t.Fatalf("diag span %d: outcome words diverge", r)
					}
					e.runTape(dst, e.probe, e.refProbe, false, probeD)
					s.runTape(sst, s.probeT, e.refProbe, false, probeS)
					if !equalWords(probeD, probeS) {
						t.Fatalf("probe span %d: outcome words diverge", r)
					}
					requireEqualPlanes(t, "probe", r, dst.b, sst.b, sst.dirty)
				}
			}
		})
	}
}

// TestSparseScriptedMatchesCoreFrame is the width-1 property test: the
// sparse walker's lane records must equal a scalar core.Frame replica
// driven through the same tape ops and scripted errors. Scripted
// injection broadcasts to all lanes, so one replica pins every lane; we
// check the two edge lanes.
func TestSparseScriptedMatchesCoreFrame(t *testing.T) {
	const rounds = 24
	cfg := Config{
		Observable: ObserveX,
		Model:      layers.Depolarizing(1e-3),
		RefSeed:    7,
	}
	s, err := NewSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Engine()
	script := sparseScript(rand.New(rand.NewSource(11)), e.ESMSites(), rounds, 0.05)
	sst := s.newRun(0, script)
	f := core.NewFrame(e.n)
	out := make([]uint64, e.esm.NumMeas())
	for r := 0; r < rounds; r++ {
		s.runTape(sst, s.esmT, e.refESM, true, out)
		replayTapeOnFrame(t, f, e.esm, script, sst.round)
		sst.round++
		for q := 0; q < e.n; q++ {
			want := f.Record(q)
			for _, lane := range []int{0, 63} {
				if got := sst.b.Record(q, lane); got != want {
					t.Fatalf("round %d qubit %d lane %d: sparse %v, core.Frame %v", r, q, lane, got, want)
				}
			}
		}
	}
}

// replayTapeOnFrame replays one scripted noisy tape execution on a scalar
// core.Frame: Cliffords conjugate, Prep resets, scripted errors track as
// Paulis, and reference-only Pauli gates commute through.
func replayTapeOnFrame(t *testing.T, f *core.Frame, tape *Tape, script Script, round int) {
	t.Helper()
	track := func(p PauliErr, q int) {
		if g := p.Gate(); g != nil {
			if err := f.TrackPauli(g.Name, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	clifford := func(name gates.Name, qs ...int) {
		if err := f.MapClifford(name, qs); err != nil {
			t.Fatal(err)
		}
	}
	for i := range tape.ops {
		op := &tape.ops[i]
		a := int(op.a)
		switch op.code {
		case opH:
			clifford(gates.GateH, a)
		case opS:
			clifford(gates.GateS, a)
		case opSdg:
			clifford(gates.GateSdg, a)
		case opCNOT:
			clifford(gates.GateCNOT, a, int(op.b))
		case opCZ:
			clifford(gates.GateCZ, a, int(op.b))
		case opSWAP:
			clifford(gates.GateSWAP, a, int(op.b))
		case opX, opY, opZ:
			// Applied in reference and shots alike: frame unchanged.
		case opPrep:
			f.Reset(a)
		case opMeas:
			// Scripted mode: no gauge randomization, frame unchanged.
		case opErrSingle:
			if pp, ok := script[Site{round, int(op.slot), KindSingle, a, -1}]; ok {
				track(pp[0], a)
			}
		case opErrMeas:
			if pp, ok := script[Site{round, int(op.slot), KindMeas, a, -1}]; ok {
				track(pp[0], a)
			}
		case opErrPair:
			if pp, ok := script[Site{round, int(op.slot), KindPair, a, int(op.b)}]; ok {
				track(pp[0], a)
				track(pp[1], int(op.b))
			}
		}
	}
}

// TestSparseZeroNoise pins the degenerate sweep: with a zero-rate model
// the sparse engine must skip straight to MaxWindows and report exactly
// the dense engine's accounting.
func TestSparseZeroNoise(t *testing.T) {
	cfg := Config{
		Observable: ObserveX,
		Model:      layers.Model{},
		MaxWindows: 5000,
	}
	s, err := NewSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sparseRes, err := s.RunBatch(42, 64)
	if err != nil {
		t.Fatal(err)
	}
	denseRes, err := e.RunBatch(42, 64)
	if err != nil {
		t.Fatal(err)
	}
	for j := range sparseRes {
		if sparseRes[j] != denseRes[j] {
			t.Fatalf("lane %d: sparse %+v, dense %+v", j, sparseRes[j], denseRes[j])
		}
		if sparseRes[j].Windows != 5000 || sparseRes[j].LogicalErrors != 0 {
			t.Fatalf("lane %d: zero-noise run reported %+v", j, sparseRes[j])
		}
	}
}

// TestSparseWindowLoopAllocFree pins the steady-state allocation budget
// of the sparse window loop at zero: growing MaxWindows by an order of
// magnitude must not change the per-RunBatch allocation count (the fixed
// setup cost is the run state itself).
func TestSparseWindowLoopAllocFree(t *testing.T) {
	build := func(maxWindows int) *Sparse {
		s, err := NewSparse(Config{
			Observable:       ObserveX,
			Model:            layers.Depolarizing(2e-3),
			MaxWindows:       maxWindows,
			MaxLogicalErrors: 1 << 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	short, long := build(300), build(3000)
	allocsShort := testing.AllocsPerRun(5, func() {
		if _, err := short.RunBatch(9, 64); err != nil {
			t.Fatal(err)
		}
	})
	allocsLong := testing.AllocsPerRun(5, func() {
		if _, err := long.RunBatch(9, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocsShort != allocsLong {
		t.Fatalf("window loop allocates: %v allocs at 300 windows, %v at 3000", allocsShort, allocsLong)
	}
}
