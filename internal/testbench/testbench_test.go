package testbench

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
)

func qxFactory(base int64) StackFactory {
	return func(it int) (qpdo.Core, error) {
		return layers.NewQxCore(rand.New(rand.NewSource(base + int64(it)))), nil
	}
}

func chpFactory(base int64) StackFactory {
	return func(it int) (qpdo.Core, error) {
		return layers.NewChpCore(rand.New(rand.NewSource(base + int64(it)))), nil
	}
}

func pfFactory(base int64) StackFactory {
	return func(it int) (qpdo.Core, error) {
		return layers.NewPauliFrameLayer(layers.NewQxCore(rand.New(rand.NewSource(base + int64(it))))), nil
	}
}

func TestBellStateHistoOnAllStacks(t *testing.T) {
	for name, factory := range map[string]StackFactory{
		"qx": qxFactory(1), "chp": chpFactory(2), "pauli-frame": pfFactory(3),
	} {
		b := NewBellStateHisto()
		if err := Run(b, factory, 60); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !b.Passed() {
			t.Errorf("%s: Bell bench failed:\n%s", name, b.Report())
		}
		total := 0
		for _, n := range b.Counts {
			total += n
		}
		if total != 60 {
			t.Errorf("%s: %d outcomes recorded", name, total)
		}
		if !strings.Contains(b.Report(), "|00>") {
			t.Errorf("%s: report rendering:\n%s", name, b.Report())
		}
	}
}

func TestGateSupportOnUniversalStack(t *testing.T) {
	g := NewGateSupport()
	if err := Run(g, qxFactory(10), 1); err != nil {
		t.Fatal(err)
	}
	if !g.Passed() {
		t.Fatalf("universal back-end failed gates:\n%s", g.Report())
	}
	// Every gate in the vocabulary must be supported on QxCore.
	if got := len(g.Supported()); got != 13 {
		t.Errorf("supported %d gates, want 13:\n%s", got, g.Report())
	}
}

func TestGateSupportOnStabilizerStack(t *testing.T) {
	g := NewGateSupport()
	if err := Run(g, chpFactory(11), 1); err != nil {
		t.Fatal(err)
	}
	// CHP must run every Clifford correctly and reject T/T†/Toffoli
	// rather than compute them wrongly.
	if !g.Passed() {
		t.Fatalf("stabilizer back-end computed a wrong result:\n%s", g.Report())
	}
	for _, n := range []gates.Name{gates.GateT, gates.GateTdg, gates.GateTOF} {
		if g.Results[n] != GateUnsupported {
			t.Errorf("gate %s should be unsupported on CHP, got %v", n, g.Results[n])
		}
	}
	for _, n := range []gates.Name{gates.GateH, gates.GateCNOT, gates.GateSWAP, gates.GateCZ} {
		if g.Results[n] != GateOK {
			t.Errorf("gate %s should pass on CHP, got %v", n, g.Results[n])
		}
	}
	if !strings.Contains(g.Report(), "unsupported") {
		t.Errorf("report should mention unsupported gates:\n%s", g.Report())
	}
}

func TestGateSupportThroughPauliFrame(t *testing.T) {
	g := NewGateSupport()
	if err := Run(g, pfFactory(12), 1); err != nil {
		t.Fatal(err)
	}
	if !g.Passed() || len(g.Supported()) != 13 {
		t.Fatalf("Pauli frame stack failed the gate script:\n%s", g.Report())
	}
}

func TestRunPropagatesFactoryError(t *testing.T) {
	bad := func(int) (qpdo.Core, error) { return nil, errors.New("boom") }
	if err := Run(NewBellStateHisto(), bad, 1); err == nil {
		t.Error("factory error swallowed")
	}
}
