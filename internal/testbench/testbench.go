// Package testbench implements the QPDO test-bench environment of thesis
// §4.2.4: base machinery that runs a test procedure against any control
// stack through the generic Core interface — looping for a configured
// number of iterations, collecting outcomes, and reporting — plus the two
// ready-to-use benches the thesis ships: the Bell-state histogram bench
// and the gate-support bench.
package testbench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// Bench is one test bench: Setup runs once against a fresh stack,
// Iteration runs repeatedly, Teardown summarizes.
type Bench interface {
	// Name labels the bench in reports.
	Name() string
	// Qubits is the register width the bench needs.
	Qubits() int
	// Iteration executes one trial on the stack and records its outcome.
	Iteration(stack qpdo.Core, iter int) error
	// Report renders the collected results.
	Report() string
	// Passed reports the overall verdict.
	Passed() bool
}

// StackFactory builds a fresh control stack per iteration so trials are
// independent (as the thesis benches re-initialize between runs).
type StackFactory func(iteration int) (qpdo.Core, error)

// Run drives a bench: it builds a stack, allocates qubits and executes
// the configured number of iterations.
func Run(b Bench, factory StackFactory, iterations int) error {
	for it := 0; it < iterations; it++ {
		stack, err := factory(it)
		if err != nil {
			return fmt.Errorf("testbench %s: building stack: %w", b.Name(), err)
		}
		if stack.NumQubits() < b.Qubits() {
			if err := stack.CreateQubits(b.Qubits() - stack.NumQubits()); err != nil {
				return fmt.Errorf("testbench %s: allocating qubits: %w", b.Name(), err)
			}
		}
		if err := b.Iteration(stack, it); err != nil {
			return fmt.Errorf("testbench %s: iteration %d: %w", b.Name(), it, err)
		}
	}
	return nil
}

// BellStateHisto is the thesis' BellStateHistoTb: reset two qubits,
// entangle them with H+CNOT, measure both and histogram the outcomes.
// It passes when only correlated outcomes occur and both appear.
type BellStateHisto struct {
	// Counts maps "00"/"01"/"10"/"11" to frequencies.
	Counts map[string]int
}

// NewBellStateHisto creates an empty bench.
func NewBellStateHisto() *BellStateHisto {
	return &BellStateHisto{Counts: map[string]int{}}
}

// Name implements Bench.
func (b *BellStateHisto) Name() string { return "BellStateHistoTb" }

// Qubits implements Bench.
func (b *BellStateHisto) Qubits() int { return 2 }

// Iteration implements Bench.
func (b *BellStateHisto) Iteration(stack qpdo.Core, _ int) error {
	c := circuit.New().
		Add(gates.Prep, 0).Add(gates.Prep, 1).
		Add(gates.H, 0).Add(gates.CNOT, 0, 1)
	slot := c.AppendSlot()
	c.AddToSlot(slot, gates.Measure, 0)
	c.AddToSlot(slot, gates.Measure, 1)
	res, err := qpdo.Run(stack, c)
	if err != nil {
		return err
	}
	b.Counts[fmt.Sprintf("%d%d", res.Last(0), res.Last(1))]++
	return nil
}

// Report implements Bench.
func (b *BellStateHisto) Report() string {
	var sb strings.Builder
	sb.WriteString("Bell state histogram:\n")
	for _, k := range []string{"00", "01", "10", "11"} {
		fmt.Fprintf(&sb, "  |%s>  %d\n", k, b.Counts[k])
	}
	fmt.Fprintf(&sb, "verdict: %v\n", b.Passed())
	return sb.String()
}

// Passed implements Bench: only |00⟩/|11⟩, and both observed.
func (b *BellStateHisto) Passed() bool {
	return b.Counts["01"] == 0 && b.Counts["10"] == 0 &&
		b.Counts["00"] > 0 && b.Counts["11"] > 0
}

// GateSupport is the thesis' GateSupportTb: a predetermined script that
// applies each gate of the QPDO vocabulary with a known input and
// verifies the measured outcome, reporting which gates the control stack
// supports and executes correctly.
type GateSupport struct {
	// Results maps gate names to outcomes.
	Results map[gates.Name]GateResult
}

// GateResult is the verdict for one gate.
type GateResult int

// Gate verdicts.
const (
	GateUnsupported GateResult = iota
	GateWrong
	GateOK
)

// NewGateSupport creates an empty bench.
func NewGateSupport() *GateSupport {
	return &GateSupport{Results: map[gates.Name]GateResult{}}
}

// Name implements Bench.
func (g *GateSupport) Name() string { return "GateSupportTb" }

// Qubits implements Bench.
func (g *GateSupport) Qubits() int { return 3 }

// gateCheck prepares a deterministic input, applies the gate under test
// and asserts the computational-basis outcome.
type gateCheck struct {
	gate  *gates.Gate
	build func(c *circuit.Circuit)
	// want maps measured qubits to expected values.
	want map[int]int
}

func checks() []gateCheck {
	return []gateCheck{
		{gates.I, func(c *circuit.Circuit) { c.Add(gates.I, 0) }, map[int]int{0: 0}},
		{gates.X, func(c *circuit.Circuit) { c.Add(gates.X, 0) }, map[int]int{0: 1}},
		{gates.Y, func(c *circuit.Circuit) { c.Add(gates.Y, 0) }, map[int]int{0: 1}},
		{gates.Z, func(c *circuit.Circuit) { c.Add(gates.X, 0).Add(gates.Z, 0) }, map[int]int{0: 1}},
		{gates.H, func(c *circuit.Circuit) { c.Add(gates.H, 0).Add(gates.H, 0) }, map[int]int{0: 0}},
		{gates.S, func(c *circuit.Circuit) {
			c.Add(gates.H, 0).Add(gates.S, 0).Add(gates.S, 0).Add(gates.H, 0) // HZH = X
		}, map[int]int{0: 1}},
		{gates.Sdg, func(c *circuit.Circuit) {
			c.Add(gates.H, 0).Add(gates.S, 0).Add(gates.Sdg, 0).Add(gates.H, 0)
		}, map[int]int{0: 0}},
		{gates.T, func(c *circuit.Circuit) {
			c.Add(gates.H, 0)
			for i := 0; i < 4; i++ {
				c.Add(gates.T, 0) // T⁴ = Z
			}
			c.Add(gates.H, 0)
		}, map[int]int{0: 1}},
		{gates.Tdg, func(c *circuit.Circuit) {
			c.Add(gates.H, 0).Add(gates.T, 0).Add(gates.Tdg, 0).Add(gates.H, 0)
		}, map[int]int{0: 0}},
		{gates.CNOT, func(c *circuit.Circuit) { c.Add(gates.X, 0).Add(gates.CNOT, 0, 1) }, map[int]int{0: 1, 1: 1}},
		{gates.CZ, func(c *circuit.Circuit) {
			// |+⟩|1⟩ → CZ → H on q0 gives |1⟩|1⟩.
			c.Add(gates.H, 0).Add(gates.X, 1).Add(gates.CZ, 0, 1).Add(gates.H, 0)
		}, map[int]int{0: 1, 1: 1}},
		{gates.SWAP, func(c *circuit.Circuit) { c.Add(gates.X, 0).Add(gates.SWAP, 0, 1) }, map[int]int{0: 0, 1: 1}},
		{gates.Toffoli, func(c *circuit.Circuit) {
			c.Add(gates.X, 0).Add(gates.X, 1).Add(gates.Toffoli, 0, 1, 2)
		}, map[int]int{2: 1}},
	}
}

// Iteration implements Bench: the full predetermined script runs once
// per iteration (the thesis bench is deterministic, one pass suffices).
func (g *GateSupport) Iteration(stack qpdo.Core, _ int) error {
	for _, ck := range checks() {
		c := circuit.New()
		for q := 0; q < 3; q++ {
			c.Add(gates.Prep, q)
		}
		ck.build(c)
		// Measure in ascending qubit order so the circuit — and with it
		// the stack's RNG draw order — is identical run to run.
		qs := make([]int, 0, len(ck.want))
		for q := range ck.want {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		for _, q := range qs {
			c.Add(gates.Measure, q)
		}
		res, err := qpdo.Run(stack, c)
		if err != nil {
			g.Results[ck.gate.Name] = GateUnsupported
			continue
		}
		ok := true
		for q, want := range ck.want {
			if res.Last(q) != want {
				ok = false
			}
		}
		if ok {
			g.Results[ck.gate.Name] = GateOK
		} else {
			g.Results[ck.gate.Name] = GateWrong
		}
	}
	return nil
}

// Report implements Bench.
func (g *GateSupport) Report() string {
	names := make([]string, 0, len(g.Results))
	for n := range g.Results {
		names = append(names, string(n))
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("gate support report:\n")
	for _, n := range names {
		verdict := "unsupported"
		switch g.Results[gates.Name(n)] {
		case GateOK:
			verdict = "ok"
		case GateWrong:
			verdict = "WRONG RESULT"
		}
		fmt.Fprintf(&sb, "  %-8s %s\n", n, verdict)
	}
	return sb.String()
}

// Passed implements Bench: no gate returned a wrong result (unsupported
// gates are acceptable — a stabilizer back-end has no T).
func (g *GateSupport) Passed() bool {
	for _, r := range g.Results {
		if r == GateWrong {
			return false
		}
	}
	return true
}

// Supported lists the gates that executed correctly.
func (g *GateSupport) Supported() []gates.Name {
	var out []gates.Name
	for n, r := range g.Results {
		if r == GateOK {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
