package steane

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/qpdo"
)

func TestHammingDecode(t *testing.T) {
	if DecodeSyndrome(0) != -1 {
		t.Error("trivial syndrome should decode to -1")
	}
	// Every single error decodes back to itself.
	for q := 0; q < NumData; q++ {
		s := SyndromeOf([]int{q})
		if s != q+1 {
			t.Errorf("syndrome of qubit %d = %d, want %d (Hamming position)", q, s, q+1)
		}
		if got := DecodeSyndrome(s); got != q {
			t.Errorf("decode(%d) = %d, want %d", s, got, q)
		}
	}
}

func TestSupportsAreHamming(t *testing.T) {
	// Position p ∈ support i ⇔ bit i of (p+1) set.
	for i, sup := range Supports {
		seen := map[int]bool{}
		for _, q := range sup {
			seen[q] = true
		}
		for q := 0; q < NumData; q++ {
			want := (q+1)&(1<<uint(i)) != 0
			if seen[q] != want {
				t.Errorf("support %d membership of qubit %d = %v, want %v", i, q, seen[q], want)
			}
		}
	}
	// X and Z stabilizers on the same supports must commute (even overlaps).
	for i := range Supports {
		for j := range Supports {
			x := pauli.XString(Supports[i]...)
			z := pauli.ZString(Supports[j]...)
			if !x.Commutes(z) {
				t.Errorf("stabilizers %d/%d anti-commute", i, j)
			}
		}
	}
}

func newStack(t *testing.T, n int, seed int64) (*Layer, *layers.ChpCore) {
	t.Helper()
	ch := layers.NewChpCore(rand.New(rand.NewSource(seed)))
	l := NewLayer(ch)
	if err := l.CreateQubits(n); err != nil {
		t.Fatal(err)
	}
	return l, ch
}

func TestInitZeroStabilizers(t *testing.T) {
	l, ch := newStack(t, 1, 1)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	data, _ := l.Block(0)
	for _, sup := range Supports {
		phys := make([]int, len(sup))
		for i, d := range sup {
			phys[i] = data[d]
		}
		for _, ps := range []pauli.PauliString{pauli.XString(phys...), pauli.ZString(phys...)} {
			v, det := ch.Tableau().ExpectPauli(ps)
			if !det || v != 1 {
				t.Errorf("stabilizer %v not satisfied: v=%d det=%v", ps, v, det)
			}
		}
	}
	// Logical Z (transversal Z⊗7) stabilizes |0⟩_L.
	all := make([]int, NumData)
	for i := range all {
		all[i] = data[i]
	}
	v, det := ch.Tableau().ExpectPauli(pauli.ZString(all...))
	if !det || v != 1 {
		t.Errorf("Z_L on |0⟩_L: v=%d det=%v", v, det)
	}
}

func TestLogicalOperationsTruthTables(t *testing.T) {
	// X_L flips measurement; H_L Z_L H_L = X_L; CNOT_L truth table.
	l, _ := newStack(t, 2, 2)
	run := func(c *circuit.Circuit) *qpdo.Result {
		t.Helper()
		res, err := qpdo.Run(l, c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
	if res.Last(0) != 0 {
		t.Errorf("|0⟩_L measured %d", res.Last(0))
	}
	res = run(circuit.New().Add(gates.Prep, 0).Add(gates.X, 0).Add(gates.Measure, 0))
	if res.Last(0) != 1 {
		t.Errorf("X_L|0⟩_L measured %d", res.Last(0))
	}
	res = run(circuit.New().Add(gates.Prep, 0).Add(gates.H, 0).Add(gates.Z, 0).Add(gates.H, 0).Add(gates.Measure, 0))
	if res.Last(0) != 1 {
		t.Errorf("H Z H |0⟩_L measured %d, want 1", res.Last(0))
	}
	for _, cse := range []struct{ c, tq, wc, wt int }{
		{0, 0, 0, 0}, {1, 0, 1, 1}, {0, 1, 0, 1}, {1, 1, 1, 0},
	} {
		prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
		if cse.c == 1 {
			prep.Add(gates.X, 0)
		}
		if cse.tq == 1 {
			prep.Add(gates.X, 1)
		}
		prep.Add(gates.CNOT, 0, 1).Add(gates.Measure, 0).Add(gates.Measure, 1)
		res := run(prep)
		if res.Last(0) != cse.wc || res.Last(1) != cse.wt {
			t.Errorf("CNOT_L |%d%d⟩ → |%d%d⟩, want |%d%d⟩",
				cse.c, cse.tq, res.Last(0), res.Last(1), cse.wc, cse.wt)
		}
	}
}

func TestBellCorrelations(t *testing.T) {
	for i := 0; i < 8; i++ {
		l, _ := newStack(t, 2, int64(10+i))
		c := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1).
			Add(gates.H, 0).Add(gates.CNOT, 0, 1).
			Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Last(0) != res.Last(1) {
			t.Fatalf("logical Bell disagreement: %d vs %d", res.Last(0), res.Last(1))
		}
	}
}

func TestWindowCorrectsSingleErrors(t *testing.T) {
	for d := 0; d < NumData; d++ {
		for _, kind := range []string{"X", "Z", "Y"} {
			l, ch := newStack(t, 1, int64(100+d))
			if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
				t.Fatal(err)
			}
			// Warm-up round establishes the previous-round baseline.
			if _, err := l.RunWindow(0); err != nil {
				t.Fatal(err)
			}
			data, _ := l.Block(0)
			switch kind {
			case "X":
				ch.Tableau().X(data[d])
			case "Z":
				ch.Tableau().Z(data[d])
			case "Y":
				ch.Tableau().Y(data[d])
			}
			total := 0
			for w := 0; w < 3; w++ {
				n, err := l.RunWindow(0)
				if err != nil {
					t.Fatal(err)
				}
				total += n
			}
			if total == 0 {
				t.Errorf("%s error on D%d never corrected", kind, d)
			}
			// Logical Z preserved.
			all := make([]int, NumData)
			for i := range all {
				all[i] = data[i]
			}
			v, det := ch.Tableau().ExpectPauli(pauli.ZString(all...))
			if !det || v != 1 {
				t.Errorf("%s on D%d: logical damaged (v=%d det=%v)", kind, d, v, det)
			}
		}
	}
}

func TestMeasurementReadoutCorrection(t *testing.T) {
	// A single X error right before transversal measurement flips one
	// readout bit; the classical Hamming correction must fix the parity.
	l, ch := newStack(t, 1, 200)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	data, _ := l.Block(0)
	ch.Tableau().X(data[3])
	res, err := qpdo.Run(l, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("single pre-measurement X flipped the logical result: %d", res.Last(0))
	}
}

func TestRejectsNonTransversal(t *testing.T) {
	l, _ := newStack(t, 1, 300)
	if err := l.Add(circuit.New().Add(gates.T, 0)); err == nil {
		t.Error("logical T should be rejected")
	}
	if err := l.Add(circuit.New().Add(gates.CZ, 0, 0)); err == nil {
		t.Error("CZ with repeated operand should be rejected")
	}
	if err := l.RemoveQubits(1); err == nil {
		t.Error("removal should be rejected")
	}
}

// TestSteaneUnderNoise runs windows under depolarizing noise and checks
// the logical qubit survives far longer than a bare qubit would.
func TestSteaneUnderNoise(t *testing.T) {
	flips := 0
	const iters = 10
	for i := 0; i < iters; i++ {
		ch := layers.NewChpCore(rand.New(rand.NewSource(int64(400 + i))))
		el := layers.NewErrorLayer(ch, 5e-4, rand.New(rand.NewSource(int64(500+i))))
		l := NewLayer(el)
		if err := l.CreateQubits(1); err != nil {
			t.Fatal(err)
		}
		if err := qpdo.WithBypass(l, func() error {
			_, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 20; w++ {
			if _, err := l.RunWindow(0); err != nil {
				t.Fatal(err)
			}
		}
		var out int
		if err := qpdo.WithBypass(l, func() error {
			res, err := qpdo.Run(l, circuit.New().Add(gates.Measure, 0))
			if err != nil {
				return err
			}
			out = res.Last(0)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		flips += out
	}
	if flips > iters/2 {
		t.Errorf("logical state flipped in %d/%d noisy runs", flips, iters)
	}
}
