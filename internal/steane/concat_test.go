package steane

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// TestConcatenatedSteane stacks a Steane layer on top of another Steane
// layer (thesis §4.2.3: "It is for example possible to concatenate QEC
// layers"). The upper layer's "physical" operations — Prep, H, CNOT,
// Measure and Pauli corrections — are exactly the transversal logical
// operations of the lower layer, so a [[7,1,3]]² concatenated code of
// 7×13 = 91 physical qubits per logical qubit runs unchanged.
func TestConcatenatedSteane(t *testing.T) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(1)))
	inner := NewLayer(ch)
	outer := NewLayer(inner)
	if err := outer.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	res, err := qpdo.Run(outer, circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("concatenated |0⟩_L measured %d", res.Last(0))
	}
	res, err = qpdo.Run(outer, circuit.New().Add(gates.Prep, 0).Add(gates.X, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("concatenated X_L|0⟩_L measured %d", res.Last(0))
	}
	// H Z H = X at the doubly-encoded level.
	res, err = qpdo.Run(outer, circuit.New().
		Add(gates.Prep, 0).Add(gates.H, 0).Add(gates.Z, 0).Add(gates.H, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("concatenated H Z H |0⟩_L measured %d", res.Last(0))
	}
}

// TestNinjaStarOverSteane runs the SC17 layer on top of a Steane layer:
// 17 Steane-encoded qubits (221 physical) carry one surface-code logical
// qubit. Every SC17 primitive (transversal reset, the 8-slot ESM with
// its CNOT schedule, chain Paulis, transversal measurement) maps to
// fault-tolerant Steane logical operations.
func TestNinjaStarOverSteane(t *testing.T) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(2)))
	inner := NewLayer(ch)
	star := surface.NewNinjaStarLayer(inner, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := star.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	res, err := qpdo.Run(star, circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("SC17-over-Steane |0⟩_L measured %d", res.Last(0))
	}
	res, err = qpdo.Run(star, circuit.New().Add(gates.Prep, 0).Add(gates.X, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("SC17-over-Steane |1⟩_L measured %d", res.Last(0))
	}
}

// TestPauliFrameUnderSteane inserts a Pauli frame layer between the
// Steane layer and the simulator: the QEC corrections are absorbed by
// the frame and the logical results are unchanged.
func TestPauliFrameUnderSteane(t *testing.T) {
	ch := layers.NewChpCore(rand.New(rand.NewSource(3)))
	pf := layers.NewPauliFrameLayer(ch)
	l := NewLayer(pf)
	if err := l.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	// Inject an error, run windows; corrections land in the frame.
	data, _ := l.Block(0)
	ch.Tableau().X(data[2])
	if _, err := l.RunWindow(0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 3; w++ {
		n, err := l.RunWindow(0)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no corrections issued")
	}
	if pf.PFU.Stats.PauliAbsorbed == 0 {
		t.Error("corrections were not absorbed by the frame")
	}
	res, err := qpdo.Run(l, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("logical state corrupted despite frame-tracked correction: %d", res.Last(0))
	}
}
