// Package steane implements the Steane [[7,1,3]] code as a second QEC
// layer for the QPDO platform (the thesis' SteaneLayer, §4.2.3). The
// Steane code is the CSS code built from the [7,4,3] Hamming code on both
// bases: three X-type and three Z-type stabilizers share the Hamming
// parity-check supports, the logical X/Z/H/CNOT operations are fully
// transversal, and error syndromes decode by the Hamming rule — the
// three syndrome bits literally spell the binary position of the faulty
// qubit.
package steane

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// Code dimensions.
const (
	NumData    = 7
	NumAncilla = 6
	NumQubits  = NumData + NumAncilla
)

// Supports lists the three Hamming parity checks over data qubits 0..6
// (Hamming positions 1..7): check i covers the positions whose binary
// representation has bit i set.
var Supports = [3][]int{
	{0, 2, 4, 6}, // positions 1,3,5,7
	{1, 2, 5, 6}, // positions 2,3,6,7
	{3, 4, 5, 6}, // positions 4,5,6,7
}

// DecodeSyndrome maps a 3-bit Hamming syndrome to the faulty data qubit,
// or -1 for the trivial syndrome. The Steane code is perfect: every
// non-trivial syndrome names exactly one qubit (position syndrome−1).
func DecodeSyndrome(s int) int {
	if s == 0 {
		return -1
	}
	return s - 1
}

// SyndromeOf computes the 3-bit syndrome a set of single-type errors
// produces.
func SyndromeOf(errs []int) int {
	s := 0
	for i, sup := range Supports {
		parity := 0
		for _, q := range sup {
			for _, e := range errs {
				if e == q {
					parity ^= 1
				}
			}
		}
		s |= parity << uint(i)
	}
	return s
}

// Layer is the Steane-code QEC layer: logical circuits in, physical
// circuits with integrated QEC out. One logical qubit claims 7 data
// qubits plus 6 ancillas (one per stabilizer).
type Layer struct {
	qpdo.Forwarder
	blocks []*block
	queue  []*circuit.Circuit
}

type block struct {
	data  [NumData]int
	anc   [NumAncilla]int // 0..2 X checks, 3..5 Z checks
	state qpdo.BinaryState
	// prevX / prevZ carry the previous round's syndromes for the
	// two-round agreement rule.
	prevX, prevZ int
	prevValid    bool
}

// NewLayer stacks a Steane layer above next.
func NewLayer(next qpdo.Core) *Layer {
	return &Layer{Forwarder: qpdo.Forwarder{Next: next}}
}

// CreateQubits allocates n logical qubits of 13 physical qubits each.
func (l *Layer) CreateQubits(n int) error {
	for i := 0; i < n; i++ {
		base := l.Next.NumQubits()
		if err := l.Next.CreateQubits(NumQubits); err != nil {
			return err
		}
		b := &block{state: qpdo.StateUnknown}
		for d := 0; d < NumData; d++ {
			b.data[d] = base + d
		}
		for a := 0; a < NumAncilla; a++ {
			b.anc[a] = base + NumData + a
		}
		l.blocks = append(l.blocks, b)
	}
	return nil
}

// RemoveQubits is unsupported for encoded qubits.
func (l *Layer) RemoveQubits(int) error {
	return fmt.Errorf("steane: logical qubit removal is not supported")
}

// NumQubits returns the logical qubit count.
func (l *Layer) NumQubits() int { return len(l.blocks) }

// Add queues a logical circuit.
func (l *Layer) Add(c *circuit.Circuit) error {
	if err := qpdo.Validate(c, len(l.blocks)); err != nil {
		return err
	}
	for _, slot := range c.Slots {
		for _, op := range slot.Ops {
			switch op.Gate.Name {
			case gates.PrepZ, gates.MeasZ, gates.GateI, gates.GateX, gates.GateY,
				gates.GateZ, gates.GateH, gates.GateCNOT:
			default:
				return fmt.Errorf("steane: logical gate %s is not transversal on the Steane code", op.Gate)
			}
		}
	}
	l.queue = append(l.queue, c)
	return nil
}

// Execute runs the queued logical circuits.
func (l *Layer) Execute() (*qpdo.Result, error) {
	res := &qpdo.Result{}
	for _, c := range l.queue {
		for _, slot := range c.Slots {
			for _, op := range slot.Ops {
				if err := l.execOp(op, res); err != nil {
					l.queue = l.queue[:0]
					return nil, err
				}
			}
		}
	}
	l.queue = l.queue[:0]
	return res, nil
}

func (l *Layer) execOp(op circuit.Operation, res *qpdo.Result) error {
	b := l.blocks[op.Qubits[0]]
	switch op.Gate.Name {
	case gates.GateI:
		return nil
	case gates.PrepZ:
		return l.reset(b)
	case gates.MeasZ:
		out, err := l.measure(b)
		if err != nil {
			return err
		}
		res.Measurements = append(res.Measurements,
			qpdo.Measurement{Qubit: op.Qubits[0], Value: out})
		return nil
	case gates.GateX, gates.GateY, gates.GateZ, gates.GateH:
		// All single-qubit logical Paulis and H are transversal.
		c := circuit.New()
		slot := c.AppendSlot()
		for _, q := range b.data {
			c.AddToSlot(slot, op.Gate, q)
		}
		switch op.Gate.Name {
		case gates.GateX, gates.GateY:
			switch b.state {
			case qpdo.StateZero:
				b.state = qpdo.StateOne
			case qpdo.StateOne:
				b.state = qpdo.StateZero
			}
		case gates.GateZ:
			// Z fixes the computational-basis tracking states.
		case gates.GateH:
			b.state = qpdo.StateUnknown
		default:
			panic(fmt.Sprintf("steane: unreachable transversal gate %s", op.Gate))
		}
		return l.runLower(c)
	case gates.GateCNOT:
		a, t := l.blocks[op.Qubits[0]], l.blocks[op.Qubits[1]]
		c := circuit.New()
		slot := c.AppendSlot()
		for i := 0; i < NumData; i++ {
			c.AddToSlot(slot, gates.CNOT, a.data[i], t.data[i])
		}
		switch {
		case a.state == qpdo.StateUnknown:
			t.state = qpdo.StateUnknown
		case a.state == qpdo.StateOne:
			switch t.state {
			case qpdo.StateZero:
				t.state = qpdo.StateOne
			case qpdo.StateOne:
				t.state = qpdo.StateZero
			}
		}
		return l.runLower(c)
	default:
		return fmt.Errorf("steane: unsupported logical operation %s", op.Gate)
	}
}

func (l *Layer) runLower(c *circuit.Circuit) error {
	if err := l.Next.Add(c); err != nil {
		return err
	}
	_, err := l.Next.Execute()
	return err
}

// esmCircuit builds one full syndrome-measurement round: the three X
// checks (H-sandwiched ancilla controlling CNOTs onto its support) and
// the three Z checks (support data controlling CNOTs onto the ancilla),
// scheduled in parallel where the supports allow.
func (b *block) esmCircuit() *circuit.Circuit {
	c := circuit.New()
	// Reset + H slot.
	slot := c.AppendSlot()
	for a := 0; a < NumAncilla; a++ {
		c.AddToSlot(slot, gates.Prep, b.anc[a])
	}
	slot = c.AppendSlot()
	for a := 0; a < 3; a++ {
		c.AddToSlot(slot, gates.H, b.anc[a])
	}
	// CNOT steps: X checks first (each ancilla touches 4 data qubits
	// sequentially; the three checks overlap on data, so serialize by
	// check), then Z checks.
	for a := 0; a < 3; a++ {
		for _, d := range Supports[a] {
			c.Add(gates.CNOT, b.anc[a], b.data[d])
		}
	}
	for a := 0; a < 3; a++ {
		for _, d := range Supports[a] {
			c.Add(gates.CNOT, b.data[d], b.anc[3+a])
		}
	}
	slot = c.AppendSlot()
	for a := 0; a < 3; a++ {
		c.AddToSlot(slot, gates.H, b.anc[a])
	}
	slot = c.AppendSlot()
	for a := 0; a < NumAncilla; a++ {
		c.AddToSlot(slot, gates.Measure, b.anc[a])
	}
	return c
}

// runESM executes one round and returns the X-check and Z-check
// syndromes.
func (l *Layer) runESM(b *block) (sx, sz int, err error) {
	if err := l.Next.Add(b.esmCircuit()); err != nil {
		return 0, 0, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return 0, 0, err
	}
	if len(res.Measurements) < NumAncilla {
		return 0, 0, fmt.Errorf("steane: ESM returned %d measurements", len(res.Measurements))
	}
	ms := res.Measurements[len(res.Measurements)-NumAncilla:]
	for i := 0; i < 3; i++ {
		sx |= ms[i].Value << uint(i)
		sz |= ms[3+i].Value << uint(i)
	}
	return sx, sz, nil
}

// RunWindow executes one QEC window: one ESM round compared against the
// previous round (two-round agreement), Hamming decode, corrections.
func (l *Layer) RunWindow(i int) (corrections int, err error) {
	info, err := l.RunWindowInfo(i)
	return info.Gates, err
}

// WindowInfo reports what one QEC window observed and did; the frame
// engine's differential test compares these against its own traces.
type WindowInfo struct {
	// SX / SZ are the raw X-check and Z-check syndromes of the round.
	SX, SZ int
	// CorrZ / CorrX name the data qubit corrected per error type this
	// window (Z gate for the X-check syndrome, X gate for the Z-check
	// syndrome), or -1. A correction on the same qubit for both merges
	// into one Y gate.
	CorrZ, CorrX int
	// Gates counts the physical correction gates issued (a merged Y
	// counts once).
	Gates int
}

// RunWindowInfo is RunWindow with the decode internals exposed.
func (l *Layer) RunWindowInfo(i int) (WindowInfo, error) {
	b := l.blocks[i]
	info := WindowInfo{CorrZ: -1, CorrX: -1}
	sx, sz, err := l.runESM(b)
	if err != nil {
		return info, err
	}
	info.SX, info.SZ = sx, sz
	if !b.prevValid {
		b.prevX, b.prevZ, b.prevValid = sx, sz, true
		return info, nil
	}
	c := circuit.New()
	var slot = -1
	apply := func(g *gates.Gate, d int) {
		if slot < 0 {
			slot = c.AppendSlot()
		}
		c.AddToSlot(slot, g, b.data[d])
	}
	// X-check syndrome (detects Z errors) decoded when stable.
	if sx != 0 && sx == b.prevX {
		if d := DecodeSyndrome(sx); d >= 0 {
			apply(gates.Z, d)
			info.CorrZ = d
			sx = 0
		}
	}
	if sz != 0 && sz == b.prevZ {
		if d := DecodeSyndrome(sz); d >= 0 {
			// Same qubit needing both becomes Y; distinct qubits are
			// separate gates (always distinct slots entries).
			if slot >= 0 {
				for j, op := range c.Slots[slot].Ops {
					if op.Qubits[0] == b.data[d] {
						c.Slots[slot].Ops[j] = circuit.NewOp(gates.Y, b.data[d])
						info.CorrX = d
						sz = 0
					}
				}
			}
			if sz != 0 {
				apply(gates.X, d)
				info.CorrX = d
				sz = 0
			}
		}
	}
	b.prevX, b.prevZ = sx, sz
	info.Gates = c.NumOps()
	if info.Gates > 0 {
		if err := l.runLower(c); err != nil {
			return info, err
		}
	}
	return info, nil
}

// ESMCircuit returns one syndrome-measurement round for block i as a
// physical circuit over the lower layer's qubits; the frame engine
// compiles it to a tape.
func (l *Layer) ESMCircuit(i int) *circuit.Circuit { return l.blocks[i].esmCircuit() }

// RunESMRound executes one syndrome round for block i and returns the
// X-check and Z-check syndromes without touching the two-round decode
// state — a diagnostic readout.
func (l *Layer) RunESMRound(i int) (sx, sz int, err error) { return l.runESM(l.blocks[i]) }

// ProbeZLCircuit builds the non-destructive logical-Z readout for block
// i: ancilla 0, prepared in |0⟩, accumulates the joint parity of all
// seven data qubits through CNOTs and is measured — one Z_L = Z⊗7
// measurement that projects onto the code space it commutes with.
func (l *Layer) ProbeZLCircuit(i int) *circuit.Circuit {
	b := l.blocks[i]
	c := circuit.New().Add(gates.Prep, b.anc[0])
	for _, q := range b.data {
		c.Add(gates.CNOT, q, b.anc[0])
	}
	return c.Add(gates.Measure, b.anc[0])
}

// ProbeXLCircuit builds the non-destructive logical-X readout for block
// i: ancilla 0 in |+⟩ controls CNOTs onto all seven data qubits and is
// measured in the X basis — one X_L = X⊗7 measurement.
func (l *Layer) ProbeXLCircuit(i int) *circuit.Circuit {
	b := l.blocks[i]
	c := circuit.New().Add(gates.Prep, b.anc[0]).Add(gates.H, b.anc[0])
	for _, q := range b.data {
		c.Add(gates.CNOT, b.anc[0], q)
	}
	return c.Add(gates.H, b.anc[0]).Add(gates.Measure, b.anc[0])
}

// ProbeZL runs the Z_L probe circuit for block i and returns the
// outcome bit.
func (l *Layer) ProbeZL(i int) (int, error) { return l.probe(l.ProbeZLCircuit(i)) }

// ProbeXL runs the X_L probe circuit for block i and returns the
// outcome bit.
func (l *Layer) ProbeXL(i int) (int, error) { return l.probe(l.ProbeXLCircuit(i)) }

func (l *Layer) probe(c *circuit.Circuit) (int, error) {
	if err := l.Next.Add(c); err != nil {
		return 0, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return 0, err
	}
	if len(res.Measurements) == 0 {
		return 0, fmt.Errorf("steane: probe returned no measurement")
	}
	return res.Measurements[len(res.Measurements)-1].Value, nil
}

// reset initializes a block to |0⟩_L: transversal reset, then project
// the X stabilizers with one ESM round and fix the random signs with
// Z chains that anti-commute with exactly the flagged stabilizer.
func (l *Layer) reset(b *block) error {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range b.data {
		c.AddToSlot(slot, gates.Prep, q)
	}
	if err := l.runLower(c); err != nil {
		return err
	}
	sx, _, err := l.runESM(b)
	if err != nil {
		return err
	}
	if sx != 0 {
		// A Z on a qubit covered by exactly the flagged checks flips
		// exactly those signs: qubit with Hamming position = sx.
		fix := circuit.New().Add(gates.Z, b.data[sx-1])
		if err := l.runLower(fix); err != nil {
			return err
		}
	}
	b.state = qpdo.StateZero
	b.prevValid = false
	return nil
}

// measure performs the transversal logical measurement: parity of the
// seven data-qubit outcomes.
func (l *Layer) measure(b *block) (int, error) {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range b.data {
		c.AddToSlot(slot, gates.Measure, q)
	}
	if err := l.Next.Add(c); err != nil {
		return 0, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return 0, err
	}
	if len(res.Measurements) < NumData {
		return 0, fmt.Errorf("steane: measurement returned %d results", len(res.Measurements))
	}
	ms := res.Measurements[len(res.Measurements)-NumData:]
	vals := make([]int, NumData)
	out := 0
	for i, m := range ms {
		vals[i] = m.Value
		out ^= m.Value
	}
	// Classical Hamming correction of the readout string: the Z-check
	// parities computed from the outcomes flag a single flipped bit.
	s := 0
	for i, sup := range Supports {
		parity := 0
		for _, d := range sup {
			parity ^= vals[d]
		}
		s |= parity << uint(i)
	}
	if DecodeSyndrome(s) >= 0 {
		out ^= 1
	}
	b.state = qpdo.BinaryState(out)
	return out, nil
}

// GetState reports the classically known logical values.
func (l *Layer) GetState() (*qpdo.State, error) {
	st := &qpdo.State{Values: make([]qpdo.BinaryState, len(l.blocks))}
	for i, b := range l.blocks {
		st.Values[i] = b.state
	}
	return st, nil
}

// Block exposes physical placement for white-box tests.
func (l *Layer) Block(i int) (data [NumData]int, anc [NumAncilla]int) {
	return l.blocks[i].data, l.blocks[i].anc
}
