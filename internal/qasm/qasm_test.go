package qasm

import (
	"strings"
	"testing"

	"repro/internal/gates"
)

const bellSrc = `
# odd Bell state (thesis Fig 5.6)
qubits 2
prep_z q0
prep_z q1
h q0
cnot q0,q1
x q0
{ measure q0 | measure q1 }
`

func TestParseBell(t *testing.T) {
	p, err := Parse(bellSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Qubits != 2 {
		t.Errorf("qubits = %d", p.Qubits)
	}
	if p.Circuit.NumSlots() != 6 {
		t.Errorf("slots = %d", p.Circuit.NumSlots())
	}
	if p.Circuit.NumOps() != 7 {
		t.Errorf("ops = %d", p.Circuit.NumOps())
	}
	last := p.Circuit.Slots[5]
	if len(last.Ops) != 2 || last.Ops[0].Gate != gates.Measure {
		t.Errorf("parallel slot parsed wrong: %v", last.Ops)
	}
	cn := p.Circuit.Slots[3].Ops[0]
	if cn.Gate != gates.CNOT || cn.Qubits[0] != 0 || cn.Qubits[1] != 1 {
		t.Errorf("cnot parsed wrong: %v", cn)
	}
}

func TestParseInfersQubits(t *testing.T) {
	p, err := Parse("h q3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Qubits != 4 {
		t.Errorf("inferred qubits = %d, want 4", p.Qubits)
	}
}

func TestParseAllMnemonics(t *testing.T) {
	src := `qubits 3
i q0
x q0
y q0
z q0
h q0
s q0
sdag q0
t q0
tdag q0
cnot q0,q1
cz q0,q1
swap q0,q1
toffoli q0,q1,q2
prep_z q0
measure q0
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Circuit.NumOps() != 15 {
		t.Errorf("ops = %d", p.Circuit.NumOps())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate q0",        // unknown gate
		"cnot q0",              // arity
		"h walrus",             // bad operand
		"h q-1",                // negative
		"{ h q0 | x q0 }",      // slot conflict
		"qubits 1\ncnot q0,q1", // exceeds register
		"{ h q0",               // unterminated block
		"qubits zero",          // bad count
		"h",                    // missing operands
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := Parse(bellSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Write(p.Qubits, p.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parsing written QASM: %v\n%s", err, out)
	}
	if p2.Circuit.NumOps() != p.Circuit.NumOps() || p2.Circuit.NumSlots() != p.Circuit.NumSlots() {
		t.Errorf("round trip changed the circuit:\n%s", out)
	}
	if !strings.Contains(out, "{ measure q0 | measure q1 }") {
		t.Errorf("parallel block not written: %s", out)
	}
}

func TestParseRZ(t *testing.T) {
	p, err := Parse("rz(0.785398) q1")
	if err != nil {
		t.Fatal(err)
	}
	op := p.Circuit.Slots[0].Ops[0]
	if op.Gate.Class != gates.ClassNonClifford || op.Qubits[0] != 1 {
		t.Errorf("rz parsed wrong: %v", op)
	}
	// Round trip.
	out, err := Write(p.Qubits, p.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-parsing written rz: %v\n%s", err, out)
	}
	if _, err := Parse("rz(bogus) q0"); err == nil {
		t.Error("bad angle accepted")
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	p, err := Parse("\n# only comments\n\n  # more\nh q0 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Circuit.NumOps() != 1 {
		t.Errorf("ops = %d", p.Circuit.NumOps())
	}
}
