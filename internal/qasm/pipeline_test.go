package qasm_test

import (
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/qasm"
	"repro/internal/qpdo"
)

// TestQASMPipeline drives a parsed program end to end through a full
// QPDO stack — the cmd/qpdo code path as an integration test.
func TestQASMPipeline(t *testing.T) {
	src := `
qubits 3
prep_z q0
prep_z q1
prep_z q2
h q0
cnot q0,q1
cnot q1,q2
x q0
rz(0.25) q2
{ measure q0 | measure q1 | measure q2 }
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, withPF := range []bool{false, true} {
		zeros, ones := 0, 0
		for shot := 0; shot < 60; shot++ {
			qx := layers.NewQxCore(rand.New(rand.NewSource(int64(shot))))
			var stack qpdo.Core = qx
			if withPF {
				stack = layers.NewPauliFrameLayer(qx)
			}
			if err := stack.CreateQubits(prog.Qubits); err != nil {
				t.Fatal(err)
			}
			res, err := qpdo.Run(stack, prog.Circuit.Clone())
			if err != nil {
				t.Fatal(err)
			}
			// GHZ with an X on q0: outcomes are m0 = 1-g, m1 = m2 = g.
			if res.Last(1) != res.Last(2) {
				t.Fatalf("shot %d (pf=%v): GHZ correlation broken", shot, withPF)
			}
			if res.Last(0) == res.Last(1) {
				t.Fatalf("shot %d (pf=%v): X flip missing from q0", shot, withPF)
			}
			if res.Last(1) == 1 {
				ones++
			} else {
				zeros++
			}
		}
		if zeros == 0 || ones == 0 {
			t.Errorf("pf=%v: GHZ branch statistics degenerate: %d/%d", withPF, zeros, ones)
		}
	}
}
