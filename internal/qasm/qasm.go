// Package qasm reads and writes circuits in a minimal QASM-like text
// format, the interface language the thesis uses toward the QX Simulator
// (§4.1.1). One operation per line; operations wrapped in braces and
// separated by pipes share one time slot (the QX parallel syntax):
//
//	# odd Bell state
//	qubits 2
//	prep_z q0
//	h q0
//	cnot q0,q1
//	x q0
//	{ measure q0 | measure q1 }
package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// nameTable maps QASM mnemonics to gates; the reverse map is derived.
var nameTable = map[string]*gates.Gate{
	"i":       gates.I,
	"x":       gates.X,
	"y":       gates.Y,
	"z":       gates.Z,
	"h":       gates.H,
	"s":       gates.S,
	"sdag":    gates.Sdg,
	"t":       gates.T,
	"tdag":    gates.Tdg,
	"cnot":    gates.CNOT,
	"cz":      gates.CZ,
	"swap":    gates.SWAP,
	"toffoli": gates.Toffoli,
	"prep_z":  gates.Prep,
	"measure": gates.Measure,
}

var reverseTable = func() map[gates.Name]string {
	m := make(map[gates.Name]string, len(nameTable))
	for s, g := range nameTable {
		m[g.Name] = s
	}
	return m
}()

// Program is a parsed QASM file: a declared register width plus a
// circuit.
type Program struct {
	Qubits  int
	Circuit *circuit.Circuit
}

// Parse reads a QASM program.
func Parse(src string) (*Program, error) {
	p := &Program{Circuit: circuit.New()}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "qubits ") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "qubits ")))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("qasm: line %d: bad qubit count %q", lineNo, line)
			}
			p.Qubits = n
			continue
		}
		var stmts []string
		if strings.HasPrefix(line, "{") {
			if !strings.HasSuffix(line, "}") {
				return nil, fmt.Errorf("qasm: line %d: unterminated parallel block", lineNo)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(line, "{"), "}")
			stmts = strings.Split(inner, "|")
		} else {
			stmts = []string{line}
		}
		slot := p.Circuit.AppendSlot()
		for _, stmt := range stmts {
			op, err := parseOp(strings.TrimSpace(stmt))
			if err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
			p.Circuit.AddToSlot(slot, op.Gate, op.Qubits...)
		}
	}
	if p.Qubits == 0 {
		p.Qubits = p.Circuit.MaxQubit() + 1
	}
	if err := p.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	if mq := p.Circuit.MaxQubit(); mq >= p.Qubits {
		return nil, fmt.Errorf("qasm: operation on q%d exceeds declared register of %d", mq, p.Qubits)
	}
	return p, nil
}

func parseOp(stmt string) (circuit.Operation, error) {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return circuit.Operation{}, fmt.Errorf("empty statement")
	}
	mnemonic := strings.ToLower(fields[0])
	g, ok := nameTable[mnemonic]
	if !ok {
		if strings.HasPrefix(mnemonic, "rz(") && strings.HasSuffix(mnemonic, ")") {
			theta, err := strconv.ParseFloat(mnemonic[3:len(mnemonic)-1], 64)
			if err != nil {
				return circuit.Operation{}, fmt.Errorf("bad rotation angle in %q", fields[0])
			}
			g = gates.RZ(theta)
		} else {
			return circuit.Operation{}, fmt.Errorf("unknown gate %q", fields[0])
		}
	}
	if len(fields) != 2 {
		return circuit.Operation{}, fmt.Errorf("gate %s wants a comma-separated operand list", fields[0])
	}
	var qubits []int
	for _, tok := range strings.Split(fields[1], ",") {
		tok = strings.TrimSpace(tok)
		if !strings.HasPrefix(tok, "q") {
			return circuit.Operation{}, fmt.Errorf("operand %q must look like q<N>", tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 {
			return circuit.Operation{}, fmt.Errorf("bad operand %q", tok)
		}
		qubits = append(qubits, n)
	}
	if len(qubits) != g.Arity {
		return circuit.Operation{}, fmt.Errorf("gate %s wants %d operands, got %d", g, g.Arity, len(qubits))
	}
	return circuit.NewOp(g, qubits...), nil
}

// Write renders a circuit as QASM text.
func Write(qubits int, c *circuit.Circuit) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "qubits %d\n", qubits)
	for _, slot := range c.Slots {
		if len(slot.Ops) == 0 {
			continue
		}
		stmts := make([]string, 0, len(slot.Ops))
		for _, op := range slot.Ops {
			name, ok := reverseTable[op.Gate.Name]
			if !ok {
				if strings.HasPrefix(string(op.Gate.Name), "rz(") {
					name = string(op.Gate.Name)
				} else {
					return "", fmt.Errorf("qasm: gate %s has no mnemonic", op.Gate)
				}
			}
			qs := make([]string, len(op.Qubits))
			for i, q := range op.Qubits {
				qs[i] = fmt.Sprintf("q%d", q)
			}
			stmts = append(stmts, fmt.Sprintf("%s %s", name, strings.Join(qs, ",")))
		}
		if len(stmts) == 1 {
			b.WriteString(stmts[0])
		} else {
			fmt.Fprintf(&b, "{ %s }", strings.Join(stmts, " | "))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
