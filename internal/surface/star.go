package surface

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// AncillaMode selects how ancilla qubits are provisioned (thesis §5.1.3:
// "Every ninja star can have a unique set of ancilla qubits, or one set
// of ancilla qubits can be shared over all ninja stars").
type AncillaMode int

// Ancilla modes.
const (
	// AncillaDedicated gives each star its own eight ancillas and runs
	// the parallel 8-time-slot ESM of Table 5.8.
	AncillaDedicated AncillaMode = iota
	// AncillaSharedSingle shares one ancilla qubit across all stars and
	// serializes the stabilizer checks; used to keep state-vector
	// verification of two-star logical gates within 19 qubits.
	AncillaSharedSingle
)

// Star is one ninja-star logical qubit: the physical placement of its
// qubits plus its run-time properties (thesis Table 5.2).
type Star struct {
	// Data maps relative data-qubit indices 0..8 to physical indices.
	Data [NumData]int
	// Anc maps relative ancilla indices 0..7 (for qubits 9..16 of the
	// layout) to physical indices. In shared-single mode all entries
	// alias the same physical qubit.
	Anc [NumAncilla]int
	// Mode is the ancilla provisioning mode.
	Mode AncillaMode

	// Rotation is the lattice orientation (toggled by logical Hadamard).
	Rotation Rotation
	// Dance selects full or Z-only ESM rounds.
	Dance DanceMode
	// State is the classically known logical value (0, 1 or x).
	State qpdo.BinaryState

	// esmCache memoizes the ESM circuit per (Rotation, Dance). The
	// circuit is a pure function of those two fields plus Mode and the
	// physical indices, which are fixed after creation, and every layer
	// in the stack treats added circuits as immutable (the error and
	// Pauli-frame layers emit fresh output circuits), so one instance per
	// variant can be replayed every round. ESM dominates the LER
	// hot path — without the cache each round rebuilds an 8-slot,
	// 48-operation circuit.
	esmCache [2][2]*circuit.Circuit
}

// phys translates a relative qubit index (0..16) to a physical index.
func (s *Star) phys(rel int) int {
	if rel < NumData {
		return s.Data[rel]
	}
	return s.Anc[rel-NumData]
}

// activeChecks returns the check groups participating in the current
// dance mode, X-type first.
func (s *Star) activeChecks() (xType, zType []checkSpec) {
	z := ZChecks(s.Rotation)
	if s.Dance == DanceZOnly {
		return nil, z
	}
	return XChecks(s.Rotation), z
}

// SyndromeRound holds the ancilla outcomes of one ESM round, keyed by
// hardware ancilla group (A = layout ancillas 9..12, B = 13..16). Keying
// by hardware rather than by current role lets decoder state survive
// lattice rotations: the supports of a hardware group never change.
type SyndromeRound struct {
	A, B decoder.Syndrome
	// HasA/HasB report whether the group was active this round.
	HasA, HasB bool
}

// isGroupA reports whether a check belongs to hardware group A.
func isGroupA(c checkSpec) bool { return c.anc < 13 }

// ESMCircuit builds the error-syndrome-measurement circuit for the
// star's current orientation and dance mode. In dedicated mode this is
// the parallel 8-slot circuit of thesis Table 5.8 (48 operations for a
// full round); in shared-single mode the checks are serialized on the
// shared ancilla. The companion parse order is always: X-type checks in
// group order, then Z-type checks.
func (s *Star) ESMCircuit() *circuit.Circuit {
	if c := s.esmCache[s.Rotation][s.Dance]; c != nil {
		return c
	}
	var c *circuit.Circuit
	if s.Mode == AncillaSharedSingle {
		c = s.esmShared()
	} else {
		c = s.esmParallel()
	}
	s.esmCache[s.Rotation][s.Dance] = c
	return c
}

func (s *Star) esmParallel() *circuit.Circuit {
	xChecks, zChecks := s.activeChecks()
	c := circuit.New()
	// Slot 1: reset X-type ancillas.
	if len(xChecks) > 0 {
		slot := c.AppendSlot()
		for _, ck := range xChecks {
			c.AddToSlot(slot, gates.Prep, s.phys(ck.anc))
		}
	}
	// Slot 2: reset Z-type ancillas, Hadamard on X-type ancillas.
	slot := c.AppendSlot()
	for _, ck := range zChecks {
		c.AddToSlot(slot, gates.Prep, s.phys(ck.anc))
	}
	for _, ck := range xChecks {
		c.AddToSlot(slot, gates.H, s.phys(ck.anc))
	}
	// Slots 3-6: interleaved CNOTs.
	for step := 0; step < 4; step++ {
		slot := c.AppendSlot()
		for _, ck := range xChecks {
			if d := cnotSchedule(ck)[step]; d >= 0 {
				c.AddToSlot(slot, gates.CNOT, s.phys(ck.anc), s.phys(d))
			}
		}
		for _, ck := range zChecks {
			if d := cnotSchedule(ck)[step]; d >= 0 {
				c.AddToSlot(slot, gates.CNOT, s.phys(d), s.phys(ck.anc))
			}
		}
	}
	// Slot 7: Hadamard on X-type ancillas.
	if len(xChecks) > 0 {
		slot := c.AppendSlot()
		for _, ck := range xChecks {
			c.AddToSlot(slot, gates.H, s.phys(ck.anc))
		}
	}
	// Slot 8: measure all active ancillas, X-type first.
	slot = c.AppendSlot()
	for _, ck := range xChecks {
		c.AddToSlot(slot, gates.Measure, s.phys(ck.anc))
	}
	for _, ck := range zChecks {
		c.AddToSlot(slot, gates.Measure, s.phys(ck.anc))
	}
	return c
}

func (s *Star) esmShared() *circuit.Circuit {
	xChecks, zChecks := s.activeChecks()
	c := circuit.New()
	anc := s.Anc[0]
	appendCheck := func(ck checkSpec, xType bool) {
		c.Add(gates.Prep, anc)
		if xType {
			c.Add(gates.H, anc)
		}
		for _, d := range cnotSchedule(ck) {
			if d < 0 {
				continue
			}
			if xType {
				c.Add(gates.CNOT, anc, s.phys(d))
			} else {
				c.Add(gates.CNOT, s.phys(d), anc)
			}
		}
		if xType {
			c.Add(gates.H, anc)
		}
		c.Add(gates.Measure, anc)
	}
	for _, ck := range xChecks {
		appendCheck(ck, true)
	}
	for _, ck := range zChecks {
		appendCheck(ck, false)
	}
	return c
}

// ParseESM extracts the syndrome round from the trailing measurements of
// an Execute result produced by running ESMCircuit alone.
func (s *Star) ParseESM(res *qpdo.Result) (SyndromeRound, error) {
	xChecks, zChecks := s.activeChecks()
	want := len(xChecks) + len(zChecks)
	if len(res.Measurements) < want {
		return SyndromeRound{}, fmt.Errorf("surface: ESM produced %d measurements, want %d",
			len(res.Measurements), want)
	}
	ms := res.Measurements[len(res.Measurements)-want:]
	var round SyndromeRound
	record := func(ck checkSpec, value int) {
		group := &round.B
		has := &round.HasB
		idx := ck.anc - 13
		if isGroupA(ck) {
			group = &round.A
			has = &round.HasA
			idx = ck.anc - 9
		}
		*has = true
		if value == 1 {
			*group = group.SetBit(idx)
		}
	}
	i := 0
	for _, ck := range xChecks {
		record(ck, ms[i].Value)
		i++
	}
	for _, ck := range zChecks {
		record(ck, ms[i].Value)
		i++
	}
	return round, nil
}

// ResetCircuit returns the transversal data-qubit reset slot.
func (s *Star) ResetCircuit() *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range s.Data {
		c.AddToSlot(slot, gates.Prep, q)
	}
	return c
}

// ChainCircuit returns a one-slot chain of the given Pauli gate over the
// listed relative data qubits (logical X and Z, thesis Fig 2.4).
func (s *Star) ChainCircuit(g *gates.Gate, chain []int) *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, d := range chain {
		c.AddToSlot(slot, g, s.phys(d))
	}
	return c
}

// TransversalCircuit returns a one-slot transversal single-qubit gate
// over all data qubits (logical Hadamard).
func (s *Star) TransversalCircuit(g *gates.Gate) *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range s.Data {
		c.AddToSlot(slot, g, q)
	}
	return c
}

// MeasureCircuit returns the transversal data measurement slot (nine-
// qubit logical measurement, thesis §5.1.4).
func (s *Star) MeasureCircuit() *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, q := range s.Data {
		c.AddToSlot(slot, gates.Measure, q)
	}
	return c
}

// TwoQubitTransversal builds the one-slot transversal two-qubit logical
// gate between stars a (first operand) and b, using the rotated pairing
// when required (thesis §2.6.1).
func TwoQubitTransversal(g *gates.Gate, a, b *Star, rotatedPairing bool) *circuit.Circuit {
	c := circuit.New()
	slot := c.AppendSlot()
	for _, pair := range transversalPairs(rotatedPairing) {
		c.AddToSlot(slot, g, a.phys(pair[0]), b.phys(pair[1]))
	}
	return c
}

// ProbeZLCircuit builds the Z_L stabilizer probe of thesis Fig 5.10a: an
// ancilla-assisted measurement of the Z chain that detects logical X
// errors without disturbing the encoded state. The star's first ancilla
// is reused as the probe ancilla (it is reset first).
func (s *Star) ProbeZLCircuit() *circuit.Circuit {
	anc := s.Anc[0]
	c := circuit.New()
	c.Add(gates.Prep, anc)
	for _, d := range LogicalZ(s.Rotation) {
		c.Add(gates.CNOT, s.phys(d), anc)
	}
	c.Add(gates.Measure, anc)
	return c
}

// ProbeXLCircuit builds the X_L stabilizer probe of thesis Fig 5.10b,
// detecting logical Z errors on a |+⟩_L-type state.
func (s *Star) ProbeXLCircuit() *circuit.Circuit {
	anc := s.Anc[0]
	c := circuit.New()
	c.Add(gates.Prep, anc)
	c.Add(gates.H, anc)
	for _, d := range LogicalX(s.Rotation) {
		c.Add(gates.CNOT, anc, s.phys(d))
	}
	c.Add(gates.H, anc)
	c.Add(gates.Measure, anc)
	return c
}
