package surface

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/qpdo"
)

// logicalExpectations measures ⟨X_L⟩, ⟨Y_L⟩, ⟨Z_L⟩ of star 0 on the
// state-vector back-end. Y_L = iX_L Z_L = Z0 X2 Y4 X6 Z8 exactly.
func logicalExpectations(t *testing.T, l *NinjaStarLayer, qx *layers.QxCore) (x, y, z float64) {
	t.Helper()
	star := l.Star(0)
	phys := func(rel int) int { return star.Data[rel] }
	xl := pauli.XString(phys(2), phys(4), phys(6))
	zl := pauli.ZString(phys(0), phys(4), phys(8))
	yl := pauli.NewPauliString(map[int]pauli.Pauli{
		phys(0): pauli.Z, phys(2): pauli.X, phys(4): pauli.Y,
		phys(6): pauli.X, phys(8): pauli.Z,
	})
	v := qx.Vector()
	return v.ExpectPauli(xl), v.ExpectPauli(yl), v.ExpectPauli(zl)
}

// TestInjectState verifies the injection protocol against the payload's
// Bloch vector for several states, including non-stabilizer ones.
func TestInjectState(t *testing.T) {
	cases := []struct {
		name    string
		prep    func(q int) *circuit.Circuit
		x, y, z float64
	}{
		{"zero", func(q int) *circuit.Circuit { return circuit.New() }, 0, 0, 1},
		{"one", func(q int) *circuit.Circuit { return circuit.New().Add(gates.X, q) }, 0, 0, -1},
		{"plus", func(q int) *circuit.Circuit { return circuit.New().Add(gates.H, q) }, 1, 0, 0},
		{"plus-i", func(q int) *circuit.Circuit {
			return circuit.New().Add(gates.H, q).Add(gates.S, q)
		}, 0, 1, 0},
		{"magic-T", func(q int) *circuit.Circuit {
			return circuit.New().Add(gates.H, q).Add(gates.T, q)
		}, math.Sqrt2 / 2, math.Sqrt2 / 2, 0},
		{"rz(0.7)", func(q int) *circuit.Circuit {
			return circuit.New().Add(gates.H, q).Add(gates.RZ(0.7), q)
		}, math.Cos(0.7), math.Sin(0.7), 0},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			qx := layers.NewQxCore(rand.New(rand.NewSource(77)))
			l := NewNinjaStarLayer(qx, Config{Ancilla: AncillaDedicated})
			if err := l.CreateQubits(1); err != nil {
				t.Fatal(err)
			}
			if err := l.InjectState(0, cse.prep); err != nil {
				t.Fatal(err)
			}
			// The code space is intact: all stabilizers +1.
			round, err := l.RunESMRound(0)
			if err != nil {
				t.Fatal(err)
			}
			if round.A != 0 || round.B != 0 {
				t.Fatalf("dirty syndrome after injection: %+v", round)
			}
			gx, gy, gz := logicalExpectations(t, l, qx)
			if math.Abs(gx-cse.x) > 1e-9 || math.Abs(gy-cse.y) > 1e-9 || math.Abs(gz-cse.z) > 1e-9 {
				t.Errorf("Bloch vector (%.4f, %.4f, %.4f), want (%.4f, %.4f, %.4f)",
					gx, gy, gz, cse.x, cse.y, cse.z)
			}
		})
	}
}

// TestInjectedStateSurvivesQEC runs windows over an injected magic state
// on a noiseless stack and checks the Bloch vector is untouched, then
// corrects an injected physical error without damaging it.
func TestInjectedStateSurvivesQEC(t *testing.T) {
	qx := layers.NewQxCore(rand.New(rand.NewSource(78)))
	l := NewNinjaStarLayer(qx, Config{Ancilla: AncillaDedicated})
	if err := l.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	prep := func(q int) *circuit.Circuit {
		return circuit.New().Add(gates.H, q).Add(gates.T, q)
	}
	if err := l.InjectState(0, prep); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if _, err := l.RunWindow(0); err != nil {
			t.Fatal(err)
		}
	}
	gx, gy, gz := logicalExpectations(t, l, qx)
	want := math.Sqrt2 / 2
	if math.Abs(gx-want) > 1e-9 || math.Abs(gy-want) > 1e-9 || math.Abs(gz) > 1e-9 {
		t.Fatalf("QEC idling damaged the magic state: (%.4f, %.4f, %.4f)", gx, gy, gz)
	}
	// A single physical X error is corrected without logical damage.
	if _, err := qpdo.Run(qx, circuit.New().Add(gates.X, l.Star(0).Data[7])); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		if _, err := l.RunWindow(0); err != nil {
			t.Fatal(err)
		}
	}
	gx, gy, gz = logicalExpectations(t, l, qx)
	if math.Abs(gx-want) > 1e-9 || math.Abs(gy-want) > 1e-9 || math.Abs(gz) > 1e-9 {
		t.Fatalf("error correction damaged the magic state: (%.4f, %.4f, %.4f)", gx, gy, gz)
	}
}

// TestInjectThenLogicalOps applies logical gates to an injected state:
// X_L flips ⟨Z_L⟩, Z_L flips ⟨X_L⟩ and ⟨Y_L⟩.
func TestInjectThenLogicalOps(t *testing.T) {
	qx := layers.NewQxCore(rand.New(rand.NewSource(79)))
	l := NewNinjaStarLayer(qx, Config{Ancilla: AncillaDedicated})
	if err := l.CreateQubits(1); err != nil {
		t.Fatal(err)
	}
	if err := l.InjectState(0, func(q int) *circuit.Circuit {
		return circuit.New().Add(gates.H, q).Add(gates.RZ(0.5), q)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	gx, gy, _ := logicalExpectations(t, l, qx)
	if math.Abs(gx+math.Cos(0.5)) > 1e-9 || math.Abs(gy+math.Sin(0.5)) > 1e-9 {
		t.Errorf("Z_L on injected state: (%.4f, %.4f), want (%.4f, %.4f)",
			gx, gy, -math.Cos(0.5), -math.Sin(0.5))
	}
}
