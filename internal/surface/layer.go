package surface

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// Shared LUTs per hardware ancilla group; the supports never change, so
// one table per group serves every star and both orientations.
var (
	lutA = decoder.BuildLUT(XSupports(RotNormal), NumData)
	lutB = decoder.BuildLUT(ZSupports(RotNormal), NumData)
)

// Config tunes a NinjaStarLayer.
type Config struct {
	// Ancilla selects dedicated per-star ancillas (default) or one
	// shared ancilla across all stars.
	Ancilla AncillaMode
	// InitRounds is the number of ESM rounds run during logical reset
	// before decoding initialization errors (thesis §2.6.1 prescribes d
	// rounds; the functional verification of §5.1.4 uses one).
	InitRounds int
	// PostMeasureRounds is the number of Z-only ESM rounds run after a
	// logical measurement to detect X errors (thesis §2.6.1 step 2).
	PostMeasureRounds int
	// DecoderRule selects the windowed decoding rule; the default
	// agreement rule is fault-tolerant, the intersection rule is the
	// ablation baseline with a known O(p) logical leak.
	DecoderRule decoder.Rule
}

func (c Config) withDefaults() Config {
	if c.InitRounds <= 0 {
		c.InitRounds = 1
	}
	if c.PostMeasureRounds <= 0 {
		c.PostMeasureRounds = 2
	}
	return c
}

// starState couples a star with its windowed decoders, one per hardware
// ancilla group (the group supports are rotation-invariant, so decoder
// carries survive logical Hadamards).
type starState struct {
	star       *Star
	decA, decB *decoder.WindowDecoder
}

// WindowStats reports what one QEC window did (thesis Fig 2.6: one or
// more ESM rounds, decode, apply corrections).
type WindowStats struct {
	// CorrectionGates is the number of physical correction gates issued.
	CorrectionGates int
	// CorrectionSlots is 1 when a correction time slot was issued.
	CorrectionSlots int
}

// NinjaStarLayer is the QEC layer for SC17 logical qubits (thesis
// §5.1.3): it accepts logical circuits through the standard Core
// interface, converts each logical operation into physical operations
// based on the stars' run-time properties (Table 5.3), inserts ESM
// rounds, decodes syndromes and applies corrections.
type NinjaStarLayer struct {
	qpdo.Forwarder
	cfg   Config
	stars []*starState
	queue []*circuit.Circuit
}

// NewNinjaStarLayer stacks a ninja-star layer above next.
func NewNinjaStarLayer(next qpdo.Core, cfg Config) *NinjaStarLayer {
	return &NinjaStarLayer{Forwarder: qpdo.Forwarder{Next: next}, cfg: cfg.withDefaults()}
}

// CreateQubits allocates n logical qubits. In dedicated mode each star
// claims 17 physical qubits; in shared-single mode all stars share one
// trailing ancilla and only a single CreateQubits call is supported.
func (l *NinjaStarLayer) CreateQubits(n int) error {
	if n <= 0 {
		return fmt.Errorf("surface: cannot create %d logical qubits", n)
	}
	switch l.cfg.Ancilla {
	case AncillaDedicated:
		for i := 0; i < n; i++ {
			base := l.Next.NumQubits()
			if err := l.Next.CreateQubits(NumQubits); err != nil {
				return err
			}
			st := &Star{Mode: AncillaDedicated, State: qpdo.StateUnknown}
			for d := 0; d < NumData; d++ {
				st.Data[d] = base + d
			}
			for a := 0; a < NumAncilla; a++ {
				st.Anc[a] = base + NumData + a
			}
			l.addStar(st)
		}
	case AncillaSharedSingle:
		if len(l.stars) > 0 {
			return fmt.Errorf("surface: shared-ancilla mode supports a single CreateQubits call")
		}
		base := l.Next.NumQubits()
		if err := l.Next.CreateQubits(n*NumData + 1); err != nil {
			return err
		}
		shared := base + n*NumData
		for i := 0; i < n; i++ {
			st := &Star{Mode: AncillaSharedSingle, State: qpdo.StateUnknown}
			for d := 0; d < NumData; d++ {
				st.Data[d] = base + i*NumData + d
			}
			for a := 0; a < NumAncilla; a++ {
				st.Anc[a] = shared
			}
			l.addStar(st)
		}
	default:
		return fmt.Errorf("surface: unknown ancilla mode %d", l.cfg.Ancilla)
	}
	return nil
}

func (l *NinjaStarLayer) addStar(st *Star) {
	decA := decoder.NewWindowDecoder(lutA)
	decB := decoder.NewWindowDecoder(lutB)
	decA.SetRule(l.cfg.DecoderRule)
	decB.SetRule(l.cfg.DecoderRule)
	l.stars = append(l.stars, &starState{star: st, decA: decA, decB: decB})
}

// RemoveQubits is not supported for logical qubits: a star holds an
// encoded state that cannot be silently discarded.
func (l *NinjaStarLayer) RemoveQubits(int) error {
	return fmt.Errorf("surface: logical qubit removal is not supported")
}

// NumQubits returns the number of logical qubits.
func (l *NinjaStarLayer) NumQubits() int { return len(l.stars) }

// Star exposes the run-time properties of logical qubit i.
func (l *NinjaStarLayer) Star(i int) *Star { return l.stars[i].star }

// Add queues a logical circuit.
func (l *NinjaStarLayer) Add(c *circuit.Circuit) error {
	if err := qpdo.Validate(c, len(l.stars)); err != nil {
		return err
	}
	for _, slot := range c.Slots {
		for _, op := range slot.Ops {
			switch op.Gate.Name {
			case gates.PrepZ, gates.MeasZ, gates.GateI, gates.GateX, gates.GateY,
				gates.GateZ, gates.GateH, gates.GateCNOT, gates.GateCZ:
			default:
				return fmt.Errorf("surface: logical gate %s is not fault-tolerantly implementable on SC17", op.Gate)
			}
		}
	}
	l.queue = append(l.queue, c)
	return nil
}

// Execute converts and runs every queued logical operation in order. The
// returned measurements are logical: Qubit is the logical index.
func (l *NinjaStarLayer) Execute() (*qpdo.Result, error) {
	res := &qpdo.Result{}
	for _, c := range l.queue {
		for _, slot := range c.Slots {
			for _, op := range slot.Ops {
				if err := l.execOp(op, res); err != nil {
					l.queue = l.queue[:0]
					return nil, err
				}
			}
		}
	}
	l.queue = l.queue[:0]
	return res, nil
}

func (l *NinjaStarLayer) execOp(op circuit.Operation, res *qpdo.Result) error {
	st := l.stars[op.Qubits[0]]
	switch op.Gate.Name {
	case gates.GateI:
		return nil
	case gates.PrepZ:
		return l.resetStar(st)
	case gates.MeasZ:
		out, err := l.measureStar(st)
		if err != nil {
			return err
		}
		res.Measurements = append(res.Measurements,
			qpdo.Measurement{Qubit: op.Qubits[0], Value: out})
		return nil
	case gates.GateX:
		if err := l.runLower(st.star.ChainCircuit(gates.X, LogicalX(st.star.Rotation))); err != nil {
			return err
		}
		switch st.star.State {
		case qpdo.StateZero:
			st.star.State = qpdo.StateOne
		case qpdo.StateOne:
			st.star.State = qpdo.StateZero
		}
		return nil
	case gates.GateZ:
		return l.runLower(st.star.ChainCircuit(gates.Z, LogicalZ(st.star.Rotation)))
	case gates.GateY:
		// Y_L = i X_L Z_L: both chains, global phase ignored.
		if err := l.runLower(st.star.ChainCircuit(gates.Z, LogicalZ(st.star.Rotation))); err != nil {
			return err
		}
		return l.execOp(circuit.NewOp(gates.X, op.Qubits[0]), res)
	case gates.GateH:
		if err := l.runLower(st.star.TransversalCircuit(gates.H)); err != nil {
			return err
		}
		st.star.Rotation = st.star.Rotation.Flip()
		st.star.State = qpdo.StateUnknown
		return nil
	case gates.GateCNOT:
		a, b := l.stars[op.Qubits[0]], l.stars[op.Qubits[1]]
		rotated := a.star.Rotation != b.star.Rotation
		if err := l.runLower(TwoQubitTransversal(gates.CNOT, a.star, b.star, rotated)); err != nil {
			return err
		}
		switch {
		case a.star.State == qpdo.StateUnknown:
			b.star.State = qpdo.StateUnknown
		case a.star.State == qpdo.StateOne:
			switch b.star.State {
			case qpdo.StateZero:
				b.star.State = qpdo.StateOne
			case qpdo.StateOne:
				b.star.State = qpdo.StateZero
			}
		}
		return nil
	case gates.GateCZ:
		a, b := l.stars[op.Qubits[0]], l.stars[op.Qubits[1]]
		// CZ uses the opposite pairing convention from CNOT (thesis
		// §2.6.1): rotated pairing when the orientations match.
		rotated := a.star.Rotation == b.star.Rotation
		return l.runLower(TwoQubitTransversal(gates.CZ, a.star, b.star, rotated))
	default:
		return fmt.Errorf("surface: unsupported logical operation %s", op.Gate)
	}
}

// runLower sends one circuit through the lower stack and executes it,
// discarding measurement results.
func (l *NinjaStarLayer) runLower(c *circuit.Circuit) error {
	if err := l.Next.Add(c); err != nil {
		return err
	}
	_, err := l.Next.Execute()
	return err
}

// runESM executes one ESM round for a star and parses the syndromes.
func (l *NinjaStarLayer) runESM(st *starState) (SyndromeRound, error) {
	if err := l.Next.Add(st.star.ESMCircuit()); err != nil {
		return SyndromeRound{}, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return SyndromeRound{}, err
	}
	return st.star.ParseESM(res)
}

// RunESMRound runs one ESM round for logical qubit i and returns the
// syndromes; used directly by the experiment harness.
func (l *NinjaStarLayer) RunESMRound(i int) (SyndromeRound, error) {
	return l.runESM(l.stars[i])
}

// correctionCircuit builds the single correction time slot for the
// decoded data-qubit corrections of each hardware group. Group-A checks
// measure X stabilizers in the normal orientation, so their syndromes
// call for Z corrections (and X corrections when rotated); group B is
// the opposite. A qubit needing both X and Z receives a single Y (equal
// to XZ up to global phase).
func (l *NinjaStarLayer) correctionCircuit(st *starState, corrA, corrB []int) *circuit.Circuit {
	gateA, gateB := gates.Z, gates.X
	if st.star.Rotation == RotRotated {
		gateA, gateB = gates.X, gates.Z
	}
	kinds := map[int]*gates.Gate{}
	for _, d := range corrA {
		kinds[d] = gateA
	}
	for _, d := range corrB {
		if prev, ok := kinds[d]; ok && prev != gateB {
			kinds[d] = gates.Y
		} else {
			kinds[d] = gateB
		}
	}
	if len(kinds) == 0 {
		return nil
	}
	c := circuit.New()
	slot := c.AppendSlot()
	for d := 0; d < NumData; d++ {
		if g, ok := kinds[d]; ok {
			c.AddToSlot(slot, g, st.star.phys(d))
		}
	}
	return c
}

// RunWindow executes one QEC window for logical qubit i: two ESM rounds,
// windowed decoding against the carried round, and one correction slot
// when corrections are due (thesis §5.3, Fig 5.9).
func (l *NinjaStarLayer) RunWindow(i int) (WindowStats, error) {
	st := l.stars[i]
	r1, err := l.runESM(st)
	if err != nil {
		return WindowStats{}, err
	}
	r2, err := l.runESM(st)
	if err != nil {
		return WindowStats{}, err
	}
	var corrA, corrB []int
	if r1.HasA && r2.HasA {
		corrA = st.decA.Decode(r1.A, r2.A)
	}
	if r1.HasB && r2.HasB {
		corrB = st.decB.Decode(r1.B, r2.B)
	}
	var stats WindowStats
	if c := l.correctionCircuit(st, corrA, corrB); c != nil {
		stats.CorrectionGates = c.NumOps()
		stats.CorrectionSlots = 1
		if err := l.runLower(c); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// resetStar initializes a star to |0⟩_L (thesis §2.6.1): transversal
// data reset, InitRounds rounds of ESM, decode the final round
// absolutely and apply sign-fix corrections.
func (l *NinjaStarLayer) resetStar(st *starState) error {
	st.star.Rotation = RotNormal
	st.star.Dance = DanceAll
	if err := l.runLower(st.star.ResetCircuit()); err != nil {
		return err
	}
	var round SyndromeRound
	for i := 0; i < l.cfg.InitRounds; i++ {
		var err error
		round, err = l.runESM(st)
		if err != nil {
			return err
		}
	}
	corrA := lutA.Corrections(round.A)
	corrB := lutB.Corrections(round.B)
	if c := l.correctionCircuit(st, corrA, corrB); c != nil {
		if err := l.runLower(c); err != nil {
			return err
		}
	}
	st.decA.Reset()
	st.decB.Reset()
	st.star.State = qpdo.StateZero
	return nil
}

// measureStar performs the fault-tolerant nine-qubit logical measurement
// (thesis §2.6.1): transversal data measurement, Z-only ESM rounds to
// detect X errors during the procedure, result correction, and the
// parity of the corrected outcomes as logical result.
func (l *NinjaStarLayer) measureStar(st *starState) (int, error) {
	if err := l.Next.Add(st.star.MeasureCircuit()); err != nil {
		return 0, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return 0, err
	}
	if len(res.Measurements) < NumData {
		return 0, fmt.Errorf("surface: logical measurement returned %d results", len(res.Measurements))
	}
	ms := res.Measurements[len(res.Measurements)-NumData:]
	var vals [NumData]int
	for i, m := range ms {
		_ = i
		// Map physical index back to relative data index.
		rel := -1
		for d, phys := range st.star.Data {
			if phys == m.Qubit {
				rel = d
				break
			}
		}
		if rel < 0 {
			return 0, fmt.Errorf("surface: unexpected measurement of qubit %d", m.Qubit)
		}
		vals[rel] = m.Value
	}

	// Partial (Z-only) ESM rounds to catch X errors (thesis §2.6.1).
	st.star.Dance = DanceZOnly
	zSup := ZSupports(st.star.Rotation)
	detections := make([]decoder.Syndrome, 0, l.cfg.PostMeasureRounds)
	for r := 0; r < l.cfg.PostMeasureRounds; r++ {
		round, err := l.runESM(st)
		if err != nil {
			return 0, err
		}
		syn := round.B
		if st.star.Rotation == RotRotated {
			syn = round.A
		}
		// Expected parity from the reported results: a mismatch flags an
		// X error during or after the transversal measurement.
		var expect decoder.Syndrome
		for i, sup := range zSup {
			parity := 0
			for _, d := range sup {
				parity ^= vals[d]
			}
			if parity == 1 {
				expect = expect.SetBit(i)
			}
		}
		detections = append(detections, syn^expect)
	}
	// Persistent detections (seen in every round) are decoded as X
	// errors and the corresponding reported results are flipped.
	persistent := ^decoder.Syndrome(0) & 0x0f
	for _, d := range detections {
		persistent &= d
	}
	lut := lutB
	if st.star.Rotation == RotRotated {
		lut = lutA
	}
	for _, d := range lut.Corrections(persistent) {
		vals[d] ^= 1
	}

	out := 0
	for _, v := range vals {
		out ^= v
	}
	st.star.State = qpdo.BinaryState(out)
	return out, nil
}

// MeasureX performs a logical X-basis measurement of qubit i by
// composing the fault-tolerant primitives of Table 2.3: a transversal
// logical Hadamard (which rotates the lattice) followed by the nine-
// qubit Z-basis measurement. Returns 0 for the +1 (|+⟩_L) outcome.
func (l *NinjaStarLayer) MeasureX(i int) (int, error) {
	if err := l.execOp(circuit.NewOp(gates.H, i), nil); err != nil {
		return 0, err
	}
	return l.measureStar(l.stars[i])
}

// ProbeZL measures the Z_L stabilizer chain of logical qubit i with an
// ancilla (thesis Fig 5.10a) and returns the ancilla outcome (0 ↔ +1).
// Run it under bypass mode for error-free diagnostics.
func (l *NinjaStarLayer) ProbeZL(i int) (int, error) {
	return l.runProbe(l.stars[i].star.ProbeZLCircuit())
}

// ProbeXL measures the X_L stabilizer chain (thesis Fig 5.10b).
func (l *NinjaStarLayer) ProbeXL(i int) (int, error) {
	return l.runProbe(l.stars[i].star.ProbeXLCircuit())
}

func (l *NinjaStarLayer) runProbe(c *circuit.Circuit) (int, error) {
	if err := l.Next.Add(c); err != nil {
		return 0, err
	}
	res, err := l.Next.Execute()
	if err != nil {
		return 0, err
	}
	if len(res.Measurements) == 0 {
		return 0, fmt.Errorf("surface: probe produced no measurement")
	}
	return res.Measurements[len(res.Measurements)-1].Value, nil
}

// GetState reports the classically known logical states.
func (l *NinjaStarLayer) GetState() (*qpdo.State, error) {
	st := &qpdo.State{Values: make([]qpdo.BinaryState, len(l.stars))}
	for i, s := range l.stars {
		st.Values[i] = s.star.State
	}
	return st, nil
}
