package surface_test

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// A logical qubit end to end: initialize |0⟩_L on a stabilizer back-end,
// apply a logical X, run a QEC window, and measure.
func Example() {
	chp := layers.NewChpCore(rand.New(rand.NewSource(1)))
	star := surface.NewNinjaStarLayer(chp, surface.Config{Ancilla: surface.AncillaDedicated})
	if err := star.CreateQubits(1); err != nil {
		panic(err)
	}

	c := circuit.New().
		Add(gates.Prep, 0). // |0⟩_L: reset + ESM + decode
		Add(gates.X, 0)     // X_L chain on D2, D4, D6
	if _, err := qpdo.Run(star, c); err != nil {
		panic(err)
	}
	if _, err := star.RunWindow(0); err != nil {
		panic(err)
	}
	res, err := qpdo.Run(star, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("rotation=%s logical=%d\n", star.Star(0).Rotation, res.Last(0))

	// Output:
	// rotation=normal logical=1
}
