// Package surface implements the Surface Code 17 ("ninja star") logical
// qubit of the thesis (§2.5.1, §2.6.1, Chapter 5): the 17-qubit planar
// surface-code layout, the 8-time-slot Error Syndrome Measurement circuit
// (Table 5.8) with the two CNOT interaction patterns of Figs 2.2–2.3, the
// run-time properties of a ninja star (Table 5.2), the rotation-aware
// logical operations of Table 2.3/5.3, and a QPDO layer that converts
// logical circuits into physical operations with integrated QEC.
package surface

import "repro/internal/pauli"

// NumData and NumAncilla size one ninja star.
const (
	NumData    = 9
	NumAncilla = 8
	NumQubits  = NumData + NumAncilla
)

// Rotation is the lattice orientation property (thesis Table 5.2): a
// transversal logical Hadamard swaps the roles of the X and Z ancillas,
// equivalent to rotating the lattice by 90 degrees.
type Rotation int

// Rotation values.
const (
	RotNormal Rotation = iota
	RotRotated
)

// Flip toggles the orientation.
func (r Rotation) Flip() Rotation { return 1 - r }

// String renders the thesis property value.
func (r Rotation) String() string {
	if r == RotRotated {
		return "rotated"
	}
	return "normal"
}

// DanceMode selects which ancillas participate in an ESM round
// (thesis Table 5.2): all of them, or only the Z-type checks (used after
// a logical measurement to catch X errors).
type DanceMode int

// Dance modes.
const (
	DanceAll DanceMode = iota
	DanceZOnly
)

// String renders the thesis property value.
func (d DanceMode) String() string {
	if d == DanceZOnly {
		return "z_only"
	}
	return "all"
}

// checkSpec places one stabilizer check: the relative index of its
// ancilla and the relative data-qubit index at each diagonal neighbor
// position (-1 when the boundary check has no neighbor there).
type checkSpec struct {
	anc            int
	nw, ne, sw, se int
	// sPattern selects the S interaction pattern (Fig 2.2) instead of the
	// Z pattern (Fig 2.3). The pattern is a property of the hardware
	// ancilla, not of its current role: it stays fixed across lattice
	// rotations so the interleaved schedule never double-books a data
	// qubit within a time slot.
	sPattern bool
}

// support lists the data qubits of the check in ascending order.
func (c checkSpec) support() []int {
	var out []int
	for _, d := range []int{c.nw, c.ne, c.sw, c.se} {
		if d >= 0 {
			out = append(out, d)
		}
	}
	// Neighbor positions are not sorted; insertion sort the few entries.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// The SC17 layout (thesis Fig 2.1). Data qubits are 0..8 row-major:
//
//	D0 D1 D2
//	D3 D4 D5
//	D6 D7 D8
//
// Ancillas 9..12 are the X checks of Table 2.1 (X0X1X3X4, X1X2,
// X4X5X7X8, X6X7); ancillas 13..16 are the Z checks (Z0Z3, Z1Z2Z4Z5,
// Z3Z4Z6Z7, Z5Z8).
var (
	groupA = []checkSpec{ // X checks in the normal orientation (S pattern)
		{anc: 9, nw: 0, ne: 1, sw: 3, se: 4, sPattern: true},
		{anc: 10, nw: -1, ne: -1, sw: 1, se: 2, sPattern: true},
		{anc: 11, nw: 4, ne: 5, sw: 7, se: 8, sPattern: true},
		{anc: 12, nw: 6, ne: 7, sw: -1, se: -1, sPattern: true},
	}
	groupB = []checkSpec{ // Z checks in the normal orientation (Z pattern)
		{anc: 13, nw: -1, ne: 0, sw: -1, se: 3},
		{anc: 14, nw: 1, ne: 2, sw: 4, se: 5},
		{anc: 15, nw: 3, ne: 4, sw: 6, se: 7},
		{anc: 16, nw: 5, ne: -1, sw: 8, se: -1},
	}
)

// XChecks returns the checks acting as X-stabilizer measurements in the
// given orientation; after a logical Hadamard the hardware groups swap
// roles (thesis Fig 2.5).
func XChecks(r Rotation) []checkSpec {
	if r == RotNormal {
		return groupA
	}
	return groupB
}

// ZChecks returns the checks acting as Z-stabilizer measurements.
func ZChecks(r Rotation) []checkSpec {
	if r == RotNormal {
		return groupB
	}
	return groupA
}

// XSupports returns the supports of the X stabilizers in order, for
// decoder construction.
func XSupports(r Rotation) [4][]int {
	var out [4][]int
	for i, c := range XChecks(r) {
		out[i] = c.support()
	}
	return out
}

// ZSupports returns the supports of the Z stabilizers in order.
func ZSupports(r Rotation) [4][]int {
	var out [4][]int
	for i, c := range ZChecks(r) {
		out[i] = c.support()
	}
	return out
}

// cnotSchedule gives the data-qubit position touched in each of the four
// CNOT time slots. Group-A ancillas use the S pattern of thesis Fig 2.2
// (NE, NW, SE, SW); group-B ancillas the Z pattern of Fig 2.3
// (NE, SE, NW, SW). Using different patterns for the two groups prevents
// ancilla hook errors from entering the logical state (thesis §2.5.1,
// [19]) and keeps the interleaved schedule conflict-free.
func cnotSchedule(c checkSpec) [4]int {
	if c.sPattern {
		return [4]int{c.ne, c.nw, c.se, c.sw}
	}
	return [4]int{c.ne, c.se, c.nw, c.sw}
}

// LogicalX returns the data-qubit chain of the logical X operator in the
// given orientation: D2,D4,D6 normally, rotating onto D0,D4,D8 (thesis
// Figs 2.4–2.5).
func LogicalX(r Rotation) []int {
	if r == RotNormal {
		return []int{2, 4, 6}
	}
	return []int{0, 4, 8}
}

// LogicalZ returns the data-qubit chain of the logical Z operator:
// D0,D4,D8 normally, rotating onto D2,D4,D6.
func LogicalZ(r Rotation) []int {
	if r == RotNormal {
		return []int{0, 4, 8}
	}
	return []int{2, 4, 6}
}

// transversalPairs gives the data-qubit pairing of a transversal
// two-qubit logical gate between stars A and B (thesis §2.6.1): the
// straight pairing (A_Dn, B_Dn) or the rotated pairing
// {(0,6),(1,3),(2,0),(3,7),(4,4),(5,1),(6,8),(7,5),(8,2)}.
func transversalPairs(rotated bool) [9][2]int {
	if !rotated {
		var out [9][2]int
		for i := range out {
			out[i] = [2]int{i, i}
		}
		return out
	}
	return [9][2]int{
		{0, 6}, {1, 3}, {2, 0}, {3, 7}, {4, 4}, {5, 1}, {6, 8}, {7, 5}, {8, 2},
	}
}

// StabilizerStrings returns the eight stabilizer generators of the star
// in the given orientation as Pauli strings over relative qubit indices
// 0..8, for verification against thesis Table 2.1.
func StabilizerStrings(r Rotation) []pauli.PauliString {
	var out []pauli.PauliString
	for _, c := range XChecks(r) {
		out = append(out, pauli.XString(c.support()...))
	}
	for _, c := range ZChecks(r) {
		out = append(out, pauli.ZString(c.support()...))
	}
	return out
}
