package surface

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/qpdo"
)

// TestESMStructure reproduces thesis Table 5.8: the full parallel ESM
// circuit has 8 time slots and 48 operations with the documented
// composition.
func TestESMStructure(t *testing.T) {
	st := &Star{Mode: AncillaDedicated}
	for i := 0; i < NumData; i++ {
		st.Data[i] = i
	}
	for i := 0; i < NumAncilla; i++ {
		st.Anc[i] = NumData + i
	}
	c := st.ESMCircuit()
	if err := c.Validate(); err != nil {
		t.Fatalf("ESM circuit invalid: %v", err)
	}
	if c.NumSlots() != 8 {
		t.Fatalf("ESM slots = %d, want 8", c.NumSlots())
	}
	if c.NumOps() != 48 {
		t.Fatalf("ESM ops = %d, want 48", c.NumOps())
	}
	wantPerSlot := []int{4, 8, 6, 6, 6, 6, 4, 8}
	cnots := 0
	for i, slot := range c.Slots {
		if len(slot.Ops) != wantPerSlot[i] {
			t.Errorf("slot %d has %d ops, want %d", i+1, len(slot.Ops), wantPerSlot[i])
		}
		for _, op := range slot.Ops {
			if op.Gate == gates.CNOT {
				cnots++
			}
		}
	}
	if cnots != 24 {
		t.Errorf("CNOT count = %d, want 24", cnots)
	}
	// Rotated orientation keeps the same shape.
	st.Rotation = RotRotated
	c2 := st.ESMCircuit()
	if err := c2.Validate(); err != nil {
		t.Fatalf("rotated ESM invalid: %v", err)
	}
	if c2.NumSlots() != 8 || c2.NumOps() != 48 {
		t.Errorf("rotated ESM: slots=%d ops=%d", c2.NumSlots(), c2.NumOps())
	}
	// Z-only dance mode drops the X-check machinery.
	st.Rotation = RotNormal
	st.Dance = DanceZOnly
	c3 := st.ESMCircuit()
	if err := c3.Validate(); err != nil {
		t.Fatalf("z-only ESM invalid: %v", err)
	}
	if c3.NumSlots() != 6 {
		t.Errorf("z-only ESM slots = %d, want 6", c3.NumSlots())
	}
	if got := c3.CountClass(gates.ClassMeasure); got != 4 {
		t.Errorf("z-only measurements = %d, want 4", got)
	}
}

func TestSpecSupports(t *testing.T) {
	// Thesis Table 2.1 stabilizer supports.
	wantX := [4][]int{{0, 1, 3, 4}, {1, 2}, {4, 5, 7, 8}, {6, 7}}
	wantZ := [4][]int{{0, 3}, {1, 2, 4, 5}, {3, 4, 6, 7}, {5, 8}}
	gotX, gotZ := XSupports(RotNormal), ZSupports(RotNormal)
	for i := range wantX {
		if !eqInts(gotX[i], wantX[i]) {
			t.Errorf("X support %d = %v, want %v", i, gotX[i], wantX[i])
		}
		if !eqInts(gotZ[i], wantZ[i]) {
			t.Errorf("Z support %d = %v, want %v", i, gotZ[i], wantZ[i])
		}
	}
	// Rotation swaps the roles of the hardware groups.
	if !eqInts(XSupports(RotRotated)[0], wantZ[0]) || !eqInts(ZSupports(RotRotated)[0], wantX[0]) {
		t.Error("rotation did not swap check roles")
	}
	// Logical chains (thesis Figs 2.4-2.5).
	if !eqInts(LogicalX(RotNormal), []int{2, 4, 6}) || !eqInts(LogicalZ(RotNormal), []int{0, 4, 8}) {
		t.Error("normal-orientation logical chains wrong")
	}
	if !eqInts(LogicalX(RotRotated), []int{0, 4, 8}) || !eqInts(LogicalZ(RotRotated), []int{2, 4, 6}) {
		t.Error("rotated-orientation logical chains wrong")
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newQxStack builds ninja-star layer → QxCore with n logical qubits.
func newQxStack(t *testing.T, n int, mode AncillaMode, seed int64) (*NinjaStarLayer, *layers.QxCore) {
	t.Helper()
	qx := layers.NewQxCore(rand.New(rand.NewSource(seed)))
	l := NewNinjaStarLayer(qx, Config{Ancilla: mode})
	if err := l.CreateQubits(n); err != nil {
		t.Fatal(err)
	}
	return l, qx
}

// newChpStack builds ninja-star layer → ChpCore.
func newChpStack(t *testing.T, n int, seed int64) (*NinjaStarLayer, *layers.ChpCore) {
	t.Helper()
	ch := layers.NewChpCore(rand.New(rand.NewSource(seed)))
	l := NewNinjaStarLayer(ch, Config{Ancilla: AncillaDedicated})
	if err := l.CreateQubits(n); err != nil {
		t.Fatal(err)
	}
	return l, ch
}

// codewordSupport returns the expected basis states of |b⟩_L as a set of
// 9-bit masks: the X-stabilizer orbit of the all-zeros string, offset by
// the logical X chain for b = 1.
func codewordSupport(one bool) map[uint]bool {
	masks := []uint{}
	for _, sup := range XSupports(RotNormal) {
		m := uint(0)
		for _, d := range sup {
			m |= 1 << uint(d)
		}
		masks = append(masks, m)
	}
	offset := uint(0)
	if one {
		for _, d := range LogicalX(RotNormal) {
			offset |= 1 << uint(d)
		}
	}
	out := map[uint]bool{}
	for combo := 0; combo < 16; combo++ {
		v := offset
		for i, m := range masks {
			if combo&(1<<uint(i)) != 0 {
				v ^= m
			}
		}
		out[v] = true
	}
	return out
}

// dataState extracts the 9-qubit data subsystem of logical qubit 0.
func dataState(t *testing.T, l *NinjaStarLayer, qx *layers.QxCore, q int) map[uint]complex128 {
	t.Helper()
	keep := make([]int, NumData)
	for i := range keep {
		keep[i] = l.Star(q).Data[i]
	}
	sub, err := qx.Vector().ExtractSubsystem(keep)
	if err != nil {
		t.Fatalf("extracting data subsystem: %v", err)
	}
	out := map[uint]complex128{}
	for _, e := range sub.Support(1e-9) {
		out[e.Basis] = e.Amp
	}
	return out
}

// TestInitZeroState reproduces thesis Listing 5.1: after initialization
// the nine data qubits hold the uniform 16-term superposition of even-
// parity codewords with amplitude +0.25.
func TestInitZeroState(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		l, qx := newQxStack(t, 1, AncillaDedicated, int64(100+iter))
		if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
			t.Fatal(err)
		}
		got := dataState(t, l, qx, 0)
		want := codewordSupport(false)
		if len(got) != 16 {
			t.Fatalf("iter %d: support size %d, want 16", iter, len(got))
		}
		// Fix the global phase by the first codeword and require all
		// amplitudes equal 0.25 up to it.
		var phase complex128
		for b := range want {
			if a, ok := got[b]; ok {
				phase = a / complex(0.25, 0)
				break
			}
		}
		for b := range want {
			a, ok := got[b]
			if !ok {
				t.Fatalf("iter %d: codeword %09b missing", iter, b)
			}
			if cmplx.Abs(a-phase*complex(0.25, 0)) > 1e-9 {
				t.Fatalf("iter %d: amplitude of %09b = %v", iter, b, a)
			}
		}
		// Parity check: every codeword has even weight (Listing 5.1).
		for b := range got {
			if popcount(b)%2 != 0 {
				t.Fatalf("odd-parity state %09b in |0⟩_L", b)
			}
		}
	}
}

func popcount(v uint) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestLogicalOneState reproduces thesis Listing 5.2: |1⟩_L = X_L |0⟩_L
// is the odd-parity coset with uniform amplitudes.
func TestLogicalOneState(t *testing.T) {
	l, qx := newQxStack(t, 1, AncillaDedicated, 200)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.X, 0)); err != nil {
		t.Fatal(err)
	}
	got := dataState(t, l, qx, 0)
	want := codewordSupport(true)
	if len(got) != 16 {
		t.Fatalf("support size %d, want 16", len(got))
	}
	for b := range want {
		if _, ok := got[b]; !ok {
			t.Fatalf("codeword %09b missing from |1⟩_L", b)
		}
	}
	for b := range got {
		if popcount(b)%2 != 1 {
			t.Fatalf("even-parity state %09b in |1⟩_L", b)
		}
	}
	if st, _ := l.GetState(); st.Values[0] != qpdo.StateOne {
		t.Error("tracked logical state should be 1 after X_L")
	}
}

// TestLogicalZPhases verifies Z_L |0⟩_L = |0⟩_L and Z_L |1⟩_L = −|1⟩_L
// (thesis §5.1.4).
func TestLogicalZPhases(t *testing.T) {
	l, qx := newQxStack(t, 1, AncillaDedicated, 300)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	before := qx.Vector().Clone()
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	if ok, ph := equalPhase(t, before, qx); !ok || cmplx.Abs(ph-1) > 1e-9 {
		t.Errorf("Z_L|0⟩_L should be +|0⟩_L, phase %v", ph)
	}
	// Now on |1⟩_L.
	if _, err := qpdo.Run(l, circuit.New().Add(gates.X, 0)); err != nil {
		t.Fatal(err)
	}
	before = qx.Vector().Clone()
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	if ok, ph := equalPhase(t, before, qx); !ok || cmplx.Abs(ph+1) > 1e-9 {
		t.Errorf("Z_L|1⟩_L should be −|1⟩_L, phase %v", ph)
	}
}

func equalPhase(t *testing.T, before interface {
	Amplitudes() []complex128
	NumQubits() int
}, qx *layers.QxCore) (bool, complex128) {
	t.Helper()
	a := qx.Vector().Amplitudes()
	b := before.Amplitudes()
	var phase complex128
	for i := range b {
		if cmplx.Abs(b[i]) > 1e-9 {
			phase = a[i] / b[i]
			break
		}
	}
	for i := range b {
		if cmplx.Abs(a[i]-phase*b[i]) > 1e-9 {
			return false, 0
		}
	}
	return true, phase
}

// TestLogicalHadamard verifies H_L |0⟩_L behaves as |+⟩_L: the X_L probe
// reads +1, and after Z_L it reads −1 (thesis §5.1.4).
func TestLogicalHadamard(t *testing.T) {
	l, _ := newQxStack(t, 1, AncillaDedicated, 400)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	if l.Star(0).Rotation != RotRotated {
		t.Error("H_L should rotate the lattice")
	}
	out, err := l.ProbeXL(0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Errorf("X_L probe on |+⟩_L = %d, want 0 (+1)", out)
	}
	// Z_L flips |+⟩_L to |−⟩_L.
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	out, err = l.ProbeXL(0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Errorf("X_L probe on |−⟩_L = %d, want 1 (−1)", out)
	}
	// A second H_L restores the normal orientation and |−⟩_L → |1⟩_L.
	if _, err := qpdo.Run(l, circuit.New().Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	if l.Star(0).Rotation != RotNormal {
		t.Error("second H_L should restore orientation")
	}
	res, err := qpdo.Run(l, circuit.New().Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("H Z H |0⟩_L measured %d, want 1", res.Last(0))
	}
}

// TestLogicalMeasurement checks M_ZL on the computational basis states
// and its property updates (thesis Table 5.3).
func TestLogicalMeasurement(t *testing.T) {
	l, _ := newQxStack(t, 1, AncillaDedicated, 500)
	res, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 0 {
		t.Errorf("measuring |0⟩_L gave %d", res.Last(0))
	}
	if l.Star(0).Dance != DanceZOnly {
		t.Error("measurement should set dance mode to z_only")
	}
	res, err = qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.X, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("measuring |1⟩_L gave %d", res.Last(0))
	}
}

// TestMeasureXBasis composes H_L + M_ZL into a logical X-basis
// measurement: |+⟩_L reads 0 deterministically, |−⟩_L reads 1.
func TestMeasureXBasis(t *testing.T) {
	l, _ := newQxStack(t, 1, AncillaDedicated, 550)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	out, err := l.MeasureX(0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Errorf("X-basis measurement of |+⟩_L = %d, want 0", out)
	}
	l2, _ := newQxStack(t, 1, AncillaDedicated, 551)
	if _, err := qpdo.Run(l2, circuit.New().Add(gates.Prep, 0).Add(gates.H, 0).Add(gates.Z, 0)); err != nil {
		t.Fatal(err)
	}
	out, err = l2.MeasureX(0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Errorf("X-basis measurement of |−⟩_L = %d, want 1", out)
	}
}

// TestLogicalCNOT reproduces thesis Table 5.5: the CNOT_L truth table on
// the four two-qubit computational basis states (logical qubit 0 is the
// control).
func TestLogicalCNOT(t *testing.T) {
	cases := []struct {
		control, target int
		wantC, wantT    int
	}{
		{0, 0, 0, 0},
		{1, 0, 1, 1},
		{0, 1, 0, 1},
		{1, 1, 1, 0},
	}
	for i, cse := range cases {
		l, _ := newQxStack(t, 2, AncillaSharedSingle, int64(600+i))
		prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
		if cse.control == 1 {
			prep.Add(gates.X, 0)
		}
		if cse.target == 1 {
			prep.Add(gates.X, 1)
		}
		prep.Add(gates.CNOT, 0, 1)
		prep.Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, prep)
		if err != nil {
			t.Fatal(err)
		}
		if res.Last(0) != cse.wantC || res.Last(1) != cse.wantT {
			t.Errorf("|%d%d⟩_L after CNOT_L measured |%d%d⟩, want |%d%d⟩",
				cse.control, cse.target, res.Last(0), res.Last(1), cse.wantC, cse.wantT)
		}
	}
}

// TestLogicalCZ reproduces thesis Table 5.6: CZ_L fixes all four basis
// states and imprints the −1 phase on |11⟩_L.
func TestLogicalCZ(t *testing.T) {
	for i, cse := range []struct{ a, b int }{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		l, qx := newQxStack(t, 2, AncillaSharedSingle, int64(700+i))
		prep := circuit.New().Add(gates.Prep, 0).Add(gates.Prep, 1)
		if cse.a == 1 {
			prep.Add(gates.X, 0)
		}
		if cse.b == 1 {
			prep.Add(gates.X, 1)
		}
		if _, err := qpdo.Run(l, prep); err != nil {
			t.Fatal(err)
		}
		before := qx.Vector().Clone()
		if _, err := qpdo.Run(l, circuit.New().Add(gates.CZ, 0, 1)); err != nil {
			t.Fatal(err)
		}
		ok, ph := equalPhase(t, before, qx)
		if !ok {
			t.Fatalf("|%d%d⟩_L changed under CZ_L beyond a phase", cse.a, cse.b)
		}
		wantPh := complex(1, 0)
		if cse.a == 1 && cse.b == 1 {
			wantPh = -1
		}
		if cmplx.Abs(ph-wantPh) > 1e-9 {
			t.Errorf("CZ_L phase on |%d%d⟩_L = %v, want %v", cse.a, cse.b, ph, wantPh)
		}
	}
}

// TestOddBellState reproduces the thesis Fig 5.6/5.7 workload: the odd
// Bell state (|01⟩_L+|10⟩_L)/√2 yields perfectly anti-correlated logical
// measurements, and H_L on the control exercises the rotated CNOT_L
// pairing.
func TestOddBellState(t *testing.T) {
	counts := map[[2]int]int{}
	const iters = 12
	for i := 0; i < iters; i++ {
		l, _ := newQxStack(t, 2, AncillaSharedSingle, int64(800+i))
		c := circuit.New().
			Add(gates.Prep, 0).Add(gates.Prep, 1).
			Add(gates.H, 0).
			Add(gates.CNOT, 0, 1).
			Add(gates.X, 0).
			Add(gates.Measure, 0).Add(gates.Measure, 1)
		res, err := qpdo.Run(l, c)
		if err != nil {
			t.Fatal(err)
		}
		m := [2]int{res.Last(0), res.Last(1)}
		counts[m]++
		if m[0] == m[1] {
			t.Fatalf("iteration %d: odd Bell state gave correlated outcome %v", i, m)
		}
	}
	if counts[[2]int{0, 1}]+counts[[2]int{1, 0}] != iters {
		t.Errorf("outcome histogram: %v", counts)
	}
}

// TestStabilizersAfterInit verifies thesis Tables 2.1/2.2 on the CHP
// back-end: after initialization every stabilizer generator and the
// logical-state stabilizer Z0Z4Z8 have expectation +1.
func TestStabilizersAfterInit(t *testing.T) {
	l, ch := newChpStack(t, 1, 900)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	star := l.Star(0)
	toPhys := func(sup []int) []int {
		out := make([]int, len(sup))
		for i, d := range sup {
			out[i] = star.Data[d]
		}
		return out
	}
	for _, sup := range XSupports(RotNormal) {
		v, det := ch.Tableau().ExpectPauli(pauli.XString(toPhys(sup)...))
		if !det || v != 1 {
			t.Errorf("X stabilizer %v: v=%d det=%v", sup, v, det)
		}
	}
	for _, sup := range ZSupports(RotNormal) {
		v, det := ch.Tableau().ExpectPauli(pauli.ZString(toPhys(sup)...))
		if !det || v != 1 {
			t.Errorf("Z stabilizer %v: v=%d det=%v", sup, v, det)
		}
	}
	v, det := ch.Tableau().ExpectPauli(pauli.ZString(toPhys([]int{0, 4, 8})...))
	if !det || v != 1 {
		t.Errorf("Z0Z4Z8 on |0⟩_L: v=%d det=%v (thesis Table 2.2)", v, det)
	}
}

// TestWindowNoErrors: with a noiseless substrate a QEC window issues no
// corrections and the probes stay +1.
func TestWindowNoErrors(t *testing.T) {
	l, _ := newChpStack(t, 1, 1000)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		stats, err := l.RunWindow(0)
		if err != nil {
			t.Fatal(err)
		}
		if stats.CorrectionGates != 0 {
			t.Errorf("window %d issued %d corrections on a clean state", w, stats.CorrectionGates)
		}
	}
	out, err := l.ProbeZL(0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 0 {
		t.Error("Z_L probe flipped without errors")
	}
}

// TestWindowCorrectsInjectedErrors injects single data-qubit errors
// directly into the tableau and checks that windows detect and correct
// them without flipping the logical state.
func TestWindowCorrectsInjectedErrors(t *testing.T) {
	for d := 0; d < NumData; d++ {
		for _, kind := range []string{"X", "Z"} {
			l, ch := newChpStack(t, 1, int64(1100+d))
			if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0)); err != nil {
				t.Fatal(err)
			}
			phys := l.Star(0).Data[d]
			if kind == "X" {
				ch.Tableau().X(phys)
			} else {
				ch.Tableau().Z(phys)
			}
			// Two windows guarantee the persistent-flip rule fires.
			total := 0
			for w := 0; w < 2; w++ {
				stats, err := l.RunWindow(0)
				if err != nil {
					t.Fatal(err)
				}
				total += stats.CorrectionGates
			}
			if total == 0 {
				t.Errorf("%s error on D%d never corrected", kind, d)
			}
			// All stabilizers restored.
			r, err := l.RunESMRound(0)
			if err != nil {
				t.Fatal(err)
			}
			if r.A != 0 || r.B != 0 {
				t.Errorf("%s on D%d: residual syndrome A=%v B=%v", kind, d, r.A, r.B)
			}
			// No logical flip for a single physical error.
			if out, err := l.ProbeZL(0); err != nil || out != 0 {
				t.Errorf("%s on D%d: logical state flipped (out=%d err=%v)", kind, d, out, err)
			}
		}
	}
}

// TestSharedAndDedicatedAgree runs initialization on both ancilla modes
// and checks both yield a clean |0⟩_L (all probes and syndromes trivial).
func TestSharedAndDedicatedAgree(t *testing.T) {
	for _, mode := range []AncillaMode{AncillaDedicated, AncillaSharedSingle} {
		l, _ := newQxStack(t, 1, mode, 1200)
		res, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.Measure, 0))
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Last(0) != 0 {
			t.Errorf("mode %d: |0⟩_L measured %d", mode, res.Last(0))
		}
	}
}

// TestRejectsUnsupportedLogicalGates: SC17 has no transversal T.
func TestRejectsUnsupportedLogicalGates(t *testing.T) {
	l, _ := newChpStack(t, 1, 1300)
	if err := l.Add(circuit.New().Add(gates.T, 0)); err == nil {
		t.Error("logical T should be rejected")
	}
	if err := l.RemoveQubits(1); err == nil {
		t.Error("logical qubit removal should be rejected")
	}
}

// TestRotatedESMCleanAfterH: after H_L the rotated ESM must report
// trivial syndromes on the (errorless) rotated state.
func TestRotatedESMCleanAfterH(t *testing.T) {
	l, _ := newChpStack(t, 1, 1400)
	if _, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.H, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := l.RunESMRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.A != 0 || r.B != 0 {
		t.Errorf("rotated ESM syndromes A=%v B=%v, want clean", r.A, r.B)
	}
	// Windows keep working across the rotation.
	stats, err := l.RunWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CorrectionGates != 0 {
		t.Errorf("rotated window issued %d corrections", stats.CorrectionGates)
	}
}

// TestYLogical applies Y_L = X_L·Z_L and checks the measurement flip.
func TestYLogical(t *testing.T) {
	l, _ := newQxStack(t, 1, AncillaDedicated, 1500)
	res, err := qpdo.Run(l, circuit.New().Add(gates.Prep, 0).Add(gates.Y, 0).Add(gates.Measure, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Last(0) != 1 {
		t.Errorf("Y_L|0⟩_L measured %d, want 1", res.Last(0))
	}
}

func TestMathSanity(t *testing.T) {
	// The 16 codewords of each parity class are disjoint and cover 32
	// strings total.
	even, odd := codewordSupport(false), codewordSupport(true)
	if len(even) != 16 || len(odd) != 16 {
		t.Fatalf("codeword counts: %d even, %d odd", len(even), len(odd))
	}
	for b := range even {
		if odd[b] {
			t.Fatalf("codeword %09b in both classes", b)
		}
	}
	_ = math.Pi
}
