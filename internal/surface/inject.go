package surface

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/qpdo"
)

// State injection (thesis Chapter 6 future work, via Horsman et al.
// [14]): encode an arbitrary physical-qubit state |ψ⟩ = α|0⟩ + β|1⟩ as
// the logical state of a ninja star. The procedure is exact in the
// noiseless case and, like all injection schemes, not fault-tolerant —
// the payload lives on bare qubits until the stabilizers are projected.
//
// Protocol (normal orientation):
//
//  1. Reset all data qubits; prepare |ψ⟩ on D0.
//  2. Spread along the left-column logical-X chain: CNOT D0→D3, D0→D6.
//     The spread set {0,3,6} has even overlap with every Z stabilizer,
//     so no Z check can distinguish (and hence collapse) the two logical
//     components: α|000⟩+β|111⟩ on the column, |0⟩ elsewhere.
//  3. One ESM round projects the X stabilizers to random signs; the
//     Z stabilizers read +1 deterministically.
//  4. Fix the negative X signs with Z chains restricted to qubits
//     outside the spread column. Those chains act on |0⟩ qubits only, so
//     they are exact identities on the injected components.
//
// The result is exactly α|0⟩_L + β|1⟩_L.

// injectSpread lists the relative data qubits carrying the payload.
var injectSpread = []int{0, 3, 6}

// injectLUT fixes X-stabilizer signs using only non-spread qubits.
var injectLUT = decoder.BuildLUTRestricted(
	XSupports(RotNormal), NumData, []int{1, 2, 4, 5, 7, 8})

// InjectState encodes an arbitrary state into logical qubit i. The
// prepare callback receives the physical index of the payload qubit
// (relative D0) and returns the circuit preparing |ψ⟩ on it from |0⟩
// (e.g. an H followed by an RZ). Run under bypass mode for the exact
// noiseless procedure.
func (l *NinjaStarLayer) InjectState(i int, prepare func(phys int) *circuit.Circuit) error {
	st := l.stars[i]
	st.star.Rotation = RotNormal
	st.star.Dance = DanceAll

	// Step 1: reset and prepare the payload.
	if err := l.runLower(st.star.ResetCircuit()); err != nil {
		return err
	}
	prep := prepare(st.star.phys(0))
	if prep != nil && prep.NumSlots() > 0 {
		if err := l.runLower(prep); err != nil {
			return err
		}
	}

	// Step 2: spread along the column.
	spread := circuit.New().
		Add(gates.CNOT, st.star.phys(0), st.star.phys(3)).
		Add(gates.CNOT, st.star.phys(0), st.star.phys(6))
	if err := l.runLower(spread); err != nil {
		return err
	}

	// Step 3: project the stabilizers.
	round, err := l.runESM(st)
	if err != nil {
		return err
	}
	if round.B != 0 {
		return fmt.Errorf("surface: injection saw non-trivial Z syndrome %v (noise during injection?)", round.B)
	}

	// Step 4: restricted sign fixes.
	if corr := injectLUT.Corrections(round.A); len(corr) > 0 {
		c := circuit.New()
		slot := c.AppendSlot()
		for _, d := range corr {
			c.AddToSlot(slot, gates.Z, st.star.phys(d))
		}
		if err := l.runLower(c); err != nil {
			return err
		}
	}
	st.decA.Reset()
	st.decB.Reset()
	st.star.State = qpdo.StateUnknown
	return nil
}
