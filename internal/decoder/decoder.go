// Package decoder implements the rule-based look-up-table decoder used
// for the Surface Code 17 experiments (thesis §5.1.3, §5.3.1, following
// Tomita & Svore [19] and the implementation of [37]).
//
// The decoder is split in two:
//
//   - LUT maps a 4-bit syndrome (one bit per stabilizer of one type) to
//     the minimum-weight set of data-qubit corrections, built by searching
//     errors of weight 0, 1 and 2 over the stabilizer supports.
//   - WindowDecoder applies the three-round rule of the windowed scheme
//     (thesis Fig 5.9): each window contributes two fresh rounds of error
//     syndromes plus the last round of the previous window, and a
//     syndrome bit counts as a data error when it is set in the majority
//     of the three rounds. Transient single-round flips are discarded as
//     measurement errors; flips in the newest round only are deferred to
//     the next window.
//
// Syndromes here are relative to the as-if-corrected baseline: a set bit
// means the stabilizer measured −1. Because corrections are either
// physically applied (no Pauli frame) or absorbed into the frame — which
// then flips the reported ancilla results — the baseline is always the
// all-+1 pattern and no extra state is needed.
package decoder

import (
	"fmt"
	"math/bits"
)

// NumChecks is the number of stabilizers of one type in SC17.
const NumChecks = 4

// Syndrome is one round of measurement results for the four stabilizers
// of one type; bit i set means stabilizer i measured −1.
type Syndrome uint8

// Bit reports bit i.
func (s Syndrome) Bit(i int) bool { return s&(1<<uint(i)) != 0 }

// SetBit returns the syndrome with bit i set.
func (s Syndrome) SetBit(i int) Syndrome { return s | 1<<uint(i) }

// Weight counts set bits.
func (s Syndrome) Weight() int { return bits.OnesCount8(uint8(s)) }

// String renders bit 3 down to bit 0.
func (s Syndrome) String() string { return fmt.Sprintf("%04b", uint8(s)) }

// LUT maps syndromes to minimal-weight corrections for one error type.
type LUT struct {
	// corrections[s] lists the data-qubit indices to correct for
	// syndrome s.
	corrections [1 << NumChecks][]int
	// masks[s] is the same correction as a data-qubit bitmask (bit q set
	// means correct qubit q); valid for nData ≤ 32, which covers every
	// LUT-decoded code in this repo. The frame engine XORs these masks
	// into its bit-planes without touching the slices.
	masks [1 << NumChecks]uint32
	// supports[i] is the data-qubit support of stabilizer i.
	supports [NumChecks][]int
	nData    int
}

// SyndromeOf computes the syndrome that a set of data-qubit errors of the
// decoded type produces on the supports.
func (l *LUT) SyndromeOf(errs []int) Syndrome {
	var s Syndrome
	for i, sup := range l.supports {
		parity := false
		for _, q := range sup {
			for _, e := range errs {
				if e == q {
					parity = !parity
				}
			}
		}
		if parity {
			s = s.SetBit(i)
		}
	}
	return s
}

// BuildLUT constructs the table for one error type. supports[i] lists the
// data qubits of stabilizer i (the stabilizers of the *opposite* Pauli
// type detect the errors being decoded: Z stabilizers detect X errors and
// vice versa). nData is the number of data qubits. Every one of the 16
// syndromes must be reachable by an error of weight ≤ 3, which holds for
// all SC17 orientations; BuildLUT panics otherwise.
func BuildLUT(supports [NumChecks][]int, nData int) *LUT {
	allowed := make([]int, nData)
	for i := range allowed {
		allowed[i] = i
	}
	return BuildLUTRestricted(supports, nData, allowed)
}

// BuildLUTRestricted builds a table whose corrections may only touch the
// allowed data qubits. The state-injection procedure uses this to fix
// stabilizer signs without acting on the qubits that carry the payload
// (corrections on |0⟩ qubits act trivially on the injected state).
func BuildLUTRestricted(supports [NumChecks][]int, nData int, allowed []int) *LUT {
	l := &LUT{supports: supports, nData: nData}
	filled := make([]bool, 1<<NumChecks)
	assign := func(s Syndrome, errs []int) {
		if !filled[s] {
			filled[s] = true
			l.corrections[s] = append([]int(nil), errs...)
		}
	}
	assign(0, nil)
	k := len(allowed)
	for i := 0; i < k; i++ {
		assign(l.SyndromeOf([]int{allowed[i]}), []int{allowed[i]})
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			assign(l.SyndromeOf([]int{allowed[i], allowed[j]}), []int{allowed[i], allowed[j]})
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			for m := j + 1; m < k; m++ {
				e := []int{allowed[i], allowed[j], allowed[m]}
				assign(l.SyndromeOf(e), e)
			}
		}
	}
	for s, ok := range filled {
		if !ok {
			panic(fmt.Sprintf("decoder: syndrome %04b unreachable by weight ≤ 3 errors on the allowed qubits", s))
		}
		for _, q := range l.corrections[s] {
			if q < 32 {
				l.masks[s] |= 1 << uint(q)
			}
		}
	}
	return l
}

// Decode returns the minimal-weight correction for a syndrome as a fresh
// slice the caller may keep or mutate. Hot paths should prefer
// Corrections, which returns the cached table entry without allocating.
func (l *LUT) Decode(s Syndrome) []int {
	return append([]int(nil), l.corrections[s]...)
}

// Corrections returns the cached correction slice for a syndrome. The
// slice is owned by the table and shared across calls: callers must treat
// it as read-only. It is nil exactly when the syndrome needs no
// correction.
func (l *LUT) Corrections(s Syndrome) []int {
	return l.corrections[s]
}

// CorrectionMask returns the correction as a data-qubit bitmask (bit q
// set ⇔ qubit q appears in Corrections(s)); valid for nData ≤ 32.
func (l *LUT) CorrectionMask(s Syndrome) uint32 {
	return l.masks[s]
}

// Rule selects the windowed decoding rule.
type Rule int

// Decoding rules.
const (
	// RuleAgreement decodes only when two consecutive rounds agree
	// (the default; fault-tolerant to any single fault).
	RuleAgreement Rule = iota
	// RuleIntersection decodes the per-bit majority of {carry, r1, r2}.
	// It looks reasonable but is NOT fault-tolerant: a fault striking
	// between the two check CNOTs that touch a data qubit shows a
	// partial syndrome in the first round, and the rule splits one error
	// into two wrong corrections across consecutive windows that can
	// jointly complete a logical operator — an O(p) leak in the logical
	// error rate. Kept as the ablation baseline (see the ablation
	// benchmarks and DESIGN.md).
	RuleIntersection
)

// WindowDecoder applies the three-round windowed rule for one error type.
type WindowDecoder struct {
	lut  *LUT
	rule Rule
	// carry is the newest round of the previous window (thesis Fig 5.9).
	carry Syndrome
}

// NewWindowDecoder wraps a LUT with the windowed agreement rule.
func NewWindowDecoder(lut *LUT) *WindowDecoder { return &WindowDecoder{lut: lut} }

// SetRule switches the decoding rule (for ablations).
func (w *WindowDecoder) SetRule(r Rule) { w.rule = r }

// Reset clears the carried round (after initialization).
func (w *WindowDecoder) Reset() { w.carry = 0 }

// LUT exposes the underlying table.
func (w *WindowDecoder) LUT() *LUT { return w.lut }

// Decode consumes the two fresh rounds of a window and returns the
// data-qubit corrections. The rule requires two consecutive agreeing
// rounds: when r1 == r2 the common syndrome is decoded; when they
// disagree — a fault arrived mid-round (partial syndrome) or an ancilla
// measurement failed — the whole window is deferred, and the persistent
// part reappears in agreement next window. Decoding the bitwise
// intersection instead would split a mid-round data error into two wrong
// corrections across consecutive windows that can jointly complete a
// logical operator; the agreement rule is what keeps the decoder
// fault-tolerant to single faults at any point in the schedule. When the
// fresh rounds disagree but the older pair (carry, r1) agrees, that
// already-confirmed part is decoded immediately (the carried round of
// thesis Fig 5.9); the newest round becomes the next window's carry.
//
// The returned slice is the cached LUT entry, shared across calls:
// callers must treat it as read-only. Decode runs once per QEC window on
// the Monte-Carlo hot path, so it must not allocate.
func (w *WindowDecoder) Decode(r1, r2 Syndrome) []int {
	return w.lut.Corrections(w.decodeSyndrome(r1, r2))
}

// DecodeSyndrome applies the windowed rule and returns the syndrome that
// gets decoded this window (0 when the window is deferred), advancing the
// carry. The frame engine uses this with CorrectionMask instead of the
// correction slices.
func (w *WindowDecoder) DecodeSyndrome(r1, r2 Syndrome) Syndrome {
	return w.decodeSyndrome(r1, r2)
}

func (w *WindowDecoder) decodeSyndrome(r1, r2 Syndrome) Syndrome {
	carry := w.carry
	w.carry = r2
	if w.rule == RuleIntersection {
		return (carry & r1) | (r1 & r2) | (carry & r2)
	}
	if r1 == r2 {
		return r1
	}
	if carry == r1 {
		// Confirmed since the previous window; correct it now and leave
		// the disagreement between r1 and r2 for the next window. The
		// carried round must be adjusted: the correction removes the
		// confirmed part from future syndromes.
		w.carry = r2 ^ r1
		return r1
	}
	return 0
}
