package decoder

import (
	"testing"
	"testing/quick"
)

// SC17 supports in the normal orientation: Z stabilizers (which detect X
// errors) and X stabilizers (which detect Z errors), thesis Table 2.1.
var (
	zSupports = [NumChecks][]int{{0, 3}, {1, 2, 4, 5}, {3, 4, 6, 7}, {5, 8}}
	xSupports = [NumChecks][]int{{0, 1, 3, 4}, {1, 2}, {4, 5, 7, 8}, {6, 7}}
)

func TestBuildLUTCoversAllSyndromes(t *testing.T) {
	for _, sup := range [][NumChecks][]int{zSupports, xSupports} {
		l := BuildLUT(sup, 9)
		for s := Syndrome(0); s < 16; s++ {
			corr := l.Decode(s)
			if got := l.SyndromeOf(corr); got != s {
				t.Errorf("supports %v: Decode(%v) = %v reproduces syndrome %v",
					sup, s, corr, got)
			}
		}
	}
}

func TestLUTZeroSyndromeNoCorrection(t *testing.T) {
	l := BuildLUT(zSupports, 9)
	if len(l.Decode(0)) != 0 {
		t.Error("trivial syndrome should decode to no corrections")
	}
}

func TestLUTSingleErrorsDecodeExactly(t *testing.T) {
	// Each single X error must decode back to a correction with the same
	// syndrome and weight ≤ the true error weight (min-weight property).
	l := BuildLUT(zSupports, 9)
	for q := 0; q < 9; q++ {
		s := l.SyndromeOf([]int{q})
		corr := l.Decode(s)
		if len(corr) != 1 {
			t.Errorf("single error on D%d (syndrome %v) decoded to %v", q, s, corr)
		}
		// The correction must cancel the error: error+correction has
		// trivial syndrome.
		both := append([]int{q}, corr...)
		if got := l.SyndromeOf(both); got != 0 {
			t.Errorf("correction %v does not cancel error on D%d", corr, q)
		}
	}
}

func TestLUTMinWeight(t *testing.T) {
	l := BuildLUT(zSupports, 9)
	// Exhaustively confirm no lighter correction exists for any syndrome.
	minWeight := map[Syndrome]int{}
	for a := 0; a < 9; a++ {
		s := l.SyndromeOf([]int{a})
		if w, ok := minWeight[s]; !ok || 1 < w {
			minWeight[s] = 1
		}
		for b := a + 1; b < 9; b++ {
			s2 := l.SyndromeOf([]int{a, b})
			if w, ok := minWeight[s2]; !ok || 2 < w {
				minWeight[s2] = 2
			}
		}
	}
	minWeight[0] = 0
	for s := Syndrome(0); s < 16; s++ {
		want, ok := minWeight[s]
		if !ok {
			continue // weight-3 syndrome
		}
		if got := len(l.Decode(s)); got != want {
			t.Errorf("syndrome %v: decoded weight %d, minimum is %d", s, got, want)
		}
	}
}

func TestSyndromeHelpers(t *testing.T) {
	var s Syndrome
	s = s.SetBit(1).SetBit(3)
	if !s.Bit(1) || !s.Bit(3) || s.Bit(0) {
		t.Errorf("bit ops wrong: %v", s)
	}
	if s.Weight() != 2 {
		t.Errorf("weight = %d", s.Weight())
	}
	if s.String() != "1010" {
		t.Errorf("rendering = %q", s.String())
	}
}

func TestWindowDecoderPersistentError(t *testing.T) {
	w := NewWindowDecoder(BuildLUT(zSupports, 9))
	// X error on D4 flips Z stabilizers 1 and 2 → syndrome 0110.
	s := w.LUT().SyndromeOf([]int{4})
	corr := w.Decode(s, s) // present in both rounds → corrected
	if len(corr) != 1 || corr[0] != 4 {
		t.Fatalf("persistent error decoded to %v, want [4]", corr)
	}
}

func TestWindowDecoderMeasurementErrorIgnored(t *testing.T) {
	w := NewWindowDecoder(BuildLUT(zSupports, 9))
	s := w.LUT().SyndromeOf([]int{4})
	// Flip only in round 1, gone in round 2: transient, no correction.
	if corr := w.Decode(s, 0); len(corr) != 0 {
		t.Errorf("transient flip corrected: %v", corr)
	}
	// And nothing spills into the next window.
	if corr := w.Decode(0, 0); len(corr) != 0 {
		t.Errorf("ghost correction: %v", corr)
	}
}

func TestWindowDecoderDeferredError(t *testing.T) {
	w := NewWindowDecoder(BuildLUT(zSupports, 9))
	s := w.LUT().SyndromeOf([]int{7})
	// Error appears between the two rounds of window 1: deferred.
	if corr := w.Decode(0, s); len(corr) != 0 {
		t.Errorf("premature correction: %v", corr)
	}
	// Window 2 sees it in carry + both rounds: corrected once. D6 and D7
	// share the syndrome (they differ by the stabilizer X6X7), so accept
	// any weight-1 correction that cancels it.
	corr := w.Decode(s, s)
	if len(corr) != 1 || w.LUT().SyndromeOf(append([]int{7}, corr...)) != 0 {
		t.Errorf("deferred error decoded to %v, want a weight-1 syndrome-cancelling correction", corr)
	}
	// Window 3: carry is stale (pre-correction) but rounds are clean.
	if corr := w.Decode(0, 0); len(corr) != 0 {
		t.Errorf("stale carry caused correction: %v", corr)
	}
}

func TestWindowDecoderReset(t *testing.T) {
	w := NewWindowDecoder(BuildLUT(zSupports, 9))
	s := w.LUT().SyndromeOf([]int{0})
	w.Decode(0, s) // carry now s
	w.Reset()
	if corr := w.Decode(s, 0); len(corr) != 0 {
		t.Errorf("carry not cleared: %v", corr)
	}
}

// Property: for random error sets of weight ≤ 2, decoding the produced
// syndrome yields a correction that cancels the syndrome.
func TestDecodeCancelsSyndromeProperty(t *testing.T) {
	l := BuildLUT(xSupports, 9)
	f := func(a, b uint8) bool {
		qa, qb := int(a%9), int(b%9)
		errs := []int{qa}
		if qb != qa {
			errs = append(errs, qb)
		}
		s := l.SyndromeOf(errs)
		corr := l.Decode(s)
		return l.SyndromeOf(append(errs, corr...)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWindowDecoderPartialSyndrome is the regression test for the
// mid-round fault: an X error on D4 striking between the two Z-check
// CNOTs that touch it shows a partial syndrome (only Z1) in the first
// round and the full syndrome (Z1,Z2) in the second. Decoding the
// intersection would mis-correct D1 now and D6 next window — together
// with the real error a logical X1X4X6·stabilizer. The agreement rule
// must defer and then correct D4 (or an equivalent) cleanly.
func TestWindowDecoderPartialSyndrome(t *testing.T) {
	lut := BuildLUT(zSupports, 9)
	w := NewWindowDecoder(lut)
	full := lut.SyndromeOf([]int{4}) // 0110
	partial := Syndrome(0).SetBit(1) // only Z1 saw it in round 1
	if corr := w.Decode(partial, full); len(corr) != 0 {
		t.Fatalf("disagreeing rounds must defer, got %v", corr)
	}
	corr := w.Decode(full, full)
	if lut.SyndromeOf(append([]int{4}, corr...)) != 0 {
		t.Fatalf("correction %v does not cancel the D4 error", corr)
	}
	if corr := w.Decode(0, 0); len(corr) != 0 {
		t.Fatalf("ghost correction after recovery: %v", corr)
	}
}

// TestWindowDecoderCarryConfirmation: an error confirmed by the carried
// round plus the first fresh round is corrected even when a new fault
// disturbs the second round.
func TestWindowDecoderCarryConfirmation(t *testing.T) {
	lut := BuildLUT(zSupports, 9)
	w := NewWindowDecoder(lut)
	a := lut.SyndromeOf([]int{0})
	b := lut.SyndromeOf([]int{8})
	// Window 1: error A arrives before round 2 → deferred, carried.
	if corr := w.Decode(0, a); len(corr) != 0 {
		t.Fatalf("premature: %v", corr)
	}
	// Window 2: A confirmed in round 1; B appears fully in round 2.
	corr := w.Decode(a, a|b)
	if lut.SyndromeOf(append([]int{0}, corr...)) != 0 {
		t.Fatalf("carry-confirmed A not corrected: %v", corr)
	}
	// Window 3: B persists in both rounds → corrected.
	corr = w.Decode(b, b)
	if lut.SyndromeOf(append([]int{8}, corr...)) != 0 {
		t.Fatalf("B not corrected: %v", corr)
	}
}

func TestBuildLUTUnreachablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unreachable syndromes")
		}
	}()
	// One data qubit cannot reach 16 syndromes.
	BuildLUT([NumChecks][]int{{0}, {0}, {0}, {0}}, 1)
}
