package circuit

import (
	"strings"
	"testing"

	"repro/internal/gates"
)

func TestBuilders(t *testing.T) {
	c := New()
	c.Add(gates.H, 0)
	c.Add(gates.CNOT, 0, 1)
	s := c.AppendSlot()
	c.AddToSlot(s, gates.Measure, 0)
	c.AddToSlot(s, gates.Measure, 1)
	if c.NumSlots() != 3 {
		t.Fatalf("NumSlots = %d, want 3", c.NumSlots())
	}
	if c.NumOps() != 4 {
		t.Fatalf("NumOps = %d, want 4", c.NumOps())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.MaxQubit() != 1 {
		t.Errorf("MaxQubit = %d, want 1", c.MaxQubit())
	}
	qs := c.Qubits()
	if !qs[0] || !qs[1] || len(qs) != 2 {
		t.Errorf("Qubits = %v", qs)
	}
}

func TestValidateConflicts(t *testing.T) {
	c := New()
	s := c.AppendSlot()
	c.AddToSlot(s, gates.H, 0)
	c.AddToSlot(s, gates.X, 0)
	if err := c.Validate(); err == nil {
		t.Error("expected conflict error for qubit reuse in one slot")
	}

	c2 := New()
	c2.AddParallel(Operation{Gate: gates.CNOT, Qubits: []int{2, 2}})
	if err := c2.Validate(); err == nil {
		t.Error("expected error for repeated qubit within an operation")
	}

	c3 := New()
	c3.AddParallel(Operation{Gate: gates.X, Qubits: []int{-1}})
	if err := c3.Validate(); err == nil {
		t.Error("expected error for negative qubit")
	}
}

func TestNewOpArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOp should panic on arity mismatch")
		}
	}()
	NewOp(gates.CNOT, 0)
}

func TestCountClass(t *testing.T) {
	c := New()
	c.Add(gates.X, 0).Add(gates.Z, 1).Add(gates.H, 0).Add(gates.T, 1)
	c.Add(gates.Prep, 2).Add(gates.Measure, 2)
	if got := c.CountClass(gates.ClassPauli); got != 2 {
		t.Errorf("pauli count = %d, want 2", got)
	}
	if got := c.CountClass(gates.ClassClifford); got != 1 {
		t.Errorf("clifford count = %d, want 1", got)
	}
	if got := c.CountClass(gates.ClassNonClifford); got != 1 {
		t.Errorf("non-clifford count = %d, want 1", got)
	}
	if got := c.CountClass(gates.ClassReset); got != 1 {
		t.Errorf("reset count = %d, want 1", got)
	}
	if got := c.CountClass(gates.ClassMeasure); got != 1 {
		t.Errorf("measure count = %d, want 1", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New().Add(gates.CNOT, 0, 1)
	cp := c.Clone()
	cp.Slots[0].Ops[0].Qubits[0] = 9
	if c.Slots[0].Ops[0].Qubits[0] != 0 {
		t.Error("Clone shares qubit slices with the original")
	}
	cp.Add(gates.H, 2)
	if c.NumSlots() != 1 {
		t.Error("Clone shares slot storage with the original")
	}
}

func TestAppend(t *testing.T) {
	a := New().Add(gates.H, 0)
	b := New().Add(gates.X, 1).Add(gates.Measure, 1)
	a.Append(b)
	if a.NumSlots() != 3 || a.NumOps() != 3 {
		t.Errorf("Append: slots=%d ops=%d", a.NumSlots(), a.NumOps())
	}
}

func TestStringRendering(t *testing.T) {
	c := New().Add(gates.CNOT, 0, 1)
	s := c.String()
	if !strings.Contains(s, "cnot q0,q1") {
		t.Errorf("String() = %q", s)
	}
	op := NewOp(gates.H, 3)
	if op.String() != "h q3" {
		t.Errorf("op.String() = %q", op.String())
	}
}

func TestEmptyCircuit(t *testing.T) {
	c := New()
	if c.MaxQubit() != -1 {
		t.Errorf("MaxQubit of empty = %d, want -1", c.MaxQubit())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("empty circuit should validate: %v", err)
	}
}
