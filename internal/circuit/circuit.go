// Package circuit implements the shared quantum-circuit data structure of
// the QPDO platform (thesis Fig 4.4): a circuit is an ordered list of time
// slots, each holding operations that execute in parallel. Within one time
// slot every qubit may be involved in at most one operation, and all
// operations in a slot are assumed to take the same amount of time — the
// scheduling assumption behind the error model's idle-error insertion and
// the time-slot accounting of the Pauli-frame savings experiments.
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/gates"
)

// Operation applies one gate (or pseudo-operation) to an ordered list of
// qubits. For controlled gates the control(s) come first.
type Operation struct {
	Gate   *gates.Gate
	Qubits []int
}

// NewOp builds an operation, validating arity.
func NewOp(g *gates.Gate, qubits ...int) Operation {
	if g.Arity != len(qubits) {
		panic(fmt.Sprintf("circuit: gate %s wants %d qubits, got %d", g, g.Arity, len(qubits)))
	}
	return Operation{Gate: g, Qubits: append([]int(nil), qubits...)}
}

// String renders like "cnot q0,q1".
func (o Operation) String() string {
	parts := make([]string, len(o.Qubits))
	for i, q := range o.Qubits {
		parts[i] = fmt.Sprintf("q%d", q)
	}
	return fmt.Sprintf("%s %s", o.Gate.Name, strings.Join(parts, ","))
}

// TimeSlot is a set of operations executing in parallel.
type TimeSlot struct {
	Ops []Operation
}

// Qubits returns the set of qubits touched by the slot.
func (t *TimeSlot) Qubits() map[int]bool {
	m := map[int]bool{}
	for _, op := range t.Ops {
		for _, q := range op.Qubits {
			m[q] = true
		}
	}
	return m
}

// Circuit is an ordered list of time slots.
type Circuit struct {
	Slots []TimeSlot
}

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

// AppendSlot adds an empty time slot and returns its index.
func (c *Circuit) AppendSlot() int {
	c.Slots = append(c.Slots, TimeSlot{})
	return len(c.Slots) - 1
}

// AddToSlot places an operation into an existing slot.
func (c *Circuit) AddToSlot(slot int, g *gates.Gate, qubits ...int) *Circuit {
	c.Slots[slot].Ops = append(c.Slots[slot].Ops, NewOp(g, qubits...))
	return c
}

// Add appends a new time slot holding a single operation.
func (c *Circuit) Add(g *gates.Gate, qubits ...int) *Circuit {
	s := c.AppendSlot()
	return c.AddToSlot(s, g, qubits...)
}

// AddParallel appends one time slot holding all the given operations.
func (c *Circuit) AddParallel(ops ...Operation) *Circuit {
	c.Slots = append(c.Slots, TimeSlot{Ops: ops})
	return c
}

// Append concatenates another circuit's slots after this one's.
func (c *Circuit) Append(other *Circuit) *Circuit {
	c.Slots = append(c.Slots, other.Slots...)
	return c
}

// NumSlots counts time slots.
func (c *Circuit) NumSlots() int { return len(c.Slots) }

// NumOps counts operations of all kinds.
func (c *Circuit) NumOps() int {
	n := 0
	for _, s := range c.Slots {
		n += len(s.Ops)
	}
	return n
}

// CountClass counts operations of the given class.
func (c *Circuit) CountClass(cl gates.Class) int {
	n := 0
	for _, s := range c.Slots {
		for _, op := range s.Ops {
			if op.Gate.Class == cl {
				n++
			}
		}
	}
	return n
}

// Qubits returns the set of qubits the circuit touches.
func (c *Circuit) Qubits() map[int]bool {
	m := map[int]bool{}
	for _, s := range c.Slots {
		for q := range (&s).Qubits() {
			m[q] = true
		}
	}
	return m
}

// MaxQubit returns the highest qubit index referenced, or -1 when empty.
func (c *Circuit) MaxQubit() int {
	max := -1
	for _, s := range c.Slots {
		for _, op := range s.Ops {
			for _, q := range op.Qubits {
				if q > max {
					max = q
				}
			}
		}
	}
	return max
}

// Validate checks the time-slot discipline: within each slot no qubit may
// appear in more than one operation, and no operation may repeat a qubit.
// Slots are small (tens of qubits at most), so collisions are detected by
// a linear scan over stack-allocated slices rather than maps — Validate
// runs on every Add in the layer stack, and the per-slot map allocations
// used to dominate the ESM-round profile.
func (c *Circuit) Validate() error {
	var qbuf, obuf [64]int
	for si := range c.Slots {
		s := &c.Slots[si]
		qs, os := qbuf[:0], obuf[:0]
		for oi := range s.Ops {
			op := &s.Ops[oi]
			start := len(qs)
			for _, q := range op.Qubits {
				if q < 0 {
					return fmt.Errorf("slot %d op %d: negative qubit %d", si, oi, q)
				}
				// Scan newest-first so an intra-operation duplicate is
				// reported as such even when an earlier op also used q.
				for k := len(qs) - 1; k >= 0; k-- {
					if qs[k] != q {
						continue
					}
					if k >= start {
						return fmt.Errorf("slot %d op %d: qubit %d repeated within operation", si, oi, q)
					}
					return fmt.Errorf("slot %d: qubit %d used by ops %d and %d", si, q, os[k], oi)
				}
				qs = append(qs, q)
				os = append(os, oi)
			}
		}
	}
	return nil
}

// Clone deep-copies the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Slots: make([]TimeSlot, len(c.Slots))}
	for i, s := range c.Slots {
		ops := make([]Operation, len(s.Ops))
		for j, op := range s.Ops {
			ops[j] = Operation{Gate: op.Gate, Qubits: append([]int(nil), op.Qubits...)}
		}
		out.Slots[i].Ops = ops
	}
	return out
}

// String renders the circuit one slot per line.
func (c *Circuit) String() string {
	var b strings.Builder
	for i, s := range c.Slots {
		fmt.Fprintf(&b, "slot %d:", i)
		for _, op := range s.Ops {
			fmt.Fprintf(&b, " [%s]", op)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
