package qpdo

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// fakeCore records calls for Forwarder testing.
type fakeCore struct {
	created, removed int
	adds             int
	executes         int
	bypass           bool
	lastBypass       []bool
}

func (f *fakeCore) CreateQubits(n int) error { f.created += n; return nil }
func (f *fakeCore) RemoveQubits(m int) error { f.removed += m; return nil }
func (f *fakeCore) NumQubits() int           { return f.created - f.removed }
func (f *fakeCore) Add(*circuit.Circuit) error {
	f.adds++
	return nil
}
func (f *fakeCore) Execute() (*Result, error) {
	f.executes++
	return &Result{Measurements: []Measurement{{Qubit: 0, Value: 1}}}, nil
}
func (f *fakeCore) GetState() (*State, error) {
	return &State{Values: make([]BinaryState, f.NumQubits())}, nil
}
func (f *fakeCore) GetQuantumState() (QuantumState, error) { return nil, ErrUnsupported }
func (f *fakeCore) SetBypass(on bool) {
	f.bypass = on
	f.lastBypass = append(f.lastBypass, on)
}

func TestForwarderDelegatesEverything(t *testing.T) {
	fc := &fakeCore{}
	fw := &Forwarder{Next: fc}
	if err := fw.CreateQubits(3); err != nil || fc.created != 3 {
		t.Error("CreateQubits not forwarded")
	}
	if err := fw.RemoveQubits(1); err != nil || fc.removed != 1 {
		t.Error("RemoveQubits not forwarded")
	}
	if fw.NumQubits() != 2 {
		t.Error("NumQubits not forwarded")
	}
	if err := fw.Add(circuit.New()); err != nil || fc.adds != 1 {
		t.Error("Add not forwarded")
	}
	if _, err := fw.Execute(); err != nil || fc.executes != 1 {
		t.Error("Execute not forwarded")
	}
	if _, err := fw.GetState(); err != nil {
		t.Error("GetState not forwarded")
	}
	if _, err := fw.GetQuantumState(); !errors.Is(err, ErrUnsupported) {
		t.Error("GetQuantumState not forwarded")
	}
	fw.SetBypass(true)
	if !fc.bypass {
		t.Error("SetBypass not forwarded")
	}
}

func TestRunHelper(t *testing.T) {
	fc := &fakeCore{}
	res, err := Run(fc, circuit.New().Add(gates.H, 0))
	if err != nil || fc.adds != 1 || fc.executes != 1 {
		t.Fatalf("Run: adds=%d executes=%d err=%v", fc.adds, fc.executes, err)
	}
	if res.Last(0) != 1 {
		t.Error("Run result lost")
	}
}

func TestWithBypassRestores(t *testing.T) {
	fc := &fakeCore{}
	err := WithBypass(fc, func() error { return errors.New("inner") })
	if err == nil || err.Error() != "inner" {
		t.Error("inner error lost")
	}
	// Bypass toggled on then off even on error.
	if len(fc.lastBypass) != 2 || !fc.lastBypass[0] || fc.lastBypass[1] {
		t.Errorf("bypass toggles: %v", fc.lastBypass)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Measurements: []Measurement{
		{Qubit: 0, Value: 1}, {Qubit: 1, Value: 0}, {Qubit: 0, Value: 0},
	}}
	if got := r.ValuesFor(0); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("ValuesFor(0) = %v", got)
	}
	if r.Last(0) != 0 || r.Last(1) != 0 {
		t.Error("Last wrong")
	}
	if r.Last(9) != -1 {
		t.Error("missing qubit should give -1")
	}
}

func TestBinaryStateString(t *testing.T) {
	if StateZero.String() != "0" || StateOne.String() != "1" || StateUnknown.String() != "x" {
		t.Error("BinaryState rendering wrong")
	}
}

func TestValidate(t *testing.T) {
	c := circuit.New().Add(gates.CNOT, 0, 3)
	if err := Validate(c, 4); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	if err := Validate(c, 3); err == nil {
		t.Error("out-of-range circuit accepted")
	}
	bad := circuit.New()
	s := bad.AppendSlot()
	bad.AddToSlot(s, gates.H, 0)
	bad.AddToSlot(s, gates.X, 0)
	if err := Validate(bad, 2); err == nil {
		t.Error("conflicting circuit accepted")
	}
}
