// Package qpdo implements the layered control-stack framework of the
// thesis' Quantum Platform Development framewOrk (Chapter 4): a shared
// Core interface (Table 4.1) implemented by simulation cores at the bottom
// of a stack and by transparent layers above them. Layers are stacked in a
// flexible way — Pauli frame layers, error layers and counter layers can
// be inserted anywhere — and every layer processes the stream of circuits
// and the stream of measurement results flowing back up.
package qpdo

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
)

// BinaryState is the classically-known state of a qubit (thesis §4.2.2):
// 0 after reset or a 0 measurement, 1 after a 1 measurement, and x
// (unknown) after any gate.
type BinaryState uint8

// Binary state values.
const (
	StateZero BinaryState = iota
	StateOne
	StateUnknown
)

// String renders 0, 1 or x.
func (b BinaryState) String() string {
	switch b {
	case StateZero:
		return "0"
	case StateOne:
		return "1"
	default:
		return "x"
	}
}

// State is the binary-state view of every qubit in a stack.
type State struct {
	Values []BinaryState
}

// Measurement is one measurement outcome produced by Execute, reported in
// execution order (circuit order, slot order, operation order).
type Measurement struct {
	Qubit int
	Value int
}

// Result carries the outcomes of all measurement operations executed by
// one Execute call.
type Result struct {
	Measurements []Measurement
}

// ValuesFor returns the measurement outcomes of one qubit in order.
func (r *Result) ValuesFor(q int) []int {
	var out []int
	for _, m := range r.Measurements {
		if m.Qubit == q {
			out = append(out, m.Value)
		}
	}
	return out
}

// Last returns the final measurement of qubit q, or -1 when absent.
func (r *Result) Last(q int) int {
	v := -1
	for _, m := range r.Measurements {
		if m.Qubit == q {
			v = m.Value
		}
	}
	return v
}

// QuantumState is the full quantum state exposed by simulation cores that
// support it (thesis getquantumstate()); the concrete type depends on the
// back-end (amplitudes for the state-vector core, stabilizers for the
// CHP core).
type QuantumState interface {
	// Describe renders the state for logs and listings.
	Describe() string
}

// ErrUnsupported is returned by cores that cannot produce the requested
// view of the state.
var ErrUnsupported = errors.New("qpdo: operation not supported by this core")

// Core is the shared interface between all layers of a control stack
// (thesis Table 4.1). The bottom layer of every stack is a simulation
// core; every other layer wraps a next Core and is free to rewrite the
// circuit stream on the way down and the measurement stream on the way
// up.
type Core interface {
	// CreateQubits allocates n new qubits initialized to |0⟩.
	CreateQubits(n int) error
	// RemoveQubits removes the m highest-numbered qubits. Cores reject
	// the removal when those qubits are not disentangled |0⟩ states.
	RemoveQubits(m int) error
	// NumQubits returns the number of allocated qubits.
	NumQubits() int
	// Add queues a circuit for execution.
	Add(c *circuit.Circuit) error
	// Execute runs all queued circuits and returns the measurement
	// results in execution order.
	Execute() (*Result, error)
	// GetState returns the binary-state view of all qubits.
	GetState() (*State, error)
	// GetQuantumState returns the full quantum state when the back-end
	// supports it, ErrUnsupported otherwise.
	GetQuantumState() (QuantumState, error)
	// SetBypass toggles diagnostic bypass mode (thesis §5.3.1): service
	// layers such as error injection and counters pass circuits through
	// untouched while bypass is on. Layers forward the toggle downward.
	SetBypass(on bool)
}

// Forwarder is the embeddable base for transparent layers: every method
// delegates to the next Core. Concrete layers override what they need.
type Forwarder struct {
	Next Core
}

// CreateQubits forwards to the next layer.
func (f *Forwarder) CreateQubits(n int) error { return f.Next.CreateQubits(n) }

// RemoveQubits forwards to the next layer.
func (f *Forwarder) RemoveQubits(m int) error { return f.Next.RemoveQubits(m) }

// NumQubits forwards to the next layer.
func (f *Forwarder) NumQubits() int { return f.Next.NumQubits() }

// Add forwards to the next layer.
func (f *Forwarder) Add(c *circuit.Circuit) error { return f.Next.Add(c) }

// Execute forwards to the next layer.
func (f *Forwarder) Execute() (*Result, error) { return f.Next.Execute() }

// GetState forwards to the next layer.
func (f *Forwarder) GetState() (*State, error) { return f.Next.GetState() }

// GetQuantumState forwards to the next layer.
func (f *Forwarder) GetQuantumState() (QuantumState, error) { return f.Next.GetQuantumState() }

// SetBypass forwards to the next layer.
func (f *Forwarder) SetBypass(on bool) { f.Next.SetBypass(on) }

// Run is a convenience helper: queue one circuit and execute it.
func Run(c Core, circ *circuit.Circuit) (*Result, error) {
	if err := c.Add(circ); err != nil {
		return nil, err
	}
	return c.Execute()
}

// WithBypass runs fn with bypass mode enabled, restoring normal mode
// afterwards; used for the diagnostic circuits of the LER experiments.
func WithBypass(c Core, fn func() error) error {
	c.SetBypass(true)
	defer c.SetBypass(false)
	return fn()
}

// Validate checks a circuit against the stack before queueing; shared by
// core implementations.
func Validate(c *circuit.Circuit, numQubits int) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if mq := c.MaxQubit(); mq >= numQubits {
		return fmt.Errorf("qpdo: circuit references qubit %d but stack has %d qubits", mq, numQubits)
	}
	return nil
}
