package arch

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/pauli"
	"repro/internal/surface"
)

func newQCU(t *testing.T, seed int64) (*QCU, *layers.ChpCore) {
	t.Helper()
	chip := layers.NewChpCore(rand.New(rand.NewSource(seed)))
	if err := chip.CreateQubits(surface.NumQubits); err != nil {
		t.Fatal(err)
	}
	q, err := NewQCU(chip)
	if err != nil {
		t.Fatal(err)
	}
	return q, chip
}

func TestQCURequiresPlane(t *testing.T) {
	chip := layers.NewChpCore(rand.New(rand.NewSource(1)))
	if err := chip.CreateQubits(3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewQCU(chip); err == nil {
		t.Error("QCU should demand a full SC17 plane")
	}
}

// TestArbiterRoutingStatevector verifies the five dispatch flows of
// thesis Fig 3.12 at the architecture level by inspecting the PEL
// waveform trace (a state-vector chip so the non-Clifford flow runs).
func TestArbiterRoutingStatevector(t *testing.T) {
	chip := layers.NewQxCore(rand.New(rand.NewSource(3)))
	if err := chip.CreateQubits(surface.NumQubits); err != nil {
		t.Fatal(err)
	}
	q, err := NewQCU(chip)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.Execute([]Instruction{
		Reset(0),
		Gate(gates.X, 0), // absorbed
		Gate(gates.H, 0), // forwarded; record X→Z
		Gate(gates.T, 0), // flush Z, then T
		Measure(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTrace := []gates.Name{gates.PrepZ, gates.GateH, gates.GateZ, gates.GateT, gates.MeasZ}
	if len(q.PEL().Trace) != len(wantTrace) {
		t.Fatalf("trace %v, want %v", q.PEL().Trace, wantTrace)
	}
	for i, e := range q.PEL().Trace {
		if e.Gate != wantTrace[i] {
			t.Errorf("trace[%d] = %s, want %s", i, e.Gate, wantTrace[i])
		}
	}
	if len(rep.Measurements) != 1 {
		t.Fatalf("measurements: %v", rep.Measurements)
	}
	// Physical state is T Z H |0⟩ (X absorbed then flushed as Z):
	// H|0⟩=|+⟩, Z|+⟩=|−⟩, T|−⟩ — measurement is 50/50; only bounds
	// checkable. The arbiter stats are deterministic:
	st := q.PFU().Stats
	if st.PauliAbsorbed != 1 || st.CliffordMapped != 1 || st.NonClifford != 1 || st.FlushGates != 1 {
		t.Errorf("arbiter stats: %+v", st)
	}
}

// TestMeasurementMapping: a tracked X record inverts the reported
// measurement without any physical gate (thesis Table 3.2 in hardware).
func TestMeasurementMapping(t *testing.T) {
	q, _ := newQCU(t, 4)
	rep, err := q.Execute([]Instruction{
		Reset(5),
		Gate(gates.X, 5),
		Measure(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measurements) != 1 || rep.Measurements[0] != 1 {
		t.Errorf("measurements = %v, want [1]", rep.Measurements)
	}
	// The PEL never saw the X.
	for _, e := range q.PEL().Trace {
		if e.Gate == gates.GateX {
			t.Error("Pauli gate leaked to the PEL")
		}
	}
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable(4)
	p, err := st.Translate(2)
	if err != nil || p != 2 {
		t.Errorf("identity mapping broken: %d %v", p, err)
	}
	st.Set(2, 7)
	if p, _ := st.Translate(2); p != 7 {
		t.Errorf("remap failed: %d", p)
	}
	st.Dealloc(2)
	if _, err := st.Translate(2); err == nil {
		t.Error("dead qubit should not translate")
	}
	st.Set(2, 1)
	if _, err := st.Translate(2); err != nil {
		t.Error("re-mapping should revive the qubit")
	}
}

func TestAddressTranslationInProgram(t *testing.T) {
	q, _ := newQCU(t, 5)
	rep, err := q.Execute([]Instruction{
		MapQubit(9, 3), // virtual 9 lives at physical 3
		Reset(9),
		Gate(gates.H, 9),
		Measure(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range q.PEL().Trace {
		for _, qb := range e.Qubits {
			if qb != 3 {
				t.Errorf("operation addressed physical %d, want 3", qb)
			}
		}
	}
	if len(rep.Measurements) != 1 {
		t.Errorf("measurements: %v", rep.Measurements)
	}
	// Deallocated qubits fault.
	if _, err := q.Execute([]Instruction{Dealloc(9), Gate(gates.H, 9)}); err == nil {
		t.Error("gate on deallocated qubit should fail")
	}
}

// TestQECCycleAbsorbsCorrections is the architecture-level headline: a
// physical error on the plane is detected by QEC slots and its
// correction is absorbed into the Pauli frame — no correction waveform
// ever reaches the PEL (thesis §3.3).
func TestQECCycleAbsorbsCorrections(t *testing.T) {
	q, chip := newQCU(t, 6)
	// Establish the plane in |0⟩_L: reset all data and let the QED unit
	// fix the random X-stabilizer signs over a few cycles.
	var prog []Instruction
	for d := 0; d < surface.NumData; d++ {
		prog = append(prog, Reset(d))
	}
	for i := 0; i < 6; i++ {
		prog = append(prog, QECSlot())
	}
	rep, err := q.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ESMRounds != 6 {
		t.Errorf("ESM rounds = %d", rep.ESMRounds)
	}

	// Inject a physical X error behind the architecture's back.
	chip.Tableau().X(4)
	preTrace := len(q.PEL().Trace)
	rep2, err := q.Execute([]Instruction{QECSlot(), QECSlot(), QECSlot(), QECSlot()})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrections == 0 {
		t.Fatal("QED unit never corrected the injected error")
	}
	// The corrections were absorbed by the PFU: no X/Y/Z waveform on a
	// data qubit in the new trace except those belonging to ESM (none —
	// ESM has no Pauli gates).
	for _, e := range q.PEL().Trace[preTrace:] {
		if e.Gate == gates.GateX || e.Gate == gates.GateY || e.Gate == gates.GateZ {
			t.Errorf("correction waveform leaked to the PEL: %+v", e)
		}
	}
	// The frame now tracks the error on data qubit 4.
	if q.PFU().Frame.Record(4) != pauli.RecX {
		t.Errorf("frame record of D4 = %v, want X", q.PFU().Frame.Record(4))
	}
	// And the syndrome, viewed through the frame, is clean again: two
	// more cycles decode nothing.
	rep3, err := q.Execute([]Instruction{QECSlot(), QECSlot()})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Corrections != 0 {
		t.Errorf("ghost corrections after absorption: %d", rep3.Corrections)
	}
}

// TestLogicalMeasurementUnit verifies §3.5.1's Logic Measurement Unit:
// the plane's transversal data outcomes combine into one parity result,
// and a frame-tracked logical X chain flips it without any waveform.
func TestLogicalMeasurementUnit(t *testing.T) {
	q, _ := newQCU(t, 9)
	var prog []Instruction
	for d := 0; d < surface.NumData; d++ {
		prog = append(prog, Reset(d))
	}
	prog = append(prog, QECSlot(), QECSlot(), QECSlot(), QECSlot())
	// Logical X as a chain of frame-absorbed Paulis, then logical readout.
	prog = append(prog, Gate(gates.X, 2), Gate(gates.X, 4), Gate(gates.X, 6))
	prog = append(prog, LogicalMeasure())
	rep, err := q.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measurements) != 1 {
		t.Fatalf("logical measurement should report one result: %v", rep.Measurements)
	}
	if rep.Measurements[0] != 1 {
		t.Errorf("logical result = %d, want 1 after X_L", rep.Measurements[0])
	}
	// The assembler knows the instruction too.
	asm, err := Assemble("lmeasure")
	if err != nil || len(asm) != 1 || asm[0].Op != OpLogicalMeasure {
		t.Errorf("assembler lmeasure: %v %v", asm, err)
	}
	if _, err := Assemble("lmeasure 3"); err == nil {
		t.Error("lmeasure with operand should fail")
	}
}

func TestQECDetectsZErrors(t *testing.T) {
	q, chip := newQCU(t, 7)
	var prog []Instruction
	for d := 0; d < surface.NumData; d++ {
		prog = append(prog, Reset(d))
	}
	for i := 0; i < 6; i++ {
		prog = append(prog, QECSlot())
	}
	if _, err := q.Execute(prog); err != nil {
		t.Fatal(err)
	}
	chip.Tableau().Z(1)
	rep, err := q.Execute([]Instruction{QECSlot(), QECSlot(), QECSlot(), QECSlot()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrections == 0 {
		t.Error("Z error never corrected")
	}
	if !q.PFU().Frame.Record(1).Z && q.PFU().Frame.PendingCount() == 0 {
		t.Error("no Z record tracked after correction")
	}
}
