package arch

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/layers"
	"repro/internal/surface"
	"repro/internal/timing"
)

func TestCycleCounterPrimitives(t *testing.T) {
	c := &CycleCounter{Model: CycleModel{GateCycles: 1, ResetCycles: 2, MeasureCycles: 3}}
	c.AddOp(gates.ClassClifford)
	c.AddOp(gates.ClassReset)
	c.AddOp(gates.ClassMeasure)
	if c.Total != 6 {
		t.Errorf("total = %d, want 6", c.Total)
	}
	c.Total = 0
	c.AddSlot([]gates.Class{gates.ClassClifford, gates.ClassMeasure, gates.ClassReset})
	if c.Total != 3 {
		t.Errorf("slot cost = %d, want 3 (slowest member)", c.Total)
	}
}

func TestWindowEpilogueSchedules(t *testing.T) {
	// Serial schedule: decoder stall + correction slot.
	serial := &CycleCounter{Model: DefaultCycleModel(false)}
	serial.AddWindowEpilogue(2, 16)
	if serial.Total != 8+1 || serial.DecodeStalls != 8 || serial.CorrectionCycles != 1 {
		t.Errorf("serial epilogue: %+v", serial)
	}
	// Pipelined: free when the decoder fits in a window.
	pipe := &CycleCounter{Model: DefaultCycleModel(true)}
	pipe.AddWindowEpilogue(2, 16)
	if pipe.Total != 0 {
		t.Errorf("pipelined epilogue should be free: %+v", pipe)
	}
	// Pipelined with a slow decoder stalls by the excess only.
	slow := &CycleCounter{Model: CycleModel{GateCycles: 1, ResetCycles: 1, MeasureCycles: 1,
		DecodeCycles: 40, PauliFramePipelined: true}}
	slow.AddWindowEpilogue(0, 16)
	if slow.Total != 24 || slow.DecodeStalls != 24 {
		t.Errorf("slow pipelined epilogue: %+v", slow)
	}
}

// TestQCUCycleAccounting runs the same QEC workload under both schedules
// and checks the pipelined (Pauli frame) variant is faster by the
// decoder stalls plus correction slots — the Fig 3.3 claim measured on
// the architecture model itself.
func TestQCUCycleAccounting(t *testing.T) {
	run := func(pipelined bool) *CycleCounter {
		chip := layers.NewChpCore(rand.New(rand.NewSource(8)))
		if err := chip.CreateQubits(surface.NumQubits); err != nil {
			t.Fatal(err)
		}
		q, err := NewQCU(chip)
		if err != nil {
			t.Fatal(err)
		}
		q.SetCycleModel(DefaultCycleModel(pipelined))
		var prog []Instruction
		for d := 0; d < surface.NumData; d++ {
			prog = append(prog, Reset(d))
		}
		for i := 0; i < 10; i++ {
			prog = append(prog, QECSlot())
		}
		if _, err := q.Execute(prog); err != nil {
			t.Fatal(err)
		}
		return q.Cycles()
	}
	serial := run(false)
	pipe := run(true)
	if pipe.Total >= serial.Total {
		t.Errorf("pipelined %d cycles not faster than serial %d", pipe.Total, serial.Total)
	}
	saved := serial.Total - pipe.Total
	expect := serial.DecodeStalls + serial.CorrectionCycles - pipe.DecodeStalls
	if saved != expect {
		t.Errorf("saved %d cycles, expected %d (stalls %d + corrections %d)",
			saved, expect, serial.DecodeStalls, serial.CorrectionCycles)
	}
	// Cross-check against the analytic schedule model: the per-window
	// saving matches timing.SavedSlots when every window has corrections.
	p := DefaultCycleModel(false).TimingParams(8, 2)
	if timing.SavedSlots(p) != 9 {
		t.Errorf("analytic cross-check: %d", timing.SavedSlots(p))
	}
}
