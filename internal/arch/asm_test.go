package arch

import (
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/surface"
)

func TestAssemble(t *testing.T) {
	src := `
# demo program
map 9 3
reset 9
gate h 9
gate cnot 9 0
qec
measure 9
dealloc 9
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Opcode{OpMapQubit, OpReset, OpGate, OpGate, OpQECSlot, OpMeasure, OpDealloc}
	if len(prog) != len(wantOps) {
		t.Fatalf("program length %d, want %d", len(prog), len(wantOps))
	}
	for i, ins := range prog {
		if ins.Op != wantOps[i] {
			t.Errorf("instruction %d opcode %v, want %v", i, ins.Op, wantOps[i])
		}
	}
	if prog[0].Virtual != 9 || prog[0].Physical != 3 {
		t.Errorf("map parsed wrong: %+v", prog[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"launch missiles",
		"gate frobnicate 0",
		"gate cnot 0",
		"map 1",
		"reset -1",
		"measure 1 2",
		"qec 3",
		"dealloc",
		"gate h x",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembledProgramRuns(t *testing.T) {
	chip := layers.NewChpCore(rand.New(rand.NewSource(1)))
	if err := chip.CreateQubits(surface.NumQubits); err != nil {
		t.Fatal(err)
	}
	qcu, err := NewQCU(chip)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(`
reset 0
gate x 0
qec
qec
measure 0
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := qcu.Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measurements) != 1 || rep.Measurements[0] != 1 {
		t.Errorf("measurements = %v, want [1]", rep.Measurements)
	}
	if rep.ESMRounds != 2 {
		t.Errorf("ESM rounds = %d", rep.ESMRounds)
	}
}
