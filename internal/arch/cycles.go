package arch

import (
	"repro/internal/gates"
	"repro/internal/timing"
)

// CycleModel assigns cycle costs to the architecture's operations — the
// first step toward the thesis' future-work goal of "clock-cycle
// accurate emulation" of the proposed QCU (Chapter 6). Costs are in
// control-cycle units; the defaults make one time slot one cycle, with
// measurements and resets stretched the way superconducting hardware
// stretches them relative to gates.
type CycleModel struct {
	// GateCycles is the cost of one physical gate pulse.
	GateCycles int
	// ResetCycles is the cost of an initialization.
	ResetCycles int
	// MeasureCycles is the cost of a readout.
	MeasureCycles int
	// DecodeCycles is the QED unit's latency after the final syndrome
	// of a window arrives.
	DecodeCycles int
	// PauliFramePipelined selects the Fig 3.3b schedule: decoding
	// overlaps the next ESM rounds and corrections are classical. The
	// serial schedule (Fig 3.3a) stalls for the decoder and spends a
	// slot applying corrections.
	PauliFramePipelined bool
}

// DefaultCycleModel mirrors the thesis' slot accounting: every operation
// is one slot, the decoder takes one ESM round's worth of cycles.
func DefaultCycleModel(pipelined bool) CycleModel {
	return CycleModel{
		GateCycles:          1,
		ResetCycles:         1,
		MeasureCycles:       1,
		DecodeCycles:        8,
		PauliFramePipelined: pipelined,
	}
}

// CycleCounter accumulates the execution time of a program under a
// cycle model. The QCU drives it; slot-parallelism inside ESM circuits
// is accounted by the per-slot maximum.
type CycleCounter struct {
	Model CycleModel
	// Total is the accumulated cycle count.
	Total int
	// DecodeStalls counts cycles spent waiting for the decoder.
	DecodeStalls int
	// CorrectionCycles counts cycles spent applying physical
	// corrections (zero when the frame absorbs them).
	CorrectionCycles int
}

// opCycles prices one physical operation.
func (c *CycleCounter) opCycles(class gates.Class) int {
	switch class {
	case gates.ClassReset:
		return c.Model.ResetCycles
	case gates.ClassMeasure:
		return c.Model.MeasureCycles
	default:
		return c.Model.GateCycles
	}
}

// AddOp accounts one serially issued operation.
func (c *CycleCounter) AddOp(class gates.Class) {
	c.Total += c.opCycles(class)
}

// AddSlot accounts one parallel slot of operation classes (cost = the
// slowest member).
func (c *CycleCounter) AddSlot(classes []gates.Class) {
	max := 0
	for _, cl := range classes {
		if v := c.opCycles(cl); v > max {
			max = v
		}
	}
	c.Total += max
}

// AddWindowEpilogue accounts what happens between the last syndrome of a
// window and the next window: under the serial schedule the controller
// stalls for the decoder and applies corrections physically; under the
// pipelined Pauli-frame schedule decoding overlaps the next window and
// corrections are classical, so the epilogue only costs when the decoder
// is slower than a whole window (thesis Fig 3.3).
func (c *CycleCounter) AddWindowEpilogue(corrections int, windowCycles int) {
	if !c.Model.PauliFramePipelined {
		c.DecodeStalls += c.Model.DecodeCycles
		c.Total += c.Model.DecodeCycles
		if corrections > 0 {
			c.CorrectionCycles += c.Model.GateCycles
			c.Total += c.Model.GateCycles
		}
		return
	}
	if c.Model.DecodeCycles > windowCycles {
		stall := c.Model.DecodeCycles - windowCycles
		c.DecodeStalls += stall
		c.Total += stall
	}
}

// TimingParams converts the model into the analytic schedule parameters
// of package timing for cross-checking.
func (c CycleModel) TimingParams(tsESM, rounds int) timing.Params {
	correction := 1
	if c.PauliFramePipelined {
		correction = 0
	}
	return timing.Params{
		TsESM:           tsESM,
		RoundsPerWindow: rounds,
		DecodeLatency:   c.DecodeCycles,
		CorrectionSlots: correction,
	}
}
