// Package arch is a functional model of the heterogeneous quantum
// computer architecture of thesis §3.5 (Figs 3.10–3.12): a Quantum
// Control Unit (QCU) that decodes QISA instructions, translates
// compiler-issued virtual qubit addresses through the Q symbol table,
// routes operations through the Pauli arbiter and Pauli Frame Unit,
// generates Error Syndrome Measurement cycles for a Surface Code 17
// qubit plane, decodes syndromes in the Quantum Error Detection unit,
// and drives a mock Physical Execution Layer (PEL) that "emits
// waveforms" onto a simulated quantum chip.
package arch

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/gates"
	"repro/internal/qpdo"
	"repro/internal/surface"
)

// Opcode enumerates the QISA instruction categories the execution
// controller decodes (thesis §3.5.1).
type Opcode int

// QISA opcodes.
const (
	// OpGate applies a physical gate to virtual qubit operands.
	OpGate Opcode = iota
	// OpReset initializes a virtual qubit to |0⟩.
	OpReset
	// OpMeasure measures a virtual qubit in the computational basis.
	OpMeasure
	// OpQECSlot asks the QEC cycle generator to insert one ESM round
	// for the qubit plane.
	OpQECSlot
	// OpMapQubit updates the Q symbol table (virtual → physical).
	OpMapQubit
	// OpDealloc marks a virtual qubit dead in the symbol table.
	OpDealloc
	// OpLogicalMeasure asks the Logic Measurement Unit to measure the
	// SC17 plane's logical qubit: transversal data measurement combined
	// into one parity result (thesis §3.5.1).
	OpLogicalMeasure
)

// Instruction is one QISA instruction.
type Instruction struct {
	Op   Opcode
	Gate *gates.Gate
	// Operands are virtual qubit addresses (compiler view).
	Operands []int
	// Virtual/Physical parameterize OpMapQubit.
	Virtual, Physical int
}

// Gate builds a gate instruction.
func Gate(g *gates.Gate, operands ...int) Instruction {
	return Instruction{Op: OpGate, Gate: g, Operands: operands}
}

// Reset builds a reset instruction.
func Reset(v int) Instruction { return Instruction{Op: OpReset, Operands: []int{v}} }

// Measure builds a measurement instruction.
func Measure(v int) Instruction { return Instruction{Op: OpMeasure, Operands: []int{v}} }

// QECSlot builds a QEC-slot instruction.
func QECSlot() Instruction { return Instruction{Op: OpQECSlot} }

// MapQubit builds a symbol-table update.
func MapQubit(virtual, physical int) Instruction {
	return Instruction{Op: OpMapQubit, Virtual: virtual, Physical: physical}
}

// Dealloc builds a deallocation instruction.
func Dealloc(v int) Instruction { return Instruction{Op: OpDealloc, Operands: []int{v}} }

// LogicalMeasure builds a logical-measurement instruction for the plane.
func LogicalMeasure() Instruction { return Instruction{Op: OpLogicalMeasure} }

// SymbolTable is the Q symbol table: the run-time mapping from
// compiler-issued virtual qubit addresses to physical qubits, with
// liveness tracking (thesis §3.5.1).
type SymbolTable struct {
	phys  map[int]int
	alive map[int]bool
}

// NewSymbolTable starts with the identity mapping for n qubits.
func NewSymbolTable(n int) *SymbolTable {
	t := &SymbolTable{phys: map[int]int{}, alive: map[int]bool{}}
	for i := 0; i < n; i++ {
		t.phys[i] = i
		t.alive[i] = true
	}
	return t
}

// Translate resolves a virtual address.
func (t *SymbolTable) Translate(v int) (int, error) {
	if !t.alive[v] {
		return 0, fmt.Errorf("arch: virtual qubit %d is not alive", v)
	}
	return t.phys[v], nil
}

// Set maps a virtual address to a physical qubit and marks it alive.
func (t *SymbolTable) Set(virtual, physical int) {
	t.phys[virtual] = physical
	t.alive[virtual] = true
}

// Dealloc marks a virtual qubit dead.
func (t *SymbolTable) Dealloc(v int) { t.alive[v] = false }

// TraceEntry records one operation the PEL converted to waveforms.
type TraceEntry struct {
	Gate   gates.Name
	Qubits []int
}

// PEL is the mock Physical Execution Layer: it records the operation
// stream (the "waveforms" routed through the Quantum-Classical
// Interface) and applies it to the simulated quantum chip.
type PEL struct {
	chip  qpdo.Core
	Trace []TraceEntry
}

// NewPEL wraps a simulated chip.
func NewPEL(chip qpdo.Core) *PEL { return &PEL{chip: chip} }

// Apply executes one physical operation and returns the measurement
// result when the operation is a measurement (else -1).
func (p *PEL) Apply(op circuit.Operation) (int, error) {
	p.Trace = append(p.Trace, TraceEntry{Gate: op.Gate.Name, Qubits: append([]int(nil), op.Qubits...)})
	c := circuit.New()
	c.AddParallel(op)
	if err := p.chip.Add(c); err != nil {
		return -1, err
	}
	res, err := p.chip.Execute()
	if err != nil {
		return -1, err
	}
	if op.Gate.Class == gates.ClassMeasure {
		if len(res.Measurements) == 0 {
			return -1, fmt.Errorf("arch: measurement produced no result")
		}
		return res.Measurements[len(res.Measurements)-1].Value, nil
	}
	return -1, nil
}

// Report summarizes one program execution.
type Report struct {
	// Measurements are the architecture-visible (frame-corrected)
	// measurement results in program order.
	Measurements []int
	// Corrections counts Pauli corrections the QED unit issued (all of
	// which the PFU absorbed).
	Corrections int
	// ESMRounds counts QEC cycles generated.
	ESMRounds int
}

// QCU is the quantum control unit (thesis Fig 3.10): execution
// controller + address translation + Pauli arbiter/PFU + QEC cycle
// generator + QED unit + logic measurement unit, driving a PEL.
type QCU struct {
	symtab *SymbolTable
	pfu    *core.PFU
	pel    *PEL

	// QEC machinery for one SC17 plane on physical qubits 0..16.
	star       *surface.Star
	decA, decB *decoder.WindowDecoder
	rounds     []surface.SyndromeRound

	// cycles, when non-nil, accumulates execution time under a cycle
	// model (the first step toward the thesis' clock-cycle-accurate
	// emulation goal, Chapter 6).
	cycles *CycleCounter
}

// NewQCU builds a control unit for a chip exposing at least
// surface.NumQubits physical qubits.
func NewQCU(chip qpdo.Core) (*QCU, error) {
	if chip.NumQubits() < surface.NumQubits {
		return nil, fmt.Errorf("arch: chip has %d qubits, the SC17 plane needs %d",
			chip.NumQubits(), surface.NumQubits)
	}
	star := &surface.Star{Mode: surface.AncillaDedicated}
	for i := 0; i < surface.NumData; i++ {
		star.Data[i] = i
	}
	for i := 0; i < surface.NumAncilla; i++ {
		star.Anc[i] = surface.NumData + i
	}
	return &QCU{
		symtab: NewSymbolTable(chip.NumQubits()),
		pfu:    core.NewPFU(chip.NumQubits()),
		pel:    NewPEL(chip),
		star:   star,
		decA:   decoder.NewWindowDecoder(decoder.BuildLUT(surface.XSupports(surface.RotNormal), surface.NumData)),
		decB:   decoder.NewWindowDecoder(decoder.BuildLUT(surface.ZSupports(surface.RotNormal), surface.NumData)),
	}, nil
}

// SymbolTable exposes the Q symbol table.
func (q *QCU) SymbolTable() *SymbolTable { return q.symtab }

// PFU exposes the Pauli frame unit for inspection.
func (q *QCU) PFU() *core.PFU { return q.pfu }

// PEL exposes the physical execution layer trace.
func (q *QCU) PEL() *PEL { return q.pel }

// SetCycleModel enables cycle accounting for subsequent Execute calls.
func (q *QCU) SetCycleModel(m CycleModel) { q.cycles = &CycleCounter{Model: m} }

// Cycles returns the accumulated counter (nil when accounting is off).
func (q *QCU) Cycles() *CycleCounter { return q.cycles }

// Execute runs a QISA program (thesis §3.5.1: the execution controller
// decodes each instruction and dispatches it).
func (q *QCU) Execute(program []Instruction) (*Report, error) {
	rep := &Report{}
	for pc, ins := range program {
		if err := q.step(ins, rep); err != nil {
			return rep, fmt.Errorf("arch: pc %d: %w", pc, err)
		}
	}
	return rep, nil
}

func (q *QCU) step(ins Instruction, rep *Report) error {
	switch ins.Op {
	case OpMapQubit:
		q.symtab.Set(ins.Virtual, ins.Physical)
		return nil
	case OpDealloc:
		q.symtab.Dealloc(ins.Operands[0])
		return nil
	case OpQECSlot:
		return q.qecCycle(rep)
	case OpLogicalMeasure:
		return q.logicalMeasure(rep)
	case OpGate, OpReset, OpMeasure:
		phys := make([]int, len(ins.Operands))
		for i, v := range ins.Operands {
			p, err := q.symtab.Translate(v)
			if err != nil {
				return err
			}
			phys[i] = p
		}
		g := ins.Gate
		switch ins.Op {
		case OpReset:
			g = gates.Prep
		case OpMeasure:
			g = gates.Measure
		}
		if g == nil {
			return fmt.Errorf("gate instruction without gate")
		}
		return q.issue(circuit.NewOp(g, phys...), rep, true)
	}
	return fmt.Errorf("unknown opcode %d", ins.Op)
}

// issue routes one physical operation through the Pauli arbiter
// (thesis Fig 3.12) and the PEL.
func (q *QCU) issue(op circuit.Operation, rep *Report, report bool) error {
	fwd, err := q.pfu.Process(op)
	if err != nil {
		return err
	}
	for _, f := range fwd {
		if q.cycles != nil {
			q.cycles.AddOp(f.Gate.Class)
		}
		raw, err := q.pel.Apply(f)
		if err != nil {
			return err
		}
		if f.Gate.Class == gates.ClassMeasure {
			mapped := q.pfu.MapMeasurement(f.Qubits[0], raw)
			if report {
				rep.Measurements = append(rep.Measurements, mapped)
			}
		}
	}
	return nil
}

// logicalMeasure implements the Logic Measurement Unit (thesis §3.5.1):
// it waits for the transversal data measurements to arrive from the PEL
// (each frame-corrected by the PFU) and combines them into the logical
// parity result, which is reported in place of the raw outcomes.
func (q *QCU) logicalMeasure(rep *Report) error {
	parity := 0
	for _, d := range q.star.Data {
		scratch := &Report{}
		if err := q.issue(circuit.NewOp(gates.Measure, d), scratch, true); err != nil {
			return err
		}
		parity ^= scratch.Measurements[0]
	}
	rep.Measurements = append(rep.Measurements, parity)
	return nil
}

// qecCycle implements the QEC cycle generator + QED unit (thesis
// §3.5.1): emit one ESM round for the plane, collect the syndromes, and
// after every second round run the windowed decoder; the resulting
// correction Pauli gates are routed through the arbiter, where the PFU
// absorbs them.
func (q *QCU) qecCycle(rep *Report) error {
	esm := q.star.ESMCircuit()
	var outcomes []qpdo.Measurement
	esmCycles := 0
	for _, slot := range esm.Slots {
		if q.cycles != nil {
			classes := make([]gates.Class, len(slot.Ops))
			for i, op := range slot.Ops {
				classes[i] = op.Gate.Class
			}
			before := q.cycles.Total
			q.cycles.AddSlot(classes)
			esmCycles += q.cycles.Total - before
		}
		for _, op := range slot.Ops {
			fwd, err := q.pfu.Process(op)
			if err != nil {
				return err
			}
			for _, f := range fwd {
				raw, err := q.pel.Apply(f)
				if err != nil {
					return err
				}
				if f.Gate.Class == gates.ClassMeasure {
					mapped := q.pfu.MapMeasurement(f.Qubits[0], raw)
					outcomes = append(outcomes, qpdo.Measurement{Qubit: f.Qubits[0], Value: mapped})
				}
			}
		}
	}
	round, err := q.star.ParseESM(&qpdo.Result{Measurements: outcomes})
	if err != nil {
		return err
	}
	rep.ESMRounds++
	q.rounds = append(q.rounds, round)
	if len(q.rounds) < 2 {
		return nil
	}
	r1, r2 := q.rounds[0], q.rounds[1]
	q.rounds = q.rounds[:0]
	corrA := q.decA.Decode(r1.A, r2.A)
	corrB := q.decB.Decode(r1.B, r2.B)
	if q.cycles != nil {
		q.cycles.AddWindowEpilogue(len(corrA)+len(corrB), 2*esmCycles)
	}
	for _, d := range corrA {
		if err := q.issue(circuit.NewOp(gates.Z, q.star.Data[d]), rep, false); err != nil {
			return err
		}
		rep.Corrections++
	}
	for _, d := range corrB {
		if err := q.issue(circuit.NewOp(gates.X, q.star.Data[d]), rep, false); err != nil {
			return err
		}
		rep.Corrections++
	}
	return nil
}
