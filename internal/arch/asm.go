package arch

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/gates"
)

// Assemble parses a textual QISA program into instructions. The format
// mirrors the instruction categories of thesis §3.5.1, one per line:
//
//	map <virtual> <physical>   # Q symbol table update
//	reset <v>                  # initialization
//	gate <name> <v> [<v> ...]  # physical gate on virtual operands
//	measure <v>                # computational-basis measurement
//	qec                        # one QEC cycle slot
//	dealloc <v>                # mark a virtual qubit dead
//
// '#' starts a comment; blank lines are skipped.
func Assemble(src string) ([]Instruction, error) {
	var prog []Instruction
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineNo := ln + 1
		ints := func(toks []string) ([]int, error) {
			out := make([]int, len(toks))
			for i, tok := range toks {
				v, err := strconv.Atoi(tok)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("arch: line %d: bad operand %q", lineNo, tok)
				}
				out[i] = v
			}
			return out, nil
		}
		switch strings.ToLower(fields[0]) {
		case "map":
			ops, err := ints(fields[1:])
			if err != nil {
				return nil, err
			}
			if len(ops) != 2 {
				return nil, fmt.Errorf("arch: line %d: map wants 2 operands", lineNo)
			}
			prog = append(prog, MapQubit(ops[0], ops[1]))
		case "reset":
			ops, err := ints(fields[1:])
			if err != nil {
				return nil, err
			}
			if len(ops) != 1 {
				return nil, fmt.Errorf("arch: line %d: reset wants 1 operand", lineNo)
			}
			prog = append(prog, Reset(ops[0]))
		case "measure":
			ops, err := ints(fields[1:])
			if err != nil {
				return nil, err
			}
			if len(ops) != 1 {
				return nil, fmt.Errorf("arch: line %d: measure wants 1 operand", lineNo)
			}
			prog = append(prog, Measure(ops[0]))
		case "qec":
			if len(fields) != 1 {
				return nil, fmt.Errorf("arch: line %d: qec takes no operands", lineNo)
			}
			prog = append(prog, QECSlot())
		case "lmeasure":
			if len(fields) != 1 {
				return nil, fmt.Errorf("arch: line %d: lmeasure takes no operands", lineNo)
			}
			prog = append(prog, LogicalMeasure())
		case "dealloc":
			ops, err := ints(fields[1:])
			if err != nil {
				return nil, err
			}
			if len(ops) != 1 {
				return nil, fmt.Errorf("arch: line %d: dealloc wants 1 operand", lineNo)
			}
			prog = append(prog, Dealloc(ops[0]))
		case "gate":
			if len(fields) < 3 {
				return nil, fmt.Errorf("arch: line %d: gate wants a name and operands", lineNo)
			}
			g, ok := gates.Lookup(gates.Name(strings.ToLower(fields[1])))
			if !ok {
				return nil, fmt.Errorf("arch: line %d: unknown gate %q", lineNo, fields[1])
			}
			ops, err := ints(fields[2:])
			if err != nil {
				return nil, err
			}
			if len(ops) != g.Arity {
				return nil, fmt.Errorf("arch: line %d: gate %s wants %d operands, got %d",
					lineNo, g, g.Arity, len(ops))
			}
			prog = append(prog, Gate(g, ops...))
		default:
			return nil, fmt.Errorf("arch: line %d: unknown instruction %q", lineNo, fields[0])
		}
	}
	return prog, nil
}
