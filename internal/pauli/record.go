package pauli

import "fmt"

// Record is the compressed two-bit Pauli record of one qubit inside a
// Pauli frame (thesis §3.2). A record stores the X and Z components of
// the accumulated Pauli operator; global phase is discarded, so the four
// possible values are I, X, Z and XZ (thesis §3.1).
type Record struct {
	// X is set when the accumulated operator contains an X component.
	X bool
	// Z is set when the accumulated operator contains a Z component.
	Z bool
}

// Named record values matching the thesis notation {I, X, Z, XZ}.
var (
	RecI  = Record{}
	RecX  = Record{X: true}
	RecZ  = Record{Z: true}
	RecXZ = Record{X: true, Z: true}
)

// AllRecords lists the four possible records, for exhaustive table tests.
func AllRecords() []Record { return []Record{RecI, RecX, RecZ, RecXZ} }

// RecordFromPauli converts a Pauli operator into the record that tracks
// it: Y is recorded as XZ since Y = iXZ and the phase i is dropped.
func RecordFromPauli(p Pauli) Record {
	return Record{X: p.HasX(), Z: p.HasZ()}
}

// Pauli returns the Pauli operator the record represents up to phase
// (XZ maps back to Y).
func (r Record) Pauli() Pauli {
	var p Pauli
	if r.X {
		p |= X
	}
	if r.Z {
		p |= Z
	}
	return p
}

// IsIdentity reports whether nothing is tracked.
func (r Record) IsIdentity() bool { return !r.X && !r.Z }

// FlipsMeasurement reports whether a computational-basis measurement
// result of the qubit must be inverted (thesis Table 3.2): only the X
// component flips the outcome.
func (r Record) FlipsMeasurement() bool { return r.X }

// MulPauli returns the record after a further Pauli operator is tracked
// (thesis Table 3.3, extended with Y). Tracking is multiplication in the
// Pauli group modulo phase: component-wise XOR.
func (r Record) MulPauli(p Pauli) Record {
	return Record{X: r.X != p.HasX(), Z: r.Z != p.HasZ()}
}

// String renders the record in the thesis notation.
func (r Record) String() string {
	switch r {
	case RecI:
		return "I"
	case RecX:
		return "X"
	case RecZ:
		return "Z"
	case RecXZ:
		return "XZ"
	}
	return fmt.Sprintf("Record{%v,%v}", r.X, r.Z)
}

// MapH conjugates the record by a Hadamard gate: H X H = Z, H Z H = X,
// so the components swap (thesis Table 3.4).
func (r Record) MapH() Record { return Record{X: r.Z, Z: r.X} }

// MapS conjugates the record by the phase gate S: S X S† = Y = iXZ,
// S Z S† = Z, so the Z component toggles when X is present
// (thesis Table 3.4).
func (r Record) MapS() Record { return Record{X: r.X, Z: r.Z != r.X} }

// MapSdg conjugates the record by S†. Up to the discarded global phase
// S† acts on records exactly like S (S† X S = −Y, S† Z S = Z).
func (r Record) MapSdg() Record { return r.MapS() }

// MapCNOT conjugates the pair of records for the control and target of a
// CNOT gate (thesis Table 3.5). X on the control copies to the target;
// Z on the target copies to the control:
//
//	CNOT (X⊗I) CNOT = X⊗X,   CNOT (I⊗Z) CNOT = Z⊗Z,
//	CNOT (Z⊗I) CNOT = Z⊗I,   CNOT (I⊗X) CNOT = I⊗X.
func MapCNOT(control, target Record) (Record, Record) {
	c := Record{X: control.X, Z: control.Z != target.Z}
	t := Record{X: target.X != control.X, Z: target.Z}
	return c, t
}

// MapCZ conjugates the pair of records for the two operands of a CZ gate:
//
//	CZ (X⊗I) CZ = X⊗Z,   CZ (I⊗X) CZ = Z⊗X,
//	CZ (Z⊗I) CZ = Z⊗I,   CZ (I⊗Z) CZ = I⊗Z.
func MapCZ(a, b Record) (Record, Record) {
	ra := Record{X: a.X, Z: a.Z != b.X}
	rb := Record{X: b.X, Z: b.Z != a.X}
	return ra, rb
}

// MapSWAP exchanges the records of the two operands of a SWAP gate.
func MapSWAP(a, b Record) (Record, Record) { return b, a }
