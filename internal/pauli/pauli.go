package pauli

import "fmt"

// Pauli labels a single-qubit Pauli operator up to global phase.
type Pauli uint8

// The four single-qubit Pauli operators. The numeric encoding is
// symplectic: bit 0 is the X component, bit 1 is the Z component, so
// Y ≡ XZ up to the global phase i which the frame machinery discards.
const (
	I Pauli = 0b00
	X Pauli = 0b01
	Z Pauli = 0b10
	Y Pauli = 0b11
)

// HasX reports whether the operator contains an X component (X or Y).
// An X component is what flips a computational-basis measurement result
// (thesis Eq. 3.2, Table 3.2).
func (p Pauli) HasX() bool { return p&X != 0 }

// HasZ reports whether the operator contains a Z component (Z or Y).
func (p Pauli) HasZ() bool { return p&Z != 0 }

// Mul returns the product of two Pauli operators up to global phase.
// In the symplectic picture multiplication is component-wise XOR.
func (p Pauli) Mul(q Pauli) Pauli { return p ^ q }

// Commutes reports whether the two operators commute. Two Pauli operators
// anti-commute exactly when the symplectic inner product of their (x, z)
// vectors is odd.
func (p Pauli) Commutes(q Pauli) bool {
	px, pz := p&X != 0, p&Z != 0
	qx, qz := q&X != 0, q&Z != 0
	cross := 0
	if px && qz {
		cross++
	}
	if pz && qx {
		cross++
	}
	return cross%2 == 0
}

// String returns the conventional letter for the operator.
func (p Pauli) String() string {
	switch p {
	case I:
		return "I"
	case X:
		return "X"
	case Z:
		return "Z"
	case Y:
		return "Y"
	}
	return fmt.Sprintf("Pauli(%d)", uint8(p))
}

// ParsePauli converts a letter into a Pauli operator.
func ParsePauli(s string) (Pauli, error) {
	switch s {
	case "I", "i":
		return I, nil
	case "X", "x":
		return X, nil
	case "Y", "y":
		return Y, nil
	case "Z", "z":
		return Z, nil
	}
	return I, fmt.Errorf("pauli: unknown operator %q", s)
}

// All lists the four Pauli operators, useful for exhaustive table tests.
func All() []Pauli { return []Pauli{I, X, Y, Z} }
