// Package pauli implements the Pauli-operator algebra that underpins the
// Pauli frame mechanism: single-qubit Pauli operators, multi-qubit Pauli
// strings with phase tracking, and the compressed two-bit Pauli records
// R ∈ {I, X, Z, XZ} used by the Pauli Frame Unit (thesis §3.1–3.2).
//
// The record representation is symplectic: a record carries an X component
// and a Z component, and every element of the Pauli group on one qubit
// compresses — after discarding global phase — to one of the four records
// (thesis §3.1, element 3). Clifford conjugation acts on records through
// the mapping tables of thesis Tables 3.3–3.5, which this package derives
// from the symplectic update rules and exposes both programmatically and
// as explicit tables for verification.
package pauli
