package pauli

import (
	"testing"
	"testing/quick"
)

func TestPauliMul(t *testing.T) {
	cases := []struct {
		a, b, want Pauli
	}{
		{I, I, I}, {I, X, X}, {I, Y, Y}, {I, Z, Z},
		{X, X, I}, {X, Z, Y}, {Z, X, Y}, {X, Y, Z},
		{Y, Y, I}, {Z, Z, I}, {Y, Z, X}, {Z, Y, X},
	}
	for _, c := range cases {
		if got := c.a.Mul(c.b); got != c.want {
			t.Errorf("%v * %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPauliCommutation(t *testing.T) {
	// X and Z anti-commute (thesis Eq. 2.10); identity commutes with all;
	// every operator commutes with itself.
	for _, p := range All() {
		if !p.Commutes(p) {
			t.Errorf("%v should commute with itself", p)
		}
		if !I.Commutes(p) || !p.Commutes(I) {
			t.Errorf("identity should commute with %v", p)
		}
	}
	anti := [][2]Pauli{{X, Z}, {X, Y}, {Y, Z}}
	for _, pair := range anti {
		if pair[0].Commutes(pair[1]) {
			t.Errorf("%v and %v should anti-commute", pair[0], pair[1])
		}
	}
}

func TestPauliString_RoundTrip(t *testing.T) {
	for _, p := range All() {
		got, err := ParsePauli(p.String())
		if err != nil {
			t.Fatalf("ParsePauli(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParsePauli("Q"); err == nil {
		t.Error("ParsePauli(Q) should fail")
	}
}

func TestRecordFromPauli(t *testing.T) {
	cases := map[Pauli]Record{I: RecI, X: RecX, Z: RecZ, Y: RecXZ}
	for p, want := range cases {
		if got := RecordFromPauli(p); got != want {
			t.Errorf("RecordFromPauli(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestMappingTablePauli reproduces thesis Table 3.3: the mapping of a
// Pauli record by each Pauli generator.
func TestMappingTablePauli(t *testing.T) {
	cases := []struct {
		in   Record
		gate Pauli
		out  Record
	}{
		{RecI, X, RecX}, {RecI, Z, RecZ},
		{RecX, X, RecI}, {RecX, Z, RecXZ},
		{RecZ, X, RecXZ}, {RecZ, Z, RecI},
		{RecXZ, X, RecZ}, {RecXZ, Z, RecX},
	}
	for _, c := range cases {
		if got := c.in.MulPauli(c.gate); got != c.out {
			t.Errorf("record %v after %v = %v, want %v", c.in, c.gate, got, c.out)
		}
	}
}

// TestMappingTableClifford reproduces thesis Table 3.4: the mapping of a
// Pauli record by the single-qubit Clifford generators H and S.
func TestMappingTableClifford(t *testing.T) {
	hCases := map[Record]Record{RecI: RecI, RecX: RecZ, RecZ: RecX, RecXZ: RecXZ}
	for in, out := range hCases {
		if got := in.MapH(); got != out {
			t.Errorf("H maps %v to %v, want %v", in, got, out)
		}
	}
	sCases := map[Record]Record{RecI: RecI, RecX: RecXZ, RecZ: RecZ, RecXZ: RecX}
	for in, out := range sCases {
		if got := in.MapS(); got != out {
			t.Errorf("S maps %v to %v, want %v", in, got, out)
		}
		if got := in.MapSdg(); got != out {
			t.Errorf("Sdg maps %v to %v, want %v", in, got, out)
		}
	}
}

// TestMappingTableCNOT reproduces thesis Table 3.5 in full: all sixteen
// combinations of control and target records.
func TestMappingTableCNOT(t *testing.T) {
	cases := []struct{ c, t, wc, wt Record }{
		{RecI, RecI, RecI, RecI},
		{RecI, RecX, RecI, RecX},
		{RecI, RecZ, RecZ, RecZ},
		{RecI, RecXZ, RecZ, RecXZ},
		{RecX, RecI, RecX, RecX},
		{RecX, RecX, RecX, RecI},
		{RecX, RecZ, RecXZ, RecXZ},
		{RecX, RecXZ, RecXZ, RecZ},
		{RecZ, RecI, RecZ, RecI},
		{RecZ, RecX, RecZ, RecX},
		{RecZ, RecZ, RecI, RecZ},
		{RecZ, RecXZ, RecI, RecXZ},
		{RecXZ, RecI, RecXZ, RecX},
		{RecXZ, RecX, RecXZ, RecI},
		{RecXZ, RecZ, RecX, RecXZ},
		{RecXZ, RecXZ, RecX, RecZ},
	}
	for _, cse := range cases {
		gc, gt := MapCNOT(cse.c, cse.t)
		if gc != cse.wc || gt != cse.wt {
			t.Errorf("CNOT maps (%v,%v) to (%v,%v), want (%v,%v)",
				cse.c, cse.t, gc, gt, cse.wc, cse.wt)
		}
	}
}

func TestMapCZSymmetric(t *testing.T) {
	for _, a := range AllRecords() {
		for _, b := range AllRecords() {
			ra, rb := MapCZ(a, b)
			sb, sa := MapCZ(b, a)
			if ra != sa || rb != sb {
				t.Errorf("CZ mapping not symmetric for (%v,%v)", a, b)
			}
		}
	}
}

func TestMapSWAP(t *testing.T) {
	for _, a := range AllRecords() {
		for _, b := range AllRecords() {
			ra, rb := MapSWAP(a, b)
			if ra != b || rb != a {
				t.Errorf("SWAP(%v,%v) = (%v,%v)", a, b, ra, rb)
			}
		}
	}
}

// TestCliffordMapsAreInvolutionsOrBijections checks that every record
// mapping is a bijection on the record set, as conjugation by a unitary
// must be.
func TestRecordMapsAreBijections(t *testing.T) {
	maps := map[string]func(Record) Record{
		"H": Record.MapH,
		"S": Record.MapS,
	}
	for name, f := range maps {
		seen := map[Record]bool{}
		for _, r := range AllRecords() {
			seen[f(r)] = true
		}
		if len(seen) != 4 {
			t.Errorf("%s mapping is not a bijection", name)
		}
	}
}

func TestMeasurementFlip(t *testing.T) {
	// Thesis Table 3.2: only records containing X flip the result.
	want := map[Record]bool{RecI: false, RecX: true, RecZ: false, RecXZ: true}
	for r, w := range want {
		if got := r.FlipsMeasurement(); got != w {
			t.Errorf("FlipsMeasurement(%v) = %v, want %v", r, got, w)
		}
	}
}

// Property: tracking two Paulis then compressing equals tracking their
// product (records form a group isomorphic to Z2×Z2).
func TestRecordTrackingIsGroupHomomorphism(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p, q := Pauli(a%4), Pauli(b%4)
		r := RecordFromPauli(Pauli(c % 4))
		step := r.MulPauli(p).MulPauli(q)
		direct := r.MulPauli(p.Mul(q))
		return step == direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPauliStringMul(t *testing.T) {
	// Product of all four SC17 Z stabilizers (thesis Table 2.1).
	z0 := ZString(0, 3)
	z1 := ZString(1, 2, 4, 5)
	z2 := ZString(3, 4, 6, 7)
	z3 := ZString(5, 8)
	prod := z0.Mul(z1).Mul(z2).Mul(z3)
	want := ZString(0, 1, 2, 6, 7, 8)
	if prod.String() != want.String() {
		t.Errorf("product of Z stabilizers = %v, want %v", prod, want)
	}
	// Multiplying by Z_L = Z0Z4Z8 and by Z3Z4Z5 reconstructs Z on all nine
	// qubits: Z⊗9 = (∏ Z-stabilizers)·Z3Z4Z5·... shown in the design notes.
	all := prod.Mul(ZString(3, 4, 5))
	if all.Weight() != 9 || all.Negative {
		t.Errorf("Z⊗9 reconstruction failed: %v", all)
	}
}

func TestPauliStringCommutes(t *testing.T) {
	// Every SC17 X stabilizer must commute with every Z stabilizer.
	xs := []PauliString{XString(0, 1, 3, 4), XString(1, 2), XString(4, 5, 7, 8), XString(6, 7)}
	zs := []PauliString{ZString(0, 3), ZString(1, 2, 4, 5), ZString(3, 4, 6, 7), ZString(5, 8)}
	for _, x := range xs {
		for _, z := range zs {
			if !x.Commutes(z) {
				t.Errorf("stabilizers %v and %v should commute", x, z)
			}
		}
	}
	// X_L = X2X4X6 anti-commutes with Z_L = Z0Z4Z8 (they overlap on D4).
	if XString(2, 4, 6).Commutes(ZString(0, 4, 8)) {
		t.Error("X_L and Z_L should anti-commute")
	}
}

func TestPauliStringMulPhases(t *testing.T) {
	// X0 · Z1 has disjoint support: product is X0Z1 with positive sign.
	p := XString(0).Mul(ZString(1))
	if p.Negative || p.Weight() != 2 {
		t.Errorf("disjoint product wrong: %v", p)
	}
	// Y0·Y0 = I with positive sign.
	y := NewPauliString(map[int]Pauli{0: Y})
	if got := y.Mul(y); got.Weight() != 0 || got.Negative {
		t.Errorf("Y*Y = %v, want +I", got)
	}
	// (X0Z1)·(Z0X1): per-qubit XZ products give (i^3 Y)(i Y) = Y⊗Y positive.
	a := NewPauliString(map[int]Pauli{0: X, 1: Z})
	b := NewPauliString(map[int]Pauli{0: Z, 1: X})
	got := a.Mul(b)
	if got.Negative || got.At(0) != Y || got.At(1) != Y {
		t.Errorf("(X0Z1)(Z0X1) = %v, want +Y0Y1", got)
	}
}

func TestPauliStringNegated(t *testing.T) {
	s := ZString(0, 4, 8)
	if !s.Negated().Negative || s.Negated().Negated().Negative {
		t.Error("Negated should toggle the sign")
	}
	if s.Negated().String() != "-Z0Z4Z8" {
		t.Errorf("rendering: %v", s.Negated())
	}
}
